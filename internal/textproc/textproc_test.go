package textproc

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"Hello, World!", []string{"hello", "world"}},
		{"TREC-2 disk2", []string{"trec", "2", "disk2"}},
		{"  spaces\t\nand   newlines ", []string{"spaces", "and", "newlines"}},
		{"don't", []string{"don", "t"}},
		{"...!!!", nil},
		{"ALLCAPS", []string{"allcaps"}},
	}
	for _, c := range cases {
		got := Tokenize(nil, c.in)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestTokenizeTruncatesLongTokens(t *testing.T) {
	long := strings.Repeat("a", 100)
	got := Tokenize(nil, long)
	if len(got) != 1 || len(got[0]) != MaxTermLength {
		t.Fatalf("long token: got %v", got)
	}
}

func TestTokenizeAppends(t *testing.T) {
	dst := []string{"seed"}
	got := Tokenize(dst, "one two")
	want := []string{"seed", "one", "two"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("append mode: got %v want %v", got, want)
	}
}

func TestSplitWordsReconstructs(t *testing.T) {
	f := func(text string) bool {
		spans, tail := SplitWords(text)
		var sb strings.Builder
		for _, s := range spans {
			sb.WriteString(s.Sep)
			sb.WriteString(s.Word)
		}
		sb.WriteString(tail)
		return sb.String() == text
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// And a hand case with mixed separators.
	spans, tail := SplitWords("  Hi, there-you2! ")
	if len(spans) != 3 || tail != "! " {
		t.Fatalf("SplitWords: spans=%v tail=%q", spans, tail)
	}
	if spans[0].Word != "Hi" || spans[0].Sep != "  " {
		t.Fatalf("span 0: %+v", spans[0])
	}
	if spans[2].Word != "you2" || spans[2].Sep != "-" {
		t.Fatalf("span 2: %+v", spans[2])
	}
}

func TestPorterStemmer(t *testing.T) {
	// Reference pairs from Porter's published vocabulary.
	cases := map[string]string{
		"caresses":    "caress",
		"ponies":      "poni",
		"ties":        "ti",
		"caress":      "caress",
		"cats":        "cat",
		"feed":        "feed",
		"agreed":      "agre",
		"plastered":   "plaster",
		"bled":        "bled",
		"motoring":    "motor",
		"sing":        "sing",
		"conflated":   "conflat",
		"troubled":    "troubl",
		"sized":       "size",
		"hopping":     "hop",
		"tanned":      "tan",
		"falling":     "fall",
		"hissing":     "hiss",
		"fizzed":      "fizz",
		"failing":     "fail",
		"filing":      "file",
		"happy":       "happi",
		"sky":         "sky",
		"relational":  "relat",
		"conditional": "condit",
		"rational":    "ration",
		"valenci":     "valenc",
		"digitizer":   "digit",
		"triplicate":  "triplic",
		"formative":   "form",
		"formalize":   "formal",
		"electriciti": "electr",
		"electrical":  "electr",
		"hopefulness": "hope",
		"revival":     "reviv",
		"allowance":   "allow",
		"inference":   "infer",
		"airliner":    "airlin",
		"adjustment":  "adjust",
		"dependent":   "depend",
		"adoption":    "adopt",
		"activate":    "activ",
		"probate":     "probat",
		"rate":        "rate",
		"cease":       "ceas",
		"controll":    "control",
		"roll":        "roll",
		"retrieval":   "retriev",
		"libraries":   "librari",
		"distributed": "distribut",
	}
	for in, want := range cases {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestStemShortAndNonAlpha(t *testing.T) {
	for _, w := range []string{"a", "is", "", "x1ing", "cafés"} {
		if got := Stem(w); got != w {
			t.Errorf("Stem(%q) = %q, want unchanged", w, got)
		}
	}
}

func TestStemIdempotentOnOwnOutput(t *testing.T) {
	// Porter is not idempotent in general, but the common IR vocabulary
	// below must be stable so that query terms match indexed terms.
	words := []string{"retrieval", "distributed", "information", "queries",
		"ranking", "effectiveness", "librarian", "receptionist"}
	for _, w := range words {
		once := Stem(w)
		twice := Stem(once)
		if once != twice {
			t.Errorf("Stem not stable for %q: %q -> %q", w, once, twice)
		}
	}
}

func TestAnalyzerPipeline(t *testing.T) {
	a := NewAnalyzer()
	got := a.Terms(nil, "The LIBRARIES are being distributed across the networks!")
	want := []string{"librari", "distribut", "network"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Terms = %v, want %v", got, want)
	}
}

func TestAnalyzerOptions(t *testing.T) {
	plain := NewAnalyzer(WithoutStopwords(), WithoutStemming())
	got := plain.Terms(nil, "The libraries")
	want := []string{"the", "libraries"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("plain Terms = %v, want %v", got, want)
	}

	custom := NewAnalyzer(WithStopwords([]string{"libraries"}), WithoutStemming())
	got = custom.Terms(nil, "the libraries win")
	want = []string{"the", "win"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("custom stopwords Terms = %v, want %v", got, want)
	}
}

func TestIsStopword(t *testing.T) {
	a := NewAnalyzer()
	if !a.IsStopword("The") {
		t.Error("The should be a stopword (case-insensitive)")
	}
	if a.IsStopword("retrieval") {
		t.Error("retrieval should not be a stopword")
	}
}

func BenchmarkAnalyzer(b *testing.B) {
	a := NewAnalyzer()
	text := strings.Repeat("Distributed information retrieval systems can be fast and effective. ", 20)
	b.ReportAllocs()
	b.SetBytes(int64(len(text)))
	for i := 0; i < b.N; i++ {
		a.Terms(nil, text)
	}
}

func BenchmarkStem(b *testing.B) {
	words := []string{"retrieval", "distributed", "information", "effectiveness", "generalising"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Stem(words[i%len(words)])
	}
}

// TestTokenizeConsistentWithSplitWords pins the invariant linking the two
// lexical paths: the indexer's Tokenize must produce exactly the lowercased
// Word fields of the compressor's SplitWords, so that terms found in the
// index always exist in stored documents and vice versa.
func TestTokenizeConsistentWithSplitWords(t *testing.T) {
	f := func(text string) bool {
		tokens := Tokenize(nil, text)
		spans, _ := SplitWords(text)
		if len(tokens) != len(spans) {
			return false
		}
		for i, s := range spans {
			want := strings.ToLower(s.Word)
			if n := len(want); n > MaxTermLength {
				want = want[:MaxTermLength]
			}
			if tokens[i] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
