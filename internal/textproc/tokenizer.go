// Package textproc supplies the lexical pipeline used when parsing documents
// and queries: tokenisation, case folding, stopword removal, and Porter
// stemming. The same pipeline must be applied to documents at index time and
// to queries at evaluation time, so the package exposes a single Analyzer
// that both sides share.
package textproc

import (
	"strings"
	"unicode"
)

// MaxTermLength bounds the length (in runes) of an indexed term; longer
// tokens are truncated, mirroring MG's fixed-size term buffer.
const MaxTermLength = 32

// Tokenize splits text into lowercase word tokens. A word is a maximal run
// of letters and digits; everything else separates tokens. The function
// appends to dst and returns it, so callers can reuse buffers.
func Tokenize(dst []string, text string) []string {
	start := -1
	flush := func(end int) {
		if start < 0 {
			return
		}
		tok := strings.ToLower(text[start:end])
		if n := len(tok); n > MaxTermLength {
			tok = tok[:MaxTermLength]
		}
		dst = append(dst, tok)
		start = -1
	}
	for i, r := range text {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			if start < 0 {
				start = i
			}
			continue
		}
		flush(i)
	}
	flush(len(text))
	return dst
}

// WordSpan describes one token occurrence inside the original text,
// including the separating non-word text that precedes it. It drives the
// word-based text compression model in package huffman, which must be able
// to reconstruct documents byte for byte.
type WordSpan struct {
	Sep  string // non-word bytes before the word (may be empty)
	Word string // the word itself, original case
}

// SplitWords decomposes text into an alternating sequence of separators and
// words such that concatenating Sep+Word over all spans, plus the returned
// tail, reproduces text exactly.
func SplitWords(text string) (spans []WordSpan, tail string) {
	sepStart := 0
	wordStart := -1
	for i, r := range text {
		isWord := unicode.IsLetter(r) || unicode.IsDigit(r)
		switch {
		case isWord && wordStart < 0:
			wordStart = i
		case !isWord && wordStart >= 0:
			spans = append(spans, WordSpan{Sep: text[sepStart:wordStart], Word: text[wordStart:i]})
			sepStart = i
			wordStart = -1
		}
	}
	if wordStart >= 0 {
		spans = append(spans, WordSpan{Sep: text[sepStart:wordStart], Word: text[wordStart:]})
		return spans, ""
	}
	return spans, text[sepStart:]
}

// Analyzer converts raw text into index terms: tokenize, drop stopwords,
// stem. The zero value applies no stopping and no stemming; use NewAnalyzer
// for the standard pipeline.
type Analyzer struct {
	stopwords map[string]bool
	stem      bool
}

// Option configures an Analyzer.
type Option func(*Analyzer)

// WithStopwords installs a custom stopword set (terms must be lowercase).
func WithStopwords(words []string) Option {
	return func(a *Analyzer) {
		a.stopwords = make(map[string]bool, len(words))
		for _, w := range words {
			a.stopwords[w] = true
		}
	}
}

// WithoutStopwords disables stopword removal.
func WithoutStopwords() Option {
	return func(a *Analyzer) { a.stopwords = nil }
}

// WithoutStemming disables the Porter stemmer.
func WithoutStemming() Option {
	return func(a *Analyzer) { a.stem = false }
}

// NewAnalyzer returns the standard analysis pipeline: lowercase
// tokenisation, the built-in English stopword list, and Porter stemming.
func NewAnalyzer(opts ...Option) *Analyzer {
	a := &Analyzer{stopwords: defaultStopwords(), stem: true}
	for _, opt := range opts {
		opt(a)
	}
	return a
}

// Terms analyses text and appends the resulting index terms to dst.
func (a *Analyzer) Terms(dst []string, text string) []string {
	dst, _ = a.TermsScratch(dst, nil, text)
	return dst
}

// TermsScratch is Terms with a caller-owned tokenizer buffer: raw tokens are
// gathered into raw (reset and reused) and the analysed terms appended to
// dst. Both slices are returned so callers can retain their grown capacity
// across queries — the scoring kernel's steady state then tokenises without
// allocating (lowercase ASCII tokens alias the input string).
func (a *Analyzer) TermsScratch(dst, raw []string, text string) (terms, rawOut []string) {
	raw = Tokenize(raw[:0], text)
	for _, tok := range raw {
		if a.stopwords != nil && a.stopwords[tok] {
			continue
		}
		if a.stem {
			tok = Stem(tok)
		}
		if tok == "" {
			continue
		}
		dst = append(dst, tok)
	}
	return dst, raw
}

// IsStopword reports whether the analyzer would discard term.
func (a *Analyzer) IsStopword(term string) bool {
	return a.stopwords != nil && a.stopwords[strings.ToLower(term)]
}
