package textproc

// Stem reduces an English word to its stem using Porter's algorithm
// (M. F. Porter, "An algorithm for suffix stripping", Program 14(3), 1980).
// The input is expected to be lowercase; words of length ≤ 2 are returned
// unchanged, as in the original definition.
func Stem(word string) string {
	if len(word) <= 2 {
		return word
	}
	for _, r := range word {
		if r < 'a' || r > 'z' {
			// Tokens containing digits or non-ASCII letters are left alone.
			return word
		}
	}
	b := []byte(word)
	b = step1a(b)
	b = step1b(b)
	b = step1c(b)
	b = step2(b)
	b = step3(b)
	b = step4(b)
	b = step5a(b)
	b = step5b(b)
	return string(b)
}

// isConsonant reports whether b[i] acts as a consonant in Porter's sense:
// 'y' is a consonant when it begins the word or follows a vowel.
func isConsonant(b []byte, i int) bool {
	switch b[i] {
	case 'a', 'e', 'i', 'o', 'u':
		return false
	case 'y':
		if i == 0 {
			return true
		}
		return !isConsonant(b, i-1)
	default:
		return true
	}
}

// measure computes m, the number of VC (vowel–consonant) sequences in b.
func measure(b []byte) int {
	n := len(b)
	i := 0
	for i < n && isConsonant(b, i) {
		i++
	}
	m := 0
	for i < n {
		for i < n && !isConsonant(b, i) {
			i++
		}
		if i == n {
			break
		}
		m++
		for i < n && isConsonant(b, i) {
			i++
		}
	}
	return m
}

func hasVowel(b []byte) bool {
	for i := range b {
		if !isConsonant(b, i) {
			return true
		}
	}
	return false
}

// endsDoubleConsonant reports whether b ends with the same consonant twice.
func endsDoubleConsonant(b []byte) bool {
	n := len(b)
	return n >= 2 && b[n-1] == b[n-2] && isConsonant(b, n-1)
}

// endsCVC reports whether b ends consonant-vowel-consonant where the final
// consonant is not w, x or y.
func endsCVC(b []byte) bool {
	n := len(b)
	if n < 3 {
		return false
	}
	if !isConsonant(b, n-3) || isConsonant(b, n-2) || !isConsonant(b, n-1) {
		return false
	}
	switch b[n-1] {
	case 'w', 'x', 'y':
		return false
	}
	return true
}

func hasSuffix(b []byte, s string) bool {
	if len(b) < len(s) {
		return false
	}
	return string(b[len(b)-len(s):]) == s
}

// replaceSuffix swaps suffix from for to when the stem before from has
// measure > m. It reports whether from matched (regardless of replacement).
func replaceSuffix(b []byte, from, to string, m int) ([]byte, bool) {
	if !hasSuffix(b, from) {
		return b, false
	}
	stem := b[:len(b)-len(from)]
	if measure(stem) > m {
		return append(stem, to...), true
	}
	return b, true
}

func step1a(b []byte) []byte {
	switch {
	case hasSuffix(b, "sses"):
		return b[:len(b)-2]
	case hasSuffix(b, "ies"):
		return b[:len(b)-2]
	case hasSuffix(b, "ss"):
		return b
	case hasSuffix(b, "s"):
		return b[:len(b)-1]
	}
	return b
}

func step1b(b []byte) []byte {
	if hasSuffix(b, "eed") {
		if measure(b[:len(b)-3]) > 0 {
			return b[:len(b)-1]
		}
		return b
	}
	var stem []byte
	switch {
	case hasSuffix(b, "ed") && hasVowel(b[:len(b)-2]):
		stem = b[:len(b)-2]
	case hasSuffix(b, "ing") && hasVowel(b[:len(b)-3]):
		stem = b[:len(b)-3]
	default:
		return b
	}
	switch {
	case hasSuffix(stem, "at"), hasSuffix(stem, "bl"), hasSuffix(stem, "iz"):
		return append(stem, 'e')
	case endsDoubleConsonant(stem):
		last := stem[len(stem)-1]
		if last != 'l' && last != 's' && last != 'z' {
			return stem[:len(stem)-1]
		}
		return stem
	case measure(stem) == 1 && endsCVC(stem):
		return append(stem, 'e')
	}
	return stem
}

func step1c(b []byte) []byte {
	if hasSuffix(b, "y") && hasVowel(b[:len(b)-1]) {
		b[len(b)-1] = 'i'
	}
	return b
}

func step2(b []byte) []byte {
	rules := []struct{ from, to string }{
		{"ational", "ate"}, {"tional", "tion"}, {"enci", "ence"},
		{"anci", "ance"}, {"izer", "ize"}, {"abli", "able"},
		{"alli", "al"}, {"entli", "ent"}, {"eli", "e"}, {"ousli", "ous"},
		{"ization", "ize"}, {"ation", "ate"}, {"ator", "ate"},
		{"alism", "al"}, {"iveness", "ive"}, {"fulness", "ful"},
		{"ousness", "ous"}, {"aliti", "al"}, {"iviti", "ive"},
		{"biliti", "ble"},
	}
	for _, r := range rules {
		if out, matched := replaceSuffix(b, r.from, r.to, 0); matched {
			return out
		}
	}
	return b
}

func step3(b []byte) []byte {
	rules := []struct{ from, to string }{
		{"icate", "ic"}, {"ative", ""}, {"alize", "al"}, {"iciti", "ic"},
		{"ical", "ic"}, {"ful", ""}, {"ness", ""},
	}
	for _, r := range rules {
		if out, matched := replaceSuffix(b, r.from, r.to, 0); matched {
			return out
		}
	}
	return b
}

func step4(b []byte) []byte {
	suffixes := []string{
		"al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
		"ment", "ent", "ion", "ou", "ism", "ate", "iti", "ous", "ive",
		"ize",
	}
	for _, s := range suffixes {
		if !hasSuffix(b, s) {
			continue
		}
		stem := b[:len(b)-len(s)]
		if s == "ion" {
			n := len(stem)
			if n == 0 || (stem[n-1] != 's' && stem[n-1] != 't') {
				return b
			}
		}
		if measure(stem) > 1 {
			return stem
		}
		return b
	}
	return b
}

func step5a(b []byte) []byte {
	if !hasSuffix(b, "e") {
		return b
	}
	stem := b[:len(b)-1]
	m := measure(stem)
	if m > 1 || (m == 1 && !endsCVC(stem)) {
		return stem
	}
	return b
}

func step5b(b []byte) []byte {
	if hasSuffix(b, "ll") && measure(b) > 1 {
		return b[:len(b)-1]
	}
	return b
}
