package index

import (
	"fmt"
	"math"
)

// MG stores document weights approximately to shrink the weights table —
// with logarithmic bucketing, one byte per document is enough that ranking
// is unaffected in practice (Moffat & Zobel). QuantizeWeights applies the
// same trade to an Index: W_d is replaced by the geometric midpoint of its
// bucket, cutting the table from four bytes per document to one on disk
// (the in-memory representation stays float32 for scoring speed).

// weightBuckets is the number of quantization levels (one byte's worth).
const weightBuckets = 256

// QuantizeWeights returns a copy of the index whose document weights are
// quantized to 256 logarithmic buckets spanning the observed weight range.
// Postings are shared with the original (both are immutable).
func (ix *Index) QuantizeWeights() (*Index, error) {
	if ix.numDocs == 0 {
		return nil, fmt.Errorf("index: nothing to quantize")
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, w := range ix.weights {
		v := float64(w)
		if v <= 0 {
			continue // empty documents keep weight zero
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	// Copy field by field rather than by struct assignment: the reciprocal
	// weight cache (and its sync.Once) must start fresh, since the quantized
	// copy has different weights.
	out := Index{
		entries:  ix.entries,
		byTerm:   ix.byTerm,
		lens:     ix.lens,
		numDocs:  ix.numDocs,
		numPtrs:  ix.numPtrs,
		skipIvl:  ix.skipIvl,
		postings: ix.postings,
	}
	out.weights = make([]float32, len(ix.weights))
	if math.IsInf(lo, 1) {
		// No non-empty documents; nothing to do.
		copy(out.weights, ix.weights)
		return &out, nil
	}
	if hi <= lo {
		hi = lo * (1 + 1e-9)
	}
	logLo, logHi := math.Log(lo), math.Log(hi)
	step := (logHi - logLo) / weightBuckets
	for d, w := range ix.weights {
		v := float64(w)
		if v <= 0 {
			continue
		}
		bucket := int((math.Log(v) - logLo) / step)
		if bucket >= weightBuckets {
			bucket = weightBuckets - 1
		}
		if bucket < 0 {
			bucket = 0
		}
		// Geometric midpoint of the bucket.
		mid := math.Exp(logLo + (float64(bucket)+0.5)*step)
		out.weights[d] = float32(mid)
	}
	return &out, nil
}

// WeightsTableBytes reports the on-disk size of the weights table at the
// given precision: 4 bytes per document exact, 1 byte quantized (plus the
// two 8-byte range anchors).
func (ix *Index) WeightsTableBytes(quantized bool) uint64 {
	if quantized {
		return uint64(ix.numDocs) + 16
	}
	return 4 * uint64(ix.numDocs)
}
