package index

import (
	"fmt"
	"math"
	"sort"

	"teraphim/internal/bitio"
)

// RawBuilder assembles an index directly from postings lists rather than
// from document term lists. It is the tool for *merging* indexes — the
// Central Index receptionist uses it to build its grouped central index
// from the librarians' own inverted files, without ever seeing a document.
//
// Document weights are derived from the supplied postings
// (W_d = sqrt(Σ log(f_dt+1)²)), and document lengths are approximated by
// Σ f_dt, both exactly what a full rebuild over the original text would
// produce for indexed terms.
type RawBuilder struct {
	numDocs uint32
	terms   map[string][]Posting
	sumSq   []float64
	lens    []uint32
	skipIvl uint32
}

// NewRawBuilder returns a RawBuilder for a collection of numDocs documents.
func NewRawBuilder(numDocs uint32, opts ...BuilderOption) *RawBuilder {
	// Reuse Builder options for skip configuration.
	cfg := &Builder{skipIvl: DefaultSkipInterval}
	for _, opt := range opts {
		opt(cfg)
	}
	return &RawBuilder{
		numDocs: numDocs,
		terms:   make(map[string][]Posting, 1024),
		sumSq:   make([]float64, numDocs),
		lens:    make([]uint32, numDocs),
		skipIvl: cfg.skipIvl,
	}
}

// AddPostings merges postings for term into the builder. Postings may be
// added in several calls (for example one per source subcollection) and in
// any order; duplicates of the same document are rejected at Build.
func (b *RawBuilder) AddPostings(term string, postings []Posting) error {
	if len(postings) == 0 {
		return nil
	}
	for _, p := range postings {
		if p.Doc >= b.numDocs {
			return fmt.Errorf("index: posting doc %d outside collection of %d", p.Doc, b.numDocs)
		}
		if p.FDT == 0 {
			return fmt.Errorf("index: posting for doc %d has zero f_dt", p.Doc)
		}
		w := math.Log(float64(p.FDT) + 1)
		b.sumSq[p.Doc] += w * w
		b.lens[p.Doc] += p.FDT
	}
	b.terms[term] = append(b.terms[term], postings...)
	return nil
}

// Build freezes the builder into an immutable Index.
func (b *RawBuilder) Build() (*Index, error) {
	ix := &Index{
		entries: make([]termEntry, 0, len(b.terms)),
		byTerm:  make(map[string]int, len(b.terms)),
		weights: make([]float32, b.numDocs),
		lens:    b.lens,
		numDocs: b.numDocs,
		skipIvl: b.skipIvl,
	}
	for d := range ix.weights {
		ix.weights[d] = float32(math.Sqrt(b.sumSq[d]))
	}
	terms := make([]string, 0, len(b.terms))
	for t := range b.terms {
		terms = append(terms, t)
	}
	sort.Strings(terms)
	w := bitio.NewWriter(4096)
	for _, t := range terms {
		postings := b.terms[t]
		sort.Slice(postings, func(i, j int) bool { return postings[i].Doc < postings[j].Doc })
		for i := 1; i < len(postings); i++ {
			if postings[i].Doc == postings[i-1].Doc {
				return nil, fmt.Errorf("index: term %q has duplicate postings for doc %d", t, postings[i].Doc)
			}
		}
		entry, err := compressList(w, t, postings, ix.numDocs, b.skipIvl)
		if err != nil {
			return nil, fmt.Errorf("index: term %q: %w", t, err)
		}
		ix.byTerm[t] = len(ix.entries)
		ix.entries = append(ix.entries, entry)
		ix.numPtrs += uint64(len(postings))
		ix.postings += uint64(len(entry.postings))
	}
	b.terms = nil
	return ix, nil
}
