package index

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// File format (little endian):
//
//	magic "TPIX" | version u32 | numDocs u32 | skipIvl u32 | numTerms u32
//	per doc:  weight f32 | len u32
//	per term: frontCodedTerm (shared u8, suffixLen u8, suffix bytes)
//	          ft u32 | postingsLen u32 | postings bytes
//	          numSkips u32 | skipDocs u32... | skipBits u32...
const (
	indexMagic   = "TPIX"
	indexVersion = 1
)

// WriteTo serialises the index. It implements io.WriterTo.
func (ix *Index) WriteTo(w io.Writer) (int64, error) {
	cw := &countWriter{w: bufio.NewWriter(w)}
	put32 := func(v uint32) error { return binary.Write(cw, binary.LittleEndian, v) }

	if _, err := cw.Write([]byte(indexMagic)); err != nil {
		return cw.n, err
	}
	for _, v := range []uint32{indexVersion, ix.numDocs, ix.skipIvl, uint32(len(ix.entries))} {
		if err := put32(v); err != nil {
			return cw.n, err
		}
	}
	for d := uint32(0); d < ix.numDocs; d++ {
		if err := put32(math.Float32bits(ix.weights[d])); err != nil {
			return cw.n, err
		}
		if err := put32(ix.lens[d]); err != nil {
			return cw.n, err
		}
	}
	prev := ""
	for _, e := range ix.entries {
		shared := sharedPrefix(prev, e.term)
		suffix := e.term[shared:]
		if _, err := cw.Write([]byte{byte(shared), byte(len(suffix))}); err != nil {
			return cw.n, err
		}
		if _, err := cw.Write([]byte(suffix)); err != nil {
			return cw.n, err
		}
		prev = e.term
		if err := put32(e.ft); err != nil {
			return cw.n, err
		}
		if err := put32(uint32(len(e.postings))); err != nil {
			return cw.n, err
		}
		if _, err := cw.Write(e.postings); err != nil {
			return cw.n, err
		}
		if err := put32(uint32(len(e.skipDocs))); err != nil {
			return cw.n, err
		}
		for _, v := range e.skipDocs {
			if err := put32(v); err != nil {
				return cw.n, err
			}
		}
		for _, v := range e.skipBits {
			if err := put32(v); err != nil {
				return cw.n, err
			}
		}
	}
	if bw, ok := cw.w.(*bufio.Writer); ok {
		if err := bw.Flush(); err != nil {
			return cw.n, err
		}
	}
	return cw.n, nil
}

// ReadFrom deserialises an index written by WriteTo.
func ReadFrom(r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	get32 := func() (uint32, error) {
		var v uint32
		err := binary.Read(br, binary.LittleEndian, &v)
		return v, err
	}
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("index: read magic: %w", err)
	}
	if string(magic) != indexMagic {
		return nil, fmt.Errorf("index: bad magic %q", magic)
	}
	version, err := get32()
	if err != nil {
		return nil, err
	}
	if version != indexVersion {
		return nil, fmt.Errorf("index: unsupported version %d", version)
	}
	ix := &Index{}
	if ix.numDocs, err = get32(); err != nil {
		return nil, err
	}
	if ix.skipIvl, err = get32(); err != nil {
		return nil, err
	}
	numTerms, err := get32()
	if err != nil {
		return nil, err
	}
	// Grow per-document and per-term tables incrementally with a bounded
	// capacity hint: the header counts are untrusted (indexes also arrive
	// over the wire in IndexReply messages), so a corrupt count must fail
	// on short input rather than pre-allocate gigabytes.
	ix.weights = make([]float32, 0, boundedHint(uint64(ix.numDocs)))
	ix.lens = make([]uint32, 0, boundedHint(uint64(ix.numDocs)))
	for d := uint32(0); d < ix.numDocs; d++ {
		bits, err := get32()
		if err != nil {
			return nil, fmt.Errorf("index: doc %d weight: %w", d, err)
		}
		ix.weights = append(ix.weights, math.Float32frombits(bits))
		l, err := get32()
		if err != nil {
			return nil, fmt.Errorf("index: doc %d len: %w", d, err)
		}
		ix.lens = append(ix.lens, l)
	}
	ix.entries = make([]termEntry, 0, boundedHint(uint64(numTerms)))
	ix.byTerm = make(map[string]int, boundedHint(uint64(numTerms)))
	prev := ""
	var hdr [2]byte
	for i := uint32(0); i < numTerms; i++ {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return nil, fmt.Errorf("index: term %d header: %w", i, err)
		}
		shared, suffixLen := int(hdr[0]), int(hdr[1])
		if shared > len(prev) {
			return nil, fmt.Errorf("index: term %d shares %d bytes with %d-byte predecessor", i, shared, len(prev))
		}
		suffix := make([]byte, suffixLen)
		if _, err := io.ReadFull(br, suffix); err != nil {
			return nil, fmt.Errorf("index: term %d suffix: %w", i, err)
		}
		term := prev[:shared] + string(suffix)
		if term <= prev && i > 0 {
			return nil, fmt.Errorf("index: terms out of order: %q after %q", term, prev)
		}
		prev = term
		var e termEntry
		e.term = term
		if e.ft, err = get32(); err != nil {
			return nil, err
		}
		plen, err := get32()
		if err != nil {
			return nil, err
		}
		if e.postings, err = readChunked(br, uint64(plen)); err != nil {
			return nil, fmt.Errorf("index: term %q postings: %w", term, err)
		}
		nskips, err := get32()
		if err != nil {
			return nil, err
		}
		if nskips > 0 {
			e.skipDocs = make([]uint32, 0, boundedHint(uint64(nskips)))
			e.skipBits = make([]uint32, 0, boundedHint(uint64(nskips)))
			for j := uint32(0); j < nskips; j++ {
				v, err := get32()
				if err != nil {
					return nil, err
				}
				e.skipDocs = append(e.skipDocs, v)
			}
			for j := uint32(0); j < nskips; j++ {
				v, err := get32()
				if err != nil {
					return nil, err
				}
				e.skipBits = append(e.skipBits, v)
			}
		}
		ix.byTerm[term] = int(i)
		ix.entries = append(ix.entries, e)
		ix.numPtrs += uint64(e.ft)
		ix.postings += uint64(len(e.postings))
	}
	return ix, nil
}

// boundedHint caps an untrusted count used as an allocation capacity hint.
func boundedHint(n uint64) int {
	const maxHint = 1 << 16
	if n > maxHint {
		return maxHint
	}
	return int(n)
}

// readChunked reads exactly n bytes, growing the buffer in bounded steps so
// an inflated length in a corrupt header fails on short input instead of
// pre-allocating the claimed size.
func readChunked(r io.Reader, n uint64) ([]byte, error) {
	const chunk = 1 << 20
	out := make([]byte, 0, boundedHint(n))
	for n > 0 {
		step := n
		if step > chunk {
			step = chunk
		}
		buf := make([]byte, step)
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		out = append(out, buf...)
		n -= step
	}
	return out, nil
}

func sharedPrefix(a, b string) int {
	n := 0
	max := len(a)
	if len(b) < max {
		max = len(b)
	}
	if max > 255 {
		max = 255
	}
	for n < max && a[n] == b[n] {
		n++
	}
	return n
}

// countWriter tracks bytes written.
type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
