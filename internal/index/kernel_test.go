package index

import (
	"math/rand"
	"strconv"
	"testing"
)

// buildRandom builds an index whose common terms span many skip blocks.
func buildRandom(t *testing.T, numDocs int) *Index {
	t.Helper()
	rng := rand.New(rand.NewSource(29))
	b := NewBuilder()
	for d := 0; d < numDocs; d++ {
		var terms []string
		terms = append(terms, "common") // full-length list: one posting per doc
		for i := 0; i < 8; i++ {
			terms = append(terms, "t"+strconv.Itoa(rng.Intn(50)))
		}
		for i := 0; i < rng.Intn(3); i++ {
			terms = append(terms, "rare"+strconv.Itoa(rng.Intn(500)))
		}
		b.Add(terms)
	}
	ix, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

// TestResetCursorMatchesFreshCursor walks every list twice — once with fresh
// cursors, once with a single reused cursor — and requires identical
// postings and identical consumption accounting.
func TestResetCursorMatchesFreshCursor(t *testing.T) {
	ix := buildRandom(t, 700)
	var reused TermCursor
	ix.Terms(func(term string, ft uint32) bool {
		fresh, err := ix.Cursor(term)
		if err != nil {
			t.Fatal(err)
		}
		want, err := fresh.Decode(nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := ix.ResetCursor(&reused, term); err != nil {
			t.Fatal(err)
		}
		got, err := reused.Decode(nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) || len(got) != int(ft) {
			t.Fatalf("term %q: reused cursor decoded %d postings, fresh %d, ft %d",
				term, len(got), len(want), ft)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("term %q posting %d: reused %+v, fresh %+v", term, i, got[i], want[i])
			}
		}
		if reused.DecodedPostings != fresh.DecodedPostings {
			t.Fatalf("term %q: reused consumed %d, fresh %d",
				term, reused.DecodedPostings, fresh.DecodedPostings)
		}
		return true
	})
}

// TestNextBlockMatchesNext checks the bulk decode path posting for posting
// against the scalar one, including the consumption counter.
func TestNextBlockMatchesNext(t *testing.T) {
	ix := buildRandom(t, 700)
	for _, term := range []string{"common", "t0", "t31"} {
		scalar, err := ix.Cursor(term)
		if err != nil {
			t.Fatalf("term %q: %v", term, err)
		}
		var want []Posting
		for scalar.Next() {
			want = append(want, scalar.Posting())
		}
		bulk, err := ix.Cursor(term)
		if err != nil {
			t.Fatal(err)
		}
		var got []Posting
		for {
			blk := bulk.NextBlock()
			if blk == nil {
				break
			}
			got = append(got, blk...)
		}
		if len(got) != len(want) {
			t.Fatalf("term %q: bulk %d postings, scalar %d", term, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("term %q posting %d: bulk %+v, scalar %+v", term, i, got[i], want[i])
			}
		}
		if bulk.DecodedPostings != scalar.DecodedPostings {
			t.Fatalf("term %q: bulk consumed %d, scalar %d", term, bulk.DecodedPostings, scalar.DecodedPostings)
		}
		if bulk.Posting() != want[len(want)-1] {
			t.Fatalf("term %q: Posting after last block = %+v, want %+v",
				term, bulk.Posting(), want[len(want)-1])
		}
	}
}

// TestAdvanceAcrossBlocks exercises both Advance regimes of the buffered
// cursor — the bitstream seek into an undecoded block and the within-block
// scan — and verifies postings bypassed by skips stay uncounted.
func TestAdvanceAcrossBlocks(t *testing.T) {
	ix := buildRandom(t, 700)
	cur, err := ix.Cursor("common") // one posting per doc: Doc == position
	if err != nil {
		t.Fatal(err)
	}
	// Mixed stride: some targets sit inside the current decode block
	// (fast-forward), others blocks away (seek).
	targets := []uint32{3, 5, 70, 71, 75, 300, 301, 699}
	for _, d := range targets {
		if !cur.Advance(d) {
			t.Fatalf("Advance(%d) = false", d)
		}
		if got := cur.Posting().Doc; got != d {
			t.Fatalf("Advance(%d) landed on doc %d", d, got)
		}
	}
	if cur.Advance(700) {
		t.Fatal("Advance past the last doc must return false")
	}
	if cur.DecodedPostings >= 700 {
		t.Fatalf("skip-based advance consumed %d postings, want far fewer than 700", cur.DecodedPostings)
	}
}

// TestListBytesExact pins the exact per-list accounting: list sizes are
// positive for indexed terms, zero for absent ones, and sum to SizeBytes.
func TestListBytesExact(t *testing.T) {
	ix := buildRandom(t, 300)
	var sum uint64
	ix.Terms(func(term string, ft uint32) bool {
		lb := ix.ListBytes(term)
		if lb == 0 {
			t.Fatalf("term %q: ListBytes = 0", term)
		}
		sum += lb
		return true
	})
	if sum != ix.SizeBytes() {
		t.Fatalf("sum of ListBytes = %d, SizeBytes = %d", sum, ix.SizeBytes())
	}
	if ix.ListBytes("no-such-term") != 0 {
		t.Fatal("absent term: want 0 bytes")
	}
}

// TestFreqCursorReset checks the frequency-sorted cursor's reuse path
// against fresh cursors, run for run.
func TestFreqCursorReset(t *testing.T) {
	ix := buildRandom(t, 400)
	fs, err := BuildFreqSorted(ix)
	if err != nil {
		t.Fatal(err)
	}
	var reused FreqCursor
	ix.Terms(func(term string, ft uint32) bool {
		fresh, err := fs.Cursor(term)
		if err != nil {
			t.Fatal(err)
		}
		if err := fs.ResetCursor(&reused, term); err != nil {
			t.Fatal(err)
		}
		for {
			f1, d1, ok1 := fresh.NextRun()
			f2, d2, ok2 := reused.NextRun()
			if ok1 != ok2 || f1 != f2 || len(d1) != len(d2) {
				t.Fatalf("term %q: run diverged (ok %v/%v, fdt %d/%d, len %d/%d)",
					term, ok1, ok2, f1, f2, len(d1), len(d2))
			}
			if !ok1 {
				break
			}
			for i := range d1 {
				if d1[i] != d2[i] {
					t.Fatalf("term %q fdt %d doc %d: %d vs %d", term, f1, i, d1[i], d2[i])
				}
			}
		}
		if fresh.Decoded() != reused.Decoded() {
			t.Fatalf("term %q: decoded %d vs %d", term, fresh.Decoded(), reused.Decoded())
		}
		return true
	})
}

// TestInvDocWeights checks the reciprocal table against DocWeight, including
// the zero-weight convention.
func TestInvDocWeights(t *testing.T) {
	b := NewBuilder()
	b.Add([]string{"cat", "dog"})
	b.Add(nil) // empty document: W_d = 0
	b.Add([]string{"cat"})
	ix, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	inv := ix.InvDocWeights()
	if len(inv) != 3 {
		t.Fatalf("table length %d", len(inv))
	}
	for d := uint32(0); d < 3; d++ {
		wd, err := ix.DocWeight(d)
		if err != nil {
			t.Fatal(err)
		}
		if wd == 0 {
			if inv[d] != 0 {
				t.Fatalf("doc %d: W_d = 0 but 1/W_d = %g", d, inv[d])
			}
			continue
		}
		if inv[d] != 1/wd {
			t.Fatalf("doc %d: inv %g, want %g", d, inv[d], 1/wd)
		}
	}
	// Quantized copies must rebuild the cache from their own weights.
	q, err := ix.QuantizeWeights()
	if err != nil {
		t.Fatal(err)
	}
	qinv := q.InvDocWeights()
	qwd, _ := q.DocWeight(0)
	if qwd == 0 || qinv[0] != 1/qwd {
		t.Fatalf("quantized doc 0: inv %g, want %g", qinv[0], 1/qwd)
	}
}
