package index

import (
	"fmt"
)

// Merge combines several indexes into one, renumbering each input's
// documents by its offset — the inverse of partitioning a collection across
// librarians. offsets[i] is the global number of subIndexes[i]'s local
// document 0; inputs must tile [0, totalDocs) without overlap.
//
// Merging is exact: the result is identical (postings, weights, sizes) to
// indexing the concatenated collection directly, because document weights
// depend only on per-document term frequencies.
func Merge(subIndexes []*Index, offsets []uint32, totalDocs uint32, opts ...BuilderOption) (*Index, error) {
	if len(subIndexes) == 0 {
		return nil, fmt.Errorf("index: nothing to merge")
	}
	if len(subIndexes) != len(offsets) {
		return nil, fmt.Errorf("index: %d indexes but %d offsets", len(subIndexes), len(offsets))
	}
	var covered uint64
	for i, ix := range subIndexes {
		covered += uint64(ix.NumDocs())
		if uint64(offsets[i])+uint64(ix.NumDocs()) > uint64(totalDocs) {
			return nil, fmt.Errorf("index: input %d (offset %d, %d docs) exceeds collection of %d",
				i, offsets[i], ix.NumDocs(), totalDocs)
		}
	}
	if covered != uint64(totalDocs) {
		return nil, fmt.Errorf("index: inputs cover %d docs, collection has %d", covered, totalDocs)
	}

	rb := NewRawBuilder(totalDocs, opts...)
	for i, ix := range subIndexes {
		offset := offsets[i]
		var walkErr error
		buf := make([]Posting, 0, 256)
		ix.Terms(func(term string, ft uint32) bool {
			cur, err := ix.Cursor(term)
			if err != nil {
				walkErr = err
				return false
			}
			buf = buf[:0]
			for cur.Next() {
				p := cur.Posting()
				buf = append(buf, Posting{Doc: offset + p.Doc, FDT: p.FDT})
			}
			if err := rb.AddPostings(term, buf); err != nil {
				walkErr = fmt.Errorf("index: merge term %q: %w", term, err)
				return false
			}
			return true
		})
		if walkErr != nil {
			return nil, walkErr
		}
	}
	merged, err := rb.Build()
	if err != nil {
		return nil, err
	}
	// Exact document lengths carry over (RawBuilder derives Σf_dt, which
	// equals the indexed-term count the per-sub builders recorded).
	for i, ix := range subIndexes {
		for d := uint32(0); d < ix.NumDocs(); d++ {
			merged.lens[offsets[i]+d] = ix.lens[d]
			merged.weights[offsets[i]+d] = ix.weights[d]
		}
	}
	return merged, nil
}
