package index

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"strconv"
	"testing"
	"testing/quick"
)

// buildTiny builds a small index over fixed documents.
func buildTiny(t *testing.T) *Index {
	t.Helper()
	b := NewBuilder()
	docs := [][]string{
		{"cat", "dog", "cat"},
		{"dog", "fish"},
		{"cat", "fish", "bird", "fish"},
		{"bird"},
	}
	for _, d := range docs {
		b.Add(d)
	}
	ix, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func TestBuilderBasics(t *testing.T) {
	ix := buildTiny(t)
	if ix.NumDocs() != 4 {
		t.Fatalf("NumDocs = %d", ix.NumDocs())
	}
	if ix.NumTerms() != 4 {
		t.Fatalf("NumTerms = %d", ix.NumTerms())
	}
	wantFT := map[string]uint32{"cat": 2, "dog": 2, "fish": 2, "bird": 2}
	for term, want := range wantFT {
		if got := ix.TermFreq(term); got != want {
			t.Errorf("TermFreq(%q) = %d, want %d", term, got, want)
		}
	}
	if got := ix.TermFreq("absent"); got != 0 {
		t.Errorf("TermFreq(absent) = %d", got)
	}
	if ix.NumPostings() != 8 {
		t.Errorf("NumPostings = %d, want 8", ix.NumPostings())
	}
}

func TestDocWeights(t *testing.T) {
	ix := buildTiny(t)
	// Doc 0: cat f=2, dog f=1 -> sqrt(log(3)^2 + log(2)^2)
	want := math.Sqrt(math.Pow(math.Log(3), 2) + math.Pow(math.Log(2), 2))
	got, err := ix.DocWeight(0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-5 {
		t.Errorf("DocWeight(0) = %f, want %f", got, want)
	}
	if _, err := ix.DocWeight(99); err == nil {
		t.Error("DocWeight out of range: want error")
	}
	l, err := ix.DocLen(2)
	if err != nil || l != 4 {
		t.Errorf("DocLen(2) = %d, %v; want 4", l, err)
	}
	if _, err := ix.DocLen(99); err == nil {
		t.Error("DocLen out of range: want error")
	}
}

func TestCursorSequential(t *testing.T) {
	ix := buildTiny(t)
	c, err := ix.Cursor("fish")
	if err != nil {
		t.Fatal(err)
	}
	var got []Posting
	for c.Next() {
		got = append(got, c.Posting())
	}
	want := []Posting{{Doc: 1, FDT: 1}, {Doc: 2, FDT: 2}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("fish postings = %v, want %v", got, want)
	}
	if c.Next() {
		t.Fatal("Next after exhaustion must return false")
	}
}

func TestCursorMissingTerm(t *testing.T) {
	ix := buildTiny(t)
	if _, err := ix.Cursor("unicorn"); err == nil {
		t.Fatal("missing term: want error")
	}
}

func TestTermsWalk(t *testing.T) {
	ix := buildTiny(t)
	var terms []string
	ix.Terms(func(term string, ft uint32) bool {
		terms = append(terms, term)
		return true
	})
	if !sort.StringsAreSorted(terms) {
		t.Fatalf("Terms not sorted: %v", terms)
	}
	// Early stop.
	n := 0
	ix.Terms(func(string, uint32) bool { n++; return n < 2 })
	if n != 2 {
		t.Fatalf("early stop visited %d terms", n)
	}
}

// synthesizeIndex builds an index with one very common term and several rare
// ones across n documents.
func synthesizeIndex(t testing.TB, n int, skipIvl uint32) (*Index, map[string][]Posting) {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	b := NewBuilder(WithSkipInterval(skipIvl))
	truth := map[string][]Posting{}
	for d := 0; d < n; d++ {
		var terms []string
		add := func(term string, f int) {
			for i := 0; i < f; i++ {
				terms = append(terms, term)
			}
			truth[term] = append(truth[term], Posting{Doc: uint32(d), FDT: uint32(f)})
		}
		if rng.Intn(10) < 7 {
			add("common", rng.Intn(3)+1)
		}
		if rng.Intn(10) == 0 {
			add("rare"+strconv.Itoa(rng.Intn(5)), 1)
		}
		add("doc"+strconv.Itoa(d%17), rng.Intn(2)+1)
		b.Add(terms)
	}
	ix, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return ix, truth
}

func TestCursorMatchesTruth(t *testing.T) {
	ix, truth := synthesizeIndex(t, 3000, DefaultSkipInterval)
	for term, want := range truth {
		c, err := ix.Cursor(term)
		if err != nil {
			t.Fatalf("cursor %q: %v", term, err)
		}
		got, err := c.Decode(nil)
		if err != nil {
			t.Fatalf("decode %q: %v", term, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("term %q: postings mismatch (%d vs %d entries)", term, len(got), len(want))
		}
	}
}

func TestAdvance(t *testing.T) {
	ix, truth := synthesizeIndex(t, 3000, DefaultSkipInterval)
	want := truth["common"]
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		c, err := ix.Cursor("common")
		if err != nil {
			t.Fatal(err)
		}
		// A few increasing random targets per cursor.
		target := uint32(0)
		for hop := 0; hop < 4; hop++ {
			target += uint32(rng.Intn(900))
			ok := c.Advance(target)
			// Reference answer.
			i := sort.Search(len(want), func(i int) bool { return want[i].Doc >= target })
			if i == len(want) {
				if ok {
					t.Fatalf("Advance(%d) = true, want false", target)
				}
				break
			}
			if !ok {
				t.Fatalf("Advance(%d) = false, want doc %d", target, want[i].Doc)
			}
			if c.Posting() != want[i] {
				t.Fatalf("Advance(%d) = %+v, want %+v", target, c.Posting(), want[i])
			}
			target = c.Posting().Doc
		}
	}
}

func TestAdvanceUsesSkips(t *testing.T) {
	ix, truth := synthesizeIndex(t, 5000, DefaultSkipInterval)
	want := truth["common"]
	last := want[len(want)-1].Doc

	withSkips, err := ix.Cursor("common")
	if err != nil {
		t.Fatal(err)
	}
	if !withSkips.Advance(last) {
		t.Fatal("Advance to last doc failed")
	}
	if withSkips.DecodedPostings >= uint64(len(want))/2 {
		t.Fatalf("skip-based Advance decoded %d of %d postings: skips not effective",
			withSkips.DecodedPostings, len(want))
	}

	ixNoSkip, _ := synthesizeIndex(t, 5000, 0)
	noSkips, err := ixNoSkip.Cursor("common")
	if err != nil {
		t.Fatal(err)
	}
	if !noSkips.Advance(last) {
		t.Fatal("Advance without skips failed")
	}
	if noSkips.DecodedPostings != uint64(len(want)) {
		t.Fatalf("skipless Advance decoded %d, want all %d", noSkips.DecodedPostings, len(want))
	}
}

func TestDecodeOnConsumedCursor(t *testing.T) {
	ix := buildTiny(t)
	c, err := ix.Cursor("cat")
	if err != nil {
		t.Fatal(err)
	}
	c.Next()
	if _, err := c.Decode(nil); err == nil {
		t.Fatal("Decode on consumed cursor: want error")
	}
}

func TestPersistRoundTrip(t *testing.T) {
	ix, truth := synthesizeIndex(t, 2000, DefaultSkipInterval)
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	ix2, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if ix2.NumDocs() != ix.NumDocs() || ix2.NumTerms() != ix.NumTerms() ||
		ix2.NumPostings() != ix.NumPostings() {
		t.Fatalf("header mismatch after round trip")
	}
	for d := uint32(0); d < ix.NumDocs(); d++ {
		w1, _ := ix.DocWeight(d)
		w2, _ := ix2.DocWeight(d)
		if w1 != w2 {
			t.Fatalf("doc %d weight %f != %f", d, w1, w2)
		}
	}
	for term, want := range truth {
		c, err := ix2.Cursor(term)
		if err != nil {
			t.Fatalf("reloaded cursor %q: %v", term, err)
		}
		got, err := c.Decode(nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("term %q mismatch after reload", term)
		}
	}
	// Skip structure must survive persistence.
	c, err := ix2.Cursor("common")
	if err != nil {
		t.Fatal(err)
	}
	lastDoc := truth["common"][len(truth["common"])-1].Doc
	if !c.Advance(lastDoc) {
		t.Fatal("Advance on reloaded index failed")
	}
	if c.DecodedPostings >= uint64(len(truth["common"]))/2 {
		t.Fatal("skips not effective after reload")
	}
}

func TestPersistRejectsCorrupt(t *testing.T) {
	ix := buildTiny(t)
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := ReadFrom(bytes.NewReader(raw[:8])); err == nil {
		t.Fatal("truncated index: want error")
	}
	bad := append([]byte("XXXX"), raw[4:]...)
	if _, err := ReadFrom(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic: want error")
	}
}

func TestBuildRejectsOversizeTerm(t *testing.T) {
	b := NewBuilder()
	long := make([]byte, 300)
	for i := range long {
		long[i] = 'x'
	}
	b.Add([]string{string(long)})
	if _, err := b.Build(); err == nil {
		t.Fatal("300-byte term: want error")
	}
}

func TestQuickIndexRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := NewBuilder(WithSkipInterval(uint32(rng.Intn(8)) * 4)) // sometimes 0
		ndocs := rng.Intn(200) + 1
		truth := map[string][]Posting{}
		for d := 0; d < ndocs; d++ {
			nterms := rng.Intn(10)
			counts := map[string]int{}
			for i := 0; i < nterms; i++ {
				counts["t"+strconv.Itoa(rng.Intn(30))]++
			}
			var terms []string
			for term, f := range counts {
				for i := 0; i < f; i++ {
					terms = append(terms, term)
				}
				truth[term] = append(truth[term], Posting{Doc: uint32(d), FDT: uint32(f)})
			}
			b.Add(terms)
		}
		ix, err := b.Build()
		if err != nil {
			return false
		}
		for term, want := range truth {
			sort.Slice(want, func(i, j int) bool { return want[i].Doc < want[j].Doc })
			c, err := ix.Cursor(term)
			if err != nil {
				return false
			}
			got, err := c.Decode(nil)
			if err != nil || !reflect.DeepEqual(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	docs := make([][]string, 2000)
	for d := range docs {
		n := rng.Intn(100) + 20
		docs[d] = make([]string, n)
		for i := range docs[d] {
			docs[d][i] = "term" + strconv.Itoa(rng.Intn(5000))
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		builder := NewBuilder()
		for _, d := range docs {
			builder.Add(d)
		}
		if _, err := builder.Build(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCursorScan(b *testing.B) {
	ix, truth := synthesizeIndex(b, 20000, DefaultSkipInterval)
	n := len(truth["common"])
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := ix.Cursor("common")
		if err != nil {
			b.Fatal(err)
		}
		cnt := 0
		for c.Next() {
			cnt++
		}
		if cnt != n {
			b.Fatalf("scanned %d, want %d", cnt, n)
		}
	}
}

// TestRawBuilderMatchesBuilder verifies that building from postings lists
// produces the same index as building from document term lists.
func TestRawBuilderMatchesBuilder(t *testing.T) {
	ix, truth := synthesizeIndex(t, 1500, DefaultSkipInterval)

	rb := NewRawBuilder(ix.NumDocs())
	for term, postings := range truth {
		if err := rb.AddPostings(term, postings); err != nil {
			t.Fatal(err)
		}
	}
	raw, err := rb.Build()
	if err != nil {
		t.Fatal(err)
	}
	if raw.NumDocs() != ix.NumDocs() || raw.NumTerms() != ix.NumTerms() ||
		raw.NumPostings() != ix.NumPostings() || raw.SizeBytes() != ix.SizeBytes() {
		t.Fatalf("raw index shape differs: docs %d/%d terms %d/%d postings %d/%d bytes %d/%d",
			raw.NumDocs(), ix.NumDocs(), raw.NumTerms(), ix.NumTerms(),
			raw.NumPostings(), ix.NumPostings(), raw.SizeBytes(), ix.SizeBytes())
	}
	for d := uint32(0); d < ix.NumDocs(); d++ {
		w1, _ := ix.DocWeight(d)
		w2, _ := raw.DocWeight(d)
		if math.Abs(w1-w2) > 1e-5 {
			t.Fatalf("doc %d weight %f != %f", d, w1, w2)
		}
	}
	for term, want := range truth {
		c, err := raw.Cursor(term)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Decode(nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("term %q postings differ", term)
		}
	}
}

// TestRawBuilderMergesSplitLists checks that a term's postings supplied in
// several AddPostings calls (as when merging subcollection indexes) fuse
// into one correct list.
func TestRawBuilderMergesSplitLists(t *testing.T) {
	rb := NewRawBuilder(100)
	if err := rb.AddPostings("t", []Posting{{Doc: 50, FDT: 2}, {Doc: 70, FDT: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := rb.AddPostings("t", []Posting{{Doc: 5, FDT: 3}}); err != nil {
		t.Fatal(err)
	}
	ix, err := rb.Build()
	if err != nil {
		t.Fatal(err)
	}
	c, err := ix.Cursor("t")
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Decode(nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []Posting{{Doc: 5, FDT: 3}, {Doc: 50, FDT: 2}, {Doc: 70, FDT: 1}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("merged list = %v, want %v", got, want)
	}
}

func TestRawBuilderRejectsBadPostings(t *testing.T) {
	rb := NewRawBuilder(10)
	if err := rb.AddPostings("t", []Posting{{Doc: 10, FDT: 1}}); err == nil {
		t.Fatal("doc outside collection: want error")
	}
	if err := rb.AddPostings("t", []Posting{{Doc: 1, FDT: 0}}); err == nil {
		t.Fatal("zero f_dt: want error")
	}
	rb2 := NewRawBuilder(10)
	if err := rb2.AddPostings("t", []Posting{{Doc: 3, FDT: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := rb2.AddPostings("t", []Posting{{Doc: 3, FDT: 2}}); err != nil {
		t.Fatal(err)
	}
	if _, err := rb2.Build(); err == nil {
		t.Fatal("duplicate doc across calls: want error at Build")
	}
}

// TestMergeEquivalentToDirectBuild splits a corpus, builds per-part
// indexes, merges them, and requires bit-identical equality with the index
// of the whole corpus.
func TestMergeEquivalentToDirectBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	var allDocs [][]string
	for d := 0; d < 900; d++ {
		n := rng.Intn(30) + 1
		terms := make([]string, n)
		for i := range terms {
			terms[i] = "t" + strconv.Itoa(rng.Intn(200))
		}
		allDocs = append(allDocs, terms)
	}
	whole := NewBuilder()
	for _, d := range allDocs {
		whole.Add(d)
	}
	want, err := whole.Build()
	if err != nil {
		t.Fatal(err)
	}

	cuts := []int{0, 250, 600, 900}
	var subs []*Index
	var offsets []uint32
	for i := 0; i+1 < len(cuts); i++ {
		b := NewBuilder()
		for _, d := range allDocs[cuts[i]:cuts[i+1]] {
			b.Add(d)
		}
		ix, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, ix)
		offsets = append(offsets, uint32(cuts[i]))
	}
	got, err := Merge(subs, offsets, uint32(len(allDocs)))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumDocs() != want.NumDocs() || got.NumTerms() != want.NumTerms() ||
		got.NumPostings() != want.NumPostings() || got.SizeBytes() != want.SizeBytes() {
		t.Fatalf("merged shape differs: %d/%d docs, %d/%d terms, %d/%d postings, %d/%d bytes",
			got.NumDocs(), want.NumDocs(), got.NumTerms(), want.NumTerms(),
			got.NumPostings(), want.NumPostings(), got.SizeBytes(), want.SizeBytes())
	}
	for d := uint32(0); d < want.NumDocs(); d++ {
		w1, _ := want.DocWeight(d)
		w2, _ := got.DocWeight(d)
		if w1 != w2 {
			t.Fatalf("doc %d weight %f != %f", d, w1, w2)
		}
		l1, _ := want.DocLen(d)
		l2, _ := got.DocLen(d)
		if l1 != l2 {
			t.Fatalf("doc %d len %d != %d", d, l1, l2)
		}
	}
	want.Terms(func(term string, ft uint32) bool {
		c1, err1 := want.Cursor(term)
		c2, err2 := got.Cursor(term)
		if err1 != nil || err2 != nil {
			t.Fatalf("cursor %q: %v %v", term, err1, err2)
		}
		p1, err1 := c1.Decode(nil)
		p2, err2 := c2.Decode(nil)
		if err1 != nil || err2 != nil || !reflect.DeepEqual(p1, p2) {
			t.Fatalf("term %q postings differ after merge", term)
		}
		return true
	})
}

func TestMergeValidation(t *testing.T) {
	b := NewBuilder()
	b.Add([]string{"x"})
	ix, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Merge(nil, nil, 0); err == nil {
		t.Fatal("empty merge: want error")
	}
	if _, err := Merge([]*Index{ix}, []uint32{0, 1}, 1); err == nil {
		t.Fatal("offset count mismatch: want error")
	}
	if _, err := Merge([]*Index{ix}, []uint32{5}, 1); err == nil {
		t.Fatal("offset beyond collection: want error")
	}
	if _, err := Merge([]*Index{ix}, []uint32{0}, 10); err == nil {
		t.Fatal("coverage mismatch: want error")
	}
}

func TestQuantizeWeights(t *testing.T) {
	ix, _ := synthesizeIndex(t, 2000, DefaultSkipInterval)
	q, err := ix.QuantizeWeights()
	if err != nil {
		t.Fatal(err)
	}
	// Quantized weights stay within one bucket (~0.4% for 256 log buckets
	// over this range) of the exact values.
	var maxRel float64
	for d := uint32(0); d < ix.NumDocs(); d++ {
		exact, _ := ix.DocWeight(d)
		approx, _ := q.DocWeight(d)
		if exact == 0 {
			if approx != 0 {
				t.Fatalf("doc %d: zero weight became %f", d, approx)
			}
			continue
		}
		rel := math.Abs(approx-exact) / exact
		if rel > maxRel {
			maxRel = rel
		}
	}
	if maxRel > 0.05 {
		t.Fatalf("max relative quantization error %.4f too large", maxRel)
	}
	// Postings are shared and unaffected.
	c1, _ := ix.Cursor("common")
	c2, _ := q.Cursor("common")
	p1, _ := c1.Decode(nil)
	p2, _ := c2.Decode(nil)
	if !reflect.DeepEqual(p1, p2) {
		t.Fatal("quantization disturbed postings")
	}
	// Table size claim: 4 bytes exact vs ~1 byte quantized.
	if q.WeightsTableBytes(true) >= ix.WeightsTableBytes(false)/2 {
		t.Fatalf("quantized table %d B not well below exact %d B",
			q.WeightsTableBytes(true), ix.WeightsTableBytes(false))
	}
}

func TestQuantizeEmptyIndex(t *testing.T) {
	b := NewBuilder()
	ix, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.QuantizeWeights(); err == nil {
		t.Fatal("empty index: want error")
	}
	// All-empty documents quantize to themselves.
	b2 := NewBuilder()
	b2.Add(nil)
	ix2, err := b2.Build()
	if err != nil {
		t.Fatal(err)
	}
	q, err := ix2.QuantizeWeights()
	if err != nil {
		t.Fatal(err)
	}
	if w, _ := q.DocWeight(0); w != 0 {
		t.Fatalf("empty doc weight %f", w)
	}
}
