// Package index implements an MG-style compressed inverted index: for each
// term a Golomb/gamma-coded postings list with self-indexing skip points
// (Moffat & Zobel, TOIS 1996), a sorted front-codable dictionary, and the
// table of document weights W_d used by the cosine measure.
//
// The index is immutable once built. Build one with a Builder, persist it
// with WriteTo/ReadFrom, and query it through TermCursor (sequential or
// skip-based access).
package index

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"teraphim/internal/bitio"
	"teraphim/internal/codec"
)

// DefaultSkipInterval is the number of postings between synchronisation
// points in long lists. MG tunes this per list; a fixed interval keeps the
// format simple while preserving the asymptotics.
const DefaultSkipInterval = 64

// ErrTermNotFound is returned by Cursor when the term is not indexed.
var ErrTermNotFound = errors.New("index: term not found")

// Posting aliases codec.Posting: one (doc, f_dt) pair.
type Posting = codec.Posting

// termEntry holds the index data for one term.
type termEntry struct {
	term     string
	ft       uint32 // number of documents containing the term
	postings []byte // compressed postings
	// Skip structure: skipDocs[i] is the last doc id of block i,
	// skipBits[i] the bit offset of block i+1 within postings. Present only
	// for lists longer than the skip interval.
	skipDocs []uint32
	skipBits []uint32
}

// Index is an immutable inverted file over one collection.
type Index struct {
	entries  []termEntry    // sorted by term
	byTerm   map[string]int // term -> entries index
	weights  []float32      // W_d per document
	lens     []uint32       // indexed-term count per document (for stats)
	numDocs  uint32
	numPtrs  uint64 // total postings count
	skipIvl  uint32
	postings uint64 // total compressed postings bytes

	// invW caches 1/W_d (0 where W_d is 0), built lazily: the scoring
	// kernel's normalisation pass is then a pure array scan with no
	// error-returning DocWeight calls. Safe because the index is immutable
	// once constructed. maxInv caches max_d 1/W_d alongside it — the
	// document-independent normalisation bound the dynamic-pruning
	// evaluators use before a candidate document is known.
	invOnce sync.Once
	invW    []float64
	maxInv  float64

	// maxFDT caches, per term entry, the largest within-document frequency
	// in that term's list — the quantity behind the exact per-term score
	// upper bound w_qt·log(maxFDT+1) that rank-safe dynamic pruning
	// (MaxScore/WAND) compares against the current top-k threshold. The
	// on-disk format does not store it, so the table is built lazily with
	// one full decode pass over every list and cached; immutability makes
	// the sync.Once sufficient.
	maxOnce sync.Once
	maxFDT  []uint32
}

// Builder accumulates documents and produces an Index.
type Builder struct {
	terms   map[string][]Posting
	weights []float32
	lens    []uint32
	skipIvl uint32
}

// BuilderOption configures a Builder.
type BuilderOption func(*Builder)

// WithSkipInterval overrides the skip-point spacing; interval 0 disables
// skip structures entirely (used by the skipping ablation).
func WithSkipInterval(interval uint32) BuilderOption {
	return func(b *Builder) { b.skipIvl = interval }
}

// NewBuilder returns an empty Builder.
func NewBuilder(opts ...BuilderOption) *Builder {
	b := &Builder{terms: make(map[string][]Posting, 1024), skipIvl: DefaultSkipInterval}
	for _, opt := range opts {
		opt(b)
	}
	return b
}

// Add indexes one document given its analysed terms and returns the document
// id assigned (dense, starting at 0). Terms may repeat; repeats become f_dt.
func (b *Builder) Add(terms []string) uint32 {
	doc := uint32(len(b.weights))
	counts := make(map[string]uint32, len(terms))
	for _, t := range terms {
		counts[t]++
	}
	var sumSq float64
	for t, f := range counts {
		b.terms[t] = append(b.terms[t], Posting{Doc: doc, FDT: f})
		w := math.Log(float64(f) + 1)
		sumSq += w * w
	}
	b.weights = append(b.weights, float32(math.Sqrt(sumSq)))
	b.lens = append(b.lens, uint32(len(terms)))
	return doc
}

// NumDocs reports the number of documents added so far.
func (b *Builder) NumDocs() int { return len(b.weights) }

// Build freezes the builder into an immutable Index. The Builder must not be
// used afterwards.
func (b *Builder) Build() (*Index, error) {
	idx := &Index{
		entries: make([]termEntry, 0, len(b.terms)),
		byTerm:  make(map[string]int, len(b.terms)),
		weights: b.weights,
		lens:    b.lens,
		numDocs: uint32(len(b.weights)),
		skipIvl: b.skipIvl,
	}
	terms := make([]string, 0, len(b.terms))
	for t := range b.terms {
		terms = append(terms, t)
	}
	sort.Strings(terms)
	w := bitio.NewWriter(4096)
	for _, t := range terms {
		postings := b.terms[t]
		// Builder.Add appends docs in increasing order, so the list is
		// already sorted; verify cheaply in case of misuse.
		entry, err := compressList(w, t, postings, idx.numDocs, b.skipIvl)
		if err != nil {
			return nil, fmt.Errorf("index: term %q: %w", t, err)
		}
		idx.byTerm[t] = len(idx.entries)
		idx.entries = append(idx.entries, entry)
		idx.numPtrs += uint64(len(postings))
		idx.postings += uint64(len(entry.postings))
	}
	b.terms = nil
	return idx, nil
}

// compressList encodes one postings list block by block so that each block
// can be decoded independently after a skip.
func compressList(w *bitio.Writer, term string, postings []Posting, numDocs, skipIvl uint32) (termEntry, error) {
	entry := termEntry{term: term, ft: uint32(len(postings))}
	if len(term) == 0 || len(term) > 255 {
		return entry, fmt.Errorf("term length %d outside [1, 255]", len(term))
	}
	w.Reset()
	useSkips := skipIvl > 0 && uint32(len(postings)) > skipIvl
	bGolomb := codec.GolombParameter(uint64(numDocs), uint64(len(postings)))
	prev := int64(-1)
	for i, p := range postings {
		if int64(p.Doc) <= prev && i > 0 {
			return entry, fmt.Errorf("postings not strictly increasing at %d", i)
		}
		blockStart := useSkips && i > 0 && uint32(i)%skipIvl == 0
		if blockStart {
			// Record a sync point: last doc of the previous block and the
			// bit offset where this block starts. Gap coding is continuous
			// across blocks, so a decoder seeking here resumes with
			// prev = skipDocs[i].
			entry.skipDocs = append(entry.skipDocs, uint32(prev))
			entry.skipBits = append(entry.skipBits, uint32(w.BitLen()))
		}
		gap := int64(p.Doc) - prev
		if gap <= 0 {
			return entry, fmt.Errorf("non-positive gap at posting %d", i)
		}
		if err := codec.PutGolomb(w, uint64(gap), bGolomb); err != nil {
			return entry, err
		}
		if err := codec.PutGamma(w, uint64(p.FDT)); err != nil {
			return entry, err
		}
		prev = int64(p.Doc)
	}
	entry.postings = append([]byte(nil), w.Bytes()...)
	return entry, nil
}

// NumDocs returns the number of documents in the collection.
func (ix *Index) NumDocs() uint32 { return ix.numDocs }

// NumTerms returns the number of distinct indexed terms.
func (ix *Index) NumTerms() int { return len(ix.entries) }

// NumPostings returns the total number of (doc, f_dt) pairs stored.
func (ix *Index) NumPostings() uint64 { return ix.numPtrs }

// DocWeight returns W_d for a document.
func (ix *Index) DocWeight(doc uint32) (float64, error) {
	if doc >= ix.numDocs {
		return 0, fmt.Errorf("index: doc %d outside collection of %d", doc, ix.numDocs)
	}
	return float64(ix.weights[doc]), nil
}

// InvDocWeights returns the cached reciprocal document-weight table:
// entry d is 1/W_d, or 0 when W_d is 0 (a document that cannot score).
// The slice is shared and must not be modified.
func (ix *Index) InvDocWeights() []float64 {
	ix.invOnce.Do(func() {
		inv := make([]float64, len(ix.weights))
		maxInv := 0.0
		for d, w := range ix.weights {
			if w != 0 {
				inv[d] = 1 / float64(w)
				if inv[d] > maxInv {
					maxInv = inv[d]
				}
			}
		}
		ix.invW = inv
		ix.maxInv = maxInv
	})
	return ix.invW
}

// MaxInvDocWeight returns max_d 1/W_d over the collection (0 when every
// document weight is 0). Dynamic pruning scales accumulator upper bounds by
// it when no specific candidate document is in hand yet: for any document,
// score ≤ bound·MaxInvDocWeight/W_q.
func (ix *Index) MaxInvDocWeight() float64 {
	ix.InvDocWeights()
	return ix.maxInv
}

// MaxFDT returns the largest within-document frequency among term's
// postings (0 when the term is absent). Together with the query weight it
// yields the exact per-list contribution cap w_qt·log(MaxFDT+1) that the
// rank-safe evaluators prune against. The whole table is computed on first
// use — one sequential decode of every list, amortised across all
// subsequent queries — because, unlike FreqSorted, the document-sorted
// format does not carry the maximum in its dictionary. A corrupt list
// yields the maximum of its decodable prefix, which still bounds every
// posting any evaluator can reach.
func (ix *Index) MaxFDT(term string) uint32 {
	i, ok := ix.byTerm[term]
	if !ok {
		return 0
	}
	ix.maxOnce.Do(func() {
		table := make([]uint32, len(ix.entries))
		var c TermCursor
		for j := range ix.entries {
			ix.resetCursorEntry(&c, &ix.entries[j])
			for {
				blk := c.NextBlock()
				if blk == nil {
					break
				}
				for _, p := range blk {
					if p.FDT > table[j] {
						table[j] = p.FDT
					}
				}
			}
		}
		ix.maxFDT = table
	})
	return ix.maxFDT[i]
}

// DocLen returns the number of term occurrences indexed for a document.
func (ix *Index) DocLen(doc uint32) (uint32, error) {
	if doc >= ix.numDocs {
		return 0, fmt.Errorf("index: doc %d outside collection of %d", doc, ix.numDocs)
	}
	return ix.lens[doc], nil
}

// TermFreq returns f_t, the number of documents containing term (0 when the
// term is absent).
func (ix *Index) TermFreq(term string) uint32 {
	if i, ok := ix.byTerm[term]; ok {
		return ix.entries[i].ft
	}
	return 0
}

// Terms calls fn for every indexed term in lexicographic order with its f_t.
// fn returning false stops the walk.
func (ix *Index) Terms(fn func(term string, ft uint32) bool) {
	for _, e := range ix.entries {
		if !fn(e.term, e.ft) {
			return
		}
	}
}

// SizeBytes reports the compressed size of the postings (the "index size"
// quantity the paper reports for the CI methodology), excluding the
// dictionary.
func (ix *Index) SizeBytes() uint64 { return ix.postings }

// ListBytes reports the exact compressed size in bytes of one term's
// postings list (0 when the term is absent). It feeds Stats.IndexBytesRead
// exactly, replacing the earlier pro-rata approximation over SizeBytes.
func (ix *Index) ListBytes(term string) uint64 {
	if i, ok := ix.byTerm[term]; ok {
		return uint64(len(ix.entries[i].postings))
	}
	return 0
}

// DictSizeBytes approximates the dictionary ("vocabulary") size: the
// quantity a CV receptionist must store per collection.
func (ix *Index) DictSizeBytes() uint64 {
	var n uint64
	for _, e := range ix.entries {
		n += uint64(len(e.term)) + 8 // term bytes + f_t + offset bookkeeping
	}
	return n
}
