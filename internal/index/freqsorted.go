package index

import (
	"fmt"
	"sort"
	"sync"

	"teraphim/internal/bitio"
	"teraphim/internal/codec"
)

// FreqSorted is a frequency-sorted inverted file in the style of Persin,
// Zobel & Sacks-Davis (JASIS 1996), the organisation the paper's §5 singles
// out as future work: each term's postings are ordered by decreasing
// within-document frequency rather than by document number, so query
// evaluation can stop reading a list as soon as the remaining postings'
// contributions fall below a per-query threshold — "the volume of index
// information processed can be reduced by a factor of five without
// reducing effectiveness".
//
// Layout per list: a sequence of runs, one per distinct f_dt value in
// decreasing order. Each run stores the f_dt (as a gamma-coded downward gap
// from the previous run's value), the run length (gamma), and the run's
// document numbers (ascending, Golomb d-gap coded).
type FreqSorted struct {
	entries map[string]*fsEntry
	weights []float32
	numDocs uint32
	bytes   uint64
	maxFDT  map[string]uint32

	// invW mirrors Index.InvDocWeights: lazily built 1/W_d table for the
	// pruned evaluator's array-scan normalisation.
	invOnce sync.Once
	invW    []float64
}

type fsEntry struct {
	ft   uint32
	data []byte
}

// BuildFreqSorted converts a document-sorted index into its
// frequency-sorted equivalent. Document weights are shared.
func BuildFreqSorted(ix *Index) (*FreqSorted, error) {
	fs := &FreqSorted{
		entries: make(map[string]*fsEntry, ix.NumTerms()),
		weights: ix.weights,
		numDocs: ix.numDocs,
		maxFDT:  make(map[string]uint32, ix.NumTerms()),
	}
	var walkErr error
	w := bitio.NewWriter(4096)
	ix.Terms(func(term string, ft uint32) bool {
		cur, err := ix.Cursor(term)
		if err != nil {
			walkErr = err
			return false
		}
		postings, err := cur.Decode(nil)
		if err != nil {
			walkErr = err
			return false
		}
		entry, maxF, err := encodeFreqSorted(w, postings, ix.numDocs)
		if err != nil {
			walkErr = fmt.Errorf("index: term %q: %w", term, err)
			return false
		}
		fs.entries[term] = entry
		fs.maxFDT[term] = maxF
		fs.bytes += uint64(len(entry.data))
		return true
	})
	if walkErr != nil {
		return nil, walkErr
	}
	return fs, nil
}

func encodeFreqSorted(w *bitio.Writer, postings []Posting, numDocs uint32) (*fsEntry, uint32, error) {
	w.Reset()
	// Group postings by f_dt.
	byFreq := make(map[uint32][]uint32)
	for _, p := range postings {
		byFreq[p.FDT] = append(byFreq[p.FDT], p.Doc)
	}
	freqs := make([]uint32, 0, len(byFreq))
	for f := range byFreq {
		freqs = append(freqs, f)
	}
	sort.Slice(freqs, func(i, j int) bool { return freqs[i] > freqs[j] })
	var maxF uint32
	if len(freqs) > 0 {
		maxF = freqs[0]
	}
	// Number of runs first.
	if err := codec.PutGamma(w, uint64(len(freqs))+1); err != nil {
		return nil, 0, err
	}
	prevF := maxF + 1
	for _, f := range freqs {
		docs := byFreq[f]
		sort.Slice(docs, func(i, j int) bool { return docs[i] < docs[j] })
		// f_dt as downward gap from the previous run (≥1).
		if err := codec.PutGamma(w, uint64(prevF-f)); err != nil {
			return nil, 0, err
		}
		prevF = f
		if err := codec.PutGamma(w, uint64(len(docs))); err != nil {
			return nil, 0, err
		}
		b := codec.GolombParameter(uint64(numDocs), uint64(len(docs)))
		prevDoc := int64(-1)
		for _, d := range docs {
			if err := codec.PutGolomb(w, uint64(int64(d)-prevDoc), b); err != nil {
				return nil, 0, err
			}
			prevDoc = int64(d)
		}
	}
	return &fsEntry{ft: uint32(len(postings)), data: append([]byte(nil), w.Bytes()...)}, maxF, nil
}

// NumDocs returns the collection size.
func (fs *FreqSorted) NumDocs() uint32 { return fs.numDocs }

// SizeBytes returns total compressed postings bytes.
func (fs *FreqSorted) SizeBytes() uint64 { return fs.bytes }

// TermFreq returns f_t for term (0 when absent).
func (fs *FreqSorted) TermFreq(term string) uint32 {
	if e, ok := fs.entries[term]; ok {
		return e.ft
	}
	return 0
}

// MaxFDT returns the largest within-document frequency of term — the first
// run's value, available without decoding (stored in the dictionary, as
// Persin et al. require for threshold computation).
func (fs *FreqSorted) MaxFDT(term string) uint32 { return fs.maxFDT[term] }

// ListBytes reports the exact compressed size in bytes of one term's
// frequency-sorted list (0 when the term is absent), mirroring
// Index.ListBytes so the pruned evaluator feeds Stats.IndexBytesRead the
// same way the exact kernel does.
func (fs *FreqSorted) ListBytes(term string) uint64 {
	if e, ok := fs.entries[term]; ok {
		return uint64(len(e.data))
	}
	return 0
}

// DocWeight returns W_d.
func (fs *FreqSorted) DocWeight(doc uint32) (float64, error) {
	if doc >= fs.numDocs {
		return 0, fmt.Errorf("index: doc %d outside collection of %d", doc, fs.numDocs)
	}
	return float64(fs.weights[doc]), nil
}

// InvDocWeights returns the cached reciprocal document-weight table:
// entry d is 1/W_d, or 0 when W_d is 0. The slice is shared and must not be
// modified.
func (fs *FreqSorted) InvDocWeights() []float64 {
	fs.invOnce.Do(func() {
		inv := make([]float64, len(fs.weights))
		for d, w := range fs.weights {
			if w != 0 {
				inv[d] = 1 / float64(w)
			}
		}
		fs.invW = inv
	})
	return fs.invW
}

// FreqCursor iterates one frequency-sorted list run by run, in decreasing
// f_dt order. Cursors are reusable across terms via ResetCursor, retaining
// their run buffer, so the pruned evaluator walks every list of a query
// with one pooled cursor.
type FreqCursor struct {
	r        bitio.Reader
	numDocs  uint32
	runsLeft uint64
	prevF    uint32

	// Current run state.
	fdt     uint32
	docs    []uint32
	decoded uint64
}

// Cursor opens a frequency-sorted cursor for term.
func (fs *FreqSorted) Cursor(term string) (*FreqCursor, error) {
	c := &FreqCursor{}
	if err := fs.ResetCursor(c, term); err != nil {
		return nil, err
	}
	return c, nil
}

// ResetCursor re-initialises c over term's list, retaining its run buffer.
func (fs *FreqSorted) ResetCursor(c *FreqCursor, term string) error {
	e, ok := fs.entries[term]
	if !ok {
		return fmt.Errorf("index: %w: %q", ErrTermNotFound, term)
	}
	c.r.Reset(e.data)
	nruns, err := codec.Gamma(&c.r)
	if err != nil {
		return err
	}
	c.numDocs = fs.numDocs
	c.runsLeft = nruns - 1
	c.prevF = fs.maxFDT[term] + 1
	c.fdt = 0
	c.docs = c.docs[:0]
	c.decoded = 0
	return nil
}

// NextRun decodes the next run, returning its f_dt and documents; ok is
// false at the end of the list. The returned slice is valid until the next
// call.
func (c *FreqCursor) NextRun() (fdt uint32, docs []uint32, ok bool) {
	if c.runsLeft == 0 {
		return 0, nil, false
	}
	c.runsLeft--
	gap, err := codec.Gamma(&c.r)
	if err != nil {
		c.runsLeft = 0
		return 0, nil, false
	}
	c.fdt = c.prevF - uint32(gap)
	c.prevF = c.fdt
	n, err := codec.Gamma(&c.r)
	if err != nil {
		c.runsLeft = 0
		return 0, nil, false
	}
	b := codec.GolombParameter(uint64(c.numDocs), n)
	c.docs = c.docs[:0]
	prevDoc := int64(-1)
	for i := uint64(0); i < n; i++ {
		g, err := codec.Golomb(&c.r, b)
		if err != nil {
			c.runsLeft = 0
			return 0, nil, false
		}
		prevDoc += int64(g)
		c.docs = append(c.docs, uint32(prevDoc))
	}
	c.decoded += n
	return c.fdt, c.docs, true
}

// Decoded reports postings decoded so far.
func (c *FreqCursor) Decoded() uint64 { return c.decoded }
