package index

import (
	"fmt"
	"sort"

	"teraphim/internal/bitio"
	"teraphim/internal/codec"
)

// TermCursor iterates the postings of one term in increasing document
// order. Next reads sequentially; Advance uses the skip structure to jump
// forward, decoding only the block containing the target — the "skipping"
// optimisation whose effect the paper estimates at 2x for small k'.
type TermCursor struct {
	entry   *termEntry
	r       *bitio.Reader
	golombB uint64
	pos     uint32 // postings consumed so far
	prevDoc int64
	cur     Posting
	valid   bool
	skipIvl uint32

	// DecodedPostings counts postings actually decoded, including those
	// skipped over sequentially but excluding those bypassed via skip
	// pointers; it feeds the CPU cost model.
	DecodedPostings uint64
}

// Cursor returns a cursor over the postings of term.
func (ix *Index) Cursor(term string) (*TermCursor, error) {
	i, ok := ix.byTerm[term]
	if !ok {
		return nil, fmt.Errorf("index: %w: %q", ErrTermNotFound, term)
	}
	e := &ix.entries[i]
	return &TermCursor{
		entry:   e,
		r:       bitio.NewReader(e.postings),
		golombB: codec.GolombParameter(uint64(ix.numDocs), uint64(e.ft)),
		prevDoc: -1,
		skipIvl: ix.skipIvl,
	}, nil
}

// FT returns f_t for the cursor's term.
func (c *TermCursor) FT() uint32 { return c.entry.ft }

// Next advances to the next posting, returning false at the end of the list.
func (c *TermCursor) Next() bool {
	if c.pos >= c.entry.ft {
		c.valid = false
		return false
	}
	gap, err := codec.Golomb(c.r, c.golombB)
	if err != nil {
		c.valid = false
		return false
	}
	fdt, err := codec.Gamma(c.r)
	if err != nil {
		c.valid = false
		return false
	}
	c.prevDoc += int64(gap)
	c.cur = Posting{Doc: uint32(c.prevDoc), FDT: uint32(fdt)}
	c.pos++
	c.valid = true
	c.DecodedPostings++
	return true
}

// Posting returns the current posting; valid only after Next or Advance
// returned true.
func (c *TermCursor) Posting() Posting { return c.cur }

// Advance positions the cursor at the first posting with Doc >= target,
// using skip pointers where profitable. It returns false when no such
// posting exists. After Advance returns true, Posting is valid.
func (c *TermCursor) Advance(target uint32) bool {
	if c.valid && c.cur.Doc >= target {
		return true
	}
	// Use the skip table to find the last block whose preceding doc is
	// below the target, if it is ahead of our position.
	if n := len(c.entry.skipDocs); n > 0 {
		// block b covers postings [(b)*ivl, (b+1)*ivl); skipDocs[i] is the
		// doc before block i+1 begins.
		i := sort.Search(n, func(i int) bool { return c.entry.skipDocs[i] >= target })
		// Block i+1 is the first that could contain the target... blocks
		// before it end with docs < target. Jump to block i (0-based skip
		// entry i-1... careful): skip entry j points at block j+1.
		if i > 0 {
			j := i - 1 // last skip entry with skipDocs[j] < target
			blockFirstPos := uint32(j+1) * c.skipIvl
			if blockFirstPos > c.pos {
				if err := c.r.SeekBit(int(c.entry.skipBits[j])); err != nil {
					c.valid = false
					return false
				}
				c.pos = blockFirstPos
				c.prevDoc = int64(c.entry.skipDocs[j])
				c.valid = false
			}
		}
	}
	for c.Next() {
		if c.cur.Doc >= target {
			return true
		}
	}
	return false
}

// Decode reads the entire list into dst (appending) and returns it. The
// cursor must be fresh (no Next/Advance calls yet).
func (c *TermCursor) Decode(dst []Posting) ([]Posting, error) {
	if c.pos != 0 {
		return dst, fmt.Errorf("index: Decode on a consumed cursor")
	}
	for c.Next() {
		dst = append(dst, c.cur)
	}
	if c.pos != c.entry.ft {
		return dst, fmt.Errorf("index: decoded %d of %d postings", c.pos, c.entry.ft)
	}
	return dst, nil
}
