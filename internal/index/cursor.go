package index

import (
	"fmt"
	"sort"

	"teraphim/internal/bitio"
	"teraphim/internal/codec"
)

// fallbackBlock is the decode-block size for lists without skip structures
// (skip interval 0, the skipping ablation).
const fallbackBlock = 64

// TermCursor iterates the postings of one term in increasing document
// order. Next reads sequentially; Advance uses the skip structure to jump
// forward, decoding only the block containing the target — the "skipping"
// optimisation whose effect the paper estimates at 2x for small k'.
//
// Postings are decoded a skip-block at a time into an internal buffer via
// codec.DecodePostingsInto, so the per-posting cost is an array read rather
// than a bit-level decode call. The buffer (and the cursor itself, through
// Index.ResetCursor) is reusable across terms and queries, which is what
// keeps the scoring kernel allocation-free in steady state.
type TermCursor struct {
	entry   *termEntry
	r       bitio.Reader
	golombB uint64
	skipIvl uint32

	pos   uint32 // postings consumed so far (next posting index to deliver)
	cur   Posting
	valid bool

	// Decode-ahead block: buf[0:bufLen] holds postings bufStart..bufStart+
	// bufLen-1 of the list; streamPrev is the document id preceding the next
	// block in the bitstream. Invariant: bufStart <= pos <= bufStart+bufLen.
	buf        []Posting
	bufStart   uint32
	bufLen     uint32
	streamPrev int64

	// DecodedPostings counts postings consumed, including those scanned over
	// sequentially but excluding those bypassed via skip pointers or block
	// fast-forwards; it feeds the CPU cost model and is unchanged from the
	// pre-block-decode accounting.
	DecodedPostings uint64
}

// Cursor returns a cursor over the postings of term.
func (ix *Index) Cursor(term string) (*TermCursor, error) {
	c := &TermCursor{}
	if err := ix.ResetCursor(c, term); err != nil {
		return nil, err
	}
	return c, nil
}

// ResetCursor re-initialises c over the postings of term, retaining its
// decode buffer. It is the allocation-free path the scoring kernel uses to
// walk many lists with one pooled cursor.
func (ix *Index) ResetCursor(c *TermCursor, term string) error {
	i, ok := ix.byTerm[term]
	if !ok {
		return fmt.Errorf("index: %w: %q", ErrTermNotFound, term)
	}
	ix.resetCursorEntry(c, &ix.entries[i])
	return nil
}

// resetCursorEntry is ResetCursor given a resolved entry — the dictionary
// lookup factored out for internal whole-index walks (the MaxFDT table
// build) that already hold the entry.
func (ix *Index) resetCursorEntry(c *TermCursor, e *termEntry) {
	c.entry = e
	c.r.Reset(e.postings)
	c.golombB = codec.GolombParameter(uint64(ix.numDocs), uint64(e.ft))
	c.skipIvl = ix.skipIvl
	c.pos = 0
	c.cur = Posting{}
	c.valid = false
	c.bufStart, c.bufLen = 0, 0
	c.streamPrev = -1
	c.DecodedPostings = 0
}

// FT returns f_t for the cursor's term.
func (c *TermCursor) FT() uint32 { return c.entry.ft }

// blockSize is the number of postings decoded per fill: the skip interval,
// so that seeks always land on buffer boundaries, or a fixed block when the
// index carries no skip structure.
func (c *TermCursor) blockSize() uint32 {
	if c.skipIvl > 0 {
		return c.skipIvl
	}
	return fallbackBlock
}

// fill decodes the next block of postings into the buffer. It returns false
// at the end of the list or on a corrupt bitstream (which, as before, simply
// terminates the list).
func (c *TermCursor) fill() bool {
	start := c.bufStart + c.bufLen
	if start >= c.entry.ft {
		return false
	}
	n := c.entry.ft - start
	if bs := c.blockSize(); n > bs {
		n = bs
	}
	if uint32(cap(c.buf)) < n {
		c.buf = make([]Posting, c.blockSize())
	}
	last, err := codec.DecodePostingsInto(c.buf[:n], &c.r, int(n), c.golombB, c.streamPrev)
	c.bufStart = start
	if err != nil {
		c.bufLen = 0
		return false
	}
	c.bufLen = n
	c.streamPrev = last
	return true
}

// Next advances to the next posting, returning false at the end of the list.
// Past the buffered block it decodes one posting at a time: Next is the
// skip-based access path (Advance), where decoding a whole block to deliver
// one or two postings would waste the very work skipping saves. Full-list
// scans use NextBlock instead.
func (c *TermCursor) Next() bool {
	if c.pos < c.bufStart+c.bufLen {
		c.cur = c.buf[c.pos-c.bufStart]
		c.pos++
		c.valid = true
		c.DecodedPostings++
		return true
	}
	if c.pos >= c.entry.ft {
		c.valid = false
		return false
	}
	gap, err := codec.Golomb(&c.r, c.golombB)
	if err != nil {
		c.valid = false
		return false
	}
	fdt, err := codec.Gamma(&c.r)
	if err != nil {
		c.valid = false
		return false
	}
	c.streamPrev += int64(gap)
	c.cur = Posting{Doc: uint32(c.streamPrev), FDT: uint32(fdt)}
	c.pos++
	c.bufStart, c.bufLen = c.pos, 0
	c.valid = true
	c.DecodedPostings++
	return true
}

// NextBlock returns the next run of consecutive postings, or nil at the end
// of the list. It is the bulk path for full-list scans: one call per decode
// block instead of one per posting. Every returned posting counts as
// consumed. The slice is valid only until the next cursor call.
func (c *TermCursor) NextBlock() []Posting {
	if c.pos >= c.bufStart+c.bufLen {
		if !c.fill() {
			c.valid = false
			return nil
		}
	}
	blk := c.buf[c.pos-c.bufStart : c.bufLen]
	c.pos = c.bufStart + c.bufLen
	c.DecodedPostings += uint64(len(blk))
	c.cur = blk[len(blk)-1]
	c.valid = true
	return blk
}

// Posting returns the current posting; valid only after Next or Advance
// returned true (after NextBlock it is the last posting of the block).
func (c *TermCursor) Posting() Posting { return c.cur }

// Advance positions the cursor at the first posting with Doc >= target,
// using skip pointers where profitable. It returns false when no such
// posting exists. After Advance returns true, Posting is valid.
func (c *TermCursor) Advance(target uint32) bool {
	if c.valid && c.cur.Doc >= target {
		return true
	}
	// Use the skip table to find the last block whose preceding doc is
	// below the target, if it is ahead of our position.
	if n := len(c.entry.skipDocs); n > 0 {
		// block b covers postings [(b)*ivl, (b+1)*ivl); skipDocs[i] is the
		// doc before block i+1 begins, and skip entry j points at block j+1.
		i := sort.Search(n, func(i int) bool { return c.entry.skipDocs[i] >= target })
		if i > 0 {
			j := i - 1 // last skip entry with skipDocs[j] < target
			blockFirstPos := uint32(j+1) * c.skipIvl
			if blockFirstPos > c.pos {
				if blockFirstPos < c.bufStart+c.bufLen {
					// Target block already sits in the decode buffer:
					// fast-forward without touching the bitstream. Skipped
					// postings are not charged to DecodedPostings, exactly
					// as a bitstream seek would not have decoded them.
					c.pos = blockFirstPos
					c.valid = false
				} else {
					if err := c.r.SeekBit(int(c.entry.skipBits[j])); err != nil {
						c.valid = false
						return false
					}
					c.pos = blockFirstPos
					c.bufStart, c.bufLen = blockFirstPos, 0
					c.streamPrev = int64(c.entry.skipDocs[j])
					c.valid = false
				}
			}
		}
	}
	for c.Next() {
		if c.cur.Doc >= target {
			return true
		}
	}
	return false
}

// Decode reads the entire list into dst (appending) and returns it. The
// cursor must be fresh (no Next/Advance calls yet).
func (c *TermCursor) Decode(dst []Posting) ([]Posting, error) {
	if c.pos != 0 {
		return dst, fmt.Errorf("index: Decode on a consumed cursor")
	}
	for {
		blk := c.NextBlock()
		if blk == nil {
			break
		}
		dst = append(dst, blk...)
	}
	if c.pos != c.entry.ft {
		return dst, fmt.Errorf("index: decoded %d of %d postings", c.pos, c.entry.ft)
	}
	return dst, nil
}
