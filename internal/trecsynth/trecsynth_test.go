package trecsynth

import (
	"fmt"
	"strings"
	"testing"

	"teraphim/internal/textproc"
)

// smallConfig keeps test runtime low.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Subs = []SubSpec{
		{Name: "AP", NumDocs: 300},
		{Name: "FR", NumDocs: 200},
		{Name: "WSJ", NumDocs: 280},
		{Name: "ZIFF", NumDocs: 240},
	}
	cfg.VocabSize = 3000
	cfg.NumTopics = 20
	cfg.NumLongQueries = 10
	cfg.NumShortQueries = 10
	return cfg
}

func TestGenerateShape(t *testing.T) {
	c, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Subcollections) != 4 {
		t.Fatalf("subcollections = %d", len(c.Subcollections))
	}
	wantDocs := map[string]int{"AP": 300, "FR": 200, "WSJ": 280, "ZIFF": 240}
	for _, sub := range c.Subcollections {
		if len(sub.Docs) != wantDocs[sub.Name] {
			t.Errorf("%s has %d docs, want %d", sub.Name, len(sub.Docs), wantDocs[sub.Name])
		}
		for i, d := range sub.Docs {
			if d.ID != uint32(i) {
				t.Fatalf("%s doc %d has ID %d", sub.Name, i, d.ID)
			}
			if d.Text == "" || d.Title == "" {
				t.Fatalf("%s doc %d empty", sub.Name, i)
			}
		}
	}
	if got := len(c.QueriesOf(LongQuery)); got != 10 {
		t.Errorf("long queries = %d", got)
	}
	if got := len(c.QueriesOf(ShortQuery)); got != 10 {
		t.Errorf("short queries = %d", got)
	}
	docs, keys := c.AllDocs()
	if len(docs) != 1020 || len(keys) != 1020 {
		t.Fatalf("AllDocs = %d docs, %d keys", len(docs), len(keys))
	}
	if keys[0] != "AP:0" || keys[300] != "FR:0" {
		t.Fatalf("key layout wrong: %s, %s", keys[0], keys[300])
	}
}

func TestGenerateDeterministic(t *testing.T) {
	c1, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if c1.Subcollections[0].Docs[5].Text != c2.Subcollections[0].Docs[5].Text {
		t.Fatal("generation not deterministic")
	}
	if c1.Queries[3].Text != c2.Queries[3].Text {
		t.Fatal("queries not deterministic")
	}
}

func TestQrelsPopulated(t *testing.T) {
	c, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	judged := 0
	var total int
	for _, q := range c.Queries {
		n := c.Qrels.NumRelevant(q.ID)
		if n > 0 {
			judged++
		}
		total += n
	}
	if judged < len(c.Queries)/2 {
		t.Fatalf("only %d of %d queries have relevant docs", judged, len(c.Queries))
	}
	if total == 0 {
		t.Fatal("no relevance judgements at all")
	}
}

func TestQueryLengths(t *testing.T) {
	cfg := smallConfig()
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range c.Queries {
		n := len(strings.Fields(q.Text))
		switch q.Kind {
		case ShortQuery:
			if n != cfg.ShortQueryLen {
				t.Errorf("short query %s has %d terms", q.ID, n)
			}
		case LongQuery:
			if n != cfg.LongQueryLen {
				t.Errorf("long query %s has %d terms", q.ID, n)
			}
		}
	}
}

// TestRelevantDocsShareQueryVocabulary checks the core property that makes
// ranked retrieval work on the synthetic corpus: relevant documents contain
// query terms much more often than random documents do.
func TestRelevantDocsShareQueryVocabulary(t *testing.T) {
	c, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	docByKey := map[string]string{}
	for _, sub := range c.Subcollections {
		for _, d := range sub.Docs {
			docByKey[DocKey(sub.Name, d.ID)] = d.Text
		}
	}
	overlap := func(query, doc string) float64 {
		qTerms := map[string]bool{}
		for _, w := range strings.Fields(query) {
			qTerms[w] = true
		}
		words := strings.Fields(doc)
		if len(words) == 0 {
			return 0
		}
		hits := 0
		for _, w := range words {
			w = strings.Trim(w, ".\n")
			if qTerms[w] {
				hits++
			}
		}
		return float64(hits) / float64(len(words))
	}
	var relSum, allSum float64
	var relN, allN int
	for _, q := range c.Queries {
		for key, text := range docByKey {
			o := overlap(q.Text, text)
			if c.Qrels.IsRelevant(q.ID, key) {
				relSum += o
				relN++
			} else {
				allSum += o
				allN++
			}
		}
	}
	if relN == 0 {
		t.Fatal("no relevant docs")
	}
	relAvg := relSum / float64(relN)
	allAvg := allSum / float64(allN)
	if relAvg < 4*allAvg {
		t.Fatalf("relevant-doc query-term density %.4f not well above background %.4f", relAvg, allAvg)
	}
}

// TestSubcollectionSkew verifies the property that separates CN from CV:
// topical terms are concentrated in their topic's home subcollection.
func TestSubcollectionSkew(t *testing.T) {
	c, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	// For each query's terms, compare document frequency in the densest
	// subcollection against the average of the others.
	df := func(sub Subcollection, term string) int {
		n := 0
		for _, d := range sub.Docs {
			if strings.Contains(d.Text, term) {
				n++
			}
		}
		return n
	}
	skewed := 0
	queries := c.QueriesOf(ShortQuery)
	for _, q := range queries[:5] {
		term := strings.Fields(q.Text)[0]
		max, sum := 0, 0
		for _, sub := range c.Subcollections {
			n := df(sub, term)
			sum += n
			if n > max {
				max = n
			}
		}
		if sum > 0 && float64(max) > 1.5*float64(sum)/float64(len(c.Subcollections)) {
			skewed++
		}
	}
	if skewed == 0 {
		t.Fatal("no query term shows cross-collection skew; CN/CV distinction would vanish")
	}
}

func TestSplit(t *testing.T) {
	c, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	c43, err := c.Split(43)
	if err != nil {
		t.Fatal(err)
	}
	if len(c43.Subcollections) != 43 {
		t.Fatalf("split produced %d subcollections", len(c43.Subcollections))
	}
	origDocs, _ := c.AllDocs()
	splitDocs, _ := c43.AllDocs()
	if len(origDocs) != len(splitDocs) {
		t.Fatalf("doc count changed: %d -> %d", len(origDocs), len(splitDocs))
	}
	// Relevance judgements must be preserved in count.
	for _, q := range c.Queries {
		if c.Qrels.NumRelevant(q.ID) != c43.Qrels.NumRelevant(q.ID) {
			t.Fatalf("query %s: relevance count changed %d -> %d",
				q.ID, c.Qrels.NumRelevant(q.ID), c43.Qrels.NumRelevant(q.ID))
		}
	}
	if _, err := c.Split(0); err == nil {
		t.Fatal("split 0: want error")
	}
	if _, err := c.Split(1 << 30); err == nil {
		t.Fatal("split too wide: want error")
	}
}

func TestVocabSurvivesAnalysis(t *testing.T) {
	// The no-stem analyzer used in experiments must pass generated terms
	// through unchanged so query terms match indexed terms.
	a := textproc.NewAnalyzer(textproc.WithoutStopwords(), textproc.WithoutStemming())
	for _, w := range makeVocab(500) {
		terms := a.Terms(nil, w)
		if len(terms) != 1 || terms[0] != w {
			t.Fatalf("vocab word %q analysed to %v", w, terms)
		}
	}
}

func TestValidateErrors(t *testing.T) {
	bad := []Config{
		{VocabSize: 10, NumTopics: 5, Subs: []SubSpec{{Name: "A", NumDocs: 1}}, MeanDocLen: 100},
		{VocabSize: 5000, NumTopics: 0, Subs: []SubSpec{{Name: "A", NumDocs: 1}}, MeanDocLen: 100},
		{VocabSize: 5000, NumTopics: 5, Subs: nil, MeanDocLen: 100},
		{VocabSize: 5000, NumTopics: 5, Subs: []SubSpec{{Name: "A", NumDocs: 0}}, MeanDocLen: 100},
		{VocabSize: 5000, NumTopics: 5, Subs: []SubSpec{{Name: "A", NumDocs: 1}}, MeanDocLen: 1},
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("config %d: want error", i)
		}
	}
}

func BenchmarkGenerate(b *testing.B) {
	cfg := smallConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// TestSkewedConfig: the many-subcollections preset concentrates each
// subcollection's documents on its own home topics — the property top-R
// collection selection exploits.
func TestSkewedConfig(t *testing.T) {
	cfg := SkewedConfig(8, 60)
	if len(cfg.Subs) != 8 {
		t.Fatalf("subs = %d, want 8", len(cfg.Subs))
	}
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Topic homes round-robin over subcollections (home = topic mod subs),
	// and doc titles carry the generating topic; count how many documents
	// stayed home.
	home, total := 0, 0
	for si, sub := range c.Subcollections {
		if len(sub.Docs) != 60 {
			t.Fatalf("sub %s has %d docs, want 60", sub.Name, len(sub.Docs))
		}
		for _, d := range sub.Docs {
			var topicID int
			if _, err := fmt.Sscanf(d.Title[strings.Index(d.Title, "(topic "):], "(topic %d)", &topicID); err != nil {
				t.Fatalf("title %q: %v", d.Title, err)
			}
			total++
			if topicID%len(cfg.Subs) == si {
				home++
			}
		}
	}
	if frac := float64(home) / float64(total); frac < 0.8 {
		t.Fatalf("only %.0f%% of documents are about home topics; skew too weak for selection", 100*frac)
	}
	// Determinism: the same preset generates the same corpus.
	c2, err := Generate(SkewedConfig(8, 60))
	if err != nil {
		t.Fatal(err)
	}
	if c.Subcollections[3].Docs[7].Text != c2.Subcollections[3].Docs[7].Text {
		t.Fatal("SkewedConfig generation is not deterministic")
	}
}
