// Package trecsynth generates a deterministic synthetic substitute for the
// TREC disk-2 test data used in the paper: a corpus split into named
// subcollections (AP, FR, WSJ, ZIFF analogues), long and short query sets,
// and relevance judgements.
//
// Real TREC data is licensed and cannot ship with this repository. The
// generator preserves the statistical properties the paper's experiments
// depend on:
//
//   - a Zipfian vocabulary, so inverted-list lengths and compression rates
//     are realistic;
//   - a topic model with per-subcollection topical skew, so local f_t
//     statistics differ from global ones (the CN-vs-CV distinction);
//   - relevance derived from the generating topic mixture, so ranked
//     retrieval effectiveness is measurable without human judgements;
//   - two query sets mirroring TREC topics 51–200 (long, ≈90 terms) and
//     202–250 (short, ≈10 terms).
package trecsynth

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"teraphim/internal/eval"
	"teraphim/internal/store"
)

// QueryKind distinguishes the two TREC-style query sets.
type QueryKind int

// Query set kinds.
const (
	ShortQuery QueryKind = iota + 1
	LongQuery
)

func (k QueryKind) String() string {
	switch k {
	case ShortQuery:
		return "short"
	case LongQuery:
		return "long"
	default:
		return fmt.Sprintf("QueryKind(%d)", int(k))
	}
}

// Query is one synthetic information need.
type Query struct {
	ID    string
	Kind  QueryKind
	Topic int
	Text  string
}

// Subcollection is one librarian's document set.
type Subcollection struct {
	Name string
	Docs []store.Document
}

// Corpus is a complete generated test collection.
type Corpus struct {
	Subcollections []Subcollection
	Queries        []Query
	Qrels          *eval.Qrels

	vocab []string
}

// SubSpec describes one subcollection to generate.
type SubSpec struct {
	Name    string
	NumDocs int
}

// Config controls generation. The zero value is not valid; use
// DefaultConfig and override fields as needed.
type Config struct {
	Seed      int64
	VocabSize int
	NumTopics int
	Subs      []SubSpec

	MeanDocLen int // average tokens per document

	NumShortQueries int
	NumLongQueries  int
	ShortQueryLen   int
	LongQueryLen    int

	// TopicalDocProb is the probability a document is strongly topical;
	// strongly topical documents about a query's topic are the relevant set.
	TopicalDocProb float64
	// HomeBias is the probability a document's topic is drawn from the
	// topics "homed" at its subcollection, producing the cross-collection
	// statistics skew that separates CN from CV.
	HomeBias float64
}

// DefaultConfig mirrors the paper's setting at laptop scale: four
// subcollections of roughly uniform size ("AP", "FR", "WSJ", "ZIFF"), two
// query sets of 150 long / 49 short queries scaled down to keep experiment
// runtime sensible.
func DefaultConfig() Config {
	return Config{
		Seed:      1998,
		VocabSize: 12000,
		NumTopics: 60,
		Subs: []SubSpec{
			{Name: "AP", NumDocs: 10400},
			{Name: "FR", NumDocs: 6800},
			{Name: "WSJ", NumDocs: 9600},
			{Name: "ZIFF", NumDocs: 8000},
		},
		MeanDocLen:      130,
		NumShortQueries: 49,
		NumLongQueries:  50,
		ShortQueryLen:   10,
		LongQueryLen:    90,
		TopicalDocProb:  0.18,
		HomeBias:        0.65,
	}
}

// SkewedConfig describes a fleet of numSubs small, topically focused
// subcollections ("S00", "S01", ...) of docsPerSub documents each — the
// many-subcollections regime collection selection targets. Each
// subcollection homes two topics and HomeBias is turned up high, so a
// query's answers concentrate in a few subcollections and a top-R
// receptionist can skip the rest without losing much. Everything else
// follows DefaultConfig, scaled down to keep sweeps over dozens of
// subcollections fast.
func SkewedConfig(numSubs, docsPerSub int) Config {
	cfg := DefaultConfig()
	cfg.Subs = make([]SubSpec, numSubs)
	for i := range cfg.Subs {
		cfg.Subs[i] = SubSpec{Name: fmt.Sprintf("S%02d", i), NumDocs: docsPerSub}
	}
	cfg.NumTopics = 2 * numSubs
	cfg.HomeBias = 0.92
	cfg.VocabSize = 6000
	cfg.NumShortQueries = 32
	cfg.NumLongQueries = 8
	return cfg
}

// topicTermCount is the size of each topic's term set. Large and
// flat-weighted: a document about the topic covers only a fraction of the
// set, so query/document term overlap is partial — the property that makes
// ranking genuinely hard, as with real TREC topics.
const topicTermCount = 96

// topicPoolSize is the size of the shared mid-frequency term pool from
// which every topic draws its terms. Distinct topics therefore share
// vocabulary, creating the topical confusion (near-miss documents) that
// keeps precision away from 1.0.
const topicPoolSize = 2000

// topic is a latent information need with its own term distribution.
type topic struct {
	terms   []int     // vocabulary indexes
	weights []float64 // cumulative sampling weights over terms
	home    int       // index of the subcollection where the topic is common
}

// Generate builds a corpus from config. Generation is fully deterministic
// for a given Config.
func Generate(cfg Config) (*Corpus, error) {
	if err := validate(cfg); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	vocab := makeVocab(cfg.VocabSize)
	zipf := rand.NewZipf(rng, 1.15, 2.0, uint64(cfg.VocabSize-1))
	topics := makeTopics(rng, cfg)

	c := &Corpus{Qrels: eval.NewQrels(), vocab: vocab}

	// Queries are generated before documents so that relevance judgements
	// can be recorded while documents are produced.
	queries := makeQueries(rng, cfg, topics, vocab)
	c.Queries = queries
	queriesByTopic := make(map[int][]int, len(queries)) // topic -> query indexes
	for qi, q := range queries {
		queriesByTopic[q.Topic] = append(queriesByTopic[q.Topic], qi)
	}

	for si, spec := range cfg.Subs {
		sub := Subcollection{Name: spec.Name, Docs: make([]store.Document, 0, spec.NumDocs)}
		homeTopics := topicsHomedAt(topics, si)
		for d := 0; d < spec.NumDocs; d++ {
			doc, topicID, lambda := generateDoc(rng, cfg, topics, homeTopics, vocab, zipf)
			doc.Title = fmt.Sprintf("%s-%d (topic %d)", spec.Name, d, topicID)
			doc.ID = uint32(d)
			sub.Docs = append(sub.Docs, doc)
			if lambda >= relevanceLambda {
				key := DocKey(spec.Name, uint32(d))
				for _, qi := range queriesByTopic[topicID] {
					c.Qrels.Judge(queries[qi].ID, key)
				}
			}
		}
		c.Subcollections = append(c.Subcollections, sub)
	}
	return c, nil
}

// relevanceLambda is the topical-mixture threshold above which a document is
// judged relevant to queries about its topic. The threshold is deliberately
// low: documents just above it are only weakly about their topic, so — as
// with real TREC judgements — part of the relevant set is hard to retrieve
// and ranking depth matters.
const relevanceLambda = 0.22

func validate(cfg Config) error {
	switch {
	case cfg.VocabSize < topicTermCount*2:
		return fmt.Errorf("trecsynth: vocab size %d too small", cfg.VocabSize)
	case cfg.NumTopics < 1:
		return fmt.Errorf("trecsynth: need at least one topic")
	case len(cfg.Subs) == 0:
		return fmt.Errorf("trecsynth: need at least one subcollection")
	case cfg.MeanDocLen < 10:
		return fmt.Errorf("trecsynth: mean doc length %d too small", cfg.MeanDocLen)
	}
	for _, s := range cfg.Subs {
		if s.NumDocs < 1 {
			return fmt.Errorf("trecsynth: subcollection %q has no documents", s.Name)
		}
	}
	return nil
}

// DocKey forms the global document identity used in qrels and run files.
func DocKey(subcollection string, docID uint32) string {
	return fmt.Sprintf("%s:%d", subcollection, docID)
}

// Vocab exposes the generated vocabulary (term index -> surface form).
func (c *Corpus) Vocab() []string { return c.vocab }

// AllDocs returns every document in subcollection order together with the
// global key of each — the layout a mono-server (MS) build uses.
func (c *Corpus) AllDocs() (docs []store.Document, keys []string) {
	for _, sub := range c.Subcollections {
		for _, d := range sub.Docs {
			docs = append(docs, d)
			keys = append(keys, DocKey(sub.Name, d.ID))
		}
	}
	return docs, keys
}

// QueriesOf returns the queries of one kind.
func (c *Corpus) QueriesOf(kind QueryKind) []Query {
	var out []Query
	for _, q := range c.Queries {
		if q.Kind == kind {
			out = append(out, q)
		}
	}
	return out
}

// Split repartitions the corpus into n subcollections of near-equal size,
// preserving document text and relevance (keys are rewritten). It reproduces
// the paper's 43-subcollection robustness experiment.
func (c *Corpus) Split(n int) (*Corpus, error) {
	docs, keys := c.AllDocs()
	if n < 1 || n > len(docs) {
		return nil, fmt.Errorf("trecsynth: cannot split %d docs into %d parts", len(docs), n)
	}
	out := &Corpus{Queries: c.Queries, Qrels: eval.NewQrels(), vocab: c.vocab}
	keyMap := make(map[string]string, len(docs))
	per := (len(docs) + n - 1) / n
	for i := 0; i < n; i++ {
		lo := i * per
		hi := lo + per
		if hi > len(docs) {
			hi = len(docs)
		}
		if lo >= hi {
			break
		}
		name := fmt.Sprintf("S%02d", i)
		sub := Subcollection{Name: name}
		for j, d := range docs[lo:hi] {
			nd := d
			nd.ID = uint32(j)
			sub.Docs = append(sub.Docs, nd)
			keyMap[keys[lo+j]] = DocKey(name, uint32(j))
		}
		out.Subcollections = append(out.Subcollections, sub)
	}
	// Rewrite qrels under the new keys.
	for _, qid := range c.Qrels.Queries() {
		for oldKey, newKey := range keyMap {
			if c.Qrels.IsRelevant(qid, oldKey) {
				out.Qrels.Judge(qid, newKey)
			}
		}
	}
	return out, nil
}

// makeVocab builds pronounceable pseudo-words, index 0 most frequent. Words
// are generated from syllables and suffixed with their index so that every
// surface form is unique and survives analysis unchanged.
func makeVocab(n int) []string {
	syllables := []string{
		"ba", "ce", "di", "fo", "gu", "ha", "je", "ki", "lo", "mu",
		"na", "pe", "qi", "ro", "su", "ta", "ve", "wi", "xo", "zu",
	}
	out := make([]string, n)
	for i := range out {
		var sb strings.Builder
		v := i
		for j := 0; j < 3; j++ {
			sb.WriteString(syllables[v%len(syllables)])
			v /= len(syllables)
		}
		fmt.Fprintf(&sb, "%d", i)
		out[i] = sb.String()
	}
	return out
}

// makeTopics assigns each topic a home subcollection (round-robin) and a
// Zipf-weighted distribution over a random mid-frequency term subset.
func makeTopics(rng *rand.Rand, cfg Config) []topic {
	// All topics draw from one shared pool of mid-frequency terms, so
	// different topics overlap and documents about one topic are partial
	// matches for queries about another.
	poolSize := topicPoolSize
	if poolSize > cfg.VocabSize-100 {
		poolSize = cfg.VocabSize - 100
	}
	topics := make([]topic, cfg.NumTopics)
	for t := range topics {
		terms := make([]int, topicTermCount)
		seen := map[int]bool{}
		for i := range terms {
			for {
				idx := 100 + rng.Intn(poolSize)
				if !seen[idx] {
					seen[idx] = true
					terms[i] = idx
					break
				}
			}
		}
		weights := make([]float64, len(terms))
		var cum float64
		for i := range weights {
			// Flat-ish weighting (inverse square root) so no handful of
			// terms gives the topic away.
			cum += 1 / math.Sqrt(float64(i+1))
			weights[i] = cum
		}
		topics[t] = topic{terms: terms, weights: weights, home: t % len(cfg.Subs)}
	}
	return topics
}

func topicsHomedAt(topics []topic, sub int) []int {
	var out []int
	for t := range topics {
		if topics[t].home == sub {
			out = append(out, t)
		}
	}
	return out
}

// queryFacetSize is the prefix of a topic's term set that queries draw
// from. Documents may express the topic through the remaining terms
// instead — such documents are relevant yet share little vocabulary with
// the query, bounding achievable recall exactly as hard TREC topics do.
const queryFacetSize = topicTermCount / 2

// sampleTerm draws a term index from the topic's full distribution.
func (t *topic) sampleTerm(rng *rand.Rand) int {
	return t.sampleTermRange(rng, 0, len(t.terms))
}

// sampleTermRange draws a term from the sub-range [lo, hi) of the topic's
// term set, respecting the relative weights within the range.
func (t *topic) sampleTermRange(rng *rand.Rand, lo, hi int) int {
	base := 0.0
	if lo > 0 {
		base = t.weights[lo-1]
	}
	x := base + rng.Float64()*(t.weights[hi-1]-base)
	i, j := lo, hi-1
	for i < j {
		mid := (i + j) / 2
		if t.weights[mid] < x {
			i = mid + 1
		} else {
			j = mid
		}
	}
	return t.terms[i]
}

// generateDoc produces one document: a mixture of topical and background
// terms rendered as sentence-structured text.
func generateDoc(rng *rand.Rand, cfg Config, topics []topic, homeTopics []int, vocab []string, zipf *rand.Zipf) (store.Document, int, float64) {
	// Pick the document's topic, biased toward the subcollection's home
	// topics.
	var topicID int
	if len(homeTopics) > 0 && rng.Float64() < cfg.HomeBias {
		topicID = homeTopics[rng.Intn(len(homeTopics))]
	} else {
		topicID = rng.Intn(len(topics))
	}
	top := &topics[topicID]

	// Topical intensity lambda: a small fraction of documents are about
	// their topic, with intensity skewed toward the weak end (squared
	// uniform) so most relevant documents are hard to retrieve; the rest
	// are mostly background with a trace of topical vocabulary.
	var lambda float64
	if rng.Float64() < cfg.TopicalDocProb {
		u := rng.Float64()
		lambda = relevanceLambda + u*u*u*(0.85-relevanceLambda)
	} else {
		// Background documents still carry a trace of their topic's
		// vocabulary — they are the near-miss distractors — but stay
		// strictly below the relevance threshold.
		lambda = rng.Float64() * 0.9 * relevanceLambda
	}

	// Half the topical documents express the topic mainly through the
	// non-query facet of its vocabulary: relevant, but hard to retrieve.
	facetLo, facetHi := 0, len(top.terms)
	if lambda >= relevanceLambda && rng.Float64() < 0.5 {
		facetLo = queryFacetSize
	}

	length := cfg.MeanDocLen/2 + rng.Intn(cfg.MeanDocLen)
	var sb strings.Builder
	sb.Grow(length * 8)
	for i := 0; i < length; i++ {
		var term string
		if rng.Float64() < lambda {
			term = vocab[top.sampleTermRange(rng, facetLo, facetHi)]
		} else {
			term = vocab[int(zipf.Uint64())]
		}
		if i > 0 {
			switch {
			case i%13 == 0:
				sb.WriteString(". ")
			case i%53 == 0:
				sb.WriteString(".\n\n")
			default:
				sb.WriteString(" ")
			}
		}
		sb.WriteString(term)
	}
	sb.WriteString(".")
	return store.Document{Text: sb.String()}, topicID, lambda
}

// makeQueries builds the long and short query sets. Query q about topic t
// samples terms from t's distribution (plus background noise for long
// queries, mimicking verbose TREC topic statements).
func makeQueries(rng *rand.Rand, cfg Config, topics []topic, vocab []string) []Query {
	var out []Query
	build := func(id string, kind QueryKind, topicID, length int, noise float64) Query {
		top := &topics[topicID]
		terms := make([]string, 0, length)
		for len(terms) < length {
			if rng.Float64() < noise {
				terms = append(terms, vocab[100+rng.Intn(cfg.VocabSize-100)])
			} else {
				// Queries verbalise only the query facet of the topic.
				terms = append(terms, vocab[top.sampleTermRange(rng, 0, queryFacetSize)])
			}
		}
		return Query{ID: id, Kind: kind, Topic: topicID, Text: strings.Join(terms, " ")}
	}
	for i := 0; i < cfg.NumLongQueries; i++ {
		topicID := i % len(topics)
		out = append(out, build(fmt.Sprintf("L%03d", 51+i), LongQuery, topicID, cfg.LongQueryLen, 0.35))
	}
	for i := 0; i < cfg.NumShortQueries; i++ {
		topicID := (i * 7) % len(topics)
		out = append(out, build(fmt.Sprintf("S%03d", 202+i), ShortQuery, topicID, cfg.ShortQueryLen, 0.1))
	}
	return out
}
