package codec

import (
	"fmt"

	"teraphim/internal/bitio"
)

// Posting is one (document, within-document frequency) pair in an inverted
// list. Doc identifiers are local to a collection and start at 0.
type Posting struct {
	Doc uint32
	FDT uint32 // f_{d,t}: occurrences of the term in the document
}

// EncodePostings appends the compressed form of postings to w using the MG
// layout: document gaps Golomb-coded with a parameter derived from the list
// density, frequencies gamma-coded. Postings must be sorted by Doc with no
// duplicates. numDocs is the collection size N used to tune the Golomb
// parameter; it must be greater than the largest Doc.
func EncodePostings(w *bitio.Writer, postings []Posting, numDocs uint32) error {
	if len(postings) == 0 {
		return nil
	}
	b := GolombParameter(uint64(numDocs), uint64(len(postings)))
	prev := int64(-1)
	for i, p := range postings {
		gap := int64(p.Doc) - prev
		if gap <= 0 {
			return fmt.Errorf("codec: postings not strictly increasing at index %d (doc %d)", i, p.Doc)
		}
		if p.Doc >= numDocs {
			return fmt.Errorf("codec: doc %d outside collection of %d documents", p.Doc, numDocs)
		}
		if err := PutGolomb(w, uint64(gap), b); err != nil {
			return err
		}
		if err := PutGamma(w, uint64(p.FDT)); err != nil {
			return fmt.Errorf("codec: f_dt for doc %d: %w", p.Doc, err)
		}
		prev = int64(p.Doc)
	}
	return nil
}

// DecodePostingsInto is the allocation-free fast path used by block-decoding
// cursors: it decodes exactly count postings from r into dst[:count], given
// the list's Golomb divisor b and the document id preceding the block
// (prevDoc, -1 at the start of a list — gap coding is continuous across
// blocks, so a decoder that seeks to a skip point resumes with the skip
// entry's last document). It returns the last document id decoded so the
// caller can chain blocks. dst must have room for count postings; no bounds
// validation is performed beyond the bitstream itself, callers wanting the
// checked path use DecodePostings.
func DecodePostingsInto(dst []Posting, r *bitio.Reader, count int, b uint64, prevDoc int64) (int64, error) {
	doc := prevDoc
	for i := 0; i < count; i++ {
		gap, err := Golomb(r, b)
		if err != nil {
			return doc, fmt.Errorf("codec: posting %d gap: %w", i, err)
		}
		fdt, err := Gamma(r)
		if err != nil {
			return doc, fmt.Errorf("codec: posting %d f_dt: %w", i, err)
		}
		doc += int64(gap)
		dst[i] = Posting{Doc: uint32(doc), FDT: uint32(fdt)}
	}
	return doc, nil
}

// DecodePostings reads count postings previously written by EncodePostings
// with the same numDocs, appending them to dst and returning it.
func DecodePostings(dst []Posting, r *bitio.Reader, count int, numDocs uint32) ([]Posting, error) {
	if count == 0 {
		return dst, nil
	}
	b := GolombParameter(uint64(numDocs), uint64(count))
	doc := int64(-1)
	for i := 0; i < count; i++ {
		gap, err := Golomb(r, b)
		if err != nil {
			return dst, fmt.Errorf("codec: posting %d gap: %w", i, err)
		}
		fdt, err := Gamma(r)
		if err != nil {
			return dst, fmt.Errorf("codec: posting %d f_dt: %w", i, err)
		}
		doc += int64(gap)
		if doc >= int64(numDocs) {
			return dst, fmt.Errorf("codec: decoded doc %d outside collection of %d documents", doc, numDocs)
		}
		dst = append(dst, Posting{Doc: uint32(doc), FDT: uint32(fdt)})
	}
	return dst, nil
}
