// Package codec implements the integer codes used by MG-style compressed
// inverted files: Elias gamma and delta, Golomb-Rice, and variable-byte.
//
// All codes operate on strictly positive integers (postings store d-gaps ≥ 1
// and within-document frequencies ≥ 1). Encoders append to a bitio.Writer;
// decoders consume from a bitio.Reader so that several codes can be
// interleaved in one stream, exactly as MG interleaves Golomb-coded document
// gaps with gamma-coded frequencies.
package codec

import (
	"errors"
	"fmt"
	"math"
	"math/bits"

	"teraphim/internal/bitio"
)

// ErrNonPositive is returned when a value outside the supported range (< 1)
// is presented for encoding.
var ErrNonPositive = errors.New("codec: value must be >= 1")

// PutGamma appends the Elias gamma code for v (v ≥ 1).
func PutGamma(w *bitio.Writer, v uint64) error {
	if v == 0 {
		return ErrNonPositive
	}
	n := uint(bits.Len64(v)) // number of significant bits
	w.WriteUnary(uint64(n - 1))
	w.WriteBits(v&(1<<(n-1)-1), n-1)
	return nil
}

// Gamma reads one Elias gamma code.
func Gamma(r *bitio.Reader) (uint64, error) {
	n, err := r.ReadUnary()
	if err != nil {
		return 0, err
	}
	if n > 63 {
		return 0, fmt.Errorf("codec: gamma length %d out of range", n)
	}
	rest, err := r.ReadBits(uint(n))
	if err != nil {
		return 0, err
	}
	return 1<<n | rest, nil
}

// PutDelta appends the Elias delta code for v (v ≥ 1): the bit length is
// itself gamma coded. Preferable to gamma for large values.
func PutDelta(w *bitio.Writer, v uint64) error {
	if v == 0 {
		return ErrNonPositive
	}
	n := uint(bits.Len64(v))
	if err := PutGamma(w, uint64(n)); err != nil {
		return err
	}
	w.WriteBits(v&(1<<(n-1)-1), n-1)
	return nil
}

// Delta reads one Elias delta code.
func Delta(r *bitio.Reader) (uint64, error) {
	n, err := Gamma(r)
	if err != nil {
		return 0, err
	}
	if n == 0 || n > 64 {
		return 0, fmt.Errorf("codec: delta length %d out of range", n)
	}
	rest, err := r.ReadBits(uint(n - 1))
	if err != nil {
		return 0, err
	}
	return 1<<(n-1) | rest, nil
}

// GolombParameter returns the Golomb divisor b tuned for a list of n gaps
// drawn from a universe of size u (documents in the collection), following
// Witten, Moffat & Bell: b = ceil(0.69 * u / n) (≈ log(2)·mean gap).
func GolombParameter(u, n uint64) uint64 {
	if n == 0 || u == 0 {
		return 1
	}
	mean := float64(u) / float64(n)
	b := uint64(math.Ceil(0.69 * mean))
	if b < 1 {
		b = 1
	}
	return b
}

// PutGolomb appends the Golomb code of v (v ≥ 1) with divisor b (b ≥ 1):
// quotient (v-1)/b in unary, remainder in truncated binary.
func PutGolomb(w *bitio.Writer, v, b uint64) error {
	if v == 0 {
		return ErrNonPositive
	}
	if b == 0 {
		return errors.New("codec: golomb divisor must be >= 1")
	}
	x := v - 1
	q := x / b
	rem := x % b
	w.WriteUnary(q)
	writeTruncated(w, rem, b)
	return nil
}

// Golomb reads one Golomb code with divisor b.
func Golomb(r *bitio.Reader, b uint64) (uint64, error) {
	if b == 0 {
		return 0, errors.New("codec: golomb divisor must be >= 1")
	}
	q, err := r.ReadUnary()
	if err != nil {
		return 0, err
	}
	rem, err := readTruncated(r, b)
	if err != nil {
		return 0, err
	}
	return q*b + rem + 1, nil
}

// writeTruncated emits rem ∈ [0, b) using the truncated binary code: values
// below the threshold use floor(log2 b) bits, the rest use one more.
func writeTruncated(w *bitio.Writer, rem, b uint64) {
	if b == 1 {
		return
	}
	nbits := uint(bits.Len64(b - 1)) // ceil(log2 b)
	thresh := uint64(1)<<nbits - b   // number of short codewords
	if rem < thresh {
		w.WriteBits(rem, nbits-1)
	} else {
		w.WriteBits(rem+thresh, nbits)
	}
}

func readTruncated(r *bitio.Reader, b uint64) (uint64, error) {
	if b == 1 {
		return 0, nil
	}
	nbits := uint(bits.Len64(b - 1))
	thresh := uint64(1)<<nbits - b
	v, err := r.ReadBits(nbits - 1)
	if err != nil {
		return 0, err
	}
	if v < thresh {
		return v, nil
	}
	bit, err := r.ReadBit()
	if err != nil {
		return 0, err
	}
	return v<<1 + uint64(bit) - thresh, nil
}

// PutVByte appends v in the classic variable-byte code (7 data bits per
// byte, high bit set on the final byte). Accepts v ≥ 0.
func PutVByte(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v&0x7f))
		v >>= 7
	}
	return append(dst, byte(v)|0x80)
}

// VByte decodes one variable-byte integer from src, returning the value and
// the number of bytes consumed.
func VByte(src []byte) (uint64, int, error) {
	var v uint64
	var shift uint
	for i, b := range src {
		if shift > 63 {
			return 0, 0, errors.New("codec: vbyte overflow")
		}
		if b&0x80 != 0 {
			v |= uint64(b&0x7f) << shift
			return v, i + 1, nil
		}
		v |= uint64(b) << shift
		shift += 7
	}
	return 0, 0, bitio.ErrUnexpectedEOF
}
