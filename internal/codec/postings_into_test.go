package codec

import (
	"math/rand"
	"testing"

	"teraphim/internal/bitio"
)

// TestDecodePostingsIntoMatchesDecodePostings checks the preallocated block
// decoder against the appending one, both whole-list and resumed mid-stream
// the way the cursor's block fills do.
func TestDecodePostingsIntoMatchesDecodePostings(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 50; trial++ {
		numDocs := uint32(rng.Intn(10_000) + 10)
		n := rng.Intn(int(numDocs))
		postings := randomPostings(rng, n, numDocs)
		w := bitio.NewWriter(1024)
		if err := EncodePostings(w, postings, numDocs); err != nil {
			t.Fatal(err)
		}
		want, err := DecodePostings(nil, bitio.NewReader(w.Bytes()), n, numDocs)
		if err != nil {
			t.Fatal(err)
		}

		b := GolombParameter(uint64(numDocs), uint64(n))

		// Whole list in one call.
		dst := make([]Posting, n)
		last, err := DecodePostingsInto(dst, bitio.NewReader(w.Bytes()), n, b, -1)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if dst[i] != want[i] {
				t.Fatalf("trial %d posting %d: %+v, want %+v", trial, i, dst[i], want[i])
			}
		}
		if n > 0 && last != int64(want[n-1].Doc) {
			t.Fatalf("trial %d: final prev doc %d, want %d", trial, last, want[n-1].Doc)
		}

		// Resumed block decode: split at an arbitrary boundary, threading the
		// previous doc through exactly as TermCursor.fill does.
		if n < 2 {
			continue
		}
		cut := 1 + rng.Intn(n-1)
		r := bitio.NewReader(w.Bytes())
		head := make([]Posting, cut)
		prev, err := DecodePostingsInto(head, r, cut, b, -1)
		if err != nil {
			t.Fatal(err)
		}
		tail := make([]Posting, n-cut)
		if _, err := DecodePostingsInto(tail, r, n-cut, b, prev); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			var got Posting
			if i < cut {
				got = head[i]
			} else {
				got = tail[i-cut]
			}
			if got != want[i] {
				t.Fatalf("trial %d split %d posting %d: %+v, want %+v", trial, cut, i, got, want[i])
			}
		}
	}
}

// TestDecodePostingsIntoTruncated confirms a truncated stream surfaces an
// error rather than fabricating postings.
func TestDecodePostingsIntoTruncated(t *testing.T) {
	postings := []Posting{{Doc: 1, FDT: 2}, {Doc: 5, FDT: 1}, {Doc: 9, FDT: 3}}
	w := bitio.NewWriter(64)
	if err := EncodePostings(w, postings, 10); err != nil {
		t.Fatal(err)
	}
	data := w.Bytes()
	b := GolombParameter(10, 3)
	dst := make([]Posting, 4)
	if _, err := DecodePostingsInto(dst, bitio.NewReader(data), 4, b, -1); err == nil {
		t.Fatal("decoding past the end of the list: want error")
	}
}
