package codec

import (
	"reflect"
	"testing"
	"testing/quick"

	"teraphim/internal/bitio"
)

// postingsFromBytes derives a valid postings list from arbitrary fuzz
// bytes: consecutive byte pairs become (gap, f_dt) with gap ≥ 1 and
// f_dt ≥ 1, truncated at numDocs — exactly the contract EncodePostings
// demands (strictly increasing docs below numDocs, positive frequencies).
func postingsFromBytes(data []byte, numDocs uint32) []Posting {
	var postings []Posting
	doc := int64(-1)
	for i := 0; i+1 < len(data); i += 2 {
		doc += int64(data[i]%7) + 1
		if doc >= int64(numDocs) {
			break
		}
		postings = append(postings, Posting{Doc: uint32(doc), FDT: uint32(data[i+1]%255) + 1})
	}
	return postings
}

// FuzzPostingsRoundTrip checks the MG inverted-list codec end to end:
// every doc-gap/frequency list derived from fuzz input must survive
// Golomb/gamma encode → decode exactly, for any collection size.
func FuzzPostingsRoundTrip(f *testing.F) {
	f.Add([]byte{1, 1, 2, 3, 5, 8, 13, 21}, uint32(100))
	f.Add([]byte{0, 0, 0, 0}, uint32(1))
	f.Add([]byte{255, 255, 255, 1}, uint32(1 << 30))
	f.Add([]byte{}, uint32(50))
	f.Fuzz(func(t *testing.T, data []byte, numDocs uint32) {
		if numDocs == 0 {
			numDocs = 1
		}
		postings := postingsFromBytes(data, numDocs)
		w := bitio.NewWriter(len(postings) * 2)
		if err := EncodePostings(w, postings, numDocs); err != nil {
			t.Fatalf("encode valid postings (%d entries, N=%d): %v", len(postings), numDocs, err)
		}
		got, err := DecodePostings(nil, bitio.NewReader(w.Bytes()), len(postings), numDocs)
		if err != nil {
			t.Fatalf("decode (%d entries, N=%d): %v", len(postings), numDocs, err)
		}
		if len(got) != len(postings) {
			t.Fatalf("decoded %d postings, want %d", len(got), len(postings))
		}
		for i := range postings {
			if got[i] != postings[i] {
				t.Fatalf("posting %d: got %+v, want %+v", i, got[i], postings[i])
			}
		}
	})
}

// FuzzPostingsDecodeCorrupt throws arbitrary bits at DecodePostings: it
// must error or succeed without panicking, and every posting it does
// produce must respect the doc < numDocs invariant.
func FuzzPostingsDecodeCorrupt(f *testing.F) {
	f.Add([]byte{0xff, 0x00, 0xaa}, 3, uint32(100))
	f.Add([]byte{}, 1, uint32(1))
	f.Fuzz(func(t *testing.T, data []byte, count int, numDocs uint32) {
		if numDocs == 0 {
			numDocs = 1
		}
		if count < 0 {
			count = 0
		}
		if count > 1<<16 {
			count = 1 << 16 // decoded postings are bounded by input bits anyway
		}
		got, _ := DecodePostings(nil, bitio.NewReader(data), count, numDocs)
		for i, p := range got {
			if p.Doc >= numDocs {
				t.Fatalf("posting %d: doc %d escaped collection of %d", i, p.Doc, numDocs)
			}
		}
	})
}

// TestPostingsQuickRoundTrip is the testing/quick twin of the fuzz target,
// so the property is exercised on every plain `go test` run.
func TestPostingsQuickRoundTrip(t *testing.T) {
	prop := func(data []byte, numDocs uint32) bool {
		if numDocs == 0 {
			numDocs = 1
		}
		postings := postingsFromBytes(data, numDocs)
		w := bitio.NewWriter(len(postings) * 2)
		if err := EncodePostings(w, postings, numDocs); err != nil {
			return false
		}
		got, err := DecodePostings(nil, bitio.NewReader(w.Bytes()), len(postings), numDocs)
		if err != nil {
			return false
		}
		if len(postings) == 0 {
			return len(got) == 0
		}
		return reflect.DeepEqual(got, postings)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
