package codec

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"teraphim/internal/bitio"
)

func TestGammaKnownValues(t *testing.T) {
	// Classic gamma codewords.
	cases := []struct {
		v    uint64
		bits string
	}{
		{1, "0"},
		{2, "100"},
		{3, "101"},
		{4, "11000"},
		{7, "11011"},
		{8, "1110000"},
	}
	for _, c := range cases {
		w := bitio.NewWriter(8)
		if err := PutGamma(w, c.v); err != nil {
			t.Fatal(err)
		}
		if got := bitString(w); got != c.bits {
			t.Errorf("gamma(%d) = %s, want %s", c.v, got, c.bits)
		}
	}
}

func TestGammaZeroRejected(t *testing.T) {
	w := bitio.NewWriter(8)
	if err := PutGamma(w, 0); err != ErrNonPositive {
		t.Fatalf("want ErrNonPositive, got %v", err)
	}
	if err := PutDelta(w, 0); err != ErrNonPositive {
		t.Fatalf("delta: want ErrNonPositive, got %v", err)
	}
	if err := PutGolomb(w, 0, 3); err != ErrNonPositive {
		t.Fatalf("golomb: want ErrNonPositive, got %v", err)
	}
}

func TestGammaRoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		if v == 0 {
			v = 1
		}
		w := bitio.NewWriter(16)
		if err := PutGamma(w, v); err != nil {
			return false
		}
		got, err := Gamma(bitio.NewReader(w.Bytes()))
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDeltaRoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		if v == 0 {
			v = 1
		}
		w := bitio.NewWriter(16)
		if err := PutDelta(w, v); err != nil {
			return false
		}
		got, err := Delta(bitio.NewReader(w.Bytes()))
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGolombRoundTrip(t *testing.T) {
	f := func(v uint64, b uint64) bool {
		v = v%1_000_000 + 1
		b = b%1000 + 1
		w := bitio.NewWriter(32)
		if err := PutGolomb(w, v, b); err != nil {
			return false
		}
		got, err := Golomb(bitio.NewReader(w.Bytes()), b)
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGolombDivisorOne(t *testing.T) {
	// b=1 degenerates to unary; must still round-trip.
	w := bitio.NewWriter(16)
	for v := uint64(1); v <= 5; v++ {
		if err := PutGolomb(w, v, 1); err != nil {
			t.Fatal(err)
		}
	}
	r := bitio.NewReader(w.Bytes())
	for v := uint64(1); v <= 5; v++ {
		got, err := Golomb(r, 1)
		if err != nil {
			t.Fatal(err)
		}
		if got != v {
			t.Fatalf("golomb b=1: got %d want %d", got, v)
		}
	}
}

func TestGolombParameter(t *testing.T) {
	if b := GolombParameter(0, 10); b != 1 {
		t.Errorf("empty universe: b = %d, want 1", b)
	}
	if b := GolombParameter(1000, 0); b != 1 {
		t.Errorf("empty list: b = %d, want 1", b)
	}
	// Dense list: small parameter.
	if b := GolombParameter(1000, 900); b != 1 {
		t.Errorf("dense list: b = %d, want 1", b)
	}
	// Sparse list: parameter near 0.69 * mean gap.
	if b := GolombParameter(1_000_000, 100); b < 6000 || b > 7500 {
		t.Errorf("sparse list: b = %d, want ≈ 6900", b)
	}
}

func TestVByteRoundTrip(t *testing.T) {
	f := func(vals []uint64) bool {
		var buf []byte
		for _, v := range vals {
			buf = PutVByte(buf, v)
		}
		for _, want := range vals {
			got, n, err := VByte(buf)
			if err != nil || got != want {
				return false
			}
			buf = buf[n:]
		}
		return len(buf) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVByteTruncated(t *testing.T) {
	buf := PutVByte(nil, 1<<40)
	if _, _, err := VByte(buf[:2]); err == nil {
		t.Fatal("truncated vbyte: want error")
	}
	if _, _, err := VByte(nil); err == nil {
		t.Fatal("empty vbyte: want error")
	}
}

func TestPostingsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		numDocs := uint32(rng.Intn(100_000) + 10)
		n := rng.Intn(int(numDocs))
		postings := randomPostings(rng, n, numDocs)
		w := bitio.NewWriter(1024)
		if err := EncodePostings(w, postings, numDocs); err != nil {
			t.Fatal(err)
		}
		got, err := DecodePostings(nil, bitio.NewReader(w.Bytes()), len(postings), numDocs)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(postings) {
			t.Fatalf("decoded %d postings, want %d", len(got), len(postings))
		}
		for i := range got {
			if got[i] != postings[i] {
				t.Fatalf("posting %d: got %+v want %+v", i, got[i], postings[i])
			}
		}
	}
}

func TestPostingsRejectUnsorted(t *testing.T) {
	w := bitio.NewWriter(64)
	err := EncodePostings(w, []Posting{{Doc: 5, FDT: 1}, {Doc: 5, FDT: 2}}, 10)
	if err == nil {
		t.Fatal("duplicate docs: want error")
	}
	err = EncodePostings(w, []Posting{{Doc: 5, FDT: 1}, {Doc: 3, FDT: 2}}, 10)
	if err == nil {
		t.Fatal("descending docs: want error")
	}
	err = EncodePostings(w, []Posting{{Doc: 12, FDT: 1}}, 10)
	if err == nil {
		t.Fatal("doc outside collection: want error")
	}
}

func TestPostingsRejectZeroFDT(t *testing.T) {
	w := bitio.NewWriter(64)
	if err := EncodePostings(w, []Posting{{Doc: 1, FDT: 0}}, 10); err == nil {
		t.Fatal("zero f_dt: want error")
	}
}

func TestPostingsEmpty(t *testing.T) {
	w := bitio.NewWriter(8)
	if err := EncodePostings(w, nil, 100); err != nil {
		t.Fatal(err)
	}
	got, err := DecodePostings(nil, bitio.NewReader(w.Bytes()), 0, 100)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty round trip: got %v, %v", got, err)
	}
}

// TestCompressionRatio pins the headline MG property: a Golomb/gamma index
// over realistic postings is far smaller than fixed-width storage.
func TestCompressionRatio(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	numDocs := uint32(50_000)
	postings := randomPostings(rng, 5_000, numDocs)
	w := bitio.NewWriter(1 << 16)
	if err := EncodePostings(w, postings, numDocs); err != nil {
		t.Fatal(err)
	}
	compressed := len(w.Bytes())
	raw := len(postings) * 8 // uint32 doc + uint32 freq
	if compressed*3 > raw {
		t.Errorf("compressed %d bytes vs raw %d: expected at least 3x reduction", compressed, raw)
	}
}

func randomPostings(rng *rand.Rand, n int, numDocs uint32) []Posting {
	if n <= 0 {
		return nil
	}
	seen := make(map[uint32]bool, n)
	docs := make([]uint32, 0, n)
	for len(docs) < n {
		d := uint32(rng.Intn(int(numDocs)))
		if !seen[d] {
			seen[d] = true
			docs = append(docs, d)
		}
	}
	sort.Slice(docs, func(i, j int) bool { return docs[i] < docs[j] })
	postings := make([]Posting, n)
	for i, d := range docs {
		// Zipf-ish frequencies: mostly 1.
		f := uint32(1)
		for rng.Intn(3) == 0 {
			f++
		}
		postings[i] = Posting{Doc: d, FDT: f}
	}
	return postings
}

func bitString(w *bitio.Writer) string {
	n := w.BitLen()
	data := w.Bytes()
	out := make([]byte, n)
	for i := 0; i < n; i++ {
		if data[i/8]>>(7-uint(i%8))&1 == 1 {
			out[i] = '1'
		} else {
			out[i] = '0'
		}
	}
	return string(out)
}

func BenchmarkEncodePostings(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	postings := randomPostings(rng, 10_000, 1_000_000)
	w := bitio.NewWriter(1 << 18)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Reset()
		if err := EncodePostings(w, postings, 1_000_000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodePostings(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	postings := randomPostings(rng, 10_000, 1_000_000)
	w := bitio.NewWriter(1 << 18)
	if err := EncodePostings(w, postings, 1_000_000); err != nil {
		b.Fatal(err)
	}
	data := w.Bytes()
	dst := make([]Posting, 0, len(postings))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		dst, err = DecodePostings(dst[:0], bitio.NewReader(data), len(postings), 1_000_000)
		if err != nil {
			b.Fatal(err)
		}
	}
}
