// Package huffman implements canonical Huffman coding and, on top of it, the
// MG-style word-based document compression model: a document is an
// alternating sequence of "words" and "non-words" (separators), each drawn
// from its own Huffman-coded lexicon, with escape codes for novel tokens.
// The paper relies on this ("all documents are stored compressed") both for
// disk residence and for cheap network transmission.
package huffman

import (
	"errors"
	"fmt"
	"sort"

	"teraphim/internal/bitio"
)

// maxCodeLen bounds codeword lengths; with package-merge-free construction we
// simply reject pathological inputs beyond this depth.
const maxCodeLen = 58

var (
	// ErrUnknownSymbol is returned when decoding meets a codeword that was
	// never assigned.
	ErrUnknownSymbol = errors.New("huffman: unknown codeword")
	// ErrEmptyModel is returned when building a code over no symbols.
	ErrEmptyModel = errors.New("huffman: no symbols")
)

// Code is a canonical Huffman code over symbols 0..n-1.
type Code struct {
	lengths []uint8  // codeword length per symbol (0 = unused)
	codes   []uint64 // canonical codeword per symbol, MSB-first

	// Decoding tables, canonical-order: firstCode[l] is the first codeword
	// of length l, firstSym[l] the index into symOrder of its symbol.
	firstCode [maxCodeLen + 2]uint64
	firstSym  [maxCodeLen + 2]int
	symOrder  []uint32 // symbols sorted by (length, symbol)
	maxLen    uint8
}

// New builds a canonical Huffman code from symbol frequencies. Symbols with
// zero frequency receive no codeword. At least one symbol must have nonzero
// frequency; a single-symbol alphabet is assigned a 1-bit code.
func New(freqs []uint64) (*Code, error) {
	lengths, err := codeLengths(freqs)
	if err != nil {
		return nil, err
	}
	return fromLengths(lengths)
}

// NewFromLengths reconstructs a code from stored codeword lengths, as when
// loading a compressed collection from disk.
func NewFromLengths(lengths []uint8) (*Code, error) {
	cp := make([]uint8, len(lengths))
	copy(cp, lengths)
	return fromLengths(cp)
}

// Lengths returns the codeword length for every symbol (0 = unused). The
// returned slice is a copy.
func (c *Code) Lengths() []uint8 {
	out := make([]uint8, len(c.lengths))
	copy(out, c.lengths)
	return out
}

// NumSymbols returns the size of the symbol space (including unused symbols).
func (c *Code) NumSymbols() int { return len(c.lengths) }

// Encode appends the codeword for sym to w.
func (c *Code) Encode(w *bitio.Writer, sym uint32) error {
	if int(sym) >= len(c.lengths) || c.lengths[sym] == 0 {
		return fmt.Errorf("huffman: symbol %d has no codeword", sym)
	}
	w.WriteBits(c.codes[sym], uint(c.lengths[sym]))
	return nil
}

// Decode reads one codeword from r and returns its symbol.
func (c *Code) Decode(r *bitio.Reader) (uint32, error) {
	var code uint64
	for l := uint8(1); l <= c.maxLen; l++ {
		bit, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		code = code<<1 | uint64(bit)
		// count of codewords of length l:
		n := c.countAt(l)
		if n == 0 {
			continue
		}
		first := c.firstCode[l]
		if code >= first && code < first+uint64(n) {
			return c.symOrder[c.firstSym[l]+int(code-first)], nil
		}
	}
	return 0, ErrUnknownSymbol
}

func (c *Code) countAt(l uint8) int {
	return c.firstSym[l+1] - c.firstSym[l]
}

// codeLengths computes optimal codeword lengths via the standard two-queue
// Huffman construction on a heap of (weight, node) pairs.
func codeLengths(freqs []uint64) ([]uint8, error) {
	type node struct {
		weight      uint64
		sym         int // >= 0 for leaves
		left, right int // indexes into nodes for internal
	}
	var nodes []node
	var live []int
	for sym, f := range freqs {
		if f > 0 {
			nodes = append(nodes, node{weight: f, sym: sym, left: -1, right: -1})
			live = append(live, len(nodes)-1)
		}
	}
	if len(live) == 0 {
		return nil, ErrEmptyModel
	}
	lengths := make([]uint8, len(freqs))
	if len(live) == 1 {
		lengths[nodes[live[0]].sym] = 1
		return lengths, nil
	}
	// Simple heap over live node indexes.
	less := func(i, j int) bool { return nodes[live[i]].weight < nodes[live[j]].weight }
	h := &nodeHeap{idx: live, less: less}
	h.init()
	for h.len() > 1 {
		a := h.pop()
		b := h.pop()
		nodes = append(nodes, node{weight: nodes[a].weight + nodes[b].weight, sym: -1, left: a, right: b})
		h.push(len(nodes) - 1)
	}
	root := h.pop()
	// Iterative DFS to assign depths.
	type frame struct {
		n     int
		depth uint8
	}
	stack := []frame{{root, 0}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nd := nodes[f.n]
		if nd.sym >= 0 {
			if f.depth == 0 {
				f.depth = 1
			}
			if f.depth > maxCodeLen {
				return nil, fmt.Errorf("huffman: codeword length %d exceeds limit", f.depth)
			}
			lengths[nd.sym] = f.depth
			continue
		}
		stack = append(stack, frame{nd.left, f.depth + 1}, frame{nd.right, f.depth + 1})
	}
	return lengths, nil
}

type nodeHeap struct {
	idx  []int
	less func(i, j int) bool
}

func (h *nodeHeap) len() int { return len(h.idx) }

func (h *nodeHeap) init() {
	for i := len(h.idx)/2 - 1; i >= 0; i-- {
		h.down(i)
	}
}

func (h *nodeHeap) push(n int) {
	h.idx = append(h.idx, n)
	h.up(len(h.idx) - 1)
}

func (h *nodeHeap) pop() int {
	top := h.idx[0]
	last := len(h.idx) - 1
	h.idx[0] = h.idx[last]
	h.idx = h.idx[:last]
	if last > 0 {
		h.down(0)
	}
	return top
}

func (h *nodeHeap) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(i, p) {
			break
		}
		h.idx[i], h.idx[p] = h.idx[p], h.idx[i]
		i = p
	}
}

func (h *nodeHeap) down(i int) {
	n := len(h.idx)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(l, smallest) {
			smallest = l
		}
		if r < n && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.idx[i], h.idx[smallest] = h.idx[smallest], h.idx[i]
		i = smallest
	}
}

// fromLengths assigns canonical codewords: symbols sorted by (length,
// symbol), codes assigned in increasing numeric order.
func fromLengths(lengths []uint8) (*Code, error) {
	c := &Code{lengths: lengths, codes: make([]uint64, len(lengths))}
	var counts [maxCodeLen + 2]int
	for sym, l := range lengths {
		if l == 0 {
			continue
		}
		if l > maxCodeLen {
			return nil, fmt.Errorf("huffman: stored length %d for symbol %d exceeds limit", l, sym)
		}
		counts[l]++
		c.symOrder = append(c.symOrder, uint32(sym))
		if l > c.maxLen {
			c.maxLen = l
		}
	}
	if len(c.symOrder) == 0 {
		return nil, ErrEmptyModel
	}
	sort.Slice(c.symOrder, func(i, j int) bool {
		a, b := c.symOrder[i], c.symOrder[j]
		if lengths[a] != lengths[b] {
			return lengths[a] < lengths[b]
		}
		return a < b
	})
	// Kraft check and canonical first-codes.
	var kraft, code uint64
	sym := 0
	for l := uint8(1); l <= c.maxLen+1; l++ {
		c.firstSym[l] = sym
		if l > c.maxLen {
			break
		}
		code <<= 1
		c.firstCode[l] = code
		code += uint64(counts[l])
		sym += counts[l]
		kraft += uint64(counts[l]) << (maxCodeLen + 1 - l)
	}
	if kraft > 1<<(maxCodeLen+1) {
		return nil, errors.New("huffman: lengths violate Kraft inequality")
	}
	// Assign per-symbol codewords.
	next := c.firstCode
	for _, s := range c.symOrder {
		l := lengths[s]
		c.codes[s] = next[l]
		next[l]++
	}
	return c, nil
}
