package huffman

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"strings"

	"teraphim/internal/bitio"
	"teraphim/internal/codec"
	"teraphim/internal/textproc"
)

// TextModel is a word-based semi-static compression model in the style of
// MG: two lexicons (words and separators) with canonical Huffman codes
// trained over the collection, plus an escape mechanism for tokens outside
// either lexicon (escaped tokens are length-prefixed raw bytes).
//
// Build the model once over the collection with NewTextModel, then
// CompressDoc/DecompressDoc arbitrary documents — including ones containing
// novel words, which cost more bits but remain lossless.
type TextModel struct {
	words    *lexicon
	seps     *lexicon
	wordCode *Code
	sepCode  *Code
}

// escape symbols occupy index 0 in each lexicon.
const escapeSym = 0

type lexicon struct {
	byToken map[string]uint32
	tokens  []string // tokens[0] is the escape pseudo-token ""
}

func newLexicon() *lexicon {
	return &lexicon{byToken: map[string]uint32{}, tokens: []string{""}}
}

func (lx *lexicon) intern(tok string) uint32 {
	if id, ok := lx.byToken[tok]; ok {
		return id
	}
	id := uint32(len(lx.tokens))
	lx.tokens = append(lx.tokens, tok)
	lx.byToken[tok] = id
	return id
}

func (lx *lexicon) lookup(tok string) (uint32, bool) {
	id, ok := lx.byToken[tok]
	return id, ok
}

// NewTextModel trains a model over the given documents. Every distinct word
// and separator seen becomes a lexicon entry; the escape codeword is
// weighted at roughly the count of singletons so that novel tokens in future
// documents stay cheap.
func NewTextModel(docs []string) (*TextModel, error) {
	words := newLexicon()
	seps := newLexicon()
	wordFreq := []uint64{0}
	sepFreq := []uint64{0}
	count := func(lx *lexicon, freqs *[]uint64, tok string) {
		id := lx.intern(tok)
		for int(id) >= len(*freqs) {
			*freqs = append(*freqs, 0)
		}
		(*freqs)[id]++
	}
	for _, doc := range docs {
		spans, tail := textproc.SplitWords(doc)
		for _, s := range spans {
			count(seps, &sepFreq, s.Sep)
			count(words, &wordFreq, s.Word)
		}
		count(seps, &sepFreq, tail)
	}
	// Escape weight: one per thousand tokens, minimum 1, so escapes are
	// representable but near-maximal length.
	var total uint64
	for _, f := range wordFreq {
		total += f
	}
	wordFreq[escapeSym] = total/1000 + 1
	sepFreq[escapeSym] = total/1000 + 1

	wordCode, err := New(wordFreq)
	if err != nil {
		return nil, fmt.Errorf("huffman: word code: %w", err)
	}
	sepCode, err := New(sepFreq)
	if err != nil {
		return nil, fmt.Errorf("huffman: separator code: %w", err)
	}
	return &TextModel{words: words, seps: seps, wordCode: wordCode, sepCode: sepCode}, nil
}

// CompressDoc returns the compressed byte representation of text.
func (m *TextModel) CompressDoc(text string) ([]byte, error) {
	spans, tail := textproc.SplitWords(text)
	w := bitio.NewWriter(len(text)/3 + 16)
	// Span count first so the decoder knows the structure.
	if err := codec.PutGamma(w, uint64(len(spans))+1); err != nil {
		return nil, err
	}
	for _, s := range spans {
		if err := m.putToken(w, m.seps, m.sepCode, s.Sep); err != nil {
			return nil, err
		}
		if err := m.putToken(w, m.words, m.wordCode, s.Word); err != nil {
			return nil, err
		}
	}
	if err := m.putToken(w, m.seps, m.sepCode, tail); err != nil {
		return nil, err
	}
	return append([]byte(nil), w.Bytes()...), nil
}

// DecompressDoc reconstructs the exact original text.
func (m *TextModel) DecompressDoc(data []byte) (string, error) {
	r := bitio.NewReader(data)
	nspans, err := codec.Gamma(r)
	if err != nil {
		return "", err
	}
	nspans--
	var sb strings.Builder
	for i := uint64(0); i < nspans; i++ {
		sep, err := m.getToken(r, m.seps, m.sepCode)
		if err != nil {
			return "", fmt.Errorf("huffman: span %d separator: %w", i, err)
		}
		word, err := m.getToken(r, m.words, m.wordCode)
		if err != nil {
			return "", fmt.Errorf("huffman: span %d word: %w", i, err)
		}
		sb.WriteString(sep)
		sb.WriteString(word)
	}
	tail, err := m.getToken(r, m.seps, m.sepCode)
	if err != nil {
		return "", fmt.Errorf("huffman: tail: %w", err)
	}
	sb.WriteString(tail)
	return sb.String(), nil
}

func (m *TextModel) putToken(w *bitio.Writer, lx *lexicon, code *Code, tok string) error {
	if id, ok := lx.lookup(tok); ok && id != escapeSym {
		return code.Encode(w, id)
	}
	// Escape: codeword 0 then gamma length+1 then raw bytes.
	if err := code.Encode(w, escapeSym); err != nil {
		return err
	}
	if err := codec.PutGamma(w, uint64(len(tok))+1); err != nil {
		return err
	}
	for i := 0; i < len(tok); i++ {
		w.WriteBits(uint64(tok[i]), 8)
	}
	return nil
}

func (m *TextModel) getToken(r *bitio.Reader, lx *lexicon, code *Code) (string, error) {
	sym, err := code.Decode(r)
	if err != nil {
		return "", err
	}
	if sym != escapeSym {
		if int(sym) >= len(lx.tokens) {
			return "", fmt.Errorf("huffman: symbol %d outside lexicon", sym)
		}
		return lx.tokens[sym], nil
	}
	n, err := codec.Gamma(r)
	if err != nil {
		return "", err
	}
	n--
	if n > uint64(r.Remaining()/8) {
		return "", fmt.Errorf("huffman: escape of %d bytes exceeds remaining input", n)
	}
	buf := make([]byte, n)
	for i := range buf {
		b, err := r.ReadBits(8)
		if err != nil {
			return "", err
		}
		buf[i] = byte(b)
	}
	return string(buf), nil
}

// ModelSize reports the approximate in-memory size of the model in bytes:
// the cost a receptionist or librarian pays to hold the lexicons.
func (m *TextModel) ModelSize() int {
	size := 0
	for _, t := range m.words.tokens {
		size += len(t) + 5 // token bytes + length byte + code length entry
	}
	for _, t := range m.seps.tokens {
		size += len(t) + 5
	}
	return size
}

// ExpectedBitsPerToken returns the entropy-optimal average codeword length
// implied by the trained word code; useful in tests as a sanity bound.
func (m *TextModel) ExpectedBitsPerToken() float64 {
	lengths := m.wordCode.Lengths()
	var sum, n float64
	for _, l := range lengths {
		if l > 0 {
			sum += float64(l)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / n
}

// Marshal serialises the model (lexicons + codeword lengths) so a collection
// can be reopened without retraining. Layout: for each of the two lexicons,
// a uint32 count, then per token a vbyte length + raw bytes + one length
// byte for its codeword.
func (m *TextModel) Marshal() []byte {
	var out []byte
	emit := func(lx *lexicon, code *Code) {
		var hdr [4]byte
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(lx.tokens)))
		out = append(out, hdr[:]...)
		lengths := code.Lengths()
		for i, tok := range lx.tokens {
			out = codec.PutVByte(out, uint64(len(tok)))
			out = append(out, tok...)
			out = append(out, lengths[i])
		}
	}
	emit(m.words, m.wordCode)
	emit(m.seps, m.sepCode)
	return out
}

// UnmarshalTextModel reconstructs a model serialised by Marshal.
func UnmarshalTextModel(data []byte) (*TextModel, error) {
	read := func() (*lexicon, *Code, error) {
		if len(data) < 4 {
			return nil, nil, fmt.Errorf("huffman: truncated model header")
		}
		n := binary.LittleEndian.Uint32(data)
		data = data[4:]
		if n == 0 || n > math.MaxInt32 {
			return nil, nil, fmt.Errorf("huffman: implausible lexicon size %d", n)
		}
		hint := n
		if max := uint32(len(data)/2 + 1); hint > max {
			// Each token costs at least two bytes on disk; a larger count
			// is corrupt, so do not pre-allocate for it.
			hint = max
		}
		lx := &lexicon{byToken: make(map[string]uint32, hint), tokens: make([]string, 0, hint)}
		lengths := make([]uint8, 0, hint)
		for i := uint32(0); i < n; i++ {
			tl, used, err := codec.VByte(data)
			if err != nil {
				return nil, nil, fmt.Errorf("huffman: token %d length: %w", i, err)
			}
			data = data[used:]
			if uint64(len(data)) < tl+1 {
				return nil, nil, fmt.Errorf("huffman: token %d truncated", i)
			}
			tok := string(data[:tl])
			data = data[tl:]
			lx.tokens = append(lx.tokens, tok)
			if i != escapeSym {
				lx.byToken[tok] = i
			}
			lengths = append(lengths, data[0])
			data = data[1:]
		}
		code, err := NewFromLengths(lengths)
		if err != nil {
			return nil, nil, err
		}
		return lx, code, nil
	}
	words, wordCode, err := read()
	if err != nil {
		return nil, fmt.Errorf("huffman: word lexicon: %w", err)
	}
	seps, sepCode, err := read()
	if err != nil {
		return nil, fmt.Errorf("huffman: separator lexicon: %w", err)
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("huffman: %d trailing bytes after model", len(data))
	}
	return &TextModel{words: words, seps: seps, wordCode: wordCode, sepCode: sepCode}, nil
}

// sortedTokens is a test helper exposing lexicon contents deterministically.
func (m *TextModel) sortedTokens() []string {
	out := append([]string(nil), m.words.tokens[1:]...)
	sort.Strings(out)
	return out
}
