package huffman

import (
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"teraphim/internal/bitio"
)

func TestCanonicalRoundTrip(t *testing.T) {
	freqs := []uint64{10, 0, 5, 1, 1, 30, 2}
	c, err := New(freqs)
	if err != nil {
		t.Fatal(err)
	}
	w := bitio.NewWriter(64)
	syms := []uint32{0, 2, 3, 4, 5, 6, 5, 5, 0}
	for _, s := range syms {
		if err := c.Encode(w, s); err != nil {
			t.Fatal(err)
		}
	}
	r := bitio.NewReader(w.Bytes())
	for i, want := range syms {
		got, err := c.Decode(r)
		if err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("decode %d: got %d want %d", i, got, want)
		}
	}
}

func TestUnusedSymbolRejected(t *testing.T) {
	c, err := New([]uint64{10, 0, 5})
	if err != nil {
		t.Fatal(err)
	}
	w := bitio.NewWriter(8)
	if err := c.Encode(w, 1); err == nil {
		t.Fatal("encoding zero-frequency symbol: want error")
	}
	if err := c.Encode(w, 99); err == nil {
		t.Fatal("encoding out-of-range symbol: want error")
	}
}

func TestSingleSymbol(t *testing.T) {
	c, err := New([]uint64{0, 7})
	if err != nil {
		t.Fatal(err)
	}
	w := bitio.NewWriter(8)
	for i := 0; i < 3; i++ {
		if err := c.Encode(w, 1); err != nil {
			t.Fatal(err)
		}
	}
	r := bitio.NewReader(w.Bytes())
	for i := 0; i < 3; i++ {
		got, err := c.Decode(r)
		if err != nil || got != 1 {
			t.Fatalf("single-symbol decode: got %d, %v", got, err)
		}
	}
}

func TestEmptyModel(t *testing.T) {
	if _, err := New(nil); err != ErrEmptyModel {
		t.Fatalf("want ErrEmptyModel, got %v", err)
	}
	if _, err := New([]uint64{0, 0}); err != ErrEmptyModel {
		t.Fatalf("all-zero freqs: want ErrEmptyModel, got %v", err)
	}
}

func TestOptimalityAgainstEntropy(t *testing.T) {
	// Huffman expected length must be within 1 bit of the entropy bound.
	freqs := []uint64{50, 25, 12, 6, 3, 2, 1, 1}
	c, err := New(freqs)
	if err != nil {
		t.Fatal(err)
	}
	var total, weighted float64
	for _, f := range freqs {
		total += float64(f)
	}
	var entropy float64
	for sym, f := range freqs {
		if f == 0 {
			continue
		}
		p := float64(f) / total
		entropy += -p * log2(p)
		weighted += p * float64(c.lengths[sym])
	}
	if weighted < entropy || weighted > entropy+1 {
		t.Fatalf("avg codeword %.3f bits vs entropy %.3f: violates Huffman bound", weighted, entropy)
	}
}

func log2(x float64) float64 {
	// Avoid importing math for one call site in tests... actually just use it.
	return ln(x) / ln(2)
}

func ln(x float64) float64 {
	// Series-free: use the stdlib via a tiny indirection to keep gofmt happy.
	return mathLog(x)
}

func TestLengthsRoundTrip(t *testing.T) {
	freqs := []uint64{9, 3, 0, 7, 1, 1, 4}
	c1, err := New(freqs)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := NewFromLengths(c1.Lengths())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c1.codes, c2.codes) {
		t.Fatalf("canonical codes differ after lengths round trip:\n%v\n%v", c1.codes, c2.codes)
	}
}

func TestQuickCanonical(t *testing.T) {
	f := func(seed int64, nsyms uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nsyms%200) + 2
		freqs := make([]uint64, n)
		for i := range freqs {
			if rng.Intn(4) != 0 {
				freqs[i] = uint64(rng.Intn(1000))
			}
		}
		c, err := New(freqs)
		if err != nil {
			// Only acceptable when every frequency is zero.
			for _, f := range freqs {
				if f > 0 {
					return false
				}
			}
			return true
		}
		// Encode a random message of present symbols.
		var present []uint32
		for sym, f := range freqs {
			if f > 0 {
				present = append(present, uint32(sym))
			}
		}
		msg := make([]uint32, rng.Intn(100)+1)
		for i := range msg {
			msg[i] = present[rng.Intn(len(present))]
		}
		w := bitio.NewWriter(256)
		for _, s := range msg {
			if err := c.Encode(w, s); err != nil {
				return false
			}
		}
		r := bitio.NewReader(w.Bytes())
		for _, want := range msg {
			got, err := c.Decode(r)
			if err != nil || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

const sampleDoc = `The efficient management of large text collections is an
important practical problem. With the growth in the use of network services,
text collections such as digital libraries are increasingly being
distributed.`

func sampleCorpus() []string {
	return []string{
		sampleDoc,
		"Ranked queries provide more effective retrieval than Boolean queries.",
		"Each librarian evaluates the query and determines a ranking for the local collection.",
		"Network bandwidth and round-trip times are crucial to efficiency.",
	}
}

func TestTextModelRoundTrip(t *testing.T) {
	m, err := NewTextModel(sampleCorpus())
	if err != nil {
		t.Fatal(err)
	}
	for i, doc := range sampleCorpus() {
		data, err := m.CompressDoc(doc)
		if err != nil {
			t.Fatalf("doc %d: %v", i, err)
		}
		got, err := m.DecompressDoc(data)
		if err != nil {
			t.Fatalf("doc %d: %v", i, err)
		}
		if got != doc {
			t.Fatalf("doc %d: round trip mismatch\ngot:  %q\nwant: %q", i, got, doc)
		}
	}
}

func TestTextModelNovelTokens(t *testing.T) {
	m, err := NewTextModel(sampleCorpus())
	if err != nil {
		t.Fatal(err)
	}
	novel := "Zyzzyva!!! — unseen@@tokensé 42xyz\n\n\ttabs"
	data, err := m.CompressDoc(novel)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.DecompressDoc(data)
	if err != nil {
		t.Fatal(err)
	}
	if got != novel {
		t.Fatalf("novel-token round trip mismatch:\ngot:  %q\nwant: %q", got, novel)
	}
}

func TestTextModelEmptyDoc(t *testing.T) {
	m, err := NewTextModel(sampleCorpus())
	if err != nil {
		t.Fatal(err)
	}
	data, err := m.CompressDoc("")
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.DecompressDoc(data)
	if err != nil || got != "" {
		t.Fatalf("empty doc: got %q, %v", got, err)
	}
}

func TestTextModelCompresses(t *testing.T) {
	// A repetitive corpus must compress well below 50% of raw size.
	base := strings.Repeat(sampleDoc+" ", 20)
	m, err := NewTextModel([]string{base})
	if err != nil {
		t.Fatal(err)
	}
	data, err := m.CompressDoc(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(data)*2 > len(base) {
		t.Fatalf("compressed %d bytes of %d raw: expected < 50%%", len(data), len(base))
	}
}

func TestTextModelMarshalRoundTrip(t *testing.T) {
	m1, err := NewTextModel(sampleCorpus())
	if err != nil {
		t.Fatal(err)
	}
	blob := m1.Marshal()
	m2, err := UnmarshalTextModel(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m1.sortedTokens(), m2.sortedTokens()) {
		t.Fatal("lexicons differ after marshal round trip")
	}
	// Cross-compatibility: compress with m1, decompress with m2.
	doc := sampleCorpus()[2]
	data, err := m1.CompressDoc(doc)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m2.DecompressDoc(data)
	if err != nil {
		t.Fatal(err)
	}
	if got != doc {
		t.Fatalf("cross-model round trip mismatch: %q", got)
	}
}

func TestUnmarshalCorrupt(t *testing.T) {
	m, err := NewTextModel(sampleCorpus())
	if err != nil {
		t.Fatal(err)
	}
	blob := m.Marshal()
	if _, err := UnmarshalTextModel(blob[:3]); err == nil {
		t.Fatal("truncated header: want error")
	}
	if _, err := UnmarshalTextModel(blob[:len(blob)/2]); err == nil {
		t.Fatal("truncated body: want error")
	}
	if _, err := UnmarshalTextModel(append(blob, 0xff)); err == nil {
		t.Fatal("trailing garbage: want error")
	}
}

func TestModelSizePositive(t *testing.T) {
	m, err := NewTextModel(sampleCorpus())
	if err != nil {
		t.Fatal(err)
	}
	if m.ModelSize() <= 0 {
		t.Fatal("ModelSize must be positive")
	}
	if m.ExpectedBitsPerToken() <= 0 {
		t.Fatal("ExpectedBitsPerToken must be positive")
	}
}

func BenchmarkCompressDoc(b *testing.B) {
	m, err := NewTextModel(sampleCorpus())
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(sampleDoc)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.CompressDoc(sampleDoc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecompressDoc(b *testing.B) {
	m, err := NewTextModel(sampleCorpus())
	if err != nil {
		b.Fatal(err)
	}
	data, err := m.CompressDoc(sampleDoc)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(sampleDoc)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.DecompressDoc(data); err != nil {
			b.Fatal(err)
		}
	}
}

func mathLog(x float64) float64 { return math.Log(x) }
