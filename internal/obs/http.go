package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler serves the union of the given registries' metrics as Prometheus
// text exposition format. Registries render in argument order, so co-hosted
// components (a pool and a librarian in one process) keep stable output.
func Handler(regs ...*Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		for _, reg := range regs {
			if reg == nil {
				continue
			}
			if err := reg.WritePrometheus(w); err != nil {
				return
			}
		}
	})
}

// NewMux returns a mux exposing /metrics for the given registries plus the
// standard /debug/pprof endpoints — the diagnosis surface the binaries mount
// behind their opt-in -obs flag.
func NewMux(regs ...*Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(regs...))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running observability endpoint.
type Server struct {
	srv *http.Server
	ln  net.Listener
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Close stops the endpoint immediately.
func (s *Server) Close() error { return s.srv.Close() }

// ListenAndServe binds addr and serves /metrics + /debug/pprof in a
// background goroutine until Close. It returns once the listener is bound,
// so callers can print the resolved address.
func ListenAndServe(addr string, regs ...*Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: NewMux(regs...), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return &Server{srv: srv, ln: ln}, nil
}
