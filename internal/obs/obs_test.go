package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("t_total", "help", "")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := reg.Gauge("t_gauge", "help", "")
	g.Set(7)
	g.Dec()
	g.Add(-2)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
	// Registration is idempotent per (name, labels).
	if reg.Counter("t_total", "help", "") != c {
		t.Fatal("re-registration returned a different counter")
	}
	if reg.Counter("t_total", "help", `mode="CV"`) == c {
		t.Fatal("distinct labels returned the same counter")
	}
}

func TestHistogramBucketsAndSum(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("t_seconds", "help", "", []float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.5, 3, 10} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-16) > 1e-12 {
		t.Fatalf("sum = %g, want 16", h.Sum())
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// Cumulative buckets: <=1 holds 2 (0.5, 1), <=2 holds 3, <=5 holds 4,
	// +Inf holds all 5.
	for _, want := range []string{
		`t_seconds_bucket{le="1"} 2`,
		`t_seconds_bucket{le="2"} 3`,
		`t_seconds_bucket{le="5"} 4`,
		`t_seconds_bucket{le="+Inf"} 5`,
		`t_seconds_sum 16`,
		`t_seconds_count 5`,
		"# TYPE t_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendering missing %q:\n%s", want, out)
		}
	}
}

func TestRenderLabelsAndHeaders(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("q_total", "queries served", `mode="CN"`).Add(2)
	reg.Counter("q_total", "queries served", `mode="CV"`).Add(3)
	reg.Gauge("conns", "open connections", `lib="AP"`).Set(1)
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if strings.Count(out, "# HELP q_total queries served") != 1 {
		t.Fatalf("HELP not rendered exactly once per family:\n%s", out)
	}
	for _, want := range []string{
		`q_total{mode="CN"} 2`,
		`q_total{mode="CV"} 3`,
		`conns{lib="AP"} 1`,
		"# TYPE q_total counter",
		"# TYPE conns gauge",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendering missing %q:\n%s", want, out)
		}
	}
}

func TestKindMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("dual", "h", "")
	defer func() {
		if recover() == nil {
			t.Fatal("registering a gauge under a counter name did not panic")
		}
	}()
	reg.Gauge("dual", "h", "")
}

// TestConcurrentHammer races registration and every instrument operation
// across goroutines; run under -race (make race) this is the subsystem's
// thread-safety proof. Totals must come out exact — atomic, not racy.
func TestConcurrentHammer(t *testing.T) {
	reg := NewRegistry()
	const goroutines = 8
	const perG = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Same names from every goroutine: registration must dedupe.
			c := reg.Counter("hammer_total", "h", "")
			ga := reg.Gauge("hammer_gauge", "h", "")
			h := reg.Histogram("hammer_seconds", "h", "", []float64{0.5, 1})
			for i := 0; i < perG; i++ {
				c.Inc()
				ga.Inc()
				h.Observe(0.25)
				if i%3 == 0 {
					var b strings.Builder
					_ = reg.WritePrometheus(&b)
				}
			}
		}(g)
	}
	wg.Wait()
	if got := reg.Counter("hammer_total", "h", "").Value(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
	if got := reg.Gauge("hammer_gauge", "h", "").Value(); got != goroutines*perG {
		t.Fatalf("gauge = %d, want %d", got, goroutines*perG)
	}
	h := reg.Histogram("hammer_seconds", "h", "", nil)
	if h.Count() != goroutines*perG {
		t.Fatalf("histogram count = %d, want %d", h.Count(), goroutines*perG)
	}
	if want := 0.25 * goroutines * perG; math.Abs(h.Sum()-want) > 1e-6 {
		t.Fatalf("histogram sum = %g, want %g", h.Sum(), want)
	}
}

func TestHTTPEndpointServesMetricsAndPprof(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("served_total", "h", "").Add(9)
	srv, err := ListenAndServe("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		client := &http.Client{Timeout: 5 * time.Second}
		resp, err := client.Get(fmt.Sprintf("http://%s%s", srv.Addr(), path))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}
	code, body := get("/metrics")
	if code != http.StatusOK || !strings.Contains(body, "served_total 9") {
		t.Fatalf("/metrics = %d:\n%s", code, body)
	}
	code, body = get("/debug/pprof/cmdline")
	if code != http.StatusOK || body == "" {
		t.Fatalf("/debug/pprof/cmdline = %d", code)
	}
}

// TestObservePathAllocFree pins the hot-path property the query pipeline
// relies on: a registered instrument's operations allocate nothing.
func TestObservePathAllocFree(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("a_total", "h", "")
	g := reg.Gauge("a_gauge", "h", "")
	h := reg.Histogram("a_seconds", "h", "", nil)
	allocs := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.Add(3)
		g.Set(2)
		g.Dec()
		h.Observe(0.017)
		h.ObserveDuration(3 * time.Millisecond)
	})
	if allocs != 0 {
		t.Fatalf("instrument ops allocated %v per run, want 0", allocs)
	}
}
