// Package obs is the observability subsystem: dependency-free metric
// primitives — atomic counters, gauges, and fixed-bucket histograms — plus a
// Registry that renders them in Prometheus text exposition format.
//
// The design goal is zero allocation on the hot path: instruments are
// created once (registration takes a lock and may allocate), after which
// Inc/Add/Set/Observe are lock-free atomic operations on pre-sized storage.
// This is what lets the query pipeline record per-stage latencies and
// per-mode counters without disturbing the scoring kernel's ≤2-alloc
// steady state.
//
// Instruments carry an optional pre-formatted label set (`mode="CV"`), so a
// metric family (one name, one HELP/TYPE pair) can hold several series —
// the cheap subset of Prometheus labels this system needs. Registration is
// idempotent per (name, labels): asking again returns the existing
// instrument, which keeps repeated setup (many pools in one process, tests)
// safe.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing value.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (which may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts observations into fixed buckets. Bounds are upper bounds
// in ascending order; an implicit +Inf bucket catches the rest. Observe is
// lock-free: one atomic add on the bucket, CAS on the float sum.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1, last is +Inf
	sum    atomic.Uint64   // float64 bits
	count  atomic.Uint64
}

// DefLatencyBuckets spans 100µs to 10s — the range between an in-process
// exchange and a badly degraded WAN query.
var DefLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// metricKind is the TYPE line a family renders.
type metricKind string

const (
	kindCounter   metricKind = "counter"
	kindGauge     metricKind = "gauge"
	kindHistogram metricKind = "histogram"
)

// series is one labelled instrument within a family.
type series struct {
	labels string // pre-formatted, e.g. `mode="CV"`; "" for none
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family is one metric name with its HELP/TYPE header and series.
type family struct {
	name   string
	help   string
	kind   metricKind
	series []*series
}

// Registry holds metric families in registration order and renders them in
// Prometheus text exposition format. All methods are safe for concurrent
// use; instrument operations after registration never touch the registry
// lock.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// lookup finds or creates the (family, series) pair, enforcing kind
// consistency per name. It returns the series and whether it already held an
// instrument.
func (r *Registry) lookup(name, help string, kind metricKind, labels string) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind}
		r.byName[name] = f
		r.families = append(r.families, f)
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.kind, kind))
	}
	for _, s := range f.series {
		if s.labels == labels {
			return s
		}
	}
	s := &series{labels: labels}
	f.series = append(f.series, s)
	return s
}

// Counter returns the counter for (name, labels), creating and registering
// it on first use. labels is a pre-formatted Prometheus label body such as
// `mode="CV"`, or "" for none.
func (r *Registry) Counter(name, help, labels string) *Counter {
	s := r.lookup(name, help, kindCounter, labels)
	if s.c == nil {
		s.c = &Counter{}
	}
	return s.c
}

// Gauge returns the gauge for (name, labels), creating it on first use.
func (r *Registry) Gauge(name, help, labels string) *Gauge {
	s := r.lookup(name, help, kindGauge, labels)
	if s.g == nil {
		s.g = &Gauge{}
	}
	return s.g
}

// Histogram returns the histogram for (name, labels), creating it on first
// use with the given bucket upper bounds (nil selects DefLatencyBuckets).
// Bounds are fixed at creation; a second call with different bounds returns
// the original instrument.
func (r *Registry) Histogram(name, help, labels string, bounds []float64) *Histogram {
	s := r.lookup(name, help, kindHistogram, labels)
	if s.h == nil {
		if bounds == nil {
			bounds = DefLatencyBuckets
		}
		if !sort.Float64sAreSorted(bounds) {
			panic(fmt.Sprintf("obs: histogram %q bounds not ascending", name))
		}
		s.h = &Histogram{
			bounds: append([]float64(nil), bounds...),
			counts: make([]atomic.Uint64, len(bounds)+1),
		}
	}
	return s.h
}

// WritePrometheus renders every registered family in Prometheus text
// exposition format, in registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	// Snapshot the family/series structure; values are read atomically
	// outside the lock so a slow writer cannot stall instrument creation.
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.kind)
		for _, s := range f.series {
			switch f.kind {
			case kindCounter:
				writeSample(&b, f.name, "", s.labels, "", float64(s.c.Value()))
			case kindGauge:
				writeSample(&b, f.name, "", s.labels, "", float64(s.g.Value()))
			case kindHistogram:
				h := s.h
				cum := uint64(0)
				for i, bound := range h.bounds {
					cum += h.counts[i].Load()
					writeSample(&b, f.name, "_bucket", s.labels,
						fmt.Sprintf(`le="%s"`, formatFloat(bound)), float64(cum))
				}
				cum += h.counts[len(h.bounds)].Load()
				writeSample(&b, f.name, "_bucket", s.labels, `le="+Inf"`, float64(cum))
				writeSample(&b, f.name, "_sum", s.labels, "", h.Sum())
				writeSample(&b, f.name, "_count", s.labels, "", float64(h.Count()))
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeSample emits one `name[suffix]{labels} value` line.
func writeSample(b *strings.Builder, name, suffix, labels, extra string, v float64) {
	b.WriteString(name)
	b.WriteString(suffix)
	if labels != "" || extra != "" {
		b.WriteByte('{')
		b.WriteString(labels)
		if labels != "" && extra != "" {
			b.WriteByte(',')
		}
		b.WriteString(extra)
		b.WriteByte('}')
	}
	fmt.Fprintf(b, " %s\n", formatFloat(v))
}

// formatFloat renders floats the compact way Prometheus clients expect:
// integers without exponent or trailing zeros, everything else in %g.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
