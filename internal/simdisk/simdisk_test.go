package simdisk

import (
	"testing"
	"time"
)

func TestAccessTime(t *testing.T) {
	m := Model{Seek: 10 * time.Millisecond, TransferRate: 1 << 20}
	// 5 seeks + 1 MB transfer = 50ms + 1000ms.
	got := m.AccessTime(5, 1<<20)
	want := 1050 * time.Millisecond
	if got != want {
		t.Fatalf("AccessTime = %v, want %v", got, want)
	}
	if m.AccessTime(0, 0) != 0 {
		t.Fatal("zero access must cost zero")
	}
}

func TestSharedAccessTime(t *testing.T) {
	m := Model{Seek: 10 * time.Millisecond, TransferRate: 1 << 20, ContentionFactor: 2}
	// Positioning doubles; transfer unchanged.
	got := m.SharedAccessTime(5, 1<<20)
	want := 1100 * time.Millisecond
	if got != want {
		t.Fatalf("SharedAccessTime = %v, want %v", got, want)
	}
	// Factor below 1 clamps to 1.
	m.ContentionFactor = 0.5
	if m.SharedAccessTime(5, 0) != m.AccessTime(5, 0) {
		t.Fatal("contention factor below 1 must clamp")
	}
}

func TestZeroTransferRate(t *testing.T) {
	m := Model{Seek: time.Millisecond}
	if got := m.AccessTime(2, 1<<30); got != 2*time.Millisecond {
		t.Fatalf("zero transfer rate: %v", got)
	}
}

func TestValidate(t *testing.T) {
	if err := Era1995().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Model{Seek: -1}).Validate(); err == nil {
		t.Fatal("negative seek: want error")
	}
	if err := (Model{TransferRate: -1}).Validate(); err == nil {
		t.Fatal("negative rate: want error")
	}
}

func TestEra1995Plausible(t *testing.T) {
	m := Era1995()
	if m.Seek < time.Millisecond || m.Seek > 50*time.Millisecond {
		t.Errorf("seek %v outside plausible 1995 range", m.Seek)
	}
	if m.TransferRate < 1<<20 || m.TransferRate > 100<<20 {
		t.Errorf("transfer %f outside plausible 1995 range", m.TransferRate)
	}
	if m.ContentionFactor <= 1 {
		t.Error("shared-disk contention must exceed 1")
	}
}
