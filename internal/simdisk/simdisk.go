// Package simdisk models magnetic-disk access costs for the efficiency
// experiments: positioning (seek + rotational latency) per access, streaming
// transfer, and the contention penalty paid when several librarians share
// one spindle — the paper's mono-disk configuration, where "the librarians
// interfere with each other by repositioning the disk head unpredictably".
package simdisk

import (
	"fmt"
	"time"
)

// Model describes one disk.
type Model struct {
	// Seek is the average positioning cost (seek + rotational latency) per
	// discrete access.
	Seek time.Duration
	// TransferRate is the streaming bandwidth in bytes per second.
	TransferRate float64
	// ContentionFactor multiplies positioning costs when the disk is
	// shared by concurrent readers; 1 means no penalty.
	ContentionFactor float64
}

// Era1995 returns disk parameters representative of the workstation disks
// in the paper's experiments (a mid-1990s SCSI drive). The positioning cost
// is the *effective* per-list figure for MG's inverted files: lists are
// stored contiguously and read mostly sequentially, so a positioned read
// costs well under the drive's worst-case 10–15 ms seek.
func Era1995() Model {
	return Model{
		Seek:             4 * time.Millisecond,
		TransferRate:     4 << 20, // 4 MB/s
		ContentionFactor: 1.5,
	}
}

// AccessTime returns the cost of `accesses` discrete reads totalling
// `bytes`, on a dedicated disk.
func (m Model) AccessTime(accesses int, bytes uint64) time.Duration {
	d := time.Duration(accesses) * m.Seek
	if m.TransferRate > 0 {
		d += time.Duration(float64(bytes) / m.TransferRate * float64(time.Second))
	}
	return d
}

// SharedAccessTime returns the cost of the same reads when the disk is
// shared with other active readers: positioning costs inflate by the
// contention factor.
func (m Model) SharedAccessTime(accesses int, bytes uint64) time.Duration {
	factor := m.ContentionFactor
	if factor < 1 {
		factor = 1
	}
	d := time.Duration(float64(accesses) * factor * float64(m.Seek))
	if m.TransferRate > 0 {
		d += time.Duration(float64(bytes) / m.TransferRate * float64(time.Second))
	}
	return d
}

// Validate reports configuration errors.
func (m Model) Validate() error {
	if m.Seek < 0 {
		return fmt.Errorf("simdisk: negative seek %v", m.Seek)
	}
	if m.TransferRate < 0 {
		return fmt.Errorf("simdisk: negative transfer rate %f", m.TransferRate)
	}
	return nil
}
