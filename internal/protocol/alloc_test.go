package protocol

import (
	"bytes"
	"io"
	"testing"
)

// The wire layer's whole point is that steady-state framing costs no
// allocation: the Writer reuses its encode buffer and the Reader its
// payload buffer and per-type message structs. These pins keep that true —
// a regression here multiplies GC pressure by the query rate.

// TestWriterAllocsSteadyState pins the encode path: once the Writer's
// buffer has grown to fit, framing a rank query allocates nothing.
func TestWriterAllocsSteadyState(t *testing.T) {
	msg := &RankQuery{Query: "alpha federal wallstreet", K: 20,
		Weights: map[string]float64{"alpha": 1.5, "federal": 0.25}}
	for _, tagged := range []bool{false, true} {
		wr := &Writer{W: io.Discard, Tagged: tagged}
		if _, err := wr.Write(7, msg); err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(200, func() {
			if _, err := wr.Write(7, msg); err != nil {
				t.Fatal(err)
			}
		})
		if allocs > 0 {
			t.Errorf("tagged=%v: Writer.Write allocates %.1f/op steady-state, want 0", tagged, allocs)
		}
	}
}

// TestReadReuseAllocsSteadyState pins the serving-loop decode path: reading
// a CN rank query into the Reader's reused per-type struct costs at most
// one allocation (the query string itself, which must escape the frame
// buffer).
func TestReadReuseAllocsSteadyState(t *testing.T) {
	for _, tagged := range []bool{false, true} {
		var buf bytes.Buffer
		wr := &Writer{W: &buf, Tagged: tagged}
		if _, err := wr.Write(7, &RankQuery{Query: "alpha federal wallstreet", K: 20}); err != nil {
			t.Fatal(err)
		}
		frame := buf.Bytes()
		br := bytes.NewReader(frame)
		rd := &Reader{R: br, Tagged: tagged}
		if _, _, _, err := rd.ReadReuse(); err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(200, func() {
			br.Reset(frame)
			if _, _, _, err := rd.ReadReuse(); err != nil {
				t.Fatal(err)
			}
		})
		if allocs > 1 {
			t.Errorf("tagged=%v: ReadReuse allocates %.1f/op steady-state, want <= 1", tagged, allocs)
		}
	}
}

// TestRoundTripAllocsSteadyState pins the full encode → frame → decode
// round trip of a rank query at one allocation: the decoded query string.
// Replies ride the same pin with zero — RankReply's fields are all
// capacity-reused.
func TestRoundTripAllocsSteadyState(t *testing.T) {
	query := &RankQuery{Query: "alpha federal wallstreet", K: 20}
	reply := &RankReply{Results: []ScoredDoc{{Doc: 5, Score: 0.77}, {Doc: 9, Score: 0.5}}}
	for _, tc := range []struct {
		name string
		msg  Message
		max  float64
	}{
		{"RankQuery", query, 1},
		{"RankReply", reply, 0},
	} {
		var buf bytes.Buffer
		wr := &Writer{W: &buf, Tagged: true}
		rd := &Reader{R: &buf, Tagged: true}
		roundTrip := func() {
			buf.Reset()
			if _, err := wr.Write(3, tc.msg); err != nil {
				t.Fatal(err)
			}
			if _, _, _, err := rd.ReadReuse(); err != nil {
				t.Fatal(err)
			}
		}
		roundTrip()
		if allocs := testing.AllocsPerRun(200, roundTrip); allocs > tc.max {
			t.Errorf("%s: round trip allocates %.1f/op steady-state, want <= %.0f", tc.name, allocs, tc.max)
		}
	}
}
