// Package protocol defines the binary wire protocol spoken between
// receptionists and librarians. Frames are length-prefixed so a session can
// run over any stream transport (TCP, an in-process pipe, or the simulated
// links in package simnet).
//
// Frame layout (little endian):
//
//	length u32 (payload bytes, excluding the 5-byte header)
//	type   u8
//	payload
//
// When FeaturePipelining has been negotiated on a connection (see
// Features), every frame after the HelloReply instead carries a tagged
// header — a u32 exchange id between the type and the payload — so replies
// can arrive out of order:
//
//	length u32 (payload bytes, excluding the 9-byte header)
//	type   u8
//	tag    u32
//	payload
//
// Message payloads use a compact hand-rolled encoding: vbyte integers,
// length-prefixed strings, IEEE-754 float64 bits. Every message reports its
// encoded size back to the caller so the experiments can account for traffic
// byte-for-byte.
package protocol

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"

	"teraphim/internal/codec"
	"teraphim/internal/search"
)

// MaxFrameSize bounds a frame payload; larger frames are rejected as
// corrupt. Generous enough for a full vocabulary exchange.
const MaxFrameSize = 64 << 20

// MsgType identifies the message in a frame.
type MsgType uint8

// Message types.
const (
	TypeHello MsgType = iota + 1
	TypeHelloReply
	TypeVocabRequest
	TypeVocabReply
	TypeRankQuery
	TypeRankReply
	TypeScoreDocs
	TypeFetchDocs
	TypeFetchReply
	TypeError
	TypeModelRequest
	TypeModelReply
	TypeBooleanQuery
	TypeBooleanReply
	TypeIndexRequest
	TypeIndexReply
	TypeBatchQuery
	TypeBatchReply
)

func (t MsgType) String() string {
	switch t {
	case TypeHello:
		return "Hello"
	case TypeHelloReply:
		return "HelloReply"
	case TypeVocabRequest:
		return "VocabRequest"
	case TypeVocabReply:
		return "VocabReply"
	case TypeRankQuery:
		return "RankQuery"
	case TypeRankReply:
		return "RankReply"
	case TypeScoreDocs:
		return "ScoreDocs"
	case TypeFetchDocs:
		return "FetchDocs"
	case TypeFetchReply:
		return "FetchReply"
	case TypeError:
		return "Error"
	case TypeModelRequest:
		return "ModelRequest"
	case TypeModelReply:
		return "ModelReply"
	case TypeBooleanQuery:
		return "BooleanQuery"
	case TypeBooleanReply:
		return "BooleanReply"
	case TypeIndexRequest:
		return "IndexRequest"
	case TypeIndexReply:
		return "IndexReply"
	case TypeBatchQuery:
		return "BatchQuery"
	case TypeBatchReply:
		return "BatchReply"
	default:
		return fmt.Sprintf("MsgType(%d)", uint8(t))
	}
}

// Message is any protocol message.
type Message interface {
	Type() MsgType
	encode(b []byte) []byte
	decode(b []byte) error
}

// ErrShortPayload is returned when a payload ends before its message does.
var ErrShortPayload = errors.New("protocol: truncated payload")

// Hello requests librarian identification and collection statistics.
// Features carries the protocol extensions the client wants to enable on
// this connection; zero requests nothing and encodes to the seed wire bytes
// (an empty payload), so old librarians never see the field at all.
type Hello struct {
	Features Features
}

// HelloReply describes a librarian's collection. Features is the granted
// extension set — always a subset of the request (see Features); it is
// encoded only when non-zero, keeping the reply bit-identical to the seed
// format whenever nothing was negotiated.
type HelloReply struct {
	Name       string
	NumDocs    uint32
	NumTerms   uint32
	IndexBytes uint64
	VocabBytes uint64
	StoreBytes uint64
	Features   Features
}

// TermStat is one vocabulary entry: a term and its document frequency.
type TermStat struct {
	Term string
	FT   uint32
}

// VocabRequest asks for the librarian's full vocabulary (the CV
// receptionist's preprocessing step).
type VocabRequest struct{}

// VocabReply carries the vocabulary, sorted by term.
type VocabReply struct {
	Terms []TermStat
}

// RankQuery asks a librarian for its top-K ranking. Nil Weights means the
// librarian must use its own local statistics (CN); non-nil Weights carry
// the receptionist's global w_{q,t} values (CV).
type RankQuery struct {
	Query   string
	K       uint32
	Weights map[string]float64
	// Evaluator is the wire form of search.Evaluator — 0 exact, 1 MaxScore,
	// 2 WAND. It is encoded only when non-zero, so exact queries remain
	// byte-identical to the original frame format (the Hello Features
	// convention); old peers simply never send it and decode it as absent.
	Evaluator uint8
}

// ScoredDoc is one (local document id, similarity) pair.
type ScoredDoc struct {
	Doc   uint32
	Score float64
}

// RankReply returns a ranking (or the scores of nominated documents) along
// with the evaluation statistics the cost model consumes.
type RankReply struct {
	Results []ScoredDoc
	Stats   search.Stats
}

// ScoreDocs asks for exact similarities of the nominated local documents
// (the CI librarian fast path). Weights follow RankQuery conventions.
type ScoreDocs struct {
	Query   string
	Docs    []uint32
	Weights map[string]float64
}

// FetchDocs requests document texts. Compressed selects wire format: true
// ships the stored compressed blobs (decompressed receptionist-side), false
// ships plain text.
type FetchDocs struct {
	Docs       []uint32
	Compressed bool
}

// DocBlob is one returned document.
type DocBlob struct {
	Doc        uint32
	Title      string
	Data       []byte // plain text or compressed blob per FetchDocs.Compressed
	Compressed bool
}

// FetchReply returns requested documents.
type FetchReply struct {
	Docs []DocBlob
}

// ErrorReply reports a librarian-side failure.
type ErrorReply struct {
	Message string
}

// ModelRequest asks for the librarian's document-compression model so the
// receptionist can expand compressed document transfers locally (a one-time
// setup cost that Table 4's compressed-transfer mode amortises).
type ModelRequest struct{}

// ModelReply carries the serialised text-compression model.
type ModelReply struct {
	Model []byte
}

// BooleanQuery asks a librarian to evaluate a Boolean expression against
// its subcollection. Distributed Boolean evaluation needs no global
// information: the collection-wide answer is the union of the
// subcollection answers (§1 of the paper).
type BooleanQuery struct {
	Expr string
}

// BooleanReply returns the matching local document ids, sorted ascending.
type BooleanReply struct {
	Docs  []uint32
	Stats search.Stats
}

// IndexRequest asks a librarian for its complete inverted index — the
// transfer behind the Central Index methodology's offline preprocessing,
// in which "the receptionist has full access to the indexes of the
// subcollections".
type IndexRequest struct{}

// IndexReply carries the index in its on-disk serialised form
// (index.WriteTo); the receptionist decodes it with index.ReadFrom.
type IndexReply struct {
	Data []byte
}

// RemoteError is the receptionist-side error produced when a librarian
// answers with an ErrorReply. A RemoteError arrives on an intact stream (the
// librarian framed a complete reply), so the connection stays usable.
type RemoteError struct {
	Message string
	// Retryable marks a transient librarian-side condition worth
	// re-attempting, as opposed to a semantic failure (a malformed query,
	// an unknown document) that would fail identically on every attempt.
	// Librarian-reported errors default to non-retryable.
	Retryable bool
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("protocol: remote error: %s", e.Message)
}

// Frame header sizes: the seed header and the tagged (pipelined) header.
const (
	hdrLen       = 5
	taggedHdrLen = 9
)

// maxPooledBuf bounds what goes back on the frame-buffer pool; a monster
// frame (an index ship, a corrupt length) must not pin megabytes forever.
const maxPooledBuf = 1 << 20

var bufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 4096)
	return &b
}}

func getBuf() *[]byte { return bufPool.Get().(*[]byte) }

func putBuf(bp *[]byte) {
	if cap(*bp) <= maxPooledBuf {
		*bp = (*bp)[:0]
		bufPool.Put(bp)
	}
}

// AppendEncode appends msg's payload encoding to dst and returns the grown
// slice — the allocation-free encode path; pair it with DecodeInto for a
// zero-copy round trip over caller-owned scratch.
func AppendEncode(dst []byte, msg Message) []byte { return msg.encode(dst) }

// DecodeInto decodes a payload (no frame header) into msg, reusing msg's
// slice capacity where possible. The payload must match msg's type and is
// fully copied out — msg never aliases it.
func DecodeInto(msg Message, payload []byte) error { return msg.decode(payload) }

// AppendFrame appends one complete frame (header + payload) for msg to dst.
// Tagged selects the pipelined framing and stamps tag into the header; the
// seed framing ignores tag. The frame is contiguous, so a single Write of
// the result is one syscall — header and payload together.
func AppendFrame(dst []byte, tag uint32, tagged bool, msg Message) ([]byte, error) {
	start := len(dst)
	hl := hdrLen
	if tagged {
		hl = taggedHdrLen
	}
	for i := 0; i < hl; i++ {
		dst = append(dst, 0)
	}
	dst = msg.encode(dst)
	payload := len(dst) - start - hl
	if payload > MaxFrameSize {
		return dst[:start], fmt.Errorf("protocol: %v payload of %d bytes exceeds limit", msg.Type(), payload)
	}
	binary.LittleEndian.PutUint32(dst[start:], uint32(payload))
	dst[start+4] = byte(msg.Type())
	if tagged {
		binary.LittleEndian.PutUint32(dst[start+5:], tag)
	}
	return dst, nil
}

// WriteMessage frames and writes msg in the seed framing, returning the
// total bytes written (header included). The frame buffer is pooled: the
// steady-state write path allocates nothing.
func WriteMessage(w io.Writer, msg Message) (int, error) {
	bp := getBuf()
	b, err := AppendFrame((*bp)[:0], 0, false, msg)
	if err != nil {
		putBuf(bp)
		return 0, err
	}
	*bp = b
	n, err := w.Write(b)
	putBuf(bp)
	if err != nil {
		return n, fmt.Errorf("protocol: write %v: %w", msg.Type(), err)
	}
	return n, nil
}

// ReadMessage reads one seed-framing frame and decodes it, returning the
// message and the total bytes read. The payload buffer is pooled and never
// escapes: every decoder copies what it keeps, so the buffer is returned to
// the pool before ReadMessage returns.
func ReadMessage(r io.Reader) (Message, int, error) {
	var hdr [hdrLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, 0, fmt.Errorf("protocol: read header: %w", err)
	}
	length := binary.LittleEndian.Uint32(hdr[:4])
	if length > MaxFrameSize {
		return nil, hdrLen, fmt.Errorf("protocol: frame of %d bytes exceeds limit", length)
	}
	msgType := MsgType(hdr[4])
	bp := getBuf()
	if cap(*bp) < int(length) {
		*bp = make([]byte, 0, length)
	}
	payload := (*bp)[:length]
	if _, err := io.ReadFull(r, payload); err != nil {
		putBuf(bp)
		return nil, hdrLen, fmt.Errorf("protocol: read %v payload: %w", msgType, err)
	}
	msg, err := newMessage(msgType)
	if err != nil {
		putBuf(bp)
		return nil, hdrLen + int(length), err
	}
	err = msg.decode(payload)
	putBuf(bp)
	if err != nil {
		return nil, hdrLen + int(length), fmt.Errorf("protocol: decode %v: %w", msgType, err)
	}
	return msg, hdrLen + int(length), nil
}

// Reader reads frames from one stream. Its payload buffer is owned by the
// Reader and reused across frames; Tagged selects the pipelined framing.
// A Reader is not safe for concurrent use — one per connection reader.
type Reader struct {
	R      io.Reader
	Tagged bool

	// hdr lives on the Reader, not the stack: a local array passed to
	// io.ReadFull escapes through the interface and would cost one heap
	// allocation per frame on the steady-state read path.
	hdr   [taggedHdrLen]byte
	buf   []byte
	reuse map[MsgType]Message
}

// readPayload reads one frame header and payload into the Reader's buffer.
// The returned payload slice is valid until the next read.
func (rd *Reader) readPayload() (MsgType, uint32, []byte, int, error) {
	hdr := &rd.hdr
	hl := hdrLen
	if rd.Tagged {
		hl = taggedHdrLen
	}
	if _, err := io.ReadFull(rd.R, hdr[:hl]); err != nil {
		return 0, 0, nil, 0, fmt.Errorf("protocol: read header: %w", err)
	}
	length := binary.LittleEndian.Uint32(hdr[:4])
	if length > MaxFrameSize {
		return 0, 0, nil, hl, fmt.Errorf("protocol: frame of %d bytes exceeds limit", length)
	}
	t := MsgType(hdr[4])
	var tag uint32
	if rd.Tagged {
		tag = binary.LittleEndian.Uint32(hdr[5:9])
	}
	if cap(rd.buf) < int(length) {
		rd.buf = make([]byte, length)
	}
	payload := rd.buf[:length]
	if _, err := io.ReadFull(rd.R, payload); err != nil {
		return t, tag, nil, hl, fmt.Errorf("protocol: read %v payload: %w", t, err)
	}
	return t, tag, payload, hl + int(length), nil
}

// Read reads and decodes one frame into a fresh message — the demultiplexer
// path, where the message escapes to another goroutine.
func (rd *Reader) Read() (Message, uint32, int, error) {
	t, tag, payload, n, err := rd.readPayload()
	if err != nil {
		return nil, tag, n, err
	}
	msg, err := newMessage(t)
	if err != nil {
		return nil, tag, n, err
	}
	if err := msg.decode(payload); err != nil {
		return nil, tag, n, fmt.Errorf("protocol: decode %v: %w", t, err)
	}
	return msg, tag, n, nil
}

// ReadReuse reads and decodes one frame into a per-type message struct
// owned by the Reader, reusing its field capacity across frames — the
// serving-loop path. The returned message (and everything it references) is
// valid only until the next ReadReuse call.
func (rd *Reader) ReadReuse() (Message, uint32, int, error) {
	t, tag, payload, n, err := rd.readPayload()
	if err != nil {
		return nil, tag, n, err
	}
	if rd.reuse == nil {
		rd.reuse = make(map[MsgType]Message, 8)
	}
	msg, ok := rd.reuse[t]
	if !ok {
		msg, err = newMessage(t)
		if err != nil {
			return nil, tag, n, err
		}
		rd.reuse[t] = msg
	}
	if err := msg.decode(payload); err != nil {
		return nil, tag, n, fmt.Errorf("protocol: decode %v: %w", t, err)
	}
	return msg, tag, n, nil
}

// Writer frames messages onto one stream with a reused encode buffer. Each
// Write issues exactly one w.Write call with the contiguous frame. A Writer
// is not safe for concurrent use — serialise callers externally.
type Writer struct {
	W      io.Writer
	Tagged bool

	buf []byte
}

// Write frames and writes msg (tag is ignored in the seed framing),
// returning the bytes written.
func (wr *Writer) Write(tag uint32, msg Message) (int, error) {
	b, err := AppendFrame(wr.buf[:0], tag, wr.Tagged, msg)
	if err != nil {
		return 0, err
	}
	if cap(b) <= maxPooledBuf {
		wr.buf = b
	} else {
		wr.buf = nil
	}
	n, err := wr.W.Write(b)
	if err != nil {
		return n, fmt.Errorf("protocol: write %v: %w", msg.Type(), err)
	}
	return n, nil
}

func newMessage(t MsgType) (Message, error) {
	switch t {
	case TypeHello:
		return &Hello{}, nil
	case TypeHelloReply:
		return &HelloReply{}, nil
	case TypeVocabRequest:
		return &VocabRequest{}, nil
	case TypeVocabReply:
		return &VocabReply{}, nil
	case TypeRankQuery:
		return &RankQuery{}, nil
	case TypeRankReply:
		return &RankReply{}, nil
	case TypeScoreDocs:
		return &ScoreDocs{}, nil
	case TypeFetchDocs:
		return &FetchDocs{}, nil
	case TypeFetchReply:
		return &FetchReply{}, nil
	case TypeError:
		return &ErrorReply{}, nil
	case TypeModelRequest:
		return &ModelRequest{}, nil
	case TypeModelReply:
		return &ModelReply{}, nil
	case TypeBooleanQuery:
		return &BooleanQuery{}, nil
	case TypeBooleanReply:
		return &BooleanReply{}, nil
	case TypeIndexRequest:
		return &IndexRequest{}, nil
	case TypeIndexReply:
		return &IndexReply{}, nil
	case TypeBatchQuery:
		return &BatchQuery{}, nil
	case TypeBatchReply:
		return &BatchReply{}, nil
	default:
		return nil, fmt.Errorf("protocol: unknown message type %d", t)
	}
}

// --- primitive encoders -------------------------------------------------

func putUint(b []byte, v uint64) []byte { return codec.PutVByte(b, v) }

func getUint(b []byte) (uint64, []byte, error) {
	v, n, err := codec.VByte(b)
	if err != nil {
		return 0, b, ErrShortPayload
	}
	return v, b[n:], nil
}

func putString(b []byte, s string) []byte {
	b = putUint(b, uint64(len(s)))
	return append(b, s...)
}

func getString(b []byte) (string, []byte, error) {
	n, b, err := getUint(b)
	if err != nil {
		return "", b, err
	}
	if uint64(len(b)) < n {
		return "", b, ErrShortPayload
	}
	return string(b[:n]), b[n:], nil
}

func putBytes(b []byte, p []byte) []byte {
	b = putUint(b, uint64(len(p)))
	return append(b, p...)
}

func getBytes(b []byte) ([]byte, []byte, error) {
	n, b, err := getUint(b)
	if err != nil {
		return nil, b, err
	}
	if uint64(len(b)) < n {
		return nil, b, ErrShortPayload
	}
	out := make([]byte, n)
	copy(out, b[:n])
	return out, b[n:], nil
}

func putFloat(b []byte, f float64) []byte {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(f))
	return append(b, buf[:]...)
}

func getFloat(b []byte) (float64, []byte, error) {
	if len(b) < 8 {
		return 0, b, ErrShortPayload
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b)), b[8:], nil
}

func putWeights(b []byte, w map[string]float64) []byte {
	if w == nil {
		return putUint(b, 0)
	}
	// Length+1 so nil (use local stats) and empty (no weighted terms) are
	// distinguishable on the wire.
	b = putUint(b, uint64(len(w))+1)
	for term, wt := range w {
		b = putString(b, term)
		b = putFloat(b, wt)
	}
	return b
}

func getWeights(b []byte) (map[string]float64, []byte, error) {
	n, b, err := getUint(b)
	if err != nil {
		return nil, b, err
	}
	if n == 0 {
		return nil, b, nil
	}
	n--
	// Bound the map size hint by what the payload could hold (each entry
	// is at least 9 bytes): corrupt counts must not drive allocation.
	hint := n
	if max := uint64(len(b)/9) + 1; hint > max {
		hint = max
	}
	w := make(map[string]float64, hint)
	for i := uint64(0); i < n; i++ {
		var term string
		term, b, err = getString(b)
		if err != nil {
			return nil, b, err
		}
		var wt float64
		wt, b, err = getFloat(b)
		if err != nil {
			return nil, b, err
		}
		w[term] = wt
	}
	return w, b, nil
}

func putStats(b []byte, s search.Stats) []byte {
	b = putUint(b, uint64(s.TermsLooked))
	b = putUint(b, uint64(s.ListsFetched))
	b = putUint(b, s.PostingsDecoded)
	b = putUint(b, s.IndexBytesRead)
	b = putUint(b, uint64(s.CandidateDocs))
	return b
}

func getStats(b []byte) (search.Stats, []byte, error) {
	var s search.Stats
	var v uint64
	var err error
	if v, b, err = getUint(b); err != nil {
		return s, b, err
	}
	s.TermsLooked = int(v)
	if v, b, err = getUint(b); err != nil {
		return s, b, err
	}
	s.ListsFetched = int(v)
	if s.PostingsDecoded, b, err = getUint(b); err != nil {
		return s, b, err
	}
	if s.IndexBytesRead, b, err = getUint(b); err != nil {
		return s, b, err
	}
	if v, b, err = getUint(b); err != nil {
		return s, b, err
	}
	s.CandidateDocs = int(v)
	return s, b, nil
}

// expectEmpty returns an error when a payload has trailing bytes.
func expectEmpty(b []byte, t MsgType) error {
	if len(b) != 0 {
		return fmt.Errorf("protocol: %v has %d trailing bytes", t, len(b))
	}
	return nil
}
