// Package protocol defines the binary wire protocol spoken between
// receptionists and librarians. Frames are length-prefixed so a session can
// run over any stream transport (TCP, an in-process pipe, or the simulated
// links in package simnet).
//
// Frame layout (little endian):
//
//	length u32 (payload bytes, excluding the 5-byte header)
//	type   u8
//	payload
//
// Message payloads use a compact hand-rolled encoding: vbyte integers,
// length-prefixed strings, IEEE-754 float64 bits. Every message reports its
// encoded size back to the caller so the experiments can account for traffic
// byte-for-byte.
package protocol

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"teraphim/internal/codec"
	"teraphim/internal/search"
)

// MaxFrameSize bounds a frame payload; larger frames are rejected as
// corrupt. Generous enough for a full vocabulary exchange.
const MaxFrameSize = 64 << 20

// MsgType identifies the message in a frame.
type MsgType uint8

// Message types.
const (
	TypeHello MsgType = iota + 1
	TypeHelloReply
	TypeVocabRequest
	TypeVocabReply
	TypeRankQuery
	TypeRankReply
	TypeScoreDocs
	TypeFetchDocs
	TypeFetchReply
	TypeError
	TypeModelRequest
	TypeModelReply
	TypeBooleanQuery
	TypeBooleanReply
	TypeIndexRequest
	TypeIndexReply
)

func (t MsgType) String() string {
	switch t {
	case TypeHello:
		return "Hello"
	case TypeHelloReply:
		return "HelloReply"
	case TypeVocabRequest:
		return "VocabRequest"
	case TypeVocabReply:
		return "VocabReply"
	case TypeRankQuery:
		return "RankQuery"
	case TypeRankReply:
		return "RankReply"
	case TypeScoreDocs:
		return "ScoreDocs"
	case TypeFetchDocs:
		return "FetchDocs"
	case TypeFetchReply:
		return "FetchReply"
	case TypeError:
		return "Error"
	case TypeModelRequest:
		return "ModelRequest"
	case TypeModelReply:
		return "ModelReply"
	case TypeBooleanQuery:
		return "BooleanQuery"
	case TypeBooleanReply:
		return "BooleanReply"
	case TypeIndexRequest:
		return "IndexRequest"
	case TypeIndexReply:
		return "IndexReply"
	default:
		return fmt.Sprintf("MsgType(%d)", uint8(t))
	}
}

// Message is any protocol message.
type Message interface {
	Type() MsgType
	encode(b []byte) []byte
	decode(b []byte) error
}

// ErrShortPayload is returned when a payload ends before its message does.
var ErrShortPayload = errors.New("protocol: truncated payload")

// Hello requests librarian identification and collection statistics.
type Hello struct{}

// HelloReply describes a librarian's collection.
type HelloReply struct {
	Name       string
	NumDocs    uint32
	NumTerms   uint32
	IndexBytes uint64
	VocabBytes uint64
	StoreBytes uint64
}

// TermStat is one vocabulary entry: a term and its document frequency.
type TermStat struct {
	Term string
	FT   uint32
}

// VocabRequest asks for the librarian's full vocabulary (the CV
// receptionist's preprocessing step).
type VocabRequest struct{}

// VocabReply carries the vocabulary, sorted by term.
type VocabReply struct {
	Terms []TermStat
}

// RankQuery asks a librarian for its top-K ranking. Nil Weights means the
// librarian must use its own local statistics (CN); non-nil Weights carry
// the receptionist's global w_{q,t} values (CV).
type RankQuery struct {
	Query   string
	K       uint32
	Weights map[string]float64
}

// ScoredDoc is one (local document id, similarity) pair.
type ScoredDoc struct {
	Doc   uint32
	Score float64
}

// RankReply returns a ranking (or the scores of nominated documents) along
// with the evaluation statistics the cost model consumes.
type RankReply struct {
	Results []ScoredDoc
	Stats   search.Stats
}

// ScoreDocs asks for exact similarities of the nominated local documents
// (the CI librarian fast path). Weights follow RankQuery conventions.
type ScoreDocs struct {
	Query   string
	Docs    []uint32
	Weights map[string]float64
}

// FetchDocs requests document texts. Compressed selects wire format: true
// ships the stored compressed blobs (decompressed receptionist-side), false
// ships plain text.
type FetchDocs struct {
	Docs       []uint32
	Compressed bool
}

// DocBlob is one returned document.
type DocBlob struct {
	Doc        uint32
	Title      string
	Data       []byte // plain text or compressed blob per FetchDocs.Compressed
	Compressed bool
}

// FetchReply returns requested documents.
type FetchReply struct {
	Docs []DocBlob
}

// ErrorReply reports a librarian-side failure.
type ErrorReply struct {
	Message string
}

// ModelRequest asks for the librarian's document-compression model so the
// receptionist can expand compressed document transfers locally (a one-time
// setup cost that Table 4's compressed-transfer mode amortises).
type ModelRequest struct{}

// ModelReply carries the serialised text-compression model.
type ModelReply struct {
	Model []byte
}

// BooleanQuery asks a librarian to evaluate a Boolean expression against
// its subcollection. Distributed Boolean evaluation needs no global
// information: the collection-wide answer is the union of the
// subcollection answers (§1 of the paper).
type BooleanQuery struct {
	Expr string
}

// BooleanReply returns the matching local document ids, sorted ascending.
type BooleanReply struct {
	Docs  []uint32
	Stats search.Stats
}

// IndexRequest asks a librarian for its complete inverted index — the
// transfer behind the Central Index methodology's offline preprocessing,
// in which "the receptionist has full access to the indexes of the
// subcollections".
type IndexRequest struct{}

// IndexReply carries the index in its on-disk serialised form
// (index.WriteTo); the receptionist decodes it with index.ReadFrom.
type IndexReply struct {
	Data []byte
}

// RemoteError is the receptionist-side error produced when a librarian
// answers with an ErrorReply. A RemoteError arrives on an intact stream (the
// librarian framed a complete reply), so the connection stays usable.
type RemoteError struct {
	Message string
	// Retryable marks a transient librarian-side condition worth
	// re-attempting, as opposed to a semantic failure (a malformed query,
	// an unknown document) that would fail identically on every attempt.
	// Librarian-reported errors default to non-retryable.
	Retryable bool
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("protocol: remote error: %s", e.Message)
}

// WriteMessage frames and writes msg, returning the total bytes written
// (header included).
func WriteMessage(w io.Writer, msg Message) (int, error) {
	payload := msg.encode(nil)
	if len(payload) > MaxFrameSize {
		return 0, fmt.Errorf("protocol: %v payload of %d bytes exceeds limit", msg.Type(), len(payload))
	}
	hdr := make([]byte, 5, 5+len(payload))
	binary.LittleEndian.PutUint32(hdr, uint32(len(payload)))
	hdr[4] = byte(msg.Type())
	n, err := w.Write(append(hdr, payload...))
	if err != nil {
		return n, fmt.Errorf("protocol: write %v: %w", msg.Type(), err)
	}
	return n, nil
}

// ReadMessage reads one frame and decodes it, returning the message and the
// total bytes read.
func ReadMessage(r io.Reader) (Message, int, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, 0, fmt.Errorf("protocol: read header: %w", err)
	}
	length := binary.LittleEndian.Uint32(hdr[:4])
	if length > MaxFrameSize {
		return nil, 5, fmt.Errorf("protocol: frame of %d bytes exceeds limit", length)
	}
	msgType := MsgType(hdr[4])
	payload := make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, 5, fmt.Errorf("protocol: read %v payload: %w", msgType, err)
	}
	msg, err := newMessage(msgType)
	if err != nil {
		return nil, 5 + int(length), err
	}
	if err := msg.decode(payload); err != nil {
		return nil, 5 + int(length), fmt.Errorf("protocol: decode %v: %w", msgType, err)
	}
	return msg, 5 + int(length), nil
}

func newMessage(t MsgType) (Message, error) {
	switch t {
	case TypeHello:
		return &Hello{}, nil
	case TypeHelloReply:
		return &HelloReply{}, nil
	case TypeVocabRequest:
		return &VocabRequest{}, nil
	case TypeVocabReply:
		return &VocabReply{}, nil
	case TypeRankQuery:
		return &RankQuery{}, nil
	case TypeRankReply:
		return &RankReply{}, nil
	case TypeScoreDocs:
		return &ScoreDocs{}, nil
	case TypeFetchDocs:
		return &FetchDocs{}, nil
	case TypeFetchReply:
		return &FetchReply{}, nil
	case TypeError:
		return &ErrorReply{}, nil
	case TypeModelRequest:
		return &ModelRequest{}, nil
	case TypeModelReply:
		return &ModelReply{}, nil
	case TypeBooleanQuery:
		return &BooleanQuery{}, nil
	case TypeBooleanReply:
		return &BooleanReply{}, nil
	case TypeIndexRequest:
		return &IndexRequest{}, nil
	case TypeIndexReply:
		return &IndexReply{}, nil
	default:
		return nil, fmt.Errorf("protocol: unknown message type %d", t)
	}
}

// --- primitive encoders -------------------------------------------------

func putUint(b []byte, v uint64) []byte { return codec.PutVByte(b, v) }

func getUint(b []byte) (uint64, []byte, error) {
	v, n, err := codec.VByte(b)
	if err != nil {
		return 0, b, ErrShortPayload
	}
	return v, b[n:], nil
}

func putString(b []byte, s string) []byte {
	b = putUint(b, uint64(len(s)))
	return append(b, s...)
}

func getString(b []byte) (string, []byte, error) {
	n, b, err := getUint(b)
	if err != nil {
		return "", b, err
	}
	if uint64(len(b)) < n {
		return "", b, ErrShortPayload
	}
	return string(b[:n]), b[n:], nil
}

func putBytes(b []byte, p []byte) []byte {
	b = putUint(b, uint64(len(p)))
	return append(b, p...)
}

func getBytes(b []byte) ([]byte, []byte, error) {
	n, b, err := getUint(b)
	if err != nil {
		return nil, b, err
	}
	if uint64(len(b)) < n {
		return nil, b, ErrShortPayload
	}
	out := make([]byte, n)
	copy(out, b[:n])
	return out, b[n:], nil
}

func putFloat(b []byte, f float64) []byte {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(f))
	return append(b, buf[:]...)
}

func getFloat(b []byte) (float64, []byte, error) {
	if len(b) < 8 {
		return 0, b, ErrShortPayload
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b)), b[8:], nil
}

func putWeights(b []byte, w map[string]float64) []byte {
	if w == nil {
		return putUint(b, 0)
	}
	// Length+1 so nil (use local stats) and empty (no weighted terms) are
	// distinguishable on the wire.
	b = putUint(b, uint64(len(w))+1)
	for term, wt := range w {
		b = putString(b, term)
		b = putFloat(b, wt)
	}
	return b
}

func getWeights(b []byte) (map[string]float64, []byte, error) {
	n, b, err := getUint(b)
	if err != nil {
		return nil, b, err
	}
	if n == 0 {
		return nil, b, nil
	}
	n--
	// Bound the map size hint by what the payload could hold (each entry
	// is at least 9 bytes): corrupt counts must not drive allocation.
	hint := n
	if max := uint64(len(b)/9) + 1; hint > max {
		hint = max
	}
	w := make(map[string]float64, hint)
	for i := uint64(0); i < n; i++ {
		var term string
		term, b, err = getString(b)
		if err != nil {
			return nil, b, err
		}
		var wt float64
		wt, b, err = getFloat(b)
		if err != nil {
			return nil, b, err
		}
		w[term] = wt
	}
	return w, b, nil
}

func putStats(b []byte, s search.Stats) []byte {
	b = putUint(b, uint64(s.TermsLooked))
	b = putUint(b, uint64(s.ListsFetched))
	b = putUint(b, s.PostingsDecoded)
	b = putUint(b, s.IndexBytesRead)
	b = putUint(b, uint64(s.CandidateDocs))
	return b
}

func getStats(b []byte) (search.Stats, []byte, error) {
	var s search.Stats
	vals := make([]uint64, 5)
	var err error
	for i := range vals {
		if vals[i], b, err = getUint(b); err != nil {
			return s, b, err
		}
	}
	s.TermsLooked = int(vals[0])
	s.ListsFetched = int(vals[1])
	s.PostingsDecoded = vals[2]
	s.IndexBytesRead = vals[3]
	s.CandidateDocs = int(vals[4])
	return s, b, nil
}

// expectEmpty returns an error when a payload has trailing bytes.
func expectEmpty(b []byte, t MsgType) error {
	if len(b) != 0 {
		return fmt.Errorf("protocol: %v has %d trailing bytes", t, len(b))
	}
	return nil
}
