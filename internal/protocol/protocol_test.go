package protocol

import (
	"bytes"
	"io"
	"math/rand"
	"reflect"
	"strconv"
	"testing"
	"testing/quick"

	"teraphim/internal/search"
)

func roundTrip(t *testing.T, msg Message) Message {
	t.Helper()
	var buf bytes.Buffer
	wrote, err := WriteMessage(&buf, msg)
	if err != nil {
		t.Fatalf("write %v: %v", msg.Type(), err)
	}
	if wrote != buf.Len() {
		t.Fatalf("WriteMessage reported %d bytes, wrote %d", wrote, buf.Len())
	}
	got, read, err := ReadMessage(&buf)
	if err != nil {
		t.Fatalf("read %v: %v", msg.Type(), err)
	}
	if read != wrote {
		t.Fatalf("ReadMessage reported %d bytes, want %d", read, wrote)
	}
	if got.Type() != msg.Type() {
		t.Fatalf("type changed: %v -> %v", msg.Type(), got.Type())
	}
	return got
}

func TestAllMessagesRoundTrip(t *testing.T) {
	stats := search.Stats{TermsLooked: 3, ListsFetched: 2, PostingsDecoded: 456, IndexBytesRead: 789, CandidateDocs: 55}
	msgs := []Message{
		&Hello{},
		&HelloReply{Name: "AP", NumDocs: 2600, NumTerms: 45000, IndexBytes: 1 << 20, VocabBytes: 9999, StoreBytes: 1 << 22},
		&VocabRequest{},
		&VocabReply{Terms: []TermStat{{Term: "aardvark", FT: 3}, {Term: "aardwolf", FT: 1}, {Term: "zebra", FT: 7}}},
		&RankQuery{Query: "distributed retrieval", K: 20},
		&RankQuery{Query: "q", K: 1000, Weights: map[string]float64{"a": 1.5, "b": 0.25}},
		&RankQuery{Query: "q", K: 5, Weights: map[string]float64{}},
		&RankReply{Results: []ScoredDoc{{Doc: 5, Score: 0.77}, {Doc: 9, Score: 0.11}}, Stats: stats},
		&RankReply{},
		&ScoreDocs{Query: "q", Docs: []uint32{1, 5, 900}, Weights: map[string]float64{"x": 2}},
		&FetchDocs{Docs: []uint32{0, 3, 77}, Compressed: true},
		&FetchDocs{Docs: nil, Compressed: false},
		&FetchReply{Docs: []DocBlob{
			{Doc: 3, Title: "AP-3", Data: []byte("hello world"), Compressed: false},
			{Doc: 77, Title: "AP-77", Data: []byte{0x1, 0x2, 0xff}, Compressed: true},
		}},
		&ErrorReply{Message: "no such document"},
	}
	for _, msg := range msgs {
		got := roundTrip(t, msg)
		want := normalize(msg)
		gotN := normalize(got)
		if !reflect.DeepEqual(gotN, want) {
			t.Errorf("%v round trip:\ngot  %#v\nwant %#v", msg.Type(), gotN, want)
		}
	}
}

// normalize maps nil and empty slices to a canonical form for comparison.
func normalize(m Message) Message {
	switch v := m.(type) {
	case *RankReply:
		if len(v.Results) == 0 {
			v.Results = nil
		}
	case *FetchDocs:
		if len(v.Docs) == 0 {
			v.Docs = nil
		}
	case *FetchReply:
		if len(v.Docs) == 0 {
			v.Docs = nil
		}
	}
	return m
}

func TestNilVsEmptyWeights(t *testing.T) {
	// nil weights (CN: use local stats) and empty weights (CV: nothing
	// weighted) must survive the wire distinctly.
	got := roundTrip(t, &RankQuery{Query: "q", K: 1, Weights: nil})
	if rq, ok := got.(*RankQuery); !ok || rq.Weights != nil {
		t.Fatalf("nil weights arrived as %#v", got)
	}
	got = roundTrip(t, &RankQuery{Query: "q", K: 1, Weights: map[string]float64{}})
	if rq, ok := got.(*RankQuery); !ok || rq.Weights == nil || len(rq.Weights) != 0 {
		t.Fatalf("empty weights arrived as %#v", got)
	}
}

func TestVocabFrontCoding(t *testing.T) {
	// A sorted vocabulary with heavy shared prefixes must encode smaller
	// than naive strings.
	var terms []TermStat
	for i := 0; i < 1000; i++ {
		terms = append(terms, TermStat{Term: "prefixsharedacross" + strconv.Itoa(i), FT: uint32(i + 1)})
	}
	msg := &VocabReply{Terms: terms}
	payload := msg.encode(nil)
	naive := 0
	for _, ts := range terms {
		naive += len(ts.Term) + 4
	}
	if len(payload) >= naive {
		t.Fatalf("front-coded vocab %d bytes >= naive %d", len(payload), naive)
	}
	var back VocabReply
	if err := back.decode(payload); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Terms, terms) {
		t.Fatal("front-coded vocab mismatch after decode")
	}
}

func TestCorruptFrames(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteMessage(&buf, &ErrorReply{Message: "x"}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	if _, _, err := ReadMessage(bytes.NewReader(raw[:3])); err == nil {
		t.Fatal("truncated header: want error")
	}
	if _, _, err := ReadMessage(bytes.NewReader(raw[:len(raw)-1])); err == nil {
		t.Fatal("truncated payload: want error")
	}
	// Unknown type.
	bad := append([]byte(nil), raw...)
	bad[4] = 0xEE
	if _, _, err := ReadMessage(bytes.NewReader(bad)); err == nil {
		t.Fatal("unknown type: want error")
	}
	// Oversize frame length.
	big := append([]byte(nil), raw...)
	big[0], big[1], big[2], big[3] = 0xff, 0xff, 0xff, 0x7f
	if _, _, err := ReadMessage(bytes.NewReader(big)); err == nil {
		t.Fatal("oversize frame: want error")
	}
}

func TestTrailingBytesRejected(t *testing.T) {
	// One trailing varint after the weights is the optional Evaluator field;
	// anything beyond it is still garbage and must be rejected.
	msg := &RankQuery{Query: "q", K: 1}
	payload := msg.encode(nil)
	payload = append(payload, 0xAB, 0xAB)
	var back RankQuery
	if err := back.decode(payload); err == nil {
		t.Fatal("trailing bytes: want error")
	}
}

func TestRankQueryEvaluatorCompat(t *testing.T) {
	// An exact-evaluator query must encode byte-identically to the
	// pre-evaluator frame format, so old librarians keep understanding new
	// receptionists and vice versa.
	plain := (&RankQuery{Query: "q", K: 7, Weights: map[string]float64{"a": 1}}).encode(nil)
	tagged := (&RankQuery{Query: "q", K: 7, Weights: map[string]float64{"a": 1}, Evaluator: 0}).encode(nil)
	if !bytes.Equal(plain, tagged) {
		t.Fatalf("exact-evaluator frame differs from legacy frame:\n%x\n%x", plain, tagged)
	}
	// A legacy frame (no trailing field) decodes with Evaluator 0.
	var back RankQuery
	back.Evaluator = 9 // ensure decode resets stale state
	if err := back.decode(plain); err != nil {
		t.Fatal(err)
	}
	if back.Evaluator != 0 {
		t.Fatalf("legacy frame decoded Evaluator %d, want 0", back.Evaluator)
	}
	// Non-zero evaluators round-trip through the trailing field.
	for _, ev := range []uint8{1, 2, 200} {
		got := roundTrip(t, &RankQuery{Query: "q", K: 1, Evaluator: ev})
		rq, ok := got.(*RankQuery)
		if !ok || rq.Evaluator != ev {
			t.Fatalf("Evaluator %d arrived as %#v", ev, got)
		}
	}
}

func TestSequentialMessagesOnStream(t *testing.T) {
	// Several frames back to back on one stream, as in a real session.
	var buf bytes.Buffer
	sent := []Message{
		&Hello{},
		&RankQuery{Query: "alpha beta", K: 20},
		&FetchDocs{Docs: []uint32{1, 2, 3}},
	}
	for _, m := range sent {
		if _, err := WriteMessage(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range sent {
		got, _, err := ReadMessage(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Type() != want.Type() {
			t.Fatalf("got %v, want %v", got.Type(), want.Type())
		}
	}
	if _, _, err := ReadMessage(&buf); err == nil {
		t.Fatal("empty stream: want error")
	}
}

func TestQuickScoreDocsDeltas(t *testing.T) {
	f := func(raw []uint32) bool {
		// Doc lists are sorted by contract.
		docs := append([]uint32(nil), raw...)
		for i := 1; i < len(docs); i++ {
			if docs[i] < docs[i-1] {
				docs[i] = docs[i-1]
			}
		}
		msg := &ScoreDocs{Query: "q", Docs: docs}
		payload := msg.encode(nil)
		var back ScoreDocs
		if err := back.decode(payload); err != nil {
			return false
		}
		if len(docs) == 0 {
			return len(back.Docs) == 0
		}
		return reflect.DeepEqual(back.Docs, docs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRemoteError(t *testing.T) {
	err := &RemoteError{Message: "boom"}
	if err.Error() == "" {
		t.Fatal("empty error string")
	}
}

func TestWriteToFailingWriter(t *testing.T) {
	w := failingWriter{}
	if _, err := WriteMessage(w, &Hello{}); err == nil {
		t.Fatal("failing writer: want error")
	}
}

type failingWriter struct{}

func (failingWriter) Write([]byte) (int, error) { return 0, io.ErrClosedPipe }

func BenchmarkRankReplyRoundTrip(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	results := make([]ScoredDoc, 1000)
	for i := range results {
		results[i] = ScoredDoc{Doc: uint32(i * 3), Score: rng.Float64()}
	}
	msg := &RankReply{Results: results}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if _, err := WriteMessage(&buf, msg); err != nil {
			b.Fatal(err)
		}
		if _, _, err := ReadMessage(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

// TestDecodeRandomBytesNeverPanics throws random payloads at every message
// decoder: corrupt input must produce errors, never panics or hangs.
func TestDecodeRandomBytesNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	types := []Message{
		&Hello{}, &HelloReply{}, &VocabRequest{}, &VocabReply{},
		&RankQuery{}, &RankReply{}, &ScoreDocs{}, &FetchDocs{},
		&FetchReply{}, &ErrorReply{}, &ModelRequest{}, &ModelReply{},
		&BooleanQuery{}, &BooleanReply{}, &IndexRequest{}, &IndexReply{},
	}
	for trial := 0; trial < 2000; trial++ {
		payload := make([]byte, rng.Intn(64))
		rng.Read(payload)
		for _, msg := range types {
			fresh, err := newMessage(msg.Type())
			if err != nil {
				t.Fatal(err)
			}
			// Must not panic; error or success are both acceptable.
			_ = fresh.decode(payload)
		}
	}
}

// TestFrameStreamRandomBytes verifies the framing layer itself rejects
// random streams cleanly.
func TestFrameStreamRandomBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 500; trial++ {
		raw := make([]byte, rng.Intn(40))
		rng.Read(raw)
		_, _, _ = ReadMessage(bytes.NewReader(raw))
	}
}

// TestAllNewMessagesRoundTripEmpty ensures every registered type can encode
// its zero value and decode it back.
func TestAllNewMessagesRoundTripEmpty(t *testing.T) {
	for mt := TypeHello; mt <= TypeIndexReply; mt++ {
		msg, err := newMessage(mt)
		if err != nil {
			t.Fatalf("type %v unregistered", mt)
		}
		var buf bytes.Buffer
		if _, err := WriteMessage(&buf, msg); err != nil {
			t.Fatalf("%v: write zero value: %v", mt, err)
		}
		back, _, err := ReadMessage(&buf)
		if err != nil {
			t.Fatalf("%v: read zero value: %v", mt, err)
		}
		if back.Type() != mt {
			t.Fatalf("%v round-tripped to %v", mt, back.Type())
		}
	}
}
