package protocol

import (
	"bytes"
	"math"
	"testing"
)

// taggedFrame encodes msg in the pipelined framing with the given tag.
func taggedFrame(tb testing.TB, tag uint32, msg Message) []byte {
	b, err := AppendFrame(nil, tag, true, msg)
	if err != nil {
		tb.Fatalf("%v: %v", msg.Type(), err)
	}
	return b
}

// batchSeedMessages is a pair of well-formed batch frames covering both
// directions of the batched wire.
func batchSeedMessages() []Message {
	return []Message{
		&BatchQuery{Items: []Message{
			&RankQuery{Query: "alpha federal", K: 10},
			&RankQuery{Query: "wallstreet", K: 5, Weights: map[string]float64{"w": 1.5}},
			&ScoreDocs{Query: "alpha", Docs: []uint32{1, 9, 200}},
		}},
		&BatchReply{Items: []Message{
			&RankReply{Results: []ScoredDoc{{Doc: 3, Score: 0.5}}},
			&ErrorReply{Message: "no such term"},
			&RankReply{},
		}},
	}
}

// FuzzReadTaggedMessage throws arbitrary bytes at the pipelined framing
// (length | type | tag | payload). Same invariants as FuzzReadMessage, plus
// the tag must survive a re-encode round trip bit-exactly — the
// receptionist demultiplexes replies by tag, so a framing layer that
// corrupts tags silently misroutes answers between concurrent queries.
func FuzzReadTaggedMessage(f *testing.F) {
	var tag uint32 = 1
	for _, msg := range append(fuzzSeedMessages(), batchSeedMessages()...) {
		f.Add(taggedFrame(f, tag, msg))
		tag = tag*2718281829 + 7 // spread seed tags over the u32 range
	}
	// Adversarial frames: oversize length, unknown type, truncated tag,
	// truncated payload, batch item count larger than the payload holds,
	// non-batchable item type inside a batch.
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x01, 0x01, 0x00, 0x00, 0x00})
	f.Add([]byte{0x00, 0x00, 0x00, 0x00, 0x63, 0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{0x00, 0x00, 0x00, 0x00, 0x01, 0x01})
	f.Add([]byte{0x05, 0x00, 0x00, 0x00, 0x06, 0x00, 0x00, 0x00, 0x00, 0x01})
	f.Add([]byte{0x01, 0x00, 0x00, 0x00, 0x10, 0x00, 0x00, 0x00, 0x00, 0xff})
	f.Add([]byte{0x07, 0x00, 0x00, 0x00, 0x10, 0x00, 0x00, 0x00, 0x00, 0x01, 0x01, 0x01, 0x00, 0x00, 0x00, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		rd := &Reader{R: bytes.NewReader(data), Tagged: true}
		msg, tag, n, err := rd.Read()
		if n > len(data) {
			t.Fatalf("Read reported %d bytes from a %d-byte input", n, len(data))
		}
		if err != nil {
			if msg != nil {
				t.Fatalf("Read returned both a message and error %v", err)
			}
			return
		}
		frame, err := AppendFrame(nil, tag, true, msg)
		if err != nil {
			t.Fatalf("decoded %v does not re-encode: %v", msg.Type(), err)
		}
		rd2 := &Reader{R: bytes.NewReader(frame), Tagged: true}
		back, tag2, _, err := rd2.Read()
		if err != nil {
			t.Fatalf("re-encoded %v does not decode: %v", msg.Type(), err)
		}
		if back.Type() != msg.Type() {
			t.Fatalf("re-encode changed type %v -> %v", msg.Type(), back.Type())
		}
		if tag2 != tag {
			t.Fatalf("re-encode changed tag %d -> %d", tag, tag2)
		}
	})
}

// FuzzBatchRoundTrip builds batch frames from fuzzed primitives and checks
// each survives encode → tagged frame → decode exactly, and that the Sizes
// bookkeeping the receptionist bills per-query bytes from is consistent
// with the payload on both ends.
func FuzzBatchRoundTrip(f *testing.F) {
	f.Add("alpha", uint32(20), 1.5, uint32(3))
	f.Add("", uint32(0), 0.0, uint32(0))
	f.Add("zebra aardvark", uint32(1<<31), -7.25e300, uint32(64))
	f.Fuzz(func(t *testing.T, s string, u32 uint32, fl float64, count uint32) {
		if math.IsNaN(fl) {
			fl = 0
		}
		n := int(count % 65)
		bq := &BatchQuery{}
		br := &BatchReply{}
		for i := 0; i < n; i++ {
			if i%2 == 0 {
				bq.Items = append(bq.Items, &RankQuery{Query: s, K: u32 + uint32(i), Weights: map[string]float64{s: fl}})
				br.Items = append(br.Items, &RankReply{Results: []ScoredDoc{{Doc: u32, Score: fl}}})
			} else {
				bq.Items = append(bq.Items, &ScoreDocs{Query: s, Docs: []uint32{u32, u32 + 1}})
				br.Items = append(br.Items, &ErrorReply{Message: s})
			}
		}
		for _, msg := range []Message{bq, br} {
			frame, err := AppendFrame(nil, u32, true, msg)
			if err != nil {
				t.Fatalf("%v: encode: %v", msg.Type(), err)
			}
			rd := &Reader{R: bytes.NewReader(frame), Tagged: true}
			back, tag, read, err := rd.Read()
			if err != nil {
				t.Fatalf("%v: decode: %v", msg.Type(), err)
			}
			if read != len(frame) {
				t.Fatalf("%v: wrote %d bytes, read %d", msg.Type(), len(frame), read)
			}
			if tag != u32 {
				t.Fatalf("%v: tag %d -> %d", msg.Type(), u32, tag)
			}
			items, sizes := batchParts(t, msg)
			backItems, backSizes := batchParts(t, back)
			if len(backItems) != len(items) || len(backSizes) != len(sizes) {
				t.Fatalf("%v: %d items/%d sizes -> %d items/%d sizes",
					msg.Type(), len(items), len(sizes), len(backItems), len(backSizes))
			}
			for i := range items {
				if !equalMessage(items[i], backItems[i]) {
					t.Fatalf("%v item %d changed:\nsent %#v\ngot  %#v", msg.Type(), i, items[i], backItems[i])
				}
				if sizes[i] != backSizes[i] {
					t.Fatalf("%v item %d: encode billed %d bytes, decode %d", msg.Type(), i, sizes[i], backSizes[i])
				}
			}
		}
	})
}

func batchParts(t *testing.T, msg Message) ([]Message, []int) {
	t.Helper()
	switch m := msg.(type) {
	case *BatchQuery:
		return m.Items, m.Sizes
	case *BatchReply:
		return m.Items, m.Sizes
	}
	t.Fatalf("not a batch message: %v", msg.Type())
	return nil, nil
}
