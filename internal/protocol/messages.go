package protocol

// capHint bounds a wire-supplied element count by what the remaining
// payload could possibly hold (perItem = minimum encoded bytes per
// element), so corrupt or malicious counts cannot trigger huge
// allocations before decoding fails.
func capHint(n uint64, remaining, perItem int) int {
	if perItem < 1 {
		perItem = 1
	}
	max := uint64(remaining/perItem) + 1
	if n > max {
		n = max
	}
	return int(n)
}

// Per-message Type/encode/decode implementations. Encoders append to b and
// return it; decoders must consume the payload exactly.

// Type implements Message.
func (*Hello) Type() MsgType { return TypeHello }

func (m *Hello) encode(b []byte) []byte {
	// A zero feature request encodes to the seed's empty payload so old
	// librarians (which reject trailing bytes) still accept it.
	if f := m.Features.Wire(); f != 0 {
		b = putUint(b, uint64(f))
	}
	return b
}

func (m *Hello) decode(b []byte) error {
	if len(b) == 0 {
		m.Features = 0
		return nil
	}
	f, b, err := getUint(b)
	if err != nil {
		return err
	}
	m.Features = Features(f).Wire()
	return expectEmpty(b, TypeHello)
}

// Type implements Message.
func (*HelloReply) Type() MsgType { return TypeHelloReply }

func (m *HelloReply) encode(b []byte) []byte {
	b = putString(b, m.Name)
	b = putUint(b, uint64(m.NumDocs))
	b = putUint(b, uint64(m.NumTerms))
	b = putUint(b, m.IndexBytes)
	b = putUint(b, m.VocabBytes)
	b = putUint(b, m.StoreBytes)
	// Granted features trail the seed fields and are encoded only when
	// non-zero, so an un-negotiated reply stays bit-identical to the seed.
	if f := m.Features.Wire(); f != 0 {
		b = putUint(b, uint64(f))
	}
	return b
}

func (m *HelloReply) decode(b []byte) error {
	var err error
	if m.Name, b, err = getString(b); err != nil {
		return err
	}
	var v uint64
	if v, b, err = getUint(b); err != nil {
		return err
	}
	m.NumDocs = uint32(v)
	if v, b, err = getUint(b); err != nil {
		return err
	}
	m.NumTerms = uint32(v)
	if m.IndexBytes, b, err = getUint(b); err != nil {
		return err
	}
	if m.VocabBytes, b, err = getUint(b); err != nil {
		return err
	}
	if m.StoreBytes, b, err = getUint(b); err != nil {
		return err
	}
	m.Features = 0
	if len(b) > 0 {
		var f uint64
		if f, b, err = getUint(b); err != nil {
			return err
		}
		m.Features = Features(f).Wire()
	}
	return expectEmpty(b, TypeHelloReply)
}

// Type implements Message.
func (*VocabRequest) Type() MsgType { return TypeVocabRequest }

func (*VocabRequest) encode(b []byte) []byte { return b }

func (*VocabRequest) decode(b []byte) error { return expectEmpty(b, TypeVocabRequest) }

// Type implements Message.
func (*VocabReply) Type() MsgType { return TypeVocabReply }

func (m *VocabReply) encode(b []byte) []byte {
	b = putUint(b, uint64(len(m.Terms)))
	// Front-code terms against their predecessor: vocabularies are sorted,
	// so shared prefixes dominate and the CV preprocessing transfer stays
	// close to the on-disk dictionary size.
	prev := ""
	for _, ts := range m.Terms {
		shared := sharedPrefixLen(prev, ts.Term)
		b = putUint(b, uint64(shared))
		b = putString(b, ts.Term[shared:])
		b = putUint(b, uint64(ts.FT))
		prev = ts.Term
	}
	return b
}

func (m *VocabReply) decode(b []byte) error {
	n, b, err := getUint(b)
	if err != nil {
		return err
	}
	if hint := capHint(n, len(b), 3); cap(m.Terms) < hint {
		m.Terms = make([]TermStat, 0, hint)
	} else {
		m.Terms = m.Terms[:0]
	}
	prev := ""
	for i := uint64(0); i < n; i++ {
		var shared uint64
		if shared, b, err = getUint(b); err != nil {
			return err
		}
		if shared > uint64(len(prev)) {
			return ErrShortPayload
		}
		var suffix string
		if suffix, b, err = getString(b); err != nil {
			return err
		}
		term := prev[:shared] + suffix
		var ft uint64
		if ft, b, err = getUint(b); err != nil {
			return err
		}
		m.Terms = append(m.Terms, TermStat{Term: term, FT: uint32(ft)})
		prev = term
	}
	return expectEmpty(b, TypeVocabReply)
}

func sharedPrefixLen(a, b string) int {
	n := 0
	for n < len(a) && n < len(b) && a[n] == b[n] {
		n++
	}
	return n
}

// Type implements Message.
func (*RankQuery) Type() MsgType { return TypeRankQuery }

func (m *RankQuery) encode(b []byte) []byte {
	b = putString(b, m.Query)
	b = putUint(b, uint64(m.K))
	b = putWeights(b, m.Weights)
	// Evaluator is an optional trailing field, same convention as
	// Hello/HelloReply Features: encoded only when non-zero, so an
	// exact-evaluator query is byte-identical to the seed frame and old
	// librarians never see the field.
	if m.Evaluator != 0 {
		b = putUint(b, uint64(m.Evaluator))
	}
	return b
}

func (m *RankQuery) decode(b []byte) error {
	var err error
	if m.Query, b, err = getString(b); err != nil {
		return err
	}
	var k uint64
	if k, b, err = getUint(b); err != nil {
		return err
	}
	m.K = uint32(k)
	if m.Weights, b, err = getWeights(b); err != nil {
		return err
	}
	m.Evaluator = 0
	if len(b) > 0 {
		var ev uint64
		if ev, b, err = getUint(b); err != nil {
			return err
		}
		m.Evaluator = uint8(ev)
	}
	return expectEmpty(b, TypeRankQuery)
}

// Type implements Message.
func (*RankReply) Type() MsgType { return TypeRankReply }

func (m *RankReply) encode(b []byte) []byte {
	b = putUint(b, uint64(len(m.Results)))
	for _, r := range m.Results {
		b = putUint(b, uint64(r.Doc))
		b = putFloat(b, r.Score)
	}
	b = putStats(b, m.Stats)
	return b
}

func (m *RankReply) decode(b []byte) error {
	n, b, err := getUint(b)
	if err != nil {
		return err
	}
	if hint := capHint(n, len(b), 9); cap(m.Results) < hint {
		m.Results = make([]ScoredDoc, 0, hint)
	} else {
		m.Results = m.Results[:0]
	}
	for i := uint64(0); i < n; i++ {
		var doc uint64
		if doc, b, err = getUint(b); err != nil {
			return err
		}
		var score float64
		if score, b, err = getFloat(b); err != nil {
			return err
		}
		m.Results = append(m.Results, ScoredDoc{Doc: uint32(doc), Score: score})
	}
	if m.Stats, b, err = getStats(b); err != nil {
		return err
	}
	return expectEmpty(b, TypeRankReply)
}

// Type implements Message.
func (*ScoreDocs) Type() MsgType { return TypeScoreDocs }

func (m *ScoreDocs) encode(b []byte) []byte {
	b = putString(b, m.Query)
	b = putUint(b, uint64(len(m.Docs)))
	// Delta-code doc ids; requests are sorted by the receptionist.
	prev := uint64(0)
	for _, d := range m.Docs {
		b = putUint(b, uint64(d)-prev)
		prev = uint64(d)
	}
	b = putWeights(b, m.Weights)
	return b
}

func (m *ScoreDocs) decode(b []byte) error {
	var err error
	if m.Query, b, err = getString(b); err != nil {
		return err
	}
	n, b, err := getUint(b)
	if err != nil {
		return err
	}
	if hint := capHint(n, len(b), 1); cap(m.Docs) < hint {
		m.Docs = make([]uint32, 0, hint)
	} else {
		m.Docs = m.Docs[:0]
	}
	prev := uint64(0)
	for i := uint64(0); i < n; i++ {
		var gap uint64
		if gap, b, err = getUint(b); err != nil {
			return err
		}
		prev += gap
		m.Docs = append(m.Docs, uint32(prev))
	}
	if m.Weights, b, err = getWeights(b); err != nil {
		return err
	}
	return expectEmpty(b, TypeScoreDocs)
}

// Type implements Message.
func (*FetchDocs) Type() MsgType { return TypeFetchDocs }

func (m *FetchDocs) encode(b []byte) []byte {
	b = putUint(b, uint64(len(m.Docs)))
	prev := uint64(0)
	for _, d := range m.Docs {
		b = putUint(b, uint64(d)-prev)
		prev = uint64(d)
	}
	if m.Compressed {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	return b
}

func (m *FetchDocs) decode(b []byte) error {
	n, b, err := getUint(b)
	if err != nil {
		return err
	}
	if hint := capHint(n, len(b), 1); cap(m.Docs) < hint {
		m.Docs = make([]uint32, 0, hint)
	} else {
		m.Docs = m.Docs[:0]
	}
	prev := uint64(0)
	for i := uint64(0); i < n; i++ {
		var gap uint64
		if gap, b, err = getUint(b); err != nil {
			return err
		}
		prev += gap
		m.Docs = append(m.Docs, uint32(prev))
	}
	if len(b) < 1 {
		return ErrShortPayload
	}
	m.Compressed = b[0] == 1
	return expectEmpty(b[1:], TypeFetchDocs)
}

// Type implements Message.
func (*FetchReply) Type() MsgType { return TypeFetchReply }

func (m *FetchReply) encode(b []byte) []byte {
	b = putUint(b, uint64(len(m.Docs)))
	for _, d := range m.Docs {
		b = putUint(b, uint64(d.Doc))
		b = putString(b, d.Title)
		b = putBytes(b, d.Data)
		if d.Compressed {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	}
	return b
}

func (m *FetchReply) decode(b []byte) error {
	n, b, err := getUint(b)
	if err != nil {
		return err
	}
	if hint := capHint(n, len(b), 4); cap(m.Docs) < hint {
		m.Docs = make([]DocBlob, 0, hint)
	} else {
		m.Docs = m.Docs[:0]
	}
	for i := uint64(0); i < n; i++ {
		var blob DocBlob
		var doc uint64
		if doc, b, err = getUint(b); err != nil {
			return err
		}
		blob.Doc = uint32(doc)
		if blob.Title, b, err = getString(b); err != nil {
			return err
		}
		if blob.Data, b, err = getBytes(b); err != nil {
			return err
		}
		if len(b) < 1 {
			return ErrShortPayload
		}
		blob.Compressed = b[0] == 1
		b = b[1:]
		m.Docs = append(m.Docs, blob)
	}
	return expectEmpty(b, TypeFetchReply)
}

// Type implements Message.
func (*ModelRequest) Type() MsgType { return TypeModelRequest }

func (*ModelRequest) encode(b []byte) []byte { return b }

func (*ModelRequest) decode(b []byte) error { return expectEmpty(b, TypeModelRequest) }

// Type implements Message.
func (*ModelReply) Type() MsgType { return TypeModelReply }

func (m *ModelReply) encode(b []byte) []byte { return putBytes(b, m.Model) }

func (m *ModelReply) decode(b []byte) error {
	var err error
	if m.Model, b, err = getBytes(b); err != nil {
		return err
	}
	return expectEmpty(b, TypeModelReply)
}

// Type implements Message.
func (*BooleanQuery) Type() MsgType { return TypeBooleanQuery }

func (m *BooleanQuery) encode(b []byte) []byte { return putString(b, m.Expr) }

func (m *BooleanQuery) decode(b []byte) error {
	var err error
	if m.Expr, b, err = getString(b); err != nil {
		return err
	}
	return expectEmpty(b, TypeBooleanQuery)
}

// Type implements Message.
func (*BooleanReply) Type() MsgType { return TypeBooleanReply }

func (m *BooleanReply) encode(b []byte) []byte {
	b = putUint(b, uint64(len(m.Docs)))
	prev := uint64(0)
	for _, d := range m.Docs {
		b = putUint(b, uint64(d)-prev)
		prev = uint64(d)
	}
	return putStats(b, m.Stats)
}

func (m *BooleanReply) decode(b []byte) error {
	n, b, err := getUint(b)
	if err != nil {
		return err
	}
	if hint := capHint(n, len(b), 1); cap(m.Docs) < hint {
		m.Docs = make([]uint32, 0, hint)
	} else {
		m.Docs = m.Docs[:0]
	}
	prev := uint64(0)
	for i := uint64(0); i < n; i++ {
		var gap uint64
		if gap, b, err = getUint(b); err != nil {
			return err
		}
		prev += gap
		m.Docs = append(m.Docs, uint32(prev))
	}
	if m.Stats, b, err = getStats(b); err != nil {
		return err
	}
	return expectEmpty(b, TypeBooleanReply)
}

// Type implements Message.
func (*IndexRequest) Type() MsgType { return TypeIndexRequest }

func (*IndexRequest) encode(b []byte) []byte { return b }

func (*IndexRequest) decode(b []byte) error { return expectEmpty(b, TypeIndexRequest) }

// Type implements Message.
func (*IndexReply) Type() MsgType { return TypeIndexReply }

func (m *IndexReply) encode(b []byte) []byte { return putBytes(b, m.Data) }

func (m *IndexReply) decode(b []byte) error {
	var err error
	if m.Data, b, err = getBytes(b); err != nil {
		return err
	}
	return expectEmpty(b, TypeIndexReply)
}

// Type implements Message.
func (*ErrorReply) Type() MsgType { return TypeError }

func (m *ErrorReply) encode(b []byte) []byte { return putString(b, m.Message) }

func (m *ErrorReply) decode(b []byte) error {
	var err error
	if m.Message, b, err = getString(b); err != nil {
		return err
	}
	return expectEmpty(b, TypeError)
}
