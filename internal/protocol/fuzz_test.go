package protocol

import (
	"bytes"
	"math"
	"testing"

	"teraphim/internal/search"
)

// fuzzSeedMessages is one representative value per message type, used to
// seed both fuzzers with frames that exercise every decoder.
func fuzzSeedMessages() []Message {
	stats := search.Stats{TermsLooked: 2, ListsFetched: 2, PostingsDecoded: 99, IndexBytesRead: 1024, CandidateDocs: 7}
	return []Message{
		&Hello{},
		&HelloReply{Name: "AP", NumDocs: 2600, NumTerms: 45000, IndexBytes: 1 << 20, VocabBytes: 9999, StoreBytes: 1 << 22},
		&VocabRequest{},
		&VocabReply{Terms: []TermStat{{Term: "aardvark", FT: 3}, {Term: "aardwolf", FT: 1}}},
		&RankQuery{Query: "distributed retrieval", K: 20, Weights: map[string]float64{"a": 1.5}},
		&RankReply{Results: []ScoredDoc{{Doc: 5, Score: 0.77}}, Stats: stats},
		&ScoreDocs{Query: "q", Docs: []uint32{1, 5, 900}, Weights: map[string]float64{"x": 2}},
		&FetchDocs{Docs: []uint32{0, 3, 77}, Compressed: true},
		&FetchReply{Docs: []DocBlob{{Doc: 3, Title: "AP-3", Data: []byte("hello"), Compressed: false}}},
		&ErrorReply{Message: "no such document"},
		&ModelRequest{},
		&ModelReply{Model: []byte{1, 2, 3}},
		&BooleanQuery{Expr: "alpha AND beta"},
		&BooleanReply{Docs: []uint32{2, 9}, Stats: stats},
		&IndexRequest{},
		&IndexReply{Data: []byte{0xDE, 0xAD}},
	}
}

// FuzzReadMessage throws arbitrary bytes at the framing layer. The
// invariants: never panic, never report reading more bytes than the input
// holds, never allocate unboundedly from a corrupt length or count (a
// decoded frame's memory is bounded by the payload the reader actually
// produced), and any frame that does decode must re-encode and decode again
// to the same message type (the decoder only accepts what the encoder can
// express).
func FuzzReadMessage(f *testing.F) {
	for _, msg := range fuzzSeedMessages() {
		var buf bytes.Buffer
		if _, err := WriteMessage(&buf, msg); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	// Adversarial frames: oversize length, unknown type, truncated payload,
	// count larger than payload.
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x01})
	f.Add([]byte{0x00, 0x00, 0x00, 0x00, 0x63})
	f.Add([]byte{0x05, 0x00, 0x00, 0x00, 0x06, 0x01})
	f.Add([]byte{0x01, 0x00, 0x00, 0x00, 0x04, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, n, err := ReadMessage(bytes.NewReader(data))
		if n > len(data) {
			t.Fatalf("ReadMessage reported %d bytes from a %d-byte input", n, len(data))
		}
		if err != nil {
			if msg != nil {
				t.Fatalf("ReadMessage returned both a message and error %v", err)
			}
			return
		}
		var buf bytes.Buffer
		if _, err := WriteMessage(&buf, msg); err != nil {
			t.Fatalf("decoded %v does not re-encode: %v", msg.Type(), err)
		}
		back, _, err := ReadMessage(&buf)
		if err != nil {
			t.Fatalf("re-encoded %v does not decode: %v", msg.Type(), err)
		}
		if back.Type() != msg.Type() {
			t.Fatalf("re-encode changed type %v -> %v", msg.Type(), back.Type())
		}
	})
}

// FuzzMessageRoundTrip builds one message of every type from fuzzed
// primitives and checks each survives encode → frame → decode exactly.
// Combined with FuzzReadMessage this covers both directions: arbitrary
// bytes never break the decoder, and arbitrary field values never break the
// encoder.
func FuzzMessageRoundTrip(f *testing.F) {
	f.Add("alpha", []byte{1, 2, 3}, uint32(20), uint64(1<<33), 1.5, true)
	f.Add("", []byte(nil), uint32(0), uint64(0), 0.0, false)
	f.Add("zebra aardvark", []byte{0xff, 0x00}, uint32(1<<31), uint64(1)<<63, -7.25e300, true)
	f.Fuzz(func(t *testing.T, s string, b []byte, u32 uint32, u64 uint64, fl float64, flag bool) {
		if math.IsNaN(fl) {
			fl = 0 // NaN != NaN would defeat the equality check below
		}
		stats := search.Stats{
			TermsLooked:     int(u32 % 1000),
			ListsFetched:    int(u64 % 1000),
			PostingsDecoded: u64,
			IndexBytesRead:  u64 / 3,
			CandidateDocs:   int(u32 % 500),
		}
		weights := map[string]float64{s: fl, "fixed": fl * 2}
		docs := []uint32{u32 % 1000, u32%1000 + 1, u32%1000 + 500}
		msgs := []Message{
			&Hello{},
			&HelloReply{Name: s, NumDocs: u32, NumTerms: u32 / 2, IndexBytes: u64, VocabBytes: u64 / 7, StoreBytes: u64 / 3},
			&VocabRequest{},
			&VocabReply{Terms: []TermStat{{Term: s, FT: u32}, {Term: s + "x", FT: u32 / 2}}},
			&RankQuery{Query: s, K: u32, Weights: weights, Evaluator: uint8(u64)},
			&RankQuery{Query: s, K: u32}, // nil weights (CN), exact evaluator
			&RankReply{Results: []ScoredDoc{{Doc: u32, Score: fl}, {Doc: u32 + 1, Score: fl / 2}}, Stats: stats},
			&ScoreDocs{Query: s, Docs: docs, Weights: weights},
			&FetchDocs{Docs: docs, Compressed: flag},
			&FetchReply{Docs: []DocBlob{{Doc: u32, Title: s, Data: b, Compressed: flag}}},
			&ErrorReply{Message: s},
			&ModelRequest{},
			&ModelReply{Model: b},
			&BooleanQuery{Expr: s},
			&BooleanReply{Docs: docs, Stats: stats},
			&IndexRequest{},
			&IndexReply{Data: b},
		}
		for _, msg := range msgs {
			var buf bytes.Buffer
			wrote, err := WriteMessage(&buf, msg)
			if err != nil {
				t.Fatalf("%v: write: %v", msg.Type(), err)
			}
			back, read, err := ReadMessage(&buf)
			if err != nil {
				t.Fatalf("%v: read back: %v", msg.Type(), err)
			}
			if read != wrote {
				t.Fatalf("%v: wrote %d bytes, read %d", msg.Type(), wrote, read)
			}
			if !equalMessage(msg, back) {
				t.Fatalf("%v: round trip changed message:\nsent %#v\ngot  %#v", msg.Type(), msg, back)
			}
		}
	})
}

// equalMessage compares two messages field-for-field, treating nil and
// empty slices as equal (the wire does not distinguish them except for
// weights, whose nil/empty distinction is load-bearing and checked
// exactly).
func equalMessage(a, b Message) bool {
	if a.Type() != b.Type() {
		return false
	}
	switch x := a.(type) {
	case *Hello, *VocabRequest, *ModelRequest, *IndexRequest:
		return true
	case *HelloReply:
		y := b.(*HelloReply)
		return *x == *y
	case *VocabReply:
		y := b.(*VocabReply)
		if len(x.Terms) != len(y.Terms) {
			return false
		}
		for i := range x.Terms {
			if x.Terms[i] != y.Terms[i] {
				return false
			}
		}
		return true
	case *RankQuery:
		y := b.(*RankQuery)
		return x.Query == y.Query && x.K == y.K && x.Evaluator == y.Evaluator && equalWeights(x.Weights, y.Weights)
	case *RankReply:
		y := b.(*RankReply)
		if x.Stats != y.Stats || len(x.Results) != len(y.Results) {
			return false
		}
		for i := range x.Results {
			if x.Results[i] != y.Results[i] {
				return false
			}
		}
		return true
	case *ScoreDocs:
		y := b.(*ScoreDocs)
		return x.Query == y.Query && equalU32s(x.Docs, y.Docs) && equalWeights(x.Weights, y.Weights)
	case *FetchDocs:
		y := b.(*FetchDocs)
		return x.Compressed == y.Compressed && equalU32s(x.Docs, y.Docs)
	case *FetchReply:
		y := b.(*FetchReply)
		if len(x.Docs) != len(y.Docs) {
			return false
		}
		for i := range x.Docs {
			if x.Docs[i].Doc != y.Docs[i].Doc || x.Docs[i].Title != y.Docs[i].Title ||
				x.Docs[i].Compressed != y.Docs[i].Compressed || !bytes.Equal(x.Docs[i].Data, y.Docs[i].Data) {
				return false
			}
		}
		return true
	case *ErrorReply:
		y := b.(*ErrorReply)
		return x.Message == y.Message
	case *ModelReply:
		y := b.(*ModelReply)
		return bytes.Equal(x.Model, y.Model)
	case *BooleanQuery:
		y := b.(*BooleanQuery)
		return x.Expr == y.Expr
	case *BooleanReply:
		y := b.(*BooleanReply)
		return x.Stats == y.Stats && equalU32s(x.Docs, y.Docs)
	case *IndexReply:
		y := b.(*IndexReply)
		return bytes.Equal(x.Data, y.Data)
	}
	return false
}

func equalWeights(a, b map[string]float64) bool {
	if (a == nil) != (b == nil) || len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if bv, ok := b[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

func equalU32s(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
