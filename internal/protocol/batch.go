package protocol

import "fmt"

// BatchQuery carries several rank-phase requests from different clients in
// one frame, amortizing a librarian round trip across them (the paper's
// cost model charges per contact, not per query). Items are restricted to
// the rank-phase request types — RankQuery and ScoreDocs — because those
// are the per-query fan-out messages worth coalescing; setup and fetch
// traffic stays unbatched.
//
// Sizes is populated during encode and decode with each item's encoded
// payload length, so the receptionist can attribute wire bytes to the
// individual queries in a batch without re-encoding.
type BatchQuery struct {
	Items []Message
	Sizes []int
}

// BatchReply answers a BatchQuery item-for-item: Items[i] is the reply to
// query i, either the matching success reply (RankReply) or an ErrorReply —
// failure stays per-query, one bad query never poisons its batch peers.
type BatchReply struct {
	Items []Message
	Sizes []int
}

// batchableQuery reports whether t may appear inside a BatchQuery.
func batchableQuery(t MsgType) bool {
	return t == TypeRankQuery || t == TypeScoreDocs
}

// batchableReply reports whether t may appear inside a BatchReply.
func batchableReply(t MsgType) bool {
	return t == TypeRankReply || t == TypeError
}

func encodeBatch(b []byte, items []Message, sizes *[]int) []byte {
	b = putUint(b, uint64(len(items)))
	*sizes = (*sizes)[:0]
	for _, it := range items {
		b = append(b, byte(it.Type()))
		// Reserve a fixed-width spot for the item length, encode in place,
		// then backfill: avoids encoding each item into a side buffer.
		lenAt := len(b)
		b = append(b, 0, 0, 0, 0)
		b = it.encode(b)
		sz := len(b) - lenAt - 4
		b[lenAt] = byte(sz)
		b[lenAt+1] = byte(sz >> 8)
		b[lenAt+2] = byte(sz >> 16)
		b[lenAt+3] = byte(sz >> 24)
		*sizes = append(*sizes, sz)
	}
	return b
}

func decodeBatch(b []byte, t MsgType, ok func(MsgType) bool) ([]Message, []int, error) {
	n, b, err := getUint(b)
	if err != nil {
		return nil, nil, err
	}
	hint := capHint(n, len(b), 5)
	items := make([]Message, 0, hint)
	sizes := make([]int, 0, hint)
	for i := uint64(0); i < n; i++ {
		if len(b) < 5 {
			return nil, nil, ErrShortPayload
		}
		it := MsgType(b[0])
		sz := uint32(b[1]) | uint32(b[2])<<8 | uint32(b[3])<<16 | uint32(b[4])<<24
		b = b[5:]
		if !ok(it) {
			return nil, nil, fmt.Errorf("protocol: %v item %d has type %v, not batchable", t, i, it)
		}
		if uint64(len(b)) < uint64(sz) {
			return nil, nil, ErrShortPayload
		}
		msg, err := newMessage(it)
		if err != nil {
			return nil, nil, err
		}
		if err := msg.decode(b[:sz]); err != nil {
			return nil, nil, fmt.Errorf("protocol: decode %v item %d (%v): %w", t, i, it, err)
		}
		items = append(items, msg)
		sizes = append(sizes, int(sz))
		b = b[sz:]
	}
	if err := expectEmpty(b, t); err != nil {
		return nil, nil, err
	}
	return items, sizes, nil
}

// Type implements Message.
func (*BatchQuery) Type() MsgType { return TypeBatchQuery }

func (m *BatchQuery) encode(b []byte) []byte { return encodeBatch(b, m.Items, &m.Sizes) }

func (m *BatchQuery) decode(b []byte) error {
	items, sizes, err := decodeBatch(b, TypeBatchQuery, batchableQuery)
	if err != nil {
		return err
	}
	m.Items, m.Sizes = items, sizes
	return nil
}

// Type implements Message.
func (*BatchReply) Type() MsgType { return TypeBatchReply }

func (m *BatchReply) encode(b []byte) []byte { return encodeBatch(b, m.Items, &m.Sizes) }

func (m *BatchReply) decode(b []byte) error {
	items, sizes, err := decodeBatch(b, TypeBatchReply, batchableReply)
	if err != nil {
		return err
	}
	m.Items, m.Sizes = items, sizes
	return nil
}
