package protocol

import "fmt"

// Features is the protocol feature bitmask negotiated on the Hello
// exchange. A client requests the extensions it understands in
// Hello.Features; the librarian answers HelloReply.Features with the
// intersection of the request and its own support — never more. A zero
// bitmask on either side selects the seed wire format, so fleets of mixed
// versions interoperate: an old librarian ignores the field it never
// decodes (the Hello payload stays empty when no features are requested)
// and an old receptionist never requests anything, keeping both directions
// bit-identical to the original framing.
type Features uint32

// Protocol extensions negotiable via the Hello feature bitmask.
const (
	// FeaturePipelining switches the connection to tagged framing after the
	// HelloReply: every subsequent frame carries a u32 exchange id, replies
	// may arrive out of order, and one connection carries many in-flight
	// exchanges. The Hello/HelloReply pair itself is always exchanged in the
	// seed framing — negotiation must be readable by peers that have never
	// heard of it.
	FeaturePipelining Features = 1 << 0
	// FeatureBatching advertises that the librarian accepts BatchQuery
	// frames (several rank-phase requests evaluated in one round trip).
	// Batching composes with, but does not require, pipelining.
	FeatureBatching Features = 1 << 1

	// FeatureNone is a configuration sentinel meaning "request nothing":
	// it forces the seed wire format when a zero Features value would
	// otherwise select a default set. It is masked off before the bitmask
	// goes on the wire.
	FeatureNone Features = 1 << 31
)

// SupportedFeatures is every extension this build of the librarian can
// grant. The granted set on a Hello exchange is requested ∩ supported.
const SupportedFeatures = FeaturePipelining | FeatureBatching

// wireFeatureMask strips configuration sentinels (FeatureNone) so they are
// never transmitted.
const wireFeatureMask = ^FeatureNone

// Wire returns the bitmask as it goes on the wire: configuration sentinels
// masked off.
func (f Features) Wire() Features { return f & wireFeatureMask }

// Has reports whether every bit of q is set in f.
func (f Features) Has(q Features) bool { return f&q == q }

func (f Features) String() string {
	if f == 0 {
		return "none"
	}
	s := ""
	add := func(name string) {
		if s != "" {
			s += "+"
		}
		s += name
	}
	if f.Has(FeaturePipelining) {
		add("pipelining")
	}
	if f.Has(FeatureBatching) {
		add("batching")
	}
	if rest := f &^ (FeaturePipelining | FeatureBatching | FeatureNone); rest != 0 {
		add(fmt.Sprintf("unknown(%#x)", uint32(rest)))
	}
	if f.Has(FeatureNone) {
		add("none-sentinel")
	}
	return s
}

// FeatureMismatchError reports a broken negotiation: the peer granted
// feature bits that were never requested. A correct librarian answers with
// a subset of the request (possibly empty — that is the orderly degrade to
// the seed framing); a superset means the two sides would disagree about
// the framing of every subsequent byte, so the connection must be abandoned
// rather than desync. The error is permanent for the peer pair — retrying
// the same handshake cannot fix a protocol disagreement.
type FeatureMismatchError struct {
	Requested Features
	Granted   Features
}

func (e *FeatureMismatchError) Error() string {
	return fmt.Sprintf("protocol: feature mismatch: requested %v, peer granted %v (unrequested bits %v)",
		e.Requested, e.Granted, e.Granted&^e.Requested)
}
