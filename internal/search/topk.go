package search

// TopK is a bounded top-k selector: a size-k min-heap ordered worst-first,
// so the root is always the weakest retained item and a stream of n
// candidates is reduced to the best k in O(n log k). It replaces the
// container/heap implementations previously duplicated between Engine.Rank
// and PrunedEngine.Rank; being generic over the item type, it never boxes
// items in interface values the way heap.Push/heap.Pop do.
//
// less must order a strictly worse item before a better one, including any
// tie-breaking (for Result, lessResult: lower score first, ties broken
// toward higher doc id being less-preferred).
type TopK[T any] struct {
	less func(a, b T) bool
	k    int
	h    []T
}

// NewTopK returns a selector retaining the best k items. backing, which may
// be nil, seeds the heap storage so pooled callers avoid reallocating it.
func NewTopK[T any](k int, less func(a, b T) bool, backing []T) TopK[T] {
	return TopK[T]{less: less, k: k, h: backing[:0]}
}

// Offer considers one candidate.
func (t *TopK[T]) Offer(x T) {
	if t.k <= 0 {
		return
	}
	if len(t.h) < t.k {
		t.h = append(t.h, x)
		t.siftUp(len(t.h) - 1)
		return
	}
	if t.less(t.h[0], x) {
		t.h[0] = x
		t.siftDown(0, len(t.h))
	}
}

// Len reports how many items are currently retained.
func (t *TopK[T]) Len() int { return len(t.h) }

// Threshold returns the weakest retained item — the heap root — and whether
// the selector already holds its full k items. While it is still filling
// there is no pruning bar yet and ok is false: any candidate would be
// admitted, so dynamic pruning must not drop anything.
func (t *TopK[T]) Threshold() (weakest T, ok bool) {
	if t.k <= 0 || len(t.h) < t.k {
		var zero T
		return zero, false
	}
	return t.h[0], true
}

// Extract heap-sorts the retained items in place and returns them best
// first (exactly the order the old heap-extraction loops produced). The
// selector is left empty; the returned slice aliases its storage and is
// valid until the selector is reused.
func (t *TopK[T]) Extract() []T {
	h := t.h
	for n := len(h) - 1; n > 0; n-- {
		h[0], h[n] = h[n], h[0]
		t.siftDown(0, n)
	}
	t.h = h[:0]
	return h
}

func (t *TopK[T]) siftUp(i int) {
	h := t.h
	for i > 0 {
		parent := (i - 1) / 2
		if !t.less(h[i], h[parent]) {
			return
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (t *TopK[T]) siftDown(i, n int) {
	h := t.h
	for {
		least := i
		if l := 2*i + 1; l < n && t.less(h[l], h[least]) {
			least = l
		}
		if r := 2*i + 2; r < n && t.less(h[r], h[least]) {
			least = r
		}
		if least == i {
			return
		}
		h[i], h[least] = h[least], h[i]
		i = least
	}
}
