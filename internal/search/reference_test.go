package search

// A brute-force reference implementation of the cosine measure, evaluated
// against the real engine on randomly generated corpora — the strongest
// correctness net in the package: any disagreement in scores, ordering or
// tie-breaking between the compressed-index evaluator and a naive
// map-based one fails the property.

import (
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"testing"
	"testing/quick"
)

// refEngine evaluates the cosine measure with plain maps.
type refEngine struct {
	docs  []map[string]uint32 // per-doc term frequencies
	df    map[string]int
	wd    []float64
	terms func(string) []string
}

func newRefEngine(docs []string, analyze func(string) []string) *refEngine {
	e := &refEngine{df: map[string]int{}, terms: analyze}
	for _, text := range docs {
		counts := map[string]uint32{}
		for _, t := range analyze(text) {
			counts[t]++
		}
		var sum float64
		for t, f := range counts {
			e.df[t]++
			w := math.Log(float64(f) + 1)
			sum += w * w
		}
		e.docs = append(e.docs, counts)
		// The real index stores document weights as float32 (MG keeps
		// approximate weights); quantize identically so scores agree to
		// full float64 precision.
		e.wd = append(e.wd, float64(float32(math.Sqrt(sum))))
	}
	return e
}

func (e *refEngine) rank(query string, k int) []Result {
	qf := map[string]uint32{}
	for _, t := range e.terms(query) {
		qf[t]++
	}
	n := float64(len(e.docs))
	weights := map[string]float64{}
	var wq2 float64
	for t, f := range qf {
		if e.df[t] == 0 {
			continue
		}
		w := math.Log(float64(f)+1) * math.Log(n/float64(e.df[t])+1)
		weights[t] = w
		wq2 += w * w
	}
	if wq2 == 0 {
		wq2 = 1
	}
	wq := math.Sqrt(wq2)
	var results []Result
	for d, counts := range e.docs {
		var dot float64
		for t, w := range weights {
			if f, ok := counts[t]; ok {
				dot += w * math.Log(float64(f)+1)
			}
		}
		if dot > 0 && e.wd[d] > 0 {
			results = append(results, Result{Doc: uint32(d), Score: dot / (wq * e.wd[d])})
		}
	}
	sort.Slice(results, func(i, j int) bool {
		if results[i].Score != results[j].Score {
			return results[i].Score > results[j].Score
		}
		return results[i].Doc < results[j].Doc
	})
	if len(results) > k {
		results = results[:k]
	}
	return results
}

func TestEngineAgainstBruteForce(t *testing.T) {
	analyzer := plainAnalyzer()
	analyze := func(text string) []string { return analyzer.Terms(nil, text) }
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ndocs := rng.Intn(80) + 5
		vocab := rng.Intn(40) + 5
		docs := make([]string, ndocs)
		for d := range docs {
			var sb strings.Builder
			for j := 0; j < rng.Intn(30)+1; j++ {
				sb.WriteString("t" + strconv.Itoa(rng.Intn(vocab)) + " ")
			}
			docs[d] = sb.String()
		}
		engine := buildEngine(t, docs)
		ref := newRefEngine(docs, analyze)
		for trial := 0; trial < 5; trial++ {
			var qb strings.Builder
			for j := 0; j < rng.Intn(6)+1; j++ {
				qb.WriteString("t" + strconv.Itoa(rng.Intn(vocab+3)) + " ") // may include absent terms
			}
			k := rng.Intn(15) + 1
			ranking, err := engine.Rank(qb.String(), k, nil)
			got := ranking.Results
			if err != nil {
				return false
			}
			want := ref.rank(qb.String(), k)
			if len(got) != len(want) {
				t.Logf("seed %d query %q: engine %d results, reference %d", seed, qb.String(), len(got), len(want))
				return false
			}
			for i := range want {
				if got[i].Doc != want[i].Doc || math.Abs(got[i].Score-want[i].Score) > 1e-9 {
					t.Logf("seed %d query %q rank %d: engine %+v, reference %+v",
						seed, qb.String(), i, got[i], want[i])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestScoreDocsAgainstBruteForce extends the property to the CI fast path.
func TestScoreDocsAgainstBruteForce(t *testing.T) {
	analyzer := plainAnalyzer()
	analyze := func(text string) []string { return analyzer.Terms(nil, text) }
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		ndocs := rng.Intn(200) + 10
		docs := make([]string, ndocs)
		for d := range docs {
			var sb strings.Builder
			for j := 0; j < rng.Intn(25)+1; j++ {
				sb.WriteString("t" + strconv.Itoa(rng.Intn(30)) + " ")
			}
			docs[d] = sb.String()
		}
		engine := buildEngine(t, docs)
		ref := newRefEngine(docs, analyze)
		query := "t1 t2 t3"
		all := ref.rank(query, ndocs)
		refScores := map[uint32]float64{}
		for _, r := range all {
			refScores[r.Doc] = r.Score
		}
		targets := []uint32{0, uint32(ndocs / 2), uint32(ndocs - 1)}
		ranking, err := engine.ScoreDocs(query, targets, nil)
		got := ranking.Results
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range got {
			if math.Abs(r.Score-refScores[targets[i]]) > 1e-9 {
				t.Fatalf("trial %d doc %d: engine %g, reference %g",
					trial, targets[i], r.Score, refScores[targets[i]])
			}
		}
	}
}
