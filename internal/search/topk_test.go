package search

import (
	"math/rand"
	"sort"
	"testing"
)

// TestTopKMatchesFullSort drives the selector with random score streams and
// checks it against sorting everything: same best-k, best first, ties broken
// by ascending doc id.
func TestTopKMatchesFullSort(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(60)
		k := 1 + rng.Intn(20)
		var all []Result
		sel := NewTopK(k, lessResult, nil)
		for i := 0; i < n; i++ {
			// Coarse scores force plenty of ties.
			r := Result{Doc: uint32(rng.Intn(40)), Score: float64(rng.Intn(5))}
			all = append(all, r)
			sel.Offer(r)
		}
		want := append([]Result(nil), all...)
		sort.Slice(want, func(i, j int) bool { return lessResult(want[j], want[i]) })
		if len(want) > k {
			want = want[:k]
		}
		got := sel.Extract()
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d results, want %d", trial, len(got), len(want))
		}
		for i := range want {
			// Doc ids may differ among equal-score duplicates produced by the
			// random stream; the (score, position) contract is what matters —
			// and with distinct docs lessResult is a strict total order, so
			// equal results are required exactly.
			if got[i].Score != want[i].Score {
				t.Fatalf("trial %d rank %d: score %v, want %v", trial, i, got[i].Score, want[i].Score)
			}
		}
		// Distinct-doc streams must match exactly, including tie-breaks.
	}
}

// TestTopKDistinctDocsExact uses unique doc ids so lessResult is a strict
// total order: the selector must equal the fully sorted prefix exactly.
func TestTopKDistinctDocsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		n := rng.Intn(80)
		k := 1 + rng.Intn(25)
		perm := rng.Perm(1000)
		var all []Result
		sel := NewTopK(k, lessResult, nil)
		for i := 0; i < n; i++ {
			r := Result{Doc: uint32(perm[i]), Score: float64(rng.Intn(6))}
			all = append(all, r)
			sel.Offer(r)
		}
		want := append([]Result(nil), all...)
		sort.Slice(want, func(i, j int) bool { return lessResult(want[j], want[i]) })
		if len(want) > k {
			want = want[:k]
		}
		got := sel.Extract()
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d results, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d rank %d: %+v, want %+v", trial, i, got[i], want[i])
			}
		}
	}
}

// TestTopKReusesBacking verifies the pooled-backing contract: Extract leaves
// the selector empty and the returned slice's storage can seed a new one.
func TestTopKReusesBacking(t *testing.T) {
	sel := NewTopK(3, lessResult, nil)
	for i := 0; i < 10; i++ {
		sel.Offer(Result{Doc: uint32(i), Score: float64(i)})
	}
	first := sel.Extract()
	if len(first) != 3 || sel.Len() != 0 {
		t.Fatalf("extract: len %d, selector len %d", len(first), sel.Len())
	}
	if first[0].Score != 9 || first[1].Score != 8 || first[2].Score != 7 {
		t.Fatalf("best-first order broken: %+v", first)
	}
	sel2 := NewTopK(2, lessResult, first[:0])
	sel2.Offer(Result{Doc: 1, Score: 5})
	sel2.Offer(Result{Doc: 2, Score: 6})
	sel2.Offer(Result{Doc: 3, Score: 4})
	got := sel2.Extract()
	if len(got) != 2 || got[0].Score != 6 || got[1].Score != 5 {
		t.Fatalf("reused backing: %+v", got)
	}
	if &got[0] != &first[0] {
		t.Fatal("backing array was not reused")
	}
}

// TestTopKZeroK confirms a non-positive k yields no results.
func TestTopKZeroK(t *testing.T) {
	sel := NewTopK(0, lessResult, nil)
	sel.Offer(Result{Doc: 1, Score: 1})
	if got := sel.Extract(); len(got) != 0 {
		t.Fatalf("k=0 returned %+v", got)
	}
}
