package search

import (
	"fmt"
	"strings"
)

// The paper contrasts ranked queries with Boolean queries, whose distributed
// evaluation is trivial (the union of per-librarian result sets). This file
// supplies that Boolean evaluator so the comparison can be reproduced.
//
// Grammar (case-insensitive keywords):
//
//	expr   := orExpr
//	orExpr := andExpr { OR andExpr }
//	andExpr:= notExpr { AND notExpr }
//	notExpr:= NOT notExpr | '(' expr ')' | term
//
// Terms pass through the engine's analyzer; a term that analyses to nothing
// (for example a stopword) matches no documents.

// BooleanQuery is a parsed Boolean expression ready for evaluation.
type BooleanQuery struct {
	root boolNode
}

type boolNode interface {
	eval(e *Engine, stats *Stats) []uint32
}

type andNode struct{ left, right boolNode }
type orNode struct{ left, right boolNode }
type notNode struct{ child boolNode }
type termNode struct{ term string }

// ParseBoolean parses a Boolean expression using the engine's analyzer for
// term normalisation.
func (e *Engine) ParseBoolean(expr string) (*BooleanQuery, error) {
	p := &boolParser{tokens: tokenizeBoolean(expr), engine: e}
	root, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.tokens) {
		return nil, fmt.Errorf("search: trailing input at token %q", p.tokens[p.pos])
	}
	return &BooleanQuery{root: root}, nil
}

// EvaluateBoolean returns the sorted document ids matching the expression.
func (e *Engine) EvaluateBoolean(q *BooleanQuery) ([]uint32, Stats) {
	var stats Stats
	if q == nil || q.root == nil {
		return nil, stats
	}
	return q.root.eval(e, &stats), stats
}

func tokenizeBoolean(expr string) []string {
	var tokens []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			tokens = append(tokens, cur.String())
			cur.Reset()
		}
	}
	for _, r := range expr {
		switch r {
		case '(', ')':
			flush()
			tokens = append(tokens, string(r))
		case ' ', '\t', '\n', '\r':
			flush()
		default:
			cur.WriteRune(r)
		}
	}
	flush()
	return tokens
}

type boolParser struct {
	tokens []string
	pos    int
	engine *Engine
}

func (p *boolParser) peek() string {
	if p.pos < len(p.tokens) {
		return p.tokens[p.pos]
	}
	return ""
}

func (p *boolParser) parseOr() (boolNode, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for strings.EqualFold(p.peek(), "or") {
		p.pos++
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &orNode{left: left, right: right}
	}
	return left, nil
}

func (p *boolParser) parseAnd() (boolNode, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for strings.EqualFold(p.peek(), "and") {
		p.pos++
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &andNode{left: left, right: right}
	}
	return left, nil
}

func (p *boolParser) parseNot() (boolNode, error) {
	tok := p.peek()
	switch {
	case tok == "":
		return nil, fmt.Errorf("search: unexpected end of Boolean expression")
	case strings.EqualFold(tok, "not"):
		p.pos++
		child, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &notNode{child: child}, nil
	case tok == "(":
		p.pos++
		inner, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.peek() != ")" {
			return nil, fmt.Errorf("search: expected ')', got %q", p.peek())
		}
		p.pos++
		return inner, nil
	case tok == ")":
		return nil, fmt.Errorf("search: unexpected ')'")
	default:
		p.pos++
		terms := p.engine.analyzer.Terms(nil, tok)
		if len(terms) == 0 {
			return &termNode{term: ""}, nil
		}
		// A token that analyses to several terms (e.g. "on-line") becomes
		// an implicit AND of its parts.
		var node boolNode = &termNode{term: terms[0]}
		for _, t := range terms[1:] {
			node = &andNode{left: node, right: &termNode{term: t}}
		}
		return node, nil
	}
}

func (n *termNode) eval(e *Engine, stats *Stats) []uint32 {
	stats.TermsLooked++
	if n.term == "" {
		return nil
	}
	cur, err := e.ix.Cursor(n.term)
	if err != nil {
		return nil
	}
	stats.ListsFetched++
	docs := make([]uint32, 0, cur.FT())
	for {
		blk := cur.NextBlock()
		if blk == nil {
			break
		}
		for _, p := range blk {
			docs = append(docs, p.Doc)
		}
	}
	stats.PostingsDecoded += cur.DecodedPostings
	return docs
}

func (n *andNode) eval(e *Engine, stats *Stats) []uint32 {
	a := n.left.eval(e, stats)
	b := n.right.eval(e, stats)
	out := a[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

func (n *orNode) eval(e *Engine, stats *Stats) []uint32 {
	a := n.left.eval(e, stats)
	b := n.right.eval(e, stats)
	out := make([]uint32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j >= len(b) || (i < len(a) && a[i] < b[j]):
			out = append(out, a[i])
			i++
		case i >= len(a) || b[j] < a[i]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

func (n *notNode) eval(e *Engine, stats *Stats) []uint32 {
	excluded := n.child.eval(e, stats)
	out := make([]uint32, 0, int(e.ix.NumDocs())-len(excluded))
	j := 0
	for d := uint32(0); d < e.ix.NumDocs(); d++ {
		if j < len(excluded) && excluded[j] == d {
			j++
			continue
		}
		out = append(out, d)
	}
	return out
}
