package search

import "teraphim/internal/obs"

// Metrics aggregates evaluator work — the quantities Stats already accounts
// per query — into registry counters, one series per component (a librarian
// engine, the CI central index). Observe is a handful of atomic adds, so it
// can sit directly on the serving path without disturbing the kernel's
// steady-state allocation behaviour.
type Metrics struct {
	PostingsDecoded  *obs.Counter
	CandidatesScored *obs.Counter
	ListsFetched     *obs.Counter
	IndexBytesRead   *obs.Counter
}

// NewMetrics registers the evaluator counter families on reg under the given
// pre-formatted label set (e.g. `component="librarian"`).
func NewMetrics(reg *obs.Registry, labels string) *Metrics {
	return &Metrics{
		PostingsDecoded: reg.Counter("teraphim_search_postings_decoded_total",
			"Postings decoded by the scoring kernel (the paper's disk/CPU term t_d+t_r per posting).", labels),
		CandidatesScored: reg.Counter("teraphim_search_candidates_scored_total",
			"Candidate documents given accumulators (the paper's A, per-query accumulator load).", labels),
		ListsFetched: reg.Counter("teraphim_search_lists_fetched_total",
			"Inverted lists read (the paper's per-term seek term t_s).", labels),
		IndexBytesRead: reg.Counter("teraphim_search_index_bytes_read_total",
			"Compressed index bytes touched (ListBytes accounting).", labels),
	}
}

// Observe folds one evaluation's Stats into the counters.
func (m *Metrics) Observe(s Stats) {
	if m == nil {
		return
	}
	m.PostingsDecoded.Add(s.PostingsDecoded)
	m.CandidatesScored.Add(uint64(s.CandidateDocs))
	m.ListsFetched.Add(uint64(s.ListsFetched))
	m.IndexBytesRead.Add(s.IndexBytesRead)
}
