package search

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// This file pins the zero-allocation kernel to the seed evaluator it
// replaced. goldenRank and goldenScoreDocs below are faithful copies of the
// pre-kernel implementation — map accumulators, math.Log per posting,
// container/heap selection, score = s/(W_q·W_d) — kept as executable
// specification: the kernel must reproduce their doc-id order exactly and
// their scores to 1e-9.

// goldenHeap is the seed's container/heap selector.
type goldenHeap []Result

func (h goldenHeap) Len() int            { return len(h) }
func (h goldenHeap) Less(i, j int) bool  { return lessResult(h[i], h[j]) }
func (h goldenHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *goldenHeap) Push(x interface{}) { *h = append(*h, x.(Result)) }
func (h *goldenHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// goldenTerms analyses the query into (term, f_qt) pairs in appearance
// order — the deterministic order both evaluators must share so that score
// rounding is comparable at the ULP level.
func goldenTerms(e *Engine, query string) (terms []string, fqts map[string]uint32) {
	fqts = make(map[string]uint32)
	for _, t := range e.Analyzer().Terms(nil, query) {
		if fqts[t] == 0 {
			terms = append(terms, t)
		}
		fqts[t]++
	}
	return terms, fqts
}

// goldenRank is the seed Engine.Rank: map accumulators over full-list Next
// iteration, heap top-k, s/(wq·wd) normalisation.
func goldenRank(t *testing.T, e *Engine, query string, k int, weights map[string]float64) []Result {
	t.Helper()
	terms, fqts := goldenTerms(e, query)
	if len(terms) == 0 {
		t.Fatalf("golden: empty query %q", query)
	}
	var wq float64
	{
		var sum float64
		for _, term := range terms {
			var w float64
			if weights != nil {
				w = weights[term]
			} else {
				w = e.LocalWeight(term, fqts[term])
			}
			sum += w * w
		}
		if sum == 0 {
			sum = 1
		}
		wq = math.Sqrt(sum)
	}
	acc := make(map[uint32]float64, 256)
	for _, term := range terms {
		var wqt float64
		if weights != nil {
			wqt = weights[term]
		} else {
			wqt = e.LocalWeight(term, fqts[term])
		}
		if wqt <= 0 {
			continue
		}
		cur, err := e.Index().Cursor(term)
		if err != nil {
			continue
		}
		for cur.Next() {
			p := cur.Posting()
			acc[p.Doc] += wqt * math.Log(float64(p.FDT)+1)
		}
	}
	h := make(goldenHeap, 0, k)
	for doc, s := range acc {
		wd, err := e.Index().DocWeight(doc)
		if err != nil {
			t.Fatal(err)
		}
		if wd == 0 {
			continue
		}
		r := Result{Doc: doc, Score: s / (wq * wd)}
		if len(h) < k {
			heap.Push(&h, r)
			continue
		}
		if lessResult(h[0], r) {
			h[0] = r
			heap.Fix(&h, 0)
		}
	}
	out := make([]Result, len(h))
	for i := len(h) - 1; i >= 0; i-- {
		out[i] = heap.Pop(&h).(Result)
	}
	return out
}

// goldenScoreDocs is the seed Engine.ScoreDocs: sorted targets, skip-based
// Advance, map accumulators, s/(wq·wd).
func goldenScoreDocs(t *testing.T, e *Engine, query string, docs []uint32, weights map[string]float64) []Result {
	t.Helper()
	terms, fqts := goldenTerms(e, query)
	var wq float64
	{
		var sum float64
		for _, term := range terms {
			var w float64
			if weights != nil {
				w = weights[term]
			} else {
				w = e.LocalWeight(term, fqts[term])
			}
			sum += w * w
		}
		if sum == 0 {
			sum = 1
		}
		wq = math.Sqrt(sum)
	}
	sorted := append([]uint32(nil), docs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	acc := make(map[uint32]float64, len(docs))
	for _, term := range terms {
		var wqt float64
		if weights != nil {
			wqt = weights[term]
		} else {
			wqt = e.LocalWeight(term, fqts[term])
		}
		if wqt <= 0 {
			continue
		}
		cur, err := e.Index().Cursor(term)
		if err != nil {
			continue
		}
		for _, d := range sorted {
			if !cur.Advance(d) {
				break
			}
			if p := cur.Posting(); p.Doc == d {
				acc[d] += wqt * math.Log(float64(p.FDT)+1)
			}
		}
	}
	out := make([]Result, len(docs))
	for i, d := range docs {
		wd, err := e.Index().DocWeight(d)
		if err != nil {
			t.Fatal(err)
		}
		score := 0.0
		if s := acc[d]; s > 0 && wd > 0 {
			score = s / (wq * wd)
		}
		out[i] = Result{Doc: d, Score: score}
	}
	return out
}

// goldenCorpus builds a synthetic corpus big enough to exercise skip blocks
// (long lists), multi-block decode, and rare terms.
func goldenCorpus(t testing.TB) (*Engine, []string) {
	t.Helper()
	rng := rand.New(rand.NewSource(83))
	var docs []string
	for d := 0; d < 1200; d++ {
		var sb []string
		terms := 20 + rng.Intn(50)
		for i := 0; i < terms; i++ {
			// Zipf-ish skew: low term ids are common, so their lists span
			// many skip blocks.
			id := int(math.Floor(math.Pow(rng.Float64(), 2.2) * 400))
			sb = append(sb, "t"+itoa(id))
		}
		docs = append(docs, join(sb))
	}
	queries := []string{
		"t1 t2 t3",
		"t0 t0 t17 t321",         // repeated term: f_qt = 2
		"t5 t80 t200 t399 t1000", // t1000 absent from the collection
		"t9",
		"t2 t4 t8 t16 t32 t64 t128 t256",
	}
	return buildEngine(t, docs), queries
}

func itoa(v int) string { return fmt.Sprintf("%d", v) }

func join(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += " "
		}
		out += p
	}
	return out
}

// TestGoldenRankMatchesSeedEvaluator pins Rank (pooled scratch) to the seed
// evaluator: identical doc ids, scores within 1e-9, at k=10 and k=100, with
// both nil (MS/CN) and explicit (CV) weights.
func TestGoldenRankMatchesSeedEvaluator(t *testing.T) {
	e, queries := goldenCorpus(t)
	for _, k := range []int{10, 100} {
		for _, q := range queries {
			for _, mode := range []string{"local", "explicit"} {
				var weights map[string]float64
				if mode == "explicit" {
					weights = e.QueryWeights(e.ParseQuery(q))
				}
				want := goldenRank(t, e, q, k, weights)
				ranking, err := e.Rank(q, k, weights)
				got := ranking.Results
				if err != nil {
					t.Fatalf("k=%d query %q (%s): %v", k, q, mode, err)
				}
				if len(got) != len(want) {
					t.Fatalf("k=%d query %q (%s): kernel %d results, seed %d", k, q, mode, len(got), len(want))
				}
				for i := range want {
					if got[i].Doc != want[i].Doc {
						t.Fatalf("k=%d query %q (%s) rank %d: kernel doc %d, seed doc %d",
							k, q, mode, i, got[i].Doc, want[i].Doc)
					}
					if math.Abs(got[i].Score-want[i].Score) > 1e-9 {
						t.Fatalf("k=%d query %q (%s) rank %d: kernel score %.17g, seed %.17g",
							k, q, mode, i, got[i].Score, want[i].Score)
					}
				}
			}
		}
	}
}

// TestGoldenScoreDocsMatchesSeedEvaluator pins ScoreDocs the same way.
func TestGoldenScoreDocsMatchesSeedEvaluator(t *testing.T) {
	e, queries := goldenCorpus(t)
	rng := rand.New(rand.NewSource(21))
	n := e.Index().NumDocs()
	for _, q := range queries {
		var targets []uint32
		for i := 0; i < 40; i++ {
			targets = append(targets, uint32(rng.Intn(int(n))))
		}
		want := goldenScoreDocs(t, e, q, targets, nil)
		ranking, err := e.ScoreDocs(q, targets, nil)
		got := ranking.Results
		if err != nil {
			t.Fatalf("query %q: %v", q, err)
		}
		for i := range want {
			if got[i].Doc != want[i].Doc {
				t.Fatalf("query %q target %d: kernel doc %d, seed doc %d", q, i, got[i].Doc, want[i].Doc)
			}
			if math.Abs(got[i].Score-want[i].Score) > 1e-9 {
				t.Fatalf("query %q doc %d: kernel score %.17g, seed %.17g",
					q, got[i].Doc, got[i].Score, want[i].Score)
			}
		}
	}
}

// TestRankSteadyStateAllocations pins the tentpole's headline property: with
// a caller-owned Scratch, a warmed-up Rank performs at most 2 allocations
// (the returned result slice; one spare for incidental growth).
func TestRankSteadyStateAllocations(t *testing.T) {
	e, queries := goldenCorpus(t)
	s := NewScratch()
	// Warm up: size the accumulators, cursor buffer, heap backing, and the
	// index's reciprocal-weight cache.
	for _, q := range queries {
		if _, _, err := e.RankWith(s, q, 100, nil); err != nil {
			t.Fatal(err)
		}
	}
	for _, q := range queries {
		q := q
		allocs := testing.AllocsPerRun(50, func() {
			if _, _, err := e.RankWith(s, q, 10, nil); err != nil {
				t.Fatal(err)
			}
		})
		if allocs > 2 {
			t.Fatalf("query %q: %v allocs per steady-state Rank, want <= 2", q, allocs)
		}
	}
}

// TestScoreDocsSteadyStateAllocations does the same for the CI fast path.
func TestScoreDocsSteadyStateAllocations(t *testing.T) {
	e, queries := goldenCorpus(t)
	s := NewScratch()
	targets := []uint32{3, 77, 150, 400, 801, 1100}
	for _, q := range queries {
		if _, _, err := e.ScoreDocsWith(s, q, targets, nil); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, _, err := e.ScoreDocsWith(s, queries[0], targets, nil); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 2 {
		t.Fatalf("%v allocs per steady-state ScoreDocs, want <= 2", allocs)
	}
}

// TestConcurrentRankWithPooledScratch races many goroutines through the
// shared scratch pool against one engine; every goroutine must see results
// identical to a serial evaluation. Run under -race (make race / verify)
// this proves Scratch hand-out is exclusive and the engine/index state it
// reads is genuinely immutable.
func TestConcurrentRankWithPooledScratch(t *testing.T) {
	e, queries := goldenCorpus(t)
	want := make([][]Result, len(queries))
	for i, q := range queries {
		ranking, err := e.Rank(q, 20, nil)
		r := ranking.Results
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r
	}
	const goroutines = 8
	const rounds = 30
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				qi := (g + round) % len(queries)
				s := GetScratch()
				got, _, err := e.RankWith(s, queries[qi], 20, nil)
				s.Release()
				if err != nil {
					errc <- err
					return
				}
				exp := want[qi]
				if len(got) != len(exp) {
					errc <- fmt.Errorf("goroutine %d: %d results, want %d", g, len(got), len(exp))
					return
				}
				for i := range exp {
					if got[i] != exp[i] {
						errc <- fmt.Errorf("goroutine %d query %q rank %d: %+v, want %+v",
							g, queries[qi], i, got[i], exp[i])
						return
					}
				}
			}
			errc <- nil
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		if err != nil {
			t.Fatal(err)
		}
	}
}
