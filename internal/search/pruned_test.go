package search

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"teraphim/internal/index"
)

func buildFreqSorted(t testing.TB, docs []string) (*PrunedEngine, *Engine) {
	t.Helper()
	a := plainAnalyzer()
	b := index.NewBuilder()
	for _, d := range docs {
		b.Add(a.Terms(nil, d))
	}
	ix, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	fs, err := index.BuildFreqSorted(ix)
	if err != nil {
		t.Fatal(err)
	}
	return NewPrunedEngine(fs, a), NewEngine(ix, a)
}

// TestPrunedZeroThresholdExact pins the key correctness property: with zero
// thresholds, frequency-sorted evaluation returns exactly the same scores
// as the document-sorted engine.
func TestPrunedZeroThresholdExact(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	docs := make([]string, 600)
	for i := range docs {
		var sb strings.Builder
		for j := 0; j < 40; j++ {
			sb.WriteString("w" + strconv.Itoa(rng.Intn(300)) + " ")
		}
		docs[i] = sb.String()
	}
	pruned, exact := buildFreqSorted(t, docs)
	for _, q := range []string{"w1 w2 w3", "w10 w200 w299 w4 w4", "w7"} {
		ranking, err := exact.Rank(q, 25, nil)
		want := ranking.Results
		if err != nil {
			t.Fatal(err)
		}
		ranking, err = pruned.Rank(q, 25, Thresholds{})
		got := ranking.Results
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("query %q: pruned %d results, exact %d", q, len(got), len(want))
		}
		for i := range want {
			if got[i].Doc != want[i].Doc || math.Abs(got[i].Score-want[i].Score) > 1e-9 {
				t.Fatalf("query %q rank %d: pruned %+v, exact %+v", q, i, got[i], want[i])
			}
		}
	}
}

// TestPrunedThresholdSavesWork verifies the Persin result's direction:
// nonzero thresholds decode fewer postings while preserving the head of the
// ranking.
func TestPrunedThresholdSavesWork(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	docs := make([]string, 2000)
	for i := range docs {
		var sb strings.Builder
		// Most documents match query terms only incidentally (f_dt = 1);
		// a few dozen "hot" documents use them heavily. This is the
		// frequency skew real text has and that makes thresholding safe:
		// high-ranking documents owe their scores to high-f_dt matches.
		hot := i%67 == 0
		for j := 0; j < 50; j++ {
			term := "w" + strconv.Itoa(rng.Intn(150))
			reps := 1
			if hot && rng.Intn(6) == 0 {
				term = "w" + strconv.Itoa(rng.Intn(5)+1) // a query term
				reps = rng.Intn(8) + 5
			}
			for r := 0; r < reps; r++ {
				sb.WriteString(term + " ")
			}
		}
		docs[i] = sb.String()
	}
	pruned, _ := buildFreqSorted(t, docs)
	query := "w1 w2 w3 w4 w5"

	ranking, err := pruned.Rank(query, 20, Thresholds{})
	full, fullStats := ranking.Results, ranking.Stats
	if err != nil {
		t.Fatal(err)
	}
	ranking, err = pruned.Rank(query, 20, Thresholds{Insert: 0.55, Add: 0.4})
	cut, cutStats := ranking.Results, ranking.Stats
	if err != nil {
		t.Fatal(err)
	}
	if cutStats.PostingsDecoded >= fullStats.PostingsDecoded {
		t.Fatalf("thresholding decoded %d postings vs full %d: no saving",
			cutStats.PostingsDecoded, fullStats.PostingsDecoded)
	}
	// Top answers should overlap strongly.
	want := map[uint32]bool{}
	for _, r := range full[:10] {
		want[r.Doc] = true
	}
	hits := 0
	for _, r := range cut[:10] {
		if want[r.Doc] {
			hits++
		}
	}
	if hits < 6 {
		t.Fatalf("only %d of top-10 preserved under thresholding", hits)
	}
	t.Logf("postings: full %d, thresholded %d (%.1fx); top-10 overlap %d/10",
		fullStats.PostingsDecoded, cutStats.PostingsDecoded,
		float64(fullStats.PostingsDecoded)/float64(cutStats.PostingsDecoded), hits)
}

func TestPrunedValidation(t *testing.T) {
	pruned, _ := buildFreqSorted(t, []string{"a b c", "b c d"})
	if _, err := pruned.Rank("a", 0, Thresholds{}); err == nil {
		t.Fatal("k=0: want error")
	}
	if _, err := pruned.Rank("!!!", 5, Thresholds{}); err != ErrEmptyQuery {
		t.Fatalf("want ErrEmptyQuery, got %v", err)
	}
	ranking, err := pruned.Rank("zzz", 5, Thresholds{})
	results := ranking.Results
	if err != nil || len(results) != 0 {
		t.Fatalf("unknown term: %v, %v", results, err)
	}
}

// TestPrunedTiedCapDeterministicOrder is the regression test for the
// unstable-sort bug: "aa" and "bb" are engineered to have identical
// contribution caps (same f_t, same f_qt, same MaxFDT), and d2/d3 are
// mirror images — each has one f_dt=4 match and one f_dt=1 match, on
// opposite terms. With Insert high enough that f_dt=1 runs may only update
// existing accumulators, whichever tied list is processed first decides
// which document keeps its small contribution. The stable term-string
// tie-break processes "aa" first, so d2 (aa⁴ bb¹ — accumulator created by
// aa's big run before bb's small run arrives) must outrank d3 (aa¹ bb⁴ —
// its aa¹ contribution is lost), identically on every run.
func TestPrunedTiedCapDeterministicOrder(t *testing.T) {
	docs := []string{
		"aa aa aa aa",    // d0: creates aa's f=4 run
		"bb bb bb bb",    // d1: creates bb's f=4 run
		"aa aa aa aa bb", // d2: aa f=4, bb f=1
		"aa bb bb bb bb", // d3: aa f=1, bb f=4
	}
	pruned, _ := buildFreqSorted(t, docs)
	th := Thresholds{Insert: 0.9}
	var first []Result
	for run := 0; run < 25; run++ {
		// Query order "bb aa": without the tie-break the sort leaves the
		// tied terms in appearance order and bb runs first, flipping the
		// d2/d3 outcome — which is exactly what this test pins against.
		ranking, err := pruned.Rank("bb aa", 4, th)
		if err != nil {
			t.Fatal(err)
		}
		got := ranking.Results
		if run == 0 {
			first = got
			if len(got) < 2 {
				t.Fatalf("got %d results, want >= 2", len(got))
			}
			// d2 keeps both contributions, d3 only its big one.
			var s2, s3 float64
			for _, r := range got {
				switch r.Doc {
				case 2:
					s2 = r.Score
				case 3:
					s3 = r.Score
				}
			}
			if !(s2 > s3) {
				t.Fatalf("tied-cap order wrong: score(d2)=%v <= score(d3)=%v — bb processed before aa", s2, s3)
			}
			continue
		}
		if len(got) != len(first) {
			t.Fatalf("run %d: %d results, first run had %d", run, len(got), len(first))
		}
		for i := range first {
			if got[i] != first[i] {
				t.Fatalf("run %d rank %d: %+v, first run %+v — nondeterministic", run, i, got[i], first[i])
			}
		}
	}
}

// TestPrunedContextCancellation: PrunedEngine now follows the context-first
// convention — a cancelled context stops the evaluation with its error.
func TestPrunedContextCancellation(t *testing.T) {
	pruned, _ := buildFreqSorted(t, []string{"a b c", "b c d"})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := pruned.RankContext(ctx, "a b", 5, Thresholds{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if _, err := pruned.RankContext(context.Background(), "a b", 5, Thresholds{}); err != nil {
		t.Fatalf("live context: %v", err)
	}
}

// TestPrunedMetricsAccounting pins the pruned path's Stats against the
// exact engine's on the same collection: with zero thresholds every counter
// the two organisations share must agree, and IndexBytesRead — which the
// pruned path previously never set — must equal the frequency-sorted sizes
// of the matched lists.
func TestPrunedMetricsAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	docs := make([]string, 400)
	for i := range docs {
		var sb strings.Builder
		for j := 0; j < 30; j++ {
			sb.WriteString("w" + strconv.Itoa(rng.Intn(120)) + " ")
		}
		docs[i] = sb.String()
	}
	pruned, exact := buildFreqSorted(t, docs)
	query := "w1 w2 w3 w999" // w999 absent
	exactRanking, err := exact.Rank(query, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	prunedRanking, err := pruned.Rank(query, 10, Thresholds{})
	if err != nil {
		t.Fatal(err)
	}
	es, ps := exactRanking.Stats, prunedRanking.Stats
	if ps.TermsLooked != es.TermsLooked || ps.ListsFetched != es.ListsFetched ||
		ps.PostingsDecoded != es.PostingsDecoded || ps.CandidateDocs != es.CandidateDocs {
		t.Fatalf("zero-threshold pruned stats %+v disagree with exact %+v", ps, es)
	}
	var wantBytes uint64
	for _, term := range []string{"w1", "w2", "w3"} {
		lb := pruned.fs.ListBytes(term)
		if lb == 0 {
			t.Fatalf("ListBytes(%q) = 0", term)
		}
		wantBytes += lb
	}
	if pruned.fs.ListBytes("w999") != 0 {
		t.Fatal("ListBytes of absent term != 0")
	}
	if ps.IndexBytesRead != wantBytes {
		t.Fatalf("IndexBytesRead = %d, want sum of matched ListBytes %d", ps.IndexBytesRead, wantBytes)
	}
}

func TestFreqSortedIndexProperties(t *testing.T) {
	_, exact := buildFreqSorted(t, []string{
		"x x x y", // x f=3
		"x y y",   // x f=1, y f=2
		"x x z",   // x f=2
	})
	fs, err := index.BuildFreqSorted(exact.Index())
	if err != nil {
		t.Fatal(err)
	}
	if fs.TermFreq("x") != 3 || fs.TermFreq("absent") != 0 {
		t.Fatalf("TermFreq wrong")
	}
	if fs.MaxFDT("x") != 3 {
		t.Fatalf("MaxFDT(x) = %d, want 3", fs.MaxFDT("x"))
	}
	cur, err := fs.Cursor("x")
	if err != nil {
		t.Fatal(err)
	}
	var fdts []uint32
	var total int
	for {
		fdt, docs, ok := cur.NextRun()
		if !ok {
			break
		}
		fdts = append(fdts, fdt)
		total += len(docs)
	}
	if total != 3 {
		t.Fatalf("runs covered %d postings, want 3", total)
	}
	for i := 1; i < len(fdts); i++ {
		if fdts[i] >= fdts[i-1] {
			t.Fatalf("runs not in decreasing f_dt order: %v", fdts)
		}
	}
	if _, err := fs.Cursor("absent"); err == nil {
		t.Fatal("absent term cursor: want error")
	}
	if _, err := fs.DocWeight(99); err == nil {
		t.Fatal("out-of-range DocWeight: want error")
	}
	if fs.SizeBytes() == 0 || fs.NumDocs() != 3 {
		t.Fatal("size/docs accessors wrong")
	}
}

func BenchmarkPrunedRank(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	docs := make([]string, 3000)
	for i := range docs {
		var sb strings.Builder
		for j := 0; j < 60; j++ {
			sb.WriteString("w" + strconv.Itoa(rng.Intn(500)) + " ")
		}
		docs[i] = sb.String()
	}
	pruned, _ := buildFreqSorted(b, docs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pruned.Rank("w1 w2 w3 w4 w5 w6", 20, Thresholds{Insert: 0.1, Add: 0.02}); err != nil {
			b.Fatal(err)
		}
	}
}
