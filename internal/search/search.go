// Package search implements the mono-server ranked query evaluator that each
// librarian (and the MS baseline) runs: cosine similarity with logarithmic
// in-document frequency, accumulator-based evaluation, and a top-k heap.
//
// The similarity is the one used in the paper (§2):
//
//	C(q,d) = Σ_{t∈q∩d} w_{q,t}·w_{d,t} / (W_q · W_d)
//	w_{d,t} = log(f_{d,t}+1)
//	w_{q,t} = log(f_{q,t}+1) · log(N/f_t + 1)
//
// The collection-dependent part, log(N/f_t+1), lives entirely in the query
// weight. Callers may therefore substitute externally supplied weights
// (the Central Vocabulary methodology) without touching document weights.
//
// Evaluation runs on a zero-steady-state-allocation kernel: a pooled Scratch
// holds flat epoch-stamped accumulators sized to the collection, postings
// arrive a decode block at a time through a reusable cursor, w_dt comes from
// a memoised log table, and normalisation reads the index's cached
// reciprocal-weight array. Rank and ScoreDocs borrow a Scratch from the
// shared pool; RankWith and ScoreDocsWith accept a caller-owned one.
package search

import (
	"context"
	"errors"
	"fmt"
	"math"
	"slices"

	"teraphim/internal/index"
	"teraphim/internal/textproc"
)

// ErrEmptyQuery is returned when a query contains no indexable terms.
var ErrEmptyQuery = errors.New("search: query has no indexable terms")

// Result is one ranked answer.
type Result struct {
	Doc   uint32
	Score float64
}

// Ranking is a completed query evaluation: the answers in decreasing score
// order plus the work the evaluation performed. The convenience entry points
// (Rank, ScoreDocs, PrunedEngine.Rank) return it instead of positional
// (results, stats, err) triples; the caller-owned-Scratch kernel methods
// (RankWith, ScoreDocsWith) keep the flat form for zero-allocation use.
type Ranking struct {
	Results []Result
	Stats   Stats
}

// Stats captures the work a query performed, feeding the cost model of the
// distributed experiments.
type Stats struct {
	TermsLooked     int    // dictionary lookups
	ListsFetched    int    // inverted lists actually read
	PostingsDecoded uint64 // postings decoded (skips reduce this)
	IndexBytesRead  uint64 // compressed bytes of the lists touched
	CandidateDocs   int    // accumulators allocated
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.TermsLooked += other.TermsLooked
	s.ListsFetched += other.ListsFetched
	s.PostingsDecoded += other.PostingsDecoded
	s.IndexBytesRead += other.IndexBytesRead
	s.CandidateDocs += other.CandidateDocs
}

// Engine evaluates queries against one collection.
type Engine struct {
	ix       *index.Index
	analyzer *textproc.Analyzer
}

// NewEngine wraps an index with the analysis pipeline used at build time.
func NewEngine(ix *index.Index, analyzer *textproc.Analyzer) *Engine {
	return &Engine{ix: ix, analyzer: analyzer}
}

// Index exposes the underlying index (read-only usage expected).
func (e *Engine) Index() *index.Index { return e.ix }

// Analyzer exposes the engine's analysis pipeline so other components (a
// receptionist, an evaluation harness) can analyse queries identically.
func (e *Engine) Analyzer() *textproc.Analyzer { return e.analyzer }

// ParseQuery analyses raw query text into term frequencies f_{q,t}.
func (e *Engine) ParseQuery(query string) map[string]uint32 {
	terms := e.analyzer.Terms(nil, query)
	freqs := make(map[string]uint32, len(terms))
	for _, t := range terms {
		freqs[t]++
	}
	return freqs
}

// parseQueryInto analyses query into s.qterms (term + f_qt, in order of first
// appearance), reusing the scratch's tokenizer buffers. Query vocabularies
// are tiny, so duplicate detection is a linear scan rather than a map.
func parseQueryInto(s *Scratch, a *textproc.Analyzer, query string) {
	s.terms, s.raw = a.TermsScratch(s.terms[:0], s.raw, query)
	s.qterms = s.qterms[:0]
outer:
	for _, t := range s.terms {
		for i := range s.qterms {
			if s.qterms[i].term == t {
				s.qterms[i].fqt++
				continue outer
			}
		}
		s.qterms = append(s.qterms, queryTerm{term: t, fqt: 1})
	}
}

// LocalWeight returns this collection's w_{q,t} for a term with query
// frequency fqt: log(f_qt+1)·log(N/f_t+1). It returns 0 when the term is
// absent from the collection.
func (e *Engine) LocalWeight(term string, fqt uint32) float64 {
	ft := e.ix.TermFreq(term)
	if ft == 0 {
		return 0
	}
	n := float64(e.ix.NumDocs())
	return logF1(fqt) * math.Log(n/float64(ft)+1)
}

// CollectionWeight returns w_{q,t} = log(f_qt+1)·log(N/f_t+1) for explicit
// collection-wide statistics, 0 when ft is 0. It is the statistics-supplied
// form of LocalWeight and shares its memoized log table, so an evaluator
// that sums per-segment f_t and total N and feeds the result here produces
// bitwise-identical weights to a single index built over the whole
// collection — the property the librarian's segmented manifest relies on
// for rank parity.
func CollectionWeight(fqt, ft, numDocs uint32) float64 {
	if ft == 0 {
		return 0
	}
	return logF1(fqt) * math.Log(float64(numDocs)/float64(ft)+1)
}

// QueryWeights computes the local w_{q,t} map for an analysed query.
func (e *Engine) QueryWeights(freqs map[string]uint32) map[string]float64 {
	weights := make(map[string]float64, len(freqs))
	for t, fqt := range freqs {
		if w := e.LocalWeight(t, fqt); w > 0 {
			weights[t] = w
		}
	}
	return weights
}

// queryNorm computes W_q = sqrt(Σ w_{q,t}²). A zero norm (no term matched)
// yields 1 to avoid dividing by zero; scores are all zero in that case.
func queryNorm(weights map[string]float64) float64 {
	var sum float64
	for _, w := range weights {
		sum += w * w
	}
	if sum == 0 {
		return 1
	}
	return math.Sqrt(sum)
}

// resolveWeights fills the wqt of every parsed query term and returns W_q.
// With weights nil each term gets this collection's local weight (MS/CN);
// otherwise weights is authoritative (CV) and terms absent from it stay at
// weight 0. Either way W_q is summed in query-appearance order, never map
// order: every evaluator of the same query — the mono server and each CV
// librarian — must produce the bitwise-same norm, or ULP-level wobble
// reorders tied documents across collections.
func (e *Engine) resolveWeights(s *Scratch, weights map[string]float64) float64 {
	var sum float64
	for i := range s.qterms {
		var w float64
		if weights != nil {
			w = weights[s.qterms[i].term]
		} else {
			w = e.LocalWeight(s.qterms[i].term, s.qterms[i].fqt)
		}
		s.qterms[i].wqt = w
		sum += w * w
	}
	if sum == 0 {
		return 1
	}
	return math.Sqrt(sum)
}

// Rank evaluates a ranked query and returns the top k documents in
// decreasing score order. If weights is nil the engine derives local
// weights (MS and CN behaviour); otherwise the supplied global weights are
// used verbatim (CV behaviour) and terms absent from weights are skipped.
// Scratch state comes from the shared pool; use RankWith to supply your own.
func (e *Engine) Rank(query string, k int, weights map[string]float64) (Ranking, error) {
	return e.RankContext(context.Background(), query, k, weights)
}

// RankEval is Rank under an explicit evaluator (see Evaluator); EvalExact
// reproduces Rank.
func (e *Engine) RankEval(query string, k int, weights map[string]float64, eval Evaluator) (Ranking, error) {
	return e.RankContextEval(context.Background(), query, k, weights, eval)
}

// RankContext is Rank honouring a context: cancellation is checked between
// inverted lists, so a long multi-term evaluation stops promptly when the
// caller gives up.
func (e *Engine) RankContext(ctx context.Context, query string, k int, weights map[string]float64) (Ranking, error) {
	return e.RankContextEval(ctx, query, k, weights, EvalExact)
}

// RankContextEval is RankContext under an explicit evaluator. The dynamic
// pruners check cancellation between candidate batches rather than between
// lists (they hold all lists open at once), with the same promptness.
func (e *Engine) RankContextEval(ctx context.Context, query string, k int, weights map[string]float64, eval Evaluator) (Ranking, error) {
	s := GetScratch()
	defer s.Release()
	results, stats, err := e.rankWith(ctx, s, query, k, weights, eval)
	return Ranking{Results: results, Stats: stats}, err
}

// RankWith is Rank running on a caller-owned Scratch. In steady state the
// only allocation left is the returned result slice.
func (e *Engine) RankWith(s *Scratch, query string, k int, weights map[string]float64) ([]Result, Stats, error) {
	return e.rankWith(nil, s, query, k, weights, EvalExact)
}

// RankWithEval is RankWith under an explicit evaluator.
func (e *Engine) RankWithEval(s *Scratch, query string, k int, weights map[string]float64, eval Evaluator) ([]Result, Stats, error) {
	return e.rankWith(nil, s, query, k, weights, eval)
}

// rankWith is the shared kernel behind Rank/RankContext/RankWith and their
// Eval variants. A nil ctx skips the cancellation checks entirely, keeping
// the hot kernel path free of even the ctx.Err() loads.
func (e *Engine) rankWith(ctx context.Context, s *Scratch, query string, k int, weights map[string]float64, eval Evaluator) ([]Result, Stats, error) {
	var stats Stats
	if k <= 0 {
		return nil, stats, fmt.Errorf("search: k must be positive, got %d", k)
	}
	if !eval.Valid() {
		return nil, stats, fmt.Errorf("%w: %d", ErrUnknownEvaluator, uint8(eval))
	}
	parseQueryInto(s, e.analyzer, query)
	if len(s.qterms) == 0 {
		return nil, stats, ErrEmptyQuery
	}
	wq := e.resolveWeights(s, weights)
	stats.TermsLooked = len(s.qterms)

	if eval != EvalExact {
		results, err := e.rankDynamic(ctx, s, k, wq, eval, &stats)
		return results, stats, err
	}

	numDocs := e.ix.NumDocs()
	s.reset(numDocs)
	for i := range s.qterms {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, stats, err
			}
		}
		qt := &s.qterms[i]
		if qt.wqt <= 0 {
			continue
		}
		if err := e.ix.ResetCursor(&s.cur, qt.term); err != nil {
			// Term in the weight map but not this collection: skip.
			continue
		}
		stats.ListsFetched++
		stats.IndexBytesRead += e.ix.ListBytes(qt.term)
		for {
			blk := s.cur.NextBlock()
			if blk == nil {
				break
			}
			for _, p := range blk {
				if p.Doc >= numDocs {
					continue // corrupt list; flat accumulators cannot hold it
				}
				s.add(p.Doc, qt.wqt*logF1(p.FDT))
			}
		}
		stats.PostingsDecoded += s.cur.DecodedPostings
	}
	stats.CandidateDocs = len(s.touched)

	results := e.topK(s, k, wq)
	return results, stats, nil
}

// ScoreDocs computes exact similarity scores for the nominated documents
// only, using skip-based cursor advancement. This is the librarian-side fast
// path of the Central Index methodology: only a fraction of each inverted
// list is decoded. Results are returned for every requested doc (score 0 if
// no query term matches), in the order requested.
func (e *Engine) ScoreDocs(query string, docs []uint32, weights map[string]float64) (Ranking, error) {
	s := GetScratch()
	defer s.Release()
	results, stats, err := e.ScoreDocsWith(s, query, docs, weights)
	return Ranking{Results: results, Stats: stats}, err
}

// ScoreDocsWith is ScoreDocs running on a caller-owned Scratch.
func (e *Engine) ScoreDocsWith(s *Scratch, query string, docs []uint32, weights map[string]float64) ([]Result, Stats, error) {
	var stats Stats
	parseQueryInto(s, e.analyzer, query)
	if len(s.qterms) == 0 {
		return nil, stats, ErrEmptyQuery
	}
	wq := e.resolveWeights(s, weights)
	stats.TermsLooked = len(s.qterms)

	s.docbuf = append(s.docbuf[:0], docs...)
	slices.Sort(s.docbuf)
	numDocs := e.ix.NumDocs()
	s.reset(numDocs)

	for i := range s.qterms {
		qt := &s.qterms[i]
		if qt.wqt <= 0 {
			continue
		}
		if err := e.ix.ResetCursor(&s.cur, qt.term); err != nil {
			continue
		}
		stats.ListsFetched++
		stats.IndexBytesRead += e.ix.ListBytes(qt.term)
		for _, d := range s.docbuf {
			if !s.cur.Advance(d) {
				break
			}
			if p := s.cur.Posting(); p.Doc == d {
				s.add(d, qt.wqt*logF1(p.FDT))
			}
		}
		stats.PostingsDecoded += s.cur.DecodedPostings
	}
	stats.CandidateDocs = len(s.touched)

	inv := e.ix.InvDocWeights()
	out := make([]Result, len(docs))
	for i, d := range docs {
		if d >= numDocs {
			_, err := e.ix.DocWeight(d) // canonical out-of-range error
			return nil, stats, fmt.Errorf("search: score doc %d: %w", d, err)
		}
		score := 0.0
		if a := s.get(d); a > 0 && inv[d] > 0 {
			score = a * inv[d] / wq
		}
		out[i] = Result{Doc: d, Score: score}
	}
	return out, stats, nil
}

// topK normalises the touched accumulators by W_q·W_d and selects the k
// highest scoring documents, ties broken by ascending doc id. The selector
// runs on the scratch's heap backing; only the returned slice is allocated.
func (e *Engine) topK(s *Scratch, k int, wq float64) []Result {
	inv := e.ix.InvDocWeights()
	sel := NewTopK(k, lessResult, s.heap)
	for _, d := range s.touched {
		iw := inv[d]
		if iw == 0 {
			continue
		}
		sel.Offer(Result{Doc: d, Score: s.acc[d] * iw / wq})
	}
	ranked := sel.Extract()
	out := make([]Result, len(ranked))
	copy(out, ranked)
	s.heap = ranked[:0]
	return out
}

// lessResult orders results worst-first for the min-heap: lower score is
// less; equal scores break toward higher doc id being less-preferred.
func lessResult(a, b Result) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.Doc > b.Doc
}

// SortResults orders results by decreasing score, ties by ascending doc id.
// Exposed for receptionist-side merging.
func SortResults(rs []Result) {
	slices.SortFunc(rs, func(a, b Result) int {
		switch {
		case lessResult(b, a):
			return -1
		case lessResult(a, b):
			return 1
		default:
			return 0
		}
	})
}
