// Package search implements the mono-server ranked query evaluator that each
// librarian (and the MS baseline) runs: cosine similarity with logarithmic
// in-document frequency, accumulator-based evaluation, and a top-k heap.
//
// The similarity is the one used in the paper (§2):
//
//	C(q,d) = Σ_{t∈q∩d} w_{q,t}·w_{d,t} / (W_q · W_d)
//	w_{d,t} = log(f_{d,t}+1)
//	w_{q,t} = log(f_{q,t}+1) · log(N/f_t + 1)
//
// The collection-dependent part, log(N/f_t+1), lives entirely in the query
// weight. Callers may therefore substitute externally supplied weights
// (the Central Vocabulary methodology) without touching document weights.
package search

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"sort"

	"teraphim/internal/index"
	"teraphim/internal/textproc"
)

// ErrEmptyQuery is returned when a query contains no indexable terms.
var ErrEmptyQuery = errors.New("search: query has no indexable terms")

// Result is one ranked answer.
type Result struct {
	Doc   uint32
	Score float64
}

// Stats captures the work a query performed, feeding the cost model of the
// distributed experiments.
type Stats struct {
	TermsLooked     int    // dictionary lookups
	ListsFetched    int    // inverted lists actually read
	PostingsDecoded uint64 // postings decoded (skips reduce this)
	IndexBytesRead  uint64 // compressed bytes of the lists touched
	CandidateDocs   int    // accumulators allocated
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.TermsLooked += other.TermsLooked
	s.ListsFetched += other.ListsFetched
	s.PostingsDecoded += other.PostingsDecoded
	s.IndexBytesRead += other.IndexBytesRead
	s.CandidateDocs += other.CandidateDocs
}

// Engine evaluates queries against one collection.
type Engine struct {
	ix       *index.Index
	analyzer *textproc.Analyzer
}

// NewEngine wraps an index with the analysis pipeline used at build time.
func NewEngine(ix *index.Index, analyzer *textproc.Analyzer) *Engine {
	return &Engine{ix: ix, analyzer: analyzer}
}

// Index exposes the underlying index (read-only usage expected).
func (e *Engine) Index() *index.Index { return e.ix }

// Analyzer exposes the engine's analysis pipeline so other components (a
// receptionist, an evaluation harness) can analyse queries identically.
func (e *Engine) Analyzer() *textproc.Analyzer { return e.analyzer }

// ParseQuery analyses raw query text into term frequencies f_{q,t}.
func (e *Engine) ParseQuery(query string) map[string]uint32 {
	terms := e.analyzer.Terms(nil, query)
	freqs := make(map[string]uint32, len(terms))
	for _, t := range terms {
		freqs[t]++
	}
	return freqs
}

// LocalWeight returns this collection's w_{q,t} for a term with query
// frequency fqt: log(f_qt+1)·log(N/f_t+1). It returns 0 when the term is
// absent from the collection.
func (e *Engine) LocalWeight(term string, fqt uint32) float64 {
	ft := e.ix.TermFreq(term)
	if ft == 0 {
		return 0
	}
	n := float64(e.ix.NumDocs())
	return math.Log(float64(fqt)+1) * math.Log(n/float64(ft)+1)
}

// QueryWeights computes the local w_{q,t} map for an analysed query.
func (e *Engine) QueryWeights(freqs map[string]uint32) map[string]float64 {
	weights := make(map[string]float64, len(freqs))
	for t, fqt := range freqs {
		if w := e.LocalWeight(t, fqt); w > 0 {
			weights[t] = w
		}
	}
	return weights
}

// queryNorm computes W_q = sqrt(Σ w_{q,t}²). A zero norm (no term matched)
// yields 1 to avoid dividing by zero; scores are all zero in that case.
func queryNorm(weights map[string]float64) float64 {
	var sum float64
	for _, w := range weights {
		sum += w * w
	}
	if sum == 0 {
		return 1
	}
	return math.Sqrt(sum)
}

// Rank evaluates a ranked query and returns the top k documents in
// decreasing score order. If weights is nil the engine derives local
// weights (MS and CN behaviour); otherwise the supplied global weights are
// used verbatim (CV behaviour) and terms absent from weights are skipped.
func (e *Engine) Rank(query string, k int, weights map[string]float64) ([]Result, Stats, error) {
	var stats Stats
	if k <= 0 {
		return nil, stats, fmt.Errorf("search: k must be positive, got %d", k)
	}
	freqs := e.ParseQuery(query)
	if len(freqs) == 0 {
		return nil, stats, ErrEmptyQuery
	}
	if weights == nil {
		weights = e.QueryWeights(freqs)
	}
	stats.TermsLooked = len(freqs)

	acc := make(map[uint32]float64, 256)
	for term := range freqs {
		wqt := weights[term]
		if wqt <= 0 {
			continue
		}
		cur, err := e.ix.Cursor(term)
		if err != nil {
			// Term in the weight map but not this collection: skip.
			continue
		}
		stats.ListsFetched++
		stats.IndexBytesRead += e.listBytes(term)
		for cur.Next() {
			p := cur.Posting()
			acc[p.Doc] += wqt * math.Log(float64(p.FDT)+1)
		}
		stats.PostingsDecoded += cur.DecodedPostings
	}
	stats.CandidateDocs = len(acc)

	wq := queryNorm(weights)
	results, err := e.topK(acc, k, wq)
	if err != nil {
		return nil, stats, err
	}
	return results, stats, nil
}

// ScoreDocs computes exact similarity scores for the nominated documents
// only, using skip-based cursor advancement. This is the librarian-side fast
// path of the Central Index methodology: only a fraction of each inverted
// list is decoded. Results are returned for every requested doc (score 0 if
// no query term matches), in the order requested.
func (e *Engine) ScoreDocs(query string, docs []uint32, weights map[string]float64) ([]Result, Stats, error) {
	var stats Stats
	freqs := e.ParseQuery(query)
	if len(freqs) == 0 {
		return nil, stats, ErrEmptyQuery
	}
	if weights == nil {
		weights = e.QueryWeights(freqs)
	}
	stats.TermsLooked = len(freqs)

	sorted := append([]uint32(nil), docs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	acc := make(map[uint32]float64, len(docs))

	for term := range freqs {
		wqt := weights[term]
		if wqt <= 0 {
			continue
		}
		cur, err := e.ix.Cursor(term)
		if err != nil {
			continue
		}
		stats.ListsFetched++
		stats.IndexBytesRead += e.listBytes(term)
		for _, d := range sorted {
			if !cur.Advance(d) {
				break
			}
			if p := cur.Posting(); p.Doc == d {
				acc[d] += wqt * math.Log(float64(p.FDT)+1)
			}
		}
		stats.PostingsDecoded += cur.DecodedPostings
	}
	stats.CandidateDocs = len(acc)

	wq := queryNorm(weights)
	out := make([]Result, len(docs))
	for i, d := range docs {
		wd, err := e.ix.DocWeight(d)
		if err != nil {
			return nil, stats, fmt.Errorf("search: score doc %d: %w", d, err)
		}
		score := 0.0
		if s := acc[d]; s > 0 && wd > 0 {
			score = s / (wq * wd)
		}
		out[i] = Result{Doc: d, Score: score}
	}
	return out, stats, nil
}

func (e *Engine) listBytes(term string) uint64 {
	// Approximate per-list compressed size: total postings bytes scaled by
	// the list's share of pointers. Exact sizes are private to the index;
	// the approximation is only used for cost accounting.
	ft := e.ix.TermFreq(term)
	if ft == 0 || e.ix.NumPostings() == 0 {
		return 0
	}
	return e.ix.SizeBytes() * uint64(ft) / e.ix.NumPostings()
}

// topK normalises accumulator values by W_q·W_d and selects the k highest
// scoring documents via a bounded min-heap, ties broken by ascending doc id.
func (e *Engine) topK(acc map[uint32]float64, k int, wq float64) ([]Result, error) {
	h := make(resultHeap, 0, k)
	for doc, s := range acc {
		wd, err := e.ix.DocWeight(doc)
		if err != nil {
			return nil, fmt.Errorf("search: weight for doc %d: %w", doc, err)
		}
		if wd == 0 {
			continue
		}
		r := Result{Doc: doc, Score: s / (wq * wd)}
		if len(h) < k {
			heap.Push(&h, r)
			continue
		}
		if lessResult(h[0], r) {
			h[0] = r
			heap.Fix(&h, 0)
		}
	}
	out := make([]Result, len(h))
	for i := len(h) - 1; i >= 0; i-- {
		r, ok := heap.Pop(&h).(Result)
		if !ok {
			return nil, errors.New("search: heap corrupted")
		}
		out[i] = r
	}
	return out, nil
}

// lessResult orders results worst-first for the min-heap: lower score is
// less; equal scores break toward higher doc id being less-preferred.
func lessResult(a, b Result) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.Doc > b.Doc
}

type resultHeap []Result

func (h resultHeap) Len() int            { return len(h) }
func (h resultHeap) Less(i, j int) bool  { return lessResult(h[i], h[j]) }
func (h resultHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *resultHeap) Push(x interface{}) { *h = append(*h, x.(Result)) }
func (h *resultHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// SortResults orders results by decreasing score, ties by ascending doc id.
// Exposed for receptionist-side merging.
func SortResults(rs []Result) {
	sort.Slice(rs, func(i, j int) bool { return lessResult(rs[j], rs[i]) })
}
