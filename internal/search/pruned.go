package search

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"sort"

	"teraphim/internal/index"
	"teraphim/internal/textproc"
)

// PrunedEngine evaluates ranked queries against a frequency-sorted index
// (Persin, Zobel & Sacks-Davis) with per-query thresholding — the §5
// "future work" direction of the paper. Inverted lists are read in
// decreasing-f_dt order and abandoned once the remaining postings cannot
// contribute meaningfully, trading a controlled amount of effectiveness for
// a large reduction in index volume processed.
type PrunedEngine struct {
	fs       *index.FreqSorted
	analyzer *textproc.Analyzer
}

// NewPrunedEngine wraps a frequency-sorted index.
func NewPrunedEngine(fs *index.FreqSorted, analyzer *textproc.Analyzer) *PrunedEngine {
	return &PrunedEngine{fs: fs, analyzer: analyzer}
}

// Thresholds tunes pruning. Both are fractions of the query's largest
// possible single-posting contribution c_max = max_t w_qt·log(maxFDT_t+1):
//
//   - Insert: a posting below Insert·c_max may update an existing
//     accumulator but no longer creates one (bounding accumulator memory).
//   - Add: a posting below Add·c_max ends its list entirely.
//
// Zero thresholds reproduce exact evaluation. Because contributions are
// log-compressed, the smallest possible contribution of a list is
// log(2)/log(maxFDT+1) of its largest — so useful Add thresholds sit above
// that floor (≈0.3–0.5 on this corpus); the f_dt=1 runs they cut hold most
// of each list's postings, which is where Persin et al.'s factor-of-five
// saving comes from.
type Thresholds struct {
	Insert float64
	Add    float64
}

// Rank evaluates a thresholded ranked query, returning the top k documents.
func (e *PrunedEngine) Rank(query string, k int, th Thresholds) ([]Result, Stats, error) {
	var stats Stats
	if k <= 0 {
		return nil, stats, fmt.Errorf("search: k must be positive, got %d", k)
	}
	terms := e.analyzer.Terms(nil, query)
	freqs := make(map[string]uint32, len(terms))
	for _, t := range terms {
		freqs[t]++
	}
	if len(freqs) == 0 {
		return nil, stats, ErrEmptyQuery
	}
	stats.TermsLooked = len(freqs)

	// Global query weights from the frequency-sorted index's statistics.
	n := float64(e.fs.NumDocs())
	type queryTerm struct {
		term string
		wqt  float64
		cap  float64 // largest possible contribution from this list
	}
	var qts []queryTerm
	var wq2 float64
	for t, fqt := range freqs {
		ft := e.fs.TermFreq(t)
		if ft == 0 {
			continue
		}
		wqt := math.Log(float64(fqt)+1) * math.Log(n/float64(ft)+1)
		wq2 += wqt * wqt
		qts = append(qts, queryTerm{
			term: t,
			wqt:  wqt,
			cap:  wqt * math.Log(float64(e.fs.MaxFDT(t))+1),
		})
	}
	if len(qts) == 0 {
		return nil, stats, nil
	}
	// Process terms in decreasing contribution capacity, as Persin et al.
	// prescribe, so accumulators are created by the most promising lists.
	sort.Slice(qts, func(i, j int) bool { return qts[i].cap > qts[j].cap })
	cMax := qts[0].cap

	acc := make(map[uint32]float64, 1024)
	for _, qt := range qts {
		cur, err := e.fs.Cursor(qt.term)
		if err != nil {
			continue
		}
		stats.ListsFetched++
		for {
			fdt, docs, ok := cur.NextRun()
			if !ok {
				break
			}
			contrib := qt.wqt * math.Log(float64(fdt)+1)
			if contrib < th.Add*cMax {
				// Runs only get smaller from here: abandon the list.
				break
			}
			createAllowed := contrib >= th.Insert*cMax
			for _, d := range docs {
				if cur, exists := acc[d]; exists {
					acc[d] = cur + contrib
				} else if createAllowed {
					acc[d] = contrib
				}
			}
		}
		stats.PostingsDecoded += cur.Decoded()
	}
	stats.CandidateDocs = len(acc)

	wq := math.Sqrt(wq2)
	if wq == 0 {
		wq = 1
	}
	h := make(resultHeap, 0, k)
	for doc, s := range acc {
		wd, err := e.fs.DocWeight(doc)
		if err != nil {
			return nil, stats, err
		}
		if wd == 0 {
			continue
		}
		r := Result{Doc: doc, Score: s / (wq * wd)}
		if len(h) < k {
			heap.Push(&h, r)
			continue
		}
		if lessResult(h[0], r) {
			h[0] = r
			heap.Fix(&h, 0)
		}
	}
	out := make([]Result, len(h))
	for i := len(h) - 1; i >= 0; i-- {
		r, ok := heap.Pop(&h).(Result)
		if !ok {
			return nil, stats, errors.New("search: heap corrupted")
		}
		out[i] = r
	}
	return out, stats, nil
}
