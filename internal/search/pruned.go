package search

import (
	"context"
	"fmt"
	"math"
	"slices"
	"strings"

	"teraphim/internal/index"
	"teraphim/internal/textproc"
)

// PrunedEngine evaluates ranked queries against a frequency-sorted index
// (Persin, Zobel & Sacks-Davis) with per-query thresholding — the §5
// "future work" direction of the paper. Inverted lists are read in
// decreasing-f_dt order and abandoned once the remaining postings cannot
// contribute meaningfully, trading a controlled amount of effectiveness for
// a large reduction in index volume processed.
type PrunedEngine struct {
	fs       *index.FreqSorted
	analyzer *textproc.Analyzer
}

// NewPrunedEngine wraps a frequency-sorted index.
func NewPrunedEngine(fs *index.FreqSorted, analyzer *textproc.Analyzer) *PrunedEngine {
	return &PrunedEngine{fs: fs, analyzer: analyzer}
}

// Thresholds tunes pruning. Both are fractions of the query's largest
// possible single-posting contribution c_max = max_t w_qt·log(maxFDT_t+1):
//
//   - Insert: a posting below Insert·c_max may update an existing
//     accumulator but no longer creates one (bounding accumulator memory).
//   - Add: a posting below Add·c_max ends its list entirely.
//
// Zero thresholds reproduce exact evaluation. Because contributions are
// log-compressed, the smallest possible contribution of a list is
// log(2)/log(maxFDT+1) of its largest — so useful Add thresholds sit above
// that floor (≈0.3–0.5 on this corpus); the f_dt=1 runs they cut hold most
// of each list's postings, which is where Persin et al.'s factor-of-five
// saving comes from.
type Thresholds struct {
	Insert float64
	Add    float64
}

// Rank evaluates a thresholded ranked query, returning the top k documents.
// Scratch state comes from the shared pool; use RankWith to supply your own.
func (e *PrunedEngine) Rank(query string, k int, th Thresholds) (Ranking, error) {
	return e.RankContext(context.Background(), query, k, th)
}

// RankContext is Rank honouring a context, checked between inverted lists
// exactly like Engine.RankContext, so long pruned evaluations stop promptly
// when the caller's deadline passes.
func (e *PrunedEngine) RankContext(ctx context.Context, query string, k int, th Thresholds) (Ranking, error) {
	s := GetScratch()
	defer s.Release()
	results, stats, err := e.rankWith(ctx, s, query, k, th)
	return Ranking{Results: results, Stats: stats}, err
}

// RankWith is Rank running on a caller-owned Scratch: the same flat
// epoch-stamped accumulators, memoised log weights, and non-boxing top-k
// selector as the document-sorted kernel, driving the run-decoded cursor.
func (e *PrunedEngine) RankWith(s *Scratch, query string, k int, th Thresholds) ([]Result, Stats, error) {
	return e.rankWith(nil, s, query, k, th)
}

// rankWith is the shared kernel behind Rank/RankContext/RankWith; a nil ctx
// skips the cancellation checks, as in Engine.rankWith.
func (e *PrunedEngine) rankWith(ctx context.Context, s *Scratch, query string, k int, th Thresholds) ([]Result, Stats, error) {
	var stats Stats
	if k <= 0 {
		return nil, stats, fmt.Errorf("search: k must be positive, got %d", k)
	}
	parseQueryInto(s, e.analyzer, query)
	if len(s.qterms) == 0 {
		return nil, stats, ErrEmptyQuery
	}
	stats.TermsLooked = len(s.qterms)

	// Global query weights from the frequency-sorted index's statistics;
	// contribCap is the largest possible contribution of each term's list.
	n := float64(e.fs.NumDocs())
	var wq2 float64
	matched := 0
	for i := range s.qterms {
		qt := &s.qterms[i]
		ft := e.fs.TermFreq(qt.term)
		if ft == 0 {
			qt.wqt, qt.contribCap = 0, 0
			continue
		}
		matched++
		qt.wqt = logF1(qt.fqt) * math.Log(n/float64(ft)+1)
		wq2 += qt.wqt * qt.wqt
		qt.contribCap = qt.wqt * logF1(e.fs.MaxFDT(qt.term))
	}
	if matched == 0 {
		return nil, stats, nil
	}
	// Process terms in decreasing contribution capacity, as Persin et al.
	// prescribe, so accumulators are created by the most promising lists.
	// The order must be a deterministic total order: with Insert > 0, which
	// list runs first decides which accumulators exist when later lists may
	// only update (addExisting), so any tie-order wobble between equal-cap
	// terms changes the ranking itself. Stable sort plus a term-string
	// tie-break pins it.
	slices.SortStableFunc(s.qterms, func(a, b queryTerm) int {
		switch {
		case a.contribCap > b.contribCap:
			return -1
		case a.contribCap < b.contribCap:
			return 1
		default:
			return strings.Compare(a.term, b.term)
		}
	})
	cMax := s.qterms[0].contribCap

	numDocs := e.fs.NumDocs()
	s.reset(numDocs)
	for i := range s.qterms {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, stats, err
			}
		}
		qt := &s.qterms[i]
		if qt.wqt <= 0 {
			continue
		}
		if err := e.fs.ResetCursor(&s.fcur, qt.term); err != nil {
			continue
		}
		stats.ListsFetched++
		stats.IndexBytesRead += e.fs.ListBytes(qt.term)
		for {
			fdt, docs, ok := s.fcur.NextRun()
			if !ok {
				break
			}
			contrib := qt.wqt * logF1(fdt)
			if contrib < th.Add*cMax {
				// Runs only get smaller from here: abandon the list.
				break
			}
			if contrib >= th.Insert*cMax {
				for _, d := range docs {
					if d >= numDocs {
						continue
					}
					s.add(d, contrib)
				}
			} else {
				for _, d := range docs {
					if d >= numDocs {
						continue
					}
					s.addExisting(d, contrib)
				}
			}
		}
		stats.PostingsDecoded += s.fcur.Decoded()
	}
	stats.CandidateDocs = len(s.touched)

	wq := math.Sqrt(wq2)
	if wq == 0 {
		wq = 1
	}
	inv := e.fs.InvDocWeights()
	sel := NewTopK(k, lessResult, s.heap)
	for _, d := range s.touched {
		iw := inv[d]
		if iw == 0 {
			continue
		}
		sel.Offer(Result{Doc: d, Score: s.acc[d] * iw / wq})
	}
	ranked := sel.Extract()
	out := make([]Result, len(ranked))
	copy(out, ranked)
	s.heap = ranked[:0]
	return out, stats, nil
}
