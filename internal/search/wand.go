package search

import (
	"context"
	"math"
	"slices"
)

// runWAND is the WAND evaluator (Broder et al.'s weak-AND, on the shared
// machinery in maxscore.go). Live terms stay sorted by current document;
// the pivot is the first position whose cumulative caps — every list at or
// before it — could still reach θ under the most favourable normalisation.
// Documents before the pivot provably cannot, so when the leading cursor is
// behind the pivot it skip-seeks straight to it (Advance over the skip
// structure, decoding only the landing block); only when the leading
// cursors all sit on the pivot is a document fully scored. Pruning, scoring
// order, and slack discipline match runMaxScore, so the output is
// bit-identical to exhaustive evaluation.
func (e *Engine) runWAND(ctx context.Context, s *Scratch, sel *TopK[Result], wq float64, stats *Stats) error {
	live := s.live
	if len(live) == 0 {
		return nil
	}
	inv := e.ix.InvDocWeights()
	scaleMax := e.ix.MaxInvDocWeight() / wq
	numDocs := e.ix.NumDocs()
	s.contrib = ensureFloats(s.contrib, len(s.qterms))

	slices.SortFunc(live, cmpLiveDoc)
	theta := math.Inf(-1)
	steps := 0
	for len(live) > 0 {
		if ctx != nil {
			if steps++; steps&(ctxCheckInterval-1) == 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
		}
		// Pivot selection over the doc-sorted lists.
		p := -1
		capSum := 0.0
		for i := range live {
			capSum += live[i].cap
			if capSum*scaleMax*boundSlack >= theta {
				p = i
				break
			}
		}
		if p < 0 {
			break // all remaining lists together cannot beat θ
		}
		pivot := live[p].doc

		if live[0].doc == pivot {
			// Every list up to p sits on the pivot: score it fully,
			// including any further lists that also reached it.
			for p+1 < len(live) && live[p+1].doc == pivot {
				p++
			}
			if pivot < numDocs {
				stats.CandidateDocs++
				for i := 0; i <= p; i++ {
					lt := &live[i]
					s.contrib[lt.qi] = s.qterms[lt.qi].wqt * logF1(lt.fdt)
				}
				scoreCandidate(s, sel, pivot, inv[pivot], wq)
				if r, full := sel.Threshold(); full && r.Score > theta {
					theta = r.Score
				}
			}
			compact := false
			for i := 0; i <= p; i++ {
				lt := &live[i]
				c := &s.curs[lt.ci]
				if c.Next() {
					np := c.Posting()
					lt.doc, lt.fdt = np.Doc, np.FDT
				} else {
					lt.doc = docExhausted
					compact = true
				}
			}
			if compact {
				live = compactLive(live)
				s.live = live
			}
		} else {
			// Jump the longest pre-pivot list to the pivot: one skip-seek
			// bypasses the most postings, and the next pivot round re-sorts.
			pick, bestFT := -1, uint32(0)
			for i := 0; i < p; i++ {
				if live[i].doc >= pivot {
					break // doc-sorted: the rest already reached the pivot
				}
				if ft := s.curs[live[i].ci].FT(); pick < 0 || ft > bestFT {
					pick, bestFT = i, ft
				}
			}
			lt := &live[pick]
			c := &s.curs[lt.ci]
			if c.Advance(pivot) {
				np := c.Posting()
				lt.doc, lt.fdt = np.Doc, np.FDT
			} else {
				lt.doc = docExhausted
				live = compactLive(live)
				s.live = live
			}
		}
		slices.SortFunc(live, cmpLiveDoc)
	}
	return nil
}
