package search

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

// dynamicEvaluators are the two rank-safe pruning evaluators under test.
var dynamicEvaluators = []Evaluator{EvalMaxScore, EvalWAND}

// TestDynamicPruningGoldenRankSafety is the rank-safety wall: MaxScore and
// WAND must return exactly the documents the exact evaluator returns, with
// bit-identical scores (asserted exactly — the evaluators reproduce the
// exact kernel's summation order — with the ISSUE's 1e-9 bound implied), at
// every tested k, with both local (MS/CN) and explicit (CV) weights.
func TestDynamicPruningGoldenRankSafety(t *testing.T) {
	e, queries := goldenCorpus(t)
	for _, eval := range dynamicEvaluators {
		for _, k := range []int{1, 10, 100} {
			for _, q := range queries {
				for _, mode := range []string{"local", "explicit"} {
					var weights map[string]float64
					if mode == "explicit" {
						weights = e.QueryWeights(e.ParseQuery(q))
					}
					exact, err := e.Rank(q, k, weights)
					if err != nil {
						t.Fatalf("exact k=%d query %q (%s): %v", k, q, mode, err)
					}
					got, err := e.RankEval(q, k, weights, eval)
					if err != nil {
						t.Fatalf("%v k=%d query %q (%s): %v", eval, k, q, mode, err)
					}
					assertSameRanking(t, fmt.Sprintf("%v k=%d query %q (%s)", eval, k, q, mode),
						got.Results, exact.Results)
				}
			}
		}
	}
}

func assertSameRanking(t *testing.T, label string, got, want []Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, exact has %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i].Doc != want[i].Doc {
			t.Fatalf("%s rank %d: doc %d, exact doc %d", label, i, got[i].Doc, want[i].Doc)
		}
		if got[i].Score != want[i].Score {
			t.Fatalf("%s rank %d doc %d: score %.17g, exact %.17g",
				label, i, got[i].Doc, got[i].Score, want[i].Score)
		}
	}
}

// TestDynamicPruningRandomizedParity hammers the evaluators with random
// corpora and random queries across several seeds — small collections where
// lists are shorter than a skip block, single-term queries, absent terms,
// high-k requests exceeding the candidate set.
func TestDynamicPruningRandomizedParity(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nDocs := 50 + rng.Intn(400)
		vocab := 5 + rng.Intn(60)
		var docs []string
		for d := 0; d < nDocs; d++ {
			var sb []string
			for i, n := 0, 1+rng.Intn(30); i < n; i++ {
				sb = append(sb, "w"+itoa(rng.Intn(vocab)))
			}
			docs = append(docs, join(sb))
		}
		e := buildEngine(t, docs)
		for trial := 0; trial < 25; trial++ {
			var qt []string
			for i, n := 0, 1+rng.Intn(6); i < n; i++ {
				qt = append(qt, "w"+itoa(rng.Intn(vocab+3))) // +3: sometimes absent
			}
			q := join(qt)
			k := 1 + rng.Intn(nDocs+10)
			exact, exactErr := e.Rank(q, k, nil)
			for _, eval := range dynamicEvaluators {
				got, err := e.RankEval(q, k, nil, eval)
				if (err == nil) != (exactErr == nil) || (err != nil && !errors.Is(err, exactErr) && err.Error() != exactErr.Error()) {
					t.Fatalf("seed %d %v query %q k=%d: err %v, exact err %v", seed, eval, q, k, err, exactErr)
				}
				if err != nil {
					continue
				}
				assertSameRanking(t, fmt.Sprintf("seed %d %v query %q k=%d", seed, eval, q, k),
					got.Results, exact.Results)
			}
		}
	}
}

// TestDynamicPruningStatsUnpruned pins the metrics-accounting contract:
// with k at least the candidate-set size no pruning can trigger, and every
// Stats counter — lists fetched, bytes read, postings decoded, candidates
// scored, terms looked — must equal the exact evaluator's exactly. Smaller
// k may legitimately drop PostingsDecoded/CandidateDocs (that is the whole
// point), but never the list-level charges.
func TestDynamicPruningStatsUnpruned(t *testing.T) {
	e, queries := goldenCorpus(t)
	k := int(e.Index().NumDocs()) + 1
	for _, q := range queries {
		exact, err := e.Rank(q, k, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, eval := range dynamicEvaluators {
			got, err := e.RankEval(q, k, nil, eval)
			if err != nil {
				t.Fatal(err)
			}
			if got.Stats != exact.Stats {
				t.Fatalf("%v query %q: unpruned stats %+v, exact %+v", eval, q, got.Stats, exact.Stats)
			}
		}
	}
}

// TestDynamicPruningSavesWork verifies pruning actually happens at small k:
// fewer candidates fully scored and no more postings decoded than
// exhaustive evaluation, while (rank safety, checked elsewhere) returning
// identical answers.
func TestDynamicPruningSavesWork(t *testing.T) {
	e, queries := goldenCorpus(t)
	for _, eval := range dynamicEvaluators {
		saved := false
		for _, q := range queries {
			exact, err := e.Rank(q, 10, nil)
			if err != nil {
				t.Fatal(err)
			}
			got, err := e.RankEval(q, 10, nil, eval)
			if err != nil {
				t.Fatal(err)
			}
			if got.Stats.CandidateDocs > exact.Stats.CandidateDocs {
				t.Fatalf("%v query %q: %d candidates scored, exact %d", eval, q, got.Stats.CandidateDocs, exact.Stats.CandidateDocs)
			}
			if got.Stats.PostingsDecoded > exact.Stats.PostingsDecoded {
				t.Fatalf("%v query %q: %d postings decoded, exact %d", eval, q, got.Stats.PostingsDecoded, exact.Stats.PostingsDecoded)
			}
			if got.Stats.CandidateDocs < exact.Stats.CandidateDocs/2 {
				saved = true
			}
		}
		if !saved {
			t.Fatalf("%v: no query saved at least half the candidates at k=10", eval)
		}
	}
}

// TestDynamicPruningAllocations pins the zero-steady-state-allocation
// property on the new evaluators: a warmed-up caller-owned-Scratch
// evaluation allocates at most the returned result slice.
func TestDynamicPruningAllocations(t *testing.T) {
	e, queries := goldenCorpus(t)
	for _, eval := range dynamicEvaluators {
		s := NewScratch()
		for _, q := range queries {
			if _, _, err := e.RankWithEval(s, q, 100, nil, eval); err != nil {
				t.Fatal(err)
			}
		}
		for _, q := range queries {
			q := q
			allocs := testing.AllocsPerRun(50, func() {
				if _, _, err := e.RankWithEval(s, q, 10, nil, eval); err != nil {
					t.Fatal(err)
				}
			})
			if allocs > 2 {
				t.Fatalf("%v query %q: %v allocs per steady-state rank, want <= 2", eval, q, allocs)
			}
		}
	}
}

// TestRankContextEvalCancellation: a pre-cancelled context stops every
// evaluator before (or promptly after) it starts.
func TestRankContextEvalCancellation(t *testing.T) {
	e, queries := goldenCorpus(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, eval := range []Evaluator{EvalExact, EvalMaxScore, EvalWAND} {
		_, err := e.RankContextEval(ctx, queries[0], 10, nil, eval)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%v: err = %v, want context.Canceled", eval, err)
		}
	}
}

// TestEvaluatorValidation: unknown evaluator values are rejected up front
// with the typed error, and the parse/String round trip holds.
func TestEvaluatorValidation(t *testing.T) {
	e, queries := goldenCorpus(t)
	if _, err := e.RankEval(queries[0], 10, nil, Evaluator(9)); !errors.Is(err, ErrUnknownEvaluator) {
		t.Fatalf("err = %v, want ErrUnknownEvaluator", err)
	}
	for _, eval := range []Evaluator{EvalExact, EvalMaxScore, EvalWAND} {
		got, err := ParseEvaluator(eval.String())
		if err != nil || got != eval {
			t.Fatalf("ParseEvaluator(%q) = %v, %v", eval.String(), got, err)
		}
	}
	if _, err := ParseEvaluator("bm25"); !errors.Is(err, ErrUnknownEvaluator) {
		t.Fatalf("ParseEvaluator(bm25) err = %v, want ErrUnknownEvaluator", err)
	}
	if got, err := ParseEvaluator(""); err != nil || got != EvalExact {
		t.Fatalf("ParseEvaluator(\"\") = %v, %v, want EvalExact", got, err)
	}
	if Evaluator(9).Valid() {
		t.Fatal("Evaluator(9).Valid() = true")
	}
}

// TestMaxFDTAccessors pins the lazily-built document-sorted MaxFDT table
// against a brute-force recount, and MaxInvDocWeight against the weight
// table.
func TestMaxFDTAccessors(t *testing.T) {
	e, _ := goldenCorpus(t)
	ix := e.Index()
	ix.Terms(func(term string, ft uint32) bool {
		cur, err := ix.Cursor(term)
		if err != nil {
			t.Fatal(err)
		}
		var want uint32
		for cur.Next() {
			if p := cur.Posting(); p.FDT > want {
				want = p.FDT
			}
		}
		if got := ix.MaxFDT(term); got != want {
			t.Fatalf("MaxFDT(%q) = %d, want %d", term, got, want)
		}
		return true
	})
	if ix.MaxFDT("no-such-term") != 0 {
		t.Fatal("MaxFDT of absent term != 0")
	}
	inv := ix.InvDocWeights()
	want := 0.0
	for _, v := range inv {
		if v > want {
			want = v
		}
	}
	if got := ix.MaxInvDocWeight(); got != want || !(got > 0) {
		t.Fatalf("MaxInvDocWeight = %v, want %v", got, want)
	}
}
