package search

import (
	"math"
	"sync"

	"teraphim/internal/index"
)

// logTableSize bounds the memoised log(f+1) table. Within-document and
// within-query frequencies are small integers (MG truncates term buffers and
// documents are finite), so in practice every lookup hits the table; larger
// frequencies fall back to math.Log and remain bit-identical.
const logTableSize = 1024

var logTable = func() [logTableSize]float64 {
	var t [logTableSize]float64
	for i := range t {
		t[i] = math.Log(float64(i) + 1)
	}
	return t
}()

// logF1 returns log(f+1), memoised for small f. The table entries are the
// very values math.Log would produce, so memoisation never changes a score.
func logF1(f uint32) float64 {
	if f < logTableSize {
		return logTable[f]
	}
	return math.Log(float64(f) + 1)
}

// queryTerm is one unique query term with its frequency and resolved weight.
// contribCap (pruned evaluation only) is the largest contribution any
// posting of the term's list can make.
type queryTerm struct {
	term       string
	fqt        uint32
	wqt        float64
	contribCap float64
}

// Scratch holds the reusable per-query state of the ranked-evaluation
// kernel: flat epoch-stamped accumulators sized to the collection, decode
// and tokenizer buffers, a pooled term cursor, and top-k heap backing. One
// Scratch serves one query at a time; recycle it through GetScratch/Release
// (a sync.Pool, safe under the connection Pool's concurrent sessions — each
// Get hands out exclusive ownership) or own one per session.
//
// The accumulator array replaces the per-query map the seed evaluator
// allocated: clearing between queries is a single epoch increment, and the
// touched list recovers the candidate set without scanning the collection.
type Scratch struct {
	acc     []float64 // accumulator per document; live iff stamp matches
	stamp   []uint32  // epoch stamp per document
	epoch   uint32
	touched []uint32 // documents with a live accumulator, first-touch order

	raw    []string // tokenizer buffer
	terms  []string // analysed-terms buffer
	qterms []queryTerm

	heap   []Result // top-k selector backing
	docbuf []uint32 // ScoreDocs sorted-target buffer

	cur  index.TermCursor // reusable block-decoding cursor
	fcur index.FreqCursor // reusable frequency-sorted cursor (pruned engine)

	// Document-at-a-time state for the dynamic-pruning evaluators
	// (MaxScore/WAND), which hold one open cursor per matched term instead
	// of draining lists one at a time. All grow-only, so steady state stays
	// allocation-free.
	curs    []index.TermCursor // one cursor per matched term
	live    []liveTerm         // per-matched-term pruning state
	contrib []float64          // per-qterm contributions of one candidate, appearance order
	prefix  []float64          // cumulative cap sums over the sorted live terms
}

// ensureCursors grows s.curs to hold at least n cursors, carrying the old
// cursors (and their decode buffers) over.
func (s *Scratch) ensureCursors(n int) {
	if len(s.curs) < n {
		curs := make([]index.TermCursor, n)
		copy(curs, s.curs)
		s.curs = curs
	}
}

// ensureFloats returns buf grown to exactly n zeroed entries.
func ensureFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	buf = buf[:n]
	clear(buf)
	return buf
}

// NewScratch returns an empty Scratch; its buffers grow on first use.
func NewScratch() *Scratch { return &Scratch{} }

var scratchPool = sync.Pool{New: func() any { return NewScratch() }}

// GetScratch borrows a Scratch from the shared pool. The caller owns it
// exclusively until Release.
func GetScratch() *Scratch { return scratchPool.Get().(*Scratch) }

// Release returns the Scratch to the shared pool. The Scratch must not be
// used afterwards, and no slice written into it may escape (Rank and
// ScoreDocs copy results out for exactly that reason).
func (s *Scratch) Release() { scratchPool.Put(s) }

// reset prepares the accumulators for a query over numDocs documents:
// ensure capacity, invalidate every entry by bumping the epoch, and clear
// the touched list.
func (s *Scratch) reset(numDocs uint32) {
	if uint32(len(s.acc)) < numDocs {
		s.acc = make([]float64, numDocs)
		s.stamp = make([]uint32, numDocs)
		s.epoch = 0
	}
	s.epoch++
	if s.epoch == 0 { // epoch wrapped: stamps from 2^32 queries ago collide
		clear(s.stamp)
		s.epoch = 1
	}
	s.touched = s.touched[:0]
}

// add accumulates w into doc's accumulator, creating it if this is the
// first contribution of the query.
func (s *Scratch) add(doc uint32, w float64) {
	if s.stamp[doc] == s.epoch {
		s.acc[doc] += w
		return
	}
	s.stamp[doc] = s.epoch
	s.acc[doc] = w
	s.touched = append(s.touched, doc)
}

// addExisting accumulates w only into an accumulator some earlier
// contribution created — the insert-thresholded mode of the pruned
// evaluator.
func (s *Scratch) addExisting(doc uint32, w float64) {
	if s.stamp[doc] == s.epoch {
		s.acc[doc] += w
	}
}

// get returns doc's accumulated value, or 0 when untouched this query.
func (s *Scratch) get(doc uint32) float64 {
	if s.stamp[doc] == s.epoch {
		return s.acc[doc]
	}
	return 0
}
