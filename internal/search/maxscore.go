package search

import (
	"context"
	"math"
	"slices"
)

// This file holds the document-at-a-time machinery shared by the rank-safe
// dynamic-pruning evaluators, plus the MaxScore evaluator itself (the WAND
// variant lives in wand.go).
//
// Both evaluators prune with exact per-list score caps: no posting of term
// t can contribute more than cap_t = w_qt·log(MaxFDT_t+1), because logF1 is
// monotone and IEEE multiplication by the positive w_qt preserves order —
// the comparison is against the very float64s the exact kernel produces,
// not a mathematical idealisation. A document skipped because its summed
// caps cannot reach the current top-k threshold θ therefore provably cannot
// displace any retained answer, which is what makes the pruning rank-safe.
//
// Two details keep the output bit-identical to exhaustive evaluation rather
// than merely equivalent:
//
//   - Contributions of a scored candidate are buffered per query term and
//     summed in query-appearance order — the order the exact kernel's
//     term-at-a-time accumulators add them — and the final normalisation is
//     the same acc·(1/W_d)/W_q expression. Identical operands in identical
//     order give identical float64s.
//   - Cap-sum bounds are compared against θ after multiplying by boundSlack
//     (> 1), so a candidate is only skipped when its bound is below θ by
//     more than the worst-case rounding drift of the bound arithmetic
//     itself. Candidates with true score equal to θ are never pruned —
//     necessary because the selector admits an equal-score candidate with a
//     lower document id.

// boundSlack absorbs the rounding drift of cap summation and scaling:
// bounds are compared as bound·boundSlack < θ, so only candidates below the
// threshold by more than ~1e-9 relative are skipped. The drift of summing a
// query's worth of terms is orders of magnitude below that; the slack only
// costs scoring a few near-threshold candidates that exhaustive evaluation
// would have scored anyway.
const boundSlack = 1 + 1e-9

// ctxCheckInterval is how many document-at-a-time iterations run between
// cancellation checks, mirroring the exact kernel's between-lists checks.
const ctxCheckInterval = 256

// docExhausted marks a live term whose cursor has no postings left; the
// entry is removed at the next compaction.
const docExhausted = ^uint32(0)

// liveTerm is the dynamic-pruning state of one matched query term: which
// query term it is, which open cursor walks its list, the list's exact
// contribution cap, and the cursor's current posting.
type liveTerm struct {
	qi  int     // index into Scratch.qterms (query-appearance order)
	ci  int     // index into Scratch.curs
	cap float64 // w_qt·log(MaxFDT+1): no posting can contribute more
	doc uint32  // current posting's document, docExhausted when drained
	fdt uint32  // current posting's f_dt
}

// cmpLiveCap orders live terms by ascending cap, ties by query position —
// the MaxScore partition order. Package-level so sorting never allocates a
// capturing closure.
func cmpLiveCap(a, b liveTerm) int {
	switch {
	case a.cap < b.cap:
		return -1
	case a.cap > b.cap:
		return 1
	case a.qi < b.qi:
		return -1
	case a.qi > b.qi:
		return 1
	}
	return 0
}

// cmpLiveDoc orders live terms by ascending current document, ties by query
// position — the WAND pivot order.
func cmpLiveDoc(a, b liveTerm) int {
	switch {
	case a.doc < b.doc:
		return -1
	case a.doc > b.doc:
		return 1
	case a.qi < b.qi:
		return -1
	case a.qi > b.qi:
		return 1
	}
	return 0
}

// daatOpen opens one cursor per positive-weight query term present in the
// index and primes s.live with each list's first posting and cap. List-level
// accounting (lists fetched, bytes touched) happens here, identically to the
// exact kernel's per-list charges. Returns how many cursors were opened so
// the caller can collect their DecodedPostings afterwards.
func (e *Engine) daatOpen(s *Scratch, stats *Stats) int {
	s.ensureCursors(len(s.qterms))
	s.live = s.live[:0]
	opened := 0
	for i := range s.qterms {
		qt := &s.qterms[i]
		if qt.wqt <= 0 {
			continue
		}
		c := &s.curs[opened]
		if err := e.ix.ResetCursor(c, qt.term); err != nil {
			continue // term in the weight map but not this collection
		}
		stats.ListsFetched++
		stats.IndexBytesRead += e.ix.ListBytes(qt.term)
		opened++
		if !c.Next() {
			continue // immediately-corrupt list: nothing to evaluate
		}
		p := c.Posting()
		s.live = append(s.live, liveTerm{
			qi:  i,
			ci:  opened - 1,
			cap: qt.wqt * logF1(e.ix.MaxFDT(qt.term)),
			doc: p.Doc,
			fdt: p.FDT,
		})
	}
	return opened
}

// compactLive drops exhausted entries in place, preserving order.
func compactLive(live []liveTerm) []liveTerm {
	kept := live[:0]
	for i := range live {
		if live[i].doc != docExhausted {
			kept = append(kept, live[i])
		}
	}
	return kept
}

// scoreCandidate folds the contributions gathered in s.contrib into one
// accumulator in query-appearance order — the exact kernel's summation
// order, so the float64 is bit-identical — clears the buffer, and offers
// the document. iw zero (W_d = 0) skips the offer exactly as topK does.
func scoreCandidate(s *Scratch, sel *TopK[Result], d uint32, iw, wq float64) {
	var acc float64
	for i := range s.contrib {
		c := s.contrib[i]
		if c == 0 {
			continue
		}
		s.contrib[i] = 0
		acc += c
	}
	if iw == 0 {
		return
	}
	sel.Offer(Result{Doc: d, Score: acc * iw / wq})
}

// clearContrib zeroes the contribution buffer of an abandoned candidate.
func clearContrib(s *Scratch) {
	for i := range s.contrib {
		s.contrib[i] = 0
	}
}

// rankDynamic runs one of the dynamic-pruning evaluators and finishes
// exactly like the exact kernel: postings accounting summed over every open
// cursor, results copied out of the pooled heap backing.
func (e *Engine) rankDynamic(ctx context.Context, s *Scratch, k int, wq float64, eval Evaluator, stats *Stats) ([]Result, error) {
	opened := e.daatOpen(s, stats)
	sel := NewTopK(k, lessResult, s.heap)
	var err error
	if eval == EvalMaxScore {
		err = e.runMaxScore(ctx, s, &sel, wq, stats)
	} else {
		err = e.runWAND(ctx, s, &sel, wq, stats)
	}
	for i := 0; i < opened; i++ {
		stats.PostingsDecoded += s.curs[i].DecodedPostings
	}
	ranked := sel.Extract()
	s.heap = ranked[:0] // recover (possibly grown) backing even on error
	if err != nil {
		return nil, err
	}
	out := make([]Result, len(ranked))
	copy(out, ranked)
	return out, nil
}

// runMaxScore is the MaxScore evaluator. Live terms are sorted by ascending
// cap; the leading lists whose cumulative caps cannot reach θ even under
// the most favourable document normalisation are non-essential: they never
// generate candidates, only confirm them. Candidates are the union of the
// essential lists' documents; each is bounded (essential contributions plus
// the non-essential caps, scaled by the candidate's own 1/W_d) before any
// non-essential list is probed, and the bound re-tightens after every
// probe, abandoning the candidate the moment it can no longer reach θ.
// Probes use the cursors' skip structure (Advance), so a non-essential
// list's postings between candidates are never decoded.
func (e *Engine) runMaxScore(ctx context.Context, s *Scratch, sel *TopK[Result], wq float64, stats *Stats) error {
	live := s.live
	if len(live) == 0 {
		return nil
	}
	slices.SortFunc(live, cmpLiveCap)

	inv := e.ix.InvDocWeights()
	scaleMax := e.ix.MaxInvDocWeight() / wq
	numDocs := e.ix.NumDocs()
	s.contrib = ensureFloats(s.contrib, len(s.qterms))
	s.prefix = ensureFloats(s.prefix, len(live))

	// prefix[i] = Σ caps of live[0..i]; rebuilt whenever the live set
	// shrinks. The essential boundary is re-derived from it (and the
	// current θ) every iteration — an O(terms) scan.
	sum := 0.0
	for i := range live {
		sum += live[i].cap
		s.prefix[i] = sum
	}

	theta := math.Inf(-1)
	steps := 0
	for {
		if ctx != nil {
			if steps++; steps&(ctxCheckInterval-1) == 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
		}
		ness := 0
		for ness < len(live) && s.prefix[ness]*scaleMax*boundSlack < theta {
			ness++
		}
		if ness >= len(live) {
			break // every list is non-essential: no document can beat θ
		}

		// Next candidate: the smallest current document of any essential list.
		d := live[ness].doc
		for i := ness + 1; i < len(live); i++ {
			if live[i].doc < d {
				d = live[i].doc
			}
		}

		// Gather the essential contributions at d.
		partial := 0.0
		for i := ness; i < len(live); i++ {
			lt := &live[i]
			if lt.doc != d {
				continue
			}
			c := s.qterms[lt.qi].wqt * logF1(lt.fdt)
			s.contrib[lt.qi] = c
			partial += c
		}

		compact := false
		evaluated := false
		if d < numDocs {
			iw := inv[d]
			scale := iw / wq
			rem := 0.0
			if ness > 0 {
				rem = s.prefix[ness-1]
			}
			if (partial+rem)*scale*boundSlack >= theta {
				// Probe non-essential lists in descending-cap order,
				// re-tightening the bound as caps become exact contributions.
				reachable := true
				for i := ness - 1; i >= 0; i-- {
					lt := &live[i]
					if lt.doc < d {
						c := &s.curs[lt.ci]
						if c.Advance(d) {
							p := c.Posting()
							lt.doc, lt.fdt = p.Doc, p.FDT
						} else {
							lt.doc = docExhausted
							compact = true
						}
					}
					if lt.doc == d {
						cb := s.qterms[lt.qi].wqt * logF1(lt.fdt)
						s.contrib[lt.qi] = cb
						partial += cb
					}
					rem = 0.0
					if i > 0 {
						rem = s.prefix[i-1]
					}
					if (partial+rem)*scale*boundSlack < theta {
						reachable = false
						break
					}
				}
				if reachable {
					stats.CandidateDocs++
					evaluated = true
					scoreCandidate(s, sel, d, iw, wq)
					if r, full := sel.Threshold(); full && r.Score > theta {
						theta = r.Score
					}
				}
			}
		}
		if !evaluated {
			clearContrib(s)
		}

		// Advance every essential cursor consumed at d (also past a corrupt
		// d ≥ numDocs, so the scan always makes progress).
		for i := ness; i < len(live); i++ {
			lt := &live[i]
			if lt.doc != d {
				continue
			}
			c := &s.curs[lt.ci]
			if c.Next() {
				p := c.Posting()
				lt.doc, lt.fdt = p.Doc, p.FDT
			} else {
				lt.doc = docExhausted
				compact = true
			}
		}
		if compact {
			live = compactLive(live)
			s.live = live
			if len(live) == 0 {
				break
			}
			sum := 0.0
			for i := range live {
				sum += live[i].cap
				s.prefix[i] = sum
			}
		}
	}
	return nil
}
