package search

import (
	"errors"
	"fmt"
)

// ErrUnknownEvaluator is returned when an Evaluator value is none of the
// declared constants — a typo'd option or a corrupt/newer wire value.
var ErrUnknownEvaluator = errors.New("search: unknown evaluator")

// Evaluator selects the ranked-evaluation algorithm the scoring kernel runs.
// All three produce identical rankings — MaxScore and WAND are rank-safe:
// they prune with exact per-term upper bounds (w_qt·log(MaxFDT_t+1), which
// no posting's contribution can exceed) and therefore return the same
// documents with the same scores as exhaustive evaluation, only touching
// far fewer postings and scoring far fewer candidates. That safety is what
// lets dynamic pruning run everywhere the exact kernel does — including
// CI-mode nomination, where k'·G candidates must be found cheaply — unlike
// PrunedEngine's Persin-style thresholds, which trade effectiveness.
//
// The zero value is EvalExact, so every pre-existing call site and wire
// frame keeps its behaviour; the numeric values are also the wire encoding
// carried by protocol.RankQuery.
type Evaluator uint8

const (
	// EvalExact is exhaustive term-at-a-time evaluation over document-sorted
	// lists — the seed kernel.
	EvalExact Evaluator = iota
	// EvalMaxScore partitions query terms into essential and non-essential
	// lists by their score caps (Turtle & Flood): candidates come from
	// essential lists only, and non-essential lists are probed via skip-seek
	// just for candidates whose bound still beats the top-k threshold.
	EvalMaxScore
	// EvalWAND evaluates document-at-a-time with pivot selection (Broder et
	// al.): cursors stay sorted by current document, and the pivot — the
	// first document whose cumulative caps could beat the threshold — is the
	// only one fully scored; cursors before it skip-seek straight to it.
	EvalWAND

	evalCount // one past the last valid evaluator
)

// Valid reports whether e is a declared evaluator.
func (e Evaluator) Valid() bool { return e < evalCount }

// String returns the evaluator's option-spelling name.
func (e Evaluator) String() string {
	switch e {
	case EvalExact:
		return "exact"
	case EvalMaxScore:
		return "maxscore"
	case EvalWAND:
		return "wand"
	default:
		return fmt.Sprintf("evaluator(%d)", uint8(e))
	}
}

// ParseEvaluator maps the option spellings ("exact", "maxscore", "wand")
// back to Evaluator values, for flag and config plumbing.
func ParseEvaluator(s string) (Evaluator, error) {
	switch s {
	case "exact", "":
		return EvalExact, nil
	case "maxscore":
		return EvalMaxScore, nil
	case "wand":
		return EvalWAND, nil
	default:
		return 0, fmt.Errorf("%w: %q", ErrUnknownEvaluator, s)
	}
}
