package search

import (
	"math"
	"math/rand"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"teraphim/internal/index"
	"teraphim/internal/textproc"
)

// plainAnalyzer keeps tests readable: no stopping, no stemming.
func plainAnalyzer() *textproc.Analyzer {
	return textproc.NewAnalyzer(textproc.WithoutStopwords(), textproc.WithoutStemming())
}

// buildEngine indexes docs (whitespace-separated terms) with the plain
// analyzer.
func buildEngine(t testing.TB, docs []string) *Engine {
	t.Helper()
	a := plainAnalyzer()
	b := index.NewBuilder()
	for _, d := range docs {
		b.Add(a.Terms(nil, d))
	}
	ix, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return NewEngine(ix, a)
}

var tinyDocs = []string{
	"cat dog cat",        // 0
	"dog fish",           // 1
	"cat fish bird fish", // 2
	"bird",               // 3
	"whale",              // 4
}

// refScore computes C(q,d) from first principles for the tiny corpus.
func refScore(t *testing.T, e *Engine, query string, doc uint32) float64 {
	t.Helper()
	freqs := e.ParseQuery(query)
	n := float64(e.Index().NumDocs())
	var wq2, dot float64
	for term, fqt := range freqs {
		ft := e.Index().TermFreq(term)
		if ft == 0 {
			continue
		}
		wqt := math.Log(float64(fqt)+1) * math.Log(n/float64(ft)+1)
		wq2 += wqt * wqt
		// find f_dt
		cur, err := e.Index().Cursor(term)
		if err != nil {
			continue
		}
		for cur.Next() {
			if p := cur.Posting(); p.Doc == doc {
				dot += wqt * math.Log(float64(p.FDT)+1)
			}
		}
	}
	if dot == 0 {
		return 0
	}
	wd, err := e.Index().DocWeight(doc)
	if err != nil {
		t.Fatal(err)
	}
	return dot / (math.Sqrt(wq2) * wd)
}

func TestRankAgainstReference(t *testing.T) {
	e := buildEngine(t, tinyDocs)
	ranking, err := e.Rank("cat fish", 10, nil)
	results, stats := ranking.Results, ranking.Stats
	if err != nil {
		t.Fatal(err)
	}
	if stats.ListsFetched != 2 {
		t.Errorf("ListsFetched = %d, want 2", stats.ListsFetched)
	}
	got := map[uint32]float64{}
	for _, r := range results {
		got[r.Doc] = r.Score
	}
	for _, doc := range []uint32{0, 1, 2} {
		want := refScore(t, e, "cat fish", doc)
		if math.Abs(got[doc]-want) > 1e-9 {
			t.Errorf("doc %d score = %g, want %g", doc, got[doc], want)
		}
	}
	if _, ok := got[3]; ok {
		t.Error("doc 3 has no query terms but was ranked")
	}
	// Results must be sorted by decreasing score.
	for i := 1; i < len(results); i++ {
		if results[i].Score > results[i-1].Score {
			t.Fatalf("results not sorted at %d", i)
		}
	}
}

func TestRankTopKBound(t *testing.T) {
	e := buildEngine(t, tinyDocs)
	ranking, err := e.Rank("cat dog fish bird", 2, nil)
	results := ranking.Results
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("k=2 returned %d results", len(results))
	}
	ranking, err = e.Rank("cat dog fish bird", 10, nil)
	all := ranking.Results
	if err != nil {
		t.Fatal(err)
	}
	if results[0] != all[0] || results[1] != all[1] {
		t.Fatalf("top-2 %v differs from head of full ranking %v", results, all[:2])
	}
}

func TestRankErrors(t *testing.T) {
	e := buildEngine(t, tinyDocs)
	if _, err := e.Rank("cat", 0, nil); err == nil {
		t.Error("k=0: want error")
	}
	if _, err := e.Rank("@@@ !!!", 5, nil); err != ErrEmptyQuery {
		t.Errorf("unindexable query: want ErrEmptyQuery, got %v", err)
	}
	ranking, err := e.Rank("zebra", 5, nil)
	results := ranking.Results
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Errorf("unknown term: got %d results", len(results))
	}
}

func TestRankWithSuppliedWeights(t *testing.T) {
	e := buildEngine(t, tinyDocs)
	// Weight only "fish"; "cat" must then contribute nothing.
	weights := map[string]float64{"fish": 2.0}
	ranking, err := e.Rank("cat fish", 10, weights)
	results := ranking.Results
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Doc == 0 {
			t.Error("doc 0 contains only cat; should not appear with fish-only weights")
		}
	}
	// Scaling all weights must not change the ranking order (cosine
	// normalises by W_q).
	w1 := map[string]float64{"cat": 1, "fish": 3}
	w2 := map[string]float64{"cat": 10, "fish": 30}
	ranking, err = e.Rank("cat fish", 10, w1)
	r1 := ranking.Results
	if err != nil {
		t.Fatal(err)
	}
	ranking, err = e.Rank("cat fish", 10, w2)
	r2 := ranking.Results
	if err != nil {
		t.Fatal(err)
	}
	if len(r1) != len(r2) {
		t.Fatalf("length mismatch %d vs %d", len(r1), len(r2))
	}
	for i := range r1 {
		if r1[i].Doc != r2[i].Doc {
			t.Fatalf("order differs at %d under scaled weights", i)
		}
		if math.Abs(r1[i].Score-r2[i].Score) > 1e-9 {
			t.Fatalf("score differs at %d: %g vs %g (cosine must normalise)", i, r1[i].Score, r2[i].Score)
		}
	}
}

func TestScoreDocsMatchesRank(t *testing.T) {
	e := buildEngine(t, tinyDocs)
	ranking, err := e.Rank("cat fish dog", 10, nil)
	full := ranking.Results
	if err != nil {
		t.Fatal(err)
	}
	want := map[uint32]float64{}
	for _, r := range full {
		want[r.Doc] = r.Score
	}
	docs := []uint32{2, 0, 4, 1}
	ranking, err = e.ScoreDocs("cat fish dog", docs, nil)
	scored := ranking.Results
	if err != nil {
		t.Fatal(err)
	}
	if len(scored) != len(docs) {
		t.Fatalf("ScoreDocs returned %d results for %d docs", len(scored), len(docs))
	}
	for i, r := range scored {
		if r.Doc != docs[i] {
			t.Fatalf("result %d is doc %d, want %d (order must be preserved)", i, r.Doc, docs[i])
		}
		if math.Abs(r.Score-want[r.Doc]) > 1e-9 {
			t.Fatalf("doc %d: ScoreDocs %g != Rank %g", r.Doc, r.Score, want[r.Doc])
		}
	}
}

func TestScoreDocsOutOfRange(t *testing.T) {
	e := buildEngine(t, tinyDocs)
	if _, err := e.ScoreDocs("cat", []uint32{99}, nil); err == nil {
		t.Fatal("out-of-range doc: want error")
	}
}

func TestScoreDocsSkipEfficiency(t *testing.T) {
	// On a large collection, scoring a handful of docs must decode far
	// fewer postings than a full scan.
	rng := rand.New(rand.NewSource(11))
	var docs []string
	for i := 0; i < 4000; i++ {
		var sb strings.Builder
		sb.WriteString("common ")
		sb.WriteString("t" + strconv.Itoa(rng.Intn(50)))
		docs = append(docs, sb.String())
	}
	e := buildEngine(t, docs)
	targets := []uint32{100, 2000, 3999}
	ranking0, err := e.ScoreDocs("common", targets, nil)
	stats := ranking0.Stats
	if err != nil {
		t.Fatal(err)
	}
	if stats.PostingsDecoded > 1000 {
		t.Fatalf("ScoreDocs decoded %d postings for 3 docs: skipping ineffective", stats.PostingsDecoded)
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{TermsLooked: 1, ListsFetched: 2, PostingsDecoded: 3, IndexBytesRead: 4, CandidateDocs: 5}
	b := Stats{TermsLooked: 10, ListsFetched: 20, PostingsDecoded: 30, IndexBytesRead: 40, CandidateDocs: 50}
	a.Add(b)
	want := Stats{TermsLooked: 11, ListsFetched: 22, PostingsDecoded: 33, IndexBytesRead: 44, CandidateDocs: 55}
	if a != want {
		t.Fatalf("Add = %+v, want %+v", a, want)
	}
}

func TestSortResults(t *testing.T) {
	rs := []Result{{Doc: 3, Score: 0.5}, {Doc: 1, Score: 0.9}, {Doc: 2, Score: 0.5}}
	SortResults(rs)
	want := []Result{{Doc: 1, Score: 0.9}, {Doc: 2, Score: 0.5}, {Doc: 3, Score: 0.5}}
	if !reflect.DeepEqual(rs, want) {
		t.Fatalf("SortResults = %v, want %v", rs, want)
	}
}

func TestBooleanQueries(t *testing.T) {
	e := buildEngine(t, tinyDocs)
	cases := []struct {
		expr string
		want []uint32
	}{
		{"cat", []uint32{0, 2}},
		{"cat AND fish", []uint32{2}},
		{"cat OR dog", []uint32{0, 1, 2}},
		{"cat AND NOT fish", []uint32{0}},
		{"NOT (cat OR dog OR fish OR bird)", []uint32{4}},
		{"(cat OR bird) AND fish", []uint32{2}},
		{"zebra", nil},
		{"zebra OR whale", []uint32{4}},
		{"cat and fish", []uint32{2}}, // lowercase keywords
	}
	for _, c := range cases {
		q, err := e.ParseBoolean(c.expr)
		if err != nil {
			t.Fatalf("parse %q: %v", c.expr, err)
		}
		got, _ := e.EvaluateBoolean(q)
		if len(got) == 0 {
			got = nil
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("eval %q = %v, want %v", c.expr, got, c.want)
		}
	}
}

func TestBooleanParseErrors(t *testing.T) {
	e := buildEngine(t, tinyDocs)
	for _, expr := range []string{"", "cat AND", "(cat", "cat)", "AND cat", "NOT"} {
		if _, err := e.ParseBoolean(expr); err == nil {
			t.Errorf("parse %q: want error", expr)
		}
	}
}

func TestBooleanHyphenatedToken(t *testing.T) {
	e := buildEngine(t, []string{"wide area network", "local area", "wide ocean"})
	q, err := e.ParseBoolean("wide-area")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := e.EvaluateBoolean(q)
	if !reflect.DeepEqual(got, []uint32{0}) {
		t.Fatalf("wide-area = %v, want [0]", got)
	}
}

func BenchmarkRank(b *testing.B) {
	rng := rand.New(rand.NewSource(21))
	docs := make([]string, 5000)
	for i := range docs {
		var sb strings.Builder
		for j := 0; j < 60; j++ {
			sb.WriteString("w" + strconv.Itoa(rng.Intn(2000)) + " ")
		}
		docs[i] = sb.String()
	}
	e := buildEngine(b, docs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Rank("w1 w2 w3 w4 w5 w6 w7 w8", 20, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScoreDocs(b *testing.B) {
	rng := rand.New(rand.NewSource(22))
	docs := make([]string, 5000)
	for i := range docs {
		var sb strings.Builder
		for j := 0; j < 60; j++ {
			sb.WriteString("w" + strconv.Itoa(rng.Intn(2000)) + " ")
		}
		docs[i] = sb.String()
	}
	e := buildEngine(b, docs)
	targets := []uint32{10, 500, 900, 2500, 4000, 4500}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.ScoreDocs("w1 w2 w3 w4 w5 w6 w7 w8", targets, nil); err != nil {
			b.Fatal(err)
		}
	}
}
