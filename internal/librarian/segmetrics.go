package librarian

import (
	"fmt"

	"teraphim/internal/obs"
)

// segMetrics is an UpdatableLibrarian's instrument set: the
// teraphim_ingest_* family tracks the producer/consumer pipeline and the
// teraphim_segment_* family the manifest shape and merge activity. Loaded
// through an atomic pointer like libMetrics, so instrumentation may be
// attached at any time and costs one nil check when absent.
type segMetrics struct {
	docsQueued   *obs.Counter
	docsIndexed  *obs.Counter
	batches      *obs.Counter
	ingestErrors *obs.Counter
	queueFull    *obs.Counter
	queueLen     *obs.Gauge
	buildSeconds *obs.Histogram

	segmentsLive *obs.Gauge
	docsTotal    *obs.Gauge
	merges       *obs.Counter
	mergeSeconds *obs.Histogram
}

// Instrument registers this librarian's ingest and segment instruments on
// reg and starts recording. All series carry a librarian label, matching
// the teraphim_librarian_* convention.
func (u *UpdatableLibrarian) Instrument(reg *obs.Registry) {
	labels := fmt.Sprintf("librarian=%q", u.name)
	m := &segMetrics{
		docsQueued: reg.Counter("teraphim_ingest_docs_queued_total",
			"Documents accepted onto the ingest queue.", labels),
		docsIndexed: reg.Counter("teraphim_ingest_docs_indexed_total",
			"Documents built into published segments.", labels),
		batches: reg.Counter("teraphim_ingest_batches_total",
			"Ingest batches built and published.", labels),
		ingestErrors: reg.Counter("teraphim_ingest_errors_total",
			"Ingest batches whose background build failed.", labels),
		queueFull: reg.Counter("teraphim_ingest_queue_full_total",
			"Ingest calls that found the queue full and had to wait.", labels),
		queueLen: reg.Gauge("teraphim_ingest_queue_depth",
			"Batches currently waiting on the ingest queue.", labels),
		buildSeconds: reg.Histogram("teraphim_ingest_build_seconds",
			"Per-batch segment build time (tokenize, index, compress).", labels, nil),
		segmentsLive: reg.Gauge("teraphim_segment_live",
			"Segments in the current manifest.", labels),
		docsTotal: reg.Gauge("teraphim_segment_docs",
			"Documents across the current manifest.", labels),
		merges: reg.Counter("teraphim_segment_merges_total",
			"Segment merges installed (background tiers and Compact).", labels),
		mergeSeconds: reg.Histogram("teraphim_segment_merge_seconds",
			"Per-merge compaction time.", labels, nil),
	}
	u.metrics.Store(m)
	snap := u.snapshot()
	m.segmentsLive.Set(int64(len(snap.segs)))
	m.docsTotal.Set(int64(snap.total))
}
