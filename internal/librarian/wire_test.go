package librarian

import (
	"context"
	"fmt"
	"net"
	"reflect"
	"testing"

	"teraphim/internal/protocol"
	"teraphim/internal/store"
)

// taggedSession negotiates a pipelined session with lib and returns the
// client conn plus the granted features. Callers speak tagged frames on the
// returned conn; closing it ends the session.
func taggedSession(t *testing.T, lib ConnServer) (net.Conn, protocol.Features) {
	t.Helper()
	client, server := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = lib.ServeConn(server)
	}()
	t.Cleanup(func() {
		client.Close()
		server.Close()
		<-done
	})
	if _, err := protocol.WriteMessage(client, &protocol.Hello{
		Features: protocol.FeaturePipelining | protocol.FeatureBatching,
	}); err != nil {
		t.Fatal(err)
	}
	reply, _, err := protocol.ReadMessage(client)
	if err != nil {
		t.Fatal(err)
	}
	hr, ok := reply.(*protocol.HelloReply)
	if !ok {
		t.Fatalf("Hello answered with %T", reply)
	}
	return client, hr.Features
}

// TestNegotiateTaggedSession checks the feature handshake and that a
// negotiated session demultiplexes by tag: two requests written back to
// back each get a reply carrying their own tag, whatever the completion
// order.
func TestNegotiateTaggedSession(t *testing.T) {
	lib := buildTestLibrarian(t)
	client, granted := taggedSession(t, lib)
	if !granted.Has(protocol.FeaturePipelining) || !granted.Has(protocol.FeatureBatching) {
		t.Fatalf("granted features = %v, want pipelining|batching", granted)
	}

	wr := &protocol.Writer{W: client, Tagged: true}
	rd := &protocol.Reader{R: client, Tagged: true}
	want := map[uint32]string{5: "cats", 9: "dogs"}
	for tag, q := range want {
		if _, err := wr.Write(tag, &protocol.RankQuery{Query: q, K: 3}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < len(want); i++ {
		msg, tag, _, err := rd.Read()
		if err != nil {
			t.Fatal(err)
		}
		q, ok := want[tag]
		if !ok {
			t.Fatalf("reply with unexpected tag %d", tag)
		}
		delete(want, tag)
		rr, ok := msg.(*protocol.RankReply)
		if !ok {
			t.Fatalf("tag %d (%q): got %T", tag, q, msg)
		}
		if len(rr.Results) == 0 {
			t.Fatalf("tag %d (%q): empty results", tag, q)
		}
	}
}

// TestSupportFeaturesMasksGrant pins the mixed-fleet escape hatch: a
// librarian configured to support nothing answers a feature-laden Hello
// with zero grants and keeps the session in the seed framing.
func TestSupportFeaturesMasksGrant(t *testing.T) {
	lib := buildTestLibrarian(t)
	lib.SupportFeatures(0)
	client, granted := taggedSession(t, lib)
	if granted != 0 {
		t.Fatalf("granted features = %v, want none", granted)
	}
	// The session must still speak the seed framing.
	if _, err := protocol.WriteMessage(client, &protocol.VocabRequest{}); err != nil {
		t.Fatal(err)
	}
	reply, _, err := protocol.ReadMessage(client)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := reply.(*protocol.VocabReply); !ok {
		t.Fatalf("VocabRequest answered with %T", reply)
	}
}

// TestHelloMidSessionNeverUpgrades checks that only a FIRST-frame Hello can
// switch the framing: a Hello arriving later in a seed session is answered
// in place with the pipelining bit masked, so the framing cannot change
// under an exchange already in flight.
func TestHelloMidSessionNeverUpgrades(t *testing.T) {
	lib := buildTestLibrarian(t)
	client, server := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = lib.ServeConn(server)
	}()
	defer func() {
		client.Close()
		server.Close()
		<-done
	}()
	if _, err := protocol.WriteMessage(client, &protocol.VocabRequest{}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := protocol.ReadMessage(client); err != nil {
		t.Fatal(err)
	}
	if _, err := protocol.WriteMessage(client, &protocol.Hello{
		Features: protocol.FeaturePipelining | protocol.FeatureBatching,
	}); err != nil {
		t.Fatal(err)
	}
	reply, _, err := protocol.ReadMessage(client)
	if err != nil {
		t.Fatal(err)
	}
	hr, ok := reply.(*protocol.HelloReply)
	if !ok {
		t.Fatalf("mid-session Hello answered with %T", reply)
	}
	if hr.Features.Has(protocol.FeaturePipelining) {
		t.Fatalf("mid-session Hello granted pipelining: %v", hr.Features)
	}
	// Still the seed framing afterwards.
	if _, err := protocol.WriteMessage(client, &protocol.RankQuery{Query: "cats", K: 3}); err != nil {
		t.Fatal(err)
	}
	if m, _, err := protocol.ReadMessage(client); err != nil {
		t.Fatal(err)
	} else if _, ok := m.(*protocol.RankReply); !ok {
		t.Fatalf("post-Hello RankQuery answered with %T", m)
	}
}

// TestUpdatablePipeliningUnderIngest pins the headline capability the
// rebuild-and-swap design could not offer: an updatable librarian grants
// FeaturePipelining, and a tagged session stays correct while segments land
// and merge underneath it. Every in-flight reply reflects exactly one
// published manifest, and once ingestion quiesces, a tagged ranking equals
// the seed-framing one frame for frame.
func TestUpdatablePipeliningUnderIngest(t *testing.T) {
	u, err := NewUpdatable("PL", synthCorpus(3), BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer u.Close()
	if err := u.ConfigureIngest(IngestConfig{MinSegmentDocs: 1, MergeFanIn: 2, QueueDepth: 32}); err != nil {
		t.Fatal(err)
	}

	client, granted := taggedSession(t, u)
	if !granted.Has(protocol.FeaturePipelining) {
		t.Fatalf("updatable librarian granted %v, want pipelining", granted)
	}
	wr := &protocol.Writer{W: client, Tagged: true}
	rd := &protocol.Reader{R: client, Tagged: true}

	ctx := context.Background()
	sizes := []int{1, 2, 3, 4}
	valid := map[int]bool{0: true}
	cum := 0
	for _, s := range sizes {
		cum += s
		valid[cum] = true
	}
	ingestDone := make(chan error, 1)
	go func() {
		for bi, s := range sizes {
			batch := make([]store.Document, s)
			for j := range batch {
				batch[j] = store.Document{Title: fmt.Sprintf("p%d-%d", bi, j), Text: "ubiquitous sentinel beacon"}
			}
			if err := u.Ingest(ctx, batch); err != nil {
				ingestDone <- err
				return
			}
		}
		ingestDone <- u.Flush(ctx)
	}()

	// Keep a window of frames in flight while batches publish and merge.
	const frames = 60
	const window = 8
	pending := map[uint32]bool{}
	next := uint32(1)
	for done := 0; done < frames; {
		for len(pending) < window && next <= frames {
			if _, err := wr.Write(next, &protocol.RankQuery{Query: "sentinel", K: 1000}); err != nil {
				t.Fatal(err)
			}
			pending[next] = true
			next++
		}
		msg, tag, _, err := rd.Read()
		if err != nil {
			t.Fatal(err)
		}
		if !pending[tag] {
			t.Fatalf("reply with unknown tag %d", tag)
		}
		delete(pending, tag)
		done++
		rr, ok := msg.(*protocol.RankReply)
		if !ok {
			t.Fatalf("tag %d: got %T", tag, msg)
		}
		if !valid[len(rr.Results)] {
			t.Fatalf("tag %d saw %d sentinel docs — a mixture of manifests", tag, len(rr.Results))
		}
	}
	if err := <-ingestDone; err != nil {
		t.Fatal(err)
	}

	// Quiesced: tagged and seed-framing sessions must answer identically.
	for _, q := range []string{"sentinel", "whale reef", "beacon tide"} {
		if _, err := wr.Write(77, &protocol.RankQuery{Query: q, K: 50}); err != nil {
			t.Fatal(err)
		}
		tagged, tag, _, err := rd.Read()
		if err != nil {
			t.Fatal(err)
		}
		if tag != 77 {
			t.Fatalf("parity frame answered with tag %d", tag)
		}
		seed := callServer(t, u, &protocol.RankQuery{Query: q, K: 50})
		if !reflect.DeepEqual(tagged, seed) {
			t.Fatalf("query %q: tagged %+v vs seed %+v", q, tagged, seed)
		}
	}
}

// TestBatchPerItemFailure checks that one bad query inside a batch gets its
// own ErrorReply while its batch-mates are answered normally, with the
// item-for-item ordering preserved.
func TestBatchPerItemFailure(t *testing.T) {
	lib := buildTestLibrarian(t)
	reply := call(t, lib, &protocol.BatchQuery{Items: []protocol.Message{
		&protocol.RankQuery{Query: "cats", K: 3},
		&protocol.ScoreDocs{Query: "cats", Docs: []uint32{999}}, // no such doc
		&protocol.RankQuery{Query: "dogs", K: 3},
	}})
	br, ok := reply.(*protocol.BatchReply)
	if !ok {
		t.Fatalf("BatchQuery answered with %T", reply)
	}
	if len(br.Items) != 3 || len(br.Sizes) != 3 {
		t.Fatalf("BatchReply has %d items, %d sizes, want 3 each", len(br.Items), len(br.Sizes))
	}
	if rr, ok := br.Items[0].(*protocol.RankReply); !ok || len(rr.Results) == 0 {
		t.Fatalf("item 0 = %#v, want non-empty RankReply", br.Items[0])
	}
	if _, ok := br.Items[1].(*protocol.ErrorReply); !ok {
		t.Fatalf("item 1 = %T, want ErrorReply for the bad doc", br.Items[1])
	}
	if rr, ok := br.Items[2].(*protocol.RankReply); !ok || len(rr.Results) == 0 {
		t.Fatalf("item 2 = %#v, want non-empty RankReply", br.Items[2])
	}
}
