package librarian

import (
	"net"
	"testing"

	"teraphim/internal/protocol"
)

// taggedSession negotiates a pipelined session with lib and returns the
// client conn plus the granted features. Callers speak tagged frames on the
// returned conn; closing it ends the session.
func taggedSession(t *testing.T, lib *Librarian) (net.Conn, protocol.Features) {
	t.Helper()
	client, server := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = lib.ServeConn(server)
	}()
	t.Cleanup(func() {
		client.Close()
		server.Close()
		<-done
	})
	if _, err := protocol.WriteMessage(client, &protocol.Hello{
		Features: protocol.FeaturePipelining | protocol.FeatureBatching,
	}); err != nil {
		t.Fatal(err)
	}
	reply, _, err := protocol.ReadMessage(client)
	if err != nil {
		t.Fatal(err)
	}
	hr, ok := reply.(*protocol.HelloReply)
	if !ok {
		t.Fatalf("Hello answered with %T", reply)
	}
	return client, hr.Features
}

// TestNegotiateTaggedSession checks the feature handshake and that a
// negotiated session demultiplexes by tag: two requests written back to
// back each get a reply carrying their own tag, whatever the completion
// order.
func TestNegotiateTaggedSession(t *testing.T) {
	lib := buildTestLibrarian(t)
	client, granted := taggedSession(t, lib)
	if !granted.Has(protocol.FeaturePipelining) || !granted.Has(protocol.FeatureBatching) {
		t.Fatalf("granted features = %v, want pipelining|batching", granted)
	}

	wr := &protocol.Writer{W: client, Tagged: true}
	rd := &protocol.Reader{R: client, Tagged: true}
	want := map[uint32]string{5: "cats", 9: "dogs"}
	for tag, q := range want {
		if _, err := wr.Write(tag, &protocol.RankQuery{Query: q, K: 3}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < len(want); i++ {
		msg, tag, _, err := rd.Read()
		if err != nil {
			t.Fatal(err)
		}
		q, ok := want[tag]
		if !ok {
			t.Fatalf("reply with unexpected tag %d", tag)
		}
		delete(want, tag)
		rr, ok := msg.(*protocol.RankReply)
		if !ok {
			t.Fatalf("tag %d (%q): got %T", tag, q, msg)
		}
		if len(rr.Results) == 0 {
			t.Fatalf("tag %d (%q): empty results", tag, q)
		}
	}
}

// TestSupportFeaturesMasksGrant pins the mixed-fleet escape hatch: a
// librarian configured to support nothing answers a feature-laden Hello
// with zero grants and keeps the session in the seed framing.
func TestSupportFeaturesMasksGrant(t *testing.T) {
	lib := buildTestLibrarian(t)
	lib.SupportFeatures(0)
	client, granted := taggedSession(t, lib)
	if granted != 0 {
		t.Fatalf("granted features = %v, want none", granted)
	}
	// The session must still speak the seed framing.
	if _, err := protocol.WriteMessage(client, &protocol.VocabRequest{}); err != nil {
		t.Fatal(err)
	}
	reply, _, err := protocol.ReadMessage(client)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := reply.(*protocol.VocabReply); !ok {
		t.Fatalf("VocabRequest answered with %T", reply)
	}
}

// TestHelloMidSessionNeverUpgrades checks that only a FIRST-frame Hello can
// switch the framing: a Hello arriving later in a seed session is answered
// in place with the pipelining bit masked, so the framing cannot change
// under an exchange already in flight.
func TestHelloMidSessionNeverUpgrades(t *testing.T) {
	lib := buildTestLibrarian(t)
	client, server := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = lib.ServeConn(server)
	}()
	defer func() {
		client.Close()
		server.Close()
		<-done
	}()
	if _, err := protocol.WriteMessage(client, &protocol.VocabRequest{}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := protocol.ReadMessage(client); err != nil {
		t.Fatal(err)
	}
	if _, err := protocol.WriteMessage(client, &protocol.Hello{
		Features: protocol.FeaturePipelining | protocol.FeatureBatching,
	}); err != nil {
		t.Fatal(err)
	}
	reply, _, err := protocol.ReadMessage(client)
	if err != nil {
		t.Fatal(err)
	}
	hr, ok := reply.(*protocol.HelloReply)
	if !ok {
		t.Fatalf("mid-session Hello answered with %T", reply)
	}
	if hr.Features.Has(protocol.FeaturePipelining) {
		t.Fatalf("mid-session Hello granted pipelining: %v", hr.Features)
	}
	// Still the seed framing afterwards.
	if _, err := protocol.WriteMessage(client, &protocol.RankQuery{Query: "cats", K: 3}); err != nil {
		t.Fatal(err)
	}
	if m, _, err := protocol.ReadMessage(client); err != nil {
		t.Fatal(err)
	} else if _, ok := m.(*protocol.RankReply); !ok {
		t.Fatalf("post-Hello RankQuery answered with %T", m)
	}
}

// TestBatchPerItemFailure checks that one bad query inside a batch gets its
// own ErrorReply while its batch-mates are answered normally, with the
// item-for-item ordering preserved.
func TestBatchPerItemFailure(t *testing.T) {
	lib := buildTestLibrarian(t)
	reply := call(t, lib, &protocol.BatchQuery{Items: []protocol.Message{
		&protocol.RankQuery{Query: "cats", K: 3},
		&protocol.ScoreDocs{Query: "cats", Docs: []uint32{999}}, // no such doc
		&protocol.RankQuery{Query: "dogs", K: 3},
	}})
	br, ok := reply.(*protocol.BatchReply)
	if !ok {
		t.Fatalf("BatchQuery answered with %T", reply)
	}
	if len(br.Items) != 3 || len(br.Sizes) != 3 {
		t.Fatalf("BatchReply has %d items, %d sizes, want 3 each", len(br.Items), len(br.Sizes))
	}
	if rr, ok := br.Items[0].(*protocol.RankReply); !ok || len(rr.Results) == 0 {
		t.Fatalf("item 0 = %#v, want non-empty RankReply", br.Items[0])
	}
	if _, ok := br.Items[1].(*protocol.ErrorReply); !ok {
		t.Fatalf("item 1 = %T, want ErrorReply for the bad doc", br.Items[1])
	}
	if rr, ok := br.Items[2].(*protocol.RankReply); !ok || len(rr.Results) == 0 {
		t.Fatalf("item 2 = %#v, want non-empty RankReply", br.Items[2])
	}
}
