package librarian

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"teraphim/internal/protocol"
	"teraphim/internal/search"
	"teraphim/internal/store"
	"teraphim/internal/textproc"
)

// The paper's §4 lists "faster update" among distribution's management
// benefits: a subcollection can be re-indexed at its own site without
// touching the rest of the federation. UpdatableLibrarian provides that:
// an atomically swappable collection behind the same wire protocol, so
// in-flight receptionist sessions keep working during a rebuild and new
// queries see the new collection the moment the swap lands.
//
// MG-style indexes are immutable, so update is rebuild-and-swap — exactly
// how production descendants of these systems handle incremental change at
// the subcollection level.

// UpdatableLibrarian wraps a Librarian whose collection can be replaced
// while serving. All methods are safe for concurrent use.
type UpdatableLibrarian struct {
	name     string
	analyzer *textproc.Analyzer
	skip     int

	// epoch counts collection swaps; receptionist-side caches compare it
	// (or subscribe via OnUpdate) to drop answers computed over the old
	// collection.
	epoch atomic.Uint64

	mu       sync.RWMutex
	lib      *Librarian
	onUpdate []func()
}

// NewUpdatable builds the initial collection and returns the updatable
// wrapper.
func NewUpdatable(name string, docs []store.Document, opts BuildOptions) (*UpdatableLibrarian, error) {
	lib, err := Build(name, docs, opts)
	if err != nil {
		return nil, err
	}
	analyzer := opts.Analyzer
	if analyzer == nil {
		analyzer = textproc.NewAnalyzer()
	}
	return &UpdatableLibrarian{name: name, analyzer: analyzer, skip: opts.SkipInterval, lib: lib}, nil
}

// Name returns the collection name.
func (u *UpdatableLibrarian) Name() string { return u.name }

// Epoch returns the number of collection swaps since construction. Any
// receptionist-side state derived from this librarian (cached results,
// merged vocabularies) is stale once the epoch it was read under differs
// from the current one.
func (u *UpdatableLibrarian) Epoch() uint64 { return u.epoch.Load() }

// OnUpdate registers fn to run after every successful collection swap
// (Update or Append), in registration order, on the updating goroutine.
// This is the cache-invalidation hook: wire a receptionist's
// InvalidateCache here so cached answers never outlive the collection they
// were computed from. fn must not block for long and must be safe to call
// concurrently with queries.
func (u *UpdatableLibrarian) OnUpdate(fn func()) {
	if fn == nil {
		return
	}
	u.mu.Lock()
	u.onUpdate = append(u.onUpdate, fn)
	u.mu.Unlock()
}

// Current returns the serving librarian snapshot. The snapshot is immutable
// and remains valid after later updates.
func (u *UpdatableLibrarian) Current() *Librarian {
	u.mu.RLock()
	defer u.mu.RUnlock()
	return u.lib
}

// Engine returns the current snapshot's engine (convenience for local use).
func (u *UpdatableLibrarian) Engine() *search.Engine { return u.Current().Engine() }

// Update rebuilds the collection from docs and swaps it in atomically.
// Queries racing with the update see either the old or the new collection,
// never a mixture.
func (u *UpdatableLibrarian) Update(docs []store.Document) error {
	lib, err := Build(u.name, docs, BuildOptions{Analyzer: u.analyzer, SkipInterval: u.skip})
	if err != nil {
		return fmt.Errorf("librarian: update %q: %w", u.name, err)
	}
	u.mu.Lock()
	u.lib = lib
	callbacks := append([]func(){}, u.onUpdate...)
	u.mu.Unlock()
	u.epoch.Add(1)
	for _, fn := range callbacks {
		fn()
	}
	return nil
}

// Append re-indexes the collection with additional documents. Existing
// documents keep their ids; new documents are appended after them. The
// originals are recovered from the compressed store (lossless), so no
// side copy of the text is needed.
func (u *UpdatableLibrarian) Append(newDocs []store.Document) error {
	current := u.Current()
	st := current.Store()
	docs := make([]store.Document, 0, int(st.NumDocs())+len(newDocs))
	for id := uint32(0); id < st.NumDocs(); id++ {
		doc, err := st.Fetch(id)
		if err != nil {
			return fmt.Errorf("librarian: append to %q: recover doc %d: %w", u.name, id, err)
		}
		docs = append(docs, doc)
	}
	docs = append(docs, newDocs...)
	return u.Update(docs)
}

// ServeConn answers protocol messages until EOF, dispatching each request
// against the snapshot current when it arrives. Like Librarian.ServeConn,
// the session holds one pooled evaluation scratch for its lifetime.
//
// Updatable serving never grants FeaturePipelining — the per-frame snapshot
// dispatch stays a strictly ordered loop — so pipelining-capable peers
// degrade to the seed framing against an updatable librarian. Batching is
// granted: it composes with the sequential loop unchanged.
func (u *UpdatableLibrarian) ServeConn(conn io.ReadWriter) error {
	scratch := search.GetScratch()
	defer scratch.Release()
	rd := &protocol.Reader{R: conn}
	wr := &protocol.Writer{W: conn}
	for {
		msg, _, _, err := rd.ReadReuse()
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrClosedPipe) || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("librarian %q: %w", u.name, err)
		}
		reply := u.Current().handle(scratch, msg, 0)
		if _, err := wr.Write(0, reply); err != nil {
			return fmt.Errorf("librarian %q: %w", u.name, err)
		}
	}
}
