package librarian

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"teraphim/internal/huffman"
	"teraphim/internal/protocol"
	"teraphim/internal/search"
	"teraphim/internal/store"
	"teraphim/internal/textproc"
)

// The paper's §4 lists "faster update" among distribution's management
// benefits: a subcollection can be re-indexed at its own site without
// touching the rest of the federation. UpdatableLibrarian realizes it with
// an LSM-style segmented collection: immutable per-segment indexes+stores,
// an atomically-published copy-on-write manifest, streaming Ingest through
// a bounded queue onto background builders, and size-tiered background
// merges — so tokenize/compress/build happens off the serving path and
// queries always see a consistent snapshot (see segment.go and ingest.go).
//
// The preferred API is Ingest/Flush/Compact/SegmentStats. Update and Append
// remain as compatibility wrappers: Update rebuilds into one segment
// (rebuild-and-swap, the seed behaviour), Append seals the new documents
// into a fresh segment in O(new docs) instead of re-indexing the whole
// subcollection.

// UpdatableLibrarian is a librarian whose collection can grow and be
// replaced while serving. All methods are safe for concurrent use.
type UpdatableLibrarian struct {
	name     string
	analyzer *textproc.Analyzer
	skip     int

	// supported is the feature set granted on Hello exchanges. Segment
	// manifests are immutable and dispatch is per-frame-snapshot, so
	// updatable librarians grant the full default set — including
	// FeaturePipelining, which the rebuild-and-swap design had to refuse.
	supported atomic.Uint32

	// epoch counts manifest publications (updates, appends, ingested
	// batches, merges); receptionist-side caches compare it (or subscribe
	// via OnUpdate) to drop answers computed over an older snapshot.
	epoch atomic.Uint64
	man   atomic.Pointer[manifest]

	mu       sync.Mutex // serializes manifest publication + callback list
	onUpdate []func()

	// Ingest pipeline state — see ingest.go.
	cfg       IngestConfig
	qmu       sync.Mutex
	queue     chan []store.Document
	stop      chan struct{} // closed by Close after enqueuers drain: workers finish the queue and exit
	closing   chan struct{} // closed by Close first: unblocks enqueuers waiting for queue space
	started   bool
	closed    bool
	enqueuers sync.WaitGroup
	workers   sync.WaitGroup

	fmu       sync.Mutex
	enqSeq    uint64
	pubSeq    uint64
	notify    chan struct{}
	ingestErr error

	mergeMu sync.Mutex // at most one merge or compaction at a time
	merging atomic.Bool
	mergeWG sync.WaitGroup

	docsQueued     atomic.Uint64
	docsIndexed    atomic.Uint64
	batchesDone    atomic.Uint64
	mergesDone     atomic.Uint64
	ingestFailures atomic.Uint64
	queueFullWaits atomic.Uint64

	metrics atomic.Pointer[segMetrics]

	// testBuildGate and testBuild, when set (before the first Ingest), hook
	// the background builders: the gate is invoked at the start of every
	// batch build (deterministic backpressure tests block on it), and
	// testBuild replaces the segment build (failure-path tests inject
	// errors with it).
	testBuildGate func()
	testBuild     func(docs []store.Document) (*Librarian, error)
}

// NewUpdatable builds the initial collection (as a single segment) and
// returns the updatable wrapper.
func NewUpdatable(name string, docs []store.Document, opts BuildOptions) (*UpdatableLibrarian, error) {
	lib, err := Build(name, docs, opts)
	if err != nil {
		return nil, err
	}
	analyzer := opts.Analyzer
	if analyzer == nil {
		analyzer = textproc.NewAnalyzer()
	}
	u := &UpdatableLibrarian{
		name:     name,
		analyzer: analyzer,
		skip:     opts.SkipInterval,
		closing:  make(chan struct{}),
		notify:   make(chan struct{}),
	}
	u.supported.Store(uint32(protocol.SupportedFeatures))
	u.man.Store(u.newManifest([]*segment{{lib: lib, docs: lib.docs.NumDocs()}}, lib.docs.Model()))
	return u, nil
}

// newManifest assembles a manifest from segments in order: empty segments
// are pruned (keeping at least one so there is always a collection to
// answer from) and offset bases reassigned cumulatively.
func (u *UpdatableLibrarian) newManifest(segs []*segment, model *huffman.TextModel) *manifest {
	kept := make([]*segment, 0, len(segs))
	for _, sg := range segs {
		if sg.docs > 0 {
			kept = append(kept, sg)
		}
	}
	if len(kept) == 0 {
		kept = segs[:1]
	}
	out := make([]*segment, len(kept))
	var base uint32
	for i, sg := range kept {
		out[i] = &segment{lib: sg.lib, docs: sg.docs, base: base}
		base += sg.docs
	}
	return &manifest{name: u.name, analyzer: u.analyzer, skip: u.skip, segs: out, total: base, model: model}
}

// snapshot returns the current manifest.
func (u *UpdatableLibrarian) snapshot() *manifest { return u.man.Load() }

// Name returns the collection name.
func (u *UpdatableLibrarian) Name() string { return u.name }

// Epoch returns the number of manifest publications since construction. Any
// receptionist-side state derived from this librarian (cached results,
// merged vocabularies) is stale once the epoch it was read under differs
// from the current one.
func (u *UpdatableLibrarian) Epoch() uint64 { return u.epoch.Load() }

// OnUpdate registers fn to run after every manifest publication (Update,
// Append, each ingested batch, each background merge), in registration
// order, on the publishing goroutine. This is the cache-invalidation hook:
// wire a receptionist's InvalidateCache here so cached answers never outlive
// the snapshot they were computed from. fn must not block for long and must
// be safe to call concurrently with queries.
func (u *UpdatableLibrarian) OnUpdate(fn func()) {
	if fn == nil {
		return
	}
	u.mu.Lock()
	u.onUpdate = append(u.onUpdate, fn)
	u.mu.Unlock()
}

// SupportFeatures restricts which protocol extensions this librarian grants
// on Hello exchanges (default: protocol.SupportedFeatures, pipelining
// included). Takes effect for connections negotiated after the call.
func (u *UpdatableLibrarian) SupportFeatures(f protocol.Features) {
	u.supported.Store(uint32(f.Wire()))
}

// Current returns the serving collection as one ordinary Librarian. The
// snapshot is immutable and remains valid after later updates. On a
// multi-segment manifest this materialises (once per manifest) a merged
// view; prefer SegmentStats/Ingest-side APIs on hot paths.
func (u *UpdatableLibrarian) Current() *Librarian {
	lib, err := u.snapshot().materialize()
	if err != nil {
		// The segments a manifest holds were verified at build time and are
		// immutable; failing to merge them means corrupted invariants, not a
		// recoverable condition.
		panic(fmt.Sprintf("librarian %q: materialize current snapshot: %v", u.name, err))
	}
	return lib
}

// Engine returns the current snapshot's engine (convenience for local use).
func (u *UpdatableLibrarian) Engine() *search.Engine { return u.Current().Engine() }

// publish runs mutate against the current manifest under the publication
// lock and, if it returns a new manifest, installs it, bumps the epoch and
// fires the update callbacks (after the lock is released, on the publishing
// goroutine). mutate returning nil aborts the publication — how a merge
// whose inputs vanished mid-flight (a concurrent Update replaced them)
// drops its result. Reports whether a manifest was published.
func (u *UpdatableLibrarian) publish(mutate func(old *manifest) *manifest) bool {
	u.mu.Lock()
	next := mutate(u.man.Load())
	if next == nil {
		u.mu.Unlock()
		return false
	}
	u.man.Store(next)
	callbacks := append([]func(){}, u.onUpdate...)
	u.mu.Unlock()
	u.epoch.Add(1)
	if m := u.metrics.Load(); m != nil {
		m.segmentsLive.Set(int64(len(next.segs)))
		m.docsTotal.Set(int64(next.total))
	}
	for _, fn := range callbacks {
		fn()
	}
	return true
}

// Update rebuilds the collection from docs into a single fresh segment and
// swaps it in atomically — the seed rebuild-and-swap behaviour. Queries
// racing with the update see either the old or the new collection, never a
// mixture.
//
// Deprecated-in-spirit: Update re-indexes everything it is given and stalls
// the caller for the full build; prefer Ingest (incremental, off the
// serving path) with Flush for visibility, or Compact to fold accumulated
// segments. It remains supported for wholesale collection replacement.
func (u *UpdatableLibrarian) Update(docs []store.Document) error {
	lib, err := Build(u.name, docs, BuildOptions{Analyzer: u.analyzer, SkipInterval: u.skip})
	if err != nil {
		return fmt.Errorf("librarian: update %q: %w", u.name, err)
	}
	u.publish(func(*manifest) *manifest {
		return u.newManifest([]*segment{{lib: lib, docs: lib.docs.NumDocs()}}, lib.docs.Model())
	})
	return nil
}

// Append indexes newDocs into a fresh segment appended after the existing
// ones. Existing documents keep their ids; cost is O(new docs) — the old
// segments (and their stores) are not touched, let alone re-read.
//
// Deprecated-in-spirit: Append is the synchronous form of Ingest and runs
// the build on the caller's goroutine; prefer Ingest for streaming arrival.
func (u *UpdatableLibrarian) Append(newDocs []store.Document) error {
	lib, err := Build(u.name, newDocs, BuildOptions{Analyzer: u.analyzer, SkipInterval: u.skip})
	if err != nil {
		return fmt.Errorf("librarian: append to %q: %w", u.name, err)
	}
	u.appendSegment(lib)
	return nil
}

// appendSegment publishes a manifest with lib sealed as the last segment,
// then pokes the merge policy.
func (u *UpdatableLibrarian) appendSegment(lib *Librarian) {
	u.publish(func(old *manifest) *manifest {
		segs := make([]*segment, 0, len(old.segs)+1)
		segs = append(segs, old.segs...)
		segs = append(segs, &segment{lib: lib, docs: lib.docs.NumDocs()})
		return u.newManifest(segs, old.model)
	})
	u.maybeMerge()
}

// ServeConn answers protocol messages until EOF, dispatching each request
// against the manifest current when it arrives. Sessions negotiate features
// exactly like a plain Librarian — including FeaturePipelining: tagged
// frames are evaluated concurrently, each against its own per-frame
// manifest snapshot, so a pipelined session straddling an update sees some
// answers from the old snapshot and some from the new, but never a mixture
// within one answer.
func (u *UpdatableLibrarian) ServeConn(conn io.ReadWriter) error {
	return serveConn(u, conn)
}

// connServer implementation (see serve.go).
func (u *UpdatableLibrarian) serveName() string         { return u.name }
func (u *UpdatableLibrarian) serveMetrics() *libMetrics { return nil }
func (u *UpdatableLibrarian) grantFeatures(req protocol.Features) protocol.Features {
	return req & protocol.Features(u.supported.Load())
}
func (u *UpdatableLibrarian) helloReply(granted protocol.Features) protocol.Message {
	return u.snapshot().hello(granted)
}

func (u *UpdatableLibrarian) dispatch(scratch *search.Scratch, msg protocol.Message, conn protocol.Features) protocol.Message {
	m := u.snapshot()
	switch req := msg.(type) {
	case *protocol.Hello:
		granted := u.grantFeatures(req.Features.Wire())
		if !conn.Has(protocol.FeaturePipelining) {
			// Framing is fixed after the first frame; only a connection
			// already running tagged may report pipelining as active.
			granted &^= protocol.FeaturePipelining
		}
		return m.hello(granted)
	case *protocol.VocabRequest:
		return m.vocab()
	case *protocol.RankQuery:
		return m.rank(scratch, req)
	case *protocol.ScoreDocs:
		return m.score(scratch, req)
	case *protocol.BatchQuery:
		return m.batch(scratch, req)
	case *protocol.FetchDocs:
		return m.fetch(req)
	case *protocol.ModelRequest:
		return m.modelReply()
	case *protocol.BooleanQuery:
		return m.boolean(req)
	case *protocol.IndexRequest:
		return m.shipIndex()
	default:
		return &protocol.ErrorReply{Message: fmt.Sprintf("unexpected message %v", msg.Type())}
	}
}
