package librarian

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"teraphim/internal/index"
	"teraphim/internal/search"
	"teraphim/internal/store"
	"teraphim/internal/textproc"
)

// Collection layout on disk:
//
//	<dir>/collection.conf  — name and analyzer options
//	<dir>/index.tpix       — inverted index (index.WriteTo)
//	<dir>/store.tpst       — compressed documents (store.WriteTo)
const (
	confFile  = "collection.conf"
	indexFile = "index.tpix"
	storeFile = "store.tpst"
)

// SaveOptions describes the analyzer configuration persisted alongside a
// collection so queries are analysed identically on reload.
type SaveOptions struct {
	Stopwords bool
	Stemming  bool
}

// Save writes the librarian's collection to dir, creating it if needed.
func Save(dir string, lib *Librarian, opts SaveOptions) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("librarian: create %s: %w", dir, err)
	}
	conf := fmt.Sprintf("name=%s\nstopwords=%t\nstemming=%t\n", lib.Name(), opts.Stopwords, opts.Stemming)
	if err := os.WriteFile(filepath.Join(dir, confFile), []byte(conf), 0o644); err != nil {
		return fmt.Errorf("librarian: write conf: %w", err)
	}
	if err := writeFileWith(filepath.Join(dir, indexFile), lib.Engine().Index().WriteTo); err != nil {
		return fmt.Errorf("librarian: write index: %w", err)
	}
	if err := writeFileWith(filepath.Join(dir, storeFile), lib.Store().WriteTo); err != nil {
		return fmt.Errorf("librarian: write store: %w", err)
	}
	return nil
}

func writeFileWith(path string, writeTo func(w io.Writer) (int64, error)) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	if _, err := writeTo(bw); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reopens a collection saved with Save.
func Load(dir string) (*Librarian, error) {
	conf, err := os.ReadFile(filepath.Join(dir, confFile))
	if err != nil {
		return nil, fmt.Errorf("librarian: read conf: %w", err)
	}
	name, analyzer, err := parseConf(string(conf))
	if err != nil {
		return nil, err
	}
	ixf, err := os.Open(filepath.Join(dir, indexFile))
	if err != nil {
		return nil, fmt.Errorf("librarian: open index: %w", err)
	}
	defer ixf.Close()
	ix, err := index.ReadFrom(ixf)
	if err != nil {
		return nil, fmt.Errorf("librarian: load index: %w", err)
	}
	stf, err := os.Open(filepath.Join(dir, storeFile))
	if err != nil {
		return nil, fmt.Errorf("librarian: open store: %w", err)
	}
	defer stf.Close()
	st, err := store.ReadFrom(stf)
	if err != nil {
		return nil, fmt.Errorf("librarian: load store: %w", err)
	}
	return New(name, search.NewEngine(ix, analyzer), st)
}

func parseConf(conf string) (string, *textproc.Analyzer, error) {
	name := ""
	stop, stem := true, true
	for _, line := range strings.Split(conf, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		key, value, found := strings.Cut(line, "=")
		if !found {
			return "", nil, fmt.Errorf("librarian: malformed conf line %q", line)
		}
		switch key {
		case "name":
			name = value
		case "stopwords":
			stop = value == "true"
		case "stemming":
			stem = value == "true"
		default:
			return "", nil, fmt.Errorf("librarian: unknown conf key %q", key)
		}
	}
	if name == "" {
		return "", nil, fmt.Errorf("librarian: conf missing collection name")
	}
	var opts []textproc.Option
	if !stop {
		opts = append(opts, textproc.WithoutStopwords())
	}
	if !stem {
		opts = append(opts, textproc.WithoutStemming())
	}
	return name, textproc.NewAnalyzer(opts...), nil
}
