package librarian

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"net"
	"reflect"
	"testing"

	"teraphim/internal/huffman"
	"teraphim/internal/protocol"
	"teraphim/internal/store"
)

// synthCorpus builds a deterministic synthetic corpus: a fixed vocabulary
// combined by a small LCG so different runs (and different builds of the
// same slice) see identical text.
func synthCorpus(n int) []store.Document {
	vocab := []string{
		"whale", "reef", "harbor", "storm", "lantern", "compass", "tide",
		"anchor", "gull", "mast", "salt", "chart", "drift", "squall", "keel",
	}
	docs := make([]store.Document, n)
	state := uint64(42)
	next := func(mod int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(mod))
	}
	for i := range docs {
		words := make([]byte, 0, 128)
		for w := 0; w < 8+next(10); w++ {
			words = append(words, vocab[next(len(vocab))]...)
			words = append(words, ' ')
		}
		docs[i] = store.Document{Title: fmt.Sprintf("doc-%03d", i), Text: string(words)}
	}
	return docs
}

// callServer performs one request/response over an in-process pipe session
// against any ConnServer (plain or updatable librarian).
func callServer(t *testing.T, lib ConnServer, msg protocol.Message) protocol.Message {
	t.Helper()
	client, server := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = lib.ServeConn(server)
	}()
	defer func() {
		client.Close()
		server.Close()
		<-done
	}()
	if _, err := protocol.WriteMessage(client, msg); err != nil {
		t.Fatal(err)
	}
	reply, _, err := protocol.ReadMessage(client)
	if err != nil {
		t.Fatal(err)
	}
	return reply
}

// buildSegmentedPair returns the same corpus twice: once as a 1-segment
// rebuild and once ingested as three segments (background merging off).
func buildSegmentedPair(t *testing.T, n int) (uni, seg *UpdatableLibrarian) {
	t.Helper()
	corpus := synthCorpus(n)
	uni, err := NewUpdatable("C", corpus, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	seg, err = NewUpdatable("C", corpus[:n/3], BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := seg.ConfigureIngest(IngestConfig{MergeFanIn: -1}); err != nil {
		t.Fatal(err)
	}
	if err := seg.Append(corpus[n/3 : 2*n/3]); err != nil {
		t.Fatal(err)
	}
	if err := seg.Append(corpus[2*n/3:]); err != nil {
		t.Fatal(err)
	}
	if got := len(seg.SegmentStats().Segments); got != 3 {
		t.Fatalf("segments = %d, want 3", got)
	}
	return uni, seg
}

func rankOf(t *testing.T, reply protocol.Message) *protocol.RankReply {
	t.Helper()
	rr, ok := reply.(*protocol.RankReply)
	if !ok {
		t.Fatalf("got %T (%+v), want RankReply", reply, reply)
	}
	return rr
}

// assertRankParity compares two rank replies: doc ids exact, scores to 1e-9.
func assertRankParity(t *testing.T, label string, a, b *protocol.RankReply) {
	t.Helper()
	if len(a.Results) != len(b.Results) {
		t.Fatalf("%s: %d vs %d results", label, len(a.Results), len(b.Results))
	}
	for i := range a.Results {
		if a.Results[i].Doc != b.Results[i].Doc {
			t.Fatalf("%s: result %d doc %d vs %d", label, i, a.Results[i].Doc, b.Results[i].Doc)
		}
		if math.Abs(a.Results[i].Score-b.Results[i].Score) > 1e-9 {
			t.Fatalf("%s: result %d score %g vs %g", label, i, a.Results[i].Score, b.Results[i].Score)
		}
	}
}

// TestSegmentedRankParity pins the tentpole's golden property: a
// multi-segment ingest of a corpus ranks identically (doc ids exact, scores
// to 1e-9) to a single-segment rebuild, both with collection-local
// statistics (CN) and with supplied global weights (CV).
func TestSegmentedRankParity(t *testing.T) {
	uni, seg := buildSegmentedPair(t, 60)
	queries := []string{"whale reef", "storm", "lantern compass tide", "salt salt keel", "anchor gull mast drift"}
	for _, q := range queries {
		for _, k := range []uint32{1, 5, 100} {
			a := rankOf(t, callServer(t, uni, &protocol.RankQuery{Query: q, K: k}))
			b := rankOf(t, callServer(t, seg, &protocol.RankQuery{Query: q, K: k}))
			assertRankParity(t, fmt.Sprintf("CN %q k=%d", q, k), a, b)
		}
		// CV: supplied weights are authoritative on both sides.
		weights := map[string]float64{}
		for _, term := range uni.analyzer.Terms(nil, q) {
			weights[term] = uni.Current().Engine().LocalWeight(term, 1)
		}
		a := rankOf(t, callServer(t, uni, &protocol.RankQuery{Query: q, K: 10, Weights: weights}))
		b := rankOf(t, callServer(t, seg, &protocol.RankQuery{Query: q, K: 10, Weights: weights}))
		assertRankParity(t, fmt.Sprintf("CV %q", q), a, b)
	}
}

// TestSegmentedScoreDocsParity covers the CI-mode path: nominated documents
// scattered across segment boundaries, in arbitrary request order.
func TestSegmentedScoreDocsParity(t *testing.T) {
	uni, seg := buildSegmentedPair(t, 60)
	docs := []uint32{59, 0, 21, 40, 19, 20, 39, 7, 58}
	weights := map[string]float64{"whale": 1.5, "reef": 0.7, "tide": 2.1}
	a := rankOf(t, callServer(t, uni, &protocol.ScoreDocs{Query: "whale reef tide", Docs: docs, Weights: weights}))
	b := rankOf(t, callServer(t, seg, &protocol.ScoreDocs{Query: "whale reef tide", Docs: docs, Weights: weights}))
	assertRankParity(t, "scoredocs", a, b)
	if len(a.Results) != len(docs) {
		t.Fatalf("scoredocs returned %d results, want %d", len(a.Results), len(docs))
	}
	// Results come back in requested order on both sides.
	for i, r := range b.Results {
		if r.Doc != docs[i] {
			t.Fatalf("result %d is doc %d, want %d (request order)", i, r.Doc, docs[i])
		}
	}
}

// TestSegmentedAuxParity covers the non-rank surface: vocabulary, boolean
// (including NOT, whose complement must compose across segments), hello
// statistics, document fetch in both forms, and the shipped index.
func TestSegmentedAuxParity(t *testing.T) {
	uni, seg := buildSegmentedPair(t, 60)

	av := callServer(t, uni, &protocol.VocabRequest{})
	bv := callServer(t, seg, &protocol.VocabRequest{})
	if !reflect.DeepEqual(av, bv) {
		t.Fatalf("vocab mismatch:\n%+v\n%+v", av, bv)
	}

	for _, expr := range []string{"whale and reef", "storm or squall", "not whale", "gull and not (reef or tide)"} {
		ab, ok := callServer(t, uni, &protocol.BooleanQuery{Expr: expr}).(*protocol.BooleanReply)
		if !ok {
			t.Fatalf("boolean %q: no reply from uni", expr)
		}
		bb, ok := callServer(t, seg, &protocol.BooleanQuery{Expr: expr}).(*protocol.BooleanReply)
		if !ok {
			t.Fatalf("boolean %q: no reply from seg", expr)
		}
		if !reflect.DeepEqual(ab.Docs, bb.Docs) {
			t.Fatalf("boolean %q: %v vs %v", expr, ab.Docs, bb.Docs)
		}
	}

	ah := callServer(t, uni, &protocol.Hello{}).(*protocol.HelloReply)
	bh := callServer(t, seg, &protocol.Hello{}).(*protocol.HelloReply)
	if ah.NumDocs != bh.NumDocs || ah.NumTerms != bh.NumTerms || ah.VocabBytes != bh.VocabBytes {
		t.Fatalf("hello stats: %+v vs %+v", ah, bh)
	}

	// Plain fetch: identical text and titles, ids preserved.
	ids := []uint32{0, 19, 20, 41, 59}
	af := callServer(t, uni, &protocol.FetchDocs{Docs: ids}).(*protocol.FetchReply)
	bf := callServer(t, seg, &protocol.FetchDocs{Docs: ids}).(*protocol.FetchReply)
	if !reflect.DeepEqual(af, bf) {
		t.Fatalf("fetch mismatch")
	}

	// Compressed fetch decompresses through the advertised model on both.
	for _, lib := range []*UpdatableLibrarian{uni, seg} {
		mr := callServer(t, lib, &protocol.ModelRequest{}).(*protocol.ModelReply)
		model, err := huffman.UnmarshalTextModel(mr.Model)
		if err != nil {
			t.Fatal(err)
		}
		cf := callServer(t, lib, &protocol.FetchDocs{Docs: ids, Compressed: true}).(*protocol.FetchReply)
		for i, blob := range cf.Docs {
			text, err := model.DecompressDoc(blob.Data)
			if err != nil {
				t.Fatalf("decompress doc %d: %v", blob.Doc, err)
			}
			if text != string(af.Docs[i].Data) {
				t.Fatalf("compressed fetch of doc %d decodes wrong text", blob.Doc)
			}
		}
	}

	// The shipped index is byte-identical: index.Merge is exact.
	ai := callServer(t, uni, &protocol.IndexRequest{}).(*protocol.IndexReply)
	bi := callServer(t, seg, &protocol.IndexRequest{}).(*protocol.IndexReply)
	if !bytes.Equal(ai.Data, bi.Data) {
		t.Fatalf("shipped index differs: %d vs %d bytes", len(ai.Data), len(bi.Data))
	}
}

// TestSegmentedErrorParity pins the error surface: bad k, out-of-range
// nominated docs and unindexable queries answer identically whether the
// collection is one segment or several.
func TestSegmentedErrorParity(t *testing.T) {
	uni, seg := buildSegmentedPair(t, 60)

	a := callServer(t, uni, &protocol.RankQuery{Query: "whale", K: 0})
	b := callServer(t, seg, &protocol.RankQuery{Query: "whale", K: 0})
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("k=0: %+v vs %+v", a, b)
	}
	if _, ok := a.(*protocol.ErrorReply); !ok {
		t.Fatalf("k=0 answered with %T", a)
	}

	a = callServer(t, uni, &protocol.ScoreDocs{Query: "whale", Docs: []uint32{3, 999}})
	b = callServer(t, seg, &protocol.ScoreDocs{Query: "whale", Docs: []uint32{3, 999}})
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("out-of-range: %+v vs %+v", a, b)
	}
	if _, ok := a.(*protocol.ErrorReply); !ok {
		t.Fatalf("out-of-range answered with %T", a)
	}

	// Stopword-only query: empty ranking, not an error, on both.
	a = callServer(t, uni, &protocol.RankQuery{Query: "the of and", K: 5})
	b = callServer(t, seg, &protocol.RankQuery{Query: "the of and", K: 5})
	ra, rb := rankOf(t, a), rankOf(t, b)
	if len(ra.Results) != 0 || len(rb.Results) != 0 {
		t.Fatalf("stopword query returned results: %+v vs %+v", ra, rb)
	}
}

// TestSegmentedParityAfterCompact folds the segments down and re-checks the
// whole surface still matches the rebuild — including compressed fetch,
// which now transcodes through the manifest's transfer model because the
// compacted store retrained its own.
func TestSegmentedParityAfterCompact(t *testing.T) {
	uni, seg := buildSegmentedPair(t, 60)
	if err := seg.Compact(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := seg.SegmentStats()
	if len(st.Segments) != 1 || st.TotalDocs != 60 || st.Merges != 1 {
		t.Fatalf("after compact: %+v", st)
	}

	a := rankOf(t, callServer(t, uni, &protocol.RankQuery{Query: "whale reef tide", K: 20}))
	b := rankOf(t, callServer(t, seg, &protocol.RankQuery{Query: "whale reef tide", K: 20}))
	assertRankParity(t, "post-compact CN", a, b)

	af := callServer(t, uni, &protocol.FetchDocs{Docs: []uint32{0, 30, 59}}).(*protocol.FetchReply)
	mr := callServer(t, seg, &protocol.ModelRequest{}).(*protocol.ModelReply)
	model, err := huffman.UnmarshalTextModel(mr.Model)
	if err != nil {
		t.Fatal(err)
	}
	cf := callServer(t, seg, &protocol.FetchDocs{Docs: []uint32{0, 30, 59}, Compressed: true}).(*protocol.FetchReply)
	for i, blob := range cf.Docs {
		text, err := model.DecompressDoc(blob.Data)
		if err != nil {
			t.Fatalf("decompress transcoded doc %d: %v", blob.Doc, err)
		}
		if text != string(af.Docs[i].Data) {
			t.Fatalf("transcoded fetch of doc %d decodes wrong text", blob.Doc)
		}
	}

	// Compacting a single segment is a no-op, not an error.
	if err := seg.Compact(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := seg.SegmentStats().Merges; got != 1 {
		t.Fatalf("idle compact merged again: %d merges", got)
	}
}
