package librarian

import (
	"fmt"
	"time"

	"teraphim/internal/obs"
	"teraphim/internal/protocol"
	"teraphim/internal/search"
)

// libMetrics is one librarian's instrument set. ServeConn loads it through
// an atomic pointer once per session, so Instrument may be called before or
// after serving starts and an uninstrumented librarian pays a single atomic
// load per session.
type libMetrics struct {
	activeSessions *obs.Gauge
	requests       *obs.Counter
	bytesIn        *obs.Counter
	bytesOut       *obs.Counter
	serviceTime    *obs.Histogram
	search         *search.Metrics
}

// observe records one answered request. Safe on a nil receiver — the
// serving loops call it unconditionally.
func (m *libMetrics) observe(read, wrote int, start time.Time, reply protocol.Message) {
	if m == nil {
		return
	}
	m.requests.Inc()
	m.bytesIn.Add(uint64(read))
	m.bytesOut.Add(uint64(wrote))
	m.serviceTime.ObserveDuration(time.Since(start))
	switch r := reply.(type) {
	case *protocol.RankReply:
		m.search.Observe(r.Stats)
	case *protocol.BooleanReply:
		m.search.Observe(r.Stats)
	case *protocol.BatchReply:
		for _, it := range r.Items {
			if rr, ok := it.(*protocol.RankReply); ok {
				m.search.Observe(rr.Stats)
			}
		}
	}
}

// Instrument registers this librarian's instruments on reg and starts
// recording: active sessions, request count, wire bytes in/out, per-request
// service time (read-to-write-complete), and the evaluation work behind
// rank/score/boolean replies (postings decoded, candidates scored). All
// series carry a librarian label, so several librarians can share one
// registry — the deployment the paper's receptionist federates over.
func (l *Librarian) Instrument(reg *obs.Registry) {
	labels := fmt.Sprintf("librarian=%q", l.name)
	m := &libMetrics{
		activeSessions: reg.Gauge("teraphim_librarian_active_sessions",
			"Protocol sessions currently being served.", labels),
		requests: reg.Counter("teraphim_librarian_requests_total",
			"Protocol requests answered (including ErrorReply answers).", labels),
		bytesIn: reg.Counter("teraphim_librarian_bytes_in_total",
			"Request bytes read off the wire.", labels),
		bytesOut: reg.Counter("teraphim_librarian_bytes_out_total",
			"Reply bytes written to the wire.", labels),
		serviceTime: reg.Histogram("teraphim_librarian_request_seconds",
			"Per-request service time: evaluation plus reply write.", labels, nil),
		search: search.NewMetrics(reg, labels),
	}
	l.metrics.Store(m)
}
