package librarian

import (
	"strings"
	"testing"

	"teraphim/internal/protocol"
	"teraphim/internal/search"
)

// TestEvaluatorWireParity pins the dynamic-pruning evaluators across the
// wire: a RankQuery carrying EvalMaxScore or EvalWAND must return exactly
// the reply the exact evaluator returns — documents, scores and the
// list-level Stats charges — against both a single-segment librarian and a
// three-segment updatable librarian, with and without explicit weights.
func TestEvaluatorWireParity(t *testing.T) {
	uni, seg := buildSegmentedPair(t, 120)
	weights := map[string]float64{"whale": 1.2, "reef": 0.8, "storm": 1.5}
	queries := []struct {
		q string
		w map[string]float64
	}{
		{"whale reef storm", nil},
		{"whale reef storm", weights},
		{"compass tide anchor gull", nil},
		{"lantern", nil},
	}
	for _, lib := range []struct {
		name string
		srv  ConnServer
	}{{"uni", uni}, {"seg", seg}} {
		for _, tc := range queries {
			for _, k := range []int{1, 10, 200} {
				exact := rankOf(t, callServer(t, lib.srv, &protocol.RankQuery{
					Query: tc.q, K: uint32(k), Weights: tc.w,
				}))
				for _, eval := range []search.Evaluator{search.EvalMaxScore, search.EvalWAND} {
					got := rankOf(t, callServer(t, lib.srv, &protocol.RankQuery{
						Query: tc.q, K: uint32(k), Weights: tc.w, Evaluator: uint8(eval),
					}))
					label := lib.name + "/" + eval.String() + "/" + tc.q
					assertRankParity(t, label, got, exact)
					for i := range exact.Results {
						if got.Results[i].Score != exact.Results[i].Score {
							t.Fatalf("%s k=%d: rank %d score %.17g, exact %.17g",
								label, k, i, got.Results[i].Score, exact.Results[i].Score)
						}
					}
					if got.Stats.TermsLooked != exact.Stats.TermsLooked ||
						got.Stats.ListsFetched != exact.Stats.ListsFetched ||
						got.Stats.IndexBytesRead != exact.Stats.IndexBytesRead {
						t.Fatalf("%s k=%d: list-level stats %+v, exact %+v",
							label, k, got.Stats, exact.Stats)
					}
				}
			}
		}
	}
}

// TestEvaluatorWireValidation: an out-of-range evaluator byte is answered
// with an ErrorReply by both librarian flavours, before any evaluation.
func TestEvaluatorWireValidation(t *testing.T) {
	uni, seg := buildSegmentedPair(t, 30)
	for _, lib := range []struct {
		name string
		srv  ConnServer
	}{{"uni", uni}, {"seg", seg}} {
		reply := callServer(t, lib.srv, &protocol.RankQuery{Query: "whale", K: 5, Evaluator: 99})
		er, ok := reply.(*protocol.ErrorReply)
		if !ok {
			t.Fatalf("%s: got %T (%+v), want ErrorReply", lib.name, reply, reply)
		}
		if !strings.Contains(er.Message, "evaluator") {
			t.Fatalf("%s: error %q does not mention the evaluator", lib.name, er.Message)
		}
	}
}
