package librarian

import (
	"net"
	"strings"
	"testing"

	"teraphim/internal/protocol"
	"teraphim/internal/simnet"
	"teraphim/internal/store"
	"teraphim/internal/textproc"
)

func testDocs() []store.Document {
	return []store.Document{
		{Title: "AP-0", Text: "cats and dogs live together"},
		{Title: "AP-1", Text: "dogs chase the mail carrier"},
		{Title: "AP-2", Text: "cats nap in warm sunlight all day"},
	}
}

func buildTestLibrarian(t testing.TB) *Librarian {
	t.Helper()
	lib, err := Build("AP", testDocs(), BuildOptions{
		Analyzer: textproc.NewAnalyzer(textproc.WithoutStopwords(), textproc.WithoutStemming()),
	})
	if err != nil {
		t.Fatal(err)
	}
	return lib
}

// call performs one request/response over an in-process pipe session.
func call(t *testing.T, lib *Librarian, msg protocol.Message) protocol.Message {
	t.Helper()
	client, server := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = lib.ServeConn(server)
	}()
	defer func() {
		client.Close()
		server.Close()
		<-done
	}()
	if _, err := protocol.WriteMessage(client, msg); err != nil {
		t.Fatal(err)
	}
	reply, _, err := protocol.ReadMessage(client)
	if err != nil {
		t.Fatal(err)
	}
	return reply
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build("", testDocs(), BuildOptions{}); err == nil {
		t.Fatal("empty name: want error")
	}
	if _, err := New("x", nil, nil); err == nil {
		t.Fatal("nil parts: want error")
	}
}

func TestHello(t *testing.T) {
	lib := buildTestLibrarian(t)
	reply := call(t, lib, &protocol.Hello{})
	hr, ok := reply.(*protocol.HelloReply)
	if !ok {
		t.Fatalf("got %T", reply)
	}
	if hr.Name != "AP" || hr.NumDocs != 3 || hr.NumTerms == 0 {
		t.Fatalf("HelloReply = %+v", hr)
	}
}

func TestVocab(t *testing.T) {
	lib := buildTestLibrarian(t)
	reply := call(t, lib, &protocol.VocabRequest{})
	vr, ok := reply.(*protocol.VocabReply)
	if !ok {
		t.Fatalf("got %T", reply)
	}
	fts := map[string]uint32{}
	for _, ts := range vr.Terms {
		fts[ts.Term] = ts.FT
	}
	if fts["cats"] != 2 || fts["dogs"] != 2 || fts["sunlight"] != 1 {
		t.Fatalf("vocab wrong: %v", fts)
	}
}

func TestRankOverWire(t *testing.T) {
	lib := buildTestLibrarian(t)
	reply := call(t, lib, &protocol.RankQuery{Query: "cats sunlight", K: 10})
	rr, ok := reply.(*protocol.RankReply)
	if !ok {
		t.Fatalf("got %T", reply)
	}
	if len(rr.Results) == 0 {
		t.Fatal("no results")
	}
	if rr.Results[0].Doc != 2 {
		t.Fatalf("top doc = %d, want 2", rr.Results[0].Doc)
	}
	// Wire results must equal direct engine results.
	ranking, err := lib.Engine().Rank("cats sunlight", 10, nil)
	direct := ranking.Results
	if err != nil {
		t.Fatal(err)
	}
	if len(direct) != len(rr.Results) {
		t.Fatalf("wire %d results, direct %d", len(rr.Results), len(direct))
	}
	for i := range direct {
		if direct[i].Doc != rr.Results[i].Doc || direct[i].Score != rr.Results[i].Score {
			t.Fatalf("result %d differs: wire %+v direct %+v", i, rr.Results[i], direct[i])
		}
	}
	if rr.Stats.PostingsDecoded == 0 {
		t.Fatal("stats not propagated")
	}
}

func TestRankEmptyQueryOverWire(t *testing.T) {
	lib := buildTestLibrarian(t)
	reply := call(t, lib, &protocol.RankQuery{Query: "!!!", K: 5})
	rr, ok := reply.(*protocol.RankReply)
	if !ok {
		t.Fatalf("empty query should yield empty RankReply, got %T", reply)
	}
	if len(rr.Results) != 0 {
		t.Fatalf("expected no results, got %d", len(rr.Results))
	}
}

func TestScoreDocsOverWire(t *testing.T) {
	lib := buildTestLibrarian(t)
	reply := call(t, lib, &protocol.ScoreDocs{Query: "cats", Docs: []uint32{0, 1, 2}})
	rr, ok := reply.(*protocol.RankReply)
	if !ok {
		t.Fatalf("got %T", reply)
	}
	if len(rr.Results) != 3 {
		t.Fatalf("got %d scores, want 3", len(rr.Results))
	}
	if rr.Results[1].Score != 0 {
		t.Fatal("doc 1 has no 'cats' but scored nonzero")
	}
}

func TestScoreDocsBadDoc(t *testing.T) {
	lib := buildTestLibrarian(t)
	reply := call(t, lib, &protocol.ScoreDocs{Query: "cats", Docs: []uint32{99}})
	if _, ok := reply.(*protocol.ErrorReply); !ok {
		t.Fatalf("out-of-range doc: got %T, want ErrorReply", reply)
	}
}

func TestFetchPlainAndCompressed(t *testing.T) {
	lib := buildTestLibrarian(t)

	reply := call(t, lib, &protocol.FetchDocs{Docs: []uint32{0, 2}})
	fr, ok := reply.(*protocol.FetchReply)
	if !ok {
		t.Fatalf("got %T", reply)
	}
	if len(fr.Docs) != 2 || string(fr.Docs[0].Data) != testDocs()[0].Text {
		t.Fatalf("plain fetch wrong: %+v", fr)
	}

	reply = call(t, lib, &protocol.FetchDocs{Docs: []uint32{1}, Compressed: true})
	fr, ok = reply.(*protocol.FetchReply)
	if !ok {
		t.Fatalf("got %T", reply)
	}
	if !fr.Docs[0].Compressed {
		t.Fatal("blob not marked compressed")
	}
	text, err := lib.Store().Decompress(fr.Docs[0].Data)
	if err != nil {
		t.Fatal(err)
	}
	if text != testDocs()[1].Text {
		t.Fatalf("compressed fetch decompressed to %q", text)
	}
}

func TestFetchBadDoc(t *testing.T) {
	lib := buildTestLibrarian(t)
	reply := call(t, lib, &protocol.FetchDocs{Docs: []uint32{42}})
	if _, ok := reply.(*protocol.ErrorReply); !ok {
		t.Fatalf("got %T, want ErrorReply", reply)
	}
}

func TestUnexpectedMessage(t *testing.T) {
	lib := buildTestLibrarian(t)
	reply := call(t, lib, &protocol.ErrorReply{Message: "client should not send this"})
	if _, ok := reply.(*protocol.ErrorReply); !ok {
		t.Fatalf("got %T, want ErrorReply", reply)
	}
}

func TestTCPServer(t *testing.T) {
	lib := buildTestLibrarian(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(lib, ln)
	defer func() {
		if err := srv.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()

	dialer := simnet.TCPDialer{"AP": srv.Addr().String()}
	conn, err := dialer.Dial("AP")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := protocol.WriteMessage(conn, &protocol.RankQuery{Query: "dogs", K: 5}); err != nil {
		t.Fatal(err)
	}
	reply, _, err := protocol.ReadMessage(conn)
	if err != nil {
		t.Fatal(err)
	}
	rr, ok := reply.(*protocol.RankReply)
	if !ok || len(rr.Results) != 2 {
		t.Fatalf("TCP rank reply: %#v", reply)
	}
	if _, err := dialer.Dial("missing"); err == nil {
		t.Fatal("unknown TCP peer: want error")
	}
}

func TestTCPServerConcurrentSessions(t *testing.T) {
	lib := buildTestLibrarian(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(lib, ln)
	defer srv.Close()

	const sessions = 8
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		go func() {
			conn, err := net.Dial("tcp", srv.Addr().String())
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			for j := 0; j < 5; j++ {
				if _, err := protocol.WriteMessage(conn, &protocol.RankQuery{Query: "cats dogs", K: 3}); err != nil {
					errs <- err
					return
				}
				if _, _, err := protocol.ReadMessage(conn); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}()
	}
	for i := 0; i < sessions; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestInProcessDialer(t *testing.T) {
	lib := buildTestLibrarian(t)
	d := NewInProcessDialer([]*Librarian{lib}, simnet.LinkConfig{})
	conn, err := d.Dial("AP")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := protocol.WriteMessage(conn, &protocol.Hello{}); err != nil {
		t.Fatal(err)
	}
	reply, _, err := protocol.ReadMessage(conn)
	if err != nil {
		t.Fatal(err)
	}
	if hr, ok := reply.(*protocol.HelloReply); !ok || hr.Name != "AP" {
		t.Fatalf("got %#v", reply)
	}
	conn.Close()
	d.Wait()
	if _, err := d.Dial("nope"); err == nil {
		t.Fatal("unknown in-process peer: want error")
	}
	if err := d.SetLink("nope", simnet.LinkConfig{}); err == nil {
		t.Fatal("SetLink unknown peer: want error")
	}
}

func TestBuildStemsConsistently(t *testing.T) {
	// With the default analyzer, a stemmed query must match stemmed docs.
	lib, err := Build("X", []store.Document{
		{Title: "d0", Text: "distributed libraries"},
		{Title: "d1", Text: "centralized monoliths"},
	}, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ranking, err := lib.Engine().Rank("library distribution", 5, nil)
	results := ranking.Results
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 || results[0].Doc != 0 {
		t.Fatalf("stemming mismatch: %v", results)
	}
	if !strings.Contains(lib.Name(), "X") {
		t.Fatal("name lost")
	}
}
