package librarian

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"teraphim/internal/protocol"
	"teraphim/internal/search"
)

// connServer abstracts "a thing that answers protocol messages over a
// stream" so the two serving loops — the seed one-frame-at-a-time framing
// and the tagged pipelined framing — are written once and shared between the
// immutable Librarian and the segmented UpdatableLibrarian.
//
// The contract that makes sharing safe: dispatch must be callable from many
// goroutines at once, and each call must evaluate against one consistent
// snapshot of the collection. A plain Librarian is immutable, so this is
// trivial; an UpdatableLibrarian loads its current segment manifest at the
// top of each dispatch, which is exactly the per-frame snapshot rule that
// lets updatable librarians grant FeaturePipelining.
type connServer interface {
	serveName() string
	serveMetrics() *libMetrics
	// grantFeatures masks a peer's requested features down to what this
	// server supports right now.
	grantFeatures(requested protocol.Features) protocol.Features
	// helloReply builds the HelloReply advertising the granted features and
	// the current collection statistics.
	helloReply(granted protocol.Features) protocol.Message
	// dispatch answers one request. scratch is reusable evaluation state
	// owned by the caller; conn is the feature set active on the connection
	// (it bounds what a mid-stream Hello may be granted).
	dispatch(scratch *search.Scratch, msg protocol.Message, conn protocol.Features) protocol.Message
}

// serveConn is the seed serving loop shared by Librarian.ServeConn and
// UpdatableLibrarian.ServeConn: strictly ordered request/reply frames, one
// pooled scratch per session. When the connection's first frame is a Hello
// granted FeaturePipelining, the session switches to tagged framing after
// the HelloReply and continues in serveTagged. A Hello on any later frame
// can never change the framing — the peer may already have frames in flight
// — so mid-stream Hellos are granted everything requested except pipelining
// (enforced inside dispatch).
func serveConn(s connServer, conn io.ReadWriter) error {
	m := s.serveMetrics()
	if m != nil {
		m.activeSessions.Inc()
		defer m.activeSessions.Dec()
	}
	scratch := search.GetScratch()
	defer scratch.Release()
	rd := &protocol.Reader{R: conn}
	wr := &protocol.Writer{W: conn}
	first := true
	for {
		msg, _, read, err := rd.ReadReuse()
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrClosedPipe) || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("librarian %q: %w", s.serveName(), err)
		}
		start := time.Now()
		var reply protocol.Message
		upgrade := protocol.Features(0)
		if h, ok := msg.(*protocol.Hello); ok && first {
			granted := s.grantFeatures(h.Features.Wire())
			reply = s.helloReply(granted)
			if granted.Has(protocol.FeaturePipelining) {
				upgrade = granted
			}
		} else {
			reply = s.dispatch(scratch, msg, 0)
		}
		first = false
		wrote, err := wr.Write(0, reply)
		m.observe(read, wrote, start, reply)
		if err != nil {
			return fmt.Errorf("librarian %q: %w", s.serveName(), err)
		}
		if upgrade != 0 {
			return serveTagged(s, conn, rd, m, upgrade)
		}
	}
}

// serveTagged is the pipelined serving loop: frames carry exchange tags,
// requests are evaluated concurrently (each on its own pooled scratch), and
// replies are written under a mutex with the request's tag — in completion
// order, not arrival order.
func serveTagged(s connServer, conn io.ReadWriter, rd *protocol.Reader, m *libMetrics, features protocol.Features) error {
	rd.Tagged = true
	wr := &protocol.Writer{W: conn, Tagged: true}
	var wmu sync.Mutex
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		// Read() decodes into a fresh message: it escapes to the handler
		// goroutine, so the Reader's reusable buffer cannot back it.
		msg, tag, read, err := rd.Read()
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrClosedPipe) || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("librarian %q: %w", s.serveName(), err)
		}
		wg.Add(1)
		go func(msg protocol.Message, tag uint32, read int) {
			defer wg.Done()
			start := time.Now()
			scratch := search.GetScratch()
			reply := s.dispatch(scratch, msg, features)
			scratch.Release()
			wmu.Lock()
			wrote, werr := wr.Write(tag, reply)
			wmu.Unlock()
			m.observe(read, wrote, start, reply)
			if werr != nil {
				// The write side is broken; close the transport so the read
				// loop (and the peer) notice instead of hanging.
				if c, ok := conn.(io.Closer); ok {
					_ = c.Close()
				}
			}
		}(msg, tag, read)
	}
}
