// Package librarian implements the librarian role of the paper's
// architecture: an independent mono-server that maintains the index for one
// subcollection, evaluates ranked queries against it, and returns documents
// — all over the protocol package's wire format.
//
// A Librarian is transport-agnostic (ServeConn handles any stream); Server
// adds a TCP accept loop with managed goroutine lifetime for real
// deployments, and InProcessDialer wires librarians to a receptionist
// through simulated links.
package librarian

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"teraphim/internal/index"
	"teraphim/internal/protocol"
	"teraphim/internal/search"
	"teraphim/internal/simnet"
	"teraphim/internal/store"
	"teraphim/internal/textproc"
)

// Librarian owns one subcollection: its index, document store and analysis
// pipeline. Librarian methods are safe for concurrent use; a Librarian can
// be the target of several receptionists at once, as the paper requires.
type Librarian struct {
	name   string
	engine *search.Engine
	docs   *store.Store

	// supported is the feature set this librarian will grant on Hello
	// exchanges (stored as the raw bitmask). Defaults to
	// protocol.SupportedFeatures; see SupportFeatures.
	supported atomic.Uint32

	// metrics is nil until Instrument; sessions load it once at start.
	metrics atomic.Pointer[libMetrics]
}

// New assembles a librarian from its parts.
func New(name string, engine *search.Engine, docs *store.Store) (*Librarian, error) {
	if name == "" {
		return nil, errors.New("librarian: name must be non-empty")
	}
	if engine == nil || docs == nil {
		return nil, errors.New("librarian: engine and store are required")
	}
	if engine.Index().NumDocs() != docs.NumDocs() {
		return nil, fmt.Errorf("librarian %q: index has %d docs, store has %d",
			name, engine.Index().NumDocs(), docs.NumDocs())
	}
	l := &Librarian{name: name, engine: engine, docs: docs}
	l.supported.Store(uint32(protocol.SupportedFeatures))
	return l, nil
}

// SupportFeatures restricts which protocol extensions this librarian grants
// on Hello exchanges (default: protocol.SupportedFeatures). Pass
// protocol.FeatureNone to serve exactly the seed wire format — the way to
// stand in for an older build in a mixed-version fleet. Takes effect for
// connections negotiated after the call.
func (l *Librarian) SupportFeatures(f protocol.Features) {
	l.supported.Store(uint32(f.Wire()))
}

// BuildOptions configures Build.
type BuildOptions struct {
	// Analyzer used for documents and queries; nil selects the standard
	// pipeline (stopwords + Porter stemming).
	Analyzer *textproc.Analyzer
	// SkipInterval is forwarded to the index builder; zero keeps the
	// default. Negative disables skip structures.
	SkipInterval int
}

// Build constructs a librarian from raw documents: analyse, index, compress.
func Build(name string, docs []store.Document, opts BuildOptions) (*Librarian, error) {
	analyzer := opts.Analyzer
	if analyzer == nil {
		analyzer = textproc.NewAnalyzer()
	}
	var builderOpts []index.BuilderOption
	switch {
	case opts.SkipInterval > 0:
		builderOpts = append(builderOpts, index.WithSkipInterval(uint32(opts.SkipInterval)))
	case opts.SkipInterval < 0:
		builderOpts = append(builderOpts, index.WithSkipInterval(0))
	}
	ib := index.NewBuilder(builderOpts...)
	for _, d := range docs {
		ib.Add(analyzer.Terms(nil, d.Text))
	}
	ix, err := ib.Build()
	if err != nil {
		return nil, fmt.Errorf("librarian %q: build index: %w", name, err)
	}
	st, err := store.Build(docs)
	if err != nil {
		return nil, fmt.Errorf("librarian %q: build store: %w", name, err)
	}
	return New(name, search.NewEngine(ix, analyzer), st)
}

// Name returns the librarian's collection name.
func (l *Librarian) Name() string { return l.name }

// Engine exposes the search engine (for local experimentation).
func (l *Librarian) Engine() *search.Engine { return l.engine }

// Store exposes the document store.
func (l *Librarian) Store() *store.Store { return l.docs }

// ServeConn answers protocol messages on conn until EOF or an unrecoverable
// transport error. Protocol-level errors are reported to the peer as
// ErrorReply messages and the session continues. Each session borrows one
// search.Scratch for its lifetime, so consecutive queries on a connection
// reuse the scoring kernel's accumulators instead of reallocating them.
//
// When the connection's first frame is a Hello granted FeaturePipelining,
// the session switches to tagged framing after the HelloReply and serves
// requests concurrently (see serveTagged). A Hello on any later frame can
// never change the framing — the peer may already have frames in flight —
// so mid-stream Hellos are granted everything requested except pipelining.
func (l *Librarian) ServeConn(conn io.ReadWriter) error {
	return serveConn(l, conn)
}

// connServer implementation — the serving loops in serve.go are shared with
// UpdatableLibrarian.
func (l *Librarian) serveName() string         { return l.name }
func (l *Librarian) serveMetrics() *libMetrics { return l.metrics.Load() }
func (l *Librarian) grantFeatures(req protocol.Features) protocol.Features {
	return req & protocol.Features(l.supported.Load())
}
func (l *Librarian) helloReply(granted protocol.Features) protocol.Message {
	return l.hello(granted)
}
func (l *Librarian) dispatch(scratch *search.Scratch, msg protocol.Message, conn protocol.Features) protocol.Message {
	return l.handle(scratch, msg, conn)
}

// handle dispatches one request to the engine/store. scratch is the
// session's reusable evaluation state; conn is the feature set active on
// the connection (it bounds what a mid-stream Hello may be granted).
func (l *Librarian) handle(scratch *search.Scratch, msg protocol.Message, conn protocol.Features) protocol.Message {
	switch m := msg.(type) {
	case *protocol.Hello:
		granted := m.Features.Wire() & protocol.Features(l.supported.Load())
		if !conn.Has(protocol.FeaturePipelining) {
			// Framing is fixed after the first frame; only a connection
			// already running tagged may report pipelining as active.
			granted &^= protocol.FeaturePipelining
		}
		return l.hello(granted)
	case *protocol.VocabRequest:
		return l.vocab()
	case *protocol.RankQuery:
		return l.rank(scratch, m)
	case *protocol.ScoreDocs:
		return l.score(scratch, m)
	case *protocol.BatchQuery:
		return l.batch(scratch, m)
	case *protocol.FetchDocs:
		return l.fetch(m)
	case *protocol.ModelRequest:
		return &protocol.ModelReply{Model: l.docs.Model().Marshal()}
	case *protocol.BooleanQuery:
		return l.boolean(m)
	case *protocol.IndexRequest:
		return l.shipIndex()
	default:
		return &protocol.ErrorReply{Message: fmt.Sprintf("unexpected message %v", msg.Type())}
	}
}

func (l *Librarian) hello(granted protocol.Features) protocol.Message {
	ix := l.engine.Index()
	return &protocol.HelloReply{
		Name:       l.name,
		NumDocs:    ix.NumDocs(),
		NumTerms:   uint32(ix.NumTerms()),
		IndexBytes: ix.SizeBytes(),
		VocabBytes: ix.DictSizeBytes(),
		StoreBytes: l.docs.CompressedSize(),
		Features:   granted,
	}
}

// batch evaluates a BatchQuery item by item on the session scratch, in
// order, so every item's result is bit-identical to the same request sent
// alone. Failure is per item: a bad query yields an ErrorReply in its slot
// without touching its batch peers.
func (l *Librarian) batch(scratch *search.Scratch, m *protocol.BatchQuery) protocol.Message {
	reply := &protocol.BatchReply{Items: make([]protocol.Message, len(m.Items))}
	for i, it := range m.Items {
		switch q := it.(type) {
		case *protocol.RankQuery:
			reply.Items[i] = l.rank(scratch, q)
		case *protocol.ScoreDocs:
			reply.Items[i] = l.score(scratch, q)
		default:
			// Unreachable off the wire (the decoder rejects non-batchable
			// item types); kept for locally constructed messages.
			reply.Items[i] = &protocol.ErrorReply{Message: fmt.Sprintf("unbatchable message %v", it.Type())}
		}
	}
	return reply
}

func (l *Librarian) vocab() protocol.Message {
	ix := l.engine.Index()
	reply := &protocol.VocabReply{Terms: make([]protocol.TermStat, 0, ix.NumTerms())}
	ix.Terms(func(term string, ft uint32) bool {
		reply.Terms = append(reply.Terms, protocol.TermStat{Term: term, FT: ft})
		return true
	})
	return reply
}

func (l *Librarian) rank(scratch *search.Scratch, m *protocol.RankQuery) protocol.Message {
	eval := search.Evaluator(m.Evaluator)
	if !eval.Valid() {
		return &protocol.ErrorReply{Message: fmt.Sprintf("unknown evaluator %d", m.Evaluator)}
	}
	results, stats, err := l.engine.RankWithEval(scratch, m.Query, int(m.K), m.Weights, eval)
	if err != nil {
		if errors.Is(err, search.ErrEmptyQuery) {
			return &protocol.RankReply{Stats: stats}
		}
		return &protocol.ErrorReply{Message: err.Error()}
	}
	return rankReply(results, stats)
}

func (l *Librarian) score(scratch *search.Scratch, m *protocol.ScoreDocs) protocol.Message {
	results, stats, err := l.engine.ScoreDocsWith(scratch, m.Query, m.Docs, m.Weights)
	if err != nil {
		if errors.Is(err, search.ErrEmptyQuery) {
			return &protocol.RankReply{Stats: stats}
		}
		return &protocol.ErrorReply{Message: err.Error()}
	}
	return rankReply(results, stats)
}

func (l *Librarian) boolean(m *protocol.BooleanQuery) protocol.Message {
	q, err := l.engine.ParseBoolean(m.Expr)
	if err != nil {
		return &protocol.ErrorReply{Message: err.Error()}
	}
	docs, stats := l.engine.EvaluateBoolean(q)
	return &protocol.BooleanReply{Docs: docs, Stats: stats}
}

func (l *Librarian) shipIndex() protocol.Message {
	var buf bytes.Buffer
	if _, err := l.engine.Index().WriteTo(&buf); err != nil {
		return &protocol.ErrorReply{Message: fmt.Sprintf("serialise index: %v", err)}
	}
	return &protocol.IndexReply{Data: buf.Bytes()}
}

func rankReply(results []search.Result, stats search.Stats) *protocol.RankReply {
	reply := &protocol.RankReply{Results: make([]protocol.ScoredDoc, len(results)), Stats: stats}
	for i, r := range results {
		reply.Results[i] = protocol.ScoredDoc{Doc: r.Doc, Score: r.Score}
	}
	return reply
}

func (l *Librarian) fetch(m *protocol.FetchDocs) protocol.Message {
	reply := &protocol.FetchReply{Docs: make([]protocol.DocBlob, 0, len(m.Docs))}
	for _, id := range m.Docs {
		title, err := l.docs.Title(id)
		if err != nil {
			return &protocol.ErrorReply{Message: err.Error()}
		}
		blob := protocol.DocBlob{Doc: id, Title: title, Compressed: m.Compressed}
		if m.Compressed {
			data, err := l.docs.FetchCompressed(id)
			if err != nil {
				return &protocol.ErrorReply{Message: err.Error()}
			}
			blob.Data = append([]byte(nil), data...)
		} else {
			doc, err := l.docs.Fetch(id)
			if err != nil {
				return &protocol.ErrorReply{Message: err.Error()}
			}
			blob.Data = []byte(doc.Text)
		}
		reply.Docs = append(reply.Docs, blob)
	}
	return reply
}

// Server runs a librarian behind a TCP (or other) listener. Sessions are
// served concurrently; Close stops accepting, closes the listener, and
// waits for in-flight sessions to finish.
type Server struct {
	lib *Librarian
	ln  net.Listener

	wg     sync.WaitGroup
	closed chan struct{}
}

// Serve starts accepting sessions on ln. It returns immediately; use Close
// to stop.
func Serve(lib *Librarian, ln net.Listener) *Server {
	s := &Server{lib: lib, ln: ln, closed: make(chan struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the listener address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			// Session errors are peer-visible via ErrorReply; transport
			// failures just end the session.
			_ = s.lib.ServeConn(conn)
		}()
	}
}

// Close stops the server and waits for active sessions to drain.
func (s *Server) Close() error {
	close(s.closed)
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

// InProcessDialer returns a simnet.Dialer that connects to the given
// librarians over freshly created simulated links. Each Dial spawns a
// serving goroutine owned by the returned closer; call Close to wait for
// all sessions to end after closing the client connections.
//
// An endpoint name usually equals the librarian's collection name, but
// AddEndpoint can register extra names serving the same (or an equivalent)
// Librarian — the in-process way to stand up a replica set.
type InProcessDialer struct {
	mu    sync.Mutex
	links map[string]linkSpec
	wg    sync.WaitGroup
}

// ConnServer is any endpoint that can answer protocol messages on a stream —
// a *Librarian or an *UpdatableLibrarian. InProcessDialer accepts either, so
// in-process fleets can mix frozen and live-ingesting subcollections.
type ConnServer interface {
	Name() string
	ServeConn(conn io.ReadWriter) error
}

type linkSpec struct {
	lib ConnServer
	cfg simnet.LinkConfig
}

// NewInProcessDialer builds a dialer over the given librarians, all sharing
// one link configuration.
func NewInProcessDialer(libs []*Librarian, cfg simnet.LinkConfig) *InProcessDialer {
	d := &InProcessDialer{links: make(map[string]linkSpec, len(libs))}
	for _, lib := range libs {
		d.links[lib.Name()] = linkSpec{lib: lib, cfg: cfg}
	}
	return d
}

// AddEndpoint registers an endpoint name served by lib over its own link.
// Several endpoints may share one Librarian (it is concurrency-safe), which
// models replicas of a subcollection without duplicating the index. Safe to
// call while the dialer is in use, so replica sets can grow live.
func (d *InProcessDialer) AddEndpoint(name string, lib ConnServer, cfg simnet.LinkConfig) {
	d.mu.Lock()
	d.links[name] = linkSpec{lib: lib, cfg: cfg}
	d.mu.Unlock()
}

// SetLink overrides the link configuration for one endpoint (used by the
// WAN experiment where each site has its own round-trip time).
func (d *InProcessDialer) SetLink(name string, cfg simnet.LinkConfig) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	spec, ok := d.links[name]
	if !ok {
		return fmt.Errorf("librarian: unknown peer %q", name)
	}
	spec.cfg = cfg
	d.links[name] = spec
	return nil
}

// Dial implements simnet.Dialer.
func (d *InProcessDialer) Dial(name string) (net.Conn, error) {
	d.mu.Lock()
	spec, ok := d.links[name]
	d.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("librarian: unknown peer %q", name)
	}
	client, server := simnet.Pipe(spec.cfg)
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		defer server.Close()
		_ = spec.lib.ServeConn(server)
	}()
	return client, nil
}

// Wait blocks until every session spawned by Dial has finished; callers
// must close their client connections first.
func (d *InProcessDialer) Wait() { d.wg.Wait() }

var _ simnet.Dialer = (*InProcessDialer)(nil)
