package librarian

import (
	"context"
	"errors"
	"fmt"
	"time"

	"teraphim/internal/index"
	"teraphim/internal/search"
	"teraphim/internal/store"
)

// Streaming ingestion: Ingest enqueues document batches onto a bounded
// queue; background workers tokenize/compress/build each batch into an
// immutable segment off the serving path and publish it by appending to the
// manifest. The queue gives backpressure a shape — a full queue makes
// Ingest wait (context-aware) instead of letting indexing debt grow
// unboundedly — and the size-tiered merge policy keeps the segment count
// logarithmic in collection size so query fan-in stays cheap.

// Typed errors of the ingest API, consistent with the core taxonomy
// (core.ErrOverloaded etc.): match them with errors.Is.
var (
	// ErrIngestQueueFull reports that an Ingest call gave up (its context
	// expired) while waiting for room on the bounded ingest queue.
	ErrIngestQueueFull = errors.New("librarian: ingest queue full")
	// ErrLibrarianClosed reports an operation on an UpdatableLibrarian
	// after Close.
	ErrLibrarianClosed = errors.New("librarian: closed")
)

// Defaults for IngestConfig zero values.
const (
	defaultQueueDepth = 16
	defaultMergeFanIn = 4
	defaultMinSegDocs = 256
	maxTier           = 32
)

// IngestConfig tunes the streaming ingest pipeline. The zero value selects
// the defaults noted per field; set it with ConfigureIngest before the
// first Ingest call.
type IngestConfig struct {
	// QueueDepth bounds the ingest queue in batches (not documents).
	// Ingest blocks — honouring its context — once this many batches are
	// waiting to be built. Zero selects 16.
	QueueDepth int
	// Workers is the number of background segment builders. Zero selects 1,
	// which also makes segment order (and therefore doc-id assignment)
	// deterministic: batches are sealed in arrival order. More workers
	// parallelise builds at the cost of that determinism.
	Workers int
	// MergeFanIn is the size-tier compaction trigger K: a run of at least K
	// adjacent same-tier segments is merged into one. Zero selects 4;
	// negative disables background merging (Compact still works).
	MergeFanIn int
	// MinSegmentDocs is the width of tier 0: a segment's tier is the number
	// of times MinSegmentDocs·MergeFanIn^t fits under its doc count. Zero
	// selects 256.
	MinSegmentDocs int
}

func (u *UpdatableLibrarian) queueDepth() int {
	if u.cfg.QueueDepth > 0 {
		return u.cfg.QueueDepth
	}
	return defaultQueueDepth
}

func (u *UpdatableLibrarian) numWorkers() int {
	if u.cfg.Workers > 0 {
		return u.cfg.Workers
	}
	return 1
}

func (u *UpdatableLibrarian) fanIn() int {
	if u.cfg.MergeFanIn > 1 {
		return u.cfg.MergeFanIn
	}
	return defaultMergeFanIn
}

func (u *UpdatableLibrarian) minSegDocs() int {
	if u.cfg.MinSegmentDocs > 0 {
		return u.cfg.MinSegmentDocs
	}
	return defaultMinSegDocs
}

// tierOf buckets a segment size geometrically: tier t holds segments of
// [base·F^t, base·F^(t+1)) documents, so merging F tier-t segments yields a
// tier-t+1 segment and the segment count stays logarithmic in collection
// size.
func (u *UpdatableLibrarian) tierOf(docs uint32) int {
	base, fan := uint64(u.minSegDocs()), uint64(u.fanIn())
	t := 0
	for size := base; uint64(docs) >= size*fan && t < maxTier; size *= fan {
		t++
	}
	return t
}

// ConfigureIngest installs cfg. It must be called before the first Ingest
// (the pipeline's queue and workers are sized lazily on first use).
func (u *UpdatableLibrarian) ConfigureIngest(cfg IngestConfig) error {
	u.qmu.Lock()
	defer u.qmu.Unlock()
	if u.closed {
		return fmt.Errorf("librarian: configure %q: %w", u.name, ErrLibrarianClosed)
	}
	if u.started {
		return fmt.Errorf("librarian: configure %q: ingest pipeline already running", u.name)
	}
	u.cfg = cfg
	return nil
}

// ensureStartedLocked lazily creates the queue and spawns the workers.
// Caller holds u.qmu.
func (u *UpdatableLibrarian) ensureStartedLocked() {
	if u.started {
		return
	}
	u.queue = make(chan []store.Document, u.queueDepth())
	u.stop = make(chan struct{})
	u.started = true
	for i := 0; i < u.numWorkers(); i++ {
		u.workers.Add(1)
		go u.worker()
	}
}

// Ingest enqueues docs for background indexing and returns once the batch
// is accepted (not once it is visible — use Flush for that). The batch is
// copied, so the caller may reuse docs. When the bounded queue is full,
// Ingest waits for room until ctx is done, then fails with an error
// matching ErrIngestQueueFull — the backpressure signal: the caller is
// producing documents faster than the builders retire them.
func (u *UpdatableLibrarian) Ingest(ctx context.Context, docs []store.Document) error {
	if len(docs) == 0 {
		return nil
	}
	u.qmu.Lock()
	if u.closed {
		u.qmu.Unlock()
		return fmt.Errorf("librarian: ingest into %q: %w", u.name, ErrLibrarianClosed)
	}
	u.ensureStartedLocked()
	queue := u.queue
	u.enqueuers.Add(1)
	u.qmu.Unlock()
	defer u.enqueuers.Done()

	batch := append([]store.Document(nil), docs...)
	select {
	case queue <- batch:
	default:
		u.queueFullWaits.Add(1)
		if m := u.metrics.Load(); m != nil {
			m.queueFull.Inc()
		}
		select {
		case queue <- batch:
		case <-ctx.Done():
			return fmt.Errorf("librarian: ingest into %q: %w: %w", u.name, ErrIngestQueueFull, context.Cause(ctx))
		case <-u.closing:
			return fmt.Errorf("librarian: ingest into %q: %w", u.name, ErrLibrarianClosed)
		}
	}
	u.fmu.Lock()
	u.enqSeq++
	u.fmu.Unlock()
	u.docsQueued.Add(uint64(len(docs)))
	if m := u.metrics.Load(); m != nil {
		m.docsQueued.Add(uint64(len(docs)))
		m.queueLen.Set(int64(len(queue)))
	}
	return nil
}

// Flush blocks until every batch accepted by Ingest before the call has
// been built and published (or failed), honouring ctx. It returns the first
// asynchronous build error since the previous Flush, clearing it — the
// redesigned API's error channel for work that failed off the caller's
// goroutine.
func (u *UpdatableLibrarian) Flush(ctx context.Context) error {
	u.fmu.Lock()
	target := u.enqSeq
	for u.pubSeq < target {
		wake := u.notify
		u.fmu.Unlock()
		select {
		case <-wake:
		case <-ctx.Done():
			return fmt.Errorf("librarian: flush %q: %w", u.name, context.Cause(ctx))
		}
		u.fmu.Lock()
	}
	err := u.ingestErr
	u.ingestErr = nil
	u.fmu.Unlock()
	return err
}

// batchDone advances the publication sequence and wakes Flush waiters.
func (u *UpdatableLibrarian) batchDone(err error) {
	u.fmu.Lock()
	u.pubSeq++
	if err != nil && u.ingestErr == nil {
		u.ingestErr = err
	}
	close(u.notify)
	u.notify = make(chan struct{})
	u.fmu.Unlock()
}

func (u *UpdatableLibrarian) worker() {
	defer u.workers.Done()
	for {
		select {
		case batch := <-u.queue:
			u.buildBatch(batch)
		case <-u.stop:
			// Drain what Close let in, then exit.
			for {
				select {
				case batch := <-u.queue:
					u.buildBatch(batch)
				default:
					return
				}
			}
		}
	}
}

// buildBatch seals one batch into a segment and publishes it. Build
// failures are recorded for the next Flush; the pipeline keeps going.
func (u *UpdatableLibrarian) buildBatch(docs []store.Document) {
	if gate := u.testBuildGate; gate != nil {
		gate()
	}
	start := time.Now()
	build := u.testBuild
	if build == nil {
		build = func(docs []store.Document) (*Librarian, error) {
			return Build(u.name, docs, BuildOptions{Analyzer: u.analyzer, SkipInterval: u.skip})
		}
	}
	lib, err := build(docs)
	if err != nil {
		u.ingestFailures.Add(1)
		if m := u.metrics.Load(); m != nil {
			m.ingestErrors.Inc()
		}
		u.batchDone(fmt.Errorf("librarian: ingest into %q: %w", u.name, err))
		return
	}
	u.appendSegment(lib)
	u.docsIndexed.Add(uint64(len(docs)))
	u.batchesDone.Add(1)
	if m := u.metrics.Load(); m != nil {
		m.docsIndexed.Add(uint64(len(docs)))
		m.batches.Inc()
		m.buildSeconds.ObserveDuration(time.Since(start))
		m.queueLen.Set(int64(len(u.queue)))
	}
	u.batchDone(nil)
}

// Close stops the ingest pipeline: no new Ingest is accepted, queued
// batches are still built and published, and Close returns once workers and
// background merges have drained. Queries (ServeConn) and the compatibility
// surface keep working against the final manifest; further Ingest calls
// fail with ErrLibrarianClosed. Close is idempotent.
func (u *UpdatableLibrarian) Close() error {
	u.qmu.Lock()
	if u.closed {
		u.qmu.Unlock()
		return nil
	}
	u.closed = true
	started := u.started
	u.qmu.Unlock()
	close(u.closing)
	// Wait for in-flight enqueuers (closing unblocked any stuck on a full
	// queue); only then may the workers treat an empty queue as final.
	u.enqueuers.Wait()
	if started {
		close(u.stop)
		u.workers.Wait()
	}
	u.mergeWG.Wait()
	return nil
}

// Compact synchronously merges every segment present when it is called into
// one, honouring ctx between segments. Concurrent ingest may leave newer
// segments unmerged; a concurrent Update discards the compaction.
func (u *UpdatableLibrarian) Compact(ctx context.Context) error {
	u.mergeMu.Lock()
	defer u.mergeMu.Unlock()
	for {
		m := u.snapshot()
		if len(m.segs) <= 1 {
			return nil
		}
		installed, err := u.mergeRange(ctx, m.segs)
		if err != nil {
			return fmt.Errorf("librarian: compact %q: %w", u.name, err)
		}
		if installed {
			return nil
		}
		// The run vanished mid-merge (an Update replaced the collection);
		// re-read and retry against the new manifest.
	}
}

// maybeMerge schedules a background compaction pass if one is not already
// running. The pass repeatedly merges the first run of ≥ MergeFanIn
// adjacent same-tier segments until no run qualifies — adjacency is
// required because doc ids are positional: merging non-adjacent segments
// would renumber documents between them.
func (u *UpdatableLibrarian) maybeMerge() {
	if u.cfg.MergeFanIn < 0 {
		return
	}
	if !u.merging.CompareAndSwap(false, true) {
		return
	}
	u.mergeWG.Add(1)
	go func() {
		defer u.mergeWG.Done()
		defer u.merging.Store(false)
		u.mergeMu.Lock()
		defer u.mergeMu.Unlock()
		for {
			m := u.snapshot()
			i, j := u.findRun(m)
			if j == i {
				return
			}
			if installed, err := u.mergeRange(context.Background(), m.segs[i:j]); err != nil || !installed {
				return
			}
		}
	}()
}

// findRun returns the first run [i, j) of at least MergeFanIn adjacent
// segments sharing a tier, or (0, 0) if none qualifies.
func (u *UpdatableLibrarian) findRun(m *manifest) (int, int) {
	fan := u.fanIn()
	for i := 0; i < len(m.segs); {
		tier := u.tierOf(m.segs[i].docs)
		j := i + 1
		for j < len(m.segs) && u.tierOf(m.segs[j].docs) == tier {
			j++
		}
		if j-i >= fan {
			return i, j
		}
		i = j
	}
	return 0, 0
}

// mergeRange merges the given adjacent segments into one — the index via
// the exact index.Merge, the store rebuilt from the losslessly recovered
// documents — and splices the result into the current manifest in place of
// the inputs. If the inputs are no longer (contiguously) present when the
// merge completes, the result is dropped and installed=false is returned.
func (u *UpdatableLibrarian) mergeRange(ctx context.Context, run []*segment) (installed bool, err error) {
	start := time.Now()
	subs := make([]*index.Index, len(run))
	offs := make([]uint32, len(run))
	var total uint32
	for i, sg := range run {
		subs[i] = sg.lib.engine.Index()
		offs[i] = total
		total += sg.docs
	}
	m := u.snapshot()
	ix, err := index.Merge(subs, offs, total, m.builderOpts()...)
	if err != nil {
		return false, fmt.Errorf("merge %d segments: %w", len(run), err)
	}
	docs := make([]store.Document, 0, total)
	for _, sg := range run {
		if err := ctx.Err(); err != nil {
			return false, err
		}
		for id := uint32(0); id < sg.docs; id++ {
			d, err := sg.lib.docs.Fetch(id)
			if err != nil {
				return false, fmt.Errorf("recover doc %d: %w", sg.base+id, err)
			}
			docs = append(docs, d)
		}
	}
	st, err := store.Build(docs)
	if err != nil {
		return false, fmt.Errorf("rebuild store: %w", err)
	}
	lib, err := New(u.name, search.NewEngine(ix, u.analyzer), st)
	if err != nil {
		return false, err
	}
	merged := &segment{lib: lib, docs: total}

	installed = u.publish(func(cur *manifest) *manifest {
		at := findSegments(cur.segs, run)
		if at < 0 {
			return nil // inputs replaced mid-merge; drop the result
		}
		segs := make([]*segment, 0, len(cur.segs)-len(run)+1)
		segs = append(segs, cur.segs[:at]...)
		segs = append(segs, merged)
		segs = append(segs, cur.segs[at+len(run):]...)
		return u.newManifest(segs, cur.model)
	})
	if installed {
		u.mergesDone.Add(1)
		if mm := u.metrics.Load(); mm != nil {
			mm.merges.Inc()
			mm.mergeSeconds.ObserveDuration(time.Since(start))
		}
	}
	return installed, nil
}

// findSegments locates run as a contiguous subsequence of segs (matching by
// the segments' immutable librarians), or -1. Ingest only ever appends and
// merges splice, so a surviving run stays contiguous; only a wholesale
// Update can make it vanish.
func findSegments(segs, run []*segment) int {
	if len(run) == 0 {
		return -1
	}
outer:
	for i := 0; i+len(run) <= len(segs); i++ {
		for j := range run {
			if segs[i+j].lib != run[j].lib {
				continue outer
			}
		}
		return i
	}
	return -1
}

// SegmentInfo describes one live segment.
type SegmentInfo struct {
	Base       uint32 // global doc id of the segment's first document
	Docs       uint32
	Tier       int
	IndexBytes uint64
	StoreBytes uint64
}

// SegmentStats is a point-in-time snapshot of the segmented collection and
// its ingest pipeline.
type SegmentStats struct {
	Segments  []SegmentInfo
	TotalDocs uint32
	Epoch     uint64

	QueueLen int // batches waiting to be built
	QueueCap int

	DocsQueued     uint64 // accepted by Ingest
	DocsIndexed    uint64 // built and published
	BatchesBuilt   uint64
	Merges         uint64
	IngestFailures uint64
	QueueFullWaits uint64 // Ingest calls that hit a full queue
}

// SegmentStats reports the current manifest and pipeline counters.
func (u *UpdatableLibrarian) SegmentStats() SegmentStats {
	m := u.snapshot()
	s := SegmentStats{
		Segments:       make([]SegmentInfo, len(m.segs)),
		TotalDocs:      m.total,
		Epoch:          u.epoch.Load(),
		QueueCap:       u.queueDepth(),
		DocsQueued:     u.docsQueued.Load(),
		DocsIndexed:    u.docsIndexed.Load(),
		BatchesBuilt:   u.batchesDone.Load(),
		Merges:         u.mergesDone.Load(),
		IngestFailures: u.ingestFailures.Load(),
		QueueFullWaits: u.queueFullWaits.Load(),
	}
	for i, sg := range m.segs {
		s.Segments[i] = SegmentInfo{
			Base:       sg.base,
			Docs:       sg.docs,
			Tier:       u.tierOf(sg.docs),
			IndexBytes: sg.lib.engine.Index().SizeBytes(),
			StoreBytes: sg.lib.docs.CompressedSize(),
		}
	}
	u.qmu.Lock()
	if u.started {
		s.QueueLen = len(u.queue)
	}
	u.qmu.Unlock()
	return s
}
