package librarian

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"sync"

	"teraphim/internal/huffman"
	"teraphim/internal/index"
	"teraphim/internal/protocol"
	"teraphim/internal/search"
	"teraphim/internal/store"
	"teraphim/internal/textproc"
)

// An UpdatableLibrarian's collection is LSM-shaped: a sequence of immutable
// segments, each a complete mini-collection (index + compressed store) built
// by the ordinary Build machinery, tiled over the global doc-id space by
// per-segment offset bases. Queries fan in over the segments of one
// atomically-published manifest; ingest appends fresh segments; background
// merges compact adjacent runs. Nothing in a published manifest ever
// mutates, which is what lets the serving loops dispatch every frame — even
// pipelined, concurrent frames — against a consistent snapshot.

// segment is one immutable slice of the collection. base is the global id
// of the segment's local document 0; docs is its document count. The
// Librarian inside is a full single-collection librarian, reused for its
// engine and store.
type segment struct {
	lib  *Librarian
	base uint32
	docs uint32
}

// manifest is one published snapshot of the segmented collection. It is
// immutable after publication; the lazily-materialised merged views
// (whole-collection index, whole-collection librarian, vocabulary totals)
// are memoised per manifest behind sync.Once.
//
// model is the manifest's transfer model: the Huffman model advertised via
// ModelRequest and used to (re)compress documents shipped with
// FetchDocs{Compressed}. Each segment's store has its own model, so a
// multi-segment fetch transcodes through the transfer model (the escape
// mechanism makes any model able to code any text); a fresh Update installs
// its store's own model so the single-segment path ships stored blobs
// byte-identically, exactly like a plain Librarian.
type manifest struct {
	name     string
	analyzer *textproc.Analyzer
	skip     int
	segs     []*segment // ascending base, tiling [0, total)
	total    uint32
	model    *huffman.TextModel

	statsOnce sync.Once
	numTerms  uint32
	dictBytes uint64

	ixOnce sync.Once
	ix     *index.Index
	ixErr  error

	matOnce sync.Once
	mat     *Librarian
	matErr  error
}

func (m *manifest) builderOpts() []index.BuilderOption {
	switch {
	case m.skip > 0:
		return []index.BuilderOption{index.WithSkipInterval(uint32(m.skip))}
	case m.skip < 0:
		return []index.BuilderOption{index.WithSkipInterval(0)}
	}
	return nil
}

// single reports whether the manifest is a lone segment covering the whole
// collection — the shape every compatibility path (Update, initial build)
// produces, served through the same code as a plain Librarian for exact
// behavioural parity.
func (m *manifest) single() bool { return len(m.segs) == 1 }

// locate returns the segment holding global doc id — the ResolveGlobal
// binary-search idiom over segment bases. The caller checks id < m.total.
func (m *manifest) locate(id uint32) *segment {
	i := sort.Search(len(m.segs), func(i int) bool { return m.segs[i].base > id }) - 1
	return m.segs[i]
}

func (m *manifest) locateIdx(id uint32) int {
	return sort.Search(len(m.segs), func(i int) bool { return m.segs[i].base > id }) - 1
}

// localWeights computes the collection-wide w_{q,t} map for a query: f_t
// summed over every segment, N the manifest total. Feeding these to each
// segment engine as explicit weights (the CV mechanism) makes per-segment
// scores — and therefore the fan-in's merged ranking — identical to a
// single index built over the whole collection, because in the paper's
// cosine measure all collection dependence lives in w_{q,t}. Returns ok
// false when the query has no indexable terms (the ErrEmptyQuery case).
func (m *manifest) localWeights(query string) (map[string]float64, bool) {
	terms := m.analyzer.Terms(nil, query)
	if len(terms) == 0 {
		return nil, false
	}
	freqs := make(map[string]uint32, len(terms))
	for _, t := range terms {
		freqs[t]++
	}
	weights := make(map[string]float64, len(freqs))
	for t, fqt := range freqs {
		var ft uint64
		for _, sg := range m.segs {
			ft += uint64(sg.lib.engine.Index().TermFreq(t))
		}
		if ft == 0 {
			continue
		}
		weights[t] = search.CollectionWeight(fqt, uint32(ft), m.total)
	}
	return weights, true
}

func (m *manifest) rank(scratch *search.Scratch, q *protocol.RankQuery) protocol.Message {
	if m.single() {
		return m.segs[0].lib.rank(scratch, q)
	}
	k := int(q.K)
	if k <= 0 {
		return &protocol.ErrorReply{Message: fmt.Sprintf("search: k must be positive, got %d", k)}
	}
	eval := search.Evaluator(q.Evaluator)
	if !eval.Valid() {
		return &protocol.ErrorReply{Message: fmt.Sprintf("unknown evaluator %d", q.Evaluator)}
	}
	weights := q.Weights
	if weights == nil {
		var ok bool
		if weights, ok = m.localWeights(q.Query); !ok {
			return &protocol.RankReply{}
		}
	}
	var all []search.Result
	var stats search.Stats
	for _, sg := range m.segs {
		if sg.docs == 0 {
			continue
		}
		res, st, err := sg.lib.engine.RankWithEval(scratch, q.Query, k, weights, eval)
		if err != nil {
			if errors.Is(err, search.ErrEmptyQuery) {
				return &protocol.RankReply{Stats: stats}
			}
			return &protocol.ErrorReply{Message: err.Error()}
		}
		stats.Add(st)
		for i := range res {
			res[i].Doc += sg.base
		}
		all = append(all, res...)
	}
	// Each segment returned its exact local top k; the global top k is the
	// best k of the union. SortResults orders best-first with ties broken
	// by ascending global doc id — the same order topK extraction produces
	// on a single index.
	search.SortResults(all)
	if len(all) > k {
		all = all[:k]
	}
	return rankReply(all, stats)
}

func (m *manifest) score(scratch *search.Scratch, q *protocol.ScoreDocs) protocol.Message {
	if m.single() {
		return m.segs[0].lib.score(scratch, q)
	}
	weights := q.Weights
	if weights == nil {
		var ok bool
		if weights, ok = m.localWeights(q.Query); !ok {
			return &protocol.RankReply{}
		}
	} else if len(m.analyzer.Terms(nil, q.Query)) == 0 {
		// Parity with the single-index evaluator: an unindexable query is
		// reported (as an empty ranking) before any doc-id validation.
		return &protocol.RankReply{}
	}
	// Partition the nominated docs by segment, keeping request positions so
	// the reply is reassembled in requested order like ScoreDocs demands.
	segDocs := make([][]uint32, len(m.segs))
	segPos := make([][]int, len(m.segs))
	for i, d := range q.Docs {
		if d >= m.total {
			return &protocol.ErrorReply{Message: fmt.Sprintf(
				"search: score doc %d: index: doc %d outside collection of %d", d, d, m.total)}
		}
		si := m.locateIdx(d)
		segDocs[si] = append(segDocs[si], d-m.segs[si].base)
		segPos[si] = append(segPos[si], i)
	}
	results := make([]search.Result, len(q.Docs))
	var stats search.Stats
	for si, docs := range segDocs {
		if len(docs) == 0 {
			continue
		}
		sg := m.segs[si]
		res, st, err := sg.lib.engine.ScoreDocsWith(scratch, q.Query, docs, weights)
		if err != nil {
			if errors.Is(err, search.ErrEmptyQuery) {
				return &protocol.RankReply{Stats: stats}
			}
			return &protocol.ErrorReply{Message: err.Error()}
		}
		stats.Add(st)
		for j, r := range res {
			results[segPos[si][j]] = search.Result{Doc: r.Doc + sg.base, Score: r.Score}
		}
	}
	return rankReply(results, stats)
}

// batch mirrors Librarian.batch: items evaluated in order on the session
// scratch, failure is per item.
func (m *manifest) batch(scratch *search.Scratch, b *protocol.BatchQuery) protocol.Message {
	reply := &protocol.BatchReply{Items: make([]protocol.Message, len(b.Items))}
	for i, it := range b.Items {
		switch q := it.(type) {
		case *protocol.RankQuery:
			reply.Items[i] = m.rank(scratch, q)
		case *protocol.ScoreDocs:
			reply.Items[i] = m.score(scratch, q)
		default:
			reply.Items[i] = &protocol.ErrorReply{Message: fmt.Sprintf("unbatchable message %v", it.Type())}
		}
	}
	return reply
}

func (m *manifest) boolean(q *protocol.BooleanQuery) protocol.Message {
	if m.single() {
		return m.segs[0].lib.boolean(q)
	}
	var docs []uint32
	var stats search.Stats
	for _, sg := range m.segs {
		bq, err := sg.lib.engine.ParseBoolean(q.Expr)
		if err != nil {
			return &protocol.ErrorReply{Message: err.Error()}
		}
		res, st := sg.lib.engine.EvaluateBoolean(bq)
		stats.Add(st)
		// Per-segment evaluation composes exactly: NOT complements within
		// each segment's range, and concatenation in base order restores the
		// global ascending-id order the single-index evaluator returns.
		for _, d := range res {
			docs = append(docs, d+sg.base)
		}
	}
	return &protocol.BooleanReply{Docs: docs, Stats: stats}
}

func (m *manifest) vocab() protocol.Message {
	if m.single() {
		return m.segs[0].lib.vocab()
	}
	fts := make(map[string]uint32)
	for _, sg := range m.segs {
		sg.lib.engine.Index().Terms(func(term string, ft uint32) bool {
			fts[term] += ft
			return true
		})
	}
	terms := make([]string, 0, len(fts))
	for t := range fts {
		terms = append(terms, t)
	}
	sort.Strings(terms) // single-index replies are lexicographic; match them
	reply := &protocol.VocabReply{Terms: make([]protocol.TermStat, 0, len(terms))}
	for _, t := range terms {
		reply.Terms = append(reply.Terms, protocol.TermStat{Term: t, FT: fts[t]})
	}
	return reply
}

func (m *manifest) initStats() {
	m.statsOnce.Do(func() {
		seen := make(map[string]struct{})
		for _, sg := range m.segs {
			sg.lib.engine.Index().Terms(func(term string, ft uint32) bool {
				if _, ok := seen[term]; !ok {
					seen[term] = struct{}{}
					m.dictBytes += uint64(len(term)) + 8
				}
				return true
			})
		}
		m.numTerms = uint32(len(seen))
	})
}

func (m *manifest) hello(granted protocol.Features) protocol.Message {
	if m.single() {
		return m.segs[0].lib.hello(granted)
	}
	m.initStats()
	var ixBytes, storeBytes uint64
	for _, sg := range m.segs {
		ixBytes += sg.lib.engine.Index().SizeBytes()
		storeBytes += sg.lib.docs.CompressedSize()
	}
	return &protocol.HelloReply{
		Name:       m.name,
		NumDocs:    m.total,
		NumTerms:   m.numTerms,
		IndexBytes: ixBytes,
		VocabBytes: m.dictBytes,
		StoreBytes: storeBytes,
		Features:   granted,
	}
}

func (m *manifest) fetch(q *protocol.FetchDocs) protocol.Message {
	// The fast path requires the stored blobs to be coded with the
	// manifest's transfer model — true for any manifest Update or the
	// constructor produced, not after a compaction retrained the store.
	if m.single() && m.segs[0].lib.docs.Model() == m.model {
		return m.segs[0].lib.fetch(q)
	}
	reply := &protocol.FetchReply{Docs: make([]protocol.DocBlob, 0, len(q.Docs))}
	for _, id := range q.Docs {
		if id >= m.total {
			return &protocol.ErrorReply{Message: fmt.Sprintf("store: doc %d outside collection of %d", id, m.total)}
		}
		sg := m.locate(id)
		doc, err := sg.lib.docs.Fetch(id - sg.base)
		if err != nil {
			return &protocol.ErrorReply{Message: err.Error()}
		}
		blob := protocol.DocBlob{Doc: id, Title: doc.Title, Compressed: q.Compressed}
		if q.Compressed {
			data, err := m.model.CompressDoc(doc.Text)
			if err != nil {
				return &protocol.ErrorReply{Message: err.Error()}
			}
			blob.Data = data
		} else {
			blob.Data = []byte(doc.Text)
		}
		reply.Docs = append(reply.Docs, blob)
	}
	return reply
}

func (m *manifest) modelReply() protocol.Message {
	return &protocol.ModelReply{Model: m.model.Marshal()}
}

// mergedIndex materialises (once per manifest) the whole-collection index by
// merging the segment indexes — index.Merge is exact, so the result is
// identical to indexing the concatenated collection directly.
func (m *manifest) mergedIndex() (*index.Index, error) {
	m.ixOnce.Do(func() {
		if m.single() {
			m.ix = m.segs[0].lib.engine.Index()
			return
		}
		subs := make([]*index.Index, len(m.segs))
		offs := make([]uint32, len(m.segs))
		for i, sg := range m.segs {
			subs[i] = sg.lib.engine.Index()
			offs[i] = sg.base
		}
		m.ix, m.ixErr = index.Merge(subs, offs, m.total, m.builderOpts()...)
	})
	return m.ix, m.ixErr
}

func (m *manifest) shipIndex() protocol.Message {
	if m.single() {
		return m.segs[0].lib.shipIndex()
	}
	ix, err := m.mergedIndex()
	if err != nil {
		return &protocol.ErrorReply{Message: fmt.Sprintf("serialise index: %v", err)}
	}
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		return &protocol.ErrorReply{Message: fmt.Sprintf("serialise index: %v", err)}
	}
	return &protocol.IndexReply{Data: buf.Bytes()}
}

// materialize collapses the manifest into one ordinary Librarian (once per
// manifest): the merged index plus a store rebuilt from the segments'
// losslessly recovered documents. It backs the compatibility surface
// (Current/Engine) on multi-segment manifests; single-segment manifests
// return their librarian unchanged.
func (m *manifest) materialize() (*Librarian, error) {
	m.matOnce.Do(func() {
		if m.single() {
			m.mat = m.segs[0].lib
			return
		}
		ix, err := m.mergedIndex()
		if err != nil {
			m.matErr = fmt.Errorf("librarian %q: materialize index: %w", m.name, err)
			return
		}
		docs, err := m.allDocs()
		if err != nil {
			m.matErr = err
			return
		}
		st, err := store.Build(docs)
		if err != nil {
			m.matErr = fmt.Errorf("librarian %q: materialize store: %w", m.name, err)
			return
		}
		m.mat, m.matErr = New(m.name, search.NewEngine(ix, m.analyzer), st)
	})
	return m.mat, m.matErr
}

// allDocs recovers every document from the segment stores, in global id
// order (the stores are lossless, so no side copy of the text exists).
func (m *manifest) allDocs() ([]store.Document, error) {
	docs := make([]store.Document, 0, m.total)
	for _, sg := range m.segs {
		for id := uint32(0); id < sg.docs; id++ {
			d, err := sg.lib.docs.Fetch(id)
			if err != nil {
				return nil, fmt.Errorf("librarian %q: recover doc %d: %w", m.name, sg.base+id, err)
			}
			docs = append(docs, d)
		}
	}
	return docs, nil
}
