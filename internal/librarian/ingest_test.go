package librarian

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync/atomic"
	"testing"

	"teraphim/internal/protocol"
	"teraphim/internal/store"
)

func newIngestable(t *testing.T, n int, cfg IngestConfig) *UpdatableLibrarian {
	t.Helper()
	u, err := NewUpdatable("ING", synthCorpus(n), BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := u.ConfigureIngest(cfg); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { u.Close() })
	return u
}

// TestIngestFlushVisibility pins the redesigned API's basic contract: Ingest
// returns on acceptance, Flush returns once the batch is queryable.
func TestIngestFlushVisibility(t *testing.T) {
	u := newIngestable(t, 4, IngestConfig{MergeFanIn: -1})
	ctx := context.Background()

	if err := u.Ingest(ctx, []store.Document{
		{Title: "new-0", Text: "bioluminescent plankton"},
		{Title: "new-1", Text: "bioluminescent algae bloom"},
	}); err != nil {
		t.Fatal(err)
	}
	if err := u.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	rr := rankOf(t, callServer(t, u, &protocol.RankQuery{Query: "bioluminescent", K: 10}))
	if len(rr.Results) != 2 {
		t.Fatalf("ingested docs not ranked: %+v", rr.Results)
	}
	for _, r := range rr.Results {
		if r.Doc != 4 && r.Doc != 5 {
			t.Fatalf("ingested doc got id %d, want 4 or 5", r.Doc)
		}
	}

	st := u.SegmentStats()
	if st.TotalDocs != 6 || st.DocsQueued != 2 || st.DocsIndexed != 2 || st.BatchesBuilt != 1 {
		t.Fatalf("stats after flush: %+v", st)
	}
	if st.Epoch == 0 {
		t.Fatal("epoch did not advance on ingest publication")
	}
	if len(st.Segments) != 2 {
		t.Fatalf("segments = %d, want 2 (merging disabled)", len(st.Segments))
	}

	// An empty batch is a no-op, not an enqueue.
	if err := u.Ingest(ctx, nil); err != nil {
		t.Fatal(err)
	}
	if got := u.SegmentStats().BatchesBuilt; got != 1 {
		t.Fatalf("empty ingest built a batch: %d", got)
	}
}

// TestAppendDoesNotRereadStore is the regression test for the old Append,
// which re-fetched every existing document to rebuild the whole collection.
// The segmented Append must seal new docs into a fresh segment without a
// single read of the existing store.
func TestAppendDoesNotRereadStore(t *testing.T) {
	u, err := NewUpdatable("ING", synthCorpus(20), BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer u.Close()
	st := u.Current().Store()
	before := st.Fetches()

	if err := u.Append([]store.Document{{Title: "fresh", Text: "isotope spectrometer"}}); err != nil {
		t.Fatal(err)
	}

	if got := st.Fetches(); got != before {
		t.Fatalf("Append read the existing store %d times; want 0", got-before)
	}
	rr := rankOf(t, callServer(t, u, &protocol.RankQuery{Query: "spectrometer", K: 5}))
	if len(rr.Results) != 1 || rr.Results[0].Doc != 20 {
		t.Fatalf("appended doc not ranked at id 20: %+v", rr.Results)
	}
	if got := st.Fetches(); got != before {
		t.Fatalf("ranking after Append read the old store %d times; want 0", got-before)
	}
}

// TestIngestBackpressureTyped exercises the bounded queue deterministically:
// a gated builder pins the queue full, and an Ingest whose context is
// already cancelled must fail with the typed ErrIngestQueueFull.
func TestIngestBackpressureTyped(t *testing.T) {
	u := newIngestable(t, 2, IngestConfig{QueueDepth: 1, MergeFanIn: -1})
	gate := make(chan struct{})
	entered := make(chan struct{}, 8)
	u.testBuildGate = func() { entered <- struct{}{}; <-gate }
	ctx := context.Background()

	doc := func(i int) []store.Document {
		return []store.Document{{Title: fmt.Sprintf("bp-%d", i), Text: "quasar pulsar"}}
	}
	// Batch 0 is picked up by the worker, which blocks in its build.
	if err := u.Ingest(ctx, doc(0)); err != nil {
		t.Fatal(err)
	}
	<-entered
	// Batch 1 fills the one queue slot.
	if err := u.Ingest(ctx, doc(1)); err != nil {
		t.Fatal(err)
	}
	// Batch 2 finds the queue full and its context dead: typed failure.
	dead, cancel := context.WithCancel(ctx)
	cancel()
	err := u.Ingest(dead, doc(2))
	if !errors.Is(err, ErrIngestQueueFull) {
		t.Fatalf("full-queue ingest error = %v, want ErrIngestQueueFull", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error does not carry the context cause: %v", err)
	}
	if got := u.SegmentStats().QueueFullWaits; got == 0 {
		t.Fatal("queue-full wait not counted")
	}

	close(gate)
	if err := u.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	st := u.SegmentStats()
	if st.TotalDocs != 4 || st.DocsIndexed != 2 {
		t.Fatalf("after releasing gate: %+v", st)
	}
}

// TestFlushReturnsAsyncBuildError pins the error channel for work that fails
// off the caller's goroutine: the first failure since the last Flush is
// returned by the next Flush, then cleared.
func TestFlushReturnsAsyncBuildError(t *testing.T) {
	u := newIngestable(t, 2, IngestConfig{MergeFanIn: -1})
	boom := errors.New("synthetic build failure")
	u.testBuild = func(docs []store.Document) (*Librarian, error) { return nil, boom }
	ctx := context.Background()

	if err := u.Ingest(ctx, []store.Document{{Title: "x", Text: "doomed"}}); err != nil {
		t.Fatal(err)
	}
	if err := u.Flush(ctx); !errors.Is(err, boom) {
		t.Fatalf("Flush error = %v, want the async build failure", err)
	}
	if err := u.Flush(ctx); err != nil {
		t.Fatalf("second Flush should be clean, got %v", err)
	}
	st := u.SegmentStats()
	if st.IngestFailures != 1 || st.TotalDocs != 2 || st.DocsIndexed != 0 {
		t.Fatalf("failed batch leaked into the collection: %+v", st)
	}
}

// TestCloseDrainsAndRejects: Close stops intake, still builds what was
// queued, and is idempotent; post-Close Ingest/ConfigureIngest fail typed.
func TestCloseDrainsAndRejects(t *testing.T) {
	u := newIngestable(t, 2, IngestConfig{QueueDepth: 4, MergeFanIn: -1})
	gate := make(chan struct{})
	entered := make(chan struct{}, 8)
	u.testBuildGate = func() { entered <- struct{}{}; <-gate }
	ctx := context.Background()

	doc := func(i int) []store.Document {
		return []store.Document{{Title: fmt.Sprintf("cl-%d", i), Text: "meridian sextant"}}
	}
	if err := u.Ingest(ctx, doc(0)); err != nil {
		t.Fatal(err)
	}
	<-entered // worker blocked mid-build
	if err := u.Ingest(ctx, doc(1)); err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	go func() { u.Close(); close(done) }()
	// Wait until Close has flipped the closed flag…
	for {
		if err := u.Ingest(ctx, doc(9)); errors.Is(err, ErrLibrarianClosed) {
			break
		} else if err != nil {
			t.Fatalf("unexpected ingest error while closing: %v", err)
		}
	}
	// …then release the builder: Close must still drain batch 1.
	close(gate)
	<-done

	st := u.SegmentStats()
	if st.TotalDocs < 4 {
		t.Fatalf("Close dropped queued batches: %+v", st)
	}
	if err := u.Ingest(ctx, doc(3)); !errors.Is(err, ErrLibrarianClosed) {
		t.Fatalf("post-Close ingest error = %v, want ErrLibrarianClosed", err)
	}
	if err := u.ConfigureIngest(IngestConfig{}); !errors.Is(err, ErrLibrarianClosed) {
		t.Fatalf("post-Close configure error = %v, want ErrLibrarianClosed", err)
	}
	if err := u.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	// Serving continues against the final manifest.
	rr := rankOf(t, callServer(t, u, &protocol.RankQuery{Query: "sextant", K: 10}))
	if len(rr.Results) == 0 {
		t.Fatal("closed librarian stopped answering queries")
	}
}

// TestMergePolicySizeTiered drives the background size-tiered policy: many
// tier-0 single-doc segments must be folded by runs of MergeFanIn without
// changing the collection's contents or ids.
func TestMergePolicySizeTiered(t *testing.T) {
	u := newIngestable(t, 1, IngestConfig{MinSegmentDocs: 1, MergeFanIn: 2, QueueDepth: 32})
	ctx := context.Background()
	for i := 0; i < 15; i++ {
		if err := u.Ingest(ctx, []store.Document{
			{Title: fmt.Sprintf("m-%02d", i), Text: fmt.Sprintf("glacier moraine crevasse g%d", i)},
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := u.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if err := u.Close(); err != nil { // waits out the background merge pass
		t.Fatal(err)
	}

	st := u.SegmentStats()
	if st.TotalDocs != 16 {
		t.Fatalf("merging changed the doc count: %+v", st)
	}
	if st.Merges == 0 {
		t.Fatalf("no background merges ran: %+v", st)
	}
	if len(st.Segments) >= 16 {
		t.Fatalf("segment count not reduced: %d segments", len(st.Segments))
	}
	var base uint32
	for i, sg := range st.Segments {
		if sg.Base != base {
			t.Fatalf("segment %d base %d, want %d", i, sg.Base, base)
		}
		base += sg.Docs
	}
	// Contents intact: every ingested doc still ranks under its unique term.
	for i := 0; i < 15; i++ {
		rr := rankOf(t, callServer(t, u, &protocol.RankQuery{Query: fmt.Sprintf("g%d", i), K: 3}))
		if len(rr.Results) != 1 || rr.Results[0].Doc != uint32(1+i) {
			t.Fatalf("doc m-%02d lost or renumbered after merges: %+v", i, rr.Results)
		}
	}
}

// TestEpochOnUpdateUnderMergeStorm: every publication — ingested batch,
// background merge, Compact, Update — must bump the epoch exactly once and
// fire OnUpdate exactly once, even when they race.
func TestEpochOnUpdateUnderMergeStorm(t *testing.T) {
	u := newIngestable(t, 1, IngestConfig{MinSegmentDocs: 1, MergeFanIn: 2, QueueDepth: 32})
	var fired atomic.Uint64
	u.OnUpdate(func() { fired.Add(1) })
	ctx := context.Background()

	ingestDone := make(chan error, 1)
	go func() {
		for i := 0; i < 20; i++ {
			if err := u.Ingest(ctx, []store.Document{
				{Title: fmt.Sprintf("s-%02d", i), Text: "storm surge barometer"},
			}); err != nil {
				ingestDone <- err
				return
			}
		}
		ingestDone <- nil
	}()
	for i := 0; i < 4; i++ {
		if err := u.Compact(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if err := <-ingestDone; err != nil {
		t.Fatal(err)
	}
	if err := u.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if err := u.Update(synthCorpus(5)); err != nil {
		t.Fatal(err)
	}
	if err := u.Close(); err != nil {
		t.Fatal(err)
	}

	if got, want := fired.Load(), u.Epoch(); got != want {
		t.Fatalf("OnUpdate fired %d times over %d epochs", got, want)
	}
	if u.Epoch() < 21 { // 20 batches + ≥1 compaction/merge + 1 update
		t.Fatalf("epoch %d implausibly low", u.Epoch())
	}
	if got := u.SegmentStats().TotalDocs; got != 5 {
		t.Fatalf("final Update did not win: %d docs", got)
	}
}

// TestSnapshotNeverMixture runs a seed-framing wire session while batches
// land and merges fire: every ranking must reflect exactly one published
// manifest — its result count is a cumulative batch total, never a value in
// between — and counts only grow, since dispatch snapshots per frame.
func TestSnapshotNeverMixture(t *testing.T) {
	u := newIngestable(t, 3, IngestConfig{MinSegmentDocs: 1, MergeFanIn: 2, QueueDepth: 32})
	ctx := context.Background()

	sizes := []int{1, 2, 3, 4}
	valid := map[int]bool{3: true}
	cum := 3
	for _, s := range sizes {
		cum += s
		valid[cum] = true
	}

	client, server := net.Pipe()
	srvDone := make(chan struct{})
	go func() { defer close(srvDone); _ = u.ServeConn(server) }()
	defer func() { client.Close(); server.Close(); <-srvDone }()

	ingestDone := make(chan error, 1)
	go func() {
		for bi, s := range sizes {
			batch := make([]store.Document, s)
			for j := range batch {
				batch[j] = store.Document{Title: fmt.Sprintf("b%d-%d", bi, j), Text: "ubiquitous sentinel beacon"}
			}
			if err := u.Ingest(ctx, batch); err != nil {
				ingestDone <- err
				return
			}
		}
		ingestDone <- u.Flush(ctx)
	}()

	// The seed corpus contains no "sentinel", so the hit count equals the
	// ingested-doc count of whichever manifest answered: 0, 1, 3, 6 or 10.
	last := 0
	for q := 0; q < 200; q++ {
		if _, err := protocol.WriteMessage(client, &protocol.RankQuery{Query: "sentinel", K: 1000}); err != nil {
			t.Fatal(err)
		}
		reply, _, err := protocol.ReadMessage(client)
		if err != nil {
			t.Fatal(err)
		}
		rr, ok := reply.(*protocol.RankReply)
		if !ok {
			t.Fatalf("query %d: got %T", q, reply)
		}
		n := len(rr.Results)
		if !valid[n+3] {
			t.Fatalf("query %d saw %d sentinel docs — a mixture of manifests", q, n)
		}
		if n < last {
			t.Fatalf("query %d count went backwards: %d after %d", q, n, last)
		}
		last = n
	}

	if err := <-ingestDone; err != nil {
		t.Fatal(err)
	}
	rr := rankOf(t, callServer(t, u, &protocol.RankQuery{Query: "sentinel", K: 1000}))
	if len(rr.Results) != 10 {
		t.Fatalf("after flush: %d sentinel docs, want 10", len(rr.Results))
	}
}
