package librarian

import (
	"net"
	"sync"
	"testing"

	"teraphim/internal/protocol"
	"teraphim/internal/store"
	"teraphim/internal/textproc"
)

func newUpdatable(t *testing.T) *UpdatableLibrarian {
	t.Helper()
	u, err := NewUpdatable("UP", []store.Document{
		{Title: "d0", Text: "original cats and dogs"},
		{Title: "d1", Text: "original fish"},
	}, BuildOptions{Analyzer: textproc.NewAnalyzer(textproc.WithoutStopwords(), textproc.WithoutStemming())})
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func TestUpdateSwapsCollection(t *testing.T) {
	u := newUpdatable(t)
	before := u.Current()
	ranking, err := u.Engine().Rank("cats", 5, nil)
	results := ranking.Results
	if err != nil || len(results) != 1 {
		t.Fatalf("before update: %v, %v", results, err)
	}
	err = u.Update([]store.Document{
		{Title: "n0", Text: "replacement ferrets"},
		{Title: "n1", Text: "replacement cats everywhere cats"},
		{Title: "n2", Text: "more ferrets"},
	})
	if err != nil {
		t.Fatal(err)
	}
	ranking, err = u.Engine().Rank("ferrets", 5, nil)
	results = ranking.Results
	if err != nil || len(results) != 2 {
		t.Fatalf("after update: %v, %v", results, err)
	}
	// Old snapshot stays intact for in-flight users.
	ranking, err = before.Engine().Rank("dogs", 5, nil)
	results = ranking.Results
	if err != nil || len(results) != 1 {
		t.Fatalf("old snapshot: %v, %v", results, err)
	}
	if u.Name() != "UP" {
		t.Fatal("name lost")
	}
}

func TestAppendKeepsExistingDocs(t *testing.T) {
	u := newUpdatable(t)
	if err := u.Append([]store.Document{{Title: "d2", Text: "brand new parrots"}}); err != nil {
		t.Fatal(err)
	}
	st := u.Current().Store()
	if st.NumDocs() != 3 {
		t.Fatalf("after append: %d docs", st.NumDocs())
	}
	// Existing documents keep their ids and text.
	doc, err := st.Fetch(0)
	if err != nil || doc.Text != "original cats and dogs" {
		t.Fatalf("doc 0 after append: %+v, %v", doc, err)
	}
	doc, err = st.Fetch(2)
	if err != nil || doc.Title != "d2" {
		t.Fatalf("doc 2 after append: %+v, %v", doc, err)
	}
	ranking, err := u.Engine().Rank("parrots", 5, nil)
	results := ranking.Results
	if err != nil || len(results) != 1 || results[0].Doc != 2 {
		t.Fatalf("parrots: %v, %v", results, err)
	}
}

// TestEpochAndOnUpdate pins the cache-invalidation signal: every successful
// swap bumps the epoch and then fires the registered callbacks in order,
// after the new collection is already serving.
func TestEpochAndOnUpdate(t *testing.T) {
	u := newUpdatable(t)
	if u.Epoch() != 0 {
		t.Fatalf("fresh epoch = %d, want 0", u.Epoch())
	}
	var fired []string
	u.OnUpdate(func() {
		// The callback runs after the swap: the new collection is visible.
		ranking, err := u.Engine().Rank("swapped", 5, nil)
		if err != nil || len(ranking.Results) == 0 {
			t.Errorf("callback ran before the swap: %v, %v", ranking.Results, err)
		}
		fired = append(fired, "first")
	})
	u.OnUpdate(nil) // must be ignored, not panic later
	u.OnUpdate(func() { fired = append(fired, "second") })

	if err := u.Update([]store.Document{{Title: "n0", Text: "swapped collection"}}); err != nil {
		t.Fatal(err)
	}
	if u.Epoch() != 1 {
		t.Fatalf("epoch after update = %d, want 1", u.Epoch())
	}
	if len(fired) != 2 || fired[0] != "first" || fired[1] != "second" {
		t.Fatalf("callbacks fired = %v, want [first second] in order", fired)
	}

	// Append goes through Update, so it signals too.
	if err := u.Append([]store.Document{{Title: "n1", Text: "swapped again"}}); err != nil {
		t.Fatal(err)
	}
	if u.Epoch() != 2 {
		t.Fatalf("epoch after append = %d, want 2", u.Epoch())
	}
	if len(fired) != 4 {
		t.Fatalf("callbacks fired %d times after two swaps, want 4", len(fired))
	}
}

// TestServeAcrossUpdate drives a wire session through an update: requests
// before the swap see the old collection, requests after see the new one,
// on the same connection.
func TestServeAcrossUpdate(t *testing.T) {
	u := newUpdatable(t)
	client, server := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = u.ServeConn(server)
	}()
	defer func() {
		client.Close()
		server.Close()
		<-done
	}()
	ask := func(query string) int {
		t.Helper()
		if _, err := protocol.WriteMessage(client, &protocol.RankQuery{Query: query, K: 5}); err != nil {
			t.Fatal(err)
		}
		reply, _, err := protocol.ReadMessage(client)
		if err != nil {
			t.Fatal(err)
		}
		rr, ok := reply.(*protocol.RankReply)
		if !ok {
			t.Fatalf("got %T", reply)
		}
		return len(rr.Results)
	}
	if n := ask("cats"); n != 1 {
		t.Fatalf("pre-update cats: %d", n)
	}
	if err := u.Update([]store.Document{{Title: "n0", Text: "only ferrets now"}}); err != nil {
		t.Fatal(err)
	}
	if n := ask("cats"); n != 0 {
		t.Fatalf("post-update cats: %d (old collection still serving)", n)
	}
	if n := ask("ferrets"); n != 1 {
		t.Fatalf("post-update ferrets: %d", n)
	}
}

// TestConcurrentQueriesDuringUpdate exercises the swap under the race
// detector: readers and an updater run simultaneously.
func TestConcurrentQueriesDuringUpdate(t *testing.T) {
	u := newUpdatable(t)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					errs <- nil
					return
				default:
				}
				if _, err := u.Engine().Rank("cats ferrets", 5, nil); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	for round := 0; round < 20; round++ {
		docs := []store.Document{
			{Title: "a", Text: "cats cats cats"},
			{Title: "b", Text: "ferrets ferrets"},
		}
		if round%2 == 1 {
			docs = append(docs, store.Document{Title: "c", Text: "cats and ferrets"})
		}
		if err := u.Update(docs); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}
