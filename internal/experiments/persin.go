package experiments

import (
	"fmt"
	"io"

	"teraphim/internal/eval"
	"teraphim/internal/index"
	"teraphim/internal/search"
	"teraphim/internal/trecsynth"
)

// FreqSorted reproduces the direction of Persin, Zobel & Sacks-Davis'
// result, which the paper's §5 marks as future work: with a
// frequency-sorted index and per-query thresholding, "the volume of index
// information processed can be reduced by a factor of five without reducing
// effectiveness". Thresholds sweep from exact evaluation to aggressive
// pruning; effectiveness and decoded postings are reported for the short
// query set against the MS collection.
func (r *Runner) FreqSorted(w io.Writer) error {
	fs, err := index.BuildFreqSorted(r.mono.Engine().Index())
	if err != nil {
		return fmt.Errorf("experiments: build frequency-sorted index: %w", err)
	}
	engine := search.NewPrunedEngine(fs, r.analyzer)
	queries := r.Corpus.QueriesOf(trecsynth.ShortQuery)

	line(w, "Frequency-sorted index with per-query thresholding (short queries, MS ranking)\n")
	line(w, "%-24s %18s %14s %16s\n", "Thresholds", "postings/query", "11-pt avg (%)", "Rel. in top 20")
	for _, th := range []search.Thresholds{
		{},
		{Insert: 0.30, Add: 0.20},
		{Insert: 0.45, Add: 0.35},
		{Insert: 0.60, Add: 0.50},
	} {
		runs := make(map[string]eval.Run, len(queries))
		var decoded uint64
		for _, q := range queries {
			ranking, err := engine.Rank(q.Text, evalDepth, th)
			results, stats := ranking.Results, ranking.Stats
			if err != nil {
				return err
			}
			decoded += stats.PostingsDecoded
			run := make(eval.Run, len(results))
			for i, res := range results {
				run[i] = r.keys[res.Doc]
			}
			runs[q.ID] = run
		}
		s := eval.Evaluate(r.Corpus.Qrels, runs, evalDepth, topK)
		label := "exact (0/0)"
		if th.Insert > 0 {
			label = fmt.Sprintf("insert %.2f add %.2f", th.Insert, th.Add)
		}
		line(w, "%-24s %18d %14.2f %16.1f\n",
			label, decoded/uint64(len(queries)), s.ElevenPtAvg, s.MeanRelevantTop)
	}
	line(w, "(frequency-sorted index: %d B vs document-sorted %d B)\n",
		fs.SizeBytes(), r.mono.Engine().Index().SizeBytes())
	return nil
}

// QuantizedWeights measures the MG approximate-weights trade: quantizing
// W_d to one byte per document shrinks the weights table 4x while leaving
// effectiveness essentially unchanged.
func (r *Runner) QuantizedWeights(w io.Writer) error {
	queries := r.Corpus.QueriesOf(trecsynth.ShortQuery)
	exact := r.mono.Engine()
	qix, err := exact.Index().QuantizeWeights()
	if err != nil {
		return err
	}
	quantized := search.NewEngine(qix, r.analyzer)

	line(w, "Approximate document weights (short queries, MS ranking)\n")
	line(w, "%-14s %16s %14s %16s\n", "Weights", "table bytes", "11-pt avg (%)", "Rel. in top 20")
	for _, row := range []struct {
		label  string
		engine *search.Engine
		bytes  uint64
	}{
		{"exact f32", exact, exact.Index().WeightsTableBytes(false)},
		{"1-byte log", quantized, qix.WeightsTableBytes(true)},
	} {
		runs, err := r.msRuns(row.engine, queries)
		if err != nil {
			return err
		}
		s := eval.Evaluate(r.Corpus.Qrels, runs, evalDepth, topK)
		line(w, "%-14s %16d %14.2f %16.1f\n", row.label, row.bytes, s.ElevenPtAvg, s.MeanRelevantTop)
	}
	return nil
}
