package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"teraphim/internal/costmodel"
	"teraphim/internal/eval"
	"teraphim/internal/index"
	"teraphim/internal/search"
	"teraphim/internal/trecsynth"
)

// Skipping reproduces the §4 analysis estimate that with the self-indexing
// "skipping" mechanism the CI librarians' CPU cost drops by a factor of two
// or more when k' is small. Candidate scoring against indexes built with
// and without skip structures is compared on two query mixes — the short
// query set (mid-frequency terms) and queries over the collection's most
// common terms, whose long inverted lists are where skipping pays — across
// k' ∈ {10, 100}.
func (r *Runner) Skipping(w io.Writer) error {
	withSkips, err := buildGlobalEngine(r, index.DefaultSkipInterval)
	if err != nil {
		return err
	}
	noSkips, err := buildGlobalEngine(r, 0)
	if err != nil {
		return err
	}
	gi, err := r.GroupedIndex(10)
	if err != nil {
		return err
	}
	cpu := costmodel.Era1995CPU()

	shortQueries := r.Corpus.QueriesOf(trecsynth.ShortQuery)
	headQuery := headTermQuery(withSkips, 8)
	mixes := []struct {
		label   string
		queries []string
	}{
		{"short queries", queryTexts(shortQueries)},
		{"head terms", []string{headQuery}},
	}

	line(w, "Skipping ablation (CI candidate scoring, G=10)\n")
	line(w, "%-15s %6s %18s %18s %8s\n", "Workload", "k'", "decoded w/ skips", "decoded w/o", "speedup")
	for _, mix := range mixes {
		for _, kPrime := range []int{10, 100} {
			var withD, withoutD uint64
			queriesScored := 0
			for _, qText := range mix.queries {
				groups, _, err := gi.RankGroups(qText, kPrime)
				if err != nil {
					return err
				}
				docs := gi.Expand(groups)
				if len(docs) == 0 {
					continue
				}
				queriesScored++
				withRanking, err := withSkips.ScoreDocs(qText, docs, nil)
				if err != nil {
					return fmt.Errorf("experiments: skipping ablation: %w", err)
				}
				s1 := withRanking.Stats
				withoutRanking, err := noSkips.ScoreDocs(qText, docs, nil)
				if err != nil {
					return fmt.Errorf("experiments: skipping ablation: %w", err)
				}
				s2 := withoutRanking.Stats
				withD += s1.PostingsDecoded
				withoutD += s2.PostingsDecoded
			}
			if queriesScored == 0 || withD == 0 {
				continue
			}
			n := uint64(queriesScored)
			line(w, "%-15s %6d %18d %18d %7.1fx\n", mix.label, kPrime,
				withD/n, withoutD/n, float64(withoutD)/float64(withD))
		}
	}
	_ = cpu
	line(w, "(librarian CPU scales with decoded postings at %v per posting)\n", cpu.PerPosting)
	return nil
}

// headTermQuery builds a query from the n most frequent indexed terms — the
// long-list regime where skip structures matter most.
func headTermQuery(engine *search.Engine, n int) string {
	type tf struct {
		term string
		ft   uint32
	}
	var all []tf
	engine.Index().Terms(func(term string, ft uint32) bool {
		all = append(all, tf{term, ft})
		return true
	})
	sort.Slice(all, func(i, j int) bool { return all[i].ft > all[j].ft })
	if n > len(all) {
		n = len(all)
	}
	terms := make([]string, n)
	for i := 0; i < n; i++ {
		terms[i] = all[i].term
	}
	return strings.Join(terms, " ")
}

func queryTexts(queries []trecsynth.Query) []string {
	out := make([]string, len(queries))
	for i, q := range queries {
		out[i] = q.Text
	}
	return out
}

func buildGlobalEngine(r *Runner, skipInterval uint32) (*search.Engine, error) {
	b := index.NewBuilder(index.WithSkipInterval(skipInterval))
	for _, terms := range r.docTerms {
		b.Add(terms)
	}
	ix, err := b.Build()
	if err != nil {
		return nil, err
	}
	return search.NewEngine(ix, r.analyzer), nil
}

// Threshold reproduces the §5 preliminary finding: pruning index postings
// by within-document frequency shrinks the index but, applied bluntly,
// costs effectiveness. Postings with f_dt below the threshold are dropped
// from lists longer than minList.
func (r *Runner) Threshold(w io.Writer) error {
	queries := r.Corpus.QueriesOf(trecsynth.ShortQuery)

	line(w, "Index thresholding ablation (short queries, MS ranking)\n")
	line(w, "%-22s %14s %14s %16s\n", "Index", "size bytes", "11-pt avg (%)", "Rel. in top 20")

	baseRuns, err := r.msRuns(r.mono.Engine(), queries)
	if err != nil {
		return err
	}
	base := eval.Evaluate(r.Corpus.Qrels, baseRuns, evalDepth, topK)
	baseSize := r.mono.Engine().Index().SizeBytes()
	line(w, "%-22s %14d %14.2f %16.1f\n", "full index", baseSize, base.ElevenPtAvg, base.MeanRelevantTop)

	for _, minFDT := range []uint32{2, 3} {
		pruned, err := r.prunedEngine(minFDT, 50)
		if err != nil {
			return err
		}
		runs, err := r.msRuns(pruned, queries)
		if err != nil {
			return err
		}
		s := eval.Evaluate(r.Corpus.Qrels, runs, evalDepth, topK)
		size := pruned.Index().SizeBytes()
		line(w, "drop f_dt<%-13d %14d %14.2f %16.1f\n", minFDT, size, s.ElevenPtAvg, s.MeanRelevantTop)
	}
	return nil
}

// prunedEngine rebuilds the MS index keeping, for terms whose document
// frequency exceeds minList, only postings with f_dt >= minFDT.
func (r *Runner) prunedEngine(minFDT uint32, minList int) (*search.Engine, error) {
	// Pass 1: document frequencies.
	df := make(map[string]int, 4096)
	for _, terms := range r.docTerms {
		seen := map[string]bool{}
		for _, t := range terms {
			if !seen[t] {
				seen[t] = true
				df[t]++
			}
		}
	}
	// Pass 2: rebuild with low-contribution postings dropped.
	b := index.NewBuilder()
	for _, terms := range r.docTerms {
		counts := make(map[string]uint32, len(terms))
		for _, t := range terms {
			counts[t]++
		}
		var kept []string
		for t, f := range counts {
			if df[t] > minList && f < minFDT {
				continue
			}
			for i := uint32(0); i < f; i++ {
				kept = append(kept, t)
			}
		}
		b.Add(kept)
	}
	ix, err := b.Build()
	if err != nil {
		return nil, err
	}
	return search.NewEngine(ix, r.analyzer), nil
}

// msRuns ranks the query set on a bare engine, translating the engine's
// global doc numbers into qrels keys via the runner's key table.
func (r *Runner) msRuns(engine *search.Engine, queries []trecsynth.Query) (map[string]eval.Run, error) {
	runs := make(map[string]eval.Run, len(queries))
	for _, q := range queries {
		ranking, err := engine.Rank(q.Text, evalDepth, nil)
		results := ranking.Results
		if err != nil {
			return nil, err
		}
		run := make(eval.Run, len(results))
		for i, res := range results {
			run[i] = r.keys[res.Doc]
		}
		runs[q.ID] = run
	}
	return runs, nil
}
