// Package experiments reproduces the paper's evaluation: Table 1
// (effectiveness), Table 2 (WAN link costs), Tables 3 and 4 (response
// times), and the auxiliary results of §4–5 (index sizes, the
// 43-subcollection split, the skipping optimisation, and index
// thresholding).
//
// A Runner owns one generated corpus and the complete deployment built from
// it: one librarian per subcollection served over in-process links, a
// receptionist, the MS baseline, and grouped central indexes. Table
// functions write the paper's table shape to an io.Writer.
package experiments

import (
	"fmt"
	"io"
	"sort"

	"teraphim/internal/core"
	"teraphim/internal/eval"
	"teraphim/internal/index"
	"teraphim/internal/librarian"
	"teraphim/internal/search"
	"teraphim/internal/simnet"
	"teraphim/internal/store"
	"teraphim/internal/textproc"
	"teraphim/internal/trecsynth"
)

// evalDepth is the ranking depth of the 11-point measure (the paper
// evaluates over 1000 documents retrieved).
const evalDepth = 1000

// topK is the "one screen of titles" depth for the relevant-in-top column.
const topK = 20

// Runner is a complete experimental deployment over one generated corpus.
type Runner struct {
	Corpus   *trecsynth.Corpus
	analyzer *textproc.Analyzer

	libs   []*librarian.Librarian
	dialer *librarian.InProcessDialer
	recep  *core.Receptionist
	mono   *core.MonoServer

	docTerms [][]string // analysed docs in global order
	keys     []string   // global doc keys in global order
	grouped  map[int]*core.GroupedIndex
}

// NewRunner generates the corpus and builds the full deployment. The
// analyzer disables stemming and stopping because the synthetic vocabulary
// is already normalised; librarians, receptionist and MS all share it.
func NewRunner(cfg trecsynth.Config) (*Runner, error) {
	corpus, err := trecsynth.Generate(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: generate corpus: %w", err)
	}
	return newRunnerFromCorpus(corpus)
}

func newRunnerFromCorpus(corpus *trecsynth.Corpus) (*Runner, error) {
	r := &Runner{
		Corpus:   corpus,
		analyzer: textproc.NewAnalyzer(textproc.WithoutStopwords(), textproc.WithoutStemming()),
		grouped:  make(map[int]*core.GroupedIndex),
	}
	var names []string
	for _, sub := range corpus.Subcollections {
		lib, err := librarian.Build(sub.Name, sub.Docs, librarian.BuildOptions{Analyzer: r.analyzer})
		if err != nil {
			return nil, fmt.Errorf("experiments: build librarian %q: %w", sub.Name, err)
		}
		r.libs = append(r.libs, lib)
		names = append(names, sub.Name)
		for _, d := range sub.Docs {
			r.docTerms = append(r.docTerms, r.analyzer.Terms(nil, d.Text))
			r.keys = append(r.keys, trecsynth.DocKey(sub.Name, d.ID))
		}
	}
	r.dialer = librarian.NewInProcessDialer(r.libs, simnet.LinkConfig{})
	recep, err := core.Connect(r.dialer, names, core.Config{Analyzer: r.analyzer})
	if err != nil {
		return nil, fmt.Errorf("experiments: connect receptionist: %w", err)
	}
	r.recep = recep
	if _, err := recep.SetupVocabulary(); err != nil {
		return nil, fmt.Errorf("experiments: setup vocabulary: %w", err)
	}
	if _, err := recep.SetupModels(); err != nil {
		return nil, fmt.Errorf("experiments: setup models: %w", err)
	}

	// MS baseline over the concatenated collection.
	b := index.NewBuilder()
	for _, terms := range r.docTerms {
		b.Add(terms)
	}
	ix, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("experiments: build MS index: %w", err)
	}
	docs, _ := corpus.AllDocs()
	st, err := store.Build(docs)
	if err != nil {
		return nil, fmt.Errorf("experiments: build MS store: %w", err)
	}
	mono, err := core.NewMonoServer(search.NewEngine(ix, r.analyzer), st, r.keys)
	if err != nil {
		return nil, err
	}
	r.mono = mono
	return r, nil
}

// Close tears down receptionist sessions.
func (r *Runner) Close() {
	r.recep.Close()
	r.dialer.Wait()
}

// Receptionist exposes the deployment's receptionist.
func (r *Runner) Receptionist() *core.Receptionist { return r.recep }

// MonoServer exposes the MS baseline.
func (r *Runner) MonoServer() *core.MonoServer { return r.mono }

// GroupedIndex builds (or returns the cached) grouped central index for
// group size G and installs it at the receptionist.
func (r *Runner) GroupedIndex(g int) (*core.GroupedIndex, error) {
	if gi, ok := r.grouped[g]; ok {
		if err := r.recep.SetupCentralIndex(gi); err != nil {
			return nil, err
		}
		return gi, nil
	}
	gi, err := core.BuildGrouped(r.docTerms, g, r.analyzer)
	if err != nil {
		return nil, err
	}
	if err := r.recep.SetupCentralIndex(gi); err != nil {
		return nil, err
	}
	r.grouped[g] = gi
	return gi, nil
}

// RunSpec names one retrieval mode with its parameters.
type RunSpec struct {
	Label  string
	Mode   core.Mode
	KPrime int // CI only
	Group  int // CI only; 0 selects 10
}

// StandardSpecs returns the Table 1 row set.
func StandardSpecs() []RunSpec {
	return []RunSpec{
		{Label: "MS and CV", Mode: core.ModeCV},
		{Label: "CN", Mode: core.ModeCN},
		{Label: "CI, k'=100", Mode: core.ModeCI, KPrime: 100, Group: 10},
		{Label: "CI, k'=1000", Mode: core.ModeCI, KPrime: 1000, Group: 10},
	}
}

// Run evaluates the query set under one spec, returning per-query ranked
// runs and traces.
func (r *Runner) Run(spec RunSpec, queries []trecsynth.Query, k int, opts core.Options) (map[string]eval.Run, []*core.Trace, error) {
	if spec.Mode == core.ModeCI {
		g := spec.Group
		if g == 0 {
			g = 10
		}
		if _, err := r.GroupedIndex(g); err != nil {
			return nil, nil, err
		}
		opts.KPrime = spec.KPrime
	}
	runs := make(map[string]eval.Run, len(queries))
	traces := make([]*core.Trace, 0, len(queries))
	for _, q := range queries {
		var res *core.Result
		var err error
		if spec.Mode == core.ModeMS {
			res, err = r.mono.Query(q.Text, k, opts)
		} else {
			res, err = r.recep.Query(spec.Mode, q.Text, k, opts)
		}
		if err != nil {
			return nil, nil, fmt.Errorf("experiments: %s query %s: %w", spec.Label, q.ID, err)
		}
		run := make(eval.Run, len(res.Answers))
		for i, a := range res.Answers {
			run[i] = a.Key()
		}
		runs[q.ID] = run
		traces = append(traces, &res.Trace)
	}
	return runs, traces, nil
}

// Effectiveness runs a spec over a query set and scores it.
func (r *Runner) Effectiveness(spec RunSpec, queries []trecsynth.Query) (eval.Summary, error) {
	runs, _, err := r.Run(spec, queries, evalDepth, core.Options{})
	if err != nil {
		return eval.Summary{}, err
	}
	return eval.Evaluate(r.Corpus.Qrels, runs, evalDepth, topK), nil
}

// sortedLibNames returns librarian names in deterministic order.
func (r *Runner) sortedLibNames() []string {
	names := append([]string(nil), r.recep.Librarians()...)
	sort.Strings(names)
	return names
}

// line writes a formatted line, swallowing the write error into err
// aggregation by the caller (tables are best-effort console output).
func line(w io.Writer, format string, args ...interface{}) {
	fmt.Fprintf(w, format, args...)
}
