package experiments

import (
	"io"
	"time"

	"teraphim/internal/core"
	"teraphim/internal/costmodel"
	"teraphim/internal/trecsynth"
)

// Table1 reproduces the effectiveness table: 11-point average
// recall-precision at 1000 retrieved and mean relevant documents in the top
// 20, for both query sets under MS/CV, CN, and CI with k' ∈ {100, 1000}.
func (r *Runner) Table1(w io.Writer) error {
	line(w, "Table 1: retrieval effectiveness\n")
	line(w, "%-14s %14s %16s\n", "Mode", "11-pt avg (%)", "Rel. in top 20")
	sets := []struct {
		name    string
		queries []trecsynth.Query
	}{
		{"Long queries", r.Corpus.QueriesOf(trecsynth.LongQuery)},
		{"Short queries", r.Corpus.QueriesOf(trecsynth.ShortQuery)},
	}
	for _, set := range sets {
		if len(set.queries) == 0 {
			continue
		}
		line(w, "%s (%d queries)\n", set.name, len(set.queries))
		for _, spec := range StandardSpecs() {
			s, err := r.Effectiveness(spec, set.queries)
			if err != nil {
				return err
			}
			line(w, "%-14s %14.2f %16.1f\n", spec.Label, s.ElevenPtAvg, s.MeanRelevantTop)
		}
	}
	return nil
}

// Table2 reproduces the WAN connectivity table: hops and round-trip times
// per remote site, as configured into the WAN cost model.
func (r *Runner) Table2(w io.Writer) error {
	line(w, "Table 2: network communication costs (WAN configuration)\n")
	line(w, "%-10s %-10s %14s %18s\n", "Location", "Collection", "Network hops", "Avg ping (sec)")
	sites := []struct {
		location string
		lib      string
	}{
		{"Waikato", "FR"},
		{"Canberra", "ZIFF"},
		{"Brisbane", "AP"},
		{"Israel", "WSJ"},
	}
	for _, s := range sites {
		rtt := costmodel.WANSites[s.lib]
		line(w, "%-10s %-10s %14d %18.2f\n", s.location, s.lib, costmodel.WANHops[s.lib], rtt.Seconds())
	}
	return nil
}

// timingRow is one mode's average per-query seconds per configuration.
type timingRow struct {
	label   string
	msOnly  bool
	seconds map[string]float64
}

// paperCorpusDocs is the approximate document count of TREC disk 2, the
// paper's test collection. Per-posting index work in the measured traces is
// replayed at this scale (costmodel.Config.WorkScale) so elapsed-time
// estimates are comparable with the paper's second-range figures.
const paperCorpusDocs = 740000

// timing runs the short query set under every mode and averages the
// cost-model estimate per configuration. When total is false only the rank
// phase is charged (Table 3); when true, rank+fetch (Table 4).
func (r *Runner) timing(total bool) ([]timingRow, error) {
	configs := costmodel.AllConfigs()
	workScale := float64(paperCorpusDocs) / float64(r.recep.TotalDocs())
	for i := range configs {
		configs[i].WorkScale = workScale
	}
	queries := r.Corpus.QueriesOf(trecsynth.ShortQuery)
	opts := core.Options{}
	if total {
		opts = core.Options{Fetch: true, CompressedTransfer: true}
	}
	specs := []RunSpec{
		{Label: "MS", Mode: core.ModeMS},
		{Label: "CN", Mode: core.ModeCN},
		{Label: "CV", Mode: core.ModeCV},
		{Label: "CI", Mode: core.ModeCI, KPrime: 100, Group: 10},
	}
	var rows []timingRow
	for _, spec := range specs {
		_, traces, err := r.Run(spec, queries, topK, opts)
		if err != nil {
			return nil, err
		}
		row := timingRow{label: spec.Label, msOnly: spec.Mode == core.ModeMS, seconds: map[string]float64{}}
		for _, cfg := range configs {
			var sum time.Duration
			for _, tr := range traces {
				b, err := costmodel.Estimate(cfg, tr)
				if err != nil {
					return nil, err
				}
				if total {
					sum += b.Total()
				} else {
					sum += b.Rank
				}
			}
			row.seconds[cfg.Name] = sum.Seconds() / float64(len(traces))
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func writeTimingTable(w io.Writer, title string, rows []timingRow) {
	line(w, "%s\n", title)
	line(w, "%-6s %12s %12s %10s %10s\n", "Mode", "mono-disk", "multi-disk", "LAN", "WAN")
	for _, row := range rows {
		if row.msOnly {
			line(w, "%-6s %12.3f %12s %10s %10s\n", row.label, row.seconds["mono-disk"], "-", "-", "-")
			continue
		}
		line(w, "%-6s %12.3f %12.3f %10.3f %10.3f\n", row.label,
			row.seconds["mono-disk"], row.seconds["multi-disk"], row.seconds["LAN"], row.seconds["WAN"])
	}
}

// Table3 reproduces the index-processing response times (steps 1–3),
// k=20, k'=100, short queries.
func (r *Runner) Table3(w io.Writer) error {
	rows, err := r.timing(false)
	if err != nil {
		return err
	}
	writeTimingTable(w, "Table 3: elapsed seconds per query, index processing only (k=20, k'=100)", rows)
	return nil
}

// Table4 reproduces the total response times including document fetch
// (steps 1–4), compressed transfer, k=20, k'=100, short queries.
func (r *Runner) Table4(w io.Writer) error {
	rows, err := r.timing(true)
	if err != nil {
		return err
	}
	writeTimingTable(w, "Table 4: elapsed seconds per query, total including document fetch (k=20, k'=100)", rows)
	return nil
}

// Sizes reproduces the §4 storage discussion: per-librarian index sizes,
// the merged vocabulary a CV receptionist stores, and the full (G=1) versus
// grouped (G=10) central index a CI receptionist stores.
func (r *Runner) Sizes(w io.Writer) error {
	line(w, "Storage requirements\n")
	var rawText, compText, indexBytes uint64
	for _, lib := range r.libs {
		ix := lib.Engine().Index()
		line(w, "  librarian %-6s %7d docs, index %8d B, vocab %8d B, store %8d B (raw %d B)\n",
			lib.Name(), ix.NumDocs(), ix.SizeBytes(), ix.DictSizeBytes(),
			lib.Store().CompressedSize(), lib.Store().RawSize())
		rawText += lib.Store().RawSize()
		compText += lib.Store().CompressedSize()
		indexBytes += ix.SizeBytes()
	}
	line(w, "  total: raw text %d B, compressed text %d B (%.1f%%), librarian indexes %d B (%.1f%% of text)\n",
		rawText, compText, pct(compText, rawText), indexBytes, pct(indexBytes, rawText))

	terms, vocabBytes := r.recep.VocabularySize()
	line(w, "  CV receptionist: merged vocabulary %d terms, %d B (%.2f%% of text)\n",
		terms, vocabBytes, pct(vocabBytes, rawText))

	g1, err := r.GroupedIndex(1)
	if err != nil {
		return err
	}
	g10, err := r.GroupedIndex(10)
	if err != nil {
		return err
	}
	line(w, "  CI receptionist: full central index (G=1)  %d B (%.1f%% of text)\n",
		g1.SizeBytes(), pct(g1.SizeBytes(), rawText))
	line(w, "  CI receptionist: grouped index    (G=10) %d B (%.1f%% of text, %.0f%% of full)\n",
		g10.SizeBytes(), pct(g10.SizeBytes(), rawText), pct(g10.SizeBytes(), g1.SizeBytes()))
	return nil
}

func pct(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

// Split43 reproduces the §4 robustness experiment: CN effectiveness when
// the same corpus is divided into 43 subcollections instead of 4.
func (r *Runner) Split43(w io.Writer) error {
	queries := r.Corpus.QueriesOf(trecsynth.ShortQuery)
	base, err := r.Effectiveness(RunSpec{Label: "CN", Mode: core.ModeCN}, queries)
	if err != nil {
		return err
	}
	split, err := r.Corpus.Split(43)
	if err != nil {
		return err
	}
	r43, err := newRunnerFromCorpus(split)
	if err != nil {
		return err
	}
	defer r43.Close()
	s43, err := r43.Effectiveness(RunSpec{Label: "CN", Mode: core.ModeCN}, queries)
	if err != nil {
		return err
	}
	line(w, "43-subcollection split (short queries, CN)\n")
	line(w, "%-22s %14s %16s\n", "Division", "11-pt avg (%)", "Rel. in top 20")
	line(w, "%-22s %14.2f %16.1f\n", "4 subcollections", base.ElevenPtAvg, base.MeanRelevantTop)
	line(w, "%-22s %14.2f %16.1f\n", "43 subcollections", s43.ElevenPtAvg, s43.MeanRelevantTop)
	line(w, "delta: %.2f points (the paper found the impact 'surprisingly small')\n",
		s43.ElevenPtAvg-base.ElevenPtAvg)
	return nil
}

// GroupSizeAblation explores the CI design choice the paper references from
// earlier work: how group size G trades central-index size against
// effectiveness at fixed k'·G candidate volume.
func (r *Runner) GroupSizeAblation(w io.Writer) error {
	queries := r.Corpus.QueriesOf(trecsynth.ShortQuery)
	line(w, "Group-size ablation (short queries, CI, k'*G = 1000 candidates)\n")
	line(w, "%-6s %14s %14s %16s\n", "G", "index bytes", "11-pt avg (%)", "Rel. in top 20")
	for _, g := range []int{1, 5, 10, 20, 50} {
		gi, err := r.GroupedIndex(g)
		if err != nil {
			return err
		}
		kPrime := 1000 / g
		s, err := r.Effectiveness(RunSpec{Label: "CI", Mode: core.ModeCI, KPrime: kPrime, Group: g}, queries)
		if err != nil {
			return err
		}
		line(w, "%-6d %14d %14.2f %16.1f\n", g, gi.SizeBytes(), s.ElevenPtAvg, s.MeanRelevantTop)
	}
	return nil
}

// CompressionAblation quantifies the §4 analysis point that compressing
// documents before transmission cuts fetch traffic.
func (r *Runner) CompressionAblation(w io.Writer) error {
	queries := r.Corpus.QueriesOf(trecsynth.ShortQuery)
	line(w, "Document-transfer compression ablation (short queries, CN, k=20)\n")
	measure := func(compressed bool) (int, time.Duration, error) {
		_, traces, err := r.Run(RunSpec{Label: "CN", Mode: core.ModeCN}, queries, topK,
			core.Options{Fetch: true, CompressedTransfer: compressed})
		if err != nil {
			return 0, 0, err
		}
		bytes := 0
		var wan time.Duration
		cfg := costmodel.WAN()
		for _, tr := range traces {
			bytes += tr.BytesTransferred(core.PhaseFetch)
			b, err := costmodel.Estimate(cfg, tr)
			if err != nil {
				return 0, 0, err
			}
			wan += b.Fetch
		}
		return bytes / len(traces), wan / time.Duration(len(traces)), nil
	}
	rawBytes, rawWAN, err := measure(false)
	if err != nil {
		return err
	}
	compBytes, compWAN, err := measure(true)
	if err != nil {
		return err
	}
	line(w, "%-22s %16s %20s\n", "Transfer", "fetch B/query", "WAN fetch sec/query")
	line(w, "%-22s %16d %20.3f\n", "plain text", rawBytes, rawWAN.Seconds())
	line(w, "%-22s %16d %20.3f\n", "compressed", compBytes, compWAN.Seconds())
	line(w, "compression saves %.0f%% of fetch traffic\n", 100*(1-float64(compBytes)/float64(rawBytes)))
	return nil
}
