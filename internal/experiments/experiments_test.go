package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"teraphim/internal/core"
	"teraphim/internal/costmodel"
	"teraphim/internal/trecsynth"
)

// testConfig keeps the corpus small enough for unit-test runtime while
// preserving the statistical structure.
func testConfig() trecsynth.Config {
	cfg := trecsynth.DefaultConfig()
	cfg.Subs = []trecsynth.SubSpec{
		{Name: "AP", NumDocs: 350},
		{Name: "FR", NumDocs: 220},
		{Name: "WSJ", NumDocs: 320},
		{Name: "ZIFF", NumDocs: 260},
	}
	cfg.VocabSize = 4000
	cfg.NumTopics = 24
	cfg.NumLongQueries = 8
	cfg.NumShortQueries = 12
	return cfg
}

var sharedRunner *Runner

func getRunner(t testing.TB) *Runner {
	t.Helper()
	if sharedRunner == nil {
		r, err := NewRunner(testConfig())
		if err != nil {
			t.Fatal(err)
		}
		sharedRunner = r
	}
	return sharedRunner
}

func TestTable1Runs(t *testing.T) {
	r := getRunner(t)
	var buf bytes.Buffer
	if err := r.Table1(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"MS and CV", "CN", "CI, k'=100", "CI, k'=1000", "Long queries", "Short queries"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, out)
		}
	}
}

// TestEffectivenessShape pins the Table 1 shape: every standard mode
// retrieves a meaningful fraction of the relevant documents, CN is within a
// few points of MS/CV, and CI at k'=100 loses 11-pt average relative to
// k'=1000 while precision-at-20 stays close.
func TestEffectivenessShape(t *testing.T) {
	r := getRunner(t)
	queries := r.Corpus.QueriesOf(trecsynth.ShortQuery)
	results := map[string]float64{}
	top20 := map[string]float64{}
	for _, spec := range StandardSpecs() {
		s, err := r.Effectiveness(spec, queries)
		if err != nil {
			t.Fatal(err)
		}
		results[spec.Label] = s.ElevenPtAvg
		top20[spec.Label] = s.MeanRelevantTop
		t.Logf("%-12s 11pt=%.2f top20=%.2f", spec.Label, s.ElevenPtAvg, s.MeanRelevantTop)
	}
	ms := results["MS and CV"]
	if ms < 5 {
		t.Fatalf("MS/CV 11-pt average %.2f: retrieval is not working", ms)
	}
	if diff := math.Abs(results["CN"] - ms); diff > 12 {
		t.Errorf("CN %.2f vs MS %.2f: difference %.2f too large", results["CN"], ms, diff)
	}
	if results["CI, k'=100"] > results["CI, k'=1000"]+1 {
		t.Errorf("CI k'=100 (%.2f) should not beat k'=1000 (%.2f) at depth 1000",
			results["CI, k'=100"], results["CI, k'=1000"])
	}
	// Precision in the top 20 is relatively insensitive to k' (the paper's
	// observation about high-precision retrieval).
	if top20["CI, k'=100"] < 0.5*top20["CI, k'=1000"] {
		t.Errorf("CI k'=100 top-20 %.2f collapsed relative to k'=1000 %.2f",
			top20["CI, k'=100"], top20["CI, k'=1000"])
	}
}

// TestCVEqualsMSRuns pins run-level equality of the combined "MS and CV"
// row: the two systems retrieve identical rankings.
func TestCVEqualsMSRuns(t *testing.T) {
	r := getRunner(t)
	queries := r.Corpus.QueriesOf(trecsynth.ShortQuery)[:4]
	msRuns, _, err := r.Run(RunSpec{Label: "MS", Mode: core.ModeMS}, queries, 50, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cvRuns, _, err := r.Run(RunSpec{Label: "CV", Mode: core.ModeCV}, queries, 50, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		ms, cv := msRuns[q.ID], cvRuns[q.ID]
		if len(ms) != len(cv) {
			t.Fatalf("query %s: MS %d docs, CV %d", q.ID, len(ms), len(cv))
		}
		for i := range ms {
			if ms[i] != cv[i] {
				t.Fatalf("query %s rank %d: MS %s, CV %s", q.ID, i, ms[i], cv[i])
			}
		}
	}
}

func TestTable2Static(t *testing.T) {
	r := getRunner(t)
	var buf bytes.Buffer
	if err := r.Table2(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Waikato", "Canberra", "Brisbane", "Israel", "0.76", "1.04"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 2 missing %q:\n%s", want, out)
		}
	}
}

func TestTables3And4Shape(t *testing.T) {
	r := getRunner(t)
	rank, err := r.timing(false)
	if err != nil {
		t.Fatal(err)
	}
	total, err := r.timing(true)
	if err != nil {
		t.Fatal(err)
	}
	byLabel := func(rows []timingRow, label string) timingRow {
		for _, row := range rows {
			if row.label == label {
				return row
			}
		}
		t.Fatalf("missing row %q", label)
		return timingRow{}
	}
	for _, label := range []string{"MS", "CN", "CV", "CI"} {
		row := byLabel(rank, label)
		if row.seconds["mono-disk"] <= 0 {
			t.Errorf("%s mono-disk rank time not positive", label)
		}
	}
	cn := byLabel(rank, "CN")
	// Paper shape: WAN index processing is several times LAN.
	if cn.seconds["WAN"] < 3*cn.seconds["LAN"] {
		t.Errorf("CN WAN %.3f not >> LAN %.3f", cn.seconds["WAN"], cn.seconds["LAN"])
	}
	// Multi-disk is at least as fast as mono-disk.
	if cn.seconds["multi-disk"] > cn.seconds["mono-disk"] {
		t.Errorf("CN multi-disk %.3f slower than mono-disk %.3f",
			cn.seconds["multi-disk"], cn.seconds["mono-disk"])
	}
	// Table 4 adds fetch cost: totals must exceed rank-only times.
	cnTotal := byLabel(total, "CN")
	for _, cfgName := range []string{"mono-disk", "multi-disk", "LAN", "WAN"} {
		if cnTotal.seconds[cfgName] < cn.seconds[cfgName] {
			t.Errorf("CN %s total %.3f < rank-only %.3f", cfgName,
				cnTotal.seconds[cfgName], cn.seconds[cfgName])
		}
	}
	// WAN fetch adds substantially (the paper's 4.2s -> 15s jump).
	if cnTotal.seconds["WAN"] < cn.seconds["WAN"]*1.5 {
		t.Errorf("CN WAN total %.3f does not reflect heavy fetch cost over %.3f",
			cnTotal.seconds["WAN"], cn.seconds["WAN"])
	}
}

func TestSizesReport(t *testing.T) {
	r := getRunner(t)
	var buf bytes.Buffer
	if err := r.Sizes(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"merged vocabulary", "G=1", "G=10", "librarian AP"} {
		if !strings.Contains(out, want) {
			t.Errorf("sizes report missing %q:\n%s", want, out)
		}
	}
}

func TestGroupedIndexShrinks(t *testing.T) {
	r := getRunner(t)
	g1, err := r.GroupedIndex(1)
	if err != nil {
		t.Fatal(err)
	}
	g10, err := r.GroupedIndex(10)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(g10.SizeBytes()) / float64(g1.SizeBytes())
	// The paper: groups of ten roughly halve index size.
	if ratio > 0.8 {
		t.Errorf("G=10 index is %.0f%% of G=1; expected substantial shrink", 100*ratio)
	}
	t.Logf("grouped index ratio G10/G1 = %.2f", ratio)
}

func TestSkippingAblation(t *testing.T) {
	r := getRunner(t)
	var buf bytes.Buffer
	if err := r.Skipping(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "w/ skips") || !strings.Contains(out, "head terms") {
		t.Fatalf("skipping report malformed:\n%s", out)
	}
}

func TestThresholdAblation(t *testing.T) {
	r := getRunner(t)
	var buf bytes.Buffer
	if err := r.Threshold(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "full index") {
		t.Fatalf("threshold report malformed:\n%s", buf.String())
	}
}

func TestCompressionAblation(t *testing.T) {
	r := getRunner(t)
	var buf bytes.Buffer
	if err := r.CompressionAblation(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "compression saves") {
		t.Fatalf("compression report malformed:\n%s", buf.String())
	}
}

func TestWANConfigMatchesCorpus(t *testing.T) {
	// Every default subcollection has a WAN link configured.
	for _, sub := range trecsynth.DefaultConfig().Subs {
		if costmodel.WANSites[sub.Name] == 0 {
			t.Errorf("no WAN site for %s", sub.Name)
		}
	}
}

func TestFusionComparison(t *testing.T) {
	r := getRunner(t)
	var buf bytes.Buffer
	if err := r.Fusion(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"face-value", "round-robin", "normalized"} {
		if !strings.Contains(out, want) {
			t.Errorf("fusion report missing %q:\n%s", want, out)
		}
	}
}

func TestResourceScaling(t *testing.T) {
	r := getRunner(t)
	var buf bytes.Buffer
	if err := r.ResourceScaling(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "MS") || !strings.Contains(out, "16") {
		t.Fatalf("resource scaling report malformed:\n%s", out)
	}
}

func TestFreqSortedAblation(t *testing.T) {
	r := getRunner(t)
	var buf bytes.Buffer
	if err := r.FreqSorted(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "exact (0/0)") || !strings.Contains(out, "insert 0.60") {
		t.Fatalf("freq-sorted report malformed:\n%s", out)
	}
}

func TestThroughputReport(t *testing.T) {
	r := getRunner(t)
	var buf bytes.Buffer
	if err := r.Throughput(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"MS", "CN", "CV", "CI", "bottleneck"} {
		if !strings.Contains(out, want) {
			t.Fatalf("throughput report missing %q:\n%s", want, out)
		}
	}
}

func TestQuantizedWeightsAblation(t *testing.T) {
	r := getRunner(t)
	var buf bytes.Buffer
	if err := r.QuantizedWeights(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "exact f32") || !strings.Contains(out, "1-byte log") {
		t.Fatalf("quantized report malformed:\n%s", out)
	}
}
