package experiments

import (
	"io"
	"time"

	"teraphim/internal/core"
	"teraphim/internal/costmodel"
	"teraphim/internal/eval"
	"teraphim/internal/trecsynth"
)

// Fusion compares CN merge strategies (the paper's face-value merge against
// the Voorhees-style collection-fusion baselines) on the short query set.
func (r *Runner) Fusion(w io.Writer) error {
	queries := r.Corpus.QueriesOf(trecsynth.ShortQuery)
	line(w, "CN merge-strategy comparison (short queries)\n")
	line(w, "%-14s %14s %16s\n", "Merge", "11-pt avg (%)", "Rel. in top 20")
	for _, strategy := range []core.MergeStrategy{core.MergeFaceValue, core.MergeNormalized, core.MergeRoundRobin} {
		runs, _, err := r.Run(RunSpec{Label: "CN", Mode: core.ModeCN}, queries, evalDepth,
			core.Options{Merge: strategy})
		if err != nil {
			return err
		}
		s := eval.Evaluate(r.Corpus.Qrels, runs, evalDepth, topK)
		line(w, "%-14s %14.2f %16.1f\n", strategy, s.ElevenPtAvg, s.MeanRelevantTop)
	}
	return nil
}

// ResourceScaling reproduces the paper's efficiency analysis: as the number
// of subcollections S grows, response time barely improves (or worsens on a
// WAN) while aggregate resource use — lists fetched and postings decoded
// across all librarians — keeps climbing, because "one of the major costs
// of query evaluation ... is accessing the vocabulary and fetching the
// inverted lists, and this operation is repeated at each librarian".
func (r *Runner) ResourceScaling(w io.Writer) error {
	queries := r.Corpus.QueriesOf(trecsynth.ShortQuery)
	line(w, "Resource use versus number of subcollections (short queries, CV, k=20)\n")
	line(w, "%-4s %14s %16s %14s %14s\n", "S", "lists/query", "postings/query", "mono-disk sec", "LAN sec")

	// MS baseline row (S=1 equivalent).
	_, msTraces, err := r.Run(RunSpec{Label: "MS", Mode: core.ModeMS}, queries, topK, core.Options{})
	if err != nil {
		return err
	}
	msLists, msPostings := resourceTotals(msTraces)
	line(w, "%-4s %14.1f %16.0f %14s %14s\n", "MS", msLists, msPostings, "-", "-")

	for _, s := range []int{2, 4, 8, 16} {
		var runner *Runner
		if s == len(r.Corpus.Subcollections) {
			runner = r
		} else {
			split, err := r.Corpus.Split(s)
			if err != nil {
				return err
			}
			runner, err = newRunnerFromCorpus(split)
			if err != nil {
				return err
			}
			defer runner.Close()
		}
		_, traces, err := runner.Run(RunSpec{Label: "CV", Mode: core.ModeCV}, queries, topK, core.Options{})
		if err != nil {
			return err
		}
		lists, postings := resourceTotals(traces)
		mono, err := meanRank(traces, costmodel.MonoDisk(), runner)
		if err != nil {
			return err
		}
		lan, err := meanRank(traces, costmodel.LAN(), runner)
		if err != nil {
			return err
		}
		line(w, "%-4d %14.1f %16.0f %14.3f %14.3f\n", s, lists, postings, mono.Seconds(), lan.Seconds())
	}
	line(w, "lists fetched grow with S while elapsed time does not improve: the paper's\n")
	line(w, "\"only a small speed increase is available ... at the cost of a great deal of\n")
	line(w, "additional processing\".\n")
	return nil
}

// resourceTotals averages per-query librarian+central work over traces.
func resourceTotals(traces []*core.Trace) (lists, postings float64) {
	for _, tr := range traces {
		work := tr.LibrarianWork()
		work.Add(tr.CentralStats)
		lists += float64(work.ListsFetched)
		postings += float64(work.PostingsDecoded)
	}
	n := float64(len(traces))
	return lists / n, postings / n
}

func meanRank(traces []*core.Trace, cfg costmodel.Config, runner *Runner) (time.Duration, error) {
	cfg.WorkScale = float64(paperCorpusDocs) / float64(runner.recep.TotalDocs())
	var sum time.Duration
	for _, tr := range traces {
		b, err := costmodel.Estimate(cfg, tr)
		if err != nil {
			return 0, err
		}
		sum += b.Rank
	}
	return sum / time.Duration(len(traces)), nil
}

// Throughput reproduces the paper's response-time-versus-resource-use
// distinction at capacity: per-mode saturation throughput, the bottleneck
// resource, and queries/second per machine. "Only a small speed increase is
// available through distribution of a text database" — and per machine,
// distribution costs throughput outright.
func (r *Runner) Throughput(w io.Writer) error {
	queries := r.Corpus.QueriesOf(trecsynth.ShortQuery)
	specs := []RunSpec{
		{Label: "MS", Mode: core.ModeMS},
		{Label: "CN", Mode: core.ModeCN},
		{Label: "CV", Mode: core.ModeCV},
		{Label: "CI", Mode: core.ModeCI, KPrime: 100, Group: 10},
	}
	cfg := costmodel.MultiDisk()
	cfg.WorkScale = float64(paperCorpusDocs) / float64(r.recep.TotalDocs())
	line(w, "Saturation throughput (short queries, multi-disk, k=20)\n")
	line(w, "%-6s %14s %18s %24s\n", "Mode", "queries/sec", "per machine", "bottleneck")
	for _, spec := range specs {
		_, traces, err := r.Run(spec, queries, topK, core.Options{})
		if err != nil {
			return err
		}
		report, err := costmodel.Throughput(cfg, traces)
		if err != nil {
			return err
		}
		line(w, "%-6s %14.1f %18.1f %24s\n",
			spec.Label, report.QueriesPerSecond, report.PerMachine, report.Bottleneck)
	}
	return nil
}
