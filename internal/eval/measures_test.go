package eval

import (
	"math"
	"testing"
)

func TestAveragePrecision(t *testing.T) {
	q := NewQrels()
	judgeAll(q, "q", "a", "b")
	// Relevant at ranks 1 and 4: AP = (1/1 + 2/4) / 2 = 0.75.
	run := Run{"a", "x", "y", "b"}
	if got := AveragePrecision(q, "q", run); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("AP = %f, want 0.75", got)
	}
	// Unfound relevant docs drag AP down: only "a" found of 2.
	if got := AveragePrecision(q, "q", Run{"a"}); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("partial AP = %f, want 0.5", got)
	}
	if got := AveragePrecision(q, "unjudged", run); got != 0 {
		t.Fatalf("unjudged AP = %f", got)
	}
}

func TestRPrecision(t *testing.T) {
	q := NewQrels()
	judgeAll(q, "q", "a", "b", "c")
	// R = 3; two of the first three retrieved are relevant.
	run := Run{"a", "x", "b", "c"}
	if got := RPrecision(q, "q", run); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("R-precision = %f, want 2/3", got)
	}
	if got := RPrecision(q, "none", run); got != 0 {
		t.Fatalf("unjudged R-precision = %f", got)
	}
}

func TestRecallAt(t *testing.T) {
	q := NewQrels()
	judgeAll(q, "q", "a", "b", "c", "d")
	run := Run{"a", "x", "b"}
	if got := RecallAt(q, "q", run, 3); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("recall@3 = %f, want 0.5", got)
	}
	if got := RecallAt(q, "q", run, 1); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("recall@1 = %f, want 0.25", got)
	}
	if got := RecallAt(q, "none", run, 3); got != 0 {
		t.Fatalf("unjudged recall = %f", got)
	}
}

func TestEvaluateFull(t *testing.T) {
	q := NewQrels()
	judgeAll(q, "q1", "a")
	judgeAll(q, "q2", "b", "c")
	runs := map[string]Run{
		"q1": {"a"},      // AP 1.0, RP 1.0
		"q2": {"b", "x"}, // AP (1/1)/2 = 0.5, RP 1/2
	}
	s := EvaluateFull(q, runs, 1000, 20)
	if s.Queries != 2 {
		t.Fatalf("Queries = %d", s.Queries)
	}
	if math.Abs(s.MAP-75.0) > 1e-9 {
		t.Fatalf("MAP = %f, want 75", s.MAP)
	}
	if math.Abs(s.RPrecision-75.0) > 1e-9 {
		t.Fatalf("RPrecision = %f, want 75", s.RPrecision)
	}
	empty := EvaluateFull(NewQrels(), map[string]Run{}, 1000, 20)
	if empty.Queries != 0 || empty.MAP != 0 {
		t.Fatalf("empty evaluation: %+v", empty)
	}
}

func TestInterpolatedCurve(t *testing.T) {
	q := NewQrels()
	judgeAll(q, "q", "a", "b")
	run := Run{"a", "x", "y", "b"}
	curve := InterpolatedCurve(q, "q", run)
	// Recall 0–0.5 levels see precision 1.0; 0.6–1.0 see 0.5.
	for i := 0; i <= 5; i++ {
		if math.Abs(curve[i]-1.0) > 1e-12 {
			t.Fatalf("curve[%d] = %f, want 1.0", i, curve[i])
		}
	}
	for i := 6; i <= 10; i++ {
		if math.Abs(curve[i]-0.5) > 1e-12 {
			t.Fatalf("curve[%d] = %f, want 0.5", i, curve[i])
		}
	}
	// The curve's mean must equal ElevenPointAverage.
	var mean float64
	for _, p := range curve {
		mean += p
	}
	mean /= 11
	if math.Abs(mean-ElevenPointAverage(q, "q", run)) > 1e-12 {
		t.Fatal("curve mean disagrees with ElevenPointAverage")
	}
	// Monotone non-increasing, as interpolation guarantees.
	for i := 1; i < len(curve); i++ {
		if curve[i] > curve[i-1]+1e-12 {
			t.Fatalf("curve not non-increasing at %d: %v", i, curve)
		}
	}
}
