package eval

// Additional standard effectiveness measures beyond the paper's two
// headline numbers, for users evaluating their own collections with
// cmd/evalrun.

// AveragePrecision computes non-interpolated average precision (the
// per-query component of MAP): the mean of precision values at each
// relevant document retrieved, divided by the total number of relevant
// documents.
func AveragePrecision(qrels *Qrels, query string, run Run) float64 {
	totalRel := qrels.NumRelevant(query)
	if totalRel == 0 {
		return 0
	}
	var sum float64
	found := 0
	for i, doc := range run {
		if qrels.IsRelevant(query, doc) {
			found++
			sum += float64(found) / float64(i+1)
		}
	}
	return sum / float64(totalRel)
}

// RPrecision computes precision at rank R, where R is the number of
// relevant documents for the query.
func RPrecision(qrels *Qrels, query string, run Run) float64 {
	r := qrels.NumRelevant(query)
	if r == 0 {
		return 0
	}
	return PrecisionAt(qrels, query, run, r)
}

// RecallAt returns the fraction of relevant documents found in the first k
// results.
func RecallAt(qrels *Qrels, query string, run Run, k int) float64 {
	totalRel := qrels.NumRelevant(query)
	if totalRel == 0 {
		return 0
	}
	return float64(RelevantIn(qrels, query, run, k)) / float64(totalRel)
}

// FullSummary extends Summary with MAP and R-precision.
type FullSummary struct {
	Summary
	MAP        float64 // mean average precision, percent
	RPrecision float64 // mean R-precision, percent
}

// EvaluateFull scores runs with the full measure set. Query-set semantics
// follow Evaluate (the run file defines the evaluated queries).
func EvaluateFull(qrels *Qrels, runs map[string]Run, depth, topK int) FullSummary {
	full := FullSummary{Summary: Evaluate(qrels, runs, depth, topK)}
	if full.Queries == 0 {
		return full
	}
	var sumAP, sumRP float64
	for query, run := range runs {
		if qrels.NumRelevant(query) == 0 {
			continue
		}
		if len(run) > depth {
			run = run[:depth]
		}
		sumAP += AveragePrecision(qrels, query, run)
		sumRP += RPrecision(qrels, query, run)
	}
	full.MAP = 100 * sumAP / float64(full.Queries)
	full.RPrecision = 100 * sumRP / float64(full.Queries)
	return full
}

// InterpolatedCurve returns the 11 interpolated precision values at recall
// 0.0, 0.1, ..., 1.0 — the raw series behind ElevenPointAverage, suitable
// for plotting a recall-precision curve.
func InterpolatedCurve(qrels *Qrels, query string, run Run) [11]float64 {
	var curve [11]float64
	totalRel := qrels.NumRelevant(query)
	if totalRel == 0 {
		return curve
	}
	type point struct{ recall, precision float64 }
	var points []point
	found := 0
	for i, doc := range run {
		if qrels.IsRelevant(query, doc) {
			found++
			points = append(points, point{
				recall:    float64(found) / float64(totalRel),
				precision: float64(found) / float64(i+1),
			})
		}
	}
	for i := 0; i <= 10; i++ {
		r := float64(i) / 10
		for _, p := range points {
			if p.recall >= r-1e-12 && p.precision > curve[i] {
				curve[i] = p.precision
			}
		}
	}
	return curve
}
