package eval

import (
	"math"
	"reflect"
	"strconv"
	"testing"
)

func judgeAll(q *Qrels, query string, docs ...string) {
	for _, d := range docs {
		q.Judge(query, d)
	}
}

func TestQrelsBasics(t *testing.T) {
	q := NewQrels()
	judgeAll(q, "q1", "a", "b")
	q.Judge("q2", "c")
	if !q.IsRelevant("q1", "a") || q.IsRelevant("q1", "c") {
		t.Fatal("IsRelevant wrong")
	}
	if q.NumRelevant("q1") != 2 || q.NumRelevant("q3") != 0 {
		t.Fatal("NumRelevant wrong")
	}
	if got := q.Queries(); !reflect.DeepEqual(got, []string{"q1", "q2"}) {
		t.Fatalf("Queries = %v", got)
	}
}

func TestPerfectRun(t *testing.T) {
	q := NewQrels()
	judgeAll(q, "q", "a", "b", "c")
	run := Run{"a", "b", "c"}
	if got := ElevenPointAverage(q, "q", run); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("perfect run 11pt = %f, want 1.0", got)
	}
	if got := RelevantIn(q, "q", run, 20); got != 3 {
		t.Fatalf("RelevantIn = %d, want 3", got)
	}
	if got := PrecisionAt(q, "q", run, 3); got != 1.0 {
		t.Fatalf("P@3 = %f", got)
	}
}

func TestWorthlessRun(t *testing.T) {
	q := NewQrels()
	judgeAll(q, "q", "a")
	run := Run{"x", "y", "z"}
	if got := ElevenPointAverage(q, "q", run); got != 0 {
		t.Fatalf("irrelevant run 11pt = %f", got)
	}
	if got := RelevantIn(q, "q", run, 20); got != 0 {
		t.Fatalf("RelevantIn = %d", got)
	}
}

func TestElevenPointHandComputed(t *testing.T) {
	// 2 relevant docs; run has them at ranks 1 and 4.
	// Points: recall 0.5 -> P=1.0; recall 1.0 -> P=0.5.
	// Interpolated: recall 0..0.5 -> 1.0 (6 levels), 0.6..1.0 -> 0.5 (5 levels).
	// Average = (6*1.0 + 5*0.5)/11 = 8.5/11.
	q := NewQrels()
	judgeAll(q, "q", "a", "b")
	run := Run{"a", "x", "y", "b"}
	want := 8.5 / 11
	if got := ElevenPointAverage(q, "q", run); math.Abs(got-want) > 1e-12 {
		t.Fatalf("11pt = %f, want %f", got, want)
	}
}

func TestElevenPointPartialRecall(t *testing.T) {
	// 4 relevant; only 1 found at rank 2. Recall reaches 0.25.
	// Points: recall 0.25 -> P=0.5. Interpolated at 0, .1, .2 -> 0.5; rest 0.
	q := NewQrels()
	judgeAll(q, "q", "a", "b", "c", "d")
	run := Run{"x", "a"}
	want := 3 * 0.5 / 11
	if got := ElevenPointAverage(q, "q", run); math.Abs(got-want) > 1e-12 {
		t.Fatalf("11pt = %f, want %f", got, want)
	}
}

func TestNoRelevantDocs(t *testing.T) {
	q := NewQrels()
	if got := ElevenPointAverage(q, "unjudged", Run{"a"}); got != 0 {
		t.Fatalf("unjudged query 11pt = %f", got)
	}
}

func TestRelevantInShortRun(t *testing.T) {
	q := NewQrels()
	judgeAll(q, "q", "a")
	if got := RelevantIn(q, "q", Run{"a"}, 20); got != 1 {
		t.Fatalf("short run RelevantIn = %d", got)
	}
	if got := PrecisionAt(q, "q", Run{"a"}, 0); got != 0 {
		t.Fatalf("P@0 = %f", got)
	}
}

func TestEvaluateAggregates(t *testing.T) {
	q := NewQrels()
	judgeAll(q, "q1", "a", "b")
	judgeAll(q, "q2", "c")
	runs := map[string]Run{
		"q1": {"a", "b"}, // perfect: 11pt 1.0, top-20 rel 2
		"q2": {"x", "y"}, // miss: 0, 0
	}
	s := Evaluate(q, runs, 1000, 20)
	if s.Queries != 2 {
		t.Fatalf("Queries = %d", s.Queries)
	}
	if math.Abs(s.ElevenPtAvg-50.0) > 1e-9 {
		t.Fatalf("ElevenPtAvg = %f, want 50.0", s.ElevenPtAvg)
	}
	if math.Abs(s.MeanRelevantTop-1.0) > 1e-9 {
		t.Fatalf("MeanRelevantTop = %f, want 1.0", s.MeanRelevantTop)
	}
	if s.String() == "" {
		t.Fatal("String must be non-empty")
	}
}

func TestEvaluateDepthTruncation(t *testing.T) {
	// A relevant doc beyond the depth cutoff must not count.
	q := NewQrels()
	judgeAll(q, "q", "deep")
	long := make(Run, 1001)
	for i := range long {
		long[i] = "filler" + strconv.Itoa(i)
	}
	long[1000] = "deep"
	s := Evaluate(q, map[string]Run{"q": long}, 1000, 20)
	if s.ElevenPtAvg != 0 {
		t.Fatalf("doc at rank 1001 counted: 11pt = %f", s.ElevenPtAvg)
	}
	// But within depth it counts.
	long[999] = "deep"
	s = Evaluate(q, map[string]Run{"q": long}, 1000, 20)
	if s.ElevenPtAvg == 0 {
		t.Fatal("doc at rank 1000 ignored")
	}
}

func TestEvaluateScopesToRunQueries(t *testing.T) {
	// Queries judged in qrels but absent from the runs are not evaluated
	// (trec_eval semantics): a run restricted to one query subset must not
	// be diluted by the other subset's judgements.
	q := NewQrels()
	judgeAll(q, "q1", "a")
	judgeAll(q, "q2", "b")
	s := Evaluate(q, map[string]Run{"q1": {"a"}}, 1000, 20)
	if s.Queries != 1 {
		t.Fatalf("evaluated %d queries, want 1", s.Queries)
	}
	if math.Abs(s.ElevenPtAvg-100.0) > 1e-9 {
		t.Fatalf("ElevenPtAvg = %f, want 100 (no dilution by q2)", s.ElevenPtAvg)
	}
	// An empty run for a judged query does count (and scores zero).
	s = Evaluate(q, map[string]Run{"q1": {"a"}, "q2": nil}, 1000, 20)
	if s.Queries != 2 || math.Abs(s.ElevenPtAvg-50.0) > 1e-9 {
		t.Fatalf("with empty run: %+v", s)
	}
	// Runs for unjudged queries are skipped.
	s = Evaluate(q, map[string]Run{"q1": {"a"}, "unjudged": {"x"}}, 1000, 20)
	if s.Queries != 1 {
		t.Fatalf("unjudged query counted: %+v", s)
	}
}
