// Package eval implements the retrieval-effectiveness measures used in the
// paper's Table 1: interpolated 11-point average recall-precision over 1000
// retrieved documents, and the number of relevant documents among the top 20
// returned ("precision at one screen of titles").
package eval

import (
	"fmt"
	"sort"
)

// Qrels holds relevance judgements: for each query id, the set of relevant
// document identifiers. Document identity is an opaque string so that
// distributed (collection, docid) pairs and mono-server ids can both be
// used.
type Qrels struct {
	rel map[string]map[string]bool
}

// NewQrels returns an empty judgement set.
func NewQrels() *Qrels {
	return &Qrels{rel: make(map[string]map[string]bool)}
}

// Judge marks doc as relevant for query.
func (q *Qrels) Judge(query, doc string) {
	m, ok := q.rel[query]
	if !ok {
		m = make(map[string]bool)
		q.rel[query] = m
	}
	m[doc] = true
}

// IsRelevant reports whether doc is judged relevant for query.
func (q *Qrels) IsRelevant(query, doc string) bool {
	return q.rel[query][doc]
}

// NumRelevant returns the number of documents judged relevant for query.
func (q *Qrels) NumRelevant(query string) int {
	return len(q.rel[query])
}

// Queries returns the judged query ids in sorted order.
func (q *Qrels) Queries() []string {
	out := make([]string, 0, len(q.rel))
	for id := range q.rel {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run is the ranked answer list one system returned for one query, best
// first.
type Run []string

// ElevenPointAverage computes the TREC interpolated 11-point average
// precision of a run: precision interpolated at recall 0.0, 0.1, ..., 1.0,
// averaged. The run should be truncated to the evaluation depth (the paper
// uses 1000) by the caller. Returns 0 when the query has no relevant
// documents.
func ElevenPointAverage(qrels *Qrels, query string, run Run) float64 {
	totalRel := qrels.NumRelevant(query)
	if totalRel == 0 {
		return 0
	}
	// precision/recall after each retrieved relevant doc.
	type point struct{ recall, precision float64 }
	points := make([]point, 0, totalRel)
	found := 0
	for i, doc := range run {
		if qrels.IsRelevant(query, doc) {
			found++
			points = append(points, point{
				recall:    float64(found) / float64(totalRel),
				precision: float64(found) / float64(i+1),
			})
		}
	}
	// Interpolated precision at recall r: max precision at any recall >= r.
	var sum float64
	for i := 0; i <= 10; i++ {
		r := float64(i) / 10
		best := 0.0
		for _, p := range points {
			if p.recall >= r-1e-12 && p.precision > best {
				best = p.precision
			}
		}
		sum += best
	}
	return sum / 11
}

// PrecisionAt returns the fraction of the first k results that are relevant.
func PrecisionAt(qrels *Qrels, query string, run Run, k int) float64 {
	if k <= 0 {
		return 0
	}
	return float64(RelevantIn(qrels, query, run, k)) / float64(k)
}

// RelevantIn counts relevant documents among the first k results — the
// paper's "relevant docs in top 20" column.
func RelevantIn(qrels *Qrels, query string, run Run, k int) int {
	if k > len(run) {
		k = len(run)
	}
	n := 0
	for _, doc := range run[:k] {
		if qrels.IsRelevant(query, doc) {
			n++
		}
	}
	return n
}

// Summary aggregates effectiveness over a query set.
type Summary struct {
	Queries         int
	ElevenPtAvg     float64 // mean interpolated 11-pt average, as a percentage
	MeanRelevantTop float64 // mean relevant docs in top `TopK`
	TopK            int
}

// String renders the summary in the paper's Table 1 style.
func (s Summary) String() string {
	return fmt.Sprintf("11-pt avg %.2f%%, relevant in top %d: %.1f (over %d queries)",
		s.ElevenPtAvg, s.TopK, s.MeanRelevantTop, s.Queries)
}

// Evaluate scores a set of runs (query id -> ranked docs) against qrels,
// with the 11-point measure computed over at most depth retrieved documents
// and the relevant-in-top count over topK. Following trec_eval practice,
// the evaluated query set is the run file's: every query with a run is
// scored (an empty run scores zero), and queries without relevance
// judgements are skipped.
func Evaluate(qrels *Qrels, runs map[string]Run, depth, topK int) Summary {
	s := Summary{TopK: topK}
	queries := make([]string, 0, len(runs))
	for q := range runs {
		queries = append(queries, q)
	}
	sort.Strings(queries)
	var sum11, sumTop float64
	for _, query := range queries {
		if qrels.NumRelevant(query) == 0 {
			continue
		}
		run := runs[query]
		if len(run) > depth {
			run = run[:depth]
		}
		s.Queries++
		sum11 += ElevenPointAverage(qrels, query, run)
		sumTop += float64(RelevantIn(qrels, query, run, topK))
	}
	if s.Queries > 0 {
		s.ElevenPtAvg = 100 * sum11 / float64(s.Queries)
		s.MeanRelevantTop = sumTop / float64(s.Queries)
	}
	return s
}
