// Package store implements the compressed document store of a librarian: a
// word-based-Huffman-compressed text archive addressed by dense document id,
// mirroring the MG text file. The paper depends on stored documents being
// compressed so that fetching answers over a network can ship the compressed
// form directly ("a solution that is facilitated in TERAPHIM since all
// documents are stored compressed").
package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sync/atomic"

	"teraphim/internal/huffman"
)

// Document is a stored document with its identifying metadata.
type Document struct {
	ID    uint32
	Title string
	Text  string
}

// Store is an immutable compressed document archive.
type Store struct {
	model   *huffman.TextModel
	blobs   [][]byte // compressed text per doc
	titles  []string
	rawSize uint64 // total uncompressed text bytes, for compression reporting

	// fetches counts document reads (Fetch + FetchCompressed). The counter
	// exists so ingest paths can prove they did NOT re-read a store: the
	// paper's "faster update" claim dies the moment appending N documents
	// costs O(collection) re-fetches, and the regression test pins that.
	fetches atomic.Uint64
}

// Build compresses docs into a Store. Documents are assigned ids 0..n-1 in
// order; each Document.ID field is ignored on input.
func Build(docs []Document) (*Store, error) {
	texts := make([]string, len(docs))
	for i, d := range docs {
		texts[i] = d.Text
	}
	model, err := huffman.NewTextModel(texts)
	if err != nil {
		return nil, fmt.Errorf("store: train model: %w", err)
	}
	s := &Store{model: model, blobs: make([][]byte, len(docs)), titles: make([]string, len(docs))}
	for i, d := range docs {
		blob, err := model.CompressDoc(d.Text)
		if err != nil {
			return nil, fmt.Errorf("store: compress doc %d: %w", i, err)
		}
		s.blobs[i] = blob
		s.titles[i] = d.Title
		s.rawSize += uint64(len(d.Text))
	}
	return s, nil
}

// NumDocs returns the number of stored documents.
func (s *Store) NumDocs() uint32 { return uint32(len(s.blobs)) }

// Fetches returns the number of document reads served so far (Fetch and
// FetchCompressed calls that resolved to a document).
func (s *Store) Fetches() uint64 { return s.fetches.Load() }

// Fetch returns the decompressed document with the given id.
func (s *Store) Fetch(id uint32) (Document, error) {
	s.fetches.Add(1)
	if int(id) >= len(s.blobs) {
		return Document{}, fmt.Errorf("store: doc %d outside collection of %d", id, len(s.blobs))
	}
	text, err := s.model.DecompressDoc(s.blobs[id])
	if err != nil {
		return Document{}, fmt.Errorf("store: decompress doc %d: %w", id, err)
	}
	return Document{ID: id, Title: s.titles[id], Text: text}, nil
}

// FetchCompressed returns the compressed blob for a document without
// decompressing — the form a librarian ships over the network. The returned
// slice must not be modified.
func (s *Store) FetchCompressed(id uint32) ([]byte, error) {
	s.fetches.Add(1)
	if int(id) >= len(s.blobs) {
		return nil, fmt.Errorf("store: doc %d outside collection of %d", id, len(s.blobs))
	}
	return s.blobs[id], nil
}

// Decompress expands a blob previously returned by FetchCompressed. It is
// exposed so a receptionist holding the collection's model can expand
// documents received over the wire.
func (s *Store) Decompress(blob []byte) (string, error) {
	return s.model.DecompressDoc(blob)
}

// Title returns a document's title without decompressing its body.
func (s *Store) Title(id uint32) (string, error) {
	if int(id) >= len(s.titles) {
		return "", fmt.Errorf("store: doc %d outside collection of %d", id, len(s.titles))
	}
	return s.titles[id], nil
}

// CompressedSize returns the total bytes of compressed document text.
func (s *Store) CompressedSize() uint64 {
	var n uint64
	for _, b := range s.blobs {
		n += uint64(len(b))
	}
	return n
}

// RawSize returns the total bytes of original document text.
func (s *Store) RawSize() uint64 { return s.rawSize }

// Model exposes the trained compression model (for size accounting).
func (s *Store) Model() *huffman.TextModel { return s.model }

// File format (little endian):
//
//	magic "TPST" | version u32 | numDocs u32 | rawSize u64
//	modelLen u32 | model bytes
//	per doc: titleLen u32 | title | blobLen u32 | blob
const (
	storeMagic   = "TPST"
	storeVersion = 1
)

// WriteTo serialises the store.
func (s *Store) WriteTo(w io.Writer) (int64, error) {
	cw := bufio.NewWriter(w)
	var n int64
	write := func(p []byte) error {
		m, err := cw.Write(p)
		n += int64(m)
		return err
	}
	put32 := func(v uint32) error {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], v)
		return write(b[:])
	}
	if err := write([]byte(storeMagic)); err != nil {
		return n, err
	}
	if err := put32(storeVersion); err != nil {
		return n, err
	}
	if err := put32(uint32(len(s.blobs))); err != nil {
		return n, err
	}
	var raw [8]byte
	binary.LittleEndian.PutUint64(raw[:], s.rawSize)
	if err := write(raw[:]); err != nil {
		return n, err
	}
	model := s.model.Marshal()
	if err := put32(uint32(len(model))); err != nil {
		return n, err
	}
	if err := write(model); err != nil {
		return n, err
	}
	for i, blob := range s.blobs {
		if err := put32(uint32(len(s.titles[i]))); err != nil {
			return n, err
		}
		if err := write([]byte(s.titles[i])); err != nil {
			return n, err
		}
		if err := put32(uint32(len(blob))); err != nil {
			return n, err
		}
		if err := write(blob); err != nil {
			return n, err
		}
	}
	return n, cw.Flush()
}

// ReadFrom deserialises a store written by WriteTo.
func ReadFrom(r io.Reader) (*Store, error) {
	br := bufio.NewReader(r)
	get32 := func() (uint32, error) {
		var b [4]byte
		if _, err := io.ReadFull(br, b[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(b[:]), nil
	}
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("store: read magic: %w", err)
	}
	if string(magic) != storeMagic {
		return nil, fmt.Errorf("store: bad magic %q", magic)
	}
	version, err := get32()
	if err != nil {
		return nil, err
	}
	if version != storeVersion {
		return nil, fmt.Errorf("store: unsupported version %d", version)
	}
	numDocs, err := get32()
	if err != nil {
		return nil, err
	}
	var raw [8]byte
	if _, err := io.ReadFull(br, raw[:]); err != nil {
		return nil, fmt.Errorf("store: read raw size: %w", err)
	}
	rawSize := binary.LittleEndian.Uint64(raw[:])
	modelLen, err := get32()
	if err != nil {
		return nil, err
	}
	modelBytes, err := readChunked(br, uint64(modelLen))
	if err != nil {
		return nil, fmt.Errorf("store: read model: %w", err)
	}
	model, err := huffman.UnmarshalTextModel(modelBytes)
	if err != nil {
		return nil, fmt.Errorf("store: decode model: %w", err)
	}
	// Counts and lengths are untrusted: grow incrementally with bounded
	// hints so corrupt headers fail on short input rather than allocating
	// the claimed sizes.
	s := &Store{
		model:   model,
		blobs:   make([][]byte, 0, boundedHint(uint64(numDocs))),
		titles:  make([]string, 0, boundedHint(uint64(numDocs))),
		rawSize: rawSize,
	}
	for i := uint32(0); i < numDocs; i++ {
		tlen, err := get32()
		if err != nil {
			return nil, fmt.Errorf("store: doc %d title len: %w", i, err)
		}
		title, err := readChunked(br, uint64(tlen))
		if err != nil {
			return nil, fmt.Errorf("store: doc %d title: %w", i, err)
		}
		s.titles = append(s.titles, string(title))
		blen, err := get32()
		if err != nil {
			return nil, fmt.Errorf("store: doc %d blob len: %w", i, err)
		}
		blob, err := readChunked(br, uint64(blen))
		if err != nil {
			return nil, fmt.Errorf("store: doc %d blob: %w", i, err)
		}
		s.blobs = append(s.blobs, blob)
	}
	return s, nil
}

// boundedHint caps an untrusted count used as an allocation capacity hint.
func boundedHint(n uint64) int {
	const maxHint = 1 << 16
	if n > maxHint {
		return maxHint
	}
	return int(n)
}

// readChunked reads exactly n bytes in bounded steps so that an inflated
// length in a corrupt header fails on short input instead of pre-allocating
// the claimed size.
func readChunked(r io.Reader, n uint64) ([]byte, error) {
	const chunk = 1 << 20
	out := make([]byte, 0, boundedHint(n))
	for n > 0 {
		step := n
		if step > chunk {
			step = chunk
		}
		buf := make([]byte, step)
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		out = append(out, buf...)
		n -= step
	}
	return out, nil
}
