package store

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

func sampleDocs() []Document {
	return []Document{
		{Title: "AP-1", Text: "The quick brown fox jumps over the lazy dog."},
		{Title: "FR-1", Text: "Federal regulations require careful reading.\nSection 2: compliance."},
		{Title: "WSJ-1", Text: "Markets rallied today as distributed systems stocks surged."},
		{Title: "ZIFF-1", Text: ""},
	}
}

func TestBuildAndFetch(t *testing.T) {
	s, err := Build(sampleDocs())
	if err != nil {
		t.Fatal(err)
	}
	if s.NumDocs() != 4 {
		t.Fatalf("NumDocs = %d", s.NumDocs())
	}
	for i, want := range sampleDocs() {
		got, err := s.Fetch(uint32(i))
		if err != nil {
			t.Fatalf("Fetch(%d): %v", i, err)
		}
		if got.Text != want.Text || got.Title != want.Title || got.ID != uint32(i) {
			t.Fatalf("Fetch(%d) = %+v", i, got)
		}
	}
	if _, err := s.Fetch(4); err == nil {
		t.Fatal("out-of-range fetch: want error")
	}
	title, err := s.Title(2)
	if err != nil || title != "WSJ-1" {
		t.Fatalf("Title(2) = %q, %v", title, err)
	}
	if _, err := s.Title(9); err == nil {
		t.Fatal("out-of-range title: want error")
	}
}

func TestFetchCompressedAndDecompress(t *testing.T) {
	s, err := Build(sampleDocs())
	if err != nil {
		t.Fatal(err)
	}
	blob, err := s.FetchCompressed(1)
	if err != nil {
		t.Fatal(err)
	}
	text, err := s.Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}
	if text != sampleDocs()[1].Text {
		t.Fatalf("Decompress mismatch: %q", text)
	}
	if _, err := s.FetchCompressed(99); err == nil {
		t.Fatal("out-of-range compressed fetch: want error")
	}
}

func TestCompressionEffective(t *testing.T) {
	// Large repetitive corpus: compressed size must be well under raw.
	var docs []Document
	for i := 0; i < 50; i++ {
		docs = append(docs, Document{
			Title: fmt.Sprintf("doc-%d", i),
			Text:  strings.Repeat("distributed information retrieval systems are fast and effective ", 30),
		})
	}
	s, err := Build(docs)
	if err != nil {
		t.Fatal(err)
	}
	if s.CompressedSize()*2 > s.RawSize() {
		t.Fatalf("compressed %d vs raw %d: expected < 50%%", s.CompressedSize(), s.RawSize())
	}
}

func TestPersistRoundTrip(t *testing.T) {
	s1, err := Build(sampleDocs())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := s1.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	s2, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if s2.NumDocs() != s1.NumDocs() || s2.RawSize() != s1.RawSize() {
		t.Fatalf("header mismatch: docs %d/%d raw %d/%d",
			s2.NumDocs(), s1.NumDocs(), s2.RawSize(), s1.RawSize())
	}
	for i := uint32(0); i < s1.NumDocs(); i++ {
		d1, err1 := s1.Fetch(i)
		d2, err2 := s2.Fetch(i)
		if err1 != nil || err2 != nil {
			t.Fatalf("fetch %d: %v %v", i, err1, err2)
		}
		if d1 != d2 {
			t.Fatalf("doc %d differs after reload", i)
		}
	}
}

func TestPersistCorrupt(t *testing.T) {
	s, err := Build(sampleDocs())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := ReadFrom(bytes.NewReader(raw[:6])); err == nil {
		t.Fatal("truncated store: want error")
	}
	bad := append([]byte("NOPE"), raw[4:]...)
	if _, err := ReadFrom(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic: want error")
	}
}

func BenchmarkFetch(b *testing.B) {
	var docs []Document
	for i := 0; i < 100; i++ {
		docs = append(docs, Document{
			Title: fmt.Sprintf("d%d", i),
			Text:  strings.Repeat("some moderately interesting document text with variety ", 40),
		})
	}
	s, err := Build(docs)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Fetch(uint32(i % 100)); err != nil {
			b.Fatal(err)
		}
	}
}
