package costmodel

import (
	"strings"
	"testing"
	"time"

	"teraphim/internal/core"
	"teraphim/internal/search"
)

func TestThroughputBasics(t *testing.T) {
	traces := []*core.Trace{sampleTrace(), sampleTrace()}
	report, err := Throughput(MultiDisk(), traces)
	if err != nil {
		t.Fatal(err)
	}
	if report.QueriesPerSecond <= 0 {
		t.Fatalf("throughput %f not positive", report.QueriesPerSecond)
	}
	if report.Bottleneck == "" || len(report.Utilisations) == 0 {
		t.Fatalf("report incomplete: %+v", report)
	}
	// Utilisations sorted most-loaded first.
	for i := 1; i < len(report.Utilisations); i++ {
		if report.Utilisations[i].PerQuery > report.Utilisations[i-1].PerQuery {
			t.Fatal("utilisations not sorted")
		}
	}
	if report.PerMachine <= 0 || report.PerMachine > report.QueriesPerSecond {
		t.Fatalf("per-machine %f vs total %f", report.PerMachine, report.QueriesPerSecond)
	}
}

func TestThroughputSharedDiskBottleneck(t *testing.T) {
	// On one spindle the disk aggregates all librarians' accesses and
	// should saturate before any single CPU does.
	report, err := Throughput(MonoDisk(), []*core.Trace{sampleTrace()})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(report.Bottleneck, "disk:shared-disk") {
		t.Fatalf("mono-disk bottleneck = %s, want the shared spindle", report.Bottleneck)
	}
	multi, err := Throughput(MultiDisk(), []*core.Trace{sampleTrace()})
	if err != nil {
		t.Fatal(err)
	}
	if multi.QueriesPerSecond <= report.QueriesPerSecond {
		t.Fatalf("multi-disk throughput %f not above mono-disk %f",
			multi.QueriesPerSecond, report.QueriesPerSecond)
	}
}

// TestDistributionHurtsPerMachineThroughput pins the paper's efficiency
// conclusion quantitatively: an MS deployment answers more queries per
// machine than a CN deployment doing the same work split four ways, because
// the librarians repeat per-list overheads.
func TestDistributionHurtsPerMachineThroughput(t *testing.T) {
	cfg := MultiDisk()
	// MS: all work on one machine.
	msTrace := &core.Trace{
		Mode: core.ModeMS,
		CentralStats: search.Stats{
			TermsLooked: 5, ListsFetched: 5,
			PostingsDecoded: 43000, IndexBytesRead: 11000, CandidateDocs: 4000,
		},
		MergeCandidates: 20,
	}
	ms, err := Throughput(cfg, []*core.Trace{msTrace})
	if err != nil {
		t.Fatal(err)
	}
	// CN: the same postings split across four librarians, but each fetches
	// its own copy of the five lists.
	stats := func() search.Stats {
		return search.Stats{
			TermsLooked: 5, ListsFetched: 5,
			PostingsDecoded: 43000 / 4, IndexBytesRead: 11000 / 4, CandidateDocs: 1000,
		}
	}
	cnTrace := &core.Trace{Mode: core.ModeCN, MergeCandidates: 80}
	for _, name := range []string{"AP", "FR", "WSJ", "ZIFF"} {
		cnTrace.Calls = append(cnTrace.Calls, core.Call{
			Librarian: name, Phase: core.PhaseRank,
			ReqBytes: 100, RespBytes: 600, LibStats: stats(),
		})
	}
	cn, err := Throughput(cfg, []*core.Trace{cnTrace})
	if err != nil {
		t.Fatal(err)
	}
	if cn.PerMachine >= ms.PerMachine {
		t.Fatalf("CN per-machine throughput %f not below MS %f (resource repetition must cost)",
			cn.PerMachine, ms.PerMachine)
	}
	t.Logf("MS %.1f q/s on 1 machine; CN %.1f q/s on 5 machines (%.1f per machine)",
		ms.QueriesPerSecond, cn.QueriesPerSecond, cn.PerMachine)
}

func TestThroughputValidation(t *testing.T) {
	if _, err := Throughput(MultiDisk(), nil); err == nil {
		t.Fatal("no traces: want error")
	}
	bad := MultiDisk()
	bad.Disk.Seek = -time.Second
	if _, err := Throughput(bad, []*core.Trace{sampleTrace()}); err == nil {
		t.Fatal("bad disk: want error")
	}
	if _, err := Throughput(MultiDisk(), []*core.Trace{{}}); err == nil {
		t.Fatal("empty trace: want error")
	}
}
