// Package costmodel converts query traces (package core) into elapsed-time
// estimates for the paper's four deployment configurations: mono-disk,
// multi-disk, LAN and WAN (Tables 3 and 4).
//
// The model replays the *measured* protocol exchange — real message sizes,
// real librarian evaluation statistics — against an analytic machine model:
// CPU cost per posting processed, disk positioning and transfer costs
// (package simdisk), and per-link round-trip and bandwidth costs. Librarians
// work in parallel within a phase; a phase completes when its slowest
// librarian completes; disk operations serialise when librarians share one
// spindle (the mono-disk configuration). This is the same style of
// trace-driven performance derivation Cahoon & McKinley used for the
// distributed INQUERY architecture (SIGIR'96).
package costmodel

import (
	"fmt"
	"time"

	"teraphim/internal/core"
	"teraphim/internal/search"
	"teraphim/internal/simdisk"
)

// CPUModel holds per-operation CPU costs, representative of the paper's
// mid-1990s SPARC workstations.
type CPUModel struct {
	PerPosting     time.Duration // decode one posting and update accumulator
	PerCandidate   time.Duration // heap maintenance per candidate document
	PerMergeItem   time.Duration // receptionist merge per scored document
	PerQueryTerm   time.Duration // dictionary lookup per query term
	DecompressRate float64       // document decompression, bytes per second
}

// Era1995CPU returns CPU constants for a ~60 MHz SuperSPARC.
func Era1995CPU() CPUModel {
	return CPUModel{
		PerPosting:     2 * time.Microsecond,
		PerCandidate:   400 * time.Nanosecond,
		PerMergeItem:   500 * time.Nanosecond,
		PerQueryTerm:   50 * time.Microsecond,
		DecompressRate: 20 << 20, // 20 MB/s
	}
}

// Link models the connection between the receptionist and one librarian.
type Link struct {
	// RTT is the round-trip time of one packet exchange (the paper's
	// "ping" column in Table 2).
	RTT time.Duration
	// Bandwidth is the usable link throughput in bytes per second; zero
	// means effectively unlimited.
	Bandwidth float64
	// RTTsPerCall is the number of round-trip times charged per
	// request/response exchange, accounting for connection handshaking and
	// TCP slow start on long-haul links. Zero selects 1.
	RTTsPerCall float64
}

func (l Link) timeFor(bytes int) time.Duration {
	rtts := l.RTTsPerCall
	if rtts <= 0 {
		rtts = 1
	}
	d := time.Duration(rtts * float64(l.RTT))
	if l.Bandwidth > 0 {
		d += time.Duration(float64(bytes) / l.Bandwidth * float64(time.Second))
	}
	return d
}

// Config is one deployment configuration.
type Config struct {
	Name string
	// DefaultLink applies to librarians without an entry in Links.
	DefaultLink Link
	// Links holds per-librarian link parameters (the WAN configuration
	// gives each remote site its own RTT).
	Links map[string]Link
	// Disk is the drive model at every site.
	Disk simdisk.Model
	// SharedDisk marks the mono-disk configuration: all librarians (and
	// the receptionist) contend for a single spindle, so their disk
	// operations serialise and — when more than one is active — pay the
	// contention penalty ("the librarians interfere with each other by
	// repositioning the disk head unpredictably").
	SharedDisk bool
	// CPU holds per-operation processing costs.
	CPU CPUModel
	// WorkScale linearly scales per-posting index work (postings decoded,
	// index bytes read, accumulators) recorded in the trace. The default 0
	// means 1 (no scaling). The experiments set it to
	// paperCorpusDocs/actualCorpusDocs so that elapsed times replay the
	// measured traces at the paper's TREC-disk-2 scale; message sizes and
	// round trips are never scaled (they depend on k, not corpus size).
	WorkScale float64
}

func (c Config) scale() float64 {
	if c.WorkScale <= 0 {
		return 1
	}
	return c.WorkScale
}

// scaleStats applies the configuration's work scale to index-work counters.
func (c Config) scaleStats(s search.Stats) search.Stats {
	f := c.scale()
	if f == 1 {
		return s
	}
	s.PostingsDecoded = uint64(float64(s.PostingsDecoded) * f)
	s.IndexBytesRead = uint64(float64(s.IndexBytesRead) * f)
	return s
}

func (c Config) linkFor(name string) Link {
	if l, ok := c.Links[name]; ok {
		return l
	}
	return c.DefaultLink
}

// Breakdown is the estimated elapsed time of one query, split the way
// Tables 3 and 4 split it.
type Breakdown struct {
	// Setup covers pre-query exchanges recorded in the trace (usually
	// excluded from per-query figures).
	Setup time.Duration
	// Rank covers steps 1–3: shipping the query, librarian index
	// processing, returning and merging rankings. This is the Table 3
	// quantity.
	Rank time.Duration
	// Fetch covers step 4: retrieving answer documents. Rank+Fetch is the
	// Table 4 quantity.
	Fetch time.Duration
}

// Total returns Rank+Fetch (the Table 4 elapsed time).
func (b Breakdown) Total() time.Duration { return b.Rank + b.Fetch }

// Estimate derives the elapsed-time breakdown of one query trace under the
// configuration.
func Estimate(cfg Config, trace *core.Trace) (Breakdown, error) {
	if err := cfg.Disk.Validate(); err != nil {
		return Breakdown{}, fmt.Errorf("costmodel: %w", err)
	}
	var b Breakdown
	b.Setup = estimatePhase(cfg, trace, core.PhaseSetup)
	b.Rank = estimatePhase(cfg, trace, core.PhaseRank)
	// Central work: the receptionist's own index processing (CI group
	// ranking, or the whole query for MS) plus result merging.
	b.Rank += centralTime(cfg, trace)
	b.Fetch = estimatePhase(cfg, trace, core.PhaseFetch)
	b.Fetch += decompressTime(cfg, trace)
	// MS-style local fetches: disk reads and decompression at the server
	// itself, no network.
	if trace.LocalDocsFetched > 0 {
		bytes := uint64(trace.LocalDocBytes)
		if cfg.SharedDisk {
			b.Fetch += cfg.Disk.SharedAccessTime(trace.LocalDocsFetched, bytes)
		} else {
			b.Fetch += cfg.Disk.AccessTime(trace.LocalDocsFetched, bytes)
		}
		if cfg.CPU.DecompressRate > 0 {
			b.Fetch += time.Duration(float64(bytes) / cfg.CPU.DecompressRate * float64(time.Second))
		}
	}
	return b, nil
}

// estimatePhase computes the elapsed time of one phase: librarians run in
// parallel, so the phase takes as long as its slowest librarian. A librarian
// may have several calls in a phase — retried exchanges under the
// fault-tolerance policy — and those serialise on its link, so per-librarian
// costs are summed across attempts before taking the maximum. On a shared
// disk, all disk work additionally serialises across librarians.
func estimatePhase(cfg Config, trace *core.Trace, phase core.Phase) time.Duration {
	// Contention applies only when more than one reader is actually
	// active on the shared spindle during the phase.
	perLib := make(map[string]time.Duration)
	for _, call := range trace.Calls {
		if call.Phase == phase {
			perLib[call.Librarian] = 0
		}
	}
	contended := cfg.SharedDisk && len(perLib) > 1
	var sharedDisk time.Duration
	for _, call := range trace.Calls {
		if call.Phase != phase {
			continue
		}
		link := cfg.linkFor(call.Librarian)
		network := link.timeFor(call.ReqBytes + call.RespBytes)
		cpu := libCPU(cfg, call)
		disk := libDisk(cfg, call, contended)
		if cfg.SharedDisk {
			sharedDisk += disk
			disk = 0
		}
		perLib[call.Librarian] += network + cpu + disk
	}
	var slowest time.Duration
	for _, t := range perLib {
		if t > slowest {
			slowest = t
		}
	}
	return slowest + sharedDisk
}

// libCPU is the librarian-side processing cost of one call.
func libCPU(cfg Config, call core.Call) time.Duration {
	s := cfg.scaleStats(call.LibStats)
	cpu := cfg.CPU
	d := time.Duration(s.PostingsDecoded) * cpu.PerPosting
	d += time.Duration(s.CandidateDocs) * cpu.PerCandidate
	d += time.Duration(s.TermsLooked) * cpu.PerQueryTerm
	return d
}

// libDisk is the librarian-side disk cost of one call: one positioned read
// per inverted list in the rank phase, one per document in the fetch phase.
func libDisk(cfg Config, call core.Call, contended bool) time.Duration {
	s := cfg.scaleStats(call.LibStats)
	accesses := s.ListsFetched
	bytes := s.IndexBytesRead
	if call.Phase == core.PhaseFetch {
		accesses += call.DocsFetched
		bytes += uint64(call.DocBytes)
	}
	if accesses == 0 && bytes == 0 {
		return 0
	}
	if contended {
		return cfg.Disk.SharedAccessTime(accesses, bytes)
	}
	return cfg.Disk.AccessTime(accesses, bytes)
}

// centralTime is the receptionist's own processing: central index work (MS
// whole-query evaluation or CI group ranking) plus merging. The central
// phase runs while librarians are idle, so its disk reads never pay the
// contention penalty.
func centralTime(cfg Config, trace *core.Trace) time.Duration {
	s := cfg.scaleStats(trace.CentralStats)
	d := statsCPU(cfg.CPU, s)
	d += time.Duration(trace.MergeCandidates) * cfg.CPU.PerMergeItem
	if s.ListsFetched > 0 || s.IndexBytesRead > 0 {
		d += cfg.Disk.AccessTime(s.ListsFetched, s.IndexBytesRead)
	}
	return d
}

func statsCPU(cpu CPUModel, s search.Stats) time.Duration {
	d := time.Duration(s.PostingsDecoded) * cpu.PerPosting
	d += time.Duration(s.CandidateDocs) * cpu.PerCandidate
	d += time.Duration(s.TermsLooked) * cpu.PerQueryTerm
	return d
}

// decompressTime charges the receptionist for expanding compressed document
// transfers.
func decompressTime(cfg Config, trace *core.Trace) time.Duration {
	if cfg.CPU.DecompressRate <= 0 {
		return 0
	}
	var bytes int
	for _, call := range trace.Calls {
		if call.Phase == core.PhaseFetch {
			bytes += call.DocBytes
		}
	}
	return time.Duration(float64(bytes) / cfg.CPU.DecompressRate * float64(time.Second))
}
