package costmodel

import (
	"fmt"
	"time"

	"teraphim/internal/core"
)

// The paper distinguishes response time from resource use: "response time
// measures the minimum delay a user will experience, even on a lightly
// loaded system, whereas resource use is an indication (in an inverse
// sense) of the overall query throughput possible with the system when it
// is operating at capacity, with multiple users and queries competing for
// resources."
//
// Throughput models exactly that: with an unbounded stream of queries, each
// physical resource (a site's CPU, a spindle, a network link) is busy for
// some seconds per query; at capacity, the most heavily used resource
// saturates first and its busy time per query bounds system throughput.

// Utilisation reports one resource's busy time per query.
type Utilisation struct {
	Resource string
	PerQuery time.Duration
}

// ThroughputReport is the capacity analysis of one workload under one
// configuration.
type ThroughputReport struct {
	// QueriesPerSecond is the saturation throughput: the reciprocal of the
	// bottleneck resource's busy time per query.
	QueriesPerSecond float64
	// Bottleneck is the saturating resource.
	Bottleneck string
	// PerMachine divides throughput by the number of active machines, the
	// "is distribution efficient?" number: the paper's answer is that it
	// is not, because every librarian repeats dictionary and list work.
	PerMachine float64
	// Utilisations lists all resources, most loaded first.
	Utilisations []Utilisation
}

// Throughput derives the capacity of a deployment from the average per-query
// resource demands of a trace set. Machines are the librarian sites plus
// the receptionist (for MS traces, the single server).
func Throughput(cfg Config, traces []*core.Trace) (ThroughputReport, error) {
	if len(traces) == 0 {
		return ThroughputReport{}, fmt.Errorf("costmodel: no traces")
	}
	if err := cfg.Disk.Validate(); err != nil {
		return ThroughputReport{}, fmt.Errorf("costmodel: %w", err)
	}
	n := time.Duration(len(traces))

	cpuBusy := map[string]time.Duration{}  // per site
	diskBusy := map[string]time.Duration{} // per spindle
	var netBytes int
	central := "receptionist"

	for _, trace := range traces {
		for _, call := range trace.Calls {
			site := call.Librarian
			cpuBusy[site] += libCPU(cfg, call)
			spindle := site
			if cfg.SharedDisk {
				spindle = "shared-disk"
			}
			diskBusy[spindle] += libDisk(cfg, call, cfg.SharedDisk)
			netBytes += call.ReqBytes + call.RespBytes
		}
		// Receptionist / mono-server work.
		cpuBusy[central] += centralTime(cfg, trace)
		if trace.LocalDocsFetched > 0 {
			spindle := central
			if cfg.SharedDisk {
				spindle = "shared-disk"
			}
			diskBusy[spindle] += cfg.Disk.AccessTime(trace.LocalDocsFetched, uint64(trace.LocalDocBytes))
		}
	}

	var utils []Utilisation
	for site, busy := range cpuBusy {
		if busy > 0 {
			utils = append(utils, Utilisation{Resource: "cpu:" + site, PerQuery: busy / n})
		}
	}
	for spindle, busy := range diskBusy {
		if busy > 0 {
			utils = append(utils, Utilisation{Resource: "disk:" + spindle, PerQuery: busy / n})
		}
	}
	// The network is modelled as one shared segment (the paper's common
	// ethernet cable / receptionist uplink): transmission time per query.
	if bw := cfg.DefaultLink.Bandwidth; bw > 0 && netBytes > 0 {
		perQuery := time.Duration(float64(netBytes) / float64(len(traces)) / bw * float64(time.Second))
		utils = append(utils, Utilisation{Resource: "network", PerQuery: perQuery})
	}
	if len(utils) == 0 {
		return ThroughputReport{}, fmt.Errorf("costmodel: traces carry no resource usage")
	}
	sortUtilisations(utils)

	machines := map[string]bool{}
	for site := range cpuBusy {
		machines[site] = true
	}
	report := ThroughputReport{
		Bottleneck:   utils[0].Resource,
		Utilisations: utils,
	}
	if utils[0].PerQuery > 0 {
		report.QueriesPerSecond = float64(time.Second) / float64(utils[0].PerQuery)
	}
	if len(machines) > 0 {
		report.PerMachine = report.QueriesPerSecond / float64(len(machines))
	}
	return report, nil
}

func sortUtilisations(utils []Utilisation) {
	for i := 1; i < len(utils); i++ {
		for j := i; j > 0 && utils[j].PerQuery > utils[j-1].PerQuery; j-- {
			utils[j], utils[j-1] = utils[j-1], utils[j]
		}
	}
}
