package costmodel

import (
	"time"

	"teraphim/internal/simdisk"
)

// The four deployment configurations of the paper's §4 efficiency
// experiments. Librarian names follow the TREC subcollections; the WAN
// placement matches the paper: ZIFF in Canberra, AP in Brisbane, FR in
// Hamilton (Waikato), WSJ in Tel Aviv, receptionist in Melbourne.

// WANSites maps each librarian to its measured one-packet round-trip time
// (Table 2 of the paper).
var WANSites = map[string]time.Duration{
	"FR":   760 * time.Millisecond,  // Waikato, 13 hops
	"ZIFF": 180 * time.Millisecond,  // Canberra, 14 hops
	"AP":   140 * time.Millisecond,  // Brisbane, 16 hops
	"WSJ":  1040 * time.Millisecond, // Israel, 28 hops
}

// WANHops records the hop counts of Table 2 for reporting.
var WANHops = map[string]int{
	"FR":   13,
	"ZIFF": 14,
	"AP":   16,
	"WSJ":  28,
}

// MonoDisk is a single machine with every collection on one spindle: the
// paper's worst case, where librarians interfere on the disk head.
func MonoDisk() Config {
	return Config{
		Name:        "mono-disk",
		DefaultLink: Link{RTT: 200 * time.Microsecond, Bandwidth: 200 << 20},
		Disk:        simdisk.Era1995(),
		SharedDisk:  true,
		CPU:         Era1995CPU(),
	}
}

// MultiDisk is a single machine with each collection on its own locally
// mounted drive, removing disk contention.
func MultiDisk() Config {
	return Config{
		Name:        "multi-disk",
		DefaultLink: Link{RTT: 200 * time.Microsecond, Bandwidth: 200 << 20},
		Disk:        simdisk.Era1995(),
		CPU:         Era1995CPU(),
	}
}

// LAN places the librarians on separate machines on a shared 10-megabit
// ethernet.
func LAN() Config {
	return Config{
		Name:        "LAN",
		DefaultLink: Link{RTT: 2 * time.Millisecond, Bandwidth: 1 << 20, RTTsPerCall: 1},
		Disk:        simdisk.Era1995(),
		CPU:         Era1995CPU(),
	}
}

// WAN places librarians at the paper's four remote sites, with per-site
// round-trip times from Table 2 and long-haul bandwidth typical of
// mid-1990s international links. RTTsPerCall charges three round trips per
// exchange for connection handshaking and TCP slow start.
func WAN() Config {
	links := make(map[string]Link, len(WANSites))
	for name, rtt := range WANSites {
		links[name] = Link{RTT: rtt, Bandwidth: 64 << 10, RTTsPerCall: 3}
	}
	return Config{
		Name:        "WAN",
		DefaultLink: Link{RTT: 500 * time.Millisecond, Bandwidth: 64 << 10, RTTsPerCall: 3},
		Links:       links,
		Disk:        simdisk.Era1995(),
		CPU:         Era1995CPU(),
	}
}

// AllConfigs returns the four configurations in the paper's table order.
func AllConfigs() []Config {
	return []Config{MonoDisk(), MultiDisk(), LAN(), WAN()}
}
