package costmodel

import (
	"testing"
	"time"

	"teraphim/internal/core"
	"teraphim/internal/search"
	"teraphim/internal/simdisk"
)

// sampleTrace builds a CN-style trace: three librarians ranked in parallel,
// then two fetched from.
func sampleTrace() *core.Trace {
	stats := func(postings uint64, lists int) search.Stats {
		return search.Stats{
			TermsLooked:     5,
			ListsFetched:    lists,
			PostingsDecoded: postings,
			IndexBytesRead:  postings / 4,
			CandidateDocs:   int(postings / 10),
		}
	}
	return &core.Trace{
		Mode: core.ModeCN,
		Calls: []core.Call{
			{Librarian: "AP", Phase: core.PhaseRank, ReqBytes: 120, RespBytes: 700, LibStats: stats(20000, 5)},
			{Librarian: "FR", Phase: core.PhaseRank, ReqBytes: 120, RespBytes: 600, LibStats: stats(8000, 5)},
			{Librarian: "WSJ", Phase: core.PhaseRank, ReqBytes: 120, RespBytes: 650, LibStats: stats(15000, 5)},
			{Librarian: "AP", Phase: core.PhaseFetch, ReqBytes: 60, RespBytes: 24000, DocsFetched: 12, DocBytes: 23000},
			{Librarian: "WSJ", Phase: core.PhaseFetch, ReqBytes: 50, RespBytes: 16000, DocsFetched: 8, DocBytes: 15000},
		},
		MergeCandidates: 60,
	}
}

func TestEstimatePositive(t *testing.T) {
	trace := sampleTrace()
	for _, cfg := range AllConfigs() {
		b, err := Estimate(cfg, trace)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if b.Rank <= 0 || b.Fetch <= 0 {
			t.Errorf("%s: breakdown %+v not positive", cfg.Name, b)
		}
		if b.Total() != b.Rank+b.Fetch {
			t.Errorf("%s: Total != Rank+Fetch", cfg.Name)
		}
	}
}

// TestConfigurationOrdering pins the paper's qualitative Table 3 result:
// multi-disk is faster than mono-disk, and the WAN is much slower than
// everything else.
func TestConfigurationOrdering(t *testing.T) {
	trace := sampleTrace()
	times := map[string]time.Duration{}
	for _, cfg := range AllConfigs() {
		b, err := Estimate(cfg, trace)
		if err != nil {
			t.Fatal(err)
		}
		times[cfg.Name] = b.Rank
	}
	if times["multi-disk"] >= times["mono-disk"] {
		t.Errorf("multi-disk %v not faster than mono-disk %v", times["multi-disk"], times["mono-disk"])
	}
	if times["WAN"] < 3*times["LAN"] {
		t.Errorf("WAN %v not much slower than LAN %v", times["WAN"], times["LAN"])
	}
}

// TestWANLatencyDominates pins the paper's conclusion that wide-area
// response is dominated by network delay, not computation.
func TestWANLatencyDominates(t *testing.T) {
	trace := sampleTrace()
	wan := WAN()
	b, err := Estimate(wan, trace)
	if err != nil {
		t.Fatal(err)
	}
	// The slowest site (WSJ at 1.04s RTT, 3 RTTs per call) alone
	// contributes >3s per phase; computation is tens of milliseconds.
	if b.Rank < 3*time.Second {
		t.Errorf("WAN rank %v: latency should dominate (>3s)", b.Rank)
	}
	noNet := wan
	noNet.Links = nil
	noNet.DefaultLink = Link{}
	b2, err := Estimate(noNet, trace)
	if err != nil {
		t.Fatal(err)
	}
	if b2.Rank*5 > b.Rank {
		t.Errorf("computation %v is not small next to WAN total %v", b2.Rank, b.Rank)
	}
}

func TestSharedDiskSerialises(t *testing.T) {
	trace := sampleTrace()
	mono, err := Estimate(MonoDisk(), trace)
	if err != nil {
		t.Fatal(err)
	}
	multi, err := Estimate(MultiDisk(), trace)
	if err != nil {
		t.Fatal(err)
	}
	// The three librarians' disk work serialises (and pays contention) on
	// one spindle: 15 positioned reads vs the slowest librarian's 5.
	diskUnit := simdisk.Era1995().Seek
	if mono.Rank-multi.Rank < 5*diskUnit {
		t.Errorf("mono-disk %v vs multi-disk %v: shared-disk penalty too small", mono.Rank, multi.Rank)
	}
}

func TestMSTrace(t *testing.T) {
	// An MS query has no calls; cost is purely central.
	trace := &core.Trace{
		Mode: core.ModeMS,
		CentralStats: search.Stats{
			TermsLooked:     5,
			ListsFetched:    5,
			PostingsDecoded: 43000,
			IndexBytesRead:  11000,
			CandidateDocs:   4000,
		},
		MergeCandidates: 20,
	}
	b, err := Estimate(MonoDisk(), trace)
	if err != nil {
		t.Fatal(err)
	}
	if b.Rank <= 0 {
		t.Fatal("MS rank time not positive")
	}
	if b.Fetch != 0 {
		t.Fatalf("MS with no fetch calls has fetch time %v", b.Fetch)
	}
}

func TestSetupPhaseSeparated(t *testing.T) {
	trace := &core.Trace{
		Calls: []core.Call{
			{Librarian: "AP", Phase: core.PhaseSetup, ReqBytes: 10, RespBytes: 100000},
		},
	}
	b, err := Estimate(LAN(), trace)
	if err != nil {
		t.Fatal(err)
	}
	if b.Setup <= 0 {
		t.Fatal("setup time not recorded")
	}
	if b.Rank != 0 || b.Fetch != 0 {
		t.Fatal("setup leaked into rank/fetch")
	}
}

func TestLinkTimeFor(t *testing.T) {
	l := Link{RTT: 100 * time.Millisecond, Bandwidth: 1000}
	// 1 RTT + 500 bytes at 1000 B/s.
	if got := l.timeFor(500); got != 600*time.Millisecond {
		t.Fatalf("timeFor = %v, want 600ms", got)
	}
	l.RTTsPerCall = 3
	if got := l.timeFor(0); got != 300*time.Millisecond {
		t.Fatalf("timeFor with 3 RTTs = %v, want 300ms", got)
	}
	unlimited := Link{}
	if got := unlimited.timeFor(1 << 30); got != 0 {
		t.Fatalf("unlimited link = %v", got)
	}
}

func TestDecompressCharged(t *testing.T) {
	trace := &core.Trace{
		Calls: []core.Call{
			{Librarian: "AP", Phase: core.PhaseFetch, DocsFetched: 1, DocBytes: 20 << 20, RespBytes: 20 << 20},
		},
	}
	cfg := MultiDisk()
	b, err := Estimate(cfg, trace)
	if err != nil {
		t.Fatal(err)
	}
	// 20 MB at 20 MB/s = 1s of decompression alone.
	if b.Fetch < time.Second {
		t.Fatalf("decompression undercharged: fetch = %v", b.Fetch)
	}
}

func TestInvalidDisk(t *testing.T) {
	cfg := MultiDisk()
	cfg.Disk.Seek = -1
	if _, err := Estimate(cfg, &core.Trace{}); err == nil {
		t.Fatal("invalid disk: want error")
	}
}

func TestWANSitesComplete(t *testing.T) {
	for _, name := range []string{"AP", "FR", "WSJ", "ZIFF"} {
		if WANSites[name] == 0 {
			t.Errorf("no WAN RTT for %s", name)
		}
		if WANHops[name] == 0 {
			t.Errorf("no WAN hops for %s", name)
		}
	}
	// Table 2 ordering: Israel slowest, Brisbane fastest.
	if WANSites["WSJ"] <= WANSites["FR"] || WANSites["AP"] >= WANSites["ZIFF"] {
		t.Error("WAN RTTs do not match Table 2 ordering")
	}
}

// TestRetriedCallsSerialisePerLibrarian pins the fault-tolerance accounting:
// a librarian's retried exchanges serialise on its own link, so a trace
// carrying an extra (failed) rank attempt at one librarian can only cost
// more, and on a latency-dominated configuration it must cost strictly more.
func TestRetriedCallsSerialisePerLibrarian(t *testing.T) {
	single := sampleTrace()
	retried := sampleTrace()
	// A timed-out first attempt at the slowest WAN site (WSJ, Tel Aviv):
	// the request went out, nothing came back.
	retried.Calls = append(retried.Calls,
		core.Call{Librarian: "WSJ", Phase: core.PhaseRank, ReqBytes: 120})
	for _, cfg := range AllConfigs() {
		bSingle, err := Estimate(cfg, single)
		if err != nil {
			t.Fatal(err)
		}
		bRetried, err := Estimate(cfg, retried)
		if err != nil {
			t.Fatal(err)
		}
		if bRetried.Rank < bSingle.Rank {
			t.Errorf("%s: retried rank %v < single %v", cfg.Name, bRetried.Rank, bSingle.Rank)
		}
		if cfg.Name == "WAN" && bRetried.Rank <= bSingle.Rank {
			t.Errorf("WAN: retried attempt did not add elapsed time (%v vs %v)",
				bRetried.Rank, bSingle.Rank)
		}
	}
}
