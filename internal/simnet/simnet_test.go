package simnet

import (
	"errors"
	"net"
	"os"
	"testing"
	"time"
)

func TestPipeDelivers(t *testing.T) {
	client, server := Pipe(LinkConfig{})
	defer client.Close()
	defer server.Close()
	go func() {
		if _, err := client.Write([]byte("ping")); err != nil {
			t.Error(err)
		}
	}()
	buf := make([]byte, 4)
	if _, err := server.Read(buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "ping" {
		t.Fatalf("got %q", buf)
	}
}

func TestLatencyApplied(t *testing.T) {
	const latency = 30 * time.Millisecond
	client, server := Pipe(LinkConfig{Latency: latency})
	defer client.Close()
	defer server.Close()

	start := time.Now()
	go func() {
		_, _ = client.Write([]byte("x"))
	}()
	buf := make([]byte, 1)
	if _, err := server.Read(buf); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < latency {
		t.Fatalf("delivered in %v, want >= %v", elapsed, latency)
	}
}

func TestBandwidthApplied(t *testing.T) {
	// 1 KB at 10 KB/s should take ~100 ms.
	client, server := Pipe(LinkConfig{Bandwidth: 10 * 1024})
	defer client.Close()
	defer server.Close()

	payload := make([]byte, 1024)
	start := time.Now()
	go func() {
		_, _ = client.Write(payload)
	}()
	buf := make([]byte, len(payload))
	n := 0
	for n < len(buf) {
		m, err := server.Read(buf[n:])
		if err != nil {
			t.Fatal(err)
		}
		n += m
	}
	if elapsed := time.Since(start); elapsed < 80*time.Millisecond {
		t.Fatalf("1KB at 10KB/s delivered in %v, want ~100ms", elapsed)
	}
}

func TestTimeScale(t *testing.T) {
	// A 1-second latency scaled 100x must deliver in roughly 10 ms.
	client, server := Pipe(LinkConfig{Latency: time.Second, TimeScale: 100})
	defer client.Close()
	defer server.Close()

	start := time.Now()
	go func() {
		_, _ = client.Write([]byte("x"))
	}()
	buf := make([]byte, 1)
	if _, err := server.Read(buf); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed < 5*time.Millisecond || elapsed > 500*time.Millisecond {
		t.Fatalf("scaled delivery took %v, want ≈10ms", elapsed)
	}
}

func TestDelayForComputation(t *testing.T) {
	cfg := LinkConfig{Latency: 100 * time.Millisecond, Bandwidth: 1000}
	// 500 bytes at 1000 B/s = 500ms transmission + 100ms latency.
	if d := cfg.delayFor(500); d != 600*time.Millisecond {
		t.Fatalf("delayFor = %v, want 600ms", d)
	}
	cfg.TimeScale = 10
	if d := cfg.delayFor(500); d != 60*time.Millisecond {
		t.Fatalf("scaled delayFor = %v, want 60ms", d)
	}
	unlimited := LinkConfig{}
	if d := unlimited.delayFor(1 << 20); d != 0 {
		t.Fatalf("unlimited link delay = %v", d)
	}
}

func TestWriteDeadlineInterruptsDelay(t *testing.T) {
	// A 10-second transmission delay must not pin Write past its deadline.
	client, server := Pipe(LinkConfig{Latency: 10 * time.Second})
	defer client.Close()
	defer server.Close()

	if err := client.SetDeadline(time.Now().Add(30 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err := client.Write([]byte("x"))
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("write over 10s link with 30ms deadline: want error")
	}
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("want timeout net.Error, got %v", err)
	}
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("want os.ErrDeadlineExceeded, got %v", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("deadline took %v to interrupt the delay", elapsed)
	}
	// Clearing the deadline restores normal writes.
	if err := client.SetDeadline(time.Time{}); err != nil {
		t.Fatal(err)
	}
}

func TestDeadlineSetMidDelayInterrupts(t *testing.T) {
	client, server := Pipe(LinkConfig{Latency: 10 * time.Second})
	defer client.Close()
	defer server.Close()

	done := make(chan error, 1)
	go func() {
		_, err := client.Write([]byte("x"))
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let Write enter its delay wait
	if err := client.SetWriteDeadline(time.Now().Add(10 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, os.ErrDeadlineExceeded) {
			t.Fatalf("want os.ErrDeadlineExceeded, got %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("deadline set mid-delay did not interrupt the write")
	}
}

func TestCloseInterruptsDelay(t *testing.T) {
	client, server := Pipe(LinkConfig{Latency: 10 * time.Second})
	defer server.Close()

	done := make(chan error, 1)
	go func() {
		_, err := client.Write([]byte("x"))
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	client.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("write on closed delayed conn: want error")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not interrupt the delayed write")
	}
}

func TestMapDialer(t *testing.T) {
	c1, _ := net.Pipe()
	d := MapDialer{"a": func() (net.Conn, error) { return c1, nil }}
	conn, err := d.Dial("a")
	if err != nil || conn != c1 {
		t.Fatalf("Dial = %v, %v", conn, err)
	}
	if _, err := d.Dial("b"); err == nil {
		t.Fatal("unknown peer: want error")
	}
}
