package simnet

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Chaos wraps a Dialer with per-endpoint fault and latency injection, so
// replica-failure scenarios are deterministic in tests and demos without a
// real network to break: Kill makes an endpoint refuse new dials and severs
// its live connections (blocked reads and delay waits wake with an error),
// Revive brings it back, and SetDelay shapes one endpoint slow — a per-write
// delay layered on top of whatever link the inner dialer provides — without
// touching its siblings.
//
// Chaos is safe for concurrent use, including Kill/Revive/SetDelay racing
// Dial and live traffic.
type Chaos struct {
	inner Dialer

	mu    sync.Mutex
	knobs map[string]*chaosKnobs
	conns map[*chaosConn]struct{}
}

// chaosKnobs is the injected state of one endpoint. down is guarded by
// Chaos.mu; delay is atomic so every in-flight Write reads the current value
// without locking the whole wrapper.
type chaosKnobs struct {
	down  bool
	delay atomic.Int64 // nanoseconds added per write
}

// NewChaos wraps inner; all endpoints start healthy and unshaped.
func NewChaos(inner Dialer) *Chaos {
	return &Chaos{
		inner: inner,
		knobs: make(map[string]*chaosKnobs),
		conns: make(map[*chaosConn]struct{}),
	}
}

// knobsFor returns (creating if needed) the endpoint's knobs; callers hold mu.
func (c *Chaos) knobsFor(name string) *chaosKnobs {
	k, ok := c.knobs[name]
	if !ok {
		k = &chaosKnobs{}
		c.knobs[name] = k
	}
	return k
}

// Dial implements Dialer. Dialing a killed endpoint fails like a refused
// connection would.
func (c *Chaos) Dial(name string) (net.Conn, error) {
	c.mu.Lock()
	k := c.knobsFor(name)
	if k.down {
		c.mu.Unlock()
		return nil, fmt.Errorf("simnet: chaos: endpoint %q is down", name)
	}
	c.mu.Unlock()
	inner, err := c.inner.Dial(name)
	if err != nil {
		return nil, err
	}
	cc := &chaosConn{Conn: inner, knobs: k, chaos: c, name: name, gate: newDelayGate()}
	c.mu.Lock()
	if k.down {
		// Killed between the check and the registration: a dead endpoint
		// must not hand out a live connection.
		c.mu.Unlock()
		_ = inner.Close()
		return nil, fmt.Errorf("simnet: chaos: endpoint %q is down", name)
	}
	c.conns[cc] = struct{}{}
	c.mu.Unlock()
	return cc, nil
}

// Kill marks the endpoint down: new dials fail immediately and every live
// connection to it is severed, waking blocked readers and delay waits. The
// inner dialer is untouched — Revive restores service without rebuilding
// anything.
func (c *Chaos) Kill(name string) {
	c.mu.Lock()
	c.knobsFor(name).down = true
	var victims []*chaosConn
	for cc := range c.conns {
		if cc.name == name {
			victims = append(victims, cc)
		}
	}
	c.mu.Unlock()
	for _, cc := range victims {
		_ = cc.Close()
	}
}

// Revive clears Kill: new dials to the endpoint succeed again. Connections
// severed while it was down stay dead.
func (c *Chaos) Revive(name string) {
	c.mu.Lock()
	c.knobsFor(name).down = false
	c.mu.Unlock()
}

// SetDelay adds d to every write on the endpoint's current and future
// connections; zero removes the shaping. The delay honours write deadlines
// and Close, so a cancelled exchange never hangs behind injected latency.
func (c *Chaos) SetDelay(name string, d time.Duration) {
	c.mu.Lock()
	c.knobsFor(name).delay.Store(int64(d))
	c.mu.Unlock()
}

// forget drops a closed connection from the live set.
func (c *Chaos) forget(cc *chaosConn) {
	c.mu.Lock()
	delete(c.conns, cc)
	c.mu.Unlock()
}

// chaosConn is one wrapped connection: it consults its endpoint's knobs on
// every write and can be severed by Kill.
type chaosConn struct {
	net.Conn
	knobs *chaosKnobs
	chaos *Chaos
	name  string
	gate  *delayGate
}

func (cc *chaosConn) Write(p []byte) (int, error) {
	if d := time.Duration(cc.knobs.delay.Load()); d > 0 {
		if err := cc.gate.wait(d); err != nil {
			return 0, err
		}
	}
	return cc.Conn.Write(p)
}

func (cc *chaosConn) SetDeadline(t time.Time) error {
	cc.gate.setDeadline(t)
	return cc.Conn.SetDeadline(t)
}

func (cc *chaosConn) SetWriteDeadline(t time.Time) error {
	cc.gate.setDeadline(t)
	return cc.Conn.SetWriteDeadline(t)
}

func (cc *chaosConn) Close() error {
	cc.gate.close()
	cc.chaos.forget(cc)
	return cc.Conn.Close()
}

var _ Dialer = (*Chaos)(nil)
