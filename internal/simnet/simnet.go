// Package simnet provides in-process network links with configurable
// latency and bandwidth, so the paper's four deployment configurations
// (mono-disk, multi-disk, LAN, WAN) can be exercised on one machine.
//
// A Link wraps the two ends of a net.Pipe; writes are delivered to the
// reader only after the simulated propagation (latency) and transmission
// (bytes/bandwidth) delay has elapsed. Delays can be scaled down uniformly
// (TimeScale) so that a WAN experiment with second-scale round trips runs in
// milliseconds while preserving relative behaviour.
package simnet

import (
	"fmt"
	"net"
	"os"
	"sync"
	"time"
)

// LinkConfig describes one direction of a simulated link.
type LinkConfig struct {
	// Latency is the one-way propagation delay.
	Latency time.Duration
	// Bandwidth in bytes per second; zero means unlimited.
	Bandwidth float64
	// TimeScale divides every delay; zero or one means real time. A scale
	// of 100 runs a 1-second delay in 10 ms.
	TimeScale float64
}

func (c LinkConfig) delayFor(bytes int) time.Duration {
	d := c.Latency
	if c.Bandwidth > 0 {
		d += time.Duration(float64(bytes) / c.Bandwidth * float64(time.Second))
	}
	if c.TimeScale > 1 {
		d = time.Duration(float64(d) / c.TimeScale)
	}
	return d
}

// Pipe returns the two ends of a bidirectional link with the given
// symmetric configuration. Both ends satisfy net.Conn.
func Pipe(cfg LinkConfig) (client, server net.Conn) {
	c, s := net.Pipe()
	return newConn(c, cfg), newConn(s, cfg)
}

// conn delays each Write by the link's latency and transmission time before
// handing the bytes to the underlying pipe. net.Pipe is synchronous, so the
// delay-then-write discipline makes delivery time behave like a
// store-and-forward network hop. The delay wait honours write deadlines and
// Close, so a deadline set on the connection can interrupt a slow simulated
// transmission with os.ErrDeadlineExceeded.
type conn struct {
	net.Conn
	cfg LinkConfig

	mu sync.Mutex // serialises writes, modelling one physical link

	gate *delayGate
}

func newConn(c net.Conn, cfg LinkConfig) *conn {
	return &conn{Conn: c, cfg: cfg, gate: newDelayGate()}
}

// Write implements net.Conn with simulated delay.
func (c *conn) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if d := c.cfg.delayFor(len(p)); d > 0 {
		if err := c.gate.wait(d); err != nil {
			return 0, err
		}
	}
	return c.Conn.Write(p)
}

// SetDeadline implements net.Conn, covering both the simulated transmission
// wait and the underlying pipe.
func (c *conn) SetDeadline(t time.Time) error {
	c.gate.setDeadline(t)
	return c.Conn.SetDeadline(t)
}

// SetWriteDeadline implements net.Conn.
func (c *conn) SetWriteDeadline(t time.Time) error {
	c.gate.setDeadline(t)
	return c.Conn.SetWriteDeadline(t)
}

// Close implements net.Conn, waking any write blocked in the delay wait.
func (c *conn) Close() error {
	c.gate.close()
	return c.Conn.Close()
}

// delayGate blocks callers for injected delays while honouring write
// deadlines and Close — the machinery shared by the link-shaping conn and
// the chaos wrapper's per-endpoint latency injection. A gate belongs to one
// connection: setDeadline tracks the connection's write deadline, close
// wakes every waiter with net.ErrClosed.
type delayGate struct {
	mu       sync.Mutex
	deadline time.Time     // current write deadline
	notify   chan struct{} // closed (and replaced) whenever the deadline changes

	closed    chan struct{}
	closeOnce sync.Once
}

func newDelayGate() *delayGate {
	return &delayGate{notify: make(chan struct{}), closed: make(chan struct{})}
}

// wait blocks for the delay d, aborting early when the write deadline
// passes or the gate is closed.
func (g *delayGate) wait(d time.Duration) error {
	delay := time.NewTimer(d)
	defer delay.Stop()
	for {
		g.mu.Lock()
		deadline := g.deadline
		notify := g.notify
		g.mu.Unlock()

		var deadlineCh <-chan time.Time
		var deadlineTimer *time.Timer
		if !deadline.IsZero() {
			remaining := time.Until(deadline)
			if remaining <= 0 {
				return os.ErrDeadlineExceeded
			}
			deadlineTimer = time.NewTimer(remaining)
			deadlineCh = deadlineTimer.C
		}
		select {
		case <-delay.C:
			if deadlineTimer != nil {
				deadlineTimer.Stop()
			}
			return nil
		case <-deadlineCh:
			return os.ErrDeadlineExceeded
		case <-notify:
			// Deadline changed mid-wait: recompute and keep waiting.
			if deadlineTimer != nil {
				deadlineTimer.Stop()
			}
		case <-g.closed:
			if deadlineTimer != nil {
				deadlineTimer.Stop()
			}
			return net.ErrClosed
		}
	}
}

func (g *delayGate) setDeadline(t time.Time) {
	g.mu.Lock()
	g.deadline = t
	close(g.notify)
	g.notify = make(chan struct{})
	g.mu.Unlock()
}

func (g *delayGate) close() {
	g.closeOnce.Do(func() { close(g.closed) })
}

// Dialer hands out client connections to named peers, hiding whether the
// peer is in-process (simulated) or remote (TCP). The receptionist uses a
// Dialer so the same code drives every experiment configuration.
type Dialer interface {
	Dial(name string) (net.Conn, error)
}

// MapDialer dials from a static map of connect functions.
type MapDialer map[string]func() (net.Conn, error)

// Dial implements Dialer.
func (d MapDialer) Dial(name string) (net.Conn, error) {
	fn, ok := d[name]
	if !ok {
		return nil, fmt.Errorf("simnet: unknown peer %q", name)
	}
	return fn()
}

// TCPDialer dials real TCP addresses: name -> host:port.
type TCPDialer map[string]string

// Dial implements Dialer.
func (d TCPDialer) Dial(name string) (net.Conn, error) {
	addr, ok := d[name]
	if !ok {
		return nil, fmt.Errorf("simnet: unknown peer %q", name)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("simnet: dial %q (%s): %w", name, addr, err)
	}
	return conn, nil
}
