// Package simnet provides in-process network links with configurable
// latency and bandwidth, so the paper's four deployment configurations
// (mono-disk, multi-disk, LAN, WAN) can be exercised on one machine.
//
// A Link wraps the two ends of a net.Pipe; writes are delivered to the
// reader only after the simulated propagation (latency) and transmission
// (bytes/bandwidth) delay has elapsed. Delays can be scaled down uniformly
// (TimeScale) so that a WAN experiment with second-scale round trips runs in
// milliseconds while preserving relative behaviour.
package simnet

import (
	"fmt"
	"net"
	"sync"
	"time"
)

// LinkConfig describes one direction of a simulated link.
type LinkConfig struct {
	// Latency is the one-way propagation delay.
	Latency time.Duration
	// Bandwidth in bytes per second; zero means unlimited.
	Bandwidth float64
	// TimeScale divides every delay; zero or one means real time. A scale
	// of 100 runs a 1-second delay in 10 ms.
	TimeScale float64
}

func (c LinkConfig) delayFor(bytes int) time.Duration {
	d := c.Latency
	if c.Bandwidth > 0 {
		d += time.Duration(float64(bytes) / c.Bandwidth * float64(time.Second))
	}
	if c.TimeScale > 1 {
		d = time.Duration(float64(d) / c.TimeScale)
	}
	return d
}

// Pipe returns the two ends of a bidirectional link with the given
// symmetric configuration. Both ends satisfy net.Conn.
func Pipe(cfg LinkConfig) (client, server net.Conn) {
	c, s := net.Pipe()
	return &conn{Conn: c, cfg: cfg}, &conn{Conn: s, cfg: cfg}
}

// conn delays each Write by the link's latency and transmission time before
// handing the bytes to the underlying pipe. net.Pipe is synchronous, so the
// sleep-then-write discipline makes delivery time behave like a
// store-and-forward network hop.
type conn struct {
	net.Conn
	cfg LinkConfig

	mu sync.Mutex // serialises writes, modelling one physical link
}

// Write implements net.Conn with simulated delay.
func (c *conn) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if d := c.cfg.delayFor(len(p)); d > 0 {
		time.Sleep(d)
	}
	return c.Conn.Write(p)
}

// Dialer hands out client connections to named peers, hiding whether the
// peer is in-process (simulated) or remote (TCP). The receptionist uses a
// Dialer so the same code drives every experiment configuration.
type Dialer interface {
	Dial(name string) (net.Conn, error)
}

// MapDialer dials from a static map of connect functions.
type MapDialer map[string]func() (net.Conn, error)

// Dial implements Dialer.
func (d MapDialer) Dial(name string) (net.Conn, error) {
	fn, ok := d[name]
	if !ok {
		return nil, fmt.Errorf("simnet: unknown peer %q", name)
	}
	return fn()
}

// TCPDialer dials real TCP addresses: name -> host:port.
type TCPDialer map[string]string

// Dial implements Dialer.
func (d TCPDialer) Dial(name string) (net.Conn, error) {
	addr, ok := d[name]
	if !ok {
		return nil, fmt.Errorf("simnet: unknown peer %q", name)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("simnet: dial %q (%s): %w", name, addr, err)
	}
	return conn, nil
}
