package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"teraphim/internal/protocol"
	"teraphim/internal/search"
)

// Session is a lightweight query-serving handle over a shared Federation
// and its connection Pool. Sessions carry no mutable state of their own —
// the per-query fault-tolerance policy lives on the stack of each Query
// call — so one Session may serve many goroutines, and creating one per
// client costs nothing. This is the paper's "multiple users at capacity"
// regime: the expensive central state (vocabulary, models, central index)
// is gathered once into the Federation; each concurrent user only borrows
// connections for the duration of an exchange.
type Session struct {
	fed  *Federation
	pool *Pool
}

// Query evaluates a ranked query under the given methodology, returning the
// top k answers merged across librarians. Safe for concurrent use.
func (s *Session) Query(mode Mode, query string, k int, opts Options) (*Result, error) {
	return s.QueryContext(context.Background(), mode, query, k, opts)
}

// QueryContext is Query under a context: cancelling ctx aborts the query
// promptly — connection-slot waits, retry backoffs and blocked reads all
// observe it — and a ctx deadline bounds every librarian exchange in
// addition to Options.Timeout. Interrupted streams are discarded by the
// pool, never leaked or reused.
func (s *Session) QueryContext(ctx context.Context, mode Mode, query string, k int, opts Options) (*Result, error) {
	if k <= 0 {
		return nil, fmt.Errorf("core: k must be positive, got %d", k)
	}
	switch mode {
	case ModeCN, ModeCV, ModeCI:
	default:
		return nil, fmt.Errorf("core: receptionist cannot evaluate mode %v", mode)
	}
	// Merge strategy and top-R are resolved (validated, defaulted, clamped)
	// before anything else: an out-of-range Options.Merge must fail the
	// query rather than silently collate at face value, and the cache must
	// key on the resolved values so equivalent option spellings share an
	// entry instead of fragmenting it.
	merge, err := effectiveMerge(mode, opts)
	if err != nil {
		return nil, err
	}
	// The evaluator is validated with the same up-front discipline: an
	// out-of-range Options.Evaluator must fail here, before any librarian
	// sees a frame it would answer with an ErrorReply.
	if !opts.Evaluator.Valid() {
		return nil, fmt.Errorf("%w: %d", search.ErrUnknownEvaluator, uint8(opts.Evaluator))
	}
	topR := effectiveTopR(s.fed, opts)
	if ctx == nil {
		ctx = context.Background()
	}
	// An already-cancelled context fails deterministically up front. Without
	// this, cancellation is only observed through connection deadlines and
	// slot waits, and a fast in-process exchange can win that race and
	// "succeed" for a caller that already gave up.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start := time.Now()
	// The cache is consulted before admission control: a hit costs no
	// librarian work, so serving it even when the pool is saturated is
	// exactly the overload relief the cache exists for.
	var key cacheKey
	var epoch uint64
	cache := s.pool.cache
	if cache != nil {
		key = cache.keyFor(s.fed, mode, query, k, merge, topR, opts)
		epoch = s.fed.Epoch() + cache.gen.Load()
		if res, ok := cache.get(key, epoch); ok {
			s.pool.observeQuery(mode, query, time.Since(start), res, nil)
			return res, nil
		}
	}
	if adm := s.pool.admission; adm != nil {
		if err := adm.acquire(ctx); err != nil {
			return nil, err
		}
		defer adm.release()
	}
	e := &exec{ctx: ctx, fed: s.fed, pool: s.pool, policy: policyFor(opts), topR: topR, eval: opts.Evaluator}
	res := &Result{}
	res.Trace.Mode = mode
	switch mode {
	case ModeCN:
		err = e.queryCN(res, query, k, merge)
	case ModeCV:
		err = e.queryCV(res, query, k)
	case ModeCI:
		err = e.queryCI(res, query, k, opts)
	}
	if err == nil && opts.Fetch {
		err = e.fetchAnswers(res, opts.CompressedTransfer)
	}
	s.pool.observeQuery(mode, query, time.Since(start), res, err)
	if err != nil {
		return nil, err
	}
	if cache != nil && !res.Trace.Degraded {
		// Stamped with the epoch read before evaluation: if setup state
		// changed underneath this query, the stamp is already stale and the
		// entry dies on its first lookup rather than serving a mixed answer.
		cache.put(key, epoch, res)
	}
	return res, nil
}

// Boolean evaluates expr at every librarian and unions the result sets.
// Safe for concurrent use.
func (s *Session) Boolean(expr string) (*BooleanResult, error) {
	e := &exec{ctx: context.Background(), fed: s.fed, pool: s.pool}
	return e.boolean(expr)
}

// Federation returns the shared federation state this session queries.
func (s *Session) Federation() *Federation { return s.fed }

// exec is the execution context of a single query (or setup exchange): the
// shared federation state, the pool to lease connections from, and the
// fault-tolerance policy for this call only. It lives on one goroutine's
// stack per query, which is what makes concurrent queries race-free —
// nothing per-query is ever written to shared structures.
type exec struct {
	ctx    context.Context
	fed    *Federation
	pool   *Pool
	policy callPolicy
	// topR > 0 narrows the rank-phase fan-out to the top-R librarians by
	// collection-selection score (already clamped to the fleet size); zero
	// means full fan-out.
	topR int
	// eval is the rank-phase evaluation strategy stamped on every RankQuery
	// this query sends (and applied locally by CI's central index). Already
	// validated by QueryContext.
	eval search.Evaluator

	// hedgesLaunched/hedgesWon accumulate across this query's phases (the
	// per-librarian exchange goroutines bump them concurrently) and are
	// published into the Trace by callParallel.
	hedgesLaunched atomic.Int64
	hedgesWon      atomic.Int64
}

// callParallel sends one request to each named librarian concurrently and
// waits for every outcome, appending per-attempt Call records to trace. A
// librarian whose exchange fails is retried per the policy (redial, capped
// exponential backoff); one that exhausts its attempts is recorded in
// trace.Failures. Whether a failure fails the whole call depends on the
// policy: without AllowPartial the first failure is returned as an error
// (an ErrorReply surfaces as a *protocol.RemoteError); with it, the
// surviving replies are returned and trace.Degraded is set, provided at
// least MinLibrarians answered the rank phase.
func (e *exec) callParallel(trace *Trace, phase Phase, names []string, makeReq func(name string) protocol.Message) (map[string]protocol.Message, error) {
	type outcome struct {
		name  string
		calls []Call
		reply protocol.Message
		fail  *Failure
	}
	results := make(chan outcome, len(names))
	var wg sync.WaitGroup
	for _, name := range names {
		if _, ok := e.fed.byName[name]; !ok {
			return nil, fmt.Errorf("core: unknown librarian %q", name)
		}
		req := makeReq(name)
		wg.Add(1)
		go func(name string, req protocol.Message) {
			defer wg.Done()
			calls, reply, fail := e.callLibrarian(name, phase, req)
			results <- outcome{name: name, calls: calls, reply: reply, fail: fail}
		}(name, req)
	}
	wg.Wait()
	close(results)

	replies := make(map[string]protocol.Message, len(names))
	var failures []Failure
	var maxShip, maxWait time.Duration
	for out := range results {
		trace.Calls = append(trace.Calls, out.calls...)
		// The librarians run in parallel, so the stage's wall-clock
		// contribution is the slowest librarian's; a librarian's own attempts
		// run serially, so its ship/wait times sum across retries.
		var ship, wait time.Duration
		for _, c := range out.calls {
			ship += c.Ship
			wait += c.Wait
		}
		if ship > maxShip {
			maxShip = ship
		}
		if wait > maxWait {
			maxWait = wait
		}
		if out.fail != nil {
			failures = append(failures, *out.fail)
			continue
		}
		replies[out.name] = out.reply
	}
	trace.Stages.Ship += maxShip
	trace.Stages.Wait += maxWait
	// Publish the query-cumulative hedge accounting (assignment, not add:
	// the counters accumulate across this exec's phases into one trace).
	trace.Hedges = int(e.hedgesLaunched.Load())
	trace.HedgeWins = int(e.hedgesWon.Load())
	// Keep trace ordering deterministic for tests and cost accounting; the
	// stable sort preserves attempt order within a (phase, librarian) pair.
	sort.SliceStable(trace.Calls, func(i, j int) bool {
		if trace.Calls[i].Phase != trace.Calls[j].Phase {
			return trace.Calls[i].Phase < trace.Calls[j].Phase
		}
		return trace.Calls[i].Librarian < trace.Calls[j].Librarian
	})
	if len(failures) == 0 {
		return replies, nil
	}
	sort.Slice(failures, func(i, j int) bool { return failures[i].Librarian < failures[j].Librarian })
	trace.Failures = append(trace.Failures, failures...)
	if !e.policy.allowPartial {
		f := failures[0]
		return nil, fmt.Errorf("core: librarian %q: %w", f.Librarian, f.Err)
	}
	trace.Degraded = true
	if phase == PhaseRank {
		min := e.policy.minLibrarians
		if min < 1 {
			min = 1
		}
		if len(replies) < min {
			return nil, fmt.Errorf("core: only %d of %d librarians answered, need %d",
				len(replies), len(names), min)
		}
	}
	return replies, nil
}

// callLibrarian drives the named librarian through a request/response
// exchange under the policy. Each attempt leases its own replica through
// the librarian's router — a retry after a replica failure prefers a
// different endpoint than the one that just failed, so it usually lands on
// a healthy sibling instead of redialling the corpse. When the policy
// hedges, an attempt may race two replicas (attemptHedged); a hedge is not
// a retry — its calls carry the Hedge flag and RetryAttempts skips them.
// It returns every attempt's Call records plus either the reply or the
// Failure that exhausted the attempts.
func (e *exec) callLibrarian(name string, phase Phase, req protocol.Message) ([]Call, protocol.Message, *Failure) {
	maxAttempts := e.policy.retries + 1
	var calls []Call
	var lastErr error
	avoid := ""
	// Batch-eligible exchanges go through the batcher instead of hedging:
	// a batched frame carries other clients' queries, so racing it against a
	// second replica would duplicate their work, not just ours.
	batch := e.batchable(name, phase, req)
	for attempt := 1; attempt <= maxAttempts; attempt++ {
		if attempt > 1 {
			if !sleepCtx(e.ctx, backoffDelay(e.policy.backoff, attempt-1)) {
				return calls, nil, &Failure{Librarian: name, Phase: phase, Attempts: attempt - 1, Err: e.ctx.Err()}
			}
		}
		var got []Call
		var reply protocol.Message
		var endpoint string
		var err error
		if batch {
			got, reply, err = e.pool.batch.do(e, name, req)
		} else {
			got, reply, endpoint, err = e.attemptHedged(name, phase, req, avoid)
		}
		calls = append(calls, got...)
		if err == nil {
			return calls, reply, nil
		}
		lastErr = err
		if endpoint != "" {
			avoid = endpoint
		}
		if errors.Is(err, ErrPoolClosed) {
			return calls, nil, &Failure{Librarian: name, Phase: phase, Attempts: attempt, Err: err}
		}
		if !retryableError(err) {
			return calls, nil, &Failure{Librarian: name, Phase: phase, Attempts: attempt, Err: err}
		}
		// A cancelled context surfaces here as a deadline error on the
		// stream; report the cancellation itself rather than retrying a
		// query nobody is waiting for.
		if ctxErr := e.ctx.Err(); ctxErr != nil {
			return calls, nil, &Failure{Librarian: name, Phase: phase, Attempts: attempt, Err: ctxErr}
		}
	}
	return calls, nil, &Failure{Librarian: name, Phase: phase, Attempts: maxAttempts, Err: lastErr}
}

// attempt performs one exchange against one replica of the named librarian:
// lease (router-picked, steering around avoid), dial if the lease came
// without a live connection, exchange, report the outcome to the router's
// passive health tracking, release. onLease, when non-nil, observes the
// chosen endpoint as soon as the lease is taken — the hedge path uses it to
// route the hedge away from the primary and to count only hedges that
// actually got a connection slot. The endpoint used is returned even on
// failure so the retry loop can avoid it.
func (e *exec) attempt(ctx context.Context, name string, phase Phase, req protocol.Message, avoid string, tryOnly bool, onLease func(endpoint string)) ([]Call, protocol.Message, string, error) {
	if e.pool.features.Has(protocol.FeaturePipelining) {
		legacy := false
		// A pick taken just before RemoveReplica swapped the set can land on
		// a replica whose connections are draining. The legacy path served
		// such exchanges unnoticed (the endpoint itself is still alive), so
		// a drain must not surface as a failed attempt: re-pick against the
		// freshly installed set, which no longer contains the removed
		// replica. One re-pick suffices — drained replicas are never in the
		// current set — but bound the loop against pathological churn.
		// onLease fires once per logical attempt, not per re-pick: the hedge
		// path counts a launched hedge in it, and a drain re-pick is still
		// the same attempt.
		leased := false
		onceLease := onLease
		if onLease != nil {
			onceLease = func(ep string) {
				if !leased {
					leased = true
					onLease(ep)
				}
			}
		}
		for tries := 0; tries < 3; tries++ {
			calls, reply, ep, err := e.attemptPiped(ctx, name, phase, req, avoid, tryOnly, onceLease)
			if errors.Is(err, errConnDraining) && ctx.Err() == nil {
				continue
			}
			if !errors.Is(err, errWireLegacy) {
				return calls, reply, ep, err
			}
			// The replica negotiated the seed framing (a mixed-version
			// fleet): fall through to the legacy exclusive-connection path,
			// whose idle list already holds the handshook connection.
			legacy = true
			break
		}
		if !legacy {
			// Every re-pick landed on a draining replica (sustained churn):
			// report the transient error and let the retry policy handle it.
			return nil, nil, "", errConnDraining
		}
	}
	pc, err := e.pool.leaseReplica(ctx, name, avoid, tryOnly)
	if err != nil {
		return nil, nil, "", err
	}
	defer e.pool.Release(pc)
	endpoint := pc.Endpoint()
	if onLease != nil {
		onLease(endpoint)
	}
	rt := e.pool.routers[name]
	if err := pc.ensure(); err != nil {
		// Health accounting never counts a cancelled attempt against the
		// replica: a hedge loser or an abandoned query says nothing about
		// the endpoint. Pool shutdown says nothing either.
		if ctx.Err() == nil && !errors.Is(err, ErrPoolClosed) {
			rt.reportFailure(pc.rep)
		}
		return nil, nil, endpoint, err
	}
	call, reply, err := e.exchange(ctx, pc, phase, req)
	if err != nil {
		if dirtiesConn(err) {
			pc.MarkDirty()
			if ctx.Err() == nil {
				rt.reportFailure(pc.rep)
			}
		} else {
			// A RemoteError is a completed exchange: the replica is healthy
			// and its latency is a real observation.
			rt.reportSuccess(pc.rep, call.Ship+call.Wait)
		}
		return []Call{call}, nil, endpoint, err
	}
	rt.reportSuccess(pc.rep, call.Ship+call.Wait)
	return []Call{call}, reply, endpoint, nil
}

// attemptHedged is one policy attempt that may race two replicas: the
// primary runs immediately; if the policy hedges (Options.HedgeAfter) and
// the primary outlives the librarian's tracked latency quantile, a hedge
// launches against a different replica and the first reply wins, the loser
// cancelled through its context (its deadline snaps and its stream is
// discarded as dirty). The hedge takes a connection slot only if one is
// free right now — hedging adds no load to a saturated replica set — and a
// hedge that never got a slot is not counted as launched.
func (e *exec) attemptHedged(name string, phase Phase, req protocol.Message, avoid string) ([]Call, protocol.Message, string, error) {
	rt := e.pool.routers[name]
	var delay time.Duration
	if q := e.policy.hedge; q > 0 && rt != nil && rt.replicaCount() > 1 {
		delay = rt.hedgeDelay(q)
	}
	if delay <= 0 {
		return e.attempt(e.ctx, name, phase, req, avoid, false, nil)
	}
	type outcome struct {
		calls []Call
		reply protocol.Message
		ep    string
		err   error
		hedge bool
	}
	primaryCtx, cancelPrimary := context.WithCancel(e.ctx)
	hedgeCtx, cancelHedge := context.WithCancel(e.ctx)
	defer cancelPrimary()
	defer cancelHedge()
	results := make(chan outcome, 2)
	var primaryEndpoint atomic.Value
	go func() {
		calls, reply, ep, err := e.attempt(primaryCtx, name, phase, req, avoid, false, func(ep string) {
			primaryEndpoint.Store(ep)
		})
		results <- outcome{calls: calls, reply: reply, ep: ep, err: err}
	}()
	timer := time.NewTimer(delay)
	defer timer.Stop()
	var outs []outcome
	raced := false
	select {
	case out := <-results:
		// Primary finished inside its latency budget (or failed — that is
		// the retry layer's business, not a reason to hedge).
		outs = append(outs, out)
	case <-timer.C:
		raced = true
		avoidEp, _ := primaryEndpoint.Load().(string)
		go func() {
			calls, reply, ep, err := e.attempt(hedgeCtx, name, phase, req, avoidEp, true, func(string) {
				e.hedgesLaunched.Add(1)
				e.pool.metrics.hedgeLaunched.Inc()
			})
			for i := range calls {
				calls[i].Hedge = true
			}
			results <- outcome{calls: calls, reply: reply, ep: ep, err: err, hedge: true}
		}()
	}
	if raced {
		// First success cancels the other side; we still wait for the loser
		// so its Call lands in the trace and no goroutine outlives the query.
		for len(outs) < 2 {
			out := <-results
			outs = append(outs, out)
			if out.err == nil && len(outs) == 1 {
				if out.hedge {
					cancelPrimary()
				} else {
					cancelHedge()
				}
			}
		}
	}
	var calls []Call
	var winner, primary *outcome
	for i := range outs {
		out := &outs[i]
		calls = append(calls, out.calls...)
		if !out.hedge {
			primary = out
		}
		if out.err == nil && winner == nil {
			winner = out
		}
	}
	if winner != nil {
		if winner.hedge {
			e.hedgesWon.Add(1)
			e.pool.metrics.hedgeWon.Inc()
		}
		return calls, winner.reply, winner.ep, nil
	}
	// Both sides failed (or the only attempt did). Surface the primary's
	// error: the hedge's no-free-slot sentinel is not a query error, and
	// the primary's failure is the one the retry policy should classify.
	return calls, nil, primary.ep, primary.err
}

// exchange performs one request/response round trip on the leased
// connection, recording traffic and librarian statistics in the Call.
func (e *exec) exchange(ctx context.Context, pc *PooledConn, phase Phase, req protocol.Message) (Call, protocol.Message, error) {
	call := Call{Librarian: pc.name, Replica: pc.Endpoint(), Phase: phase, ReqType: req.Type()}
	conn := pc.conn
	// Deadline errors surface from the read/write below; a fresh deadline
	// applies to every attempt, and is cleared before the connection can
	// return to the idle list. The effective deadline is the earlier of the
	// per-exchange Options.Timeout and the context's own deadline.
	var deadline time.Time
	if e.policy.timeout > 0 {
		deadline = time.Now().Add(e.policy.timeout)
	}
	if d, ok := ctx.Deadline(); ok && (deadline.IsZero() || d.Before(deadline)) {
		deadline = d
	}
	if !deadline.IsZero() {
		_ = conn.SetDeadline(deadline)
		defer func() { _ = conn.SetDeadline(time.Time{}) }()
	}
	if ctx.Done() != nil {
		// Cancellation must wake a read blocked on a slow librarian, not
		// just future deadline checks: snap the deadline into the past, which
		// fails the pending I/O and marks the stream dirty for discard.
		snapped := make(chan struct{})
		stop := context.AfterFunc(ctx, func() {
			defer close(snapped)
			_ = conn.SetDeadline(time.Now().Add(-time.Second))
		})
		defer func() {
			if !stop() {
				// The snap is running (a hedge race can cancel ctx in the
				// same instant the exchange completes cleanly): wait for it
				// and undo it, or a healthy connection would be parked on
				// the idle list with a poisoned deadline and fail its next
				// exchange instantly.
				<-snapped
				_ = conn.SetDeadline(time.Time{})
			}
		}()
	}
	shipStart := time.Now()
	wrote, err := protocol.WriteMessage(conn, req)
	call.ReqBytes = wrote
	call.Ship = time.Since(shipStart)
	if err != nil {
		return call, nil, err
	}
	e.pool.metrics.wireBytesOut.Add(uint64(wrote))
	waitStart := time.Now()
	reply, read, err := protocol.ReadMessage(conn)
	call.RespBytes = read
	call.Wait = time.Since(waitStart)
	if err != nil {
		return call, nil, err
	}
	e.pool.metrics.wireBytesIn.Add(uint64(read))
	e.pool.metrics.wireRoundTrips.Inc()
	reply, err = classifyReply(&call, reply)
	return call, reply, err
}

// classifyReply turns a decoded reply into the exchange outcome: an
// ErrorReply becomes a *protocol.RemoteError, and the reply's librarian-side
// statistics and fetch traffic are recorded into the Call.
func classifyReply(call *Call, reply protocol.Message) (protocol.Message, error) {
	switch m := reply.(type) {
	case *protocol.ErrorReply:
		return nil, &protocol.RemoteError{Message: m.Message}
	case *protocol.RankReply:
		call.LibStats = m.Stats
	case *protocol.BooleanReply:
		call.LibStats = m.Stats
	case *protocol.FetchReply:
		call.DocsFetched = len(m.Docs)
		for _, d := range m.Docs {
			call.DocBytes += len(d.Data)
		}
	}
	return reply, nil
}

// fetchAnswers runs the document-retrieval phase for res.Answers in place.
func (e *exec) fetchAnswers(res *Result, compressed bool) error {
	// Group requested docs by librarian; requests are sent in one block per
	// librarian, per the paper's "documents should be bundled into blocks"
	// finding.
	byLib := make(map[string][]uint32)
	for _, a := range res.Answers {
		byLib[a.Librarian] = append(byLib[a.Librarian], a.LocalDoc)
	}
	names := make([]string, 0, len(byLib))
	for name, docs := range byLib {
		sort.Slice(docs, func(i, j int) bool { return docs[i] < docs[j] })
		byLib[name] = docs
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil
	}
	replies, err := e.callParallel(&res.Trace, PhaseFetch, names, func(name string) protocol.Message {
		return &protocol.FetchDocs{Docs: byLib[name], Compressed: compressed}
	})
	if err != nil {
		return err
	}
	texts := make(map[string]protocol.DocBlob)
	for name, reply := range replies {
		fr, ok := reply.(*protocol.FetchReply)
		if !ok {
			return fmt.Errorf("core: librarian %q answered FetchDocs with %v", name, reply.Type())
		}
		for _, blob := range fr.Docs {
			texts[fmt.Sprintf("%s:%d", name, blob.Doc)] = blob
		}
	}
	for i := range res.Answers {
		a := &res.Answers[i]
		blob, ok := texts[a.Key()]
		if !ok {
			if _, answered := replies[a.Librarian]; !answered {
				// The librarian failed its fetch exchange and the policy
				// allowed a partial result (recorded in Trace.Failures);
				// the answer keeps its rank and score, without text.
				continue
			}
			return fmt.Errorf("core: librarian %q did not return doc %d", a.Librarian, a.LocalDoc)
		}
		a.Title = blob.Title
		if blob.Compressed {
			model := e.fed.modelFor(a.Librarian)
			if model == nil {
				return fmt.Errorf("core: compressed transfer from %q but SetupModels has not run", a.Librarian)
			}
			text, err := model.DecompressDoc(blob.Data)
			if err != nil {
				return fmt.Errorf("core: decompress %s: %w", a.Key(), err)
			}
			a.Text = text
		} else {
			a.Text = string(blob.Data)
		}
	}
	return nil
}
