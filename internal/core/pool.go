package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"time"

	"teraphim/internal/huffman"
	"teraphim/internal/index"
	"teraphim/internal/obs"
	"teraphim/internal/protocol"
	"teraphim/internal/selection"
	"teraphim/internal/simnet"
	"teraphim/internal/textproc"
)

// DefaultMaxConnsPerLibrarian bounds how many connections a Pool keeps per
// librarian when Config.MaxConnsPerLibrarian is zero.
const DefaultMaxConnsPerLibrarian = 4

// ErrPoolClosed is returned by Acquire / Query / Setup* after Close.
var ErrPoolClosed = errors.New("core: pool is closed")

// Pool owns every connection the federation holds to its librarians and
// bounds them at MaxConnsPerLibrarian per replica endpoint. Sessions lease a
// connection per exchange (Acquire/Release); idle connections are reused,
// and a connection whose stream was interrupted mid-message (dirty) is
// discarded rather than returned — the next frame on it would decode
// garbage, so the redial logic from the fault-tolerance layer replaces it
// instead.
//
// When Config.Replicas gives a librarian several endpoints, each lease goes
// through the librarian's router: power-of-two-choices over the healthy
// replicas, with failing endpoints ejected and probed back in. A librarian
// without configured replicas routes every lease to the single endpoint
// named after it — exactly the pre-replication behaviour.
//
// A Pool is safe for concurrent use. Close may race with in-flight queries:
// it closes every connection (waking blocked readers), and subsequent
// leases fail with ErrPoolClosed.
type Pool struct {
	fed    *Federation
	dialer simnet.Dialer
	max    int
	// features is the wire feature set requested in every Hello (already
	// sentinel-masked: zero means the seed protocol, no negotiation bytes).
	features protocol.Features
	// depth bounds concurrent exchanges per pipelined connection.
	depth int
	// batch coalesces concurrent rank-phase queries to the same librarian
	// into BatchQuery frames; nil unless batching is requested.
	batch *batcher

	// routers[name] picks the replica endpoint serving each exchange. The
	// map's keys are immutable after NewPool; the replica sets behind them
	// change via AddReplica/RemoveReplica (atomic copy-on-write installs).
	routers map[string]*router
	// done is closed by Close so blocked Acquires fail fast.
	done chan struct{}

	// metrics is never nil: a pool without a configured registry gets a
	// private one, so instrumentation code needs no nil checks and metrics
	// are available retroactively via Metrics().
	metrics       *Metrics
	slowThreshold time.Duration
	slowLog       io.Writer

	// cache and admission are nil unless configured — both are opt-in
	// overload protection, checked on the query path only.
	cache     *resultCache
	admission *admission

	// idle and leased are keyed by replica endpoint (== librarian name in
	// an unreplicated pool): a parked connection may only be reused for the
	// endpoint it is dialled to.
	mu     sync.Mutex
	closed bool
	idle   map[string][]net.Conn
	leased map[net.Conn]string
}

// NewPool dials nothing eagerly beyond the Hello handshake: it contacts
// every named librarian once to learn document counts, fixes the global
// numbering (concatenation order = the order of names), and returns a Pool
// whose Federation is ready for CN queries. CV/CI/compressed-fetch need the
// corresponding Setup* call first.
func NewPool(dialer simnet.Dialer, names []string, cfg Config) (*Pool, error) {
	if len(names) == 0 {
		return nil, errors.New("core: no librarians")
	}
	analyzer := cfg.Analyzer
	if analyzer == nil {
		analyzer = textproc.NewAnalyzer()
	}
	max := cfg.MaxConnsPerLibrarian
	if max <= 0 {
		max = DefaultMaxConnsPerLibrarian
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	slowLog := cfg.SlowQueryLog
	if slowLog == nil {
		slowLog = os.Stderr
	}
	fed := &Federation{
		analyzer: analyzer,
		byName:   make(map[string]*libMeta, len(names)),
	}
	ejectAfter := cfg.ReplicaEjectAfter
	if ejectAfter <= 0 {
		ejectAfter = DefaultReplicaEjectAfter
	}
	probeAfter := cfg.ReplicaProbeAfter
	if probeAfter <= 0 {
		probeAfter = DefaultReplicaProbeAfter
	}
	features := cfg.WireFeatures
	if features == 0 {
		features = DefaultWireFeatures
	}
	// Wire() strips the FeatureNone sentinel: a caller pinning the seed
	// protocol ends up with zero bits, which encodes as a seed-identical
	// Hello and never upgrades a connection.
	features = features.Wire()
	depth := cfg.PipelineDepth
	if depth <= 0 {
		depth = DefaultPipelineDepth
	}
	p := &Pool{
		fed:           fed,
		dialer:        dialer,
		max:           max,
		features:      features,
		depth:         depth,
		routers:       make(map[string]*router, len(names)),
		done:          make(chan struct{}),
		metrics:       newMetrics(reg),
		slowThreshold: cfg.SlowQueryThreshold,
		slowLog:       slowLog,
		idle:          make(map[string][]net.Conn, len(names)),
		leased:        make(map[net.Conn]string),
	}
	if cfg.Cache != nil {
		p.cache = newResultCache(*cfg.Cache, p.metrics)
	}
	if cfg.Admission != nil {
		adm, err := newAdmission(*cfg.Admission, p.done, p.metrics)
		if err != nil {
			return nil, err
		}
		p.admission = adm
	}
	// endpointOwner enforces that no endpoint serves two librarians: a
	// replica answers for exactly one subcollection, or global numbering
	// (and every merge) breaks.
	endpointOwner := make(map[string]string)
	for i, name := range names {
		if _, dup := fed.byName[name]; dup {
			return nil, fmt.Errorf("core: duplicate librarian %q", name)
		}
		li := &libMeta{name: name, idx: i}
		fed.libs = append(fed.libs, li)
		fed.byName[name] = li
		endpoints := cfg.Replicas[name]
		if len(endpoints) == 0 {
			endpoints = []string{name}
		}
		for _, ep := range endpoints {
			if owner, dup := endpointOwner[ep]; dup {
				return nil, fmt.Errorf("core: endpoint %q serves both %q and %q", ep, owner, name)
			}
			endpointOwner[ep] = name
		}
		// The router PRNG seed is derived from the librarian's position, so
		// replica selection is deterministic given a fixed query schedule —
		// the property tests rely on it, production does not care.
		p.routers[name] = newRouter(name, endpoints, max, depth, ejectAfter, probeAfter, p.metrics, int64(i)+1)
	}
	for name := range cfg.Replicas {
		if _, ok := fed.byName[name]; !ok {
			return nil, fmt.Errorf("core: Replicas names unknown librarian %q", name)
		}
	}

	// Hello exchange: one call per librarian, zero policy (setup is never
	// partial — see DESIGN.md). The libMeta writes below happen before the
	// Pool escapes to any other goroutine.
	if features.Has(protocol.FeatureBatching) {
		p.batch = newBatcher(p)
	}
	e := &exec{ctx: context.Background(), fed: fed, pool: p}
	var trace Trace
	replies, err := e.callParallel(&trace, PhaseSetup, names, func(string) protocol.Message {
		return &protocol.Hello{Features: features}
	})
	if err != nil {
		p.Close()
		return nil, fmt.Errorf("core: connect: %w", err)
	}
	var offset uint32
	for _, li := range fed.libs {
		hello, ok := replies[li.name].(*protocol.HelloReply)
		if !ok {
			p.Close()
			return nil, fmt.Errorf("core: librarian %q answered Hello with %v", li.name, replies[li.name].Type())
		}
		li.hello = hello
		li.numDocs = hello.NumDocs
		li.offset = offset
		offset += hello.NumDocs
	}
	fed.totalDocs = offset
	return p, nil
}

// Federation returns the shared federation state served by this pool.
func (p *Pool) Federation() *Federation { return p.fed }

// Session returns a lightweight query-serving handle over this pool. A
// Session carries no mutable state: creating one is free, and any number
// may be used concurrently.
func (p *Pool) Session() *Session { return &Session{fed: p.fed, pool: p} }

// Query leases a session for a single query — the convenience path for
// callers that don't want to hold a Session.
func (p *Pool) Query(mode Mode, query string, k int, opts Options) (*Result, error) {
	return p.Session().Query(mode, query, k, opts)
}

// QueryContext is Query under a context; see Session.QueryContext.
func (p *Pool) QueryContext(ctx context.Context, mode Mode, query string, k int, opts Options) (*Result, error) {
	return p.Session().QueryContext(ctx, mode, query, k, opts)
}

// Metrics returns the pool's observability surface. It is always non-nil:
// when Config.Metrics was not set the instruments live on a private
// registry reachable through Metrics().Registry().
func (p *Pool) Metrics() *Metrics { return p.metrics }

// Boolean leases a session for a single Boolean query.
func (p *Pool) Boolean(expr string) (*BooleanResult, error) {
	return p.Session().Boolean(expr)
}

// InvalidateCache drops every cached result in O(1). Wire it to
// UpdatableLibrarian.OnUpdate (or call it after any out-of-band collection
// change) so answers computed over the old subcollections are never served
// again; setup exchanges (vocabulary, models, central index) invalidate
// automatically through the federation epoch. A no-op when no cache is
// configured.
func (p *Pool) InvalidateCache() {
	if p.cache != nil {
		p.cache.invalidate()
	}
}

// CacheStats snapshots the result cache's counters. ok is false when no
// cache is configured.
func (p *Pool) CacheStats() (stats CacheStats, ok bool) {
	if p.cache == nil {
		return CacheStats{}, false
	}
	return p.cache.stats(), true
}

// PooledConn is one leased connection to one replica of one librarian. It
// is owned by a single goroutine between Acquire and Release; the pool only
// touches it again at Close (to unblock a stuck read) and at Release.
type PooledConn struct {
	pool  *Pool
	name  string
	rep   *replica
	conn  net.Conn
	dirty bool
}

// Librarian returns the name of the librarian this lease is bound to.
func (pc *PooledConn) Librarian() string { return pc.name }

// Endpoint returns the replica endpoint this lease is bound to (equal to
// Librarian() in an unreplicated pool).
func (pc *PooledConn) Endpoint() string { return pc.rep.endpoint }

// Conn returns the underlying connection. Nil is possible only between a
// failed ensure (dial error) and Release.
func (pc *PooledConn) Conn() net.Conn { return pc.conn }

// MarkDirty records that the stream was interrupted mid-message. The
// connection will be discarded: the next exchange on this lease redials,
// and Release closes it instead of returning it to the idle list.
func (pc *PooledConn) MarkDirty() { pc.dirty = true }

// ensure makes the lease usable: on first use or after MarkDirty it
// discards the old connection and dials a fresh one through the pool's
// dialer. Dial failures leave the lease empty so a later retry can try
// again.
func (pc *PooledConn) ensure() error {
	if pc.conn != nil && !pc.dirty {
		return nil
	}
	p := pc.pool
	if pc.conn != nil {
		p.mu.Lock()
		delete(p.leased, pc.conn)
		p.mu.Unlock()
		_ = pc.conn.Close()
		pc.conn = nil
		pc.dirty = false
		p.metrics.dirtyDiscards.Inc()
	}
	conn, err := p.dialer.Dial(pc.rep.endpoint)
	if err != nil {
		return fmt.Errorf("redial: %w", err)
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		_ = conn.Close()
		return ErrPoolClosed
	}
	p.leased[conn] = pc.rep.endpoint
	p.mu.Unlock()
	pc.conn = conn
	return nil
}

// errNoFreeSlot is the sentinel a try-only lease (a hedge) gets when every
// connection slot of the picked replica is busy. It never surfaces to
// callers: a hedge that cannot get a slot simply does not launch.
var errNoFreeSlot = errors.New("core: no free replica slot")

// leaseReplica routes through the librarian's router to pick a replica,
// takes one of its connection slots and, if one is idle, an existing
// connection — without dialing. The exchange loop dials lazily via ensure
// so that dial failures participate in the retry/backoff policy. The slot
// wait — the queueing delay when all MaxConnsPerLibrarian leases are out —
// is observed into the acquire-wait histogram and aborts if ctx is
// cancelled first. avoid steers the pick away from an endpoint when
// alternatives exist; tryOnly makes the slot take non-blocking (hedges
// never queue behind regular exchanges).
func (p *Pool) leaseReplica(ctx context.Context, name, avoid string, tryOnly bool) (*PooledConn, error) {
	rt, ok := p.routers[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown librarian %q", name)
	}
	rep := rt.pick(avoid)
	if rep == nil {
		return nil, fmt.Errorf("core: librarian %q has no replicas", name)
	}
	if tryOnly {
		select {
		case rep.slots <- struct{}{}:
		default:
			return nil, errNoFreeSlot
		}
	} else {
		start := time.Now()
		select {
		case rep.slots <- struct{}{}:
		case <-p.done:
			return nil, ErrPoolClosed
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		p.metrics.acquireWait.ObserveDuration(time.Since(start))
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		<-rep.slots
		return nil, ErrPoolClosed
	}
	pc := &PooledConn{pool: p, name: name, rep: rep}
	ep := rep.endpoint
	if list := p.idle[ep]; len(list) > 0 {
		pc.conn = list[len(list)-1]
		p.idle[ep] = list[:len(list)-1]
		p.leased[pc.conn] = ep
		p.metrics.connsIdle.Dec()
	}
	p.mu.Unlock()
	rep.inflight.Add(1)
	p.metrics.connsInUse.Inc()
	return pc, nil
}

func (p *Pool) leaseCtx(ctx context.Context, name string) (*PooledConn, error) {
	return p.leaseReplica(ctx, name, "", false)
}

func (p *Pool) lease(name string) (*PooledConn, error) {
	return p.leaseCtx(context.Background(), name)
}

// Acquire leases a ready connection to the named librarian, blocking while
// all MaxConnsPerLibrarian leases are out. The caller must Release it
// (always — even after errors on the connection; mark those leases dirty
// first so the stream is discarded).
func (p *Pool) Acquire(name string) (*PooledConn, error) {
	pc, err := p.lease(name)
	if err != nil {
		return nil, err
	}
	if err := pc.ensure(); err != nil {
		p.Release(pc)
		return nil, err
	}
	return pc, nil
}

// Release returns a lease to the pool: a clean connection goes back on the
// idle list for reuse; a dirty (or post-Close, or removed-replica)
// connection is closed. Release is idempotent per lease only in the sense
// that callers must not release the same PooledConn twice.
func (p *Pool) Release(pc *PooledConn) {
	if pc == nil || pc.pool != p {
		return
	}
	p.mu.Lock()
	if pc.conn != nil {
		delete(p.leased, pc.conn)
		if pc.dirty || p.closed || pc.rep.isRemoved() {
			_ = pc.conn.Close()
			if pc.dirty {
				p.metrics.dirtyDiscards.Inc()
			}
		} else {
			ep := pc.rep.endpoint
			p.idle[ep] = append(p.idle[ep], pc.conn)
			p.metrics.connsIdle.Inc()
		}
		pc.conn = nil
	}
	p.mu.Unlock()
	p.metrics.connsInUse.Dec()
	pc.rep.inflight.Add(-1)
	// Free the slot last, so a waiter that gets it observes the idle list
	// already updated.
	<-pc.rep.slots
}

// Close shuts the pool down. Idle connections are closed immediately;
// leased connections are closed too, which wakes any exchange blocked on a
// read — the owning session observes a transport error and then fails its
// redial with ErrPoolClosed. Close is idempotent and safe to call while
// queries are in flight: no panic, no leaked connections.
func (p *Pool) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	close(p.done)
	var conns []net.Conn
	for _, list := range p.idle {
		conns = append(conns, list...)
	}
	p.idle = make(map[string][]net.Conn)
	for conn := range p.leased {
		conns = append(conns, conn)
	}
	p.mu.Unlock()
	// Pipelined connections first: their fail() settles every pending
	// exchange and does its own gauge accounting, so the idle-gauge reset
	// below only zeroes what the legacy conns still held.
	for _, rt := range p.routers {
		for _, r := range rt.snapshot() {
			r.pipes.closeAll()
		}
	}
	p.metrics.connsIdle.Set(0)
	var first error
	for _, conn := range conns {
		if err := conn.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// AddReplica registers a new endpoint serving the named librarian's
// subcollection. The grown set is installed atomically (copy-on-write) and
// versioned through the federation epoch, like every other piece of shared
// setup state; queries already in flight finish on the replicas they hold,
// new leases see the new set immediately. The endpoint must be dialable
// through the pool's dialer and must serve the same documents as the
// librarian's other replicas — replicas are interchangeable by contract.
// The epoch bump conservatively flushes the result cache (a rare admin
// event; the cached answers were still valid, the flush just costs one
// re-warm).
func (p *Pool) AddReplica(lib, endpoint string) error {
	rt, ok := p.routers[lib]
	if !ok {
		return fmt.Errorf("core: unknown librarian %q", lib)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrPoolClosed
	}
	for name, other := range p.routers {
		for _, r := range other.snapshot() {
			if r.endpoint == endpoint {
				return fmt.Errorf("core: endpoint %q already serves librarian %q", endpoint, name)
			}
		}
	}
	rt.add(newReplica(endpoint, p.max, p.depth))
	p.fed.bumpEpoch()
	return nil
}

// RemoveReplica takes an endpoint out of the named librarian's replica set.
// The shrunk set is installed atomically: new leases never see the removed
// replica again, its idle connections are closed now, and exchanges
// in flight on it complete normally — their replies still count — before
// Release closes their connections instead of parking them. Removing the
// last replica is refused (it would leave the subcollection unreachable;
// kill the pool instead if that is the intent).
func (p *Pool) RemoveReplica(lib, endpoint string) error {
	rt, ok := p.routers[lib]
	if !ok {
		return fmt.Errorf("core: unknown librarian %q", lib)
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrPoolClosed
	}
	if rt.replicaCount() <= 1 {
		p.mu.Unlock()
		return fmt.Errorf("core: cannot remove the last replica of librarian %q", lib)
	}
	removed, ok := rt.remove(endpoint)
	if !ok {
		p.mu.Unlock()
		return fmt.Errorf("core: librarian %q has no replica %q", lib, endpoint)
	}
	conns := p.idle[endpoint]
	delete(p.idle, endpoint)
	for range conns {
		p.metrics.connsIdle.Dec()
	}
	p.fed.bumpEpoch()
	p.mu.Unlock()
	for _, conn := range conns {
		_ = conn.Close()
	}
	// Pipelined connections drain: exchanges in flight complete (their
	// replies still count), idle ones close now, and no new exchange starts.
	removed.pipes.drain()
	return nil
}

// Replicas reports the current replica set of the named librarian: one
// status per endpoint, in the order the set was configured/grown.
func (p *Pool) Replicas(lib string) ([]ReplicaStatus, error) {
	rt, ok := p.routers[lib]
	if !ok {
		return nil, fmt.Errorf("core: unknown librarian %q", lib)
	}
	set := rt.snapshot()
	now := rt.now()
	out := make([]ReplicaStatus, 0, len(set))
	for _, r := range set {
		out = append(out, r.status(now))
	}
	return out, nil
}

// SetupVocabulary fetches every librarian's vocabulary and installs the
// merged global statistics (the CV methodology's central state). The new
// vocabulary becomes visible to queries atomically. Setup runs with the
// zero policy: a partially merged vocabulary would silently change CV
// scores rather than visibly degrade them.
func (p *Pool) SetupVocabulary() (Trace, error) {
	e := &exec{ctx: context.Background(), fed: p.fed, pool: p}
	var trace Trace
	trace.Mode = ModeCV
	names := p.fed.Librarians()
	replies, err := e.callParallel(&trace, PhaseSetup, names, func(string) protocol.Message {
		return &protocol.VocabRequest{}
	})
	if err != nil {
		return trace, err
	}
	vs := &vocabState{
		globalFT: make(map[string]uint32, 1<<12),
		perLib:   make([]map[string]uint32, len(p.fed.libs)),
	}
	for i, li := range p.fed.libs {
		vr, ok := replies[li.name].(*protocol.VocabReply)
		if !ok {
			return trace, fmt.Errorf("core: librarian %q answered VocabRequest with %v", li.name, replies[li.name].Type())
		}
		local := make(map[string]uint32, len(vr.Terms))
		for _, ts := range vr.Terms {
			local[ts.Term] = ts.FT
			vs.globalFT[ts.Term] += ts.FT
		}
		vs.perLib[i] = local
	}
	// Derive the collection-selection index from the same statistics, so the
	// installed state answers both "how do terms weigh globally?" and "which
	// librarians are worth asking?" from one atomic snapshot.
	cols := make([]selection.Collection, len(p.fed.libs))
	for i, li := range p.fed.libs {
		cols[i] = selection.Collection{Name: li.name, Docs: li.numDocs, DF: vs.perLib[i]}
	}
	vs.sel = selection.New(cols)
	p.fed.installVocab(vs)
	return trace, nil
}

// SetupModels fetches each librarian's compressed-text model so fetched
// documents can be shipped compressed and decoded at the receptionist.
func (p *Pool) SetupModels() (Trace, error) {
	e := &exec{ctx: context.Background(), fed: p.fed, pool: p}
	var trace Trace
	names := p.fed.Librarians()
	replies, err := e.callParallel(&trace, PhaseSetup, names, func(string) protocol.Message {
		return &protocol.ModelRequest{}
	})
	if err != nil {
		return trace, err
	}
	ms := make(modelSet, len(p.fed.libs))
	for _, li := range p.fed.libs {
		mr, ok := replies[li.name].(*protocol.ModelReply)
		if !ok {
			return trace, fmt.Errorf("core: librarian %q answered ModelRequest with %v", li.name, replies[li.name].Type())
		}
		model, err := huffman.UnmarshalTextModel(mr.Model)
		if err != nil {
			return trace, fmt.Errorf("core: librarian %q model: %w", li.name, err)
		}
		ms[li.name] = model
	}
	p.fed.installModels(&ms)
	return trace, nil
}

// SetupCentralIndexRemote performs the CI preprocessing entirely over the
// wire: fetch every librarian's inverted index, merge them into a grouped
// central index with groups of groupSize adjacent documents, and install
// it atomically. The returned trace records the (large) one-time transfer
// cost the paper's §4 discusses for the CI receptionist.
func (p *Pool) SetupCentralIndexRemote(groupSize int) (Trace, error) {
	e := &exec{ctx: context.Background(), fed: p.fed, pool: p}
	var trace Trace
	trace.Mode = ModeCI
	names := p.fed.Librarians()
	replies, err := e.callParallel(&trace, PhaseSetup, names, func(string) protocol.Message {
		return &protocol.IndexRequest{}
	})
	if err != nil {
		return trace, err
	}
	subIndexes := make([]*index.Index, len(p.fed.libs))
	offsets := make([]uint32, len(p.fed.libs))
	for i, li := range p.fed.libs {
		ir, ok := replies[li.name].(*protocol.IndexReply)
		if !ok {
			return trace, fmt.Errorf("core: librarian %q answered IndexRequest with %v", li.name, replies[li.name].Type())
		}
		ix, err := index.ReadFrom(bytes.NewReader(ir.Data))
		if err != nil {
			return trace, fmt.Errorf("core: librarian %q index: %w", li.name, err)
		}
		if ix.NumDocs() != li.numDocs {
			return trace, fmt.Errorf("core: librarian %q shipped index of %d docs, expected %d",
				li.name, ix.NumDocs(), li.numDocs)
		}
		subIndexes[i] = ix
		offsets[i] = li.offset
	}
	grouped, err := BuildGroupedFromIndexes(subIndexes, offsets, p.fed.totalDocs, groupSize, p.fed.analyzer)
	if err != nil {
		return trace, err
	}
	if err := p.fed.SetupCentralIndex(grouped); err != nil {
		return trace, err
	}
	return trace, nil
}
