package core

import (
	"context"
	"errors"
	"time"

	"teraphim/internal/protocol"
)

// maxBackoff caps the exponential retry backoff so a large Options.Backoff
// with several retries cannot stall a query for minutes.
const maxBackoff = 5 * time.Second

// callPolicy holds the fault-tolerance knobs of one query. It lives on the
// per-query exec (never on shared state), so concurrent queries with
// different policies cannot interfere; setup exchanges (NewPool,
// SetupVocabulary, ...) run with the zero policy — no retries, no partial
// results — because a partially merged vocabulary or central index would
// silently corrupt CV/CI semantics.
type callPolicy struct {
	timeout       time.Duration
	retries       int
	backoff       time.Duration
	allowPartial  bool
	minLibrarians int
	// hedge is the latency quantile beyond which an exchange races a second
	// replica (Options.HedgeAfter); zero disables hedging. Setup exchanges
	// run with the zero policy and therefore never hedge.
	hedge float64
	// batchWindow is how long a rank-phase exchange may linger at the
	// batcher waiting for same-librarian peers (Options.BatchWindow); zero
	// sends every query in its own frame.
	batchWindow time.Duration
}

func policyFor(opts Options) callPolicy {
	p := callPolicy{
		timeout:       opts.Timeout,
		retries:       opts.Retries,
		backoff:       opts.Backoff,
		allowPartial:  opts.AllowPartial || opts.MinLibrarians > 0,
		minLibrarians: opts.MinLibrarians,
		hedge:         opts.HedgeAfter,
		batchWindow:   opts.BatchWindow,
	}
	// A hedge quantile outside (0,1) is meaningless — treat it as off, the
	// same forgiving normalisation the other knobs get.
	if p.hedge <= 0 || p.hedge >= 1 {
		p.hedge = 0
	}
	if p.retries < 0 {
		p.retries = 0
	}
	// Negative durations are treated like zero, exactly as negative retry
	// counts are. A negative timeout would otherwise set a conn deadline in
	// the past and fail every exchange instantly — counted as librarian
	// failures when the librarians were never even asked.
	if p.timeout < 0 {
		p.timeout = 0
	}
	if p.backoff < 0 {
		p.backoff = 0
	}
	if p.batchWindow < 0 {
		p.batchWindow = 0
	}
	return p
}

// backoffDelay is the capped exponential wait before retry number n (1 for
// the first retry). A zero base retries immediately. The base is clamped to
// the cap before any doubling: a near-MaxInt64 base would otherwise
// overflow d *= 2 to a negative duration — i.e. no wait at all — before the
// cap check ever saw it.
func backoffDelay(base time.Duration, n int) time.Duration {
	if base <= 0 || n < 1 {
		return 0
	}
	if base >= maxBackoff {
		return maxBackoff
	}
	d := base
	for i := 1; i < n; i++ {
		d *= 2
		if d >= maxBackoff {
			return maxBackoff
		}
	}
	return d
}

// sleepCtx waits d unless ctx is cancelled first, reporting whether the
// full wait elapsed. Backoff between retry attempts goes through here so a
// cancelled query stops waiting immediately instead of sleeping out its
// (up to 5s) backoff schedule.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return true
	}
	if ctx.Done() == nil {
		time.Sleep(d)
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// retryableError reports whether a failed exchange is worth redialling and
// re-sending: timeouts, dial failures and transport errors are transient; a
// librarian-reported error is a completed exchange whose answer will not
// change unless the librarian says it might (RemoteError.Retryable).
func retryableError(err error) bool {
	var remote *protocol.RemoteError
	if errors.As(err, &remote) {
		return remote.Retryable
	}
	// A feature-negotiation mismatch is a protocol violation by the peer;
	// re-sending the same Hello would only reproduce it.
	var mismatch *protocol.FeatureMismatchError
	return !errors.As(err, &mismatch)
}

// dirtiesConn reports whether err leaves the stream desynced: anything that
// interrupts a frame mid-message (timeout, short write, closed pipe) does; a
// RemoteError arrived in a complete frame and leaves the stream usable.
func dirtiesConn(err error) bool {
	var remote *protocol.RemoteError
	return !errors.As(err, &remote)
}
