package core

import (
	"errors"
	"fmt"
	"time"

	"teraphim/internal/protocol"
)

// maxBackoff caps the exponential retry backoff so a large Options.Backoff
// with several retries cannot stall a query for minutes.
const maxBackoff = 5 * time.Second

// callPolicy holds the fault-tolerance knobs of the query in flight. The
// Receptionist is single-session (not safe for concurrent use), so a plain
// field suffices; setup exchanges (Connect, SetupVocabulary, ...) run with
// the zero policy — no retries, no partial results — because a partially
// merged vocabulary or central index would silently corrupt CV/CI semantics.
type callPolicy struct {
	timeout       time.Duration
	retries       int
	backoff       time.Duration
	allowPartial  bool
	minLibrarians int
}

func policyFor(opts Options) callPolicy {
	p := callPolicy{
		timeout:       opts.Timeout,
		retries:       opts.Retries,
		backoff:       opts.Backoff,
		allowPartial:  opts.AllowPartial || opts.MinLibrarians > 0,
		minLibrarians: opts.MinLibrarians,
	}
	if p.retries < 0 {
		p.retries = 0
	}
	return p
}

// backoffDelay is the capped exponential wait before retry number n (1 for
// the first retry). A zero base retries immediately.
func backoffDelay(base time.Duration, n int) time.Duration {
	if base <= 0 || n < 1 {
		return 0
	}
	d := base
	for i := 1; i < n; i++ {
		d *= 2
		if d >= maxBackoff {
			return maxBackoff
		}
	}
	if d > maxBackoff {
		d = maxBackoff
	}
	return d
}

// retryableError reports whether a failed exchange is worth redialling and
// re-sending: timeouts, dial failures and transport errors are transient; a
// librarian-reported error is a completed exchange whose answer will not
// change unless the librarian says it might (RemoteError.Retryable).
func retryableError(err error) bool {
	var remote *protocol.RemoteError
	if errors.As(err, &remote) {
		return remote.Retryable
	}
	return true
}

// dirtiesConn reports whether err leaves the stream desynced: anything that
// interrupts a frame mid-message (timeout, short write, closed pipe) does; a
// RemoteError arrived in a complete frame and leaves the stream usable.
func dirtiesConn(err error) bool {
	var remote *protocol.RemoteError
	return !errors.As(err, &remote)
}

// ensureConn gives li a usable connection, redialling through the dialer
// stored at Connect time when the previous exchange left the stream desynced
// (a half-written request or half-read reply must never be reused — the next
// frame would decode garbage MsgTypes).
func (li *libInfo) ensureConn() error {
	if li.conn != nil && !li.dirty {
		return nil
	}
	if li.conn != nil {
		_ = li.conn.Close()
		li.conn = nil
	}
	conn, err := li.dialer.Dial(li.name)
	if err != nil {
		return fmt.Errorf("redial: %w", err)
	}
	li.conn = conn
	li.dirty = false
	return nil
}

// callLibrarian drives one librarian through a request/response exchange
// under the current policy: on a retryable error it marks the connection
// dirty, waits the capped exponential backoff, redials and re-sends, up to
// policy.retries extra attempts. It returns every attempt's Call record plus
// either the reply or the Failure that exhausted the attempts.
func (r *Receptionist) callLibrarian(li *libInfo, phase Phase, req protocol.Message) ([]Call, protocol.Message, *Failure) {
	maxAttempts := r.policy.retries + 1
	var calls []Call
	var lastErr error
	for attempt := 1; attempt <= maxAttempts; attempt++ {
		if attempt > 1 {
			if d := backoffDelay(r.policy.backoff, attempt-1); d > 0 {
				time.Sleep(d)
			}
		}
		if err := li.ensureConn(); err != nil {
			lastErr = err
			continue
		}
		call, reply, err := r.exchange(li, phase, req)
		calls = append(calls, call)
		if err == nil {
			return calls, reply, nil
		}
		lastErr = err
		if dirtiesConn(err) {
			li.dirty = true
		}
		if !retryableError(err) {
			return calls, nil, &Failure{Librarian: li.name, Phase: phase, Attempts: attempt, Err: err}
		}
	}
	return calls, nil, &Failure{Librarian: li.name, Phase: phase, Attempts: maxAttempts, Err: lastErr}
}

// exchange performs one request/response round trip on li's current
// connection, recording traffic and librarian statistics in the Call.
func (r *Receptionist) exchange(li *libInfo, phase Phase, req protocol.Message) (Call, protocol.Message, error) {
	call := Call{Librarian: li.name, Phase: phase, ReqType: req.Type()}
	conn := li.conn
	if r.policy.timeout > 0 {
		// Deadline errors surface from the read/write below; a fresh
		// deadline applies to every attempt.
		_ = conn.SetDeadline(time.Now().Add(r.policy.timeout))
		defer func() { _ = conn.SetDeadline(time.Time{}) }()
	}
	wrote, err := protocol.WriteMessage(conn, req)
	call.ReqBytes = wrote
	if err != nil {
		return call, nil, err
	}
	reply, read, err := protocol.ReadMessage(conn)
	call.RespBytes = read
	if err != nil {
		return call, nil, err
	}
	switch m := reply.(type) {
	case *protocol.ErrorReply:
		return call, nil, &protocol.RemoteError{Message: m.Message}
	case *protocol.RankReply:
		call.LibStats = m.Stats
	case *protocol.BooleanReply:
		call.LibStats = m.Stats
	case *protocol.FetchReply:
		call.DocsFetched = len(m.Docs)
		for _, d := range m.Docs {
			call.DocBytes += len(d.Data)
		}
	}
	return call, reply, nil
}
