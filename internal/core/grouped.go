package core

import (
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"teraphim/internal/index"
	"teraphim/internal/search"
	"teraphim/internal/textproc"
)

// GroupedIndex is the Central Index methodology's space-reduced central
// structure: adjacent documents (in global numbering) are collected into
// groups of size G and each group indexed as if it were a single document
// (Moffat & Zobel, TREC-3). Ranking the grouped index yields candidate
// groups; expanding the k' best groups gives k'·G document ids whose exact
// similarities the owning librarians then compute.
type GroupedIndex struct {
	groupSize uint32
	totalDocs uint32
	engine    *search.Engine
}

// BuildGrouped builds the grouped central index from the analysed term
// lists of every document in global order. groupSize G must be ≥ 1; the
// paper uses G=10.
func BuildGrouped(docTerms [][]string, groupSize int, analyzer *textproc.Analyzer) (*GroupedIndex, error) {
	if groupSize < 1 {
		return nil, fmt.Errorf("core: group size %d must be >= 1", groupSize)
	}
	if len(docTerms) == 0 {
		return nil, fmt.Errorf("core: no documents to group")
	}
	b := index.NewBuilder()
	for lo := 0; lo < len(docTerms); lo += groupSize {
		hi := lo + groupSize
		if hi > len(docTerms) {
			hi = len(docTerms)
		}
		var groupTerms []string
		for _, terms := range docTerms[lo:hi] {
			groupTerms = append(groupTerms, terms...)
		}
		b.Add(groupTerms)
	}
	ix, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("core: build grouped index: %w", err)
	}
	return &GroupedIndex{
		groupSize: uint32(groupSize),
		totalDocs: uint32(len(docTerms)),
		engine:    search.NewEngine(ix, analyzer),
	}, nil
}

// BuildGroupedFromIndexes builds the grouped central index by merging the
// subcollections' own inverted indexes — the paper's actual CI
// preprocessing ("the preprocessing involves merging the subcollection
// vocabularies and indexes"). offsets[i] is the global document number of
// subIndexes[i]'s local document 0; totalDocs the collection size. The
// result is identical to BuildGrouped over the original documents.
func BuildGroupedFromIndexes(subIndexes []*index.Index, offsets []uint32, totalDocs uint32, groupSize int, analyzer *textproc.Analyzer) (*GroupedIndex, error) {
	if groupSize < 1 {
		return nil, fmt.Errorf("core: group size %d must be >= 1", groupSize)
	}
	if len(subIndexes) != len(offsets) {
		return nil, fmt.Errorf("core: %d indexes but %d offsets", len(subIndexes), len(offsets))
	}
	if totalDocs == 0 {
		return nil, fmt.Errorf("core: empty collection")
	}
	g := uint32(groupSize)
	numGroups := (totalDocs + g - 1) / g
	rb := index.NewRawBuilder(numGroups)

	// Accumulate f_{group,term} across subcollections. A term's group
	// postings can straddle subcollection boundaries, so gather per term
	// before emitting.
	acc := make(map[string]map[uint32]uint32, 4096)
	for i, ix := range subIndexes {
		offset := offsets[i]
		var walkErr error
		ix.Terms(func(term string, ft uint32) bool {
			cur, err := ix.Cursor(term)
			if err != nil {
				walkErr = err
				return false
			}
			groups := acc[term]
			if groups == nil {
				groups = make(map[uint32]uint32, ft/g+1)
				acc[term] = groups
			}
			for cur.Next() {
				p := cur.Posting()
				global := offset + p.Doc
				if global >= totalDocs {
					walkErr = fmt.Errorf("core: doc %d of %q exceeds collection size %d", p.Doc, term, totalDocs)
					return false
				}
				groups[global/g] += p.FDT
			}
			return true
		})
		if walkErr != nil {
			return nil, walkErr
		}
	}
	postings := make([]index.Posting, 0, 256)
	for term, groups := range acc {
		postings = postings[:0]
		for grp, fgt := range groups {
			postings = append(postings, index.Posting{Doc: grp, FDT: fgt})
		}
		sort.Slice(postings, func(i, j int) bool { return postings[i].Doc < postings[j].Doc })
		if err := rb.AddPostings(term, postings); err != nil {
			return nil, fmt.Errorf("core: term %q: %w", term, err)
		}
	}
	ix, err := rb.Build()
	if err != nil {
		return nil, fmt.Errorf("core: build grouped index: %w", err)
	}
	return &GroupedIndex{
		groupSize: g,
		totalDocs: totalDocs,
		engine:    search.NewEngine(ix, analyzer),
	}, nil
}

// Grouped-index file format: magic "TPGI" | version u32 | groupSize u32 |
// totalDocs u32 | embedded index (index.WriteTo).
const (
	groupedMagic   = "TPGI"
	groupedVersion = 1
)

// WriteTo persists the grouped index so a CI receptionist can reopen it
// without repeating the merge preprocessing.
func (g *GroupedIndex) WriteTo(w io.Writer) (int64, error) {
	var hdr [16]byte
	copy(hdr[:4], groupedMagic)
	binary.LittleEndian.PutUint32(hdr[4:], groupedVersion)
	binary.LittleEndian.PutUint32(hdr[8:], g.groupSize)
	binary.LittleEndian.PutUint32(hdr[12:], g.totalDocs)
	n, err := w.Write(hdr[:])
	if err != nil {
		return int64(n), err
	}
	m, err := g.engine.Index().WriteTo(w)
	return int64(n) + m, err
}

// ReadGrouped reopens a grouped index written by WriteTo. The analyzer must
// match the one the index was built with.
func ReadGrouped(r io.Reader, analyzer *textproc.Analyzer) (*GroupedIndex, error) {
	var hdr [16]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("core: grouped index header: %w", err)
	}
	if string(hdr[:4]) != groupedMagic {
		return nil, fmt.Errorf("core: bad grouped index magic %q", hdr[:4])
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != groupedVersion {
		return nil, fmt.Errorf("core: unsupported grouped index version %d", v)
	}
	groupSize := binary.LittleEndian.Uint32(hdr[8:])
	totalDocs := binary.LittleEndian.Uint32(hdr[12:])
	if groupSize == 0 || totalDocs == 0 {
		return nil, fmt.Errorf("core: corrupt grouped index header (G=%d, docs=%d)", groupSize, totalDocs)
	}
	ix, err := index.ReadFrom(r)
	if err != nil {
		return nil, fmt.Errorf("core: grouped index body: %w", err)
	}
	wantGroups := (totalDocs + groupSize - 1) / groupSize
	if ix.NumDocs() != wantGroups {
		return nil, fmt.Errorf("core: grouped index has %d groups, header implies %d", ix.NumDocs(), wantGroups)
	}
	return &GroupedIndex{
		groupSize: groupSize,
		totalDocs: totalDocs,
		engine:    search.NewEngine(ix, analyzer),
	}, nil
}

// GroupSize returns G.
func (g *GroupedIndex) GroupSize() uint32 { return g.groupSize }

// NumGroups returns the number of groups indexed.
func (g *GroupedIndex) NumGroups() uint32 { return g.engine.Index().NumDocs() }

// SizeBytes reports the compressed postings size of the grouped index — the
// receptionist-side storage cost the paper compares against the full
// central index.
func (g *GroupedIndex) SizeBytes() uint64 { return g.engine.Index().SizeBytes() }

// RankGroups returns the k' best groups for the query, using the grouped
// index's own statistics, together with the index work performed.
func (g *GroupedIndex) RankGroups(query string, kPrime int) ([]uint32, search.Stats, error) {
	s := search.GetScratch()
	defer s.Release()
	return g.RankGroupsWith(s, query, kPrime)
}

// RankGroupsWith is RankGroups on a caller-owned search.Scratch, letting the
// CI query path reuse one set of kernel accumulators across queries.
func (g *GroupedIndex) RankGroupsWith(s *search.Scratch, query string, kPrime int) ([]uint32, search.Stats, error) {
	return g.RankGroupsEval(s, query, kPrime, search.EvalExact)
}

// RankGroupsEval is RankGroupsWith under an explicit evaluation strategy, so
// CI's central ranking benefits from the same rank-safe dynamic pruning as
// the librarians' rank phase.
func (g *GroupedIndex) RankGroupsEval(s *search.Scratch, query string, kPrime int, eval search.Evaluator) ([]uint32, search.Stats, error) {
	results, stats, err := g.engine.RankWithEval(s, query, kPrime, nil, eval)
	if err != nil {
		return nil, stats, fmt.Errorf("core: rank groups: %w", err)
	}
	groups := make([]uint32, len(results))
	for i, r := range results {
		groups[i] = r.Doc
	}
	return groups, stats, nil
}

// Expand converts group ids into the global document ids they cover,
// clipped to the collection size.
func (g *GroupedIndex) Expand(groups []uint32) []uint32 {
	docs := make([]uint32, 0, len(groups)*int(g.groupSize))
	for _, grp := range groups {
		lo := grp * g.groupSize
		for d := lo; d < lo+g.groupSize && d < g.totalDocs; d++ {
			docs = append(docs, d)
		}
	}
	return docs
}
