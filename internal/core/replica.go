package core

import (
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Defaults for the router's passive health tracking.
const (
	// DefaultReplicaEjectAfter is the number of consecutive exchange
	// failures after which a replica is ejected from routing.
	DefaultReplicaEjectAfter = 3
	// DefaultReplicaProbeAfter is how long an ejected replica sits out
	// before one probe exchange is allowed to test it for readmission.
	DefaultReplicaProbeAfter = 500 * time.Millisecond
)

// hedgeMinSamples gates hedging until the latency tracker has seen enough
// exchanges to estimate a quantile; before that a "p99" would just be the
// max of a handful of warmup calls and hedges would fire at random.
const hedgeMinSamples = 16

// replica is one endpoint serving a subcollection. Several replicas serve
// the same librarian (same documents, by contract); the router spreads
// exchanges across them and routes around the ones that are failing.
type replica struct {
	endpoint string
	// slots is the per-endpoint connection-slot semaphore (capacity
	// MaxConnsPerLibrarian). Hedges take a slot only if one is free right
	// now, which is what keeps them from queue-jumping regular exchanges.
	slots chan struct{}
	// tags is the pipelined-lease semaphore (capacity MaxConnsPerLibrarian ×
	// PipelineDepth): when the endpoint negotiates FeaturePipelining, the
	// lease unit is an exchange tag rather than a whole connection, so the
	// same connection budget carries depth× the concurrency.
	tags chan struct{}
	// wire records the Hello negotiation outcome for this endpoint
	// (wireUnknown until first contact, then wirePipelined or wireLegacy).
	wire atomic.Int32
	// pipes is the set of negotiated tagged connections to this endpoint.
	pipes pipeSet
	// inflight counts leases currently out — the load signal the
	// power-of-two-choices pick compares.
	inflight atomic.Int64

	mu           sync.Mutex
	consecFails  int
	ejectedUntil time.Time // zero while healthy
	probing      bool      // one readmission probe is in flight
	removed      bool      // RemoveReplica was called; never selectable again
}

func newReplica(endpoint string, maxConns, depth int) *replica {
	r := &replica{
		endpoint: endpoint,
		slots:    make(chan struct{}, maxConns),
		tags:     make(chan struct{}, maxConns*depth),
	}
	r.pipes.init()
	return r
}

// selectableAt reports whether the router may route a new exchange here:
// healthy, or ejected but due a readmission probe that nobody has claimed.
func (r *replica) selectableAt(now time.Time) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.removed {
		return false
	}
	if r.ejectedUntil.IsZero() {
		return true
	}
	return !r.probing && !now.Before(r.ejectedUntil)
}

// claimProbe finalises a pick: a healthy replica needs no claim; an ejected
// one whose probe window has opened is claimed for exactly one probing
// exchange (two concurrent picks cannot both probe it). False means the
// replica was snatched or re-ejected between the selectable check and here.
func (r *replica) claimProbe(now time.Time) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.removed {
		return false
	}
	if r.ejectedUntil.IsZero() {
		return true
	}
	if r.probing || now.Before(r.ejectedUntil) {
		return false
	}
	r.probing = true
	return true
}

func (r *replica) isRemoved() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.removed
}

func (r *replica) markRemoved() {
	r.mu.Lock()
	r.removed = true
	r.mu.Unlock()
}

// ReplicaStatus is a point-in-time view of one replica, for inspection via
// Pool.Replicas and the cmd status output.
type ReplicaStatus struct {
	Endpoint string
	// Healthy is false while the replica is ejected from routing.
	Healthy bool
	// InFlight is the number of exchanges currently leased to it.
	InFlight int
	// ConsecutiveFailures is the current failure streak (reset on success).
	ConsecutiveFailures int
}

func (r *replica) status(now time.Time) ReplicaStatus {
	inflight := int(r.inflight.Load())
	r.mu.Lock()
	defer r.mu.Unlock()
	return ReplicaStatus{
		Endpoint:            r.endpoint,
		Healthy:             r.ejectedUntil.IsZero() || !now.Before(r.ejectedUntil),
		InFlight:            inflight,
		ConsecutiveFailures: r.consecFails,
	}
}

// router picks which replica serves each exchange for one librarian:
// power-of-two-choices over the healthy replicas, preferring the lower
// in-flight count, with passive health tracking (consecutive-failure
// ejection, timed probe readmission). The replica set itself is installed
// atomically (copy-on-write behind an atomic pointer, the same discipline
// the federation uses for setup state), so AddReplica/RemoveReplica never
// block the pick path.
type router struct {
	lib        string
	ejectAfter int
	probeAfter time.Duration
	metrics    *Metrics

	// now is the router's clock; tests inject a fake so ejection windows
	// and probe timing need no wall-clock sleeps.
	now func() time.Time

	set atomic.Pointer[[]*replica]

	// rmu guards the PRNG (the only mutable pick-path state besides the
	// replicas themselves) and serialises membership writes.
	rmu sync.Mutex
	rng *rand.Rand

	// latency tracks this librarian's exchange latencies for the hedge
	// delay quantile. Replicas share one tracker: the hedge question is
	// "is this exchange slow for this subcollection", whichever endpoint
	// serves it.
	latency latencyTracker
}

func newRouter(lib string, endpoints []string, maxConns, depth, ejectAfter int, probeAfter time.Duration, m *Metrics, seed int64) *router {
	rt := &router{
		lib:        lib,
		ejectAfter: ejectAfter,
		probeAfter: probeAfter,
		metrics:    m,
		now:        time.Now,
		rng:        rand.New(rand.NewSource(seed)),
	}
	set := make([]*replica, len(endpoints))
	for i, ep := range endpoints {
		set[i] = newReplica(ep, maxConns, depth)
	}
	rt.set.Store(&set)
	return rt
}

func (rt *router) snapshot() []*replica { return *rt.set.Load() }

// replicaCount is the size of the current set, removed replicas excluded.
func (rt *router) replicaCount() int {
	n := 0
	for _, r := range rt.snapshot() {
		if !r.isRemoved() {
			n++
		}
	}
	return n
}

// pick returns the replica to serve the next exchange. avoid names an
// endpoint to route around when alternatives exist — retries avoid the
// endpoint that just failed them, hedges avoid the primary they are racing.
// When every replica is ejected the router fails open and routes to a
// non-removed replica anyway: a wrong guess costs one retry, refusing would
// cost the whole query. Returns nil only when every replica was removed
// (which RemoveReplica refuses to let happen).
func (rt *router) pick(avoid string) *replica {
	for {
		ptr := rt.set.Load()
		if r := rt.pickFrom(*ptr, avoid); r != nil {
			return r
		}
		if rt.set.Load() == ptr {
			// The set really is empty of live replicas (only possible when
			// the pool is being torn down around us).
			return nil
		}
		// The snapshot went stale under membership churn — every replica in
		// it was removed after we loaded it, while the current set moved on.
		// Retry against the fresh set.
	}
}

func (rt *router) pickFrom(set []*replica, avoid string) *replica {
	now := rt.now()
	cands := make([]*replica, 0, len(set))
	for _, r := range set {
		if r.endpoint != avoid && r.selectableAt(now) {
			cands = append(cands, r)
		}
	}
	if len(cands) == 0 && avoid != "" {
		// The avoided endpoint is the only healthy one — use it.
		for _, r := range set {
			if r.endpoint == avoid && r.selectableAt(now) {
				cands = append(cands, r)
			}
		}
	}
	for len(cands) > 0 {
		r := rt.pickP2C(cands)
		if r.claimProbe(now) {
			return r
		}
		// Lost a probe-claim race; drop this replica and re-pick.
		live := cands[:0]
		for _, c := range cands {
			if c != r {
				live = append(live, c)
			}
		}
		cands = live
	}
	// Everything is ejected (or probes are already claimed): fail open.
	for _, r := range set {
		if !r.isRemoved() && r.endpoint != avoid {
			cands = append(cands, r)
		}
	}
	if len(cands) == 0 {
		for _, r := range set {
			if !r.isRemoved() {
				cands = append(cands, r)
			}
		}
	}
	if len(cands) == 0 {
		return nil
	}
	return rt.pickP2C(cands)
}

// pickP2C samples two distinct candidates and returns the one with fewer
// exchanges in flight (ties go to the first sample, which is uniform, so
// equally loaded replicas are picked uniformly).
func (rt *router) pickP2C(cands []*replica) *replica {
	if len(cands) == 1 {
		return cands[0]
	}
	rt.rmu.Lock()
	i := rt.rng.Intn(len(cands))
	j := rt.rng.Intn(len(cands) - 1)
	rt.rmu.Unlock()
	if j >= i {
		j++
	}
	a, b := cands[i], cands[j]
	if b.inflight.Load() < a.inflight.Load() {
		return b
	}
	return a
}

// add appends a replica to the set (copy-on-write atomic install).
func (rt *router) add(r *replica) {
	rt.rmu.Lock()
	old := rt.snapshot()
	set := make([]*replica, len(old), len(old)+1)
	copy(set, old)
	set = append(set, r)
	rt.set.Store(&set)
	rt.rmu.Unlock()
}

// remove drops the replica with the given endpoint from the set and marks
// it removed, so in-flight leases bound to it close their connections on
// release instead of parking them idle. Reports whether it was present.
func (rt *router) remove(endpoint string) (*replica, bool) {
	rt.rmu.Lock()
	defer rt.rmu.Unlock()
	old := rt.snapshot()
	idx := -1
	for i, r := range old {
		if r.endpoint == endpoint {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil, false
	}
	set := make([]*replica, 0, len(old)-1)
	set = append(set, old[:idx]...)
	set = append(set, old[idx+1:]...)
	rt.set.Store(&set)
	old[idx].markRemoved()
	return old[idx], true
}

// reportSuccess records a completed exchange: the replica is healthy (a
// previously ejected one is readmitted) and the exchange latency feeds the
// hedge-delay quantile.
func (rt *router) reportSuccess(r *replica, d time.Duration) {
	r.mu.Lock()
	readmitted := !r.ejectedUntil.IsZero()
	r.consecFails = 0
	r.ejectedUntil = time.Time{}
	r.probing = false
	r.mu.Unlock()
	if readmitted {
		rt.metrics.replicaReadmissions.Inc()
	}
	rt.latency.observe(d)
}

// reportFailure counts a failed exchange against the replica's health:
// ejectAfter consecutive failures eject it until a probe, probeAfter later,
// succeeds. Cancelled exchanges must not come through here — a hedge loser
// or an abandoned query says nothing about the replica's health.
func (rt *router) reportFailure(r *replica) {
	now := rt.now()
	r.mu.Lock()
	r.consecFails++
	wasOut := !r.ejectedUntil.IsZero()
	wasProbe := r.probing
	r.probing = false
	eject := r.consecFails >= rt.ejectAfter
	if eject {
		r.ejectedUntil = now.Add(rt.probeAfter)
	}
	r.mu.Unlock()
	// Count transitions into ejection (first crossing of the threshold, or
	// a failed readmission probe), not every failure while already out.
	if eject && (!wasOut || wasProbe) {
		rt.metrics.replicaEjections.Inc()
	}
}

// hedgeDelay returns the wait before a hedge launches: the q-quantile of
// the librarian's recent exchange latencies, or zero (no hedging yet) until
// hedgeMinSamples exchanges have been observed.
func (rt *router) hedgeDelay(q float64) time.Duration {
	return rt.latency.quantile(q)
}

// Latency-tracker geometry: 64 log-spaced buckets from 50µs growing ×1.3
// cover 50µs to ~20min, so one fixed-size array answers any quantile of any
// realistic exchange latency within ~30% (one bucket's width).
const (
	latBuckets = 64
	latGrowth  = 1.3
)

const latBase = 50 * time.Microsecond

// latencyTracker is a streaming quantile estimator over exchange latencies:
// a fixed array of log-spaced buckets bumped with atomics — no locks, no
// allocation, safe for every exchange goroutine to feed concurrently. A
// quantile is answered by walking the cumulative counts and returning the
// matched bucket's upper bound, so the estimate is conservative (a hedge
// never fires earlier than the true quantile by more than bucket rounding).
type latencyTracker struct {
	count   atomic.Uint64
	buckets [latBuckets]atomic.Uint64
}

func latBucketFor(d time.Duration) int {
	if d <= latBase {
		return 0
	}
	b := int(math.Ceil(math.Log(float64(d)/float64(latBase)) / math.Log(latGrowth)))
	if b < 0 {
		b = 0
	}
	if b >= latBuckets {
		b = latBuckets - 1
	}
	return b
}

func latUpperBound(bucket int) time.Duration {
	return time.Duration(float64(latBase) * math.Pow(latGrowth, float64(bucket)))
}

func (lt *latencyTracker) observe(d time.Duration) {
	lt.buckets[latBucketFor(d)].Add(1)
	lt.count.Add(1)
}

// quantile returns the upper bound of the bucket holding the q-quantile, or
// zero while fewer than hedgeMinSamples observations have been recorded (or
// q is out of (0,1)). Counts are read without a snapshot; the approximation
// error from concurrent writers is at most a few in-flight observations.
func (lt *latencyTracker) quantile(q float64) time.Duration {
	n := lt.count.Load()
	if n < hedgeMinSamples || q <= 0 || q >= 1 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i := 0; i < latBuckets; i++ {
		cum += lt.buckets[i].Load()
		if cum >= rank {
			return latUpperBound(i)
		}
	}
	return latUpperBound(latBuckets - 1)
}
