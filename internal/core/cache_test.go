package core

import (
	"errors"
	"net"
	"sync/atomic"
	"testing"

	"teraphim/internal/librarian"
	"teraphim/internal/obs"
	"teraphim/internal/simnet"
	"teraphim/internal/store"
)

// wireCountingDialer counts every Write crossing toward a librarian — the
// ground truth for "a cache hit does zero librarian round trips": if nothing
// was written, nothing was asked.
type wireCountingDialer struct {
	inner  simnet.Dialer
	writes atomic.Int64
}

func (d *wireCountingDialer) Dial(name string) (net.Conn, error) {
	conn, err := d.inner.Dial(name)
	if err != nil {
		return nil, err
	}
	return &writeCountedConn{Conn: conn, writes: &d.writes}, nil
}

type writeCountedConn struct {
	net.Conn
	writes *atomic.Int64
}

func (c *writeCountedConn) Write(p []byte) (int, error) {
	c.writes.Add(1)
	return c.Conn.Write(p)
}

// cacheFixture is the small-corpus fixture plus a cache-enabled pool over a
// write-counting dialer, with the fixture's MonoServer as the MS reference.
type cacheFixture struct {
	*fixture
	pool *Pool
	wire *wireCountingDialer
}

func newCacheFixture(t testing.TB, cfg Config) *cacheFixture {
	t.Helper()
	corpus, order := smallCorpus(t)
	f := newFixture(t, corpus, order)
	wire := &wireCountingDialer{inner: f.dialer}
	if cfg.Analyzer == nil {
		cfg.Analyzer = testAnalyzer()
	}
	pool, err := NewPool(wire, order, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pool.Close() })
	return &cacheFixture{fixture: f, pool: pool, wire: wire}
}

// sameResult compares two results answer-for-answer with exact score
// equality: a cache hit is a copy of the stored result, so unlike cross-path
// comparisons there is no float tolerance to grant.
func sameResult(got, want []Answer) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range want {
		if got[i].Key() != want[i].Key() || got[i].Score != want[i].Score ||
			got[i].Title != want[i].Title || got[i].Text != want[i].Text {
			return false
		}
	}
	return true
}

// TestCacheHitZeroRoundTrips pins the core contract: the second evaluation
// of a query is served from memory — identical answers, zero librarian
// writes, zero recorded calls — and agrees with the MS reference.
func TestCacheHitZeroRoundTrips(t *testing.T) {
	cf := newCacheFixture(t, Config{Cache: &CacheConfig{}})
	if _, err := cf.pool.SetupVocabulary(); err != nil {
		t.Fatal(err)
	}
	const query = "alpha federal wallstreet"
	miss, err := cf.pool.Query(ModeCV, query, 10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if miss.Trace.CacheHit {
		t.Fatal("first evaluation marked as a cache hit")
	}
	wireBefore := cf.wire.writes.Load()

	hit, err := cf.pool.Query(ModeCV, query, 10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !hit.Trace.CacheHit {
		t.Fatal("repeat query was not served from the cache")
	}
	if got := cf.wire.writes.Load(); got != wireBefore {
		t.Fatalf("cache hit wrote %d messages to librarians, want 0", got-wireBefore)
	}
	if rt := hit.Trace.RoundTrips(0); rt != 0 || len(hit.Trace.Calls) != 0 {
		t.Fatalf("cache hit recorded %d round trips (%d calls), want 0", rt, len(hit.Trace.Calls))
	}
	if hit.Trace.BytesTransferred(0) != 0 {
		t.Fatal("cache hit recorded transferred bytes")
	}
	if !sameResult(hit.Answers, miss.Answers) {
		t.Fatalf("hit answers differ from the original:\n got %v\nwant %v", keysOf(hit.Answers), keysOf(miss.Answers))
	}
	// The cached CV ranking still matches MS — caching changes cost, never
	// content.
	ms, err := cf.mono.Query(query, 10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sameRanking(hit.Answers, ms.Answers) {
		t.Fatal("cached CV ranking diverged from MS")
	}
	stats, ok := cf.pool.CacheStats()
	if !ok {
		t.Fatal("CacheStats reported no cache on a cache-enabled pool")
	}
	if stats.Hits != 1 || stats.Misses != 1 || stats.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 entry", stats)
	}
}

// TestCacheHitsAcrossModes repeats a query under each methodology: every
// mode caches independently and every hit reproduces its own miss exactly.
func TestCacheHitsAcrossModes(t *testing.T) {
	cf := newCacheFixture(t, Config{Cache: &CacheConfig{}})
	if _, err := cf.pool.SetupVocabulary(); err != nil {
		t.Fatal(err)
	}
	grouped, err := BuildGrouped(cf.termsOf, 10, testAnalyzer())
	if err != nil {
		t.Fatal(err)
	}
	if err := cf.pool.Federation().SetupCentralIndex(grouped); err != nil {
		t.Fatal(err)
	}
	const query = "alpha federal wallstreet"
	opts := Options{KPrime: 8}
	for _, mode := range []Mode{ModeCN, ModeCV, ModeCI} {
		miss, err := cf.pool.Query(mode, query, 10, opts)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		hit, err := cf.pool.Query(mode, query, 10, opts)
		if err != nil {
			t.Fatalf("%v repeat: %v", mode, err)
		}
		if miss.Trace.CacheHit || !hit.Trace.CacheHit {
			t.Fatalf("%v: miss/hit flags wrong (%v, %v)", mode, miss.Trace.CacheHit, hit.Trace.CacheHit)
		}
		if hit.Trace.Mode != mode {
			t.Fatalf("%v: hit trace reports mode %v", mode, hit.Trace.Mode)
		}
		if !sameResult(hit.Answers, miss.Answers) {
			t.Fatalf("%v: hit differs from its miss", mode)
		}
	}
}

// TestCacheKeyNormalization: spellings that analyze to the same terms share
// one entry; the CI k' default and the CN merge default are resolved before
// keying, so implicit and explicit spellings of a default also share.
func TestCacheKeyNormalization(t *testing.T) {
	cf := newCacheFixture(t, Config{Cache: &CacheConfig{}})
	if _, err := cf.pool.SetupVocabulary(); err != nil {
		t.Fatal(err)
	}
	if _, err := cf.pool.Query(ModeCV, "alpha federal", 10, Options{}); err != nil {
		t.Fatal(err)
	}
	res, err := cf.pool.Query(ModeCV, "  Alpha,   FEDERAL!  ", 10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Trace.CacheHit {
		t.Fatal("re-spelled query missed: key must use analyzed terms, not raw text")
	}
	// CN: zero Merge means face value; the explicit spelling is the same key.
	if _, err := cf.pool.Query(ModeCN, "alpha federal", 10, Options{}); err != nil {
		t.Fatal(err)
	}
	res, err = cf.pool.Query(ModeCN, "alpha federal", 10, Options{Merge: MergeFaceValue})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Trace.CacheHit {
		t.Fatal("explicit MergeFaceValue missed against the default spelling")
	}
	// Fault-tolerance knobs change cost, not content, so they share the key.
	res, err = cf.pool.Query(ModeCN, "alpha federal", 10, Options{Retries: 3, AllowPartial: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Trace.CacheHit {
		t.Fatal("fault-tolerance options must not partition the cache")
	}
}

// TestCacheKeyDiscriminates: anything that changes the answer — k, mode, CN
// merge strategy — must miss rather than serve the wrong result.
func TestCacheKeyDiscriminates(t *testing.T) {
	cf := newCacheFixture(t, Config{Cache: &CacheConfig{}})
	if _, err := cf.pool.SetupVocabulary(); err != nil {
		t.Fatal(err)
	}
	const query = "alpha federal wallstreet"
	if _, err := cf.pool.Query(ModeCV, query, 5, Options{}); err != nil {
		t.Fatal(err)
	}
	res, err := cf.pool.Query(ModeCV, query, 10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace.CacheHit {
		t.Fatal("different k served the k=5 entry")
	}
	if len(res.Answers) <= 5 {
		t.Fatalf("k=10 answered %d documents", len(res.Answers))
	}
	res, err = cf.pool.Query(ModeCN, query, 5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace.CacheHit {
		t.Fatal("CN served the CV entry")
	}
	res, err = cf.pool.Query(ModeCN, query, 5, Options{Merge: MergeRoundRobin})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace.CacheHit {
		t.Fatal("round-robin merge served the face-value entry")
	}
}

// TestCacheInvalidation: both invalidation paths — an explicit
// InvalidateCache (the librarian-update hook) and a setup re-run (federation
// epoch) — make the next lookup re-evaluate.
func TestCacheInvalidation(t *testing.T) {
	cf := newCacheFixture(t, Config{Cache: &CacheConfig{}})
	if _, err := cf.pool.SetupVocabulary(); err != nil {
		t.Fatal(err)
	}
	const query = "alpha federal"
	warm := func() {
		t.Helper()
		if _, err := cf.pool.Query(ModeCV, query, 10, Options{}); err != nil {
			t.Fatal(err)
		}
		res, err := cf.pool.Query(ModeCV, query, 10, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Trace.CacheHit {
			t.Fatal("warm-up repeat was not a hit")
		}
	}
	warm()

	cf.pool.InvalidateCache()
	res, err := cf.pool.Query(ModeCV, query, 10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace.CacheHit {
		t.Fatal("hit after InvalidateCache: stale answer served")
	}
	stats, _ := cf.pool.CacheStats()
	if stats.Invalidations == 0 {
		t.Fatal("invalidation not counted")
	}

	// A setup re-run bumps the federation epoch: same effect, no explicit
	// call.
	warm()
	if _, err := cf.pool.SetupVocabulary(); err != nil {
		t.Fatal(err)
	}
	res, err = cf.pool.Query(ModeCV, query, 10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace.CacheHit {
		t.Fatal("hit across a vocabulary re-setup: stale answer served")
	}
}

// TestCacheInvalidateOnLibrarianUpdate wires the updatable-librarian path
// end to end: a pool over an UpdatableLibrarian registers InvalidateCache
// via OnUpdate, and a collection swap stops the old answer cold — the repeat
// query re-evaluates and sees the new collection.
func TestCacheInvalidateOnLibrarianUpdate(t *testing.T) {
	a := testAnalyzer()
	up, err := librarian.NewUpdatable("UP", []store.Document{
		{ID: 0, Title: "d0", Text: "alpha alpha original"},
		{ID: 1, Title: "d1", Text: "federal original"},
	}, librarian.BuildOptions{Analyzer: a})
	if err != nil {
		t.Fatal(err)
	}
	dialer := simnet.MapDialer{
		"UP": func() (net.Conn, error) {
			client, server := simnet.Pipe(simnet.LinkConfig{})
			go func() {
				defer server.Close()
				_ = up.ServeConn(server)
			}()
			return client, nil
		},
	}
	pool, err := NewPool(dialer, []string{"UP"}, Config{Analyzer: a, Cache: &CacheConfig{}})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	up.OnUpdate(pool.InvalidateCache)

	first, err := pool.Query(ModeCN, "alpha", 5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Answers) != 1 {
		t.Fatalf("pre-update answers = %d, want 1", len(first.Answers))
	}
	if res, err := pool.Query(ModeCN, "alpha", 5, Options{}); err != nil || !res.Trace.CacheHit {
		t.Fatalf("repeat before update: hit=%v err=%v", res != nil && res.Trace.CacheHit, err)
	}

	err = up.Update([]store.Document{
		{ID: 0, Title: "n0", Text: "alpha replacement one"},
		{ID: 1, Title: "n1", Text: "alpha replacement two"},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := pool.Query(ModeCN, "alpha", 5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace.CacheHit {
		t.Fatal("hit across a collection swap: the cached answer outlived its collection")
	}
	if len(res.Answers) != 2 {
		t.Fatalf("post-update answers = %d, want 2 from the new collection", len(res.Answers))
	}
}

// TestCacheLRUEviction: with MaxEntries 2, a third distinct query evicts the
// least recently used entry.
func TestCacheLRUEviction(t *testing.T) {
	cf := newCacheFixture(t, Config{Cache: &CacheConfig{MaxEntries: 2}})
	if _, err := cf.pool.SetupVocabulary(); err != nil {
		t.Fatal(err)
	}
	queries := []string{"alpha", "federal", "wallstreet"}
	for _, q := range queries {
		if _, err := cf.pool.Query(ModeCV, q, 5, Options{}); err != nil {
			t.Fatal(err)
		}
	}
	stats, _ := cf.pool.CacheStats()
	if stats.Entries != 2 || stats.Evictions != 1 {
		t.Fatalf("stats = %+v, want 2 entries and 1 eviction", stats)
	}
	// "alpha" was the LRU victim; "federal" and "wallstreet" survive.
	res, err := cf.pool.Query(ModeCV, "alpha", 5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace.CacheHit {
		t.Fatal("evicted entry still served")
	}
	res, err = cf.pool.Query(ModeCV, "wallstreet", 5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Trace.CacheHit {
		t.Fatal("recently used entry evicted out of LRU order")
	}
}

// TestCacheByteBound: a byte bound smaller than any single result caches
// nothing — queries still succeed, they just always re-evaluate.
func TestCacheByteBound(t *testing.T) {
	cf := newCacheFixture(t, Config{Cache: &CacheConfig{MaxBytes: 32}})
	if _, err := cf.pool.SetupVocabulary(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		res, err := cf.pool.Query(ModeCV, "alpha federal", 10, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Trace.CacheHit {
			t.Fatal("entry cached past the byte bound")
		}
	}
	stats, _ := cf.pool.CacheStats()
	if stats.Entries != 0 || stats.Bytes != 0 {
		t.Fatalf("stats = %+v, want an empty cache", stats)
	}
}

// TestCacheMutationIsolation is the aliasing regression test: callers that
// mutate a returned Result — answers, trace records, appends — must never
// corrupt what later callers receive.
func TestCacheMutationIsolation(t *testing.T) {
	cf := newCacheFixture(t, Config{Cache: &CacheConfig{}})
	if _, err := cf.pool.SetupVocabulary(); err != nil {
		t.Fatal(err)
	}
	const query = "alpha federal wallstreet"
	first, err := cf.pool.Query(ModeCV, query, 10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]Answer, len(first.Answers))
	copy(want, first.Answers)

	// Vandalize the miss result the way real callers plausibly would:
	// re-score, re-label, append past the end, rewrite trace records.
	for i := range first.Answers {
		first.Answers[i].Score = -1
		first.Answers[i].Librarian = "MUTATED"
	}
	first.Answers = append(first.Answers, Answer{Librarian: "EXTRA"})
	for i := range first.Trace.Calls {
		first.Trace.Calls[i].Librarian = "MUTATED"
	}

	hit, err := cf.pool.Query(ModeCV, query, 10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !hit.Trace.CacheHit {
		t.Fatal("expected a hit")
	}
	if !sameResult(hit.Answers, want) {
		t.Fatalf("mutating the miss result corrupted the cache:\n got %v\nwant %v", keysOf(hit.Answers), keysOf(want))
	}

	// Vandalize the hit too: the next hit must still be pristine.
	for i := range hit.Answers {
		hit.Answers[i].Score = -2
	}
	again, err := cf.pool.Query(ModeCV, query, 10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !again.Trace.CacheHit || !sameResult(again.Answers, want) {
		t.Fatal("mutating a hit corrupted the cache")
	}
}

// TestCacheSkipsDegradedResults: a partial answer is a cost-saving fallback,
// not the truth — it must never be frozen into the cache where it would
// outlive the failure that caused it.
func TestCacheSkipsDegradedResults(t *testing.T) {
	corpus, order := fourLibCorpus()
	a := testAnalyzer()
	libs := map[string]*librarian.Librarian{}
	for _, name := range order {
		lib, err := librarian.Build(name, corpus[name], librarian.BuildOptions{Analyzer: a})
		if err != nil {
			t.Fatal(err)
		}
		libs[name] = lib
	}
	goodDialer := librarian.NewInProcessDialer(
		[]*librarian.Librarian{libs["AP"], libs["FR"], libs["WSJ"]}, simnet.LinkConfig{})
	dialer := simnet.MapDialer{
		"AP":   func() (net.Conn, error) { return goodDialer.Dial("AP") },
		"FR":   func() (net.Conn, error) { return goodDialer.Dial("FR") },
		"WSJ":  func() (net.Conn, error) { return goodDialer.Dial("WSJ") },
		"ZIFF": deadAfterSetup(libs["ZIFF"], 1),
	}
	pool, err := NewPool(dialer, order, Config{Analyzer: a, Cache: &CacheConfig{}})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		pool.Close()
		goodDialer.Wait()
	}()
	res, err := pool.Query(ModeCN, "shared", 10, Options{AllowPartial: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Trace.Degraded {
		t.Fatal("fixture did not produce a degraded result")
	}
	// The repeat must re-evaluate (and stay degraded here, since ZIFF is
	// still down) rather than serve the frozen partial answer as a hit.
	res, err = pool.Query(ModeCN, "shared", 10, Options{AllowPartial: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace.CacheHit {
		t.Fatal("degraded result was cached")
	}
	stats, _ := pool.CacheStats()
	if stats.Entries != 0 {
		t.Fatalf("cache holds %d entries after degraded-only traffic", stats.Entries)
	}
}

// TestCacheStatsWithoutCache: the stats accessors answer ok=false rather
// than inventing zeros on a cache-less pool, and InvalidateCache is a no-op.
func TestCacheStatsWithoutCache(t *testing.T) {
	pf := newPoolFixture(t, 2)
	if _, ok := pf.pool.CacheStats(); ok {
		t.Fatal("CacheStats ok=true without a cache")
	}
	pf.pool.InvalidateCache() // must not panic
}

// unitCache builds a bare resultCache with private metrics, for regression
// tests on accounting paths that end-to-end traffic masks (a stale get on
// the query path is immediately followed by a put that refreshes gauges).
func unitCache(cfg CacheConfig) (*resultCache, *Metrics) {
	m := newMetrics(obs.NewRegistry())
	return newResultCache(cfg, m), m
}

// fakeResult builds a small result for direct put/get exercises.
func fakeResult(n int) *Result {
	res := &Result{}
	for i := 0; i < n; i++ {
		res.Answers = append(res.Answers, Answer{
			Librarian: "A", LocalDoc: uint32(i), GlobalDoc: uint32(i), Score: float64(n - i),
		})
	}
	return res
}

// TestCacheGaugesTrackStaleRemoval is the regression test for the stale-get
// accounting bug: dropping an epoch-stale entry on lookup must move the
// entries/bytes gauges exactly like any other removal, so /metrics and
// CacheStats never disagree about what the cache holds.
func TestCacheGaugesTrackStaleRemoval(t *testing.T) {
	c, m := unitCache(CacheConfig{})
	keyA := cacheKey{mode: ModeCV, query: "alpha", k: 10}
	keyB := cacheKey{mode: ModeCV, query: "beta", k: 10}
	c.put(keyA, 1, fakeResult(3))
	c.put(keyB, 1, fakeResult(2))
	if got := m.cacheEntries.Value(); got != 2 {
		t.Fatalf("entries gauge after 2 puts = %d, want 2", got)
	}

	// Epoch churn: both entries are now stale; each lookup drops one.
	for _, key := range []cacheKey{keyA, keyB} {
		if _, ok := c.get(key, 2); ok {
			t.Fatalf("stale entry %v served as a hit", key)
		}
		stats := c.stats()
		if got := m.cacheEntries.Value(); got != int64(stats.Entries) {
			t.Fatalf("entries gauge = %d, stats = %d: stale removal missed the gauge", got, stats.Entries)
		}
		if got := m.cacheBytes.Value(); got != stats.Bytes {
			t.Fatalf("bytes gauge = %d, stats = %d: stale removal missed the gauge", got, stats.Bytes)
		}
	}
	if got := m.cacheEntries.Value(); got != 0 {
		t.Fatalf("entries gauge after full churn = %d, want 0", got)
	}
	if got := m.cacheBytes.Value(); got != 0 {
		t.Fatalf("bytes gauge after full churn = %d, want 0", got)
	}
}

// TestCacheInvalidationTaxonomy pins the counter semantics: Invalidations
// counts events (one per invalidate call, even on an empty cache), while
// entries dropped for staleness — lazily, on lookup — count as Evictions.
func TestCacheInvalidationTaxonomy(t *testing.T) {
	c, _ := unitCache(CacheConfig{})

	// An invalidation of an empty cache is still exactly one event.
	c.invalidate()
	if s := c.stats(); s.Invalidations != 1 || s.Evictions != 0 {
		t.Fatalf("empty-cache invalidate: invalidations=%d evictions=%d, want 1/0",
			s.Invalidations, s.Evictions)
	}

	// Three entries doomed by one more event: the event counter moves by
	// one, the three lazy removals land in Evictions.
	keys := []cacheKey{
		{mode: ModeCN, query: "a", k: 5},
		{mode: ModeCN, query: "b", k: 5},
		{mode: ModeCN, query: "c", k: 5},
	}
	for _, key := range keys {
		c.put(key, 7, fakeResult(1))
	}
	c.invalidate()
	for _, key := range keys {
		if _, ok := c.get(key, 8); ok {
			t.Fatalf("stale entry %v served as a hit", key)
		}
	}
	s := c.stats()
	if s.Invalidations != 2 {
		t.Fatalf("invalidations = %d, want 2 (one per event, never per entry)", s.Invalidations)
	}
	if s.Evictions != 3 {
		t.Fatalf("evictions = %d, want 3 (one per lazily dropped stale entry)", s.Evictions)
	}
	if s.Misses != 3 {
		t.Fatalf("misses = %d, want 3 (a stale lookup is still a miss)", s.Misses)
	}
}

// TestQueryRejectsUnknownMerge is the end-to-end half of the unknown-merge
// fix: an out-of-range Options.Merge fails the query with the typed error in
// every mode — before any librarian work and before any cache write.
func TestQueryRejectsUnknownMerge(t *testing.T) {
	cf := newCacheFixture(t, Config{Cache: &CacheConfig{}})
	if _, err := cf.pool.SetupVocabulary(); err != nil {
		t.Fatal(err)
	}
	before := cf.wire.writes.Load()
	for _, mode := range []Mode{ModeCN, ModeCV} {
		_, err := cf.pool.Query(mode, "alpha", 5, Options{Merge: MergeStrategy(42)})
		if !errors.Is(err, ErrUnknownMergeStrategy) {
			t.Fatalf("%v query with Merge=42: err = %v, want ErrUnknownMergeStrategy", mode, err)
		}
	}
	if after := cf.wire.writes.Load(); after != before {
		t.Fatalf("rejected queries still wrote %d frames to librarians", after-before)
	}
	if stats, _ := cf.pool.CacheStats(); stats.Entries != 0 || stats.Misses != 0 {
		t.Fatalf("rejected queries touched the cache: %+v", stats)
	}
}
