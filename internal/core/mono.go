package core

import (
	"fmt"

	"teraphim/internal/search"
	"teraphim/internal/store"
)

// MonoServer is the MS baseline: the whole collection in one index on one
// machine, queried directly with no network. It mirrors the Receptionist's
// Query signature so experiments can drive every mode uniformly.
type MonoServer struct {
	engine *search.Engine
	docs   *store.Store
	// keys maps local doc id to the distributed global key
	// ("subcollection:localid") so MS runs are comparable with distributed
	// runs in the evaluation.
	keys []string
}

// NewMonoServer wraps an engine and document store. keys may be nil when
// run-file compatibility with distributed modes is not needed; Answer.Key
// then falls back to "MS:<doc>".
func NewMonoServer(engine *search.Engine, docs *store.Store, keys []string) (*MonoServer, error) {
	if engine == nil {
		return nil, fmt.Errorf("core: engine is required")
	}
	if docs != nil && engine.Index().NumDocs() != docs.NumDocs() {
		return nil, fmt.Errorf("core: index has %d docs, store has %d", engine.Index().NumDocs(), docs.NumDocs())
	}
	if keys != nil && uint32(len(keys)) != engine.Index().NumDocs() {
		return nil, fmt.Errorf("core: %d keys for %d docs", len(keys), engine.Index().NumDocs())
	}
	return &MonoServer{engine: engine, docs: docs, keys: keys}, nil
}

// Engine exposes the underlying search engine.
func (m *MonoServer) Engine() *search.Engine { return m.engine }

// Query evaluates the query locally. The trace contains only central
// statistics (no network calls).
func (m *MonoServer) Query(query string, k int, opts Options) (*Result, error) {
	if !opts.Evaluator.Valid() {
		return nil, fmt.Errorf("%w: %d", search.ErrUnknownEvaluator, uint8(opts.Evaluator))
	}
	ranking, err := m.engine.RankEval(query, k, nil, opts.Evaluator)
	if err != nil {
		return nil, fmt.Errorf("core: mono-server rank: %w", err)
	}
	results := ranking.Results
	res := &Result{}
	res.Trace.Mode = ModeMS
	res.Trace.CentralStats = ranking.Stats
	res.Trace.MergeCandidates = len(results)
	res.Answers = make([]Answer, 0, len(results))
	for _, sr := range results {
		if sr.Score <= 0 {
			continue
		}
		a := Answer{GlobalDoc: sr.Doc, LocalDoc: sr.Doc, Score: sr.Score, Librarian: "MS"}
		if m.keys != nil {
			a.Librarian, a.LocalDoc = splitKey(m.keys[sr.Doc])
		}
		res.Answers = append(res.Answers, a)
	}
	if opts.Fetch && m.docs != nil {
		for i := range res.Answers {
			blob, err := m.docs.FetchCompressed(res.Answers[i].GlobalDoc)
			if err != nil {
				return nil, fmt.Errorf("core: mono-server fetch: %w", err)
			}
			doc, err := m.docs.Fetch(res.Answers[i].GlobalDoc)
			if err != nil {
				return nil, fmt.Errorf("core: mono-server fetch: %w", err)
			}
			res.Answers[i].Title = doc.Title
			res.Answers[i].Text = doc.Text
			res.Trace.LocalDocsFetched++
			res.Trace.LocalDocBytes += len(blob)
		}
	}
	return res, nil
}

// splitKey parses "name:localid"; malformed keys map to ("MS", 0)-style
// fallbacks rather than failing a query.
func splitKey(key string) (string, uint32) {
	for i := len(key) - 1; i >= 0; i-- {
		if key[i] == ':' {
			var local uint32
			if _, err := fmt.Sscanf(key[i+1:], "%d", &local); err != nil {
				return key, 0
			}
			return key[:i], local
		}
	}
	return key, 0
}
