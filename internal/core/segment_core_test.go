package core

import (
	"context"
	"fmt"
	"math"
	"net"
	"sync"
	"testing"

	"teraphim/internal/librarian"
	"teraphim/internal/simnet"
	"teraphim/internal/store"
)

// newSegmentedFleet serves the same corpus as newFixture, but every
// subcollection is an UpdatableLibrarian fed through the streaming Ingest
// API in three chunks (background merging off, so each ends up with three
// live segments). Returns the receptionist plus the updatables for the
// concurrency tests to poke.
func newSegmentedFleet(t testing.TB, corpus map[string][]store.Document, order []string) (*Receptionist, map[string]*librarian.UpdatableLibrarian) {
	t.Helper()
	a := testAnalyzer()
	ctx := context.Background()
	dialer := librarian.NewInProcessDialer(nil, simnet.LinkConfig{})
	ups := make(map[string]*librarian.UpdatableLibrarian, len(order))
	for _, name := range order {
		docs := corpus[name]
		cut1, cut2 := len(docs)/3, 2*len(docs)/3
		up, err := librarian.NewUpdatable(name, docs[:cut1], librarian.BuildOptions{Analyzer: a})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { up.Close() })
		if err := up.ConfigureIngest(librarian.IngestConfig{MergeFanIn: -1}); err != nil {
			t.Fatal(err)
		}
		for _, chunk := range [][]store.Document{docs[cut1:cut2], docs[cut2:]} {
			if err := up.Ingest(ctx, chunk); err != nil {
				t.Fatal(err)
			}
		}
		if err := up.Flush(ctx); err != nil {
			t.Fatal(err)
		}
		if got := len(up.SegmentStats().Segments); got != 3 {
			t.Fatalf("%s: %d segments, want 3", name, got)
		}
		ups[name] = up
		dialer.AddEndpoint(name, up, simnet.LinkConfig{})
	}
	recep, err := Connect(dialer, order, Config{Analyzer: a})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		recep.Close()
		dialer.Wait()
	})
	return recep, ups
}

func assertSameAnswers(t *testing.T, label string, got, want []Answer) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d answers vs %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i].Key() != want[i].Key() {
			t.Fatalf("%s rank %d: %s vs %s", label, i, got[i].Key(), want[i].Key())
		}
		if math.Abs(got[i].Score-want[i].Score) > 1e-9 {
			t.Fatalf("%s rank %d: score %g vs %g", label, i, got[i].Score, want[i].Score)
		}
	}
}

// TestSegmentedFleetParityAcrossModes pins the federation-level golden
// property: a fleet of multi-segment librarians answers CN, CV and CI
// queries identically (doc keys exact, scores to 1e-9) to the same corpus
// served as frozen single-segment librarians.
func TestSegmentedFleetParityAcrossModes(t *testing.T) {
	corpus, order := smallCorpus(t)
	f := newFixture(t, corpus, order)
	if _, err := f.recep.SetupVocabulary(); err != nil {
		t.Fatal(err)
	}
	g, err := BuildGrouped(f.termsOf, 5, testAnalyzer())
	if err != nil {
		t.Fatal(err)
	}
	if err := f.recep.SetupCentralIndex(g); err != nil {
		t.Fatal(err)
	}

	seg, _ := newSegmentedFleet(t, corpus, order)
	if _, err := seg.SetupVocabulary(); err != nil {
		t.Fatal(err)
	}
	if err := seg.SetupCentralIndex(g); err != nil {
		t.Fatal(err)
	}

	kPrime := int(g.NumGroups())
	queries := []string{
		"alpha federal wallstreet",
		"w1 w2 w3",
		"avalanche aurora",
		"widget wholesale w100",
	}
	for _, q := range queries {
		for _, tc := range []struct {
			mode Mode
			opts Options
		}{
			{ModeCN, Options{}},
			{ModeCV, Options{}},
			{ModeCI, Options{KPrime: kPrime}},
		} {
			want, err := f.recep.Query(tc.mode, q, 15, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			got, err := seg.Query(tc.mode, q, 15, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			assertSameAnswers(t, fmt.Sprintf("%v %q", tc.mode, q), got.Answers, want.Answers)
		}
	}
}

// TestSegmentedFleetParityDuringCompaction keeps querying while every
// librarian compacts its segments concurrently. Compaction changes the
// manifest shape, never its contents, so each answer — whichever snapshot
// it was computed from — must still equal the frozen reference exactly.
func TestSegmentedFleetParityDuringCompaction(t *testing.T) {
	corpus, order := smallCorpus(t)
	f := newFixture(t, corpus, order)
	if _, err := f.recep.SetupVocabulary(); err != nil {
		t.Fatal(err)
	}
	seg, ups := newSegmentedFleet(t, corpus, order)
	if _, err := seg.SetupVocabulary(); err != nil {
		t.Fatal(err)
	}

	const q = "alpha federal wallstreet"
	want, err := f.recep.Query(ModeCV, q, 15, Options{})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for _, up := range ups {
		wg.Add(1)
		go func(u *librarian.UpdatableLibrarian) {
			defer wg.Done()
			_ = u.Compact(context.Background())
		}(up)
	}
	for i := 0; i < 30; i++ {
		got, err := seg.Query(ModeCV, q, 15, Options{})
		if err != nil {
			t.Fatal(err)
		}
		assertSameAnswers(t, fmt.Sprintf("during compaction (query %d)", i), got.Answers, want.Answers)
	}
	wg.Wait()

	for name, up := range ups {
		if got := len(up.SegmentStats().Segments); got != 1 {
			t.Fatalf("%s: %d segments after Compact, want 1", name, got)
		}
	}
	got, err := seg.Query(ModeCV, q, 15, Options{})
	if err != nil {
		t.Fatal(err)
	}
	assertSameAnswers(t, "after compaction", got.Answers, want.Answers)
}

// TestCacheInvalidationUnderRapidEpochs streams many one-document batches —
// each publication (and each background merge) bumps the epoch — into a
// cache-enabled pool wired via OnUpdate. However fast the epochs come, a
// query issued after a Flush must never be served a stale cached answer.
func TestCacheInvalidationUnderRapidEpochs(t *testing.T) {
	a := testAnalyzer()
	up, err := librarian.NewUpdatable("UP", []store.Document{
		{ID: 0, Title: "d0", Text: "alpha base one"},
		{ID: 1, Title: "d1", Text: "alpha base two"},
	}, librarian.BuildOptions{Analyzer: a})
	if err != nil {
		t.Fatal(err)
	}
	defer up.Close()
	// Tiny tiers + small fan-in: merges fire constantly between batches.
	if err := up.ConfigureIngest(librarian.IngestConfig{MinSegmentDocs: 1, MergeFanIn: 2}); err != nil {
		t.Fatal(err)
	}
	dialer := simnet.MapDialer{
		"UP": func() (net.Conn, error) {
			client, server := simnet.Pipe(simnet.LinkConfig{})
			go func() {
				defer server.Close()
				_ = up.ServeConn(server)
			}()
			return client, nil
		},
	}
	pool, err := NewPool(dialer, []string{"UP"}, Config{Analyzer: a, Cache: &CacheConfig{}})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	up.OnUpdate(pool.InvalidateCache)

	ctx := context.Background()
	const rounds = 8
	for i := 0; i < rounds; i++ {
		// Prime the cache with the current collection…
		if _, err := pool.Query(ModeCN, "alpha", 50, Options{}); err != nil {
			t.Fatal(err)
		}
		// …then grow it by one doc and demand a fresh answer.
		if err := up.Ingest(ctx, []store.Document{
			{Title: fmt.Sprintf("r%d", i), Text: fmt.Sprintf("alpha ingest round%d", i)},
		}); err != nil {
			t.Fatal(err)
		}
		if err := up.Flush(ctx); err != nil {
			t.Fatal(err)
		}
		res, err := pool.Query(ModeCN, "alpha", 50, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Trace.CacheHit {
			t.Fatalf("round %d: stale cache hit across an ingest publication", i)
		}
		if len(res.Answers) != 2+i+1 {
			t.Fatalf("round %d: %d answers, want %d", i, len(res.Answers), 2+i+1)
		}
	}

	stats, ok := pool.CacheStats()
	if !ok {
		t.Fatal("no cache stats on a cache-enabled pool")
	}
	if stats.Invalidations < rounds {
		t.Fatalf("invalidations = %d, want >= %d (one per published batch)", stats.Invalidations, rounds)
	}

	// Quiesce the pipeline: with no publications in flight, caching works
	// normally again — the repeat is a hit.
	if err := up.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Query(ModeCN, "alpha", 50, Options{}); err != nil {
		t.Fatal(err)
	}
	res, err := pool.Query(ModeCN, "alpha", 50, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Trace.CacheHit {
		t.Fatal("repeat after quiescence was not a cache hit")
	}
	if len(res.Answers) != 2+rounds {
		t.Fatalf("final collection has %d alpha docs, want %d", len(res.Answers), 2+rounds)
	}
}
