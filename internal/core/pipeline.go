package core

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"teraphim/internal/protocol"
)

// Pipelined connections.
//
// The seed pool leases a whole connection per in-flight exchange, so a
// replica's concurrency is capped at MaxConnsPerLibrarian. When both sides
// negotiate FeaturePipelining (via the Hello feature bitmask), frames carry a
// u32 exchange tag and one connection multiplexes up to PipelineDepth
// concurrent exchanges: the lease unit shifts from an exclusive connection to
// an exclusive tag, multiplying per-replica capacity by the pipeline depth
// without opening more sockets. The paper's cost model charges per network
// contact; pipelining keeps contacts (and connections) flat while concurrency
// grows.
//
// Failure semantics mirror the legacy path: any deadline expiry — the
// per-call policy timer or a context deadline — kills the whole connection
// (the peer is presumed stuck; every pending exchange errors out and retries
// redial), while a plain cancellation merely abandons its tag, leaving the
// connection healthy for its neighbours.

// Wire feature constants re-exported so callers configuring a Receptionist
// don't need to import internal/protocol.
const (
	// FeaturePipelining negotiates tagged frames and connection multiplexing.
	FeaturePipelining = protocol.FeaturePipelining
	// FeatureBatching negotiates cross-client query batching (BatchQuery).
	FeatureBatching = protocol.FeatureBatching
	// FeatureNone requests the seed wire protocol: untagged frames, one
	// exchange per connection, no batching. Use it to pin a receptionist to
	// pre-negotiation behaviour.
	FeatureNone = protocol.FeatureNone
)

// DefaultWireFeatures is requested when Config.WireFeatures is zero.
const DefaultWireFeatures = protocol.FeaturePipelining | protocol.FeatureBatching

// DefaultPipelineDepth bounds concurrent exchanges per pipelined connection
// when Config.PipelineDepth is zero.
const DefaultPipelineDepth = 8

// Wire states for replica.wire: what the Hello negotiation told us.
const (
	wireUnknown   int32 = iota // no handshake completed yet
	wirePipelined              // peer granted FeaturePipelining
	wireLegacy                 // peer declined; use the seed exclusive-conn path
)

// errWireLegacy is returned by attemptPiped when the replica is known to
// speak only the seed framing; the caller falls through to the legacy path.
var errWireLegacy = errors.New("core: replica negotiated legacy framing")

// errConnDraining reports a pipelined connection that stopped accepting new
// exchanges because its replica is being removed.
var errConnDraining = errors.New("core: connection draining")

// pipePending is one in-flight exchange on a pipeConn. All fields except done
// are guarded by the owning pipeConn's mu: the write loop stamps them, the
// read loop settles them, and the exchanging goroutine copies them out — any
// of which may race with a timed-out exchanger absent the lock.
type pipePending struct {
	done chan struct{} // closed exactly once when reply/err is set

	start     time.Time // enqueue time; Ship measures from here
	writtenAt time.Time
	ship      time.Duration // queue + serialization time
	wait      time.Duration // write complete -> reply delivered
	wrote     int
	read      int
	reply     protocol.Message
	err       error
	abandoned bool // cancelled before write; the write loop skips it
}

// pipeWrite is one queued frame for a pipeConn's write loop.
type pipeWrite struct {
	tag  uint32
	msg  protocol.Message
	pend *pipePending
}

// pipeConn is one negotiated, tagged connection multiplexing concurrent
// exchanges. A dedicated write loop serializes frames and a dedicated read
// loop demultiplexes replies by tag; replies for unknown tags (abandoned
// exchanges) are discarded without disturbing the framing.
type pipeConn struct {
	pool *Pool
	rep  *replica
	conn net.Conn

	writeCh chan pipeWrite
	dead    chan struct{} // closed by fail(); loops treat it as shutdown

	mu       sync.Mutex
	pending  map[uint32]*pipePending
	nextTag  uint32
	err      error // first failure, set by fail()
	busy     bool  // pending > 0; drives in-use/idle gauge accounting
	draining bool  // no new exchanges; close when pending drains to zero
}

func newPipeConn(p *Pool, rep *replica, conn net.Conn, depth int) *pipeConn {
	pc := &pipeConn{
		pool:    p,
		rep:     rep,
		conn:    conn,
		writeCh: make(chan pipeWrite, depth),
		dead:    make(chan struct{}),
		pending: make(map[uint32]*pipePending),
	}
	p.metrics.connsIdle.Inc()
	go pc.writeLoop()
	go pc.readLoop()
	return pc
}

// syncBusyLocked moves the in-use/idle gauges when the connection crosses the
// 0↔>0 pending boundary: a pipelined connection counts as in-use while any
// exchange is in flight on it, idle otherwise. Caller holds pc.mu. After
// fail() the gauges are settled once and for all — a read-loop iteration that
// raced the failure must not flip them again off the cleared pending map.
func (pc *pipeConn) syncBusyLocked() {
	if pc.err != nil {
		return
	}
	busy := len(pc.pending) > 0
	if busy == pc.busy {
		return
	}
	pc.busy = busy
	m := pc.pool.metrics
	if busy {
		m.connsIdle.Dec()
		m.connsInUse.Inc()
	} else {
		m.connsInUse.Dec()
		m.connsIdle.Inc()
	}
}

// register adds a new pending exchange and returns its tag.
func (pc *pipeConn) register(pend *pipePending) (uint32, error) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if pc.err != nil {
		return 0, pc.err
	}
	if pc.draining {
		return 0, errConnDraining
	}
	pc.nextTag++
	tag := pc.nextTag
	pc.pending[tag] = pend
	pc.syncBusyLocked()
	return tag, nil
}

// forget abandons a tag after a plain cancellation: the exchange's slot is
// released but the connection stays up — a late reply for the tag is
// discarded by the read loop, so the stream never desynchronizes and the
// discard counts nothing against the dirty-connection metric.
func (pc *pipeConn) forget(tag uint32) {
	pc.mu.Lock()
	pend, ok := pc.pending[tag]
	if !ok {
		pc.mu.Unlock()
		return
	}
	pend.abandoned = true
	delete(pc.pending, tag)
	pc.syncBusyLocked()
	drained := pc.draining && len(pc.pending) == 0
	pc.mu.Unlock()
	if drained {
		pc.fail(errConnDraining, false)
	}
}

// fail terminates the connection: every pending exchange is settled with err,
// the socket is closed, and the connection leaves its replica's set. dirty
// marks the teardown as a mid-exchange stream loss for the dirty-discard
// counter. Idempotent; only the first call's error sticks.
func (pc *pipeConn) fail(err error, dirty bool) {
	pc.mu.Lock()
	if pc.err != nil {
		pc.mu.Unlock()
		return
	}
	pc.err = err
	close(pc.dead)
	for _, pend := range pc.pending {
		pend.err = err
		close(pend.done)
	}
	pc.pending = nil
	busy := pc.busy
	pc.mu.Unlock()
	m := pc.pool.metrics
	if busy {
		m.connsInUse.Dec()
	} else {
		m.connsIdle.Dec()
	}
	if dirty {
		m.dirtyDiscards.Inc()
	}
	pc.conn.Close()
	pc.rep.pipes.forget(pc)
}

// closedByPool reports whether the pool has been Closed — teardown noise from
// Close must not count as dirty discards.
func (pc *pipeConn) closedByPool() bool {
	select {
	case <-pc.pool.done:
		return true
	default:
		return false
	}
}

func (pc *pipeConn) writeLoop() {
	wr := &protocol.Writer{W: pc.conn, Tagged: true}
	for {
		select {
		case w := <-pc.writeCh:
			pc.mu.Lock()
			skip := w.pend.abandoned || pc.err != nil
			pc.mu.Unlock()
			if skip {
				continue
			}
			// Stamp before the write hits the wire: the reply races the
			// stamping otherwise, and a zero writtenAt would turn the
			// measured wait into garbage that poisons the hedge-delay
			// quantile. Ship is therefore the queue-to-wire delay and Wait
			// the write plus round trip — together the exchange's true total.
			began := time.Now()
			pc.mu.Lock()
			w.pend.writtenAt = began
			w.pend.ship = began.Sub(w.pend.start)
			pc.mu.Unlock()
			n, err := wr.Write(w.tag, w.msg)
			if err != nil {
				pc.fail(fmt.Errorf("core: pipelined write: %w", err), !pc.closedByPool())
				return
			}
			pc.mu.Lock()
			w.pend.wrote = n
			pc.mu.Unlock()
			pc.pool.metrics.wireBytesOut.Add(uint64(n))
		case <-pc.dead:
			return
		}
	}
}

func (pc *pipeConn) readLoop() {
	rd := &protocol.Reader{R: pc.conn, Tagged: true}
	for {
		msg, tag, n, err := rd.Read()
		if err != nil {
			pc.mu.Lock()
			busy := len(pc.pending) > 0
			pc.mu.Unlock()
			pc.fail(fmt.Errorf("core: pipelined read: %w", err), busy && !pc.closedByPool())
			return
		}
		m := pc.pool.metrics
		m.wireBytesIn.Add(uint64(n))
		m.wireRoundTrips.Inc()
		now := time.Now()
		pc.mu.Lock()
		if pend, ok := pc.pending[tag]; ok {
			delete(pc.pending, tag)
			pend.read = n
			pend.reply = msg
			if pend.writtenAt.IsZero() {
				// Reply landed before the request's write was even queued
				// to the wire (only a misbehaving peer can do this); charge
				// the whole elapsed time as wait.
				pend.wait = now.Sub(pend.start)
			} else {
				pend.wait = now.Sub(pend.writtenAt)
			}
			close(pend.done)
		}
		// Unknown or duplicate tags (late replies for abandoned exchanges)
		// fall through: the frame was fully consumed, framing stays intact.
		pc.syncBusyLocked()
		drained := pc.draining && len(pc.pending) == 0
		pc.mu.Unlock()
		if drained {
			pc.fail(errConnDraining, false)
			return
		}
	}
}

// exchange runs one tagged request/reply on the connection under the caller's
// deadline policy: a policy-timer or context-deadline expiry kills the whole
// connection (legacy parity — the peer is presumed stuck and retries must
// redial), while a plain cancellation abandons only this exchange's tag.
func (pc *pipeConn) exchange(ctx context.Context, timeout time.Duration, name string, phase Phase, req protocol.Message) (Call, protocol.Message, error) {
	call := Call{Librarian: name, Replica: pc.rep.endpoint, Phase: phase, ReqType: req.Type()}
	pend := &pipePending{done: make(chan struct{}), start: time.Now()}
	tag, err := pc.register(pend)
	if err != nil {
		return call, nil, err
	}

	var timer <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		timer = t.C
	}

	select {
	case pc.writeCh <- pipeWrite{tag: tag, msg: req, pend: pend}:
	case <-pc.dead:
		pc.mu.Lock()
		err := pc.err
		pc.mu.Unlock()
		return call, nil, err
	case <-ctx.Done():
		pc.forget(tag)
		return call, nil, ctx.Err()
	case <-timer:
		pc.fail(os.ErrDeadlineExceeded, true)
		return call, nil, os.ErrDeadlineExceeded
	}

	select {
	case <-pend.done:
	case <-ctx.Done():
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			// A deadline expiry means the peer may be wedged mid-reply: kill
			// the connection so its neighbours don't inherit a stuck peer.
			pc.fail(os.ErrDeadlineExceeded, true)
			return call, nil, os.ErrDeadlineExceeded
		}
		pc.forget(tag)
		return call, nil, ctx.Err()
	case <-timer:
		pc.fail(os.ErrDeadlineExceeded, true)
		return call, nil, os.ErrDeadlineExceeded
	}

	pc.mu.Lock()
	reply, rerr := pend.reply, pend.err
	call.ReqBytes, call.RespBytes = pend.wrote, pend.read
	call.Ship, call.Wait = pend.ship, pend.wait
	pc.mu.Unlock()
	if rerr != nil {
		return call, nil, rerr
	}
	reply, err = classifyReply(&call, reply)
	return call, reply, err
}

// pipeSet is a replica's collection of pipelined connections.
type pipeSet struct {
	mu       sync.Mutex
	cond     *sync.Cond // signalled when conns/creating changes
	conns    []*pipeConn
	creating int
	draining bool
}

func (s *pipeSet) init() { s.cond = sync.NewCond(&s.mu) }

// forget removes pc from the set (called by pipeConn.fail).
func (s *pipeSet) forget(pc *pipeConn) {
	s.mu.Lock()
	for i, c := range s.conns {
		if c == pc {
			s.conns = append(s.conns[:i], s.conns[i+1:]...)
			break
		}
	}
	s.cond.Broadcast()
	s.mu.Unlock()
}

// closeAll tears down every connection immediately (pool Close).
func (s *pipeSet) closeAll() {
	s.mu.Lock()
	conns := append([]*pipeConn(nil), s.conns...)
	s.mu.Unlock()
	for _, pc := range conns {
		pc.fail(net.ErrClosed, false)
	}
}

// drain stops new exchanges and lets in-flight ones finish; idle connections
// close immediately (replica removal).
func (s *pipeSet) drain() {
	s.mu.Lock()
	s.draining = true
	conns := append([]*pipeConn(nil), s.conns...)
	s.cond.Broadcast()
	s.mu.Unlock()
	for _, pc := range conns {
		pc.mu.Lock()
		pc.draining = true
		idle := len(pc.pending) == 0 && pc.err == nil
		pc.mu.Unlock()
		if idle {
			pc.fail(errConnDraining, false)
		}
	}
}

// pipeFor returns a pipelined connection for rep: the least-loaded live one
// if it has headroom, a fresh dial while the replica is under its connection
// cap, otherwise the least-loaded one shared beyond its depth — total
// concurrency is already bounded by the caller's tag lease, so sharing at
// overload cannot run away.
func (p *Pool) pipeFor(ctx context.Context, rep *replica, timeout time.Duration) (*pipeConn, error) {
	s := &rep.pipes
	s.mu.Lock()
	for {
		select {
		case <-p.done:
			s.mu.Unlock()
			return nil, ErrPoolClosed
		default:
		}
		if s.draining {
			s.mu.Unlock()
			return nil, errConnDraining
		}
		var best *pipeConn
		bestLoad := 0
		for _, pc := range s.conns {
			pc.mu.Lock()
			dead, load := pc.err != nil, len(pc.pending)
			pc.mu.Unlock()
			if dead {
				continue
			}
			if best == nil || load < bestLoad {
				best, bestLoad = pc, load
			}
		}
		if best != nil && bestLoad < p.depth {
			s.mu.Unlock()
			return best, nil
		}
		if len(s.conns)+s.creating < p.max {
			s.creating++
			s.mu.Unlock()
			pc, _, err := p.dialPipe(ctx, rep, timeout)
			s.mu.Lock()
			s.creating--
			s.cond.Broadcast()
			s.mu.Unlock()
			return pc, err
		}
		if best != nil {
			s.mu.Unlock()
			return best, nil
		}
		// No live connection and the cap is accounted for by dead conns not
		// yet forgotten or dials in flight — both broadcast on completion.
		// The dial handshake carries the exchange deadline, so this wait is
		// bounded by dial completion.
		s.cond.Wait()
	}
}

// pipeHandshake reports what the setup exchange on a freshly negotiated
// connection produced, so a caller whose own request was the Hello can use
// the handshake's reply directly instead of paying a second round trip.
type pipeHandshake struct {
	reply protocol.Message
	wrote int
	read  int
	ship  time.Duration
	wait  time.Duration
}

// dialPipe dials rep, performs the Hello feature negotiation in seed framing,
// and — when the peer grants pipelining — upgrades the connection to tagged
// frames and registers it with the replica. When the peer declines, the
// handshook connection is parked on the legacy idle list, the replica is
// marked wireLegacy, and errWireLegacy tells the caller to fall through to
// the seed exclusive-connection path.
func (p *Pool) dialPipe(ctx context.Context, rep *replica, timeout time.Duration) (*pipeConn, *pipeHandshake, error) {
	conn, err := p.dialer.Dial(rep.endpoint)
	if err != nil {
		return nil, nil, fmt.Errorf("core: dial %s: %w", rep.endpoint, err)
	}

	// The handshake honours the same effective deadline an exchange would:
	// the earlier of the per-call timeout and the context's own deadline,
	// with cancellation snapping the deadline into the past.
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	if d, ok := ctx.Deadline(); ok && (deadline.IsZero() || d.Before(deadline)) {
		deadline = d
	}
	if !deadline.IsZero() {
		_ = conn.SetDeadline(deadline)
	}
	if ctx.Done() != nil {
		snapped := make(chan struct{})
		stop := context.AfterFunc(ctx, func() {
			defer close(snapped)
			_ = conn.SetDeadline(time.Now().Add(-time.Second))
		})
		defer func() {
			if !stop() {
				// The snap ran (or is running) while the handshake completed:
				// wait for it and undo it, or the freshly negotiated
				// connection would start life with a poisoned deadline.
				<-snapped
				_ = conn.SetDeadline(time.Time{})
			}
		}()
	}

	start := time.Now()
	wrote, err := protocol.WriteMessage(conn, &protocol.Hello{Features: p.features})
	if err != nil {
		conn.Close()
		return nil, nil, fmt.Errorf("core: handshake %s: %w", rep.endpoint, err)
	}
	written := time.Now()
	p.metrics.wireBytesOut.Add(uint64(wrote))
	reply, read, err := protocol.ReadMessage(conn)
	if err != nil {
		conn.Close()
		return nil, nil, fmt.Errorf("core: handshake %s: %w", rep.endpoint, err)
	}
	_ = conn.SetDeadline(time.Time{})
	p.metrics.wireBytesIn.Add(uint64(read))
	p.metrics.wireRoundTrips.Inc()
	hr, ok := reply.(*protocol.HelloReply)
	if !ok {
		conn.Close()
		return nil, nil, fmt.Errorf("core: handshake %s: unexpected %v reply", rep.endpoint, reply.Type())
	}
	if extra := hr.Features &^ p.features; extra != 0 {
		conn.Close()
		return nil, nil, &protocol.FeatureMismatchError{Requested: p.features, Granted: hr.Features}
	}
	hs := &pipeHandshake{
		reply: reply,
		wrote: wrote,
		read:  read,
		ship:  written.Sub(start),
		wait:  time.Since(written),
	}

	if !hr.Features.Has(protocol.FeaturePipelining) {
		// Peer speaks the seed framing. Park the handshook connection for
		// the legacy lease path and remember the negotiation outcome.
		rep.wire.Store(wireLegacy)
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			conn.Close()
			return nil, hs, ErrPoolClosed
		}
		p.idle[rep.endpoint] = append(p.idle[rep.endpoint], conn)
		p.metrics.connsIdle.Inc()
		p.mu.Unlock()
		return nil, hs, errWireLegacy
	}

	rep.wire.Store(wirePipelined)
	pc := newPipeConn(p, rep, conn, p.depth)
	s := &rep.pipes
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		pc.fail(errConnDraining, false)
		return nil, hs, errConnDraining
	}
	s.conns = append(s.conns, pc)
	s.cond.Broadcast()
	s.mu.Unlock()
	return pc, hs, nil
}

// hsCall converts a handshake's measurements into the Call record for a
// setup Hello that was answered by the handshake itself.
func hsCall(name, endpoint string, phase Phase, req protocol.Message, hs *pipeHandshake) Call {
	return Call{
		Librarian: name, Replica: endpoint, Phase: phase, ReqType: req.Type(),
		ReqBytes: hs.wrote, RespBytes: hs.read, Ship: hs.ship, Wait: hs.wait,
	}
}

// attemptPiped is attempt() over the pipelined path: lease a tag instead of
// a connection, multiplex the exchange onto one of the replica's negotiated
// connections, and report health identically. It returns errWireLegacy when
// the replica speaks (or turns out to speak) only the seed framing, in which
// case attempt falls through to the legacy exclusive-connection path.
func (e *exec) attemptPiped(ctx context.Context, name string, phase Phase, req protocol.Message, avoid string, tryOnly bool, onLease func(endpoint string)) ([]Call, protocol.Message, string, error) {
	p := e.pool
	rt, ok := p.routers[name]
	if !ok {
		return nil, nil, "", fmt.Errorf("core: unknown librarian %q", name)
	}
	rep := rt.pick(avoid)
	if rep == nil {
		return nil, nil, "", fmt.Errorf("core: librarian %q has no replicas", name)
	}
	if rep.wire.Load() == wireLegacy {
		return nil, nil, "", errWireLegacy
	}
	endpoint := rep.endpoint

	// Lease a tag — the pipelined unit of concurrency. Capacity is
	// MaxConnsPerLibrarian × PipelineDepth, the capacity multiplication
	// this path exists for.
	if tryOnly {
		select {
		case rep.tags <- struct{}{}:
		default:
			return nil, nil, "", errNoFreeSlot
		}
	} else {
		waitStart := time.Now()
		select {
		case rep.tags <- struct{}{}:
		case <-p.done:
			return nil, nil, "", ErrPoolClosed
		case <-ctx.Done():
			return nil, nil, "", ctx.Err()
		}
		p.metrics.acquireWait.ObserveDuration(time.Since(waitStart))
	}
	defer func() { <-rep.tags }()
	rep.inflight.Add(1)
	defer rep.inflight.Add(-1)
	if onLease != nil {
		onLease(endpoint)
	}

	var pc *pipeConn
	var hs *pipeHandshake
	var err error
	if rep.wire.Load() == wirePipelined {
		pc, err = p.pipeFor(ctx, rep, e.policy.timeout)
	} else {
		// First contact: dial and negotiate. The handshake Hello doubles as
		// the exchange when the caller's own request is a Hello, so setup
		// costs one round trip per connection, exactly like the seed.
		pc, hs, err = p.dialPipe(ctx, rep, e.policy.timeout)
	}
	if errors.Is(err, errWireLegacy) {
		if _, isHello := req.(*protocol.Hello); isHello && hs != nil {
			call := hsCall(name, endpoint, phase, req, hs)
			rt.reportSuccess(rep, call.Ship+call.Wait)
			return []Call{call}, hs.reply, endpoint, nil
		}
		return nil, nil, endpoint, errWireLegacy
	}
	if err != nil {
		// A drain is administrative (the replica was just removed), not a
		// health signal.
		if ctx.Err() == nil && !errors.Is(err, ErrPoolClosed) && !errors.Is(err, errConnDraining) {
			rt.reportFailure(rep)
		}
		return nil, nil, endpoint, err
	}
	if hs != nil {
		if _, isHello := req.(*protocol.Hello); isHello {
			call := hsCall(name, endpoint, phase, req, hs)
			rt.reportSuccess(rep, call.Ship+call.Wait)
			return []Call{call}, hs.reply, endpoint, nil
		}
	}

	call, reply, err := pc.exchange(ctx, e.policy.timeout, name, phase, req)
	if err != nil {
		var remote *protocol.RemoteError
		if errors.As(err, &remote) {
			// The peer answered; the transport is healthy and its latency is
			// a real observation.
			rt.reportSuccess(rep, call.Ship+call.Wait)
		} else if ctx.Err() == nil && !errors.Is(err, ErrPoolClosed) && !errors.Is(err, errConnDraining) {
			rt.reportFailure(rep)
		}
		return []Call{call}, nil, endpoint, err
	}
	rt.reportSuccess(rep, call.Ship+call.Wait)
	return []Call{call}, reply, endpoint, nil
}
