package core

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"teraphim/internal/obs"
)

// ErrOverloaded is returned by the query path when admission control sheds a
// request: the in-flight limit is reached and the request cannot wait — the
// queue is full, the configured queue wait elapsed, or the request's own
// context deadline expired (or cannot be met) while it was still queued.
// Test with errors.Is; a shed request consumed no librarian resources and is
// safe to retry elsewhere or later.
var ErrOverloaded = errors.New("core: overloaded")

// AdmissionConfig bounds concurrent query evaluation at the receptionist —
// the broker-side overload protection of the paper's "multiple users at
// capacity" regime. Instead of letting every arrival pile onto the
// connection pool until deadlines blow collectively, at most MaxInFlight
// queries run at once, at most MaxQueue wait for a slot, and the rest shed
// immediately with ErrOverloaded while admitted queries keep their latency.
type AdmissionConfig struct {
	// MaxInFlight is the number of queries evaluated concurrently; it must
	// be positive.
	MaxInFlight int
	// MaxQueue bounds how many queries may wait for an in-flight slot.
	// Zero queues nothing: the limit full means shed now.
	MaxQueue int
	// MaxWait caps how long a queued query waits before being shed. Zero
	// waits until the query's own context deadline (or forever without
	// one). A queued query additionally sheds as soon as its context
	// deadline passes — a request whose deadline cannot be met must not
	// consume a slot just to time out inside.
	MaxWait time.Duration
}

// admission is the in-flight limiter of one pool. The semaphore channel
// holds the in-flight slots; the queue is accounted with a CAS-bounded
// counter so a full queue sheds without ever blocking.
type admission struct {
	sem      chan struct{}
	maxQueue int64
	maxWait  time.Duration
	done     <-chan struct{} // pool's done channel; Close unblocks waiters

	// queued is the strict queue bound (CAS-incremented so concurrent
	// arrivals cannot overshoot); the gauge mirrors it for /metrics.
	queued atomic.Int64

	inFlight   *obs.Gauge
	queueDepth *obs.Gauge
	shed       *obs.Counter
	waitHist   *obs.Histogram
}

func newAdmission(cfg AdmissionConfig, done <-chan struct{}, m *Metrics) (*admission, error) {
	if cfg.MaxInFlight <= 0 {
		return nil, fmt.Errorf("core: admission MaxInFlight must be positive, got %d", cfg.MaxInFlight)
	}
	maxQueue := cfg.MaxQueue
	if maxQueue < 0 {
		maxQueue = 0
	}
	maxWait := cfg.MaxWait
	if maxWait < 0 {
		maxWait = 0
	}
	return &admission{
		sem:        make(chan struct{}, cfg.MaxInFlight),
		maxQueue:   int64(maxQueue),
		maxWait:    maxWait,
		done:       done,
		inFlight:   m.admissionInFlight,
		queueDepth: m.admissionQueueDepth,
		shed:       m.admissionShed,
		waitHist:   m.admissionWait,
	}, nil
}

// acquire admits one query or sheds it. On success the caller owns an
// in-flight slot and must release() it when the query completes (however it
// completes).
func (a *admission) acquire(ctx context.Context) error {
	select {
	case a.sem <- struct{}{}:
		a.inFlight.Inc()
		return nil
	default:
	}
	// All slots are taken: join the bounded queue, or shed. The CAS loop
	// makes the bound strict under concurrent arrivals.
	for {
		n := a.queued.Load()
		if n >= a.maxQueue {
			a.shed.Inc()
			return fmt.Errorf("%w: %d in flight and %d queued", ErrOverloaded, cap(a.sem), n)
		}
		if a.queued.CompareAndSwap(n, n+1) {
			break
		}
	}
	a.queueDepth.Inc()
	defer func() {
		a.queued.Add(-1)
		a.queueDepth.Dec()
	}()

	// The wait budget is the smaller of MaxWait and the time left until the
	// request's own deadline: waiting longer than either can only convert a
	// fast shed into a slow failure.
	wait := a.maxWait
	if deadline, ok := ctx.Deadline(); ok {
		until := time.Until(deadline)
		if until <= 0 {
			a.shed.Inc()
			return fmt.Errorf("%w: deadline already passed while queued: %w", ErrOverloaded, context.DeadlineExceeded)
		}
		if wait == 0 || until < wait {
			wait = until
		}
	}
	var timeout <-chan time.Time
	if wait > 0 {
		t := time.NewTimer(wait)
		defer t.Stop()
		timeout = t.C
	}
	start := time.Now()
	select {
	case a.sem <- struct{}{}:
		a.waitHist.ObserveDuration(time.Since(start))
		a.inFlight.Inc()
		return nil
	case <-timeout:
		a.shed.Inc()
		return fmt.Errorf("%w: queued %s without an in-flight slot", ErrOverloaded, time.Since(start).Round(time.Millisecond))
	case <-ctx.Done():
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			// The deadline expired while queued: this is load shedding (the
			// system could not serve in time), not a caller decision.
			a.shed.Inc()
			return fmt.Errorf("%w: deadline expired while queued: %w", ErrOverloaded, ctx.Err())
		}
		return ctx.Err()
	case <-a.done:
		return ErrPoolClosed
	}
}

// release frees the slot taken by a successful acquire.
func (a *admission) release() {
	<-a.sem
	a.inFlight.Dec()
}
