package core

import (
	"fmt"
	"sort"

	"teraphim/internal/protocol"
)

// BooleanResult is the outcome of a distributed Boolean query: the union of
// the per-librarian result sets (§1 of the paper — no global information or
// score merging is required).
type BooleanResult struct {
	// Answers holds matching documents in global-document order, without
	// scores or text (use Query/Fetch for ranked retrieval with documents).
	Answers []Answer
	Trace   Trace
}

// boolean evaluates expr at every librarian and unions the result sets.
func (e *exec) boolean(expr string) (*BooleanResult, error) {
	res := &BooleanResult{}
	res.Trace.Mode = ModeCN // Boolean evaluation is inherently central-nothing
	res.Trace.LibrariansAsked = len(e.fed.libs)
	replies, err := e.callParallel(&res.Trace, PhaseRank, e.fed.Librarians(), func(string) protocol.Message {
		return &protocol.BooleanQuery{Expr: expr}
	})
	if err != nil {
		return nil, err
	}
	for name, reply := range replies {
		br, ok := reply.(*protocol.BooleanReply)
		if !ok {
			return nil, fmt.Errorf("core: librarian %q answered BooleanQuery with %v", name, reply.Type())
		}
		li := e.fed.byName[name]
		for _, d := range br.Docs {
			res.Answers = append(res.Answers, Answer{
				Librarian: name,
				LocalDoc:  d,
				GlobalDoc: li.offset + d,
			})
		}
	}
	sort.Slice(res.Answers, func(i, j int) bool {
		return res.Answers[i].GlobalDoc < res.Answers[j].GlobalDoc
	})
	res.Trace.MergeCandidates = len(res.Answers)
	return res, nil
}
