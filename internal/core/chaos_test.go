package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"teraphim/internal/librarian"
	"teraphim/internal/simnet"
)

// The chaos wall: every test here kills, revives or removes replicas while
// queries are in flight, and asserts the fleet absorbs it — zero degraded
// results, zero query errors, no leaked pooled connections. All scenarios
// are deterministic in outcome (kill points are guarded by completion
// counters, not wall-clock sleeps) and run clean under -race.

// runChaosStress drives nworkers concurrent query loops of perWorker
// queries each, invoking disrupt exactly once after half the total queries
// have completed. It fails the test on any query error or degraded result.
func runChaosStress(t *testing.T, f *replicaFixture, mode Mode, opts Options, nworkers, perWorker int, disrupt func()) {
	t.Helper()
	queries := []string{"alpha", "federal finance", "wallstreet widget", "alpha aurora", "fiscal wholesale"}
	var done atomic.Int64
	var disruptOnce sync.Once
	threshold := int64(nworkers*perWorker) / 2
	var wg sync.WaitGroup
	errc := make(chan error, nworkers)
	for w := 0; w < nworkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				q := queries[(w+i)%len(queries)]
				res, err := f.pool.Query(mode, q, 10, opts)
				if err != nil {
					errc <- fmt.Errorf("worker %d query %d (%s %q): %w", w, i, mode, q, err)
					return
				}
				if res.Trace.Degraded {
					errc <- fmt.Errorf("worker %d query %d (%s %q): degraded result with a live sibling replica", w, i, mode, q)
					return
				}
				if done.Add(1) == threshold {
					disruptOnce.Do(disrupt)
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}
}

// Killing one replica of every librarian mid-stress must be invisible to
// callers in every mode: in-flight exchanges on the severed connections
// retry on the surviving sibling, the router ejects the dead endpoint, and
// no query errors, degrades, or leaks a connection.
func TestChaosKillReplicaMidStress(t *testing.T) {
	for _, mode := range []Mode{ModeCN, ModeCV, ModeCI} {
		t.Run(mode.String(), func(t *testing.T) {
			corpus, order := smallCorpus(t)
			f := newReplicaFixture(t, corpus, order, 2, Config{})
			if _, err := f.pool.SetupVocabulary(); err != nil {
				t.Fatal(err)
			}
			if mode == ModeCI {
				if _, err := f.pool.SetupCentralIndexRemote(10); err != nil {
					t.Fatal(err)
				}
			}
			opts := Options{Retries: 2, Backoff: time.Millisecond}
			runChaosStress(t, f, mode, opts, 8, 25, func() {
				for _, name := range f.order {
					f.chaos.Kill(name + "#1")
				}
			})
			assertNoLeakedConns(t, f.pool)
			// The survivors carried the second half of the stress alone.
			for _, name := range f.order {
				status, err := f.pool.Replicas(name)
				if err != nil {
					t.Fatal(err)
				}
				for _, s := range status {
					if s.InFlight != 0 {
						t.Fatalf("replica %q reports %d in flight after drain", s.Endpoint, s.InFlight)
					}
				}
			}
		})
	}
}

// Killing a replica mid-stress with hedging enabled: hedges racing onto the
// dead endpoint fail, their primaries still answer, and nothing degrades.
func TestChaosKillReplicaMidStressHedged(t *testing.T) {
	corpus, order := smallCorpus(t)
	f := newReplicaFixture(t, corpus, order, 2, Config{})
	// Warm latency trackers so hedging is armed before the kill.
	for i := 0; i < 10; i++ {
		if _, err := f.pool.Query(ModeCN, "alpha federal wallstreet", 5, Options{}); err != nil {
			t.Fatal(err)
		}
	}
	opts := Options{Retries: 2, Backoff: time.Millisecond, HedgeAfter: 0.5}
	runChaosStress(t, f, ModeCN, opts, 8, 25, func() {
		for _, name := range f.order {
			f.chaos.Kill(name + "#0")
		}
	})
	assertNoLeakedConns(t, f.pool)
}

// A replica killed and revived must come back: the router ejects it on
// consecutive failures, probes it after the window, and readmits it once a
// probe exchange succeeds — traffic returns without operator action.
func TestChaosKillReviveReadmits(t *testing.T) {
	corpus, order := smallCorpus(t)
	f := newReplicaFixture(t, corpus, order, 2, Config{ReplicaProbeAfter: 10 * time.Millisecond})
	victim := order[0] + "#1"
	// Eject: kill the endpoint, then drive enough traffic that AP's router
	// sees ReplicaEjectAfter consecutive failures (retries keep the queries
	// themselves green).
	f.chaos.Kill(victim)
	opts := Options{Retries: 2, Backoff: time.Millisecond}
	for i := 0; i < 30; i++ {
		if _, err := f.pool.Query(ModeCN, "alpha", 5, opts); err != nil {
			t.Fatal(err)
		}
	}
	if v := f.pool.Metrics().replicaEjections.Value(); v == 0 {
		t.Fatal("killed replica was never ejected")
	}
	// Revive and wait out the probe window; the next probes readmit it.
	f.chaos.Revive(victim)
	deadline := time.Now().Add(2 * time.Second)
	served := false
	for !served && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
		for i := 0; i < 20 && !served; i++ {
			res, err := f.pool.Query(ModeCN, "alpha", 5, opts)
			if err != nil {
				t.Fatal(err)
			}
			for _, c := range res.Trace.Calls {
				if c.Replica == victim {
					served = true
				}
			}
		}
	}
	if !served {
		t.Fatal("revived replica never served traffic again")
	}
	if v := f.pool.Metrics().replicaReadmissions.Value(); v == 0 {
		t.Fatal("readmission metric never incremented")
	}
	assertNoLeakedConns(t, f.pool)
}

// RemoveReplica racing in-flight queries: exchanges on the removed replica
// complete, their connections are closed (not parked) at release, and the
// shrink/grow churn never errors a query. Clean under -race.
func TestChaosRemoveReplicaVsInFlight(t *testing.T) {
	corpus, order := smallCorpus(t)
	f := newReplicaFixture(t, corpus, order, 2, Config{})
	lib, err := librarian.Build("AP", corpus["AP"], librarian.BuildOptions{Analyzer: testAnalyzer()})
	if err != nil {
		t.Fatal(err)
	}
	f.dialer.AddEndpoint("AP#2", lib, simnet.LinkConfig{})
	if err := f.pool.AddReplica("AP", "AP#2"); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var churnErr error
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			// Alternate which endpoint sits out, so removal always races
			// live traffic on the endpoint being removed.
			out := fmt.Sprintf("AP#%d", i%3)
			if err := f.pool.RemoveReplica("AP", out); err != nil {
				churnErr = fmt.Errorf("remove %s: %w", out, err)
				return
			}
			if err := f.pool.AddReplica("AP", out); err != nil {
				churnErr = fmt.Errorf("add back %s: %w", out, err)
				return
			}
		}
	}()

	runChaosStress(t, f, ModeCN, Options{Retries: 2, Backoff: time.Millisecond}, 8, 25, func() {})
	close(stop)
	churn.Wait()
	if churnErr != nil {
		t.Fatal(churnErr)
	}
	assertNoLeakedConns(t, f.pool)
	status, err := f.pool.Replicas("AP")
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range status {
		if s.InFlight != 0 {
			t.Fatalf("replica %q reports %d in flight after drain", s.Endpoint, s.InFlight)
		}
	}
}

// Killing every replica of a librarian is a real outage: with AllowPartial
// the query degrades instead of failing, and reviving brings full answers
// back. (This is the boundary of what replication can absorb.)
func TestChaosTotalOutageDegradesWithPartial(t *testing.T) {
	corpus, order := smallCorpus(t)
	f := newReplicaFixture(t, corpus, order, 2, Config{})
	f.chaos.Kill("AP#0")
	f.chaos.Kill("AP#1")
	opts := Options{Retries: 1, Backoff: time.Millisecond, AllowPartial: true}
	res, err := f.pool.Query(ModeCN, "alpha federal", 10, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Trace.Degraded {
		t.Fatal("total outage of one librarian should degrade the query")
	}
	if len(res.Trace.Failures) == 0 {
		t.Fatal("total outage should be recorded in Trace.Failures")
	}
	f.chaos.Revive("AP#0")
	f.chaos.Revive("AP#1")
	// Ejection may have benched both endpoints; fail-open routing plus
	// retries must recover without waiting for probe windows.
	res, err = f.pool.Query(ModeCN, "alpha federal", 10, Options{Retries: 3, Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace.Degraded {
		t.Fatal("query still degraded after both replicas revived")
	}
	assertNoLeakedConns(t, f.pool)
}
