package core

import (
	"net"
	"reflect"
	"sync"
	"testing"

	"teraphim/internal/librarian"
	"teraphim/internal/simnet"
)

// TestManyReceptionistsOneLibrarianFleet exercises the architecture point
// the paper makes explicit: "a librarian may be in communication with
// several receptionists". Several receptionists, each its own session over
// real TCP, query the same librarians concurrently and must all observe
// identical results.
func TestManyReceptionistsOneLibrarianFleet(t *testing.T) {
	corpus, order := smallCorpus(t)
	a := testAnalyzer()
	dialer := simnet.TCPDialer{}
	var servers []*librarian.Server
	for _, name := range order {
		lib, err := librarian.Build(name, corpus[name], librarian.BuildOptions{Analyzer: a})
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := librarian.Serve(lib, ln)
		servers = append(servers, srv)
		dialer[name] = srv.Addr().String()
	}
	defer func() {
		for _, srv := range servers {
			srv.Close()
		}
	}()

	// Reference answer from one receptionist.
	ref, err := Connect(dialer, order, Config{Analyzer: a})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	if _, err := ref.SetupVocabulary(); err != nil {
		t.Fatal(err)
	}
	want, err := ref.Query(ModeCV, "alpha federal wallstreet", 10, Options{})
	if err != nil {
		t.Fatal(err)
	}

	const sessions = 6
	const queriesPer = 8
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			recep, err := Connect(dialer, order, Config{Analyzer: a})
			if err != nil {
				errs <- err
				return
			}
			defer recep.Close()
			if _, err := recep.SetupVocabulary(); err != nil {
				errs <- err
				return
			}
			for j := 0; j < queriesPer; j++ {
				got, err := recep.Query(ModeCV, "alpha federal wallstreet", 10, Options{})
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(got.Answers, want.Answers) {
					errs <- errMismatch
					return
				}
			}
			errs <- nil
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

var errMismatch = errConst("concurrent session observed different answers")

type errConst string

func (e errConst) Error() string { return string(e) }
