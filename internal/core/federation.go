package core

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"teraphim/internal/huffman"
	"teraphim/internal/protocol"
	"teraphim/internal/selection"
	"teraphim/internal/textproc"
)

// libMeta is the federation's knowledge of one librarian: identity, global
// numbering and collection statistics. It is written once during NewPool's
// Hello exchange and read-only thereafter, so sessions may share it freely.
type libMeta struct {
	name    string
	idx     int // position in Federation.libs (global numbering order)
	numDocs uint32
	offset  uint32 // global id of this librarian's local doc 0
	hello   *protocol.HelloReply
}

// vocabState is the outcome of one SetupVocabulary exchange: the merged
// global term statistics, each librarian's own vocabulary (indexed like
// Federation.libs), and the collection-selection index derived from them.
// A fresh state is built off to the side and installed atomically, so
// concurrent queries always see either the previous complete vocabulary or
// the new one — never a mix; selection scores and term weights therefore
// always come from the same setup exchange.
type vocabState struct {
	globalFT map[string]uint32
	perLib   []map[string]uint32 // term -> local f_t, per librarian
	sel      *selection.Index    // CORI scores over perLib, for top-R fan-out
}

// modelSet maps librarian name to its document-decompression model.
type modelSet map[string]*huffman.TextModel

// Federation is the shared, slowly-changing half of the old Receptionist:
// global document numbering, the merged vocabulary, Huffman text models and
// the grouped central index. It is built once (via a Pool's Setup*
// exchanges) and then read concurrently by any number of sessions — the
// split the paper's §5 "multiple users at capacity" regime requires, where
// expensive collection metadata is gathered once and per-query state stays
// cheap.
//
// All fields are either immutable after construction or installed through
// atomic pointers, so a Federation is safe for concurrent use.
type Federation struct {
	analyzer  *textproc.Analyzer
	libs      []*libMeta
	byName    map[string]*libMeta
	totalDocs uint32

	vocab   atomic.Pointer[vocabState]
	models  atomic.Pointer[modelSet]
	central atomic.Pointer[GroupedIndex]

	// epoch counts installations of central state (vocabulary, models,
	// central index). The result cache stamps entries with it, so a setup
	// re-run invalidates every answer computed under the old state without
	// walking the cache.
	epoch atomic.Uint64
}

// Epoch returns the federation's setup epoch: it increases on every
// SetupVocabulary / SetupModels / SetupCentralIndex installation. A cached
// query answer is valid only for the epoch it was computed under.
func (f *Federation) Epoch() uint64 { return f.epoch.Load() }

// Librarians returns the librarian names in global-numbering order.
func (f *Federation) Librarians() []string {
	names := make([]string, len(f.libs))
	for i, li := range f.libs {
		names[i] = li.name
	}
	return names
}

// TotalDocs returns the number of documents across all librarians.
func (f *Federation) TotalDocs() uint32 { return f.totalDocs }

// GlobalDoc converts (librarian, local id) to the global document number.
func (f *Federation) GlobalDoc(name string, local uint32) (uint32, error) {
	li, ok := f.byName[name]
	if !ok {
		return 0, fmt.Errorf("core: unknown librarian %q", name)
	}
	if local >= li.numDocs {
		return 0, fmt.Errorf("core: doc %d outside %q's %d documents", local, name, li.numDocs)
	}
	return li.offset + local, nil
}

// ResolveGlobal converts a global document number to (librarian, local id).
// CI expansion calls this once per candidate document, so it binary-searches
// the offset table (librarians are stored in global-numbering order) rather
// than scanning it.
func (f *Federation) ResolveGlobal(global uint32) (string, uint32, error) {
	if global >= f.totalDocs {
		return "", 0, fmt.Errorf("core: global doc %d outside collection of %d", global, f.totalDocs)
	}
	// The last librarian whose offset is <= global owns it: any earlier
	// librarian with the same offset is empty, and the next one starts past
	// global.
	i := sort.Search(len(f.libs), func(i int) bool { return f.libs[i].offset > global }) - 1
	li := f.libs[i]
	return li.name, global - li.offset, nil
}

// GlobalWeights computes the merged-vocabulary query weights
// w_{q,t} = log(f_{q,t}+1)·log(N/f_t+1) with N and f_t global. Requires
// SetupVocabulary.
func (f *Federation) GlobalWeights(query string) (map[string]float64, error) {
	vs := f.vocab.Load()
	if vs == nil {
		return nil, errors.New("core: SetupVocabulary has not run")
	}
	terms := f.analyzer.Terms(nil, query)
	freqs := make(map[string]uint32, len(terms))
	for _, t := range terms {
		freqs[t]++
	}
	weights := make(map[string]float64, len(freqs))
	n := float64(f.totalDocs)
	for t, fqt := range freqs {
		ft := vs.globalFT[t]
		if ft == 0 {
			continue
		}
		weights[t] = math.Log(float64(fqt)+1) * math.Log(n/float64(ft)+1)
	}
	return weights, nil
}

// SelectLibrarians ranks every librarian's likelihood of holding answers
// for query (CORI over the per-librarian document frequencies gathered by
// SetupVocabulary) and returns the names of the top r, in global-numbering
// order. r <= 0 selects none; r >= the fleet size selects all (still
// ranked, so callers can observe the full ordering cost). Requires
// SetupVocabulary.
//
// This is the inspection surface of the Options.TopR query path: a query
// with TopR = r is shipped to exactly the librarians returned here (CV
// additionally intersects with its nonzero-vocabulary eligibility filter;
// CI intersects with the librarians owning expanded candidates).
func (f *Federation) SelectLibrarians(query string, r int) ([]string, error) {
	vs := f.vocab.Load()
	if vs == nil || vs.sel == nil {
		return nil, ErrSelectionNeedsVocabulary
	}
	terms := f.analyzer.Terms(nil, query)
	picked := vs.sel.Top(terms, nil, r)
	names := make([]string, len(picked))
	for i, idx := range picked {
		names[i] = f.libs[idx].name
	}
	return names, nil
}

// VocabularySize returns the number of distinct terms in the merged
// vocabulary and its approximate storage cost in bytes. Zeroes before
// SetupVocabulary has run.
func (f *Federation) VocabularySize() (terms int, bytes uint64) {
	vs := f.vocab.Load()
	if vs == nil {
		return 0, 0
	}
	for t := range vs.globalFT {
		bytes += uint64(len(t)) + 8
	}
	return len(vs.globalFT), bytes
}

// SetupCentralIndex installs the grouped central index for CI queries. The
// grouped index must have been built over the same documents in the same
// global order (see BuildGrouped); this is the offline "merge the
// subcollection indexes" preprocessing the paper describes. The index is
// installed atomically: in-flight CI queries complete against whichever
// index they started with.
func (f *Federation) SetupCentralIndex(g *GroupedIndex) error {
	if g == nil {
		return errors.New("core: nil grouped index")
	}
	if g.totalDocs != f.totalDocs {
		return fmt.Errorf("core: grouped index covers %d docs, receptionist %d", g.totalDocs, f.totalDocs)
	}
	f.central.Store(g)
	f.epoch.Add(1)
	return nil
}

// installVocab publishes a freshly merged vocabulary and bumps the epoch so
// cached CV/CI answers computed under the old statistics become stale.
func (f *Federation) installVocab(vs *vocabState) {
	f.vocab.Store(vs)
	f.epoch.Add(1)
}

// installModels publishes the decompression models and bumps the epoch
// (cached fetched text could otherwise outlive a model change).
func (f *Federation) installModels(ms *modelSet) {
	f.models.Store(ms)
	f.epoch.Add(1)
}

// bumpEpoch versions a shared-state change that has no dedicated install —
// replica membership changes go through here, so AddReplica/RemoveReplica
// ride the same epoch mechanism as the Setup* installs.
func (f *Federation) bumpEpoch() { f.epoch.Add(1) }

// CentralIndex returns the installed grouped central index, or nil before
// SetupCentralIndex / SetupCentralIndexRemote has run.
func (f *Federation) CentralIndex() *GroupedIndex { return f.central.Load() }

// modelFor returns the named librarian's document-decompression model, or
// nil before SetupModels has run.
func (f *Federation) modelFor(name string) *huffman.TextModel {
	ms := f.models.Load()
	if ms == nil {
		return nil
	}
	return (*ms)[name]
}
