package core

import (
	"container/list"
	"strings"
	"sync"
	"sync/atomic"

	"teraphim/internal/obs"
	"teraphim/internal/search"
)

// The receptionist is the shared bottleneck of the "multiple users at
// capacity" regime: every query pays analyze/ship/wait/merge even when an
// identical query was answered moments ago. A result cache at the broker —
// the query-mediator placement of the federated digital-library literature —
// answers repeats without any librarian round trip, which is both the
// largest single-query saving available (the whole ship+wait+merge cost) and
// a fleet-wide reduction in librarian load.
//
// Correctness hinges on two properties:
//
//   - Staleness: a cached answer computed under one vocabulary / central
//     index / subcollection state must never be served after that state
//     changes. Every entry is stamped with an epoch — the sum of the
//     Federation's setup epoch (bumped by SetupVocabulary, SetupModels and
//     SetupCentralIndex) and the cache's own invalidation generation
//     (bumped by InvalidateCache, which callers wire to
//     UpdatableLibrarian.OnUpdate for serving-time collection swaps). A
//     stamp mismatch is a miss; one atomic increment invalidates the whole
//     cache in O(1).
//
//   - Aliasing: a cached Result is shared by every future hit, so neither
//     the caller that produced it nor the callers that receive it may reach
//     the cached backing arrays. Put and get both deep-copy (answers,
//     trace calls, trace failures).

// DefaultCacheEntries bounds the result cache when CacheConfig.MaxEntries
// is zero.
const DefaultCacheEntries = 1024

// DefaultCacheBytes bounds the result cache's approximate memory footprint
// when CacheConfig.MaxBytes is zero (64 MiB).
const DefaultCacheBytes = 64 << 20

// CacheConfig enables and sizes the receptionist result cache.
type CacheConfig struct {
	// MaxEntries bounds the number of cached results; the least recently
	// used entry is evicted first. Zero selects DefaultCacheEntries.
	MaxEntries int
	// MaxBytes bounds the cache's approximate memory footprint (answer
	// text, titles and trace records). Zero selects DefaultCacheBytes.
	MaxBytes int64
}

// CacheStats is a point-in-time snapshot of the result cache's counters,
// mirroring the teraphim_cache_* metric families.
type CacheStats struct {
	// Hits counts queries answered from the cache; Misses counts lookups
	// that fell through to the full pipeline (including lookups that found
	// only a stale entry).
	Hits   uint64
	Misses uint64
	// Evictions counts entries removed individually: LRU/byte-bound
	// evictions plus stale entries dropped lazily when a lookup finds their
	// epoch stamp out of date.
	Evictions uint64
	// Invalidations counts invalidation events — one per InvalidateCache
	// call — never per entry, so the counter moves the same whether the
	// cache held a thousand entries or none. Setup re-runs invalidate
	// through the federation epoch without an explicit event here; in both
	// cases the stale entries themselves surface in Evictions as lookups
	// lazily drop them.
	Invalidations uint64
	Entries       int
	Bytes         int64
}

// cacheKey identifies one cacheable query. The query text is normalized
// through the federation's analyzer (the same pipeline every librarian
// applies), so "Alpha, Federal!" and "alpha federal" share an entry. KPrime,
// Fetch and TopR participate because they change the answer (candidate set,
// document text, and fan-out width respectively); the fault-tolerance knobs
// do not, because a successful non-degraded result is the same under any of
// them. The merge strategy and topR stored here are the *resolved* values
// (validated, defaulted, clamped), so option spellings that evaluate
// identically share an entry.
type cacheKey struct {
	mode   Mode
	query  string
	k      int
	merge  MergeStrategy
	kPrime int
	fetch  bool
	topR   int
	// eval participates even though every evaluator returns the same
	// ranking: the trace (librarian stats, postings decoded) differs, and a
	// caller who asked to exercise a pruning evaluator should not be served
	// an exact-evaluation trace from the cache, or vice versa.
	eval search.Evaluator
}

// cacheEntry is one stored result plus its LRU bookkeeping.
type cacheEntry struct {
	key   cacheKey
	res   *Result // privately owned deep copy; cloned again on every hit
	epoch uint64
	bytes int64
}

// resultCache is a concurrency-safe LRU of completed query results. A plain
// mutex suffices: a hit does O(k) copying anyway, and the critical section
// is a map lookup plus a list splice — microseconds against the
// milliseconds a librarian round trip costs.
type resultCache struct {
	maxEntries int
	maxBytes   int64

	// gen is the cache's own invalidation generation; the effective epoch of
	// an entry is fed.Epoch()+gen at the time it was stored.
	gen atomic.Uint64

	mu    sync.Mutex
	lru   *list.List // front = most recently used; values are *cacheEntry
	byKey map[cacheKey]*list.Element
	bytes int64

	hits          *obs.Counter
	misses        *obs.Counter
	evictions     *obs.Counter
	invalidations *obs.Counter
	entries       *obs.Gauge
	sizeBytes     *obs.Gauge
}

func newResultCache(cfg CacheConfig, m *Metrics) *resultCache {
	maxEntries := cfg.MaxEntries
	if maxEntries <= 0 {
		maxEntries = DefaultCacheEntries
	}
	maxBytes := cfg.MaxBytes
	if maxBytes <= 0 {
		maxBytes = DefaultCacheBytes
	}
	return &resultCache{
		maxEntries:    maxEntries,
		maxBytes:      maxBytes,
		lru:           list.New(),
		byKey:         make(map[cacheKey]*list.Element),
		hits:          m.cacheHits,
		misses:        m.cacheMisses,
		evictions:     m.cacheEvictions,
		invalidations: m.cacheInvalidations,
		entries:       m.cacheEntries,
		sizeBytes:     m.cacheBytes,
	}
}

// keyFor builds the cache key for one query from its already-resolved merge
// strategy and top-R (the session validates and clamps both before any
// lookup). Every ranked query is cacheable to look up — the fault-tolerance
// options don't participate in the key because degraded results are never
// stored, so whatever a hit returns is a complete answer under any policy.
func (c *resultCache) keyFor(fed *Federation, mode Mode, query string, k int, merge MergeStrategy, topR int, opts Options) cacheKey {
	key := cacheKey{
		mode:  mode,
		query: strings.Join(fed.analyzer.Terms(nil, query), " "),
		k:     k,
		merge: merge,
		fetch: opts.Fetch,
		topR:  topR,
		eval:  opts.Evaluator,
	}
	if mode == ModeCI {
		key.kPrime = opts.KPrime
		if key.kPrime <= 0 {
			key.kPrime = DefaultKPrime
		}
	}
	return key
}

// get returns a defensive copy of the entry for key at the given epoch. An
// entry stored under an older epoch is removed and counted as an eviction
// (the invalidations counter records invalidation *events*, not the entries
// they doom); the lookup itself is a miss either way.
func (c *resultCache) get(key cacheKey, epoch uint64) (*Result, bool) {
	c.mu.Lock()
	el, ok := c.byKey[key]
	if !ok {
		c.mu.Unlock()
		c.misses.Inc()
		return nil, false
	}
	e := el.Value.(*cacheEntry)
	if e.epoch != epoch {
		c.removeLocked(el)
		entries, bytes := c.lru.Len(), c.bytes
		c.mu.Unlock()
		c.evictions.Inc()
		c.misses.Inc()
		// The removal must reach the gauges too: /metrics and CacheStats
		// would otherwise keep reporting entries (and bytes) that no longer
		// exist until the next put happened to refresh them.
		c.entries.Set(int64(entries))
		c.sizeBytes.Set(bytes)
		return nil, false
	}
	c.lru.MoveToFront(el)
	res := e.res
	c.mu.Unlock()
	c.hits.Inc()

	out := cloneResult(res)
	// The hit's trace reflects what *this* query cost — nothing moved over
	// the wire — rather than replaying the original exchange record.
	out.Trace = Trace{Mode: res.Trace.Mode, CacheHit: true}
	return out, true
}

// put stores a defensive copy of res under key at the given epoch,
// evicting least-recently-used entries until both bounds hold. Results too
// large for the byte bound on their own are not cached.
func (c *resultCache) put(key cacheKey, epoch uint64, res *Result) {
	stored := cloneResult(res)
	size := approxResultBytes(key, stored)
	if size > c.maxBytes {
		return
	}
	e := &cacheEntry{key: key, res: stored, epoch: epoch, bytes: size}
	c.mu.Lock()
	if el, ok := c.byKey[key]; ok {
		c.removeLocked(el)
	}
	el := c.lru.PushFront(e)
	c.byKey[key] = el
	c.bytes += size
	var evicted uint64
	for c.lru.Len() > c.maxEntries || c.bytes > c.maxBytes {
		oldest := c.lru.Back()
		if oldest == nil || oldest == el {
			break
		}
		c.removeLocked(oldest)
		evicted++
	}
	entries, bytes := c.lru.Len(), c.bytes
	c.mu.Unlock()
	if evicted > 0 {
		c.evictions.Add(evicted)
	}
	c.entries.Set(int64(entries))
	c.sizeBytes.Set(bytes)
}

// removeLocked unlinks one entry; callers hold c.mu.
func (c *resultCache) removeLocked(el *list.Element) {
	e := el.Value.(*cacheEntry)
	c.lru.Remove(el)
	delete(c.byKey, e.key)
	c.bytes -= e.bytes
}

// invalidate drops every current entry in O(1) by bumping the cache
// generation: stamps no longer match, so each entry dies lazily on its next
// lookup (or by LRU eviction). This is the hook the updatable-librarian
// path uses — a collection swap at any librarian makes every cached answer
// suspect. The counter records the *event* (exactly once, even on an empty
// cache); the doomed entries show up in Evictions as lookups drop them.
func (c *resultCache) invalidate() {
	c.gen.Add(1)
	c.invalidations.Inc()
}

// stats snapshots the counters.
func (c *resultCache) stats() CacheStats {
	c.mu.Lock()
	entries, bytes := c.lru.Len(), c.bytes
	c.mu.Unlock()
	return CacheStats{
		Hits:          c.hits.Value(),
		Misses:        c.misses.Value(),
		Evictions:     c.evictions.Value(),
		Invalidations: c.invalidations.Value(),
		Entries:       entries,
		Bytes:         bytes,
	}
}

// cloneResult deep-copies a Result so the cache and its callers never share
// backing arrays: Answers, Trace.Calls and Trace.Failures are the slices a
// caller could plausibly mutate (fetch writes titles/text in place; eval
// harnesses re-sort answers).
func cloneResult(res *Result) *Result {
	out := &Result{Trace: res.Trace}
	if res.Answers != nil {
		out.Answers = make([]Answer, len(res.Answers))
		copy(out.Answers, res.Answers)
	}
	if res.Trace.Calls != nil {
		out.Trace.Calls = make([]Call, len(res.Trace.Calls))
		copy(out.Trace.Calls, res.Trace.Calls)
	}
	if res.Trace.Failures != nil {
		out.Trace.Failures = make([]Failure, len(res.Trace.Failures))
		copy(out.Trace.Failures, res.Trace.Failures)
	}
	return out
}

// approxResultBytes estimates an entry's resident size: string payloads
// dominate, the rest is accounted with flat per-record overheads.
func approxResultBytes(key cacheKey, res *Result) int64 {
	size := int64(len(key.query)) + 64
	for i := range res.Answers {
		a := &res.Answers[i]
		size += int64(len(a.Librarian)+len(a.Title)+len(a.Text)) + 48
	}
	size += int64(len(res.Trace.Calls)) * 96
	size += int64(len(res.Trace.Failures)) * 64
	return size
}
