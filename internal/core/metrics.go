package core

import (
	"fmt"
	"time"

	"teraphim/internal/obs"
	"teraphim/internal/search"
)

// modeInstruments is one methodology's counter set. Every series exists from
// pool construction, so /metrics shows zeroed families before traffic and
// the query path never registers (registration locks; recording does not).
type modeInstruments struct {
	queries  *obs.Counter
	errors   *obs.Counter
	retries  *obs.Counter
	failures *obs.Counter
	degraded *obs.Counter
	duration *obs.Histogram
}

// Metrics is the observability surface of one Pool and the queries served
// over it. All instruments aggregate the same quantities the per-query
// Trace already records — the paper's CPU/disk/communication cost terms —
// into fleet-wide counters a scrape can watch. Recording is lock-free
// atomics; nothing here allocates after construction.
type Metrics struct {
	reg *obs.Registry

	byMode map[Mode]*modeInstruments

	stageAnalyze *obs.Histogram
	stageShip    *obs.Histogram
	stageWait    *obs.Histogram
	stageMerge   *obs.Histogram

	acquireWait   *obs.Histogram
	connsInUse    *obs.Gauge
	connsIdle     *obs.Gauge
	dirtyDiscards *obs.Counter

	// Wire families: actual frames and bytes on the network, as opposed to
	// the per-query Trace view — batching makes one frame answer several
	// queries, so wireRoundTrips falls below Trace round-trip counts.
	wireRoundTrips *obs.Counter
	wireBytesIn    *obs.Counter
	wireBytesOut   *obs.Counter

	// Result-cache families: hits answered with zero librarian round trips,
	// misses that fell through to the full pipeline, LRU evictions, and
	// epoch invalidations (setup re-runs, librarian collection swaps).
	cacheHits          *obs.Counter
	cacheMisses        *obs.Counter
	cacheEvictions     *obs.Counter
	cacheInvalidations *obs.Counter
	cacheEntries       *obs.Gauge
	cacheBytes         *obs.Gauge

	// Admission-control families: queries shed with ErrOverloaded, current
	// in-flight and queued query counts, and the queue wait of admitted
	// queries.
	admissionShed       *obs.Counter
	admissionInFlight   *obs.Gauge
	admissionQueueDepth *obs.Gauge
	admissionWait       *obs.Histogram

	// Collection-selection families: queries that went through the top-R
	// ranker, and candidate librarians it ranked out of the fan-out.
	selectionQueries *obs.Counter
	selectionSkipped *obs.Counter

	// Replica-routing families: hedged exchanges launched and won, and the
	// router's passive-health transitions (ejections on consecutive
	// failures, readmissions on successful probes).
	hedgeLaunched       *obs.Counter
	hedgeWon            *obs.Counter
	replicaEjections    *obs.Counter
	replicaReadmissions *obs.Counter

	// central accounts the receptionist-side index work (CI group ranking).
	central *search.Metrics
}

// newMetrics registers the pool's instrument families on reg.
func newMetrics(reg *obs.Registry) *Metrics {
	m := &Metrics{reg: reg, byMode: make(map[Mode]*modeInstruments, 3)}
	for _, mode := range []Mode{ModeCN, ModeCV, ModeCI} {
		labels := fmt.Sprintf("mode=%q", mode.String())
		m.byMode[mode] = &modeInstruments{
			queries: reg.Counter("teraphim_queries_total",
				"Completed ranked queries by methodology.", labels),
			errors: reg.Counter("teraphim_query_errors_total",
				"Ranked queries that returned an error.", labels),
			retries: reg.Counter("teraphim_query_retry_attempts_total",
				"Librarian exchanges beyond each librarian's first attempt (Trace.RetryAttempts).", labels),
			failures: reg.Counter("teraphim_query_librarian_failures_total",
				"Librarians that exhausted every attempt of an exchange (Trace.Failures).", labels),
			degraded: reg.Counter("teraphim_queries_degraded_total",
				"Queries answered from a surviving subset of librarians.", labels),
			duration: reg.Histogram("teraphim_query_seconds",
				"End-to-end query latency by methodology.", labels, nil),
		}
	}
	stage := func(name string) *obs.Histogram {
		return reg.Histogram("teraphim_query_stage_seconds",
			"Per-stage query latency: analyze (central weighting/group ranking), ship (request write), wait (librarian evaluation + reply read), merge (central collation).",
			fmt.Sprintf("stage=%q", name), nil)
	}
	m.stageAnalyze = stage("analyze")
	m.stageShip = stage("ship")
	m.stageWait = stage("wait")
	m.stageMerge = stage("merge")

	m.acquireWait = reg.Histogram("teraphim_pool_acquire_wait_seconds",
		"Time a query spent blocked waiting for a per-librarian connection slot.", "", nil)
	m.connsInUse = reg.Gauge("teraphim_pool_conns_in_use",
		"Connections currently leased to in-flight exchanges.", "")
	m.connsIdle = reg.Gauge("teraphim_pool_conns_idle",
		"Connections parked on the idle lists, ready for reuse.", "")
	m.dirtyDiscards = reg.Counter("teraphim_pool_dirty_discards_total",
		"Connections discarded because their stream was interrupted mid-message.", "")

	m.wireRoundTrips = reg.Counter("teraphim_wire_round_trips_total",
		"Request/reply frame pairs actually exchanged on the wire (batched queries share one).", "")
	m.wireBytesIn = reg.Counter("teraphim_wire_bytes_in_total",
		"Reply bytes read off the wire, framing included.", "")
	m.wireBytesOut = reg.Counter("teraphim_wire_bytes_out_total",
		"Request bytes written to the wire, framing included.", "")

	m.cacheHits = reg.Counter("teraphim_cache_hits_total",
		"Queries answered from the result cache with zero librarian round trips.", "")
	m.cacheMisses = reg.Counter("teraphim_cache_misses_total",
		"Cacheable queries that fell through to the full pipeline.", "")
	m.cacheEvictions = reg.Counter("teraphim_cache_evictions_total",
		"Cached results removed individually: LRU/byte-bound evictions plus stale entries dropped lazily on lookup.", "")
	m.cacheInvalidations = reg.Counter("teraphim_cache_invalidations_total",
		"Invalidation events (one per InvalidateCache call, regardless of how many entries it dooms).", "")
	m.cacheEntries = reg.Gauge("teraphim_cache_entries",
		"Results currently held by the cache.", "")
	m.cacheBytes = reg.Gauge("teraphim_cache_bytes",
		"Approximate resident size of the cached results.", "")

	m.admissionShed = reg.Counter("teraphim_admission_shed_total",
		"Queries shed with ErrOverloaded: in-flight limit reached and the queue was full, timed out, or the deadline could not be met.", "")
	m.admissionInFlight = reg.Gauge("teraphim_admission_in_flight",
		"Queries currently admitted and evaluating.", "")
	m.admissionQueueDepth = reg.Gauge("teraphim_admission_queue_depth",
		"Queries waiting for an in-flight slot.", "")
	m.admissionWait = reg.Histogram("teraphim_admission_wait_seconds",
		"Queue wait of queries that were eventually admitted.", "", nil)

	m.selectionQueries = reg.Counter("teraphim_selection_queries_total",
		"Queries whose fan-out was narrowed by top-R collection selection.", "")
	m.selectionSkipped = reg.Counter("teraphim_selection_librarians_skipped_total",
		"Candidate librarians not contacted because selection ranked them outside the top R.", "")

	m.hedgeLaunched = reg.Counter("teraphim_hedge_launched_total",
		"Hedged exchanges launched: the primary outlived its latency-quantile budget and a second replica was raced (only hedges that got a free connection slot count).", "")
	m.hedgeWon = reg.Counter("teraphim_hedge_won_total",
		"Hedged exchanges whose reply arrived first and was used.", "")
	m.replicaEjections = reg.Counter("teraphim_replica_ejections_total",
		"Replicas ejected from routing after consecutive exchange failures (including failed readmission probes).", "")
	m.replicaReadmissions = reg.Counter("teraphim_replica_readmissions_total",
		"Ejected replicas readmitted after a successful exchange.", "")

	m.central = search.NewMetrics(reg, `component="central"`)
	return m
}

// Registry returns the registry the instruments live on — mount it with
// obs.Handler / obs.ListenAndServe to expose /metrics.
func (m *Metrics) Registry() *obs.Registry { return m.reg }

// HedgesLaunched returns the cumulative count of hedged exchanges launched
// (teraphim_hedge_launched_total), for programmatic inspection alongside the
// per-query Trace.Hedges.
func (m *Metrics) HedgesLaunched() uint64 { return m.hedgeLaunched.Value() }

// HedgesWon returns the cumulative count of hedged exchanges whose reply
// arrived first and was used (teraphim_hedge_won_total).
func (m *Metrics) HedgesWon() uint64 { return m.hedgeWon.Value() }

// WireRoundTrips returns the cumulative count of request/reply frame pairs
// actually exchanged on the wire (teraphim_wire_round_trips_total). Batching
// answers several queries per pair, so this divided by queries served is the
// round-trips-per-query figure the paper's cost model charges for.
func (m *Metrics) WireRoundTrips() uint64 { return m.wireRoundTrips.Value() }

// WireBytesIn returns cumulative reply bytes read off the wire, framing
// included (teraphim_wire_bytes_in_total).
func (m *Metrics) WireBytesIn() uint64 { return m.wireBytesIn.Value() }

// WireBytesOut returns cumulative request bytes written to the wire, framing
// included (teraphim_wire_bytes_out_total).
func (m *Metrics) WireBytesOut() uint64 { return m.wireBytesOut.Value() }

// observeQuery folds one completed (or failed) query into the counters and
// stage histograms, and emits the slow-query line when the pool is
// configured for one.
func (p *Pool) observeQuery(mode Mode, query string, dur time.Duration, res *Result, err error) {
	m := p.metrics
	mi := m.byMode[mode]
	if mi == nil {
		return
	}
	t := &res.Trace
	if err != nil {
		mi.errors.Inc()
	} else {
		mi.queries.Inc()
		mi.duration.ObserveDuration(dur)
	}
	if t.CacheHit {
		// A hit did no analyze/ship/wait/merge work; folding its zeros into
		// the stage histograms would fake a faster pipeline.
		return
	}
	mi.retries.Add(uint64(t.RetryAttempts()))
	mi.failures.Add(uint64(len(t.Failures)))
	if t.Degraded {
		mi.degraded.Inc()
	}
	m.stageAnalyze.ObserveDuration(t.Stages.Analyze)
	m.stageShip.ObserveDuration(t.Stages.Ship)
	m.stageWait.ObserveDuration(t.Stages.Wait)
	m.stageMerge.ObserveDuration(t.Stages.Merge)
	m.central.Observe(t.CentralStats)

	if p.slowThreshold > 0 && dur >= p.slowThreshold {
		p.logSlowQuery(mode, query, dur, res, err)
	}
}

// logSlowQuery emits one structured line with the per-stage breakdown. The
// format is key=value so log pipelines can parse it without a schema.
func (p *Pool) logSlowQuery(mode Mode, query string, dur time.Duration, res *Result, err error) {
	t := &res.Trace
	w := p.slowLog
	fmt.Fprintf(w,
		"teraphim slow-query mode=%s dur=%s analyze=%s ship=%s wait=%s merge=%s libs=%d retries=%d failures=%d degraded=%t err=%v query=%q\n",
		mode, dur, t.Stages.Analyze, t.Stages.Ship, t.Stages.Wait, t.Stages.Merge,
		t.LibrariansAsked, t.RetryAttempts(), len(t.Failures), t.Degraded, err, query)
}
