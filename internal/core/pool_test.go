package core

import (
	"errors"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"teraphim/internal/simnet"
)

// sameRanking compares two rankings by identity and rank, with scores equal
// to 1e-9 (term weights travel in a map, so librarians sum per-term
// contributions in map-iteration order — the last ULP is not deterministic).
func sameRanking(got, want []Answer) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range want {
		if got[i].Key() != want[i].Key() || math.Abs(got[i].Score-want[i].Score) > 1e-9 {
			return false
		}
	}
	return true
}

// countingDialer wraps a dialer and tracks, per librarian, how many dials
// happened and how many of the dialled connections are open right now —
// enough to verify both idle reuse (few dials) and the pool bound (open
// conns never exceed MaxConnsPerLibrarian).
type countingDialer struct {
	inner simnet.Dialer

	mu      sync.Mutex
	dials   map[string]int
	open    map[string]int
	maxOpen map[string]int
}

func newCountingDialer(inner simnet.Dialer) *countingDialer {
	return &countingDialer{
		inner:   inner,
		dials:   make(map[string]int),
		open:    make(map[string]int),
		maxOpen: make(map[string]int),
	}
}

func (d *countingDialer) Dial(name string) (net.Conn, error) {
	conn, err := d.inner.Dial(name)
	if err != nil {
		return nil, err
	}
	d.mu.Lock()
	d.dials[name]++
	d.open[name]++
	if d.open[name] > d.maxOpen[name] {
		d.maxOpen[name] = d.open[name]
	}
	d.mu.Unlock()
	return &countedConn{Conn: conn, dialer: d, name: name}, nil
}

func (d *countingDialer) connClosed(name string) {
	d.mu.Lock()
	d.open[name]--
	d.mu.Unlock()
}

func (d *countingDialer) stats(name string) (dials, open, maxOpen int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.dials[name], d.open[name], d.maxOpen[name]
}

type countedConn struct {
	net.Conn
	dialer *countingDialer
	name   string
	once   sync.Once
}

func (c *countedConn) Close() error {
	c.once.Do(func() { c.dialer.connClosed(c.name) })
	return c.Conn.Close()
}

// poolFixture is newFixture plus a counting dialer and direct pool access.
type poolFixture struct {
	*fixture
	pool    *Pool
	counter *countingDialer
}

func newPoolFixture(t testing.TB, maxConns int) *poolFixture {
	t.Helper()
	corpus, order := smallCorpus(t)
	f := newFixture(t, corpus, order)
	// The fixture's own receptionist stays as the MS reference path; build a
	// second pool with a counting dialer for the pool assertions.
	counter := newCountingDialer(f.dialer)
	pool, err := NewPool(counter, order, Config{Analyzer: testAnalyzer(), MaxConnsPerLibrarian: maxConns})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pool.Close() })
	return &poolFixture{fixture: f, pool: pool, counter: counter}
}

// TestCVIdenticalToMSConcurrent drives the paper's headline invariant — CV
// rankings identical to MS, score for score — through 8 goroutines sharing
// one Federation via the pool. Run under -race this is the proof that the
// Federation/Session split left no shared mutable per-query state.
func TestCVIdenticalToMSConcurrent(t *testing.T) {
	pf := newPoolFixture(t, 4)
	if _, err := pf.pool.SetupVocabulary(); err != nil {
		t.Fatal(err)
	}
	queries := []string{
		"alpha federal wallstreet",
		"w1 w2 w3",
		"avalanche aurora",
		"widget wholesale w100",
		"fiscal finance w7",
	}
	want := make([]*Result, len(queries))
	for i, q := range queries {
		ms, err := pf.mono.Query(q, 15, Options{})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = ms
	}

	const goroutines = 8
	const rounds = 5
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sess := pf.pool.Session()
			for round := 0; round < rounds; round++ {
				qi := (g + round) % len(queries)
				cv, err := sess.Query(ModeCV, queries[qi], 15, Options{})
				if err != nil {
					errc <- err
					return
				}
				ms := want[qi]
				if len(cv.Answers) != len(ms.Answers) {
					errc <- errConst("CV answer count diverged from MS under concurrency")
					return
				}
				for i := range ms.Answers {
					if cv.Answers[i].Key() != ms.Answers[i].Key() ||
						math.Abs(cv.Answers[i].Score-ms.Answers[i].Score) > 1e-9 {
						errc <- errConst("CV ranking diverged from MS under concurrency")
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// TestConcurrentSessionsAcrossModes runs 9 concurrent sessions over one
// shared Federation, three per mode (CN, CV, CI), and checks every result
// against a single-threaded reference answer for that (mode, query) pair.
func TestConcurrentSessionsAcrossModes(t *testing.T) {
	pf := newPoolFixture(t, 4)
	if _, err := pf.pool.SetupVocabulary(); err != nil {
		t.Fatal(err)
	}
	local, err := BuildGrouped(pf.termsOf, 10, testAnalyzer())
	if err != nil {
		t.Fatal(err)
	}
	if err := pf.pool.Federation().SetupCentralIndex(local); err != nil {
		t.Fatal(err)
	}

	modes := []Mode{ModeCN, ModeCV, ModeCI}
	queries := []string{"alpha federal", "w1 w2 w3", "wallstreet widget", "aurora fiscal"}
	opts := Options{KPrime: 8}

	type key struct {
		mode Mode
		q    string
	}
	want := make(map[key][]Answer)
	for _, m := range modes {
		for _, q := range queries {
			res, err := pf.pool.Query(m, q, 10, opts)
			if err != nil {
				t.Fatalf("mode %v query %q: %v", m, q, err)
			}
			want[key{m, q}] = res.Answers
		}
	}

	const perMode = 3
	const rounds = 6
	var wg sync.WaitGroup
	errc := make(chan error, perMode*len(modes))
	for _, m := range modes {
		for g := 0; g < perMode; g++ {
			wg.Add(1)
			go func(m Mode, g int) {
				defer wg.Done()
				sess := pf.pool.Session()
				for round := 0; round < rounds; round++ {
					q := queries[(g+round)%len(queries)]
					res, err := sess.Query(m, q, 10, opts)
					if err != nil {
						errc <- err
						return
					}
					if !sameRanking(res.Answers, want[key{m, q}]) {
						errc <- errConst("concurrent answers differ from single-threaded reference")
						return
					}
				}
			}(m, g)
		}
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// TestPoolBoundsConnectionsPerLibrarian checks that MaxConnsPerLibrarian
// really bounds concurrency: with a bound of 2 and 12 goroutines querying
// flat out, no librarian ever has more than 2 open connections, yet every
// query completes.
func TestPoolBoundsConnectionsPerLibrarian(t *testing.T) {
	pf := newPoolFixture(t, 2)
	if _, err := pf.pool.SetupVocabulary(); err != nil {
		t.Fatal(err)
	}
	const goroutines = 12
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				if _, err := pf.pool.Query(ModeCV, "alpha federal wallstreet", 10, Options{}); err != nil {
					errc <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	for _, name := range pf.order {
		_, _, maxOpen := pf.counter.stats(name)
		if maxOpen > 2 {
			t.Fatalf("librarian %s had %d concurrent connections, bound is 2", name, maxOpen)
		}
	}
}

// TestPoolReusesIdleConnections checks the whole point of pooling: a long
// sequential run of queries does not redial — the Hello-era connection is
// reused for every exchange.
func TestPoolReusesIdleConnections(t *testing.T) {
	pf := newPoolFixture(t, 4)
	if _, err := pf.pool.SetupVocabulary(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		if _, err := pf.pool.Query(ModeCN, "alpha federal", 5, Options{}); err != nil {
			t.Fatal(err)
		}
	}
	for _, name := range pf.order {
		dials, _, _ := pf.counter.stats(name)
		if dials != 1 {
			t.Fatalf("librarian %s dialled %d times across 25 sequential queries, want 1 (Hello only)", name, dials)
		}
	}
}

// TestPoolAcquireRelease exercises the explicit lease API, including dirty
// discard: a lease marked dirty is replaced by a fresh dial on next use.
func TestPoolAcquireRelease(t *testing.T) {
	pf := newPoolFixture(t, 2)
	if _, err := pf.pool.Acquire("nope"); !errorsIsUnknownLibrarian(err) {
		t.Fatalf("Acquire unknown librarian: got %v", err)
	}
	pc, err := pf.pool.Acquire("AP")
	if err != nil {
		t.Fatal(err)
	}
	if pc.Librarian() != "AP" || pc.Conn() == nil {
		t.Fatal("Acquire returned an unusable lease")
	}
	pf.pool.Release(pc)
	dialsBefore, _, _ := pf.counter.stats("AP")

	// Clean release → reuse, no new dial.
	pc, err = pf.pool.Acquire("AP")
	if err != nil {
		t.Fatal(err)
	}
	pf.pool.Release(pc)
	if dials, _, _ := pf.counter.stats("AP"); dials != dialsBefore {
		t.Fatalf("clean lease redialled: %d → %d", dialsBefore, dials)
	}

	// Dirty release → discard, next Acquire dials fresh.
	pc, err = pf.pool.Acquire("AP")
	if err != nil {
		t.Fatal(err)
	}
	pc.MarkDirty()
	pf.pool.Release(pc)
	pc, err = pf.pool.Acquire("AP")
	if err != nil {
		t.Fatal(err)
	}
	pf.pool.Release(pc)
	if dials, _, _ := pf.counter.stats("AP"); dials != dialsBefore+1 {
		t.Fatalf("dirty lease not replaced by one fresh dial: %d → %d", dialsBefore, dials)
	}
}

func errorsIsUnknownLibrarian(err error) bool {
	return err != nil && !errors.Is(err, ErrPoolClosed)
}

// TestPoolCloseDuringQueries hammers Close against in-flight queries: 10
// goroutines query in a loop while the main goroutine closes the pool (and
// three more goroutines race duplicate Closes). Nothing may panic, queries
// must cleanly either succeed or fail, and when the dust settles every
// connection must be closed — no leases or idle conns leaked.
func TestPoolCloseDuringQueries(t *testing.T) {
	pf := newPoolFixture(t, 3)
	if _, err := pf.pool.SetupVocabulary(); err != nil {
		t.Fatal(err)
	}
	const goroutines = 10
	var started sync.WaitGroup
	var wg sync.WaitGroup
	var successes, failures atomic.Int64
	started.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			started.Done()
			for i := 0; ; i++ {
				_, err := pf.pool.Query(ModeCV, "alpha federal wallstreet", 10, Options{})
				if err != nil {
					failures.Add(1)
					return
				}
				successes.Add(1)
			}
		}(g)
	}
	started.Wait()
	time.Sleep(5 * time.Millisecond) // let some queries land mid-flight
	var closers sync.WaitGroup
	for c := 0; c < 3; c++ {
		closers.Add(1)
		go func() {
			defer closers.Done()
			if err := pf.pool.Close(); err != nil {
				t.Errorf("Close: %v", err)
			}
		}()
	}
	closers.Wait()
	wg.Wait()
	if failures.Load() != goroutines {
		t.Fatalf("expected every goroutine to observe shutdown, got %d failures", failures.Load())
	}
	// After shutdown no connection may be leaked: leased and idle both empty,
	// and the dialer agrees nothing is open.
	pf.pool.mu.Lock()
	leaked, idle := len(pf.pool.leased), 0
	for _, l := range pf.pool.idle {
		idle += len(l)
	}
	pf.pool.mu.Unlock()
	if leaked != 0 || idle != 0 {
		t.Fatalf("pool leaked %d leased + %d idle connections after Close", leaked, idle)
	}
	for _, name := range pf.order {
		if _, open, _ := pf.counter.stats(name); open != 0 {
			t.Fatalf("librarian %s still has %d open connections after Close", name, open)
		}
	}
	// Fresh queries fail fast with ErrPoolClosed.
	if _, err := pf.pool.Query(ModeCV, "alpha", 5, Options{}); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("query after Close: got %v, want ErrPoolClosed", err)
	}
	if _, err := pf.pool.Acquire("AP"); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("Acquire after Close: got %v, want ErrPoolClosed", err)
	}
	if err := pf.pool.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestSetupSharedAcrossSessions verifies the amortization claim behind the
// pool: setup runs once, and every later session sees its results without
// further setup traffic — the per-librarian dial count stays at one and the
// vocabulary exchange is never repeated.
func TestSetupSharedAcrossSessions(t *testing.T) {
	pf := newPoolFixture(t, 4)
	trace, err := pf.pool.SetupVocabulary()
	if err != nil {
		t.Fatal(err)
	}
	setupTrips := trace.RoundTrips(PhaseSetup)
	if setupTrips != len(pf.order) {
		t.Fatalf("vocabulary setup took %d round trips, want %d", setupTrips, len(pf.order))
	}
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess := pf.pool.Session()
			res, err := sess.Query(ModeCV, "alpha federal", 10, Options{})
			if err != nil {
				errc <- err
				return
			}
			if res.Trace.RoundTrips(PhaseSetup) != 0 {
				errc <- errConst("a session repeated setup traffic")
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	terms, bytes := pf.pool.Federation().VocabularySize()
	if terms == 0 || bytes == 0 {
		t.Fatal("shared federation lost its vocabulary")
	}
}
