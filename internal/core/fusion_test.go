package core

import (
	"reflect"
	"testing"
)

func answerList(name string, offset uint32, scores ...float64) []Answer {
	out := make([]Answer, len(scores))
	for i, s := range scores {
		out[i] = Answer{Librarian: name, LocalDoc: uint32(i), GlobalDoc: offset + uint32(i), Score: s}
	}
	return out
}

func keysOf(answers []Answer) []string {
	out := make([]string, len(answers))
	for i, a := range answers {
		out[i] = a.Key()
	}
	return out
}

func TestFuseFaceValue(t *testing.T) {
	lists := map[string][]Answer{
		"A": answerList("A", 0, 0.9, 0.3),
		"B": answerList("B", 100, 0.7, 0.5),
	}
	got := fuse(MergeFaceValue, lists, []string{"A", "B"}, 3)
	want := []string{"A:0", "B:0", "B:1"}
	if !reflect.DeepEqual(keysOf(got), want) {
		t.Fatalf("face value = %v, want %v", keysOf(got), want)
	}
}

func TestFuseFaceValueTieBreak(t *testing.T) {
	lists := map[string][]Answer{
		"A": answerList("A", 100, 0.5),
		"B": answerList("B", 0, 0.5),
	}
	got := fuse(MergeFaceValue, lists, []string{"A", "B"}, 2)
	// Equal scores break toward the lower global doc (B at offset 0).
	if got[0].Librarian != "B" {
		t.Fatalf("tie break wrong: %v", keysOf(got))
	}
}

func TestFuseRoundRobin(t *testing.T) {
	lists := map[string][]Answer{
		"A": answerList("A", 0, 0.2, 0.1), // low scores...
		"B": answerList("B", 100, 0.9),
	}
	got := fuse(MergeRoundRobin, lists, []string{"A", "B"}, 3)
	// Round robin ignores scores: A's first, B's first, A's second.
	want := []string{"A:0", "B:0", "A:1"}
	if !reflect.DeepEqual(keysOf(got), want) {
		t.Fatalf("round robin = %v, want %v", keysOf(got), want)
	}
}

func TestFuseRoundRobinExhaustsShortLists(t *testing.T) {
	lists := map[string][]Answer{
		"A": answerList("A", 0, 0.9),
		"B": answerList("B", 100, 0.8, 0.7, 0.6),
	}
	got := fuse(MergeRoundRobin, lists, []string{"A", "B"}, 10)
	want := []string{"A:0", "B:0", "B:1", "B:2"}
	if !reflect.DeepEqual(keysOf(got), want) {
		t.Fatalf("round robin = %v, want %v", keysOf(got), want)
	}
}

func TestFuseNormalized(t *testing.T) {
	// Librarian A's scores are inflated 10x; min-max normalisation should
	// put both on the same scale, so B's best beats A's second.
	lists := map[string][]Answer{
		"A": answerList("A", 0, 10.0, 5.0, 2.0),
		"B": answerList("B", 100, 1.0, 0.5, 0.2),
	}
	got := fuse(MergeNormalized, lists, []string{"A", "B"}, 4)
	// Normalised: A = 1.0, 0.375, 0.0; B = 1.0, 0.375, 0.0.
	// Ties break by global doc: A:0, B:0, A:1, B:1.
	want := []string{"A:0", "B:0", "A:1", "B:1"}
	if !reflect.DeepEqual(keysOf(got), want) {
		t.Fatalf("normalized = %v, want %v", keysOf(got), want)
	}
}

func TestNormalizeSingleAnswer(t *testing.T) {
	lists := normalizeLists(map[string][]Answer{
		"A": answerList("A", 0, 42.0),
		"B": nil,
	})
	if lists["A"][0].Score != 1 {
		t.Fatalf("single answer normalised to %f, want 1", lists["A"][0].Score)
	}
	if lists["B"] != nil {
		t.Fatal("empty list must stay empty")
	}
}

func TestMergeStrategyString(t *testing.T) {
	for s, want := range map[MergeStrategy]string{
		MergeFaceValue:  "face-value",
		MergeRoundRobin: "round-robin",
		MergeNormalized: "normalized",
	} {
		if s.String() != want {
			t.Errorf("String(%d) = %s", int(s), s)
		}
	}
}

func TestCNWithFusionStrategies(t *testing.T) {
	corpus, order := smallCorpus(t)
	f := newFixture(t, corpus, order)
	for _, strategy := range []MergeStrategy{MergeFaceValue, MergeRoundRobin, MergeNormalized} {
		res, err := f.recep.Query(ModeCN, "alpha federal wallstreet", 9, Options{Merge: strategy})
		if err != nil {
			t.Fatalf("%v: %v", strategy, err)
		}
		if len(res.Answers) == 0 {
			t.Fatalf("%v returned nothing", strategy)
		}
		seen := map[string]bool{}
		for _, a := range res.Answers {
			if seen[a.Key()] {
				t.Fatalf("%v returned duplicate %s", strategy, a.Key())
			}
			seen[a.Key()] = true
		}
	}
	// Round robin must draw its first S answers from distinct librarians
	// when every librarian has answers.
	res, err := f.recep.Query(ModeCN, "alpha federal wallstreet", 9, Options{Merge: MergeRoundRobin})
	if err != nil {
		t.Fatal(err)
	}
	libs := map[string]bool{}
	for _, a := range res.Answers[:3] {
		libs[a.Librarian] = true
	}
	if len(libs) != 3 {
		t.Fatalf("round robin first 3 answers from %d librarians", len(libs))
	}
}
