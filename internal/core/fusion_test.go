package core

import (
	"errors"
	"reflect"
	"testing"
)

func answerList(name string, offset uint32, scores ...float64) []Answer {
	out := make([]Answer, len(scores))
	for i, s := range scores {
		out[i] = Answer{Librarian: name, LocalDoc: uint32(i), GlobalDoc: offset + uint32(i), Score: s}
	}
	return out
}

func keysOf(answers []Answer) []string {
	out := make([]string, len(answers))
	for i, a := range answers {
		out[i] = a.Key()
	}
	return out
}

func TestFuseFaceValue(t *testing.T) {
	lists := map[string][]Answer{
		"A": answerList("A", 0, 0.9, 0.3),
		"B": answerList("B", 100, 0.7, 0.5),
	}
	got := fuse(MergeFaceValue, lists, []string{"A", "B"}, 3)
	want := []string{"A:0", "B:0", "B:1"}
	if !reflect.DeepEqual(keysOf(got), want) {
		t.Fatalf("face value = %v, want %v", keysOf(got), want)
	}
}

func TestFuseFaceValueTieBreak(t *testing.T) {
	lists := map[string][]Answer{
		"A": answerList("A", 100, 0.5),
		"B": answerList("B", 0, 0.5),
	}
	got := fuse(MergeFaceValue, lists, []string{"A", "B"}, 2)
	// Equal scores break toward the lower global doc (B at offset 0).
	if got[0].Librarian != "B" {
		t.Fatalf("tie break wrong: %v", keysOf(got))
	}
}

func TestFuseRoundRobin(t *testing.T) {
	lists := map[string][]Answer{
		"A": answerList("A", 0, 0.2, 0.1), // low scores...
		"B": answerList("B", 100, 0.9),
	}
	got := fuse(MergeRoundRobin, lists, []string{"A", "B"}, 3)
	// Round robin ignores scores: A's first, B's first, A's second.
	want := []string{"A:0", "B:0", "A:1"}
	if !reflect.DeepEqual(keysOf(got), want) {
		t.Fatalf("round robin = %v, want %v", keysOf(got), want)
	}
}

func TestFuseRoundRobinExhaustsShortLists(t *testing.T) {
	lists := map[string][]Answer{
		"A": answerList("A", 0, 0.9),
		"B": answerList("B", 100, 0.8, 0.7, 0.6),
	}
	got := fuse(MergeRoundRobin, lists, []string{"A", "B"}, 10)
	want := []string{"A:0", "B:0", "B:1", "B:2"}
	if !reflect.DeepEqual(keysOf(got), want) {
		t.Fatalf("round robin = %v, want %v", keysOf(got), want)
	}
}

func TestFuseNormalized(t *testing.T) {
	// Librarian A's scores are inflated 10x; min-max normalisation should
	// put both on the same scale, so B's best beats A's second.
	lists := map[string][]Answer{
		"A": answerList("A", 0, 10.0, 5.0, 2.0),
		"B": answerList("B", 100, 1.0, 0.5, 0.2),
	}
	got := fuse(MergeNormalized, lists, []string{"A", "B"}, 4)
	// Normalised: A = 1.0, 0.375, 0.0; B = 1.0, 0.375, 0.0.
	// Ties break by global doc: A:0, B:0, A:1, B:1.
	want := []string{"A:0", "B:0", "A:1", "B:1"}
	if !reflect.DeepEqual(keysOf(got), want) {
		t.Fatalf("normalized = %v, want %v", keysOf(got), want)
	}
}

func TestNormalizeSingleAnswer(t *testing.T) {
	lists := normalizeLists(map[string][]Answer{
		"A": answerList("A", 0, 42.0),
		"B": nil,
	})
	if lists["A"][0].Score != 1 {
		t.Fatalf("single answer normalised to %f, want 1", lists["A"][0].Score)
	}
	if lists["B"] != nil {
		t.Fatal("empty list must stay empty")
	}
}

func TestMergeStrategyString(t *testing.T) {
	for s, want := range map[MergeStrategy]string{
		MergeFaceValue:  "face-value",
		MergeRoundRobin: "round-robin",
		MergeNormalized: "normalized",
	} {
		if s.String() != want {
			t.Errorf("String(%d) = %s", int(s), s)
		}
	}
}

func TestFuseAllEmptyLists(t *testing.T) {
	empty := map[string][]Answer{"A": nil, "B": {}, "C": nil}
	for _, strategy := range []MergeStrategy{MergeFaceValue, MergeRoundRobin, MergeNormalized} {
		if got := fuse(strategy, empty, []string{"A", "B", "C"}, 10); len(got) != 0 {
			t.Fatalf("%v over empty lists returned %v", strategy, keysOf(got))
		}
		if got := fuse(strategy, map[string][]Answer{}, nil, 10); len(got) != 0 {
			t.Fatalf("%v over no lists returned %v", strategy, keysOf(got))
		}
	}
}

func TestFuseKLargerThanTotal(t *testing.T) {
	lists := map[string][]Answer{
		"A": answerList("A", 0, 0.9, 0.3),
		"B": answerList("B", 100, 0.7),
	}
	for _, strategy := range []MergeStrategy{MergeFaceValue, MergeRoundRobin, MergeNormalized} {
		got := fuse(strategy, lists, []string{"A", "B"}, 50)
		if len(got) != 3 {
			t.Fatalf("%v with k=50 over 3 candidates returned %d", strategy, len(got))
		}
	}
}

// TestFuseNoHiddenCapacity pins the clipAnswers fix: a truncated merge must
// not keep dropped candidates alive in spare capacity, where a caller's
// append would resurrect (or a cache-sharing caller's append would corrupt)
// them.
func TestFuseNoHiddenCapacity(t *testing.T) {
	lists := map[string][]Answer{
		"A": answerList("A", 0, 0.9, 0.8, 0.7, 0.6, 0.5),
		"B": answerList("B", 100, 0.95, 0.85, 0.75),
	}
	for _, strategy := range []MergeStrategy{MergeFaceValue, MergeRoundRobin, MergeNormalized} {
		got := fuse(strategy, lists, []string{"A", "B"}, 3)
		if len(got) != 3 {
			t.Fatalf("%v returned %d answers, want 3", strategy, len(got))
		}
		if cap(got) != len(got) {
			t.Fatalf("%v returned len %d cap %d: dropped candidates retained in hidden capacity",
				strategy, len(got), cap(got))
		}
	}
}

// TestFuseConstantScoresDeterministic: when every candidate scores the same,
// the winner set must not depend on Go's randomized map iteration order. 50
// freshly built maps over 8 librarians must fuse identically.
func TestFuseConstantScoresDeterministic(t *testing.T) {
	names := []string{"L0", "L1", "L2", "L3", "L4", "L5", "L6", "L7"}
	build := func() map[string][]Answer {
		lists := make(map[string][]Answer, len(names))
		for i, name := range names {
			lists[name] = answerList(name, uint32(i*100), 0.5, 0.5, 0.5)
		}
		return lists
	}
	for _, strategy := range []MergeStrategy{MergeFaceValue, MergeRoundRobin, MergeNormalized} {
		want := keysOf(fuse(strategy, build(), names, 5))
		for round := 0; round < 50; round++ {
			got := keysOf(fuse(strategy, build(), names, 5))
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%v round %d: %v, want %v (map-order dependent)", strategy, round, got, want)
			}
		}
	}
}

// TestNormalizeConstantScores: a list where min == max maps every score to
// 1 rather than dividing by zero.
func TestNormalizeConstantScores(t *testing.T) {
	lists := normalizeLists(map[string][]Answer{
		"A": answerList("A", 0, 3.0, 3.0, 3.0),
	})
	for i, a := range lists["A"] {
		if a.Score != 1 {
			t.Fatalf("constant-score answer %d normalised to %f, want 1", i, a.Score)
		}
	}
}

func TestEffectiveMerge(t *testing.T) {
	cases := []struct {
		mode Mode
		opts Options
		want MergeStrategy
	}{
		{ModeCN, Options{}, MergeFaceValue},
		{ModeCN, Options{Merge: MergeFaceValue}, MergeFaceValue},
		{ModeCN, Options{Merge: MergeRoundRobin}, MergeRoundRobin},
		{ModeCN, Options{Merge: MergeNormalized}, MergeNormalized},
		{ModeCV, Options{Merge: MergeRoundRobin}, MergeFaceValue},
		{ModeCI, Options{Merge: MergeNormalized}, MergeFaceValue},
	}
	for _, tc := range cases {
		got, err := effectiveMerge(tc.mode, tc.opts)
		if err != nil {
			t.Errorf("effectiveMerge(%v, Merge=%v): %v", tc.mode, tc.opts.Merge, err)
			continue
		}
		if got != tc.want {
			t.Errorf("effectiveMerge(%v, Merge=%v) = %v, want %v", tc.mode, tc.opts.Merge, got, tc.want)
		}
	}
}

// TestEffectiveMergeRejectsUnknown: a Merge value naming no defined strategy
// is a typed error in every mode — never silently face value, never a
// cache-key fragment.
func TestEffectiveMergeRejectsUnknown(t *testing.T) {
	for _, mode := range []Mode{ModeCN, ModeCV, ModeCI} {
		for _, bad := range []MergeStrategy{MergeStrategy(42), MergeStrategy(-1), MergeStrategy(4)} {
			_, err := effectiveMerge(mode, Options{Merge: bad})
			if !errors.Is(err, ErrUnknownMergeStrategy) {
				t.Errorf("effectiveMerge(%v, Merge=%v) err = %v, want ErrUnknownMergeStrategy", mode, bad, err)
			}
		}
	}
}

func TestCNWithFusionStrategies(t *testing.T) {
	corpus, order := smallCorpus(t)
	f := newFixture(t, corpus, order)
	for _, strategy := range []MergeStrategy{MergeFaceValue, MergeRoundRobin, MergeNormalized} {
		res, err := f.recep.Query(ModeCN, "alpha federal wallstreet", 9, Options{Merge: strategy})
		if err != nil {
			t.Fatalf("%v: %v", strategy, err)
		}
		if len(res.Answers) == 0 {
			t.Fatalf("%v returned nothing", strategy)
		}
		seen := map[string]bool{}
		for _, a := range res.Answers {
			if seen[a.Key()] {
				t.Fatalf("%v returned duplicate %s", strategy, a.Key())
			}
			seen[a.Key()] = true
		}
	}
	// Round robin must draw its first S answers from distinct librarians
	// when every librarian has answers.
	res, err := f.recep.Query(ModeCN, "alpha federal wallstreet", 9, Options{Merge: MergeRoundRobin})
	if err != nil {
		t.Fatal(err)
	}
	libs := map[string]bool{}
	for _, a := range res.Answers[:3] {
		libs[a.Librarian] = true
	}
	if len(libs) != 3 {
		t.Fatalf("round robin first 3 answers from %d librarians", len(libs))
	}
}
