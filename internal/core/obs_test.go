package core

import (
	"context"
	"errors"
	"strconv"
	"strings"
	"testing"
	"time"

	"teraphim/internal/librarian"
	"teraphim/internal/obs"
	"teraphim/internal/protocol"
	"teraphim/internal/simnet"
)

// promValues renders reg and parses every sample line into a map keyed by
// the full sample name ("metric{labels}" or bare "metric").
func promValues(t *testing.T, reg *obs.Registry) map[string]float64 {
	t.Helper()
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := make(map[string]float64)
	for _, line := range strings.Split(sb.String(), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("malformed value in %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	return out
}

// TestMetricsMatchTraces is the e2e accounting check: run a known query
// batch under CN, CV and CI, sum the per-query Trace values, and assert the
// pool's /metrics totals agree exactly.
func TestMetricsMatchTraces(t *testing.T) {
	corpus, order := smallCorpus(t)
	f := newFixture(t, corpus, order)
	if _, err := f.recep.SetupVocabulary(); err != nil {
		t.Fatal(err)
	}
	g, err := BuildGrouped(f.termsOf, 5, testAnalyzer())
	if err != nil {
		t.Fatal(err)
	}
	if err := f.recep.SetupCentralIndex(g); err != nil {
		t.Fatal(err)
	}

	queries := []string{"alpha federal wallstreet", "w5 w6 w7", "finance widget aurora w1"}
	perMode := map[Mode]int{}
	var centralPostings, retries, failures uint64
	for _, mode := range []Mode{ModeCN, ModeCV, ModeCI} {
		for _, q := range queries {
			res, err := f.recep.Query(mode, q, 10, Options{})
			if err != nil {
				t.Fatalf("%v %q: %v", mode, q, err)
			}
			perMode[mode]++
			centralPostings += res.Trace.CentralStats.PostingsDecoded
			retries += uint64(res.Trace.RetryAttempts())
			failures += uint64(len(res.Trace.Failures))
		}
	}

	vals := promValues(t, f.recep.Metrics().Registry())
	for mode, want := range perMode {
		key := `teraphim_queries_total{mode="` + mode.String() + `"}`
		if got := vals[key]; got != float64(want) {
			t.Errorf("%s = %v, want %d", key, got, want)
		}
		key = `teraphim_query_seconds_count{mode="` + mode.String() + `"}`
		if got := vals[key]; got != float64(want) {
			t.Errorf("%s = %v, want %d", key, got, want)
		}
		for _, name := range []string{"teraphim_query_errors_total", "teraphim_queries_degraded_total"} {
			key = name + `{mode="` + mode.String() + `"}`
			if got := vals[key]; got != 0 {
				t.Errorf("%s = %v, want 0", key, got)
			}
		}
	}
	total := float64(len(queries) * 3)
	for _, stage := range []string{"analyze", "ship", "wait", "merge"} {
		key := `teraphim_query_stage_seconds_count{stage="` + stage + `"}`
		if got := vals[key]; got != total {
			t.Errorf("%s = %v, want %v", key, got, total)
		}
	}
	if got := vals[`teraphim_search_postings_decoded_total{component="central"}`]; got != float64(centralPostings) {
		t.Errorf("central postings decoded = %v, traces say %d", got, centralPostings)
	}
	if centralPostings == 0 {
		t.Error("CI queries decoded no central postings; accounting test is vacuous")
	}
	if retries != 0 || failures != 0 {
		t.Fatalf("unexpected retries/failures on healthy fixture: %d/%d", retries, failures)
	}
	// Every lease was released: nothing in use, and the connections the
	// batch used are parked idle for reuse.
	if got := vals["teraphim_pool_conns_in_use"]; got != 0 {
		t.Errorf("conns_in_use = %v after batch, want 0", got)
	}
	if got := vals["teraphim_pool_conns_idle"]; got < 1 {
		t.Errorf("conns_idle = %v after batch, want >= 1", got)
	}
	if got := vals["teraphim_pool_dirty_discards_total"]; got != 0 {
		t.Errorf("dirty_discards = %v on healthy fixture, want 0", got)
	}
}

// TestLibrarianMetricsMatchTraces shares one registry between the pool and
// instrumented librarians and checks that the librarian-side evaluation
// counters equal the work the query traces report.
func TestLibrarianMetricsMatchTraces(t *testing.T) {
	corpus, order := smallCorpus(t)
	a := testAnalyzer()
	reg := obs.NewRegistry()
	var libs []*librarian.Librarian
	for _, name := range order {
		lib, err := librarian.Build(name, corpus[name], librarian.BuildOptions{Analyzer: a})
		if err != nil {
			t.Fatal(err)
		}
		lib.Instrument(reg)
		libs = append(libs, lib)
	}
	dialer := librarian.NewInProcessDialer(libs, simnet.LinkConfig{})
	recep, err := Connect(dialer, order, Config{Analyzer: a, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := recep.SetupVocabulary(); err != nil {
		t.Fatal(err)
	}

	var libPostings, libScored uint64
	var wireBytes float64
	for _, q := range []string{"alpha w2 w3", "federal wallstreet", "w20 w21 w22"} {
		res, err := recep.Query(ModeCV, q, 10, Options{})
		if err != nil {
			t.Fatal(err)
		}
		work := res.Trace.LibrarianWork()
		libPostings += work.PostingsDecoded
		libScored += uint64(work.CandidateDocs)
		wireBytes += float64(res.Trace.BytesTransferred(0))
	}
	recep.Close()
	dialer.Wait()

	vals := promValues(t, reg)
	var gotPostings, gotScored, gotBytes, gotSessions float64
	for _, name := range order {
		gotPostings += vals[`teraphim_search_postings_decoded_total{librarian="`+name+`"}`]
		gotScored += vals[`teraphim_search_candidates_scored_total{librarian="`+name+`"}`]
		gotBytes += vals[`teraphim_librarian_bytes_in_total{librarian="`+name+`"}`]
		gotBytes += vals[`teraphim_librarian_bytes_out_total{librarian="`+name+`"}`]
		gotSessions += vals[`teraphim_librarian_active_sessions{librarian="`+name+`"}`]
		if vals[`teraphim_librarian_requests_total{librarian="`+name+`"}`] < 1 {
			t.Errorf("librarian %q answered no requests", name)
		}
	}
	if gotPostings != float64(libPostings) {
		t.Errorf("librarian postings decoded = %v, traces say %d", gotPostings, libPostings)
	}
	if gotScored != float64(libScored) {
		t.Errorf("librarian candidates scored = %v, traces say %d", gotScored, libScored)
	}
	if libPostings == 0 {
		t.Error("queries decoded no postings; accounting test is vacuous")
	}
	// The librarians also served the Hello and vocabulary exchanges, so the
	// wire totals must cover at least the query traffic.
	if gotBytes < wireBytes {
		t.Errorf("librarian wire bytes = %v, query traces alone moved %v", gotBytes, wireBytes)
	}
	if gotSessions != 0 {
		t.Errorf("active_sessions = %v after Close+Wait, want 0", gotSessions)
	}
}

// slowFixture is a deployment whose links add real propagation delay, so a
// query that is not cancelled takes hundreds of milliseconds.
func slowFixture(t *testing.T, latency time.Duration, cfg Config) *Receptionist {
	t.Helper()
	corpus, order := smallCorpus(t)
	a := testAnalyzer()
	var libs []*librarian.Librarian
	for _, name := range order {
		lib, err := librarian.Build(name, corpus[name], librarian.BuildOptions{Analyzer: a})
		if err != nil {
			t.Fatal(err)
		}
		libs = append(libs, lib)
	}
	dialer := librarian.NewInProcessDialer(libs, simnet.LinkConfig{Latency: latency})
	cfg.Analyzer = a
	recep, err := Connect(dialer, order, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		recep.Close()
		dialer.Wait()
	})
	return recep
}

// TestQueryContextCancelsMidFlight cancels a query while its exchanges are
// blocked on slow links and checks it returns promptly with
// context.Canceled, without leaking pooled connections. The discard
// accounting differs by wire: the pipelined framing abandons just the
// cancelled exchange's tag and keeps the connection (no dirty discards),
// while the seed framing must throw the whole interrupted stream away.
func TestQueryContextCancelsMidFlight(t *testing.T) {
	const latency = 250 * time.Millisecond
	for _, tc := range []struct {
		name string
		cfg  Config
		// minDirty/maxDirty bound teraphim_pool_dirty_discards_total after
		// the cancelled query.
		minDirty, maxDirty float64
	}{
		{"pipelined", Config{}, 0, 0},
		{"legacy", Config{WireFeatures: protocol.FeatureNone}, 1, 1 << 20},
	} {
		t.Run(tc.name, func(t *testing.T) {
			recep := slowFixture(t, latency, tc.cfg)

			ctx, cancel := context.WithCancel(context.Background())
			timer := time.AfterFunc(30*time.Millisecond, cancel)
			defer timer.Stop()
			start := time.Now()
			_, err := recep.QueryContext(ctx, ModeCN, "alpha federal", 5, Options{})
			elapsed := time.Since(start)
			if err == nil {
				t.Fatal("cancelled query: want error")
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("cancelled query: err = %v, want context.Canceled", err)
			}
			// An uncancelled CN query pays at least two one-way latencies
			// (500ms here); prompt cancellation must return far sooner.
			if elapsed >= latency {
				t.Errorf("cancelled query returned after %v, want < %v", elapsed, latency)
			}

			// The interrupted exchanges were abandoned, not leaked: the pool
			// still has every slot, and a fresh query succeeds.
			vals := promValues(t, recep.Metrics().Registry())
			if got := vals["teraphim_pool_conns_in_use"]; got != 0 {
				t.Errorf("conns_in_use = %v after cancelled query, want 0", got)
			}
			if got := vals["teraphim_pool_dirty_discards_total"]; got < tc.minDirty || got > tc.maxDirty {
				t.Errorf("dirty_discards = %v, want in [%v, %v]", got, tc.minDirty, tc.maxDirty)
			}
			res, err := recep.Query(ModeCN, "alpha federal", 5, Options{})
			if err != nil {
				t.Fatalf("query after cancellation: %v", err)
			}
			if len(res.Answers) == 0 {
				t.Fatal("query after cancellation returned no answers")
			}
		})
	}
}

// TestQueryContextPreCancelled checks an already-cancelled context fails
// immediately, before any librarian work.
func TestQueryContextPreCancelled(t *testing.T) {
	corpus, order := smallCorpus(t)
	f := newFixture(t, corpus, order)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := f.recep.QueryContext(ctx, ModeCN, "alpha", 5, Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled query: err = %v, want context.Canceled", err)
	}
}

// TestQueryContextCancelsBackoffWait cancels while the only retry schedule
// is sleeping in its backoff, proving the wait itself observes the context.
func TestQueryContextCancelsBackoffWait(t *testing.T) {
	// A dialer with no reachable librarians forces every attempt to fail,
	// sending the exchange loop into backoff between attempts.
	dialer := simnet.TCPDialer{"AP": "127.0.0.1:1"} // nothing listens here
	start := time.Now()
	_, err := NewPool(dialer, []string{"AP"}, Config{})
	if err == nil {
		t.Skip("unexpectedly dialled; environment has a listener on port 1")
	}
	_ = start
	// Now exercise the ctx-aware backoff path directly.
	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(20*time.Millisecond, cancel)
	waited := time.Now()
	if sleepCtx(ctx, 3*time.Second) {
		t.Fatal("sleepCtx survived cancellation")
	}
	if d := time.Since(waited); d >= 500*time.Millisecond {
		t.Fatalf("sleepCtx returned after %v, want prompt cancellation", d)
	}
}
