package core

import (
	"errors"
	"testing"

	"teraphim/internal/obs"
	"teraphim/internal/search"
)

// TestEvaluatorModesParity pins Options.Evaluator end to end: in every
// methodology (MS local, CN/CV over the wire, CI through the grouped central
// index plus ScoreDocs), the dynamic-pruning evaluators must return exactly
// the answers exact evaluation returns — same documents, bit-identical
// scores — because every evaluator in the stack is rank-safe.
func TestEvaluatorModesParity(t *testing.T) {
	corpus, order := smallCorpus(t)
	f := newFixture(t, corpus, order)
	if _, err := f.recep.SetupVocabulary(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.recep.SetupCentralIndexRemote(10); err != nil {
		t.Fatal(err)
	}
	queries := []string{
		"alpha federal wallstreet",
		"w1 w2 w3 w4",
		"avalanche aurora w7",
	}
	for _, eval := range []search.Evaluator{search.EvalMaxScore, search.EvalWAND} {
		for _, q := range queries {
			// MS baseline, evaluated locally.
			msExact, err := f.mono.Query(q, 15, Options{})
			if err != nil {
				t.Fatal(err)
			}
			msGot, err := f.mono.Query(q, 15, Options{Evaluator: eval})
			if err != nil {
				t.Fatal(err)
			}
			assertBitIdenticalAnswers(t, "MS/"+eval.String()+"/"+q, msGot.Answers, msExact.Answers)

			for _, mode := range []Mode{ModeCN, ModeCV, ModeCI} {
				exact, err := f.recep.Query(mode, q, 15, Options{})
				if err != nil {
					t.Fatal(err)
				}
				got, err := f.recep.Query(mode, q, 15, Options{Evaluator: eval})
				if err != nil {
					t.Fatalf("%v/%v query %q: %v", mode, eval, q, err)
				}
				assertBitIdenticalAnswers(t, mode.String()+"/"+eval.String()+"/"+q, got.Answers, exact.Answers)
			}
		}
	}
}

// assertBitIdenticalAnswers is assertSameAnswers with exact score equality:
// rank-safe pruning reproduces the exact kernel's float operations, so even
// a 1e-9 tolerance would be too forgiving here.
func assertBitIdenticalAnswers(t *testing.T, label string, got, want []Answer) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d answers, exact has %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i].Key() != want[i].Key() {
			t.Fatalf("%s rank %d: %s, exact %s", label, i, got[i].Key(), want[i].Key())
		}
		if got[i].Score != want[i].Score {
			t.Fatalf("%s rank %d (%s): score %.17g, exact %.17g",
				label, i, got[i].Key(), got[i].Score, want[i].Score)
		}
	}
}

// TestEvaluatorRejectedUpFront: an out-of-range Options.Evaluator fails the
// query with the typed error before any librarian exchange, in both the
// receptionist and MS paths.
func TestEvaluatorRejectedUpFront(t *testing.T) {
	corpus, order := smallCorpus(t)
	f := newFixture(t, corpus, order)
	bad := Options{Evaluator: search.Evaluator(9)}
	res, err := f.recep.Query(ModeCN, "alpha", 10, bad)
	if !errors.Is(err, search.ErrUnknownEvaluator) {
		t.Fatalf("CN err = %v, want ErrUnknownEvaluator", err)
	}
	if res != nil {
		t.Fatalf("CN returned a result alongside the error: %+v", res)
	}
	if _, err := f.mono.Query("alpha", 10, bad); !errors.Is(err, search.ErrUnknownEvaluator) {
		t.Fatalf("MS err = %v, want ErrUnknownEvaluator", err)
	}
}

// TestEvaluatorCacheKeyFragmentation: queries that differ only in evaluator
// must not share a cache entry — their traces differ even though the
// rankings agree — while repeating the same evaluator hits.
func TestEvaluatorCacheKeyFragmentation(t *testing.T) {
	corpus, order := smallCorpus(t)
	f := newFixture(t, corpus, order)
	fed := f.recep.Federation()
	cache := newResultCache(CacheConfig{}, newMetrics(obs.NewRegistry()))
	exact := cache.keyFor(fed, ModeCN, "alpha federal", 10, MergeFaceValue, 0, Options{})
	maxsc := cache.keyFor(fed, ModeCN, "alpha federal", 10, MergeFaceValue, 0, Options{Evaluator: search.EvalMaxScore})
	wand := cache.keyFor(fed, ModeCN, "alpha federal", 10, MergeFaceValue, 0, Options{Evaluator: search.EvalWAND})
	if exact == maxsc || exact == wand || maxsc == wand {
		t.Fatalf("evaluator does not fragment the cache key: %+v / %+v / %+v", exact, maxsc, wand)
	}
	again := cache.keyFor(fed, ModeCN, "alpha federal", 10, MergeFaceValue, 0, Options{Evaluator: search.EvalMaxScore})
	if again != maxsc {
		t.Fatalf("same evaluator produced different keys: %+v vs %+v", again, maxsc)
	}
}
