package core

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"teraphim/internal/librarian"
	"teraphim/internal/protocol"
	"teraphim/internal/simnet"
	"teraphim/internal/store"
)

// haltAfter serves a real librarian for n messages, then slams the
// connection shut — simulating a mid-session librarian crash.
func haltAfter(lib *librarian.Librarian, n int) func() (net.Conn, error) {
	return func() (net.Conn, error) {
		client, server := net.Pipe()
		go func() {
			defer server.Close()
			for i := 0; i < n; i++ {
				msg, _, err := protocol.ReadMessage(server)
				if err != nil {
					return
				}
				reply := librarianHandle(lib, msg)
				if _, err := protocol.WriteMessage(server, reply); err != nil {
					return
				}
			}
		}()
		return client, nil
	}
}

// librarianHandle proxies one message through a real librarian via an
// internal pipe session. The proxy itself speaks only the seed framing, so —
// like any protocol-translating middlebox — it must mask the pipelining
// grant out of a relayed HelloReply: the client would otherwise switch to
// tagged frames the proxy cannot parse.
func librarianHandle(lib *librarian.Librarian, msg protocol.Message) protocol.Message {
	c1, c2 := net.Pipe()
	done := make(chan protocol.Message, 1)
	go func() {
		defer c1.Close()
		_, _ = protocol.WriteMessage(c1, msg)
		reply, _, err := protocol.ReadMessage(c1)
		if err != nil {
			reply = &protocol.ErrorReply{Message: err.Error()}
		}
		done <- reply
	}()
	_ = lib.ServeConn(c2)
	c2.Close()
	reply := <-done
	if hr, ok := reply.(*protocol.HelloReply); ok {
		hr.Features &^= protocol.FeaturePipelining
	}
	return reply
}

func buildFailureLibs(t *testing.T) (*librarian.Librarian, *librarian.Librarian) {
	t.Helper()
	a := testAnalyzer()
	good, err := librarian.Build("good", []store.Document{
		{Title: "g0", Text: "stable reliable librarian serving documents"},
	}, librarian.BuildOptions{Analyzer: a})
	if err != nil {
		t.Fatal(err)
	}
	bad, err := librarian.Build("bad", []store.Document{
		{Title: "b0", Text: "flaky librarian that will crash mid session"},
	}, librarian.BuildOptions{Analyzer: a})
	if err != nil {
		t.Fatal(err)
	}
	return good, bad
}

func TestLibrarianCrashMidSessionSurfacesError(t *testing.T) {
	good, bad := buildFailureLibs(t)
	goodDialer := librarian.NewInProcessDialer([]*librarian.Librarian{good}, simnet.LinkConfig{})
	dialer := simnet.MapDialer{
		"good": func() (net.Conn, error) { return goodDialer.Dial("good") },
		// The bad librarian answers exactly one message (the Hello) and
		// then dies.
		"bad": haltAfter(bad, 1),
	}
	recep, err := Connect(dialer, []string{"good", "bad"}, Config{Analyzer: testAnalyzer()})
	if err != nil {
		t.Fatalf("connect should succeed (Hello is answered): %v", err)
	}
	defer recep.Close()

	_, err = recep.Query(ModeCN, "librarian", 5, Options{})
	if err == nil {
		t.Fatal("query against crashed librarian: want error")
	}
	if !strings.Contains(err.Error(), "bad") {
		t.Fatalf("error should name the failed librarian: %v", err)
	}
}

func TestConnectFailsWhenLibrarianUnreachable(t *testing.T) {
	dialer := simnet.MapDialer{
		"gone": func() (net.Conn, error) { return nil, errors.New("connection refused") },
	}
	if _, err := Connect(dialer, []string{"gone"}, Config{}); err == nil {
		t.Fatal("unreachable librarian: want error")
	}
}

func TestConnectFailsOnGarbageHello(t *testing.T) {
	dialer := simnet.MapDialer{
		"garbage": func() (net.Conn, error) {
			client, server := net.Pipe()
			go func() {
				defer server.Close()
				// Read the Hello, reply with nonsense bytes.
				if _, _, err := protocol.ReadMessage(server); err != nil {
					return
				}
				_, _ = server.Write([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
			}()
			return client, nil
		},
	}
	if _, err := Connect(dialer, []string{"garbage"}, Config{}); err == nil {
		t.Fatal("garbage Hello reply: want error")
	}
}

func TestQueryAfterCloseFails(t *testing.T) {
	corpus, order := smallCorpus(t)
	f := newFixture(t, corpus, order)
	// Close underneath, then query.
	if err := f.recep.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.recep.Query(ModeCN, "alpha", 5, Options{}); err == nil {
		t.Fatal("query on closed receptionist: want error")
	}
	// Close is idempotent.
	if err := f.recep.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSetupVocabularyAgainstCrashedLibrarian(t *testing.T) {
	_, bad := buildFailureLibs(t)
	dialer := simnet.MapDialer{"bad": haltAfter(bad, 1)}
	recep, err := Connect(dialer, []string{"bad"}, Config{Analyzer: testAnalyzer()})
	if err != nil {
		t.Fatal(err)
	}
	defer recep.Close()
	if _, err := recep.SetupVocabulary(); err == nil {
		t.Fatal("vocabulary fetch from crashed librarian: want error")
	}
}

// fourLibCorpus builds a deterministic four-librarian corpus where every
// document carries one common term, so every librarian answers every query.
func fourLibCorpus() (map[string][]store.Document, []string) {
	order := []string{"AP", "FR", "WSJ", "ZIFF"}
	topics := map[string]string{"AP": "avalanche", "FR": "fiscal", "WSJ": "widget", "ZIFF": "zeppelin"}
	corpus := map[string][]store.Document{}
	for _, name := range order {
		for d := 0; d < 6; d++ {
			corpus[name] = append(corpus[name], store.Document{
				ID:    uint32(d),
				Title: fmt.Sprintf("%s-%d", name, d),
				Text:  fmt.Sprintf("shared %s retrieval document number%d", topics[name], d),
			})
		}
	}
	return corpus, order
}

// deadAfterSetup dials a librarian that answers its setup exchanges and then
// dies for good: the first connection serves setupMsgs messages before
// slamming shut, and every redial is refused.
func deadAfterSetup(lib *librarian.Librarian, setupMsgs int) func() (net.Conn, error) {
	dials := 0
	serve := haltAfter(lib, setupMsgs)
	return func() (net.Conn, error) {
		dials++
		if dials > 1 {
			return nil, errors.New("librarian down")
		}
		return serve()
	}
}

// timeoutOnceDialer serves the librarian normally from the second dial on;
// the first connection answers exactly one message (the Hello) and then goes
// silent without closing, so the next request blocks until the query
// deadline trips.
func timeoutOnceDialer(lib *librarian.Librarian) func() (net.Conn, error) {
	dials := 0
	return func() (net.Conn, error) {
		dials++
		client, server := net.Pipe()
		if dials == 1 {
			go func() {
				msg, _, err := protocol.ReadMessage(server)
				if err != nil {
					return
				}
				_, _ = protocol.WriteMessage(server, librarianHandle(lib, msg))
				// Hold the connection open but read nothing more: the
				// receptionist's next write blocks until its deadline.
			}()
		} else {
			go func() {
				defer server.Close()
				_ = lib.ServeConn(server)
			}()
		}
		return client, nil
	}
}

// partialFixture wires the four-librarian corpus with ZIFF dying after its
// setup exchanges, returning the receptionist plus the analysed terms for CI.
func partialFixture(t *testing.T, setupMsgs int) (*Receptionist, [][]string) {
	t.Helper()
	corpus, order := fourLibCorpus()
	a := testAnalyzer()
	libs := map[string]*librarian.Librarian{}
	var termsOf [][]string
	for _, name := range order {
		lib, err := librarian.Build(name, corpus[name], librarian.BuildOptions{Analyzer: a})
		if err != nil {
			t.Fatal(err)
		}
		libs[name] = lib
		for _, d := range corpus[name] {
			termsOf = append(termsOf, a.Terms(nil, d.Text))
		}
	}
	goodDialer := librarian.NewInProcessDialer(
		[]*librarian.Librarian{libs["AP"], libs["FR"], libs["WSJ"]}, simnet.LinkConfig{})
	dialer := simnet.MapDialer{
		"AP":   func() (net.Conn, error) { return goodDialer.Dial("AP") },
		"FR":   func() (net.Conn, error) { return goodDialer.Dial("FR") },
		"WSJ":  func() (net.Conn, error) { return goodDialer.Dial("WSJ") },
		"ZIFF": deadAfterSetup(libs["ZIFF"], setupMsgs),
	}
	recep, err := Connect(dialer, order, Config{Analyzer: a})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		recep.Close()
		goodDialer.Wait()
	})
	return recep, termsOf
}

// TestPartialResultAcrossModes pins the degraded-operation contract: a query
// against 4 librarians where 1 is down returns the top-k merged from the 3
// survivors with Trace.Degraded set and one Trace.Failures entry — under all
// of CN, CV and CI.
func TestPartialResultAcrossModes(t *testing.T) {
	cases := []struct {
		mode      Mode
		setupMsgs int // messages ZIFF answers before dying
	}{
		{ModeCN, 1}, // Hello only
		{ModeCV, 2}, // Hello + VocabRequest
		{ModeCI, 2}, // Hello + VocabRequest; central index built locally
	}
	for _, tc := range cases {
		t.Run(tc.mode.String(), func(t *testing.T) {
			recep, termsOf := partialFixture(t, tc.setupMsgs)
			if tc.mode != ModeCN {
				if _, err := recep.SetupVocabulary(); err != nil {
					t.Fatal(err)
				}
			}
			opts := Options{AllowPartial: true}
			if tc.mode == ModeCI {
				g, err := BuildGrouped(termsOf, 2, testAnalyzer())
				if err != nil {
					t.Fatal(err)
				}
				if err := recep.SetupCentralIndex(g); err != nil {
					t.Fatal(err)
				}
				// Expand every group so the dead librarian's documents are
				// nominated and its failure exercised.
				opts.KPrime = int(g.NumGroups())
			}
			res, err := recep.Query(tc.mode, "shared", 30, opts)
			if err != nil {
				t.Fatalf("partial query: %v", err)
			}
			if !res.Trace.Degraded {
				t.Fatal("Trace.Degraded not set")
			}
			if len(res.Trace.Failures) != 1 {
				t.Fatalf("Failures = %+v, want exactly one", res.Trace.Failures)
			}
			f := res.Trace.Failures[0]
			if f.Librarian != "ZIFF" || f.Phase != PhaseRank || f.Attempts != 1 || f.Err == nil {
				t.Fatalf("failure = %+v", f)
			}
			if len(res.Answers) == 0 {
				t.Fatal("no answers from survivors")
			}
			survivors := map[string]bool{}
			for _, a := range res.Answers {
				if a.Librarian == "ZIFF" {
					t.Fatal("answer from dead librarian")
				}
				survivors[a.Librarian] = true
			}
			if len(survivors) != 3 {
				t.Fatalf("answers from %d survivors, want 3", len(survivors))
			}
			if got := res.Trace.FailedLibrarians(PhaseRank); len(got) != 1 || got[0] != "ZIFF" {
				t.Fatalf("FailedLibrarians = %v", got)
			}
		})
	}
}

// TestPartialNotAllowedStillFails pins backward compatibility: without
// AllowPartial a dead librarian fails the query, naming the librarian, and
// the failure is still recorded in the trace for diagnosis.
func TestPartialNotAllowedStillFails(t *testing.T) {
	recep, _ := partialFixture(t, 1)
	_, err := recep.Query(ModeCN, "shared", 10, Options{})
	if err == nil {
		t.Fatal("dead librarian without AllowPartial: want error")
	}
	if !strings.Contains(err.Error(), "ZIFF") {
		t.Fatalf("error should name the dead librarian: %v", err)
	}
}

// TestMinLibrariansGate: a partial result needs at least MinLibrarians
// surviving answers in the rank phase.
func TestMinLibrariansGate(t *testing.T) {
	recep, _ := partialFixture(t, 1)
	if _, err := recep.Query(ModeCN, "shared", 10, Options{MinLibrarians: 4}); err == nil {
		t.Fatal("3 survivors with MinLibrarians 4: want error")
	}
	res, err := recep.Query(ModeCN, "shared", 10, Options{MinLibrarians: 3})
	if err != nil {
		t.Fatalf("3 survivors with MinLibrarians 3: %v", err)
	}
	if !res.Trace.Degraded || len(res.Answers) == 0 {
		t.Fatalf("degraded=%v answers=%d", res.Trace.Degraded, len(res.Answers))
	}
}

// TestRetryRecoversTimedOutLibrarian: a librarian that times out on attempt
// 1 and answers on attempt 2 contributes to the final ranking, with no
// failure recorded and the extra attempt visible in the trace.
func TestRetryRecoversTimedOutLibrarian(t *testing.T) {
	a := testAnalyzer()
	good, flaky := buildFailureLibs(t)
	goodDialer := librarian.NewInProcessDialer([]*librarian.Librarian{good}, simnet.LinkConfig{})
	dialer := simnet.MapDialer{
		"good": func() (net.Conn, error) { return goodDialer.Dial("good") },
		"bad":  timeoutOnceDialer(flaky),
	}
	recep, err := Connect(dialer, []string{"good", "bad"}, Config{Analyzer: a})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		recep.Close()
		goodDialer.Wait()
	}()
	res, err := recep.Query(ModeCN, "librarian", 10, Options{
		Timeout: 200 * time.Millisecond,
		Retries: 1,
		Backoff: time.Millisecond,
	})
	if err != nil {
		t.Fatalf("retry should recover the flaky librarian: %v", err)
	}
	if res.Trace.Degraded || len(res.Trace.Failures) != 0 {
		t.Fatalf("recovered query marked degraded: %+v", res.Trace)
	}
	var fromFlaky bool
	for _, ans := range res.Answers {
		if ans.Librarian == "bad" {
			fromFlaky = true
		}
	}
	if !fromFlaky {
		t.Fatal("recovered librarian did not contribute to the ranking")
	}
	if got := res.Trace.RetryAttempts(); got != 1 {
		t.Fatalf("RetryAttempts = %d, want 1", got)
	}
	attempts := 0
	for _, c := range res.Trace.Calls {
		if c.Phase == PhaseRank && c.Librarian == "bad" {
			attempts++
		}
	}
	if attempts != 2 {
		t.Fatalf("rank calls for flaky librarian = %d, want 2 (timeout + retry)", attempts)
	}
}

// TestDeadlineMarksConnDirtyAndResyncs pins the stream-resync fix: after a
// deadline error leaves a request half-written, the connection must not be
// reused — the next query redials and succeeds with clean framing instead of
// failing on garbage MsgTypes.
func TestDeadlineMarksConnDirtyAndResyncs(t *testing.T) {
	a := testAnalyzer()
	good, flaky := buildFailureLibs(t)
	goodDialer := librarian.NewInProcessDialer([]*librarian.Librarian{good}, simnet.LinkConfig{})
	dialer := simnet.MapDialer{
		"good": func() (net.Conn, error) { return goodDialer.Dial("good") },
		"bad":  timeoutOnceDialer(flaky),
	}
	recep, err := Connect(dialer, []string{"good", "bad"}, Config{Analyzer: a})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		recep.Close()
		goodDialer.Wait()
	}()
	// Query 1: the deadline trips mid-exchange and, with no retries
	// configured, fails the query.
	if _, err := recep.Query(ModeCN, "librarian", 5, Options{Timeout: 100 * time.Millisecond}); err == nil {
		t.Fatal("timed-out query without retries: want error")
	}
	// Query 2: the desynced stream is replaced, not reused.
	res, err := recep.Query(ModeCN, "librarian", 5, Options{})
	if err != nil {
		t.Fatalf("query after resync: %v", err)
	}
	var fromFlaky bool
	for _, ans := range res.Answers {
		if ans.Librarian == "bad" {
			fromFlaky = true
		}
	}
	if !fromFlaky {
		t.Fatal("redialled librarian did not answer after resync")
	}
}

func TestQueryTimeout(t *testing.T) {
	corpus, order := smallCorpus(t)
	a := testAnalyzer()
	var libs []*librarian.Librarian
	for _, name := range order {
		lib, err := librarian.Build(name, corpus[name], librarian.BuildOptions{Analyzer: a})
		if err != nil {
			t.Fatal(err)
		}
		libs = append(libs, lib)
	}
	// Links with 200ms one-way latency: a 20ms query deadline must trip.
	dialer := librarian.NewInProcessDialer(libs, simnet.LinkConfig{Latency: 200 * time.Millisecond})
	recep, err := Connect(dialer, order, Config{Analyzer: a})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		recep.Close()
		dialer.Wait()
	}()
	if _, err := recep.Query(ModeCN, "alpha", 5, Options{Timeout: 20 * time.Millisecond}); err == nil {
		t.Fatal("20ms deadline over 200ms links: want timeout error")
	}
	// Without a deadline (or with a generous one) the same query succeeds.
	res, err := recep.Query(ModeCN, "alpha", 5, Options{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatalf("generous deadline: %v", err)
	}
	if len(res.Answers) == 0 {
		t.Fatal("no answers after deadline recovery")
	}
}
