package core

import (
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"teraphim/internal/librarian"
	"teraphim/internal/protocol"
	"teraphim/internal/simnet"
	"teraphim/internal/store"
)

// haltAfter serves a real librarian for n messages, then slams the
// connection shut — simulating a mid-session librarian crash.
func haltAfter(lib *librarian.Librarian, n int) func() (net.Conn, error) {
	return func() (net.Conn, error) {
		client, server := net.Pipe()
		go func() {
			defer server.Close()
			for i := 0; i < n; i++ {
				msg, _, err := protocol.ReadMessage(server)
				if err != nil {
					return
				}
				reply := librarianHandle(lib, msg)
				if _, err := protocol.WriteMessage(server, reply); err != nil {
					return
				}
			}
		}()
		return client, nil
	}
}

// librarianHandle proxies one message through a real librarian via an
// internal pipe session.
func librarianHandle(lib *librarian.Librarian, msg protocol.Message) protocol.Message {
	c1, c2 := net.Pipe()
	done := make(chan protocol.Message, 1)
	go func() {
		defer c1.Close()
		_, _ = protocol.WriteMessage(c1, msg)
		reply, _, err := protocol.ReadMessage(c1)
		if err != nil {
			reply = &protocol.ErrorReply{Message: err.Error()}
		}
		done <- reply
	}()
	_ = lib.ServeConn(c2)
	c2.Close()
	return <-done
}

func buildFailureLibs(t *testing.T) (*librarian.Librarian, *librarian.Librarian) {
	t.Helper()
	a := testAnalyzer()
	good, err := librarian.Build("good", []store.Document{
		{Title: "g0", Text: "stable reliable librarian serving documents"},
	}, librarian.BuildOptions{Analyzer: a})
	if err != nil {
		t.Fatal(err)
	}
	bad, err := librarian.Build("bad", []store.Document{
		{Title: "b0", Text: "flaky librarian that will crash mid session"},
	}, librarian.BuildOptions{Analyzer: a})
	if err != nil {
		t.Fatal(err)
	}
	return good, bad
}

func TestLibrarianCrashMidSessionSurfacesError(t *testing.T) {
	good, bad := buildFailureLibs(t)
	goodDialer := librarian.NewInProcessDialer([]*librarian.Librarian{good}, simnet.LinkConfig{})
	dialer := simnet.MapDialer{
		"good": func() (net.Conn, error) { return goodDialer.Dial("good") },
		// The bad librarian answers exactly one message (the Hello) and
		// then dies.
		"bad": haltAfter(bad, 1),
	}
	recep, err := Connect(dialer, []string{"good", "bad"}, Config{Analyzer: testAnalyzer()})
	if err != nil {
		t.Fatalf("connect should succeed (Hello is answered): %v", err)
	}
	defer recep.Close()

	_, err = recep.Query(ModeCN, "librarian", 5, Options{})
	if err == nil {
		t.Fatal("query against crashed librarian: want error")
	}
	if !strings.Contains(err.Error(), "bad") {
		t.Fatalf("error should name the failed librarian: %v", err)
	}
}

func TestConnectFailsWhenLibrarianUnreachable(t *testing.T) {
	dialer := simnet.MapDialer{
		"gone": func() (net.Conn, error) { return nil, errors.New("connection refused") },
	}
	if _, err := Connect(dialer, []string{"gone"}, Config{}); err == nil {
		t.Fatal("unreachable librarian: want error")
	}
}

func TestConnectFailsOnGarbageHello(t *testing.T) {
	dialer := simnet.MapDialer{
		"garbage": func() (net.Conn, error) {
			client, server := net.Pipe()
			go func() {
				defer server.Close()
				// Read the Hello, reply with nonsense bytes.
				if _, _, err := protocol.ReadMessage(server); err != nil {
					return
				}
				_, _ = server.Write([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
			}()
			return client, nil
		},
	}
	if _, err := Connect(dialer, []string{"garbage"}, Config{}); err == nil {
		t.Fatal("garbage Hello reply: want error")
	}
}

func TestQueryAfterCloseFails(t *testing.T) {
	corpus, order := smallCorpus(t)
	f := newFixture(t, corpus, order)
	// Close underneath, then query.
	if err := f.recep.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.recep.Query(ModeCN, "alpha", 5, Options{}); err == nil {
		t.Fatal("query on closed receptionist: want error")
	}
	// Close is idempotent.
	if err := f.recep.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSetupVocabularyAgainstCrashedLibrarian(t *testing.T) {
	_, bad := buildFailureLibs(t)
	dialer := simnet.MapDialer{"bad": haltAfter(bad, 1)}
	recep, err := Connect(dialer, []string{"bad"}, Config{Analyzer: testAnalyzer()})
	if err != nil {
		t.Fatal(err)
	}
	defer recep.Close()
	if _, err := recep.SetupVocabulary(); err == nil {
		t.Fatal("vocabulary fetch from crashed librarian: want error")
	}
}

func TestQueryTimeout(t *testing.T) {
	corpus, order := smallCorpus(t)
	a := testAnalyzer()
	var libs []*librarian.Librarian
	for _, name := range order {
		lib, err := librarian.Build(name, corpus[name], librarian.BuildOptions{Analyzer: a})
		if err != nil {
			t.Fatal(err)
		}
		libs = append(libs, lib)
	}
	// Links with 200ms one-way latency: a 20ms query deadline must trip.
	dialer := librarian.NewInProcessDialer(libs, simnet.LinkConfig{Latency: 200 * time.Millisecond})
	recep, err := Connect(dialer, order, Config{Analyzer: a})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		recep.Close()
		dialer.Wait()
	}()
	if _, err := recep.Query(ModeCN, "alpha", 5, Options{Timeout: 20 * time.Millisecond}); err == nil {
		t.Fatal("20ms deadline over 200ms links: want timeout error")
	}
	// Without a deadline (or with a generous one) the same query succeeds.
	res, err := recep.Query(ModeCN, "alpha", 5, Options{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatalf("generous deadline: %v", err)
	}
	if len(res.Answers) == 0 {
		t.Fatal("no answers after deadline recovery")
	}
}
