package core

import (
	"errors"
	"fmt"
	"sort"
)

// MergeStrategy selects how the receptionist collates per-librarian
// rankings in CN operation, where similarity scores are computed from
// *local* statistics and are not strictly comparable across librarians.
// The paper merges at face value ("it has no basis for perturbing either
// the numeric values or the ordering"); the alternatives below are the
// classic collection-fusion baselines of Voorhees et al. (TREC-3/4),
// which need no knowledge of how scores were computed.
type MergeStrategy int

// Merge strategies.
const (
	// MergeFaceValue trusts librarian scores as-is (the paper's CN merge).
	MergeFaceValue MergeStrategy = iota + 1
	// MergeRoundRobin interleaves rankings by local rank: everyone's
	// first answer, then everyone's second, and so on. Scores are ignored;
	// librarians are visited in global-numbering order within each rank.
	MergeRoundRobin
	// MergeNormalized min–max normalises each librarian's scores to [0,1]
	// before a face-value merge, damping cross-collection scale skew.
	MergeNormalized
)

func (s MergeStrategy) String() string {
	switch s {
	case MergeFaceValue:
		return "face-value"
	case MergeRoundRobin:
		return "round-robin"
	case MergeNormalized:
		return "normalized"
	default:
		return fmt.Sprintf("MergeStrategy(%d)", int(s))
	}
}

// ErrUnknownMergeStrategy is returned for an Options.Merge value that names
// no defined strategy. Rejecting it up front — rather than letting fuse's
// default arm treat it as face value — keeps the result cache from
// fragmenting across spellings of identical behaviour (MergeStrategy(42)
// would otherwise evaluate like MergeFaceValue but cache under its own key).
var ErrUnknownMergeStrategy = errors.New("core: unknown merge strategy")

// effectiveMerge resolves the strategy a query actually applies: CN honours
// Options.Merge (zero selects the paper's face-value merge); CV and CI
// scores are already globally comparable, so Options.Merge is ignored and
// they always collate at face value. The result cache keys on this resolved
// value so option spellings that evaluate identically share an entry. A
// value outside the defined strategies is rejected with
// ErrUnknownMergeStrategy in every mode — including CV/CI, where it would
// be ignored: an out-of-range strategy is a caller bug worth surfacing, not
// a knob that happens not to matter today.
func effectiveMerge(mode Mode, opts Options) (MergeStrategy, error) {
	switch opts.Merge {
	case 0, MergeFaceValue, MergeRoundRobin, MergeNormalized:
	default:
		return 0, fmt.Errorf("%w: %v", ErrUnknownMergeStrategy, opts.Merge)
	}
	if mode != ModeCN || opts.Merge == 0 {
		return MergeFaceValue, nil
	}
	return opts.Merge, nil
}

// fuse collates per-librarian answer lists (each already sorted by
// decreasing local score) into a global top-k under the given strategy.
// lists is keyed by librarian name; order supplies deterministic librarian
// sequencing. The returned slice is freshly allocated at exactly its
// length: it never shares a backing array with the per-librarian lists or
// retains dropped candidates in hidden capacity, so callers (and the result
// cache) may mutate or hold it freely.
func fuse(strategy MergeStrategy, lists map[string][]Answer, order []string, k int) []Answer {
	switch strategy {
	case MergeRoundRobin:
		return fuseRoundRobin(lists, order, k)
	case MergeNormalized:
		return fuseFaceValue(normalizeLists(lists), k)
	default:
		return fuseFaceValue(lists, k)
	}
}

func fuseFaceValue(lists map[string][]Answer, k int) []Answer {
	var merged []Answer
	for _, answers := range lists {
		merged = append(merged, answers...)
	}
	sort.Slice(merged, func(i, j int) bool {
		if merged[i].Score != merged[j].Score {
			return merged[i].Score > merged[j].Score
		}
		return merged[i].GlobalDoc < merged[j].GlobalDoc
	})
	if len(merged) > k {
		merged = merged[:k]
	}
	return clipAnswers(merged)
}

func fuseRoundRobin(lists map[string][]Answer, order []string, k int) []Answer {
	var merged []Answer
	for rank := 0; len(merged) < k; rank++ {
		took := false
		for _, name := range order {
			answers := lists[name]
			if rank < len(answers) {
				merged = append(merged, answers[rank])
				took = true
				if len(merged) == k {
					break
				}
			}
		}
		if !took {
			break
		}
	}
	return clipAnswers(merged)
}

// clipAnswers re-allocates answers at exactly len(answers): truncation via
// merged[:k] keeps the dropped candidates alive in hidden capacity, where a
// caller's append would silently overwrite them — and, once results are
// cached and shared, silently corrupt another caller's view.
func clipAnswers(answers []Answer) []Answer {
	if answers == nil || len(answers) == cap(answers) {
		return answers
	}
	out := make([]Answer, len(answers))
	copy(out, answers)
	return out
}

// normalizeLists rescales each librarian's scores to [0,1] by min–max; a
// single-answer list maps to 1.
func normalizeLists(lists map[string][]Answer) map[string][]Answer {
	out := make(map[string][]Answer, len(lists))
	for name, answers := range lists {
		if len(answers) == 0 {
			out[name] = nil
			continue
		}
		lo, hi := answers[0].Score, answers[0].Score
		for _, a := range answers {
			if a.Score < lo {
				lo = a.Score
			}
			if a.Score > hi {
				hi = a.Score
			}
		}
		scaled := make([]Answer, len(answers))
		for i, a := range answers {
			if hi > lo {
				a.Score = (a.Score - lo) / (hi - lo)
			} else {
				a.Score = 1
			}
			scaled[i] = a
		}
		out[name] = scaled
	}
	return out
}
