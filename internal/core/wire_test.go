package core

import (
	"bytes"
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"teraphim/internal/librarian"
	"teraphim/internal/obs"
	"teraphim/internal/protocol"
	"teraphim/internal/simnet"
	"teraphim/internal/store"
)

// buildRecep wires a receptionist over corpus with the given config. mutate,
// when non-nil, adjusts the librarians before the pool's setup Hello runs —
// mixed-fleet tests use it to withdraw feature support.
func buildRecep(t *testing.T, corpus map[string][]store.Document, order []string, cfg Config, mutate func([]*librarian.Librarian)) *Receptionist {
	t.Helper()
	a := testAnalyzer()
	var libs []*librarian.Librarian
	for _, name := range order {
		lib, err := librarian.Build(name, corpus[name], librarian.BuildOptions{Analyzer: a})
		if err != nil {
			t.Fatal(err)
		}
		libs = append(libs, lib)
	}
	if mutate != nil {
		mutate(libs)
	}
	dialer := librarian.NewInProcessDialer(libs, simnet.LinkConfig{})
	cfg.Analyzer = a
	recep, err := Connect(dialer, order, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		recep.Close()
		dialer.Wait()
	})
	return recep
}

// eachReplica visits every replica of every librarian in the pool.
func eachReplica(p *Pool, visit func(lib string, rep *replica)) {
	for name, rt := range p.routers {
		for _, rep := range *rt.set.Load() {
			visit(name, rep)
		}
	}
}

// TestWireGoldenParity pins the tentpole's safety property: the pipelined
// and batched wires are transports, not semantics — every mode must return
// bit-identical answers whether frames are tagged, coalesced, or the seed's
// one-exchange-per-connection framing.
func TestWireGoldenParity(t *testing.T) {
	corpus, order := smallCorpus(t)
	seed := buildRecep(t, corpus, order, Config{WireFeatures: protocol.FeatureNone}, nil)
	piped := buildRecep(t, corpus, order, Config{}, nil)
	for _, r := range []*Receptionist{seed, piped} {
		if _, err := r.SetupVocabulary(); err != nil {
			t.Fatal(err)
		}
		if _, err := r.SetupCentralIndexRemote(10); err != nil {
			t.Fatal(err)
		}
	}
	// The seed wire negotiated nothing; the default wire negotiated the
	// pipelined framing on every replica.
	eachReplica(seed.Pool(), func(lib string, rep *replica) {
		if w := rep.wire.Load(); w != wireUnknown && w != wireLegacy {
			t.Errorf("%s %s: FeatureNone pool negotiated wire state %d", lib, rep.endpoint, w)
		}
	})
	eachReplica(piped.Pool(), func(lib string, rep *replica) {
		if w := rep.wire.Load(); w != wirePipelined {
			t.Errorf("%s %s: default pool wire state %d, want pipelined", lib, rep.endpoint, w)
		}
	})

	queries := []string{"alpha federal wallstreet", "federal fiscal", "widget", "alpha w1 w2 w3"}
	for _, tc := range []struct {
		mode Mode
		opts Options
	}{
		{ModeCN, Options{}},
		{ModeCN, Options{BatchWindow: 2 * time.Millisecond}},
		{ModeCV, Options{}},
		{ModeCV, Options{BatchWindow: 2 * time.Millisecond}},
		{ModeCI, Options{KPrime: 2}},
	} {
		for _, q := range queries {
			want, err := seed.Query(tc.mode, q, 10, Options{KPrime: tc.opts.KPrime})
			if err != nil {
				t.Fatalf("%v %q seed wire: %v", tc.mode, q, err)
			}
			got, err := piped.Query(tc.mode, q, 10, tc.opts)
			if err != nil {
				t.Fatalf("%v %q piped wire: %v", tc.mode, q, err)
			}
			if !answersEqual(want.Answers, got.Answers) {
				t.Fatalf("%v %q (batch window %v): pipelined wire diverged from seed\nseed %+v\npiped %+v",
					tc.mode, q, tc.opts.BatchWindow, want.Answers, got.Answers)
			}
			piped.InvalidateCache()
			seed.InvalidateCache()
		}
	}
	if rt := piped.Metrics().WireRoundTrips(); rt == 0 {
		t.Error("default wire recorded no round trips")
	}
	if in := piped.Metrics().WireBytesIn(); in == 0 {
		t.Error("default wire recorded no inbound bytes")
	}
}

// TestWireGoldenParityUnderFaults re-checks parity when the exchanges take
// the ugly paths: a killed replica forcing retries, and hedges racing the
// survivors. The answers must still match the seed wire exactly.
func TestWireGoldenParityUnderFaults(t *testing.T) {
	corpus, order := smallCorpus(t)
	seed := newReplicaFixture(t, corpus, order, 2, Config{WireFeatures: protocol.FeatureNone})
	piped := newReplicaFixture(t, corpus, order, 2, Config{})
	for _, name := range order {
		seed.chaos.Kill(name + "#0")
		piped.chaos.Kill(name + "#0")
	}
	for i, q := range []string{"alpha federal wallstreet", "fiscal widget", "alpha avalanche"} {
		opts := Options{Retries: 2, Backoff: time.Millisecond}
		if i%2 == 1 {
			opts.HedgeAfter = 0.5
		}
		want, err := seed.pool.Query(ModeCN, q, 10, opts)
		if err != nil {
			t.Fatalf("%q seed wire: %v", q, err)
		}
		got, err := piped.pool.Query(ModeCN, q, 10, opts)
		if err != nil {
			t.Fatalf("%q piped wire: %v", q, err)
		}
		if !answersEqual(want.Answers, got.Answers) {
			t.Fatalf("%q: pipelined wire diverged from seed under faults", q)
		}
	}
	assertNoLeakedConns(t, piped.pool)
}

// TestMixedFleetDegradesToSeedFraming pins the rollout story: a pool asking
// for everything against librarians supporting nothing must settle on the
// seed framing, answer correctly, and quietly ignore batch windows (no
// grant, no coalescing).
func TestMixedFleetDegradesToSeedFraming(t *testing.T) {
	corpus, order := smallCorpus(t)
	old := buildRecep(t, corpus, order, Config{}, func(libs []*librarian.Librarian) {
		for _, lib := range libs {
			lib.SupportFeatures(0)
		}
	})
	modern := buildRecep(t, corpus, order, Config{}, nil)
	eachReplica(old.Pool(), func(lib string, rep *replica) {
		if w := rep.wire.Load(); w != wireLegacy {
			t.Errorf("%s %s: wire state %d, want legacy after zero grant", lib, rep.endpoint, w)
		}
	})
	for _, q := range []string{"alpha federal wallstreet", "federal fiscal"} {
		want, err := modern.Query(ModeCN, q, 10, Options{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := old.Query(ModeCN, q, 10, Options{BatchWindow: 2 * time.Millisecond})
		if err != nil {
			t.Fatalf("%q on degraded fleet: %v", q, err)
		}
		if !answersEqual(want.Answers, got.Answers) {
			t.Fatalf("%q: degraded fleet diverged from modern fleet", q)
		}
		for _, c := range got.Trace.Calls {
			if c.BatchSize != 0 {
				t.Fatalf("unbatchable fleet produced a batched call: %+v", c)
			}
		}
	}
}

// TestPipelineSharesOneConnection is the capacity-multiplication pin: with
// one connection per librarian and the default depth, 16 concurrent queries
// all complete over that single connection per replica — the seed wire
// would need 16.
func TestPipelineSharesOneConnection(t *testing.T) {
	corpus, order := smallCorpus(t)
	f := newReplicaFixture(t, corpus, order, 1, Config{MaxConnsPerLibrarian: 1})
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := f.pool.Query(ModeCN, "alpha federal wallstreet", 5, Options{})
			errs <- err
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	eachReplica(f.pool, func(lib string, rep *replica) {
		rep.pipes.mu.Lock()
		n := len(rep.pipes.conns)
		rep.pipes.mu.Unlock()
		if n > 1 {
			t.Errorf("%s %s: %d pipelined connections, want at most 1", lib, rep.endpoint, n)
		}
	})
	assertNoLeakedConns(t, f.pool)
}

// TestPipeDemuxMisbehavingPeer drives a pipelined connection against a
// hand-rolled peer: replies for unknown tags and duplicate replies are
// discarded without disturbing other exchanges, while a corrupt frame kills
// the connection and fails what is in flight.
func TestPipeDemuxMisbehavingPeer(t *testing.T) {
	newPipe := func(t *testing.T) (*pipeConn, net.Conn) {
		t.Helper()
		pool := &Pool{metrics: newMetrics(obs.NewRegistry()), done: make(chan struct{})}
		rep := newReplica("X#0", 1, 8)
		client, server := net.Pipe()
		pc := newPipeConn(pool, rep, client, 8)
		rep.pipes.mu.Lock()
		rep.pipes.conns = append(rep.pipes.conns, pc)
		rep.pipes.mu.Unlock()
		t.Cleanup(func() {
			pc.fail(ErrPoolClosed, false)
			server.Close()
		})
		return pc, server
	}

	t.Run("unknown and duplicate tags are discarded", func(t *testing.T) {
		pc, server := newPipe(t)
		rd := &protocol.Reader{R: server, Tagged: true}
		wr := &protocol.Writer{W: server, Tagged: true}
		go func() {
			msg, tag, _, err := rd.Read()
			if err != nil {
				return
			}
			if _, ok := msg.(*protocol.VocabRequest); !ok {
				return
			}
			// An unrelated tag, the real reply, then the same tag again.
			_, _ = wr.Write(tag+1000, &protocol.ErrorReply{Message: "misrouted"})
			_, _ = wr.Write(tag, &protocol.VocabReply{Terms: []protocol.TermStat{{Term: "t", FT: 1}}})
			_, _ = wr.Write(tag, &protocol.ErrorReply{Message: "duplicate"})
			// A second exchange proves the connection survived the garbage.
			msg, tag, _, err = rd.Read()
			if err != nil {
				return
			}
			_, _ = wr.Write(tag, &protocol.VocabReply{Terms: []protocol.TermStat{{Term: "u", FT: 2}}})
		}()
		_, reply, err := pc.exchange(context.Background(), time.Second, "X", PhaseSetup, &protocol.VocabRequest{})
		if err != nil {
			t.Fatalf("first exchange: %v", err)
		}
		vr, ok := reply.(*protocol.VocabReply)
		if !ok || len(vr.Terms) != 1 || vr.Terms[0].Term != "t" {
			t.Fatalf("first exchange got %#v, want the tag-matched VocabReply", reply)
		}
		_, reply, err = pc.exchange(context.Background(), time.Second, "X", PhaseSetup, &protocol.VocabRequest{})
		if err != nil {
			t.Fatalf("exchange after garbage frames: %v", err)
		}
		if vr, ok := reply.(*protocol.VocabReply); !ok || vr.Terms[0].Term != "u" {
			t.Fatalf("second exchange got %#v", reply)
		}
	})

	t.Run("corrupt frame kills the connection", func(t *testing.T) {
		pc, server := newPipe(t)
		go func() {
			rd := &protocol.Reader{R: server, Tagged: true}
			if _, _, _, err := rd.Read(); err != nil {
				return
			}
			// A frame whose length claims more than MaxFrameSize.
			_, _ = server.Write(bytes.Repeat([]byte{0xff}, 9))
		}()
		_, _, err := pc.exchange(context.Background(), time.Second, "X", PhaseSetup, &protocol.VocabRequest{})
		if err == nil {
			t.Fatal("exchange against a corrupt peer: want error")
		}
		select {
		case <-pc.dead:
		case <-time.After(time.Second):
			t.Fatal("corrupt frame did not kill the connection")
		}
	})
}

// TestCrossClientBatching checks the receptionist-level coalescing: queries
// from concurrent clients inside one window share frames (visible as
// BatchSize in their traces) and return exactly what they would have
// unbatched.
func TestCrossClientBatching(t *testing.T) {
	corpus, order := smallCorpus(t)
	batched := buildRecep(t, corpus, order, Config{}, nil)
	plain := buildRecep(t, corpus, order, Config{WireFeatures: protocol.FeatureNone}, nil)

	queries := []string{
		"alpha federal", "wallstreet widget", "fiscal finance", "aurora avalanche",
		"alpha w1", "federal w2", "widget w3", "alpha wallstreet federal",
	}
	type outcome struct {
		q   string
		res *Result
		err error
	}
	// A start barrier lines the clients up so their rank exchanges land
	// inside one another's batch windows.
	start := make(chan struct{})
	outs := make(chan outcome, len(queries))
	for _, q := range queries {
		go func(q string) {
			<-start
			res, err := batched.Query(ModeCN, q, 10, Options{BatchWindow: 25 * time.Millisecond})
			outs <- outcome{q, res, err}
		}(q)
	}
	close(start)
	maxBatch := 0
	for range queries {
		out := <-outs
		if out.err != nil {
			t.Fatalf("%q: %v", out.q, out.err)
		}
		for _, c := range out.res.Trace.Calls {
			if c.BatchSize > maxBatch {
				maxBatch = c.BatchSize
			}
			if c.BatchSize > 0 && c.ReqType != protocol.TypeRankQuery {
				t.Errorf("%q: batched call with request type %v", out.q, c.ReqType)
			}
		}
		want, err := plain.Query(ModeCN, out.q, 10, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !answersEqual(want.Answers, out.res.Answers) {
			t.Fatalf("%q: batched answers diverged from seed wire", out.q)
		}
	}
	if maxBatch < 2 {
		t.Fatalf("8 concurrent clients in a 25ms window never shared a frame (max batch size %d)", maxBatch)
	}
	assertNoLeakedConns(t, batched.Pool())
}
