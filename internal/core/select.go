package core

import (
	"errors"
	"time"
)

// ErrSelectionNeedsVocabulary is returned by a TopR query (or
// SelectLibrarians) before SetupVocabulary has run: without per-librarian
// term statistics there is nothing to rank collections by.
var ErrSelectionNeedsVocabulary = errors.New("core: top-R selection requires SetupVocabulary")

// effectiveTopR resolves Options.TopR for one query against a federation of
// len(fed.libs) librarians: non-positive disables selection (full fan-out,
// the paper's behaviour), and larger-than-fleet values clamp to the fleet
// size — R=64 on a 4-librarian fleet behaves, and caches, exactly like R=4.
// Note R == fleet size keeps the selection path live (every librarian is
// ranked and selected) rather than short-circuiting to full fan-out; that
// is what makes the R=all golden comparison exercise the real code path.
func effectiveTopR(fed *Federation, opts Options) int {
	r := opts.TopR
	if r <= 0 {
		return 0
	}
	if n := len(fed.libs); r > n {
		return n
	}
	return r
}

// selectTopR narrows a candidate librarian set to the query's top-R by CORI
// score. candidates is the mode's own eligible set as indexes into fed.libs
// (nil means every librarian); the result is their names in global-numbering
// order. The time spent ranking collections is charged to the analyze stage
// — it is central pre-contact work, exactly like global weighting.
//
// Selection state rides the vocabulary snapshot: callers pass the vocabState
// they already loaded so weighting, eligibility and selection agree even if
// a setup re-run lands mid-query. e.topR must be > 0 (callers gate on it).
func (e *exec) selectTopR(trace *Trace, vs *vocabState, terms []string, candidates []int) ([]string, error) {
	start := time.Now()
	if vs == nil || vs.sel == nil {
		return nil, ErrSelectionNeedsVocabulary
	}
	pool := len(candidates)
	if candidates == nil {
		pool = len(e.fed.libs)
	}
	picked := vs.sel.Top(terms, candidates, e.topR)
	names := make([]string, len(picked))
	for i, idx := range picked {
		names[i] = e.fed.libs[idx].name
	}
	trace.LibrariansSelected = len(names)
	trace.Stages.Analyze += time.Since(start)
	if m := e.pool.metrics; m != nil {
		m.selectionQueries.Inc()
		// Skipped counts candidates that selection ranked out — librarians a
		// mode's own eligibility filter already dropped are not re-counted.
		if skipped := pool - len(names); skipped > 0 {
			m.selectionSkipped.Add(uint64(skipped))
		}
	}
	return names, nil
}
