package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"teraphim/internal/protocol"
)

// Cross-client query batching.
//
// The paper's cost model charges per network contact, so under concurrency
// the receptionist can do better than one frame per query: rank-phase
// requests bound for the same librarian that arrive within Options.
// BatchWindow of each other are coalesced into one BatchQuery frame and
// answered by one BatchReply — round trips per query fall with the offered
// load. The librarian evaluates the batched queries exactly as it would
// separately (same scratch, same order-independent per-query evaluation), so
// batching cannot change results, and failure stays per-query: one bad query
// gets its ErrorReply without poisoning its batch-mates.

// maxBatchItems seals a batch early: a full group dispatches immediately
// instead of waiting out its window, bounding both frame size and the
// latency a stampede adds to its first arrival.
const maxBatchItems = 64

// batcher coalesces concurrent rank-phase requests per librarian. One lives
// on the Pool when batching is requested; its groups form and dissolve per
// window, leaving no state between idle periods.
type batcher struct {
	pool *Pool

	mu sync.Mutex
	// open holds the group currently accepting requests for each librarian.
	open map[string]*batchGroup
}

func newBatcher(p *Pool) *batcher {
	return &batcher{pool: p, open: make(map[string]*batchGroup)}
}

// batchItem is one member query riding a batch: its request going in, and
// its slice of the outcome coming back.
type batchItem struct {
	req     protocol.Message
	timeout time.Duration
	done    chan struct{} // closed when calls/reply/err are set
	calls   []Call
	reply   protocol.Message
	err     error
}

// batchGroup is the set of queries that will share one frame. The first
// arrival is the leader: it waits out the window (or the group filling up),
// seals the group, and dispatches it.
type batchGroup struct {
	items []*batchItem
	full  chan struct{} // closed when the group hits maxBatchItems
}

// batchable reports whether this exchange should go through the batcher:
// batching requested and granted by the librarian, a window configured, and
// a rank-phase query type worth coalescing (setup and fetch traffic is
// per-connection or bulky; only the per-query fan-out messages batch).
func (e *exec) batchable(name string, phase Phase, req protocol.Message) bool {
	if e.pool.batch == nil || e.policy.batchWindow <= 0 || phase != PhaseRank {
		return false
	}
	switch req.(type) {
	case *protocol.RankQuery, *protocol.ScoreDocs:
	default:
		return false
	}
	li, ok := e.fed.byName[name]
	return ok && li.hello != nil && li.hello.Features.Has(protocol.FeatureBatching)
}

// do runs one request through the batcher: join (or found) the librarian's
// open group, let the leader collect peers for up to one window, and wait for
// the dispatched frame's outcome. The caller's retry policy wraps this call —
// a retryable failure re-enters the batcher and may land in a fresh batch.
func (b *batcher) do(e *exec, name string, req protocol.Message) ([]Call, protocol.Message, error) {
	item := &batchItem{req: req, timeout: e.policy.timeout, done: make(chan struct{})}
	b.mu.Lock()
	g := b.open[name]
	leader := g == nil
	if leader {
		g = &batchGroup{full: make(chan struct{})}
		b.open[name] = g
	}
	g.items = append(g.items, item)
	if len(g.items) >= maxBatchItems {
		// Seal: the group leaves the open map (late arrivals found a fresh
		// one) and the leader is woken to dispatch immediately.
		delete(b.open, name)
		close(g.full)
	}
	b.mu.Unlock()

	if leader {
		timer := time.NewTimer(e.policy.batchWindow)
		select {
		case <-timer.C:
		case <-g.full:
		case <-e.ctx.Done():
			// The leader's own query was abandoned, but peers may have
			// joined: seal and dispatch for them regardless.
		}
		timer.Stop()
		b.mu.Lock()
		if b.open[name] == g {
			delete(b.open, name)
		}
		items := append([]*batchItem(nil), g.items...)
		b.mu.Unlock()
		// Dispatch detached: no single member's context may cancel the
		// frame its batch-mates are riding.
		go b.dispatch(e, name, items)
	}

	select {
	case <-item.done:
	case <-e.ctx.Done():
		return nil, nil, e.ctx.Err()
	}
	return item.calls, item.reply, item.err
}

// dispatch ships one sealed group and distributes the outcome. It runs under
// context.Background with the members' largest timeout: the exchange itself
// reuses attempt(), so replica routing, pipelining and health reporting all
// behave exactly as for an unbatched exchange.
func (b *batcher) dispatch(e *exec, name string, items []*batchItem) {
	var timeout time.Duration
	for _, it := range items {
		if it.timeout > timeout {
			timeout = it.timeout
		}
	}
	de := &exec{ctx: context.Background(), fed: e.fed, pool: e.pool, policy: callPolicy{timeout: timeout}}

	if len(items) == 1 {
		// A batch of one ships the original message: bit-identical to the
		// unbatched wire, so an idle receptionist pays zero overhead.
		it := items[0]
		it.calls, it.reply, _, it.err = de.attempt(de.ctx, name, PhaseRank, it.req, "", false, nil)
		close(it.done)
		return
	}

	bq := &protocol.BatchQuery{Items: make([]protocol.Message, len(items))}
	for i, it := range items {
		bq.Items[i] = it.req
	}
	calls, reply, _, err := de.attempt(de.ctx, name, PhaseRank, bq, "", false, nil)
	var frame Call
	if len(calls) > 0 {
		frame = calls[len(calls)-1]
	}
	n := len(items)
	if err == nil {
		br, ok := reply.(*protocol.BatchReply)
		if !ok || len(br.Items) != n || len(br.Sizes) != n || len(bq.Sizes) != n {
			// A malformed batch reply is a completed exchange that cannot be
			// attributed to its queries; re-sending would reproduce it.
			err = &protocol.RemoteError{Message: fmt.Sprintf(
				"librarian %q answered a %d-query batch with a malformed %v", name, n, reply.Type())}
		} else {
			reqOverhead := frame.ReqBytes - sum(bq.Sizes)
			respOverhead := frame.RespBytes - sum(br.Sizes)
			for i, it := range items {
				call := Call{
					Librarian: name, Replica: frame.Replica, Phase: PhaseRank,
					ReqType:   it.req.Type(),
					ReqBytes:  bq.Sizes[i] + shareOverhead(reqOverhead, n, i),
					RespBytes: br.Sizes[i] + shareOverhead(respOverhead, n, i),
					Ship:      frame.Ship, Wait: frame.Wait, BatchSize: n,
				}
				switch m := br.Items[i].(type) {
				case *protocol.ErrorReply:
					it.err = &protocol.RemoteError{Message: m.Message}
				case *protocol.RankReply:
					call.LibStats = m.Stats
					it.reply = br.Items[i]
				default:
					it.reply = br.Items[i]
				}
				it.calls = []Call{call}
				close(it.done)
			}
			return
		}
	}
	// Transport failure (or malformed reply): every member failed together.
	// Each gets its own Call record so the trace still shows one attempt per
	// query, with this query's request type on it.
	for _, it := range items {
		if len(calls) > 0 {
			call := frame
			call.ReqType = it.req.Type()
			call.BatchSize = n
			it.calls = []Call{call}
		}
		it.err = err
		close(it.done)
	}
}

func sum(xs []int) int {
	n := 0
	for _, x := range xs {
		n += x
	}
	return n
}

// shareOverhead splits the batch framing overhead evenly across the n
// members, with the remainder charged to member 0.
func shareOverhead(total, n, i int) int {
	if total <= 0 {
		return 0
	}
	s := total / n
	if i == 0 {
		s += total % n
	}
	return s
}
