package core

import (
	"bytes"
	"math"
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"teraphim/internal/index"
	"teraphim/internal/librarian"
	"teraphim/internal/search"
	"teraphim/internal/simnet"
	"teraphim/internal/store"
	"teraphim/internal/textproc"
)

// testAnalyzer is shared by librarians, receptionist and MS baseline.
func testAnalyzer() *textproc.Analyzer {
	return textproc.NewAnalyzer(textproc.WithoutStopwords(), textproc.WithoutStemming())
}

// fixture bundles a small distributed deployment plus its MS equivalent.
type fixture struct {
	recep   *Receptionist
	mono    *MonoServer
	dialer  *librarian.InProcessDialer
	corpus  map[string][]store.Document
	order   []string
	termsOf [][]string // analysed terms in global order, for grouped index
}

func newFixture(t testing.TB, corpus map[string][]store.Document, order []string) *fixture {
	t.Helper()
	a := testAnalyzer()
	var libs []*librarian.Librarian
	var allDocs []store.Document
	var keys []string
	var termsOf [][]string
	for _, name := range order {
		lib, err := librarian.Build(name, corpus[name], librarian.BuildOptions{Analyzer: a})
		if err != nil {
			t.Fatal(err)
		}
		libs = append(libs, lib)
		for i, d := range corpus[name] {
			allDocs = append(allDocs, d)
			keys = append(keys, name+":"+strconv.Itoa(i))
			termsOf = append(termsOf, a.Terms(nil, d.Text))
		}
	}
	dialer := librarian.NewInProcessDialer(libs, simnet.LinkConfig{})
	recep, err := Connect(dialer, order, Config{Analyzer: a})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		recep.Close()
		dialer.Wait()
	})

	// MS baseline over the concatenated collection.
	b := index.NewBuilder()
	for _, terms := range termsOf {
		b.Add(terms)
	}
	ix, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.Build(allDocs)
	if err != nil {
		t.Fatal(err)
	}
	mono, err := NewMonoServer(search.NewEngine(ix, a), st, keys)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{recep: recep, mono: mono, dialer: dialer, corpus: corpus, order: order, termsOf: termsOf}
}

// smallCorpus builds a deterministic corpus with topical skew across three
// librarians.
func smallCorpus(t testing.TB) (map[string][]store.Document, []string) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	vocab := make([]string, 400)
	for i := range vocab {
		vocab[i] = "w" + strconv.Itoa(i)
	}
	topicTerms := map[string][]string{
		"AP":  {"alpha", "avalanche", "aurora"},
		"FR":  {"federal", "finance", "fiscal"},
		"WSJ": {"wallstreet", "widget", "wholesale"},
	}
	corpus := map[string][]store.Document{}
	order := []string{"AP", "FR", "WSJ"}
	for _, name := range order {
		n := 40 + rng.Intn(20)
		for d := 0; d < n; d++ {
			var sb strings.Builder
			topical := rng.Intn(4) == 0
			for i := 0; i < 30+rng.Intn(40); i++ {
				if topical && rng.Intn(3) == 0 {
					sb.WriteString(topicTerms[name][rng.Intn(3)])
				} else {
					sb.WriteString(vocab[rng.Intn(len(vocab))])
				}
				sb.WriteString(" ")
			}
			corpus[name] = append(corpus[name], store.Document{
				ID:    uint32(d),
				Title: name + "-" + strconv.Itoa(d),
				Text:  strings.TrimSpace(sb.String()),
			})
		}
	}
	return corpus, order
}

func TestConnectAndGlobalNumbering(t *testing.T) {
	corpus, order := smallCorpus(t)
	f := newFixture(t, corpus, order)
	r := f.recep

	if got := r.Librarians(); len(got) != 3 || got[0] != "AP" {
		t.Fatalf("Librarians = %v", got)
	}
	var want uint32
	for _, name := range order {
		want += uint32(len(corpus[name]))
	}
	if r.TotalDocs() != want {
		t.Fatalf("TotalDocs = %d, want %d", r.TotalDocs(), want)
	}
	// Round-trip every (librarian, local) through global numbering.
	for _, name := range order {
		for i := range corpus[name] {
			g, err := r.GlobalDoc(name, uint32(i))
			if err != nil {
				t.Fatal(err)
			}
			name2, local2, err := r.ResolveGlobal(g)
			if err != nil {
				t.Fatal(err)
			}
			if name2 != name || local2 != uint32(i) {
				t.Fatalf("global %d resolved to %s:%d, want %s:%d", g, name2, local2, name, i)
			}
		}
	}
	if _, err := r.GlobalDoc("AP", 1<<30); err == nil {
		t.Fatal("out-of-range local doc: want error")
	}
	if _, err := r.GlobalDoc("nope", 0); err == nil {
		t.Fatal("unknown librarian: want error")
	}
	if _, _, err := r.ResolveGlobal(want); err == nil {
		t.Fatal("out-of-range global doc: want error")
	}
}

// TestCVIdenticalToMS pins the paper's central effectiveness claim: "with
// vocabularies held at the receptionist, effectiveness is identical to that
// of a MS system" — CV scores equal MS scores document for document.
func TestCVIdenticalToMS(t *testing.T) {
	corpus, order := smallCorpus(t)
	f := newFixture(t, corpus, order)
	if _, err := f.recep.SetupVocabulary(); err != nil {
		t.Fatal(err)
	}
	queries := []string{
		"alpha federal wallstreet",
		"w1 w2 w3",
		"avalanche aurora",
		"widget wholesale w100",
	}
	for _, q := range queries {
		ms, err := f.mono.Query(q, 15, Options{})
		if err != nil {
			t.Fatal(err)
		}
		cv, err := f.recep.Query(ModeCV, q, 15, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(ms.Answers) != len(cv.Answers) {
			t.Fatalf("query %q: MS %d answers, CV %d", q, len(ms.Answers), len(cv.Answers))
		}
		for i := range ms.Answers {
			if ms.Answers[i].Key() != cv.Answers[i].Key() {
				t.Fatalf("query %q rank %d: MS %s, CV %s", q, i, ms.Answers[i].Key(), cv.Answers[i].Key())
			}
			if math.Abs(ms.Answers[i].Score-cv.Answers[i].Score) > 1e-9 {
				t.Fatalf("query %q rank %d: MS score %g, CV %g", q, i, ms.Answers[i].Score, cv.Answers[i].Score)
			}
		}
	}
}

func TestCNReturnsAnswersWithLocalStats(t *testing.T) {
	corpus, order := smallCorpus(t)
	f := newFixture(t, corpus, order)
	res, err := f.recep.Query(ModeCN, "alpha federal", 10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) == 0 {
		t.Fatal("CN returned nothing")
	}
	if res.Trace.LibrariansAsked != 3 {
		t.Fatalf("CN must ask every librarian, asked %d", res.Trace.LibrariansAsked)
	}
	if res.Trace.RoundTrips(PhaseRank) != 3 {
		t.Fatalf("CN rank round trips = %d", res.Trace.RoundTrips(PhaseRank))
	}
	// Answers sorted by decreasing score.
	for i := 1; i < len(res.Answers); i++ {
		if res.Answers[i].Score > res.Answers[i-1].Score {
			t.Fatal("CN answers not sorted")
		}
	}
}

func TestCVSkipsIrrelevantLibrarians(t *testing.T) {
	corpus, order := smallCorpus(t)
	f := newFixture(t, corpus, order)
	if _, err := f.recep.SetupVocabulary(); err != nil {
		t.Fatal(err)
	}
	// "alpha" etc. appear only in AP documents.
	res, err := f.recep.Query(ModeCV, "alpha avalanche aurora", 10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace.LibrariansAsked != 1 {
		t.Fatalf("CV asked %d librarians, want 1", res.Trace.LibrariansAsked)
	}
	for _, a := range res.Answers {
		if a.Librarian != "AP" {
			t.Fatalf("answer from %s for AP-only terms", a.Librarian)
		}
	}
	// A query with no indexed terms contacts nobody.
	res, err = f.recep.Query(ModeCV, "qqqqq zzzzz", 10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace.LibrariansAsked != 0 || len(res.Answers) != 0 {
		t.Fatalf("unknown-term CV: asked %d, answers %d", res.Trace.LibrariansAsked, len(res.Answers))
	}
}

func TestCVRequiresSetup(t *testing.T) {
	corpus, order := smallCorpus(t)
	f := newFixture(t, corpus, order)
	if _, err := f.recep.Query(ModeCV, "alpha", 5, Options{}); err == nil {
		t.Fatal("CV without SetupVocabulary: want error")
	}
}

func TestCIMatchesCVOrderingWithFullExpansion(t *testing.T) {
	corpus, order := smallCorpus(t)
	f := newFixture(t, corpus, order)
	if _, err := f.recep.SetupVocabulary(); err != nil {
		t.Fatal(err)
	}
	g, err := BuildGrouped(f.termsOf, 5, testAnalyzer())
	if err != nil {
		t.Fatal(err)
	}
	if err := f.recep.SetupCentralIndex(g); err != nil {
		t.Fatal(err)
	}
	// k' = every group: expansion covers the whole collection, so CI
	// scores must equal CV scores exactly.
	kPrime := int(g.NumGroups())
	for _, q := range []string{"alpha federal wallstreet", "w5 w6 w7"} {
		cv, err := f.recep.Query(ModeCV, q, 10, Options{})
		if err != nil {
			t.Fatal(err)
		}
		ci, err := f.recep.Query(ModeCI, q, 10, Options{KPrime: kPrime})
		if err != nil {
			t.Fatal(err)
		}
		if len(cv.Answers) != len(ci.Answers) {
			t.Fatalf("query %q: CV %d answers, CI %d", q, len(cv.Answers), len(ci.Answers))
		}
		for i := range cv.Answers {
			if cv.Answers[i].Key() != ci.Answers[i].Key() {
				t.Fatalf("query %q rank %d: CV %s, CI %s", q, i, cv.Answers[i].Key(), ci.Answers[i].Key())
			}
			if math.Abs(cv.Answers[i].Score-ci.Answers[i].Score) > 1e-9 {
				t.Fatalf("query %q rank %d: CV %g, CI %g", q, i, cv.Answers[i].Score, ci.Answers[i].Score)
			}
		}
	}
}

func TestCISmallKPrimeLimitsCandidates(t *testing.T) {
	corpus, order := smallCorpus(t)
	f := newFixture(t, corpus, order)
	if _, err := f.recep.SetupVocabulary(); err != nil {
		t.Fatal(err)
	}
	g, err := BuildGrouped(f.termsOf, 10, testAnalyzer())
	if err != nil {
		t.Fatal(err)
	}
	if err := f.recep.SetupCentralIndex(g); err != nil {
		t.Fatal(err)
	}
	res, err := f.recep.Query(ModeCI, "alpha federal", 10, Options{KPrime: 2})
	if err != nil {
		t.Fatal(err)
	}
	// k'=2, G=10: at most 20 candidates merged.
	if res.Trace.MergeCandidates > 20 {
		t.Fatalf("CI merged %d candidates, want <= 20", res.Trace.MergeCandidates)
	}
	if res.Trace.CentralStats.PostingsDecoded == 0 {
		t.Fatal("CI central stats empty")
	}
}

func TestCIRequiresSetup(t *testing.T) {
	corpus, order := smallCorpus(t)
	f := newFixture(t, corpus, order)
	if _, err := f.recep.SetupVocabulary(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.recep.Query(ModeCI, "alpha", 5, Options{}); err == nil {
		t.Fatal("CI without SetupCentralIndex: want error")
	}
	if err := f.recep.SetupCentralIndex(nil); err == nil {
		t.Fatal("nil grouped index: want error")
	}
	// Mismatched doc count.
	g, err := BuildGrouped(f.termsOf[:10], 5, testAnalyzer())
	if err != nil {
		t.Fatal(err)
	}
	if err := f.recep.SetupCentralIndex(g); err == nil {
		t.Fatal("mismatched grouped index: want error")
	}
}

func TestFetchPlain(t *testing.T) {
	corpus, order := smallCorpus(t)
	f := newFixture(t, corpus, order)
	res, err := f.recep.Query(ModeCN, "alpha federal wallstreet", 5, Options{Fetch: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) == 0 {
		t.Fatal("no answers")
	}
	for _, a := range res.Answers {
		want := corpus[a.Librarian][a.LocalDoc]
		if a.Text != want.Text || a.Title != want.Title {
			t.Fatalf("fetched %s: title %q text mismatch", a.Key(), a.Title)
		}
	}
	if res.Trace.RoundTrips(PhaseFetch) == 0 {
		t.Fatal("no fetch round trips recorded")
	}
}

func TestFetchCompressed(t *testing.T) {
	corpus, order := smallCorpus(t)
	f := newFixture(t, corpus, order)
	if _, err := f.recep.SetupModels(); err != nil {
		t.Fatal(err)
	}
	res, err := f.recep.Query(ModeCN, "alpha federal wallstreet", 5,
		Options{Fetch: true, CompressedTransfer: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range res.Answers {
		want := corpus[a.Librarian][a.LocalDoc]
		if a.Text != want.Text {
			t.Fatalf("compressed fetch %s: text mismatch", a.Key())
		}
	}
	// Compressed transfer must move fewer document bytes than plain.
	plain, err := f.recep.Query(ModeCN, "alpha federal wallstreet", 5, Options{Fetch: true})
	if err != nil {
		t.Fatal(err)
	}
	var cBytes, pBytes int
	for _, c := range res.Trace.Calls {
		if c.Phase == PhaseFetch {
			cBytes += c.DocBytes
		}
	}
	for _, c := range plain.Trace.Calls {
		if c.Phase == PhaseFetch {
			pBytes += c.DocBytes
		}
	}
	if cBytes >= pBytes {
		t.Fatalf("compressed transfer %d bytes >= plain %d", cBytes, pBytes)
	}
}

func TestFetchCompressedWithoutModels(t *testing.T) {
	corpus, order := smallCorpus(t)
	f := newFixture(t, corpus, order)
	_, err := f.recep.Query(ModeCN, "alpha", 5, Options{Fetch: true, CompressedTransfer: true})
	if err == nil {
		t.Fatal("compressed transfer without SetupModels: want error")
	}
}

func TestQueryValidation(t *testing.T) {
	corpus, order := smallCorpus(t)
	f := newFixture(t, corpus, order)
	if _, err := f.recep.Query(ModeCN, "alpha", 0, Options{}); err == nil {
		t.Fatal("k=0: want error")
	}
	if _, err := f.recep.Query(ModeMS, "alpha", 5, Options{}); err == nil {
		t.Fatal("MS via receptionist: want error")
	}
}

func TestTraceAccounting(t *testing.T) {
	corpus, order := smallCorpus(t)
	f := newFixture(t, corpus, order)
	res, err := f.recep.Query(ModeCN, "alpha federal", 5, Options{Fetch: true})
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trace
	if tr.Mode != ModeCN {
		t.Fatalf("trace mode = %v", tr.Mode)
	}
	if tr.BytesTransferred(0) <= 0 {
		t.Fatal("no bytes recorded")
	}
	if tr.BytesTransferred(PhaseRank)+tr.BytesTransferred(PhaseFetch) != tr.BytesTransferred(0) {
		t.Fatal("phase byte totals do not sum")
	}
	work := tr.LibrarianWork()
	if work.PostingsDecoded == 0 {
		t.Fatal("no librarian work recorded")
	}
	// Calls are sorted by phase then librarian.
	for i := 1; i < len(tr.Calls); i++ {
		a, b := tr.Calls[i-1], tr.Calls[i]
		if a.Phase > b.Phase || (a.Phase == b.Phase && a.Librarian > b.Librarian) {
			t.Fatal("trace calls not ordered")
		}
	}
}

func TestVocabularySize(t *testing.T) {
	corpus, order := smallCorpus(t)
	f := newFixture(t, corpus, order)
	if _, err := f.recep.SetupVocabulary(); err != nil {
		t.Fatal(err)
	}
	terms, bytes := f.recep.VocabularySize()
	if terms == 0 || bytes == 0 {
		t.Fatalf("vocabulary size = %d terms, %d bytes", terms, bytes)
	}
}

func TestGroupedIndexProperties(t *testing.T) {
	corpus, order := smallCorpus(t)
	f := newFixture(t, corpus, order)

	g1, err := BuildGrouped(f.termsOf, 1, testAnalyzer())
	if err != nil {
		t.Fatal(err)
	}
	g10, err := BuildGrouped(f.termsOf, 10, testAnalyzer())
	if err != nil {
		t.Fatal(err)
	}
	if g1.NumGroups() != uint32(len(f.termsOf)) {
		t.Fatalf("G=1 groups = %d, want %d", g1.NumGroups(), len(f.termsOf))
	}
	wantGroups := (len(f.termsOf) + 9) / 10
	if g10.NumGroups() != uint32(wantGroups) {
		t.Fatalf("G=10 groups = %d, want %d", g10.NumGroups(), wantGroups)
	}
	// Grouping must shrink the index (the paper: G=10 halves it).
	if g10.SizeBytes() >= g1.SizeBytes() {
		t.Fatalf("G=10 index %d bytes >= G=1 index %d bytes", g10.SizeBytes(), g1.SizeBytes())
	}
	// Expand clips at the collection end.
	lastGroup := g10.NumGroups() - 1
	docs := g10.Expand([]uint32{lastGroup})
	for _, d := range docs {
		if d >= uint32(len(f.termsOf)) {
			t.Fatalf("Expand produced doc %d beyond collection", d)
		}
	}
	if _, err := BuildGrouped(f.termsOf, 0, testAnalyzer()); err == nil {
		t.Fatal("G=0: want error")
	}
	if _, err := BuildGrouped(nil, 5, testAnalyzer()); err == nil {
		t.Fatal("empty corpus: want error")
	}
}

func TestMonoServerValidation(t *testing.T) {
	if _, err := NewMonoServer(nil, nil, nil); err == nil {
		t.Fatal("nil engine: want error")
	}
}

func TestSplitKey(t *testing.T) {
	name, local := splitKey("AP:15")
	if name != "AP" || local != 15 {
		t.Fatalf("splitKey = %s, %d", name, local)
	}
	name, local = splitKey("weird")
	if name != "weird" || local != 0 {
		t.Fatalf("malformed key: %s, %d", name, local)
	}
}

func TestDistributedBoolean(t *testing.T) {
	corpus, order := smallCorpus(t)
	f := newFixture(t, corpus, order)

	// Union semantics: "alpha OR federal" matches AP topical docs and FR
	// topical docs; compare against a direct per-subcollection evaluation.
	res, err := f.recep.Boolean("alpha OR federal")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{}
	for _, name := range order {
		for i, d := range corpus[name] {
			if strings.Contains(d.Text, "alpha") || strings.Contains(d.Text, "federal") {
				want[name+":"+strconv.Itoa(i)] = true
			}
		}
	}
	got := map[string]bool{}
	for _, a := range res.Answers {
		got[a.Key()] = true
		if a.Score != 0 {
			t.Fatal("Boolean answers must carry no similarity score")
		}
	}
	if len(got) != len(want) {
		t.Fatalf("Boolean union has %d docs, want %d", len(got), len(want))
	}
	for k := range want {
		if !got[k] {
			t.Fatalf("missing %s from Boolean union", k)
		}
	}
	// Answers arrive in global-doc order.
	for i := 1; i < len(res.Answers); i++ {
		if res.Answers[i].GlobalDoc <= res.Answers[i-1].GlobalDoc {
			t.Fatal("Boolean answers not in global order")
		}
	}
	if res.Trace.RoundTrips(PhaseRank) != len(order) {
		t.Fatalf("Boolean asked %d librarians", res.Trace.RoundTrips(PhaseRank))
	}
	if res.Trace.LibrarianWork().PostingsDecoded == 0 {
		t.Fatal("Boolean stats not propagated")
	}
}

func TestDistributedBooleanParseError(t *testing.T) {
	corpus, order := smallCorpus(t)
	f := newFixture(t, corpus, order)
	if _, err := f.recep.Boolean("alpha AND ("); err == nil {
		t.Fatal("malformed Boolean expression: want error")
	}
}

// TestRemoteCentralIndexEquivalence verifies that the grouped central index
// built over the wire (SetupCentralIndexRemote, merging the librarians' own
// inverted files) behaves identically to the one built from the original
// documents (BuildGrouped).
func TestRemoteCentralIndexEquivalence(t *testing.T) {
	corpus, order := smallCorpus(t)
	f := newFixture(t, corpus, order)
	if _, err := f.recep.SetupVocabulary(); err != nil {
		t.Fatal(err)
	}
	local, err := BuildGrouped(f.termsOf, 10, testAnalyzer())
	if err != nil {
		t.Fatal(err)
	}
	trace, err := f.recep.SetupCentralIndexRemote(10)
	if err != nil {
		t.Fatal(err)
	}
	if trace.BytesTransferred(PhaseSetup) == 0 {
		t.Fatal("index transfer cost not recorded")
	}
	remote := f.recep.Federation().CentralIndex()
	if remote.NumGroups() != local.NumGroups() {
		t.Fatalf("remote %d groups, local %d", remote.NumGroups(), local.NumGroups())
	}
	if remote.SizeBytes() != local.SizeBytes() {
		t.Fatalf("remote index %d bytes, local %d: merged postings differ",
			remote.SizeBytes(), local.SizeBytes())
	}
	for _, q := range []string{"alpha federal", "w1 w2 w3 w4", "wallstreet widget"} {
		lg, _, err := local.RankGroups(q, 8)
		if err != nil {
			t.Fatal(err)
		}
		rg, _, err := remote.RankGroups(q, 8)
		if err != nil {
			t.Fatal(err)
		}
		if len(lg) != len(rg) {
			t.Fatalf("query %q: local %d groups, remote %d", q, len(lg), len(rg))
		}
		for i := range lg {
			if lg[i] != rg[i] {
				t.Fatalf("query %q group %d: local %d, remote %d", q, i, lg[i], rg[i])
			}
		}
	}
	// And CI queries run against the remotely built index.
	res, err := f.recep.Query(ModeCI, "alpha federal", 5, Options{KPrime: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) == 0 {
		t.Fatal("CI query over remote central index returned nothing")
	}
}

func TestBuildGroupedFromIndexesValidation(t *testing.T) {
	if _, err := BuildGroupedFromIndexes(nil, []uint32{0}, 10, 5, testAnalyzer()); err == nil {
		t.Fatal("mismatched offsets: want error")
	}
	if _, err := BuildGroupedFromIndexes(nil, nil, 0, 5, testAnalyzer()); err == nil {
		t.Fatal("empty collection: want error")
	}
	if _, err := BuildGroupedFromIndexes(nil, nil, 10, 0, testAnalyzer()); err == nil {
		t.Fatal("zero group size: want error")
	}
}

func TestGroupedIndexPersistRoundTrip(t *testing.T) {
	corpus, order := smallCorpus(t)
	f := newFixture(t, corpus, order)
	g, err := BuildGrouped(f.termsOf, 10, testAnalyzer())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	loaded, err := ReadGrouped(bytes.NewReader(raw), testAnalyzer())
	if err != nil {
		t.Fatal(err)
	}
	if loaded.GroupSize() != g.GroupSize() || loaded.NumGroups() != g.NumGroups() ||
		loaded.SizeBytes() != g.SizeBytes() {
		t.Fatalf("shape differs after reload")
	}
	for _, q := range []string{"alpha federal", "w1 w2"} {
		g1, _, err := g.RankGroups(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		g2, _, err := loaded.RankGroups(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(g1) != len(g2) {
			t.Fatalf("query %q: %d vs %d groups", q, len(g1), len(g2))
		}
		for i := range g1 {
			if g1[i] != g2[i] {
				t.Fatalf("query %q group %d differs", q, i)
			}
		}
	}
	// A reloaded grouped index installs and serves CI queries.
	if _, err := f.recep.SetupVocabulary(); err != nil {
		t.Fatal(err)
	}
	if err := f.recep.SetupCentralIndex(loaded); err != nil {
		t.Fatal(err)
	}
	if _, err := f.recep.Query(ModeCI, "alpha federal", 5, Options{KPrime: 3}); err != nil {
		t.Fatal(err)
	}
	// Corruption is rejected.
	if _, err := ReadGrouped(bytes.NewReader(raw[:8]), testAnalyzer()); err == nil {
		t.Fatal("truncated grouped index: want error")
	}
	bad := append([]byte("XXXX"), raw[4:]...)
	if _, err := ReadGrouped(bytes.NewReader(bad), testAnalyzer()); err == nil {
		t.Fatal("bad magic: want error")
	}
}
