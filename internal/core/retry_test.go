package core

import (
	"math"
	"testing"
	"time"
)

// TestBackoffDelayTable pins the capped exponential schedule, including the
// overflow regression: a base near MaxInt64 used to double into a negative
// duration — i.e. retry with no wait at all — before the cap check ran.
func TestBackoffDelayTable(t *testing.T) {
	cases := []struct {
		name string
		base time.Duration
		n    int
		want time.Duration
	}{
		{"zero base", 0, 1, 0},
		{"negative base", -time.Second, 3, 0},
		{"n zero", 10 * time.Millisecond, 0, 0},
		{"first retry", 10 * time.Millisecond, 1, 10 * time.Millisecond},
		{"second retry doubles", 10 * time.Millisecond, 2, 20 * time.Millisecond},
		{"third retry doubles again", 10 * time.Millisecond, 3, 40 * time.Millisecond},
		{"doubling reaches cap", 2 * time.Second, 3, maxBackoff},
		{"doubling under cap", 2 * time.Second, 2, 4 * time.Second},
		{"base at cap", maxBackoff, 1, maxBackoff},
		{"base above cap", 6 * time.Second, 1, maxBackoff},
		{"base above cap later retry", 6 * time.Second, 7, maxBackoff},
		{"base near MaxInt64", math.MaxInt64 - 1, 2, maxBackoff},
		{"base MaxInt64", math.MaxInt64, 5, maxBackoff},
		{"half MaxInt64 would overflow", math.MaxInt64 / 2, 3, maxBackoff},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := backoffDelay(tc.base, tc.n); got != tc.want {
				t.Fatalf("backoffDelay(%v, %d) = %v, want %v", tc.base, tc.n, got, tc.want)
			}
		})
	}
}

// TestBackoffDelayNeverNegativeOrUncapped sweeps bases across the whole
// duration range: whatever the inputs, the delay stays in [0, maxBackoff].
func TestBackoffDelayNeverNegativeOrUncapped(t *testing.T) {
	bases := []time.Duration{
		1, time.Microsecond, time.Millisecond, time.Second,
		maxBackoff - 1, maxBackoff, maxBackoff + 1,
		math.MaxInt64 / 3, math.MaxInt64 / 2, math.MaxInt64 - 1, math.MaxInt64,
	}
	for _, base := range bases {
		for n := 1; n <= 64; n++ {
			d := backoffDelay(base, n)
			if d < 0 || d > maxBackoff {
				t.Fatalf("backoffDelay(%v, %d) = %v, outside [0, %v]", base, n, d, maxBackoff)
			}
		}
	}
}

// TestPolicyForClampsNegatives: negative Timeout and Backoff are treated
// like zero, exactly as negative Retries already were — a negative timeout
// would otherwise set every conn deadline in the past and record librarians
// as failed without ever asking them.
func TestPolicyForClampsNegatives(t *testing.T) {
	p := policyFor(Options{Timeout: -time.Second, Retries: -4, Backoff: -time.Minute})
	if p.timeout != 0 || p.retries != 0 || p.backoff != 0 {
		t.Fatalf("negative knobs not clamped: %+v", p)
	}
	// Positive values pass through untouched.
	p = policyFor(Options{Timeout: time.Second, Retries: 2, Backoff: 5 * time.Millisecond})
	if p.timeout != time.Second || p.retries != 2 || p.backoff != 5*time.Millisecond {
		t.Fatalf("positive knobs mangled: %+v", p)
	}
	if p.allowPartial {
		t.Fatal("allowPartial set without AllowPartial or MinLibrarians")
	}
	// MinLibrarians implies partial results, with or without the flag.
	p = policyFor(Options{MinLibrarians: 2})
	if !p.allowPartial || p.minLibrarians != 2 {
		t.Fatalf("MinLibrarians did not imply allowPartial: %+v", p)
	}
}

// TestNegativeTimeoutQueriesStillSucceed is the end-to-end regression for
// the clamp: a query with a negative timeout behaves like one with none.
func TestNegativeTimeoutQueriesStillSucceed(t *testing.T) {
	corpus, order := smallCorpus(t)
	f := newFixture(t, corpus, order)
	res, err := f.recep.Query(ModeCN, "alpha federal", 5, Options{Timeout: -time.Second, Backoff: -time.Hour})
	if err != nil {
		t.Fatalf("negative timeout failed the query: %v", err)
	}
	if len(res.Answers) == 0 || len(res.Trace.Failures) != 0 {
		t.Fatalf("answers=%d failures=%d, want answers and no failures", len(res.Answers), len(res.Trace.Failures))
	}
}
