package core

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"teraphim/internal/librarian"
	"teraphim/internal/obs"
	"teraphim/internal/simnet"
	"teraphim/internal/store"
)

// newReplicaFixture builds a fleet where each librarian in order is served
// by nreplicas endpoints named "<name>#<i>", all backed by one shared
// Librarian instance (concurrency-safe, identical subcollection by
// construction), wired through a simnet.Chaos wrapper so tests can kill,
// revive and shape individual replicas deterministically.
type replicaFixture struct {
	pool     *Pool
	chaos    *simnet.Chaos
	dialer   *librarian.InProcessDialer
	order    []string
	replicas map[string][]string
}

func newReplicaFixture(t testing.TB, corpus map[string][]store.Document, order []string, nreplicas int, cfg Config) *replicaFixture {
	t.Helper()
	a := testAnalyzer()
	dialer := librarian.NewInProcessDialer(nil, simnet.LinkConfig{})
	replicas := make(map[string][]string, len(order))
	for _, name := range order {
		lib, err := librarian.Build(name, corpus[name], librarian.BuildOptions{Analyzer: a})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < nreplicas; i++ {
			ep := fmt.Sprintf("%s#%d", name, i)
			dialer.AddEndpoint(ep, lib, simnet.LinkConfig{})
			replicas[name] = append(replicas[name], ep)
		}
	}
	chaos := simnet.NewChaos(dialer)
	cfg.Analyzer = a
	cfg.Replicas = replicas
	pool, err := NewPool(chaos, order, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		pool.Close()
		dialer.Wait()
	})
	return &replicaFixture{pool: pool, chaos: chaos, dialer: dialer, order: order, replicas: replicas}
}

// assertNoLeakedConns verifies every lease was returned: nothing leased,
// in-use gauge at zero.
func assertNoLeakedConns(t *testing.T, p *Pool) {
	t.Helper()
	p.mu.Lock()
	leaked := len(p.leased)
	p.mu.Unlock()
	if leaked != 0 {
		t.Fatalf("leaked %d pooled connections", leaked)
	}
	if v := p.metrics.connsInUse.Value(); v != 0 {
		t.Fatalf("conns_in_use gauge = %d after drain, want 0", v)
	}
}

func answersEqual(a, b []Answer) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Librarian != b[i].Librarian || a[i].LocalDoc != b[i].LocalDoc ||
			a[i].Score != b[i].Score || a[i].Title != b[i].Title || a[i].Text != b[i].Text {
			return false
		}
	}
	return true
}

// --- Golden equivalence -----------------------------------------------------

// A 1-replica-per-subcollection pool (with renamed endpoints) must be
// result-identical to the seed single-librarian path in every mode: the
// router is a pass-through when there is nothing to choose between.
func TestSingleReplicaGoldenEquivalence(t *testing.T) {
	corpus, order := smallCorpus(t)
	seed := newFixture(t, corpus, order)
	repl := newReplicaFixture(t, corpus, order, 1, Config{})

	for _, f := range []func() (Trace, error){seed.recep.SetupVocabulary, repl.pool.SetupVocabulary} {
		if _, err := f(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := seed.recep.SetupCentralIndexRemote(10); err != nil {
		t.Fatal(err)
	}
	if _, err := repl.pool.SetupCentralIndexRemote(10); err != nil {
		t.Fatal(err)
	}

	queries := []string{"alpha", "federal finance", "wallstreet widget", "alpha wallstreet", "aurora fiscal wholesale"}
	for _, mode := range []Mode{ModeCN, ModeCV, ModeCI} {
		for _, q := range queries {
			want, err := seed.recep.Query(mode, q, 10, Options{})
			if err != nil {
				t.Fatalf("%v %q seed: %v", mode, q, err)
			}
			got, err := repl.pool.Query(mode, q, 10, Options{})
			if err != nil {
				t.Fatalf("%v %q replicated: %v", mode, q, err)
			}
			if !answersEqual(want.Answers, got.Answers) {
				t.Fatalf("%v %q: replicated pool diverged from seed path", mode, q)
			}
			// The single replica's endpoint is recorded on every call.
			for _, c := range got.Trace.Calls {
				if c.Phase == PhaseRank && c.Replica != c.Librarian+"#0" {
					t.Fatalf("%v %q: call to %q served by replica %q, want %q#0", mode, q, c.Librarian, c.Replica, c.Librarian)
				}
			}
		}
	}
}

// Hedging must be invisible in results: on a fault-free fleet, hedging
// enabled and disabled return bit-identical answers — the only difference
// is Trace.Hedges accounting.
func TestHedgingGoldenOnFaultFreeFleet(t *testing.T) {
	corpus, order := smallCorpus(t)
	f := newReplicaFixture(t, corpus, order, 2, Config{})
	if _, err := f.pool.SetupVocabulary(); err != nil {
		t.Fatal(err)
	}
	queries := []string{"alpha", "federal finance", "wallstreet widget", "alpha wallstreet"}
	// Warm the latency trackers past the min-sample gate so HedgeAfter is
	// live for the comparison runs.
	for i := 0; i < 10; i++ {
		for _, q := range queries {
			if _, err := f.pool.Query(ModeCV, q, 10, Options{}); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, mode := range []Mode{ModeCN, ModeCV} {
		for _, q := range queries {
			plain, err := f.pool.Query(mode, q, 10, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if plain.Trace.Hedges != 0 {
				t.Fatalf("hedging disabled but Trace.Hedges = %d", plain.Trace.Hedges)
			}
			// HedgeAfter 0.5 hedges roughly half of all exchanges — plenty
			// of races — and must change nothing about the answers.
			hedged, err := f.pool.Query(mode, q, 10, Options{HedgeAfter: 0.5})
			if err != nil {
				t.Fatal(err)
			}
			if hedged.Trace.Hedges < 0 || hedged.Trace.HedgeWins > hedged.Trace.Hedges {
				t.Fatalf("implausible hedge accounting: %d launched, %d won", hedged.Trace.Hedges, hedged.Trace.HedgeWins)
			}
			if len(hedged.Trace.Failures) != 0 {
				t.Fatalf("hedge losers must not be recorded as failures: %+v", hedged.Trace.Failures)
			}
			if !answersEqual(plain.Answers, hedged.Answers) {
				t.Fatalf("%v %q: hedged result diverged from unhedged", mode, q)
			}
		}
	}
	assertNoLeakedConns(t, f.pool)
}

// --- Hedge behaviour --------------------------------------------------------

// With one replica shaped slow, hedged queries must route around the slow
// exchange: hedges launch, hedges win, nothing is recorded as a failure or
// a retry, and results stay correct.
func TestHedgeRacesSlowReplica(t *testing.T) {
	corpus, order := smallCorpus(t)
	f := newReplicaFixture(t, corpus, order, 2, Config{})
	// Warm the latency trackers on a fast fleet.
	for i := 0; i < 20; i++ {
		if _, err := f.pool.Query(ModeCN, "alpha federal wallstreet", 5, Options{}); err != nil {
			t.Fatal(err)
		}
	}
	// Shape replica #0 of every librarian slow: 30ms per write dwarfs the
	// warm sub-millisecond latency quantile.
	for _, name := range f.order {
		f.chaos.SetDelay(name+"#0", 30*time.Millisecond)
	}
	var launched, won int
	for i := 0; i < 20; i++ {
		res, err := f.pool.Query(ModeCN, "alpha federal wallstreet", 5, Options{HedgeAfter: 0.9})
		if err != nil {
			t.Fatal(err)
		}
		launched += res.Trace.Hedges
		won += res.Trace.HedgeWins
		if n := res.Trace.RetryAttempts(); n != 0 {
			t.Fatalf("hedges must not count as retries, got %d", n)
		}
		if len(res.Trace.Failures) != 0 {
			t.Fatalf("hedge race must not record failures: %+v", res.Trace.Failures)
		}
		hedgeCalls := 0
		for _, c := range res.Trace.Calls {
			if c.Hedge {
				hedgeCalls++
				if c.Replica == "" {
					t.Fatal("hedge call without replica endpoint")
				}
			}
		}
		if res.Trace.Hedges > 0 && hedgeCalls == 0 {
			t.Fatal("Trace.Hedges > 0 but no call carries the Hedge flag")
		}
	}
	if launched == 0 {
		t.Fatal("slow replica never triggered a hedge")
	}
	if won == 0 {
		t.Fatal("no hedge ever won against a 30ms-slower primary")
	}
	m := f.pool.Metrics()
	if v := m.hedgeLaunched.Value(); v < uint64(launched) {
		t.Fatalf("teraphim_hedge_launched_total = %d, trace total %d", v, launched)
	}
	if v := m.hedgeWon.Value(); v < uint64(won) {
		t.Fatalf("teraphim_hedge_won_total = %d, trace total %d", v, won)
	}
	assertNoLeakedConns(t, f.pool)
}

// --- Replica set management -------------------------------------------------

func TestAddRemoveReplicaValidation(t *testing.T) {
	corpus, order := smallCorpus(t)
	f := newReplicaFixture(t, corpus, order, 2, Config{})

	if err := f.pool.AddReplica("nope", "x#0"); err == nil {
		t.Fatal("AddReplica to unknown librarian: want error")
	}
	if err := f.pool.AddReplica("AP", "FR#0"); err == nil {
		t.Fatal("AddReplica duplicating another librarian's endpoint: want error")
	}
	if err := f.pool.AddReplica("AP", "AP#0"); err == nil {
		t.Fatal("AddReplica duplicating an existing endpoint: want error")
	}
	if err := f.pool.RemoveReplica("AP", "AP#9"); err == nil {
		t.Fatal("RemoveReplica of unknown endpoint: want error")
	}
	if err := f.pool.RemoveReplica("AP", "AP#0"); err != nil {
		t.Fatal(err)
	}
	if err := f.pool.RemoveReplica("AP", "AP#1"); err == nil {
		t.Fatal("RemoveReplica of the last replica: want error")
	}
	status, err := f.pool.Replicas("AP")
	if err != nil {
		t.Fatal(err)
	}
	if len(status) != 1 || status[0].Endpoint != "AP#1" {
		t.Fatalf("Replicas after remove = %+v, want [AP#1]", status)
	}
	// Membership changes ride the federation epoch like setup installs do.
	before := f.pool.Federation().Epoch()
	f.dialer.AddEndpoint("AP#2", nil, simnet.LinkConfig{}) // placeholder link; never dialled here
	if err := f.pool.AddReplica("AP", "AP#2"); err != nil {
		t.Fatal(err)
	}
	if after := f.pool.Federation().Epoch(); after != before+1 {
		t.Fatalf("AddReplica epoch %d -> %d, want bump by 1", before, after)
	}
}

// A replica added at runtime must start serving traffic, and queries must
// spread across the grown set.
func TestAddReplicaServesTraffic(t *testing.T) {
	corpus, order := smallCorpus(t)
	f := newReplicaFixture(t, corpus, order, 1, Config{})
	lib, err := librarian.Build("AP", corpus["AP"], librarian.BuildOptions{Analyzer: testAnalyzer()})
	if err != nil {
		t.Fatal(err)
	}
	f.dialer.AddEndpoint("AP#1", lib, simnet.LinkConfig{})
	if err := f.pool.AddReplica("AP", "AP#1"); err != nil {
		t.Fatal(err)
	}
	served := map[string]int{}
	for i := 0; i < 200; i++ {
		res, err := f.pool.Query(ModeCN, "alpha", 5, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range res.Trace.Calls {
			if c.Librarian == "AP" {
				served[c.Replica]++
			}
		}
	}
	if served["AP#0"] == 0 || served["AP#1"] == 0 {
		t.Fatalf("traffic did not spread across the grown replica set: %v", served)
	}
}

// --- Router property tests (seeded PRNG, fake clock, no wall-time) ----------

func newTestRouter(t *testing.T, clock *time.Time, endpoints ...string) *router {
	t.Helper()
	rt := newRouter("lib", endpoints, 4, DefaultPipelineDepth, 3, 500*time.Millisecond, newMetrics(obs.NewRegistry()), 7)
	rt.now = func() time.Time { return *clock }
	return rt
}

func routerReplica(t *testing.T, rt *router, endpoint string) *replica {
	t.Helper()
	for _, r := range rt.snapshot() {
		if r.endpoint == endpoint {
			return r
		}
	}
	t.Fatalf("no replica %q", endpoint)
	return nil
}

// With at least one healthy replica, power-of-two-choices must never select
// an ejected one.
func TestRouterNeverSelectsEjectedReplica(t *testing.T) {
	clock := time.Unix(1000, 0)
	rt := newTestRouter(t, &clock, "e0", "e1", "e2", "e3")
	bad := routerReplica(t, rt, "e2")
	for i := 0; i < 3; i++ {
		rt.reportFailure(bad)
	}
	if bad.selectableAt(clock) {
		t.Fatal("replica should be ejected after 3 consecutive failures")
	}
	for i := 0; i < 10000; i++ {
		r := rt.pick("")
		if r == nil {
			t.Fatal("pick returned nil with healthy replicas present")
		}
		if r.endpoint == "e2" {
			t.Fatalf("pick %d selected the ejected replica", i)
		}
	}
}

// Selection over equally-loaded healthy replicas is balanced within 2×.
func TestRouterSelectionBalanced(t *testing.T) {
	clock := time.Unix(1000, 0)
	rt := newTestRouter(t, &clock, "e0", "e1", "e2", "e3")
	counts := map[string]int{}
	for i := 0; i < 10000; i++ {
		counts[rt.pick("").endpoint]++
	}
	min, max := math.MaxInt, 0
	for _, ep := range []string{"e0", "e1", "e2", "e3"} {
		n := counts[ep]
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	if min == 0 || max > 2*min {
		t.Fatalf("selection unbalanced across equal replicas: %v", counts)
	}
}

// P2C must prefer the less-loaded replica: a replica with strictly more
// exchanges in flight than every sibling is only picked when sampled twice,
// which distinct sampling rules out.
func TestRouterPrefersLeastLoaded(t *testing.T) {
	clock := time.Unix(1000, 0)
	rt := newTestRouter(t, &clock, "e0", "e1", "e2")
	loaded := routerReplica(t, rt, "e1")
	loaded.inflight.Store(8)
	counts := map[string]int{}
	for i := 0; i < 10000; i++ {
		counts[rt.pick("").endpoint]++
	}
	if counts["e1"] > counts["e0"]/10 || counts["e1"] > counts["e2"]/10 {
		t.Fatalf("loaded replica over-selected: %v", counts)
	}
}

// After the ejection window, exactly one pick claims the readmission probe;
// success readmits the replica, failure re-ejects it for another window.
func TestRouterProbeReadmission(t *testing.T) {
	clock := time.Unix(1000, 0)
	rt := newTestRouter(t, &clock, "e0", "e1")
	bad := routerReplica(t, rt, "e1")
	for i := 0; i < 3; i++ {
		rt.reportFailure(bad)
	}
	// Probe window not yet open: e1 is never picked.
	for i := 0; i < 1000; i++ {
		if rt.pick("").endpoint == "e1" {
			t.Fatal("picked ejected replica before its probe window")
		}
	}
	clock = clock.Add(600 * time.Millisecond)
	probes := 0
	for i := 0; i < 1000; i++ {
		if rt.pick("").endpoint == "e1" {
			probes++
		}
	}
	if probes != 1 {
		t.Fatalf("probe window allowed %d concurrent probes, want exactly 1", probes)
	}
	// Failed probe: ejected for another window.
	rt.reportFailure(bad)
	for i := 0; i < 1000; i++ {
		if rt.pick("").endpoint == "e1" {
			t.Fatal("picked replica re-ejected by a failed probe")
		}
	}
	// Next window, probe succeeds: fully readmitted.
	clock = clock.Add(600 * time.Millisecond)
	if got := rt.pick("e0"); got.endpoint != "e1" {
		t.Fatalf("probe pick avoided wrong endpoint: %q", got.endpoint)
	}
	rt.reportSuccess(bad, time.Millisecond)
	picked := false
	for i := 0; i < 100 && !picked; i++ {
		picked = rt.pick("").endpoint == "e1"
	}
	if !picked {
		t.Fatal("readmitted replica never selected again")
	}
	m := rt.metrics
	if v := m.replicaEjections.Value(); v != 2 {
		t.Fatalf("replica_ejections_total = %d, want 2 (initial + failed probe)", v)
	}
	if v := m.replicaReadmissions.Value(); v != 1 {
		t.Fatalf("replica_readmissions_total = %d, want 1", v)
	}
}

// When every replica is ejected, the router fails open rather than refusing
// to route (a wrong guess costs a retry; refusing costs the query).
func TestRouterFailsOpenWhenAllEjected(t *testing.T) {
	clock := time.Unix(1000, 0)
	rt := newTestRouter(t, &clock, "e0", "e1")
	for _, ep := range []string{"e0", "e1"} {
		r := routerReplica(t, rt, ep)
		for i := 0; i < 3; i++ {
			rt.reportFailure(r)
		}
	}
	if r := rt.pick(""); r == nil {
		t.Fatal("router refused to route with all replicas ejected")
	}
}

// --- Latency tracker --------------------------------------------------------

func TestLatencyTrackerQuantiles(t *testing.T) {
	var lt latencyTracker
	if d := lt.quantile(0.9); d != 0 {
		t.Fatalf("quantile before any samples = %v, want 0", d)
	}
	for i := 0; i < 10; i++ {
		lt.observe(time.Millisecond)
	}
	if d := lt.quantile(0.9); d != 0 {
		t.Fatalf("quantile below min samples = %v, want 0", d)
	}
	// 90 fast exchanges at ~1ms, 10 slow at ~50ms.
	for i := 0; i < 80; i++ {
		lt.observe(time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		lt.observe(50 * time.Millisecond)
	}
	p50 := lt.quantile(0.5)
	if p50 < time.Millisecond || p50 > 2*time.Millisecond {
		t.Fatalf("p50 = %v, want ~1ms (within bucket rounding)", p50)
	}
	p99 := lt.quantile(0.99)
	if p99 < 50*time.Millisecond || p99 > 80*time.Millisecond {
		t.Fatalf("p99 = %v, want ~50ms (within bucket rounding)", p99)
	}
	if bad := lt.quantile(1.5); bad != 0 {
		t.Fatalf("quantile(1.5) = %v, want 0", bad)
	}
}

func TestLatencyTrackerConcurrentObserve(t *testing.T) {
	var lt latencyTracker
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				lt.observe(time.Duration(w+1) * time.Millisecond)
			}
		}(w)
	}
	wg.Wait()
	if n := lt.count.Load(); n != 8000 {
		t.Fatalf("count = %d, want 8000", n)
	}
	if q := lt.quantile(0.5); q <= 0 {
		t.Fatalf("p50 after concurrent observes = %v", q)
	}
}

// Hedging must never fragment the result-cache key: a hit computed without
// hedging serves hedged queries and vice versa.
func TestHedgeOptionSharesCacheEntries(t *testing.T) {
	corpus, order := smallCorpus(t)
	f := newReplicaFixture(t, corpus, order, 2, Config{Cache: &CacheConfig{MaxEntries: 32}})
	if _, err := f.pool.Query(ModeCN, "alpha", 5, Options{}); err != nil {
		t.Fatal(err)
	}
	res, err := f.pool.Query(ModeCN, "alpha", 5, Options{HedgeAfter: 0.95})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Trace.CacheHit {
		t.Fatal("HedgeAfter fragmented the cache key: expected a hit")
	}
}

// The metric families registered for replication render on the registry so
// a scrape sees them from process start.
func TestReplicaMetricFamiliesRegistered(t *testing.T) {
	reg := obs.NewRegistry()
	newMetrics(reg)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	page := sb.String()
	for _, fam := range []string{
		"teraphim_hedge_launched_total",
		"teraphim_hedge_won_total",
		"teraphim_replica_ejections_total",
		"teraphim_replica_readmissions_total",
	} {
		if !strings.Contains(page, fam) {
			t.Fatalf("metric family %q missing from rendered page", fam)
		}
	}
}
