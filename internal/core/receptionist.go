package core

import (
	"context"
	"fmt"
	"io"
	"time"

	"teraphim/internal/obs"
	"teraphim/internal/protocol"
	"teraphim/internal/search"
	"teraphim/internal/simnet"
	"teraphim/internal/textproc"
)

// Answer is one document returned to the user: the owning librarian, its
// local and global ids, the merged similarity score, and (when the fetch
// phase runs) the document itself.
type Answer struct {
	Librarian string
	LocalDoc  uint32
	GlobalDoc uint32
	Score     float64
	Title     string
	Text      string
}

// Key returns the global document identity "librarian:localid" used in
// qrels and run files.
func (a Answer) Key() string { return fmt.Sprintf("%s:%d", a.Librarian, a.LocalDoc) }

// Result is a completed query: the merged ranking plus its trace.
type Result struct {
	Answers []Answer
	Trace   Trace
}

// Options tunes one query evaluation.
type Options struct {
	// KPrime is the number of groups the CI methodology expands (the
	// paper's k'). Zero selects DefaultKPrime.
	KPrime int
	// Fetch runs step 4, retrieving document text for the top k.
	Fetch bool
	// CompressedTransfer ships documents in compressed form; requires
	// SetupModels to have run so the receptionist can decompress.
	CompressedTransfer bool
	// Merge selects the CN collation strategy (zero = MergeFaceValue, the
	// paper's behaviour). Ignored by CV and CI, whose scores are already
	// globally comparable. A value naming no defined strategy fails the
	// query with ErrUnknownMergeStrategy in every mode.
	Merge MergeStrategy
	// TopR narrows the rank-phase fan-out to the R librarians most likely
	// to hold answers, ranked by CORI collection-selection score over the
	// merged vocabulary's per-librarian statistics. Zero or negative
	// disables selection (full fan-out, the paper's behaviour); values
	// above the fleet size clamp to it. Requires SetupVocabulary in every
	// mode, including CN. Selection composes with the other machinery: CV's
	// eligibility filter and CI's candidate expansion run first and
	// selection narrows their output; MinLibrarians/AllowPartial apply to
	// the selected set; cached entries are keyed by the resolved R.
	TopR int
	// Timeout bounds each librarian exchange within the query; zero means
	// no deadline. On the paper's WAN, where "the cost of running the WAN
	// queries varied by as much as a factor of one hundred", a deadline is
	// what keeps one stuck site from hanging the whole query.
	Timeout time.Duration
	// Retries is the number of additional attempts after a failed librarian
	// exchange. Each retry redials the librarian (a timed-out stream may be
	// desynced mid-message and is never reused) and re-sends the request.
	// Zero fails the exchange on its first error.
	Retries int
	// Backoff is the wait before the first retry, doubling on each further
	// retry and capped at 5s. Zero retries immediately.
	Backoff time.Duration
	// AllowPartial lets a query complete from the surviving librarians when
	// some exhaust every attempt: CN and CV merge the rankings that arrived,
	// CI drops candidate groups owned by dead librarians, and the failures
	// are recorded in Trace.Failures with Trace.Degraded set. When false
	// (the default) the first exhausted librarian fails the query.
	// MinLibrarians > 0 implies AllowPartial.
	AllowPartial bool
	// MinLibrarians is the minimum number of librarians that must answer
	// the rank phase for a partial result to be returned; fewer fails the
	// query. Zero means one surviving librarian suffices.
	MinLibrarians int
	// HedgeAfter races a second replica when an exchange outlives this
	// latency quantile of the librarian's recent exchanges (tracked by a
	// streaming estimator; e.g. 0.95 hedges the slowest 5%). The first
	// reply wins and the loser is cancelled. Requires ≥2 replicas for the
	// librarian and takes effect only once enough latency samples exist.
	// A hedge is not a retry (Trace.Hedges accounts it separately), never
	// blocks behind a busy replica (it takes a connection slot only if one
	// is free), and cannot change results — replicas serve identical
	// subcollections. Zero, or any value outside (0,1), disables hedging.
	HedgeAfter float64
	// Evaluator selects the librarians' rank-phase evaluation strategy:
	// EvalExact (zero, the default) is the exhaustive document-sorted
	// kernel; EvalMaxScore and EvalWAND are the rank-safe dynamic-pruning
	// evaluators, which skip postings that provably cannot reach the top k
	// while returning bit-identical rankings. The choice is threaded to
	// every librarian in all modes (MS/CN/CV/CI); an unknown value fails
	// the query with search.ErrUnknownEvaluator before any wire work.
	Evaluator search.Evaluator
	// BatchWindow lets a rank-phase request linger this long at the
	// receptionist waiting for other clients' requests to the same
	// librarian; everything that accumulates is shipped in one BatchQuery
	// frame and answered in one reply, cutting round trips per query under
	// concurrency (the paper's cost model charges per network contact).
	// Batching cannot change results — the librarian evaluates the batched
	// queries exactly as it would separately — and failure stays per-query.
	// Requires the librarian to have granted FeatureBatching; zero (the
	// default) sends every query in its own frame. A query that finds
	// batch-mates waits at most one window, so set this well below Timeout.
	BatchWindow time.Duration
}

// DefaultKPrime is the paper's default k' for the CI methodology.
const DefaultKPrime = 100

// Config configures a Receptionist (and the Pool underneath it).
type Config struct {
	// Analyzer must match the librarians' analysis pipeline. Nil selects
	// the standard pipeline.
	Analyzer *textproc.Analyzer
	// MaxConnsPerLibrarian bounds how many connections the pool keeps open
	// to each librarian, and therefore how many exchanges can run against
	// one librarian concurrently. Zero selects
	// DefaultMaxConnsPerLibrarian.
	MaxConnsPerLibrarian int
	// Metrics is the registry the pool registers its instruments on, letting
	// several pools (or a pool plus a librarian) share one /metrics page.
	// Nil gives the pool a private registry — metrics are always collected —
	// reachable via Pool.Metrics().Registry().
	Metrics *obs.Registry
	// SlowQueryThreshold enables the slow-query log: a completed (or failed)
	// query slower than this emits one key=value line with the per-stage
	// breakdown to SlowQueryLog. Zero disables the log.
	SlowQueryThreshold time.Duration
	// SlowQueryLog receives slow-query lines; nil selects os.Stderr. The
	// writer must be safe for concurrent use (os.Stderr and log writers are).
	SlowQueryLog io.Writer
	// Cache enables the receptionist result cache: repeated queries (same
	// mode, normalized text, k and merge strategy) are answered from memory
	// with zero librarian round trips. Nil disables caching. Entries are
	// invalidated automatically when setup state changes and explicitly via
	// InvalidateCache (wire it to UpdatableLibrarian.OnUpdate).
	Cache *CacheConfig
	// Admission bounds concurrent query evaluation: beyond MaxInFlight
	// running queries and MaxQueue waiting ones, requests shed immediately
	// with ErrOverloaded instead of queueing past their deadlines. Nil
	// disables admission control.
	Admission *AdmissionConfig
	// Replicas maps a librarian name to the endpoint names (dialer keys)
	// of the replicas serving its subcollection. Every endpoint must serve
	// the same documents as the librarian's other replicas (replicas are
	// interchangeable by contract — routing between them cannot change
	// results). Librarians absent from the map get a single endpoint named
	// after them, the pre-replication behaviour. Replica sets can be grown
	// and shrunk live via Pool.AddReplica / Pool.RemoveReplica.
	Replicas map[string][]string
	// ReplicaEjectAfter is the number of consecutive exchange failures
	// after which a replica is ejected from routing (new exchanges go to
	// its siblings). Zero selects DefaultReplicaEjectAfter.
	ReplicaEjectAfter int
	// ReplicaProbeAfter is how long an ejected replica sits out before a
	// single probe exchange is routed to it; success readmits it, failure
	// ejects it for another window. Zero selects DefaultReplicaProbeAfter.
	ReplicaProbeAfter time.Duration
	// WireFeatures is the wire-protocol feature set requested in every
	// Hello: FeaturePipelining multiplexes exchanges over tagged frames,
	// FeatureBatching enables cross-client query batching. Zero requests
	// DefaultWireFeatures; FeatureNone pins the seed protocol (untagged
	// frames, one exchange per connection). Each librarian grants the subset
	// it supports, so mixed-version fleets degrade per-connection to the
	// seed framing instead of failing.
	WireFeatures protocol.Features
	// PipelineDepth bounds concurrent exchanges multiplexed on one
	// pipelined connection; per-replica concurrency becomes
	// MaxConnsPerLibrarian × PipelineDepth. Zero selects
	// DefaultPipelineDepth. Ignored when pipelining is not negotiated.
	PipelineDepth int
}

// Receptionist brokers queries to a fixed set of librarians. It is a thin
// handle over a shared Federation (global numbering, merged vocabulary,
// models, central index) and a bounded connection Pool, and is safe for
// concurrent use: any number of goroutines may Query at once, sharing the
// setup work done once. Use Pool()/Federation() directly for finer control
// (per-client Sessions, explicit connection leases).
type Receptionist struct {
	pool *Pool
}

// Connect dials the named librarians (in the given order — the order fixes
// global document numbering) and performs the Hello exchange. It is exactly
// NewReceptionist(NewPool(...)): the single setup path lives in NewPool,
// and Connect is the one-line convenience over it.
func Connect(dialer simnet.Dialer, names []string, cfg Config) (*Receptionist, error) {
	pool, err := NewPool(dialer, names, cfg)
	if err != nil {
		return nil, err
	}
	return NewReceptionist(pool), nil
}

// NewReceptionist wraps an already-connected pool in the Receptionist
// convenience API. Receptionists are stateless handles: any number may wrap
// the same pool, alongside direct Pool/Session use.
func NewReceptionist(pool *Pool) *Receptionist {
	return &Receptionist{pool: pool}
}

// Pool returns the connection pool serving this receptionist.
func (r *Receptionist) Pool() *Pool { return r.pool }

// Federation returns the shared federation state behind this receptionist.
func (r *Receptionist) Federation() *Federation { return r.pool.fed }

// Close closes every librarian connection, idle or leased. Queries in
// flight fail with transport errors (or complete their current exchange);
// new queries fail with ErrPoolClosed. Close is idempotent.
func (r *Receptionist) Close() error { return r.pool.Close() }

// Librarians returns the librarian names in global-numbering order.
func (r *Receptionist) Librarians() []string { return r.pool.fed.Librarians() }

// TotalDocs returns the number of documents across all librarians.
func (r *Receptionist) TotalDocs() uint32 { return r.pool.fed.TotalDocs() }

// GlobalDoc converts (librarian, local id) to the global document number.
func (r *Receptionist) GlobalDoc(name string, local uint32) (uint32, error) {
	return r.pool.fed.GlobalDoc(name, local)
}

// ResolveGlobal converts a global document number to (librarian, local id).
func (r *Receptionist) ResolveGlobal(global uint32) (string, uint32, error) {
	return r.pool.fed.ResolveGlobal(global)
}

// SetupVocabulary performs the CV preprocessing step: fetch each librarian's
// vocabulary and merge into the global term statistics. The returned trace
// records the transfer cost. Required before CV or CI queries.
func (r *Receptionist) SetupVocabulary() (Trace, error) { return r.pool.SetupVocabulary() }

// VocabularySize returns the number of distinct terms in the merged
// vocabulary and its approximate storage cost in bytes.
func (r *Receptionist) VocabularySize() (terms int, bytes uint64) {
	return r.pool.fed.VocabularySize()
}

// SetupModels fetches each librarian's document-compression model, enabling
// compressed document transfer.
func (r *Receptionist) SetupModels() (Trace, error) { return r.pool.SetupModels() }

// SetupCentralIndexRemote performs the CI preprocessing entirely over the
// wire: fetch every librarian's inverted index, merge them into a grouped
// central index with groups of groupSize adjacent documents, and install
// it. The returned trace records the (large) one-time transfer cost the
// paper's §4 discusses for the CI receptionist.
func (r *Receptionist) SetupCentralIndexRemote(groupSize int) (Trace, error) {
	return r.pool.SetupCentralIndexRemote(groupSize)
}

// SetupCentralIndex installs the grouped central index for CI queries. The
// grouped index must have been built over the same documents in the same
// global order (see BuildGrouped); this is the offline "merge the
// subcollection indexes" preprocessing the paper describes.
func (r *Receptionist) SetupCentralIndex(g *GroupedIndex) error {
	return r.pool.fed.SetupCentralIndex(g)
}

// GlobalWeights computes the merged-vocabulary query weights
// w_{q,t} = log(f_{q,t}+1)·log(N/f_t+1) with N and f_t global. Requires
// SetupVocabulary.
func (r *Receptionist) GlobalWeights(query string) (map[string]float64, error) {
	return r.pool.fed.GlobalWeights(query)
}

// SelectLibrarians returns the names of the r librarians a TopR=r query for
// query would fan out to, in global-numbering order; see
// Federation.SelectLibrarians. Requires SetupVocabulary.
func (r *Receptionist) SelectLibrarians(query string, topR int) ([]string, error) {
	return r.pool.fed.SelectLibrarians(query, topR)
}

// Query evaluates a ranked query under the given methodology, returning the
// top k answers merged across librarians. Safe for concurrent use.
func (r *Receptionist) Query(mode Mode, query string, k int, opts Options) (*Result, error) {
	return r.pool.Query(mode, query, k, opts)
}

// QueryContext is Query under a context; see Session.QueryContext.
func (r *Receptionist) QueryContext(ctx context.Context, mode Mode, query string, k int, opts Options) (*Result, error) {
	return r.pool.QueryContext(ctx, mode, query, k, opts)
}

// Metrics returns the observability surface of the underlying pool.
func (r *Receptionist) Metrics() *Metrics { return r.pool.Metrics() }

// InvalidateCache drops every cached result; see Pool.InvalidateCache.
func (r *Receptionist) InvalidateCache() { r.pool.InvalidateCache() }

// CacheStats snapshots the result cache's counters; ok is false when no
// cache is configured.
func (r *Receptionist) CacheStats() (stats CacheStats, ok bool) { return r.pool.CacheStats() }

// Boolean evaluates expr at every librarian and unions the result sets.
func (r *Receptionist) Boolean(expr string) (*BooleanResult, error) {
	return r.pool.Boolean(expr)
}

// AddReplica registers a new endpoint serving the named librarian's
// subcollection; see Pool.AddReplica.
func (r *Receptionist) AddReplica(lib, endpoint string) error {
	return r.pool.AddReplica(lib, endpoint)
}

// RemoveReplica takes an endpoint out of the named librarian's replica set;
// see Pool.RemoveReplica.
func (r *Receptionist) RemoveReplica(lib, endpoint string) error {
	return r.pool.RemoveReplica(lib, endpoint)
}

// Replicas reports the current replica set of the named librarian.
func (r *Receptionist) Replicas(lib string) ([]ReplicaStatus, error) {
	return r.pool.Replicas(lib)
}
