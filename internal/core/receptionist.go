package core

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"net"
	"sort"
	"sync"
	"time"

	"teraphim/internal/huffman"
	"teraphim/internal/index"
	"teraphim/internal/protocol"
	"teraphim/internal/simnet"
	"teraphim/internal/textproc"
)

// Answer is one document returned to the user: the owning librarian, its
// local and global ids, the merged similarity score, and (when the fetch
// phase runs) the document itself.
type Answer struct {
	Librarian string
	LocalDoc  uint32
	GlobalDoc uint32
	Score     float64
	Title     string
	Text      string
}

// Key returns the global document identity "librarian:localid" used in
// qrels and run files.
func (a Answer) Key() string { return fmt.Sprintf("%s:%d", a.Librarian, a.LocalDoc) }

// Result is a completed query: the merged ranking plus its trace.
type Result struct {
	Answers []Answer
	Trace   Trace
}

// Options tunes one query evaluation.
type Options struct {
	// KPrime is the number of groups the CI methodology expands (the
	// paper's k'). Zero selects DefaultKPrime.
	KPrime int
	// Fetch runs step 4, retrieving document text for the top k.
	Fetch bool
	// CompressedTransfer ships documents in compressed form; requires
	// SetupModels to have run so the receptionist can decompress.
	CompressedTransfer bool
	// Merge selects the CN collation strategy (zero = MergeFaceValue, the
	// paper's behaviour). Ignored by CV and CI, whose scores are already
	// globally comparable.
	Merge MergeStrategy
	// Timeout bounds each librarian exchange within the query; zero means
	// no deadline. On the paper's WAN, where "the cost of running the WAN
	// queries varied by as much as a factor of one hundred", a deadline is
	// what keeps one stuck site from hanging the whole query.
	Timeout time.Duration
	// Retries is the number of additional attempts after a failed librarian
	// exchange. Each retry redials the librarian (a timed-out stream may be
	// desynced mid-message and is never reused) and re-sends the request.
	// Zero fails the exchange on its first error.
	Retries int
	// Backoff is the wait before the first retry, doubling on each further
	// retry and capped at 5s. Zero retries immediately.
	Backoff time.Duration
	// AllowPartial lets a query complete from the surviving librarians when
	// some exhaust every attempt: CN and CV merge the rankings that arrived,
	// CI drops candidate groups owned by dead librarians, and the failures
	// are recorded in Trace.Failures with Trace.Degraded set. When false
	// (the default) the first exhausted librarian fails the query.
	// MinLibrarians > 0 implies AllowPartial.
	AllowPartial bool
	// MinLibrarians is the minimum number of librarians that must answer
	// the rank phase for a partial result to be returned; fewer fails the
	// query. Zero means one surviving librarian suffices.
	MinLibrarians int
}

// DefaultKPrime is the paper's default k' for the CI methodology.
const DefaultKPrime = 100

// libInfo is the receptionist's knowledge of one librarian.
type libInfo struct {
	name    string
	conn    net.Conn
	dialer  simnet.Dialer // stored at Connect time, for redials
	dirty   bool          // stream desynced by a failed exchange; redial before reuse
	numDocs uint32
	offset  uint32 // global id of this librarian's local doc 0

	vocab map[string]uint32    // term -> local f_t (after SetupVocabulary)
	model *huffman.TextModel   // document decompressor (after SetupModels)
	hello *protocol.HelloReply // collection statistics
}

// Receptionist brokers queries to a fixed set of librarians. It is not safe
// for concurrent use; run one receptionist per client session, as TERAPHIM
// does (each librarian accepts many sessions).
type Receptionist struct {
	analyzer *textproc.Analyzer
	libs     []*libInfo
	byName   map[string]*libInfo

	totalDocs uint32
	globalFT  map[string]uint32 // merged vocabulary (after SetupVocabulary)
	central   *GroupedIndex     // CI state (after SetupCentralIndex)

	// policy applies to librarian exchanges of the query in flight; see
	// callPolicy. Setup exchanges run with the zero policy.
	policy callPolicy

	closed bool
}

// Config configures a Receptionist.
type Config struct {
	// Analyzer must match the librarians' analysis pipeline. Nil selects
	// the standard pipeline.
	Analyzer *textproc.Analyzer
}

// Connect dials the named librarians (in the given order — the order fixes
// global document numbering) and performs the Hello exchange.
func Connect(dialer simnet.Dialer, names []string, cfg Config) (*Receptionist, error) {
	if len(names) == 0 {
		return nil, errors.New("core: no librarians")
	}
	analyzer := cfg.Analyzer
	if analyzer == nil {
		analyzer = textproc.NewAnalyzer()
	}
	r := &Receptionist{analyzer: analyzer, byName: make(map[string]*libInfo, len(names))}
	for _, name := range names {
		conn, err := dialer.Dial(name)
		if err != nil {
			r.Close()
			return nil, fmt.Errorf("core: connect %q: %w", name, err)
		}
		li := &libInfo{name: name, conn: conn, dialer: dialer}
		r.libs = append(r.libs, li)
		r.byName[name] = li
	}
	// Hello exchange establishes sizes and global numbering.
	var trace Trace
	replies, err := r.callParallel(&trace, PhaseSetup, r.allNames(), func(string) protocol.Message {
		return &protocol.Hello{}
	})
	if err != nil {
		r.Close()
		return nil, err
	}
	var offset uint32
	for _, li := range r.libs {
		hello, ok := replies[li.name].(*protocol.HelloReply)
		if !ok {
			r.Close()
			return nil, fmt.Errorf("core: librarian %q answered Hello with %v", li.name, replies[li.name].Type())
		}
		li.hello = hello
		li.numDocs = hello.NumDocs
		li.offset = offset
		offset += hello.NumDocs
	}
	r.totalDocs = offset
	return r, nil
}

// Close closes every librarian connection.
func (r *Receptionist) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	var firstErr error
	for _, li := range r.libs {
		if li.conn == nil {
			continue
		}
		if err := li.conn.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Librarians returns the librarian names in global-numbering order.
func (r *Receptionist) Librarians() []string { return r.allNames() }

// TotalDocs returns the number of documents across all librarians.
func (r *Receptionist) TotalDocs() uint32 { return r.totalDocs }

func (r *Receptionist) allNames() []string {
	names := make([]string, len(r.libs))
	for i, li := range r.libs {
		names[i] = li.name
	}
	return names
}

// GlobalDoc converts (librarian, local id) to the global document number.
func (r *Receptionist) GlobalDoc(name string, local uint32) (uint32, error) {
	li, ok := r.byName[name]
	if !ok {
		return 0, fmt.Errorf("core: unknown librarian %q", name)
	}
	if local >= li.numDocs {
		return 0, fmt.Errorf("core: doc %d outside %q's %d documents", local, name, li.numDocs)
	}
	return li.offset + local, nil
}

// ResolveGlobal converts a global document number to (librarian, local id).
// CI expansion calls this once per candidate document, so it binary-searches
// the offset table (librarians are stored in global-numbering order) rather
// than scanning it.
func (r *Receptionist) ResolveGlobal(global uint32) (string, uint32, error) {
	if global >= r.totalDocs {
		return "", 0, fmt.Errorf("core: global doc %d outside collection of %d", global, r.totalDocs)
	}
	// The last librarian whose offset is <= global owns it: any earlier
	// librarian with the same offset is empty, and the next one starts past
	// global.
	i := sort.Search(len(r.libs), func(i int) bool { return r.libs[i].offset > global }) - 1
	li := r.libs[i]
	return li.name, global - li.offset, nil
}

// SetupVocabulary performs the CV preprocessing step: fetch each librarian's
// vocabulary and merge into the global term statistics. The returned trace
// records the transfer cost. Required before CV or CI queries.
func (r *Receptionist) SetupVocabulary() (Trace, error) {
	var trace Trace
	trace.Mode = ModeCV
	replies, err := r.callParallel(&trace, PhaseSetup, r.allNames(), func(string) protocol.Message {
		return &protocol.VocabRequest{}
	})
	if err != nil {
		return trace, err
	}
	r.globalFT = make(map[string]uint32, 4096)
	for _, li := range r.libs {
		vr, ok := replies[li.name].(*protocol.VocabReply)
		if !ok {
			return trace, fmt.Errorf("core: librarian %q answered VocabRequest with %v", li.name, replies[li.name].Type())
		}
		li.vocab = make(map[string]uint32, len(vr.Terms))
		for _, ts := range vr.Terms {
			li.vocab[ts.Term] = ts.FT
			r.globalFT[ts.Term] += ts.FT
		}
	}
	return trace, nil
}

// VocabularySize returns the number of distinct terms in the merged
// vocabulary and its approximate storage cost in bytes.
func (r *Receptionist) VocabularySize() (terms int, bytes uint64) {
	for t := range r.globalFT {
		bytes += uint64(len(t)) + 8
	}
	return len(r.globalFT), bytes
}

// SetupModels fetches each librarian's document-compression model, enabling
// compressed document transfer.
func (r *Receptionist) SetupModels() (Trace, error) {
	var trace Trace
	replies, err := r.callParallel(&trace, PhaseSetup, r.allNames(), func(string) protocol.Message {
		return &protocol.ModelRequest{}
	})
	if err != nil {
		return trace, err
	}
	for _, li := range r.libs {
		mr, ok := replies[li.name].(*protocol.ModelReply)
		if !ok {
			return trace, fmt.Errorf("core: librarian %q answered ModelRequest with %v", li.name, replies[li.name].Type())
		}
		model, err := huffman.UnmarshalTextModel(mr.Model)
		if err != nil {
			return trace, fmt.Errorf("core: librarian %q model: %w", li.name, err)
		}
		li.model = model
	}
	return trace, nil
}

// SetupCentralIndexRemote performs the CI preprocessing entirely over the
// wire: fetch every librarian's inverted index, merge them into a grouped
// central index with groups of groupSize adjacent documents, and install
// it. The returned trace records the (large) one-time transfer cost the
// paper's §4 discusses for the CI receptionist.
func (r *Receptionist) SetupCentralIndexRemote(groupSize int) (Trace, error) {
	var trace Trace
	trace.Mode = ModeCI
	replies, err := r.callParallel(&trace, PhaseSetup, r.allNames(), func(string) protocol.Message {
		return &protocol.IndexRequest{}
	})
	if err != nil {
		return trace, err
	}
	subIndexes := make([]*index.Index, len(r.libs))
	offsets := make([]uint32, len(r.libs))
	for i, li := range r.libs {
		ir, ok := replies[li.name].(*protocol.IndexReply)
		if !ok {
			return trace, fmt.Errorf("core: librarian %q answered IndexRequest with %v", li.name, replies[li.name].Type())
		}
		ix, err := index.ReadFrom(bytes.NewReader(ir.Data))
		if err != nil {
			return trace, fmt.Errorf("core: librarian %q index: %w", li.name, err)
		}
		if ix.NumDocs() != li.numDocs {
			return trace, fmt.Errorf("core: librarian %q shipped index of %d docs, expected %d",
				li.name, ix.NumDocs(), li.numDocs)
		}
		subIndexes[i] = ix
		offsets[i] = li.offset
	}
	grouped, err := BuildGroupedFromIndexes(subIndexes, offsets, r.totalDocs, groupSize, r.analyzer)
	if err != nil {
		return trace, err
	}
	r.central = grouped
	return trace, nil
}

// SetupCentralIndex installs the grouped central index for CI queries. The
// grouped index must have been built over the same documents in the same
// global order (see BuildGrouped); this is the offline "merge the
// subcollection indexes" preprocessing the paper describes.
func (r *Receptionist) SetupCentralIndex(g *GroupedIndex) error {
	if g == nil {
		return errors.New("core: nil grouped index")
	}
	if g.totalDocs != r.totalDocs {
		return fmt.Errorf("core: grouped index covers %d docs, receptionist %d", g.totalDocs, r.totalDocs)
	}
	r.central = g
	return nil
}

// GlobalWeights computes the merged-vocabulary query weights
// w_{q,t} = log(f_{q,t}+1)·log(N/f_t+1) with N and f_t global. Requires
// SetupVocabulary.
func (r *Receptionist) GlobalWeights(query string) (map[string]float64, error) {
	if r.globalFT == nil {
		return nil, errors.New("core: SetupVocabulary has not run")
	}
	terms := r.analyzer.Terms(nil, query)
	freqs := make(map[string]uint32, len(terms))
	for _, t := range terms {
		freqs[t]++
	}
	weights := make(map[string]float64, len(freqs))
	n := float64(r.totalDocs)
	for t, fqt := range freqs {
		ft := r.globalFT[t]
		if ft == 0 {
			continue
		}
		weights[t] = math.Log(float64(fqt)+1) * math.Log(n/float64(ft)+1)
	}
	return weights, nil
}

// Query evaluates a ranked query under the given methodology, returning the
// top k answers merged across librarians.
func (r *Receptionist) Query(mode Mode, query string, k int, opts Options) (*Result, error) {
	if k <= 0 {
		return nil, fmt.Errorf("core: k must be positive, got %d", k)
	}
	res := &Result{}
	res.Trace.Mode = mode
	r.policy = policyFor(opts)
	defer func() { r.policy = callPolicy{} }()
	var err error
	switch mode {
	case ModeCN:
		err = r.queryCN(res, query, k, opts)
	case ModeCV:
		err = r.queryCV(res, query, k)
	case ModeCI:
		err = r.queryCI(res, query, k, opts)
	default:
		return nil, fmt.Errorf("core: receptionist cannot evaluate mode %v", mode)
	}
	if err != nil {
		return nil, err
	}
	if opts.Fetch {
		if err := r.fetchAnswers(res, opts.CompressedTransfer); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// callParallel sends one request to each named librarian concurrently and
// waits for every outcome, appending per-attempt Call records to trace. A
// librarian whose exchange fails is retried per the current policy (redial,
// capped exponential backoff); one that exhausts its attempts is recorded in
// trace.Failures. Whether a failure fails the whole call depends on the
// policy: without AllowPartial the first failure is returned as an error
// (an ErrorReply surfaces as a *protocol.RemoteError); with it, the
// surviving replies are returned and trace.Degraded is set, provided at
// least MinLibrarians answered the rank phase.
func (r *Receptionist) callParallel(trace *Trace, phase Phase, names []string, makeReq func(name string) protocol.Message) (map[string]protocol.Message, error) {
	type outcome struct {
		name  string
		calls []Call
		reply protocol.Message
		fail  *Failure
	}
	results := make(chan outcome, len(names))
	var wg sync.WaitGroup
	for _, name := range names {
		li, ok := r.byName[name]
		if !ok {
			return nil, fmt.Errorf("core: unknown librarian %q", name)
		}
		req := makeReq(name)
		wg.Add(1)
		go func(li *libInfo, req protocol.Message) {
			defer wg.Done()
			calls, reply, fail := r.callLibrarian(li, phase, req)
			results <- outcome{name: li.name, calls: calls, reply: reply, fail: fail}
		}(li, req)
	}
	wg.Wait()
	close(results)

	replies := make(map[string]protocol.Message, len(names))
	var failures []Failure
	for out := range results {
		trace.Calls = append(trace.Calls, out.calls...)
		if out.fail != nil {
			failures = append(failures, *out.fail)
			continue
		}
		replies[out.name] = out.reply
	}
	// Keep trace ordering deterministic for tests and cost accounting; the
	// stable sort preserves attempt order within a (phase, librarian) pair.
	sort.SliceStable(trace.Calls, func(i, j int) bool {
		if trace.Calls[i].Phase != trace.Calls[j].Phase {
			return trace.Calls[i].Phase < trace.Calls[j].Phase
		}
		return trace.Calls[i].Librarian < trace.Calls[j].Librarian
	})
	if len(failures) == 0 {
		return replies, nil
	}
	sort.Slice(failures, func(i, j int) bool { return failures[i].Librarian < failures[j].Librarian })
	trace.Failures = append(trace.Failures, failures...)
	if !r.policy.allowPartial {
		f := failures[0]
		return nil, fmt.Errorf("core: librarian %q: %w", f.Librarian, f.Err)
	}
	trace.Degraded = true
	if phase == PhaseRank {
		min := r.policy.minLibrarians
		if min < 1 {
			min = 1
		}
		if len(replies) < min {
			return nil, fmt.Errorf("core: only %d of %d librarians answered, need %d",
				len(replies), len(names), min)
		}
	}
	return replies, nil
}

// fetchAnswers runs the document-retrieval phase for res.Answers in place.
func (r *Receptionist) fetchAnswers(res *Result, compressed bool) error {
	// Group requested docs by librarian; requests are sent in one block per
	// librarian, per the paper's "documents should be bundled into blocks"
	// finding.
	byLib := make(map[string][]uint32)
	for _, a := range res.Answers {
		byLib[a.Librarian] = append(byLib[a.Librarian], a.LocalDoc)
	}
	names := make([]string, 0, len(byLib))
	for name, docs := range byLib {
		sort.Slice(docs, func(i, j int) bool { return docs[i] < docs[j] })
		byLib[name] = docs
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil
	}
	replies, err := r.callParallel(&res.Trace, PhaseFetch, names, func(name string) protocol.Message {
		return &protocol.FetchDocs{Docs: byLib[name], Compressed: compressed}
	})
	if err != nil {
		return err
	}
	texts := make(map[string]protocol.DocBlob)
	for name, reply := range replies {
		fr, ok := reply.(*protocol.FetchReply)
		if !ok {
			return fmt.Errorf("core: librarian %q answered FetchDocs with %v", name, reply.Type())
		}
		for _, blob := range fr.Docs {
			texts[fmt.Sprintf("%s:%d", name, blob.Doc)] = blob
		}
	}
	for i := range res.Answers {
		a := &res.Answers[i]
		blob, ok := texts[a.Key()]
		if !ok {
			if _, answered := replies[a.Librarian]; !answered {
				// The librarian failed its fetch exchange and the policy
				// allowed a partial result (recorded in Trace.Failures);
				// the answer keeps its rank and score, without text.
				continue
			}
			return fmt.Errorf("core: librarian %q did not return doc %d", a.Librarian, a.LocalDoc)
		}
		a.Title = blob.Title
		if blob.Compressed {
			li := r.byName[a.Librarian]
			if li.model == nil {
				return fmt.Errorf("core: compressed transfer from %q but SetupModels has not run", a.Librarian)
			}
			text, err := li.model.DecompressDoc(blob.Data)
			if err != nil {
				return fmt.Errorf("core: decompress %s: %w", a.Key(), err)
			}
			a.Text = text
		} else {
			a.Text = string(blob.Data)
		}
	}
	return nil
}
