// Package core implements the paper's contribution: the receptionist that
// brokers ranked queries to independent librarians under the three federated
// methodologies — Central Nothing (CN), Central Vocabulary (CV) and Central
// Index (CI) — plus a mono-server (MS) baseline wrapper.
//
// Every query records a Trace of the protocol exchange (message sizes,
// round trips, librarian-side evaluation statistics). Traces feed package
// costmodel, which converts them into elapsed-time estimates for the
// mono-disk / multi-disk / LAN / WAN configurations of Tables 3 and 4.
package core

import (
	"fmt"
	"time"

	"teraphim/internal/protocol"
	"teraphim/internal/search"
)

// Mode selects the distributed methodology for a query.
type Mode int

// Methodologies. ModeMS is handled by MonoServer; the receptionist accepts
// the other three.
const (
	ModeMS Mode = iota + 1
	ModeCN
	ModeCV
	ModeCI
)

func (m Mode) String() string {
	switch m {
	case ModeMS:
		return "MS"
	case ModeCN:
		return "CN"
	case ModeCV:
		return "CV"
	case ModeCI:
		return "CI"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Phase labels the stage of query evaluation a call belongs to, matching the
// numbered steps of §3 of the paper.
type Phase int

// Phases of query evaluation.
const (
	PhaseSetup Phase = iota + 1 // establishing parameters (vocab, models)
	PhaseRank                   // steps 1–3: query shipping and ranking
	PhaseFetch                  // step 4: document retrieval
)

func (p Phase) String() string {
	switch p {
	case PhaseSetup:
		return "setup"
	case PhaseRank:
		return "rank"
	case PhaseFetch:
		return "fetch"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// Call records one request/response exchange with a librarian.
type Call struct {
	Librarian string
	// Replica is the endpoint that served this exchange — equal to
	// Librarian in an unreplicated pool.
	Replica string
	// Hedge marks a speculative duplicate exchange raced against a slow
	// primary (Options.HedgeAfter). Hedges are extra traffic, not retries:
	// RetryAttempts skips them.
	Hedge     bool
	Phase     Phase
	ReqType   protocol.MsgType
	ReqBytes  int
	RespBytes int
	// BatchSize is how many queries shared the wire frame that carried this
	// exchange (Options.BatchWindow coalescing); zero means the exchange had
	// its own frame. ReqBytes/RespBytes are this query's encoded items plus
	// an even share of the batch framing overhead.
	BatchSize int

	// LibStats is the librarian-side evaluation work (rank/score calls).
	LibStats search.Stats
	// DocsFetched and DocBytes describe fetch traffic.
	DocsFetched int
	DocBytes    int

	// Ship is the time spent writing the request onto the wire; Wait spans
	// from the end of the write until the reply is fully read, i.e. the
	// librarian's evaluation plus the reply transfer.
	Ship time.Duration
	Wait time.Duration
}

// Failure records one librarian that could not complete an exchange: the
// original attempt plus every retry failed, and the query proceeded (or
// aborted) without it.
type Failure struct {
	Librarian string
	Phase     Phase
	// Attempts is the number of exchanges tried before giving up (1 when
	// retries were not configured or the error was not retryable).
	Attempts int
	Err      error
}

// StageTimings is the wall-clock decomposition of one query, mirroring the
// cost-model stages: Analyze is central work before any librarian is
// contacted (CV/CI global weighting, CI group ranking); Ship is request
// writing and Wait is librarian evaluation plus reply reading, each taken
// as the maximum across the librarians contacted in parallel (attempts of
// one librarian sum — retries lengthen its critical path); Merge is central
// collation of the replies.
type StageTimings struct {
	Analyze time.Duration
	Ship    time.Duration
	Wait    time.Duration
	Merge   time.Duration
}

// Trace is the complete record of one query's distributed evaluation.
type Trace struct {
	Mode  Mode
	Calls []Call

	// Stages is the per-stage wall-clock breakdown of this query.
	Stages StageTimings

	// CentralStats is receptionist-side index work (CI group ranking; zero
	// otherwise).
	CentralStats search.Stats
	// MergeCandidates is the number of scored documents merged centrally.
	MergeCandidates int
	// LibrariansAsked counts librarians contacted in the rank phase.
	LibrariansAsked int
	// LibrariansSelected counts librarians the top-R collection-selection
	// ranker picked for this query; zero when selection was off
	// (Options.TopR <= 0). Selection is the last filter before contact (it
	// runs after CV/CI's own eligibility filters), so when it ran this
	// equals LibrariansAsked — the field distinguishes "asked few because
	// selection narrowed the fan-out" from "asked few anyway".
	LibrariansSelected int

	// LocalDocsFetched and LocalDocBytes account for documents the MS
	// baseline reads from its own disk (no network involved).
	LocalDocsFetched int
	LocalDocBytes    int

	// Hedges counts hedged exchanges launched for this query — the primary
	// outlived its latency-quantile budget and a second replica was raced
	// (only hedges that actually got a free connection slot count).
	// HedgeWins counts those whose reply arrived first and was used.
	Hedges    int
	HedgeWins int

	// Failures records librarians that failed every attempt of an exchange,
	// whether or not the query went on to succeed from the survivors.
	Failures []Failure
	// Degraded marks a query answered from a surviving subset of librarians
	// (some Failures occurred but Options allowed a partial result).
	Degraded bool
	// CacheHit marks a query answered from the receptionist result cache:
	// zero librarian exchanges, zero bytes moved — Calls, Stages and the
	// other cost fields describe this (free) evaluation, not the original
	// one that populated the cache.
	CacheHit bool
}

// RoundTrips counts request/response exchanges in the given phase (all
// phases when phase is 0). Calls to distinct librarians within a phase
// happen in parallel; this count is total message-pair volume, not depth.
func (t *Trace) RoundTrips(phase Phase) int {
	n := 0
	for _, c := range t.Calls {
		if phase == 0 || c.Phase == phase {
			n++
		}
	}
	return n
}

// BytesTransferred sums request+response bytes in the given phase (all
// phases when phase is 0).
func (t *Trace) BytesTransferred(phase Phase) int {
	n := 0
	for _, c := range t.Calls {
		if phase == 0 || c.Phase == phase {
			n += c.ReqBytes + c.RespBytes
		}
	}
	return n
}

// FailedLibrarians returns the names of librarians with a recorded Failure
// in the given phase (all phases when phase is 0), without duplicates, in
// trace order.
func (t *Trace) FailedLibrarians(phase Phase) []string {
	var names []string
	seen := make(map[string]bool, len(t.Failures))
	for _, f := range t.Failures {
		if (phase == 0 || f.Phase == phase) && !seen[f.Librarian] {
			seen[f.Librarian] = true
			names = append(names, f.Librarian)
		}
	}
	return names
}

// RetryAttempts counts exchanges beyond each librarian's first attempt in a
// phase — the extra network work fault tolerance cost this query, whether
// the retries eventually succeeded or not. Hedge exchanges are excluded:
// a hedge races the same attempt on a second replica rather than repeating
// a failed one, and is accounted separately in Trace.Hedges.
func (t *Trace) RetryAttempts() int {
	type key struct {
		phase Phase
		lib   string
	}
	counts := make(map[key]int, len(t.Calls))
	for _, c := range t.Calls {
		if c.Hedge {
			continue
		}
		counts[key{c.Phase, c.Librarian}]++
	}
	n := 0
	for _, cnt := range counts {
		if cnt > 1 {
			n += cnt - 1
		}
	}
	return n
}

// LibrarianWork aggregates librarian-side evaluation statistics, the
// "overall use of resources" quantity the paper's efficiency analysis
// discusses.
func (t *Trace) LibrarianWork() search.Stats {
	var total search.Stats
	for _, c := range t.Calls {
		total.Add(c.LibStats)
	}
	return total
}
