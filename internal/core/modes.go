package core

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"teraphim/internal/protocol"
	"teraphim/internal/search"
)

// queryCN implements Central Nothing: every librarian (or, under top-R
// selection, the R most promising) ranks with its own local statistics; the
// receptionist merges the kS results with the resolved fusion strategy
// (face value by default, as in the paper). CN needs no central state —
// except when TopR is set, which requires SetupVocabulary for the
// collection statistics the ranker scores with.
func (e *exec) queryCN(res *Result, query string, k int, merge MergeStrategy) error {
	names := e.fed.Librarians()
	if e.topR > 0 {
		vs := e.fed.vocab.Load()
		terms := e.fed.analyzer.Terms(nil, query)
		selected, err := e.selectTopR(&res.Trace, vs, terms, nil)
		if err != nil {
			return err
		}
		names = selected
	}
	res.Trace.LibrariansAsked = len(names)
	if len(names) == 0 {
		res.Answers = nil
		return nil
	}
	replies, err := e.callParallel(&res.Trace, PhaseRank, names, func(string) protocol.Message {
		return &protocol.RankQuery{Query: query, K: uint32(k), Evaluator: uint8(e.eval)}
	})
	if err != nil {
		return err
	}
	return e.mergeWith(res, replies, k, merge)
}

// queryCV implements Central Vocabulary: the receptionist computes global
// term weights from its merged vocabulary, skips librarians holding none of
// the query terms, and ships the weights with the query. Librarian scores
// are then exactly the mono-server scores.
func (e *exec) queryCV(res *Result, query string, k int) error {
	analyzeStart := time.Now()
	weights, err := e.fed.GlobalWeights(query)
	if err != nil {
		return err
	}
	// Eligibility: a librarian whose vocabulary contains none of the
	// weighted terms cannot contribute and is not contacted. The vocab
	// snapshot is loaded once so eligibility, weighting and top-R selection
	// agree even if a re-setup lands mid-query.
	vs := e.fed.vocab.Load()
	var eligible []int
	for i := range e.fed.libs {
		for term := range weights {
			if vs.perLib[i][term] > 0 {
				eligible = append(eligible, i)
				break
			}
		}
	}
	res.Trace.Stages.Analyze += time.Since(analyzeStart)
	names := make([]string, 0, len(eligible))
	if e.topR > 0 && len(eligible) > 0 {
		terms := make([]string, 0, len(weights))
		for t := range weights {
			terms = append(terms, t)
		}
		selected, err := e.selectTopR(&res.Trace, vs, terms, eligible)
		if err != nil {
			return err
		}
		names = selected
	} else {
		for _, i := range eligible {
			names = append(names, e.fed.libs[i].name)
		}
	}
	res.Trace.LibrariansAsked = len(names)
	if len(names) == 0 {
		res.Answers = nil
		return nil
	}
	replies, err := e.callParallel(&res.Trace, PhaseRank, names, func(string) protocol.Message {
		return &protocol.RankQuery{Query: query, K: uint32(k), Weights: weights, Evaluator: uint8(e.eval)}
	})
	if err != nil {
		return err
	}
	return e.mergeRankings(res, replies, k)
}

// queryCI implements Central Index: rank groups on the central grouped
// index, expand the best k' groups into document ids, have the owning
// librarians score exactly those documents with global weights, and merge.
func (e *exec) queryCI(res *Result, query string, k int, opts Options) error {
	central := e.fed.CentralIndex()
	if central == nil {
		return errors.New("core: SetupCentralIndex has not run")
	}
	analyzeStart := time.Now()
	weights, err := e.fed.GlobalWeights(query)
	if err != nil {
		return err
	}
	kPrime := opts.KPrime
	if kPrime <= 0 {
		kPrime = DefaultKPrime
	}
	scratch := search.GetScratch()
	groups, centralStats, err := central.RankGroupsEval(scratch, query, kPrime, e.eval)
	scratch.Release()
	if err != nil {
		return err
	}
	res.Trace.CentralStats = centralStats

	globalDocs := central.Expand(groups)
	// Partition expanded documents by owning librarian.
	byLib := make(map[string][]uint32)
	for _, g := range globalDocs {
		name, local, err := e.fed.ResolveGlobal(g)
		if err != nil {
			return err
		}
		byLib[name] = append(byLib[name], local)
	}
	names := make([]string, 0, len(byLib))
	for name, docs := range byLib {
		sort.Slice(docs, func(i, j int) bool { return docs[i] < docs[j] })
		byLib[name] = docs
		names = append(names, name)
	}
	sort.Strings(names)
	res.Trace.Stages.Analyze += time.Since(analyzeStart)
	if e.topR > 0 && len(names) > 0 {
		// Top-R selection over the owners of expanded candidates: documents
		// at unselected librarians are dropped from the score phase, trading
		// recall for fan-out exactly as in CN/CV.
		owners := make([]int, len(names))
		for i, name := range names {
			owners[i] = e.fed.byName[name].idx
		}
		terms := make([]string, 0, len(weights))
		for t := range weights {
			terms = append(terms, t)
		}
		selected, err := e.selectTopR(&res.Trace, e.fed.vocab.Load(), terms, owners)
		if err != nil {
			return err
		}
		names = selected
	}
	res.Trace.LibrariansAsked = len(names)
	if len(names) == 0 {
		res.Answers = nil
		return nil
	}
	replies, err := e.callParallel(&res.Trace, PhaseRank, names, func(name string) protocol.Message {
		return &protocol.ScoreDocs{Query: query, Docs: byLib[name], Weights: weights}
	})
	if err != nil {
		return err
	}
	return e.mergeRankings(res, replies, k)
}

// mergeRankings collates per-librarian rankings into the global top k,
// accepting scores exactly (CV/CI, where weights make them globally
// comparable).
func (e *exec) mergeRankings(res *Result, replies map[string]protocol.Message, k int) error {
	return e.mergeWith(res, replies, k, MergeFaceValue)
}

// mergeWith collates per-librarian rankings under a fusion strategy.
func (e *exec) mergeWith(res *Result, replies map[string]protocol.Message, k int, strategy MergeStrategy) error {
	mergeStart := time.Now()
	defer func() { res.Trace.Stages.Merge += time.Since(mergeStart) }()
	lists := make(map[string][]Answer, len(replies))
	total := 0
	for name, reply := range replies {
		rr, ok := reply.(*protocol.RankReply)
		if !ok {
			return fmt.Errorf("core: librarian %q answered rank phase with %v", name, reply.Type())
		}
		li := e.fed.byName[name]
		answers := make([]Answer, 0, len(rr.Results))
		for _, sd := range rr.Results {
			if sd.Score <= 0 {
				continue
			}
			answers = append(answers, Answer{
				Librarian: name,
				LocalDoc:  sd.Doc,
				GlobalDoc: li.offset + sd.Doc,
				Score:     sd.Score,
			})
		}
		// Librarians return rankings best-first; ScoreDocs replies (CI)
		// arrive in document order, so restore score order here.
		sort.SliceStable(answers, func(i, j int) bool { return answers[i].Score > answers[j].Score })
		lists[name] = answers
		total += len(answers)
	}
	res.Trace.MergeCandidates = total
	res.Answers = fuse(strategy, lists, e.fed.Librarians(), k)
	return nil
}
