package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"teraphim/internal/librarian"
	"teraphim/internal/obs"
	"teraphim/internal/simnet"
)

func testAdmission(t *testing.T, cfg AdmissionConfig) (*admission, chan struct{}) {
	t.Helper()
	done := make(chan struct{})
	adm, err := newAdmission(cfg, done, newMetrics(obs.NewRegistry()))
	if err != nil {
		t.Fatal(err)
	}
	return adm, done
}

func TestAdmissionConfigRejected(t *testing.T) {
	pf := newPoolFixture(t, 2)
	for _, bad := range []int{0, -3} {
		_, err := NewPool(pf.dialer, pf.order, Config{
			Analyzer:  testAnalyzer(),
			Admission: &AdmissionConfig{MaxInFlight: bad},
		})
		if err == nil {
			t.Fatalf("MaxInFlight=%d accepted", bad)
		}
	}
}

// TestAdmissionBoundsInFlight is the limit proof at the unit level: 40
// goroutines race acquire, and the observed concurrent-holder maximum never
// exceeds MaxInFlight; everyone either runs or sheds with ErrOverloaded.
func TestAdmissionBoundsInFlight(t *testing.T) {
	adm, _ := testAdmission(t, AdmissionConfig{MaxInFlight: 3, MaxQueue: 2, MaxWait: 100 * time.Millisecond})
	const goroutines = 40
	var cur, peak, admitted, shed atomic.Int64
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := adm.acquire(context.Background()); err != nil {
				if !errors.Is(err, ErrOverloaded) {
					errc <- err
					return
				}
				shed.Add(1)
				return
			}
			n := cur.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(2 * time.Millisecond)
			cur.Add(-1)
			adm.release()
			admitted.Add(1)
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if p := peak.Load(); p > 3 {
		t.Fatalf("%d queries ran concurrently, limit is 3", p)
	}
	if admitted.Load() < 3 {
		t.Fatalf("only %d admitted", admitted.Load())
	}
	if admitted.Load()+shed.Load() != goroutines {
		t.Fatalf("admitted %d + shed %d != %d", admitted.Load(), shed.Load(), goroutines)
	}
}

func TestAdmissionShedsImmediatelyWithoutQueue(t *testing.T) {
	adm, _ := testAdmission(t, AdmissionConfig{MaxInFlight: 1})
	if err := adm.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	err := adm.acquire(context.Background())
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("full limit with zero queue: got %v, want ErrOverloaded", err)
	}
	adm.release()
	if err := adm.acquire(context.Background()); err != nil {
		t.Fatalf("after release: %v", err)
	}
	adm.release()
}

func TestAdmissionMaxWaitSheds(t *testing.T) {
	adm, _ := testAdmission(t, AdmissionConfig{MaxInFlight: 1, MaxQueue: 1, MaxWait: 20 * time.Millisecond})
	if err := adm.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer adm.release()
	start := time.Now()
	err := adm.acquire(context.Background())
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("queued past MaxWait: got %v, want ErrOverloaded", err)
	}
	if waited := time.Since(start); waited < 15*time.Millisecond {
		t.Fatalf("shed after %v, want ≈20ms of queueing first", waited)
	}
}

func TestAdmissionQueuedRequestGetsFreedSlot(t *testing.T) {
	adm, _ := testAdmission(t, AdmissionConfig{MaxInFlight: 1, MaxQueue: 1})
	if err := adm.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() { got <- adm.acquire(context.Background()) }()
	time.Sleep(5 * time.Millisecond)
	adm.release()
	select {
	case err := <-got:
		if err != nil {
			t.Fatalf("queued acquire after release: %v", err)
		}
		adm.release()
	case <-time.After(time.Second):
		t.Fatal("queued acquire never got the freed slot")
	}
}

// TestAdmissionDeadlineWhileQueued: a context deadline that expires (or has
// already expired) while queued is load shedding — ErrOverloaded, with the
// context's own error still reachable through the chain.
func TestAdmissionDeadlineWhileQueued(t *testing.T) {
	adm, _ := testAdmission(t, AdmissionConfig{MaxInFlight: 1, MaxQueue: 1})
	if err := adm.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer adm.release()

	// The wait budget collapses to the deadline; whether the internal timer
	// or the context fires first, the result is a shed, never a stuck wait.
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Millisecond)
	defer cancel()
	err := adm.acquire(ctx)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("deadline while queued: got %v, want ErrOverloaded", err)
	}

	expired, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel2()
	err = adm.acquire(expired)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("already-expired deadline: got %v, want ErrOverloaded", err)
	}
}

// TestAdmissionCancelIsNotShed: an explicit cancellation is the caller's
// decision, not overload — the error must be Canceled, not ErrOverloaded.
func TestAdmissionCancelIsNotShed(t *testing.T) {
	adm, _ := testAdmission(t, AdmissionConfig{MaxInFlight: 1, MaxQueue: 1})
	if err := adm.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer adm.release()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	err := adm.acquire(ctx)
	if !errors.Is(err, context.Canceled) || errors.Is(err, ErrOverloaded) {
		t.Fatalf("cancelled while queued: got %v, want Canceled and not ErrOverloaded", err)
	}
}

func TestAdmissionPoolCloseUnblocksWaiters(t *testing.T) {
	adm, done := testAdmission(t, AdmissionConfig{MaxInFlight: 1, MaxQueue: 1})
	if err := adm.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer adm.release()
	got := make(chan error, 1)
	go func() { got <- adm.acquire(context.Background()) }()
	time.Sleep(5 * time.Millisecond)
	close(done)
	select {
	case err := <-got:
		if !errors.Is(err, ErrPoolClosed) {
			t.Fatalf("waiter after Close: got %v, want ErrPoolClosed", err)
		}
	case <-time.After(time.Second):
		t.Fatal("closing the pool did not unblock the queued waiter")
	}
}

// TestAdmissionShedsUnderLoad drives the whole query path: 8 clients against
// MaxInFlight 1 over latency-shaped links. Admitted queries succeed, the
// rest shed with ErrOverloaded, and — although the pool itself would allow 8
// connections per librarian — no librarian ever sees more than one
// concurrent connection, because at most one query evaluates at a time.
func TestAdmissionShedsUnderLoad(t *testing.T) {
	corpus, order := smallCorpus(t)
	a := testAnalyzer()
	var libs []*librarian.Librarian
	for _, name := range order {
		lib, err := librarian.Build(name, corpus[name], librarian.BuildOptions{Analyzer: a})
		if err != nil {
			t.Fatal(err)
		}
		libs = append(libs, lib)
	}
	inner := librarian.NewInProcessDialer(libs, simnet.LinkConfig{Latency: 2 * time.Millisecond})
	counter := newCountingDialer(inner)
	pool, err := NewPool(counter, order, Config{
		Analyzer:             a,
		MaxConnsPerLibrarian: 8,
		Admission:            &AdmissionConfig{MaxInFlight: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		pool.Close()
		inner.Wait()
	}()
	if _, err := pool.SetupVocabulary(); err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	const perClient = 3
	var successes, sheds atomic.Int64
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess := pool.Session()
			for i := 0; i < perClient; i++ {
				res, err := sess.Query(ModeCV, "alpha federal wallstreet", 10, Options{})
				if err != nil {
					if !errors.Is(err, ErrOverloaded) {
						errc <- err
						return
					}
					sheds.Add(1)
					continue
				}
				if len(res.Answers) == 0 {
					errc <- errConst("admitted query returned nothing")
					return
				}
				successes.Add(1)
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if successes.Load() == 0 {
		t.Fatal("no query was admitted under overload")
	}
	if sheds.Load() == 0 {
		t.Fatal("8 clients against MaxInFlight 1 shed nothing")
	}
	if successes.Load()+sheds.Load() != goroutines*perClient {
		t.Fatalf("successes %d + sheds %d != %d attempts", successes.Load(), sheds.Load(), goroutines*perClient)
	}
	// The in-flight limit, not the pool bound, governed librarian-side
	// concurrency.
	for _, name := range order {
		if _, _, maxOpen := counter.stats(name); maxOpen > 1 {
			t.Fatalf("librarian %s saw %d concurrent connections under MaxInFlight 1", name, maxOpen)
		}
	}
}

// TestCacheServesHitsWhileSaturated pins the check order: the cache is
// consulted before admission control, so a repeat query still answers (from
// memory) while every in-flight slot is taken, and a novel query sheds.
func TestCacheServesHitsWhileSaturated(t *testing.T) {
	cf := newCacheFixture(t, Config{
		Cache:     &CacheConfig{},
		Admission: &AdmissionConfig{MaxInFlight: 1},
	})
	if _, err := cf.pool.SetupVocabulary(); err != nil {
		t.Fatal(err)
	}
	const query = "alpha federal"
	if _, err := cf.pool.Query(ModeCV, query, 10, Options{}); err != nil {
		t.Fatal(err)
	}
	// Saturate admission directly (same package): the one slot is now held.
	if err := cf.pool.admission.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer cf.pool.admission.release()

	res, err := cf.pool.Query(ModeCV, query, 10, Options{})
	if err != nil {
		t.Fatalf("cached query under saturation: %v", err)
	}
	if !res.Trace.CacheHit {
		t.Fatal("repeat query was not served from the cache")
	}
	if _, err := cf.pool.Query(ModeCV, "aurora widget", 10, Options{}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("novel query under saturation: got %v, want ErrOverloaded", err)
	}
}
