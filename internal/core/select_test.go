package core

import (
	"errors"
	"net"
	"reflect"
	"testing"

	"teraphim/internal/librarian"
	"teraphim/internal/simnet"
)

// setupAllModes runs every Setup* a fixture needs so each mode (and top-R
// selection) is ready.
func setupAllModes(t *testing.T, f *fixture) {
	t.Helper()
	if _, err := f.recep.SetupVocabulary(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.recep.SetupCentralIndexRemote(10); err != nil {
		t.Fatal(err)
	}
}

// TestTopRAllEqualsFullFanout is the golden test: TopR = the whole fleet
// must be answer-identical to full fan-out in every mode — selection with
// R = all ranks every librarian, selects every librarian, and therefore
// changes nothing about the result, only the trace.
func TestTopRAllEqualsFullFanout(t *testing.T) {
	corpus, order := smallCorpus(t)
	f := newFixture(t, corpus, order)
	setupAllModes(t, f)
	queries := []string{
		"alpha federal wallstreet",
		"avalanche fiscal",
		"w1 w2 w3",
		"widget",
	}
	for _, mode := range []Mode{ModeCN, ModeCV, ModeCI} {
		for _, q := range queries {
			full, err := f.recep.Query(mode, q, 10, Options{})
			if err != nil {
				t.Fatalf("%v %q full fan-out: %v", mode, q, err)
			}
			sel, err := f.recep.Query(mode, q, 10, Options{TopR: len(order)})
			if err != nil {
				t.Fatalf("%v %q TopR=all: %v", mode, q, err)
			}
			if !sameResult(sel.Answers, full.Answers) {
				t.Errorf("%v %q: TopR=%d answers differ from full fan-out:\n  full: %v\n  topR: %v",
					mode, q, len(order), keysOf(full.Answers), keysOf(sel.Answers))
			}
			if full.Trace.LibrariansSelected != 0 {
				t.Errorf("%v %q: full fan-out recorded LibrariansSelected=%d, want 0",
					mode, q, full.Trace.LibrariansSelected)
			}
			if sel.Trace.LibrariansSelected != sel.Trace.LibrariansAsked {
				t.Errorf("%v %q: selected %d but asked %d",
					mode, q, sel.Trace.LibrariansSelected, sel.Trace.LibrariansAsked)
			}
		}
	}
}

// TestTopROneRoutesToTopicalHome: a query made of one librarian's topical
// terms with TopR=1 contacts exactly that librarian, in CN and CV alike.
func TestTopROneRoutesToTopicalHome(t *testing.T) {
	corpus, order := smallCorpus(t)
	f := newFixture(t, corpus, order)
	setupAllModes(t, f)
	cases := []struct {
		query string
		home  string
	}{
		{"alpha avalanche aurora", "AP"},
		{"federal finance fiscal", "FR"},
		{"wallstreet widget wholesale", "WSJ"},
	}
	for _, mode := range []Mode{ModeCN, ModeCV} {
		for _, tc := range cases {
			res, err := f.recep.Query(mode, tc.query, 10, Options{TopR: 1})
			if err != nil {
				t.Fatalf("%v %q: %v", mode, tc.query, err)
			}
			if res.Trace.LibrariansAsked != 1 || res.Trace.LibrariansSelected != 1 {
				t.Fatalf("%v %q: asked=%d selected=%d, want 1/1",
					mode, tc.query, res.Trace.LibrariansAsked, res.Trace.LibrariansSelected)
			}
			if len(res.Answers) == 0 {
				t.Fatalf("%v %q: no answers from the topical home", mode, tc.query)
			}
			for _, a := range res.Answers {
				if a.Librarian != tc.home {
					t.Fatalf("%v %q: answer from %s, want all from %s", mode, tc.query, a.Librarian, tc.home)
				}
			}
		}
	}
}

// TestTopRRequiresVocabulary: TopR without SetupVocabulary is a typed error
// in every mode — CN included, which otherwise needs no central state.
func TestTopRRequiresVocabulary(t *testing.T) {
	corpus, order := smallCorpus(t)
	f := newFixture(t, corpus, order)
	if _, err := f.recep.Query(ModeCN, "alpha", 5, Options{TopR: 1}); !errors.Is(err, ErrSelectionNeedsVocabulary) {
		t.Fatalf("CN TopR before SetupVocabulary: err = %v, want ErrSelectionNeedsVocabulary", err)
	}
	if _, err := f.recep.SelectLibrarians("alpha", 1); !errors.Is(err, ErrSelectionNeedsVocabulary) {
		t.Fatalf("SelectLibrarians before SetupVocabulary: err = %v, want ErrSelectionNeedsVocabulary", err)
	}
	// Without TopR, CN still needs nothing.
	if _, err := f.recep.Query(ModeCN, "alpha", 5, Options{}); err != nil {
		t.Fatalf("plain CN query: %v", err)
	}
}

// TestSelectLibrariansOrder: the inspection API returns names in
// global-numbering order and honours r = 0 and oversized r.
func TestSelectLibrariansOrder(t *testing.T) {
	corpus, order := smallCorpus(t)
	f := newFixture(t, corpus, order)
	setupAllModes(t, f)
	names, err := f.recep.SelectLibrarians("alpha federal wallstreet", 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(names, order) {
		t.Fatalf("SelectLibrarians(r=3) = %v, want global order %v", names, order)
	}
	names, err = f.recep.SelectLibrarians("federal finance", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(names, []string{"FR"}) {
		t.Fatalf("SelectLibrarians(federal, r=1) = %v, want [FR]", names)
	}
	if names, _ := f.recep.SelectLibrarians("alpha", 0); len(names) != 0 {
		t.Fatalf("SelectLibrarians(r=0) = %v, want empty", names)
	}
	names, err = f.recep.SelectLibrarians("alpha", 99)
	if err != nil || len(names) != len(order) {
		t.Fatalf("SelectLibrarians(r=99) = %v, %v; want the whole fleet", names, err)
	}
}

// TestTopRCacheKey: the resolved R joins the cache key — different widths
// cache separately (they answer differently), repeats at the same width hit,
// and an oversized R shares the full-fleet entry it clamps to.
func TestTopRCacheKey(t *testing.T) {
	cf := newCacheFixture(t, Config{Cache: &CacheConfig{}})
	if _, err := cf.pool.SetupVocabulary(); err != nil {
		t.Fatal(err)
	}
	const query = "alpha federal"
	r1, err := cf.pool.Query(ModeCV, query, 10, Options{TopR: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res, err := cf.pool.Query(ModeCV, query, 10, Options{TopR: 2}); err != nil {
		t.Fatal(err)
	} else if res.Trace.CacheHit {
		t.Fatal("TopR=2 hit the TopR=1 entry: R missing from the cache key")
	}
	hit, err := cf.pool.Query(ModeCV, query, 10, Options{TopR: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !hit.Trace.CacheHit || !sameResult(hit.Answers, r1.Answers) {
		t.Fatal("TopR=1 repeat did not hit its own entry")
	}
	// Clamping: TopR=99 on a 3-librarian fleet resolves to 3 and must share
	// the TopR=3 entry.
	if _, err := cf.pool.Query(ModeCV, query, 10, Options{TopR: 3}); err != nil {
		t.Fatal(err)
	}
	res, err := cf.pool.Query(ModeCV, query, 10, Options{TopR: 99})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Trace.CacheHit {
		t.Fatal("TopR=99 missed the TopR=3 entry: clamping must happen before the key")
	}
}

// TestTopRComposesWithPartialResults: a selected librarian dying mid-session
// degrades the query exactly like full fan-out does — the failure machinery
// applies to the selected set.
func TestTopRComposesWithPartialResults(t *testing.T) {
	corpus, order := smallCorpus(t)
	a := testAnalyzer()
	var libs []*librarian.Librarian
	byName := map[string]*librarian.Librarian{}
	for _, name := range order {
		lib, err := librarian.Build(name, corpus[name], librarian.BuildOptions{Analyzer: a})
		if err != nil {
			t.Fatal(err)
		}
		libs = append(libs, lib)
		byName[name] = lib
	}
	inner := librarian.NewInProcessDialer(libs, simnet.LinkConfig{})
	// AP answers its Hello and vocabulary exchanges, then dies for good
	// (redials refused): the rank phase of a TopR query that selected it
	// must fail over per the policy.
	apDials := 0
	dialer := simnet.MapDialer{
		"AP": func() (net.Conn, error) {
			apDials++
			if apDials > 1 {
				return nil, errors.New("AP is down")
			}
			return haltAfter(byName["AP"], 2)()
		},
		"FR":  func() (net.Conn, error) { return inner.Dial("FR") },
		"WSJ": func() (net.Conn, error) { return inner.Dial("WSJ") },
	}
	recep, err := Connect(dialer, order, Config{Analyzer: a})
	if err != nil {
		t.Fatal(err)
	}
	defer recep.Close()
	if _, err := recep.SetupVocabulary(); err != nil {
		t.Fatal(err)
	}
	// "alpha federal" with TopR=2 selects AP and FR; AP is dead.
	opts := Options{TopR: 2, MinLibrarians: 1}
	res, err := recep.Query(ModeCN, "alpha federal", 10, opts)
	if err != nil {
		t.Fatalf("partial TopR query: %v", err)
	}
	if !res.Trace.Degraded {
		t.Fatal("dead selected librarian did not degrade the result")
	}
	if res.Trace.LibrariansSelected != 2 {
		t.Fatalf("LibrariansSelected = %d, want 2", res.Trace.LibrariansSelected)
	}
	if got := res.Trace.FailedLibrarians(PhaseRank); !reflect.DeepEqual(got, []string{"AP"}) {
		t.Fatalf("failed librarians = %v, want [AP]", got)
	}
	for _, ans := range res.Answers {
		if ans.Librarian != "FR" {
			t.Fatalf("answer from %s, want survivors (FR) only", ans.Librarian)
		}
	}
	// With MinLibrarians above the surviving count, the same query fails.
	if _, err := recep.Query(ModeCN, "alpha federal", 10, Options{TopR: 2, MinLibrarians: 2}); err == nil {
		t.Fatal("1 survivor of 2 selected with MinLibrarians=2: want error")
	}
}

// TestTopRSelectionMetrics: the selection counter families move with the
// queries and skipped librarians they describe.
func TestTopRSelectionMetrics(t *testing.T) {
	corpus, order := smallCorpus(t)
	f := newFixture(t, corpus, order)
	setupAllModes(t, f)
	m := f.recep.Metrics()
	if got := m.selectionQueries.Value(); got != 0 {
		t.Fatalf("selection queries before any = %d", got)
	}
	if _, err := f.recep.Query(ModeCN, "alpha avalanche", 5, Options{TopR: 1}); err != nil {
		t.Fatal(err)
	}
	if got := m.selectionQueries.Value(); got != 1 {
		t.Fatalf("selection queries = %d, want 1", got)
	}
	if got := m.selectionSkipped.Value(); got != 2 {
		t.Fatalf("selection skipped = %d, want 2 (3 candidates, 1 selected)", got)
	}
	// Full fan-out moves neither counter.
	if _, err := f.recep.Query(ModeCN, "alpha avalanche", 5, Options{}); err != nil {
		t.Fatal(err)
	}
	if got := m.selectionQueries.Value(); got != 1 {
		t.Fatalf("full fan-out bumped selection queries to %d", got)
	}
}
