package bitio

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriteReadBit(t *testing.T) {
	w := NewWriter(4)
	bits := []uint{1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1}
	for _, b := range bits {
		w.WriteBit(b)
	}
	r := NewReader(w.Bytes())
	for i, want := range bits {
		got, err := r.ReadBit()
		if err != nil {
			t.Fatalf("bit %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("bit %d: got %d want %d", i, got, want)
		}
	}
}

func TestWriteBitsRoundTrip(t *testing.T) {
	cases := []struct {
		v uint64
		n uint
	}{
		{0, 1}, {1, 1}, {5, 3}, {255, 8}, {256, 9},
		{1<<32 - 1, 32}, {1<<63 - 1, 63}, {0xdeadbeefcafe, 48},
	}
	w := NewWriter(64)
	for _, c := range cases {
		w.WriteBits(c.v, c.n)
	}
	r := NewReader(w.Bytes())
	for _, c := range cases {
		got, err := r.ReadBits(c.n)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.v {
			t.Fatalf("ReadBits(%d) = %d, want %d", c.n, got, c.v)
		}
	}
}

func TestUnaryRoundTrip(t *testing.T) {
	w := NewWriter(32)
	vals := []uint64{0, 1, 2, 7, 20, 63}
	for _, v := range vals {
		w.WriteUnary(v)
	}
	r := NewReader(w.Bytes())
	for _, want := range vals {
		got, err := r.ReadUnary()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("ReadUnary = %d, want %d", got, want)
		}
	}
}

func TestBitLenAndPos(t *testing.T) {
	w := NewWriter(8)
	if w.BitLen() != 0 {
		t.Fatalf("empty writer BitLen = %d", w.BitLen())
	}
	w.WriteBits(0x3, 2)
	if w.BitLen() != 2 {
		t.Fatalf("BitLen = %d, want 2", w.BitLen())
	}
	w.WriteBits(0xff, 8)
	if w.BitLen() != 10 {
		t.Fatalf("BitLen = %d, want 10", w.BitLen())
	}
	r := NewReader(w.Bytes())
	if r.BitPos() != 0 {
		t.Fatalf("BitPos = %d, want 0", r.BitPos())
	}
	if _, err := r.ReadBits(3); err != nil {
		t.Fatal(err)
	}
	if r.BitPos() != 3 {
		t.Fatalf("BitPos = %d, want 3", r.BitPos())
	}
}

func TestSeekBit(t *testing.T) {
	w := NewWriter(8)
	w.WriteBits(0xA5A5, 16) // 1010 0101 1010 0101
	data := w.Bytes()
	r := NewReader(data)
	if err := r.SeekBit(4); err != nil {
		t.Fatal(err)
	}
	got, err := r.ReadBits(8)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0x5A {
		t.Fatalf("after seek: got %#x want 0x5a", got)
	}
	if err := r.SeekBit(0); err != nil {
		t.Fatal(err)
	}
	got, err = r.ReadBits(16)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0xA5A5 {
		t.Fatalf("after rewind: got %#x", got)
	}
	if err := r.SeekBit(17); err == nil {
		t.Fatal("seek past end: want error")
	}
	if err := r.SeekBit(-1); err == nil {
		t.Fatal("negative seek: want error")
	}
}

func TestReadPastEnd(t *testing.T) {
	r := NewReader([]byte{0xff})
	if _, err := r.ReadBits(8); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadBit(); err != ErrUnexpectedEOF {
		t.Fatalf("want ErrUnexpectedEOF, got %v", err)
	}
	if _, err := NewReader(nil).ReadUnary(); err != ErrUnexpectedEOF {
		t.Fatalf("unary on empty: want ErrUnexpectedEOF, got %v", err)
	}
}

func TestWriterReset(t *testing.T) {
	w := NewWriter(8)
	w.WriteBits(0xffff, 16)
	w.Reset()
	if w.BitLen() != 0 {
		t.Fatalf("after reset BitLen = %d", w.BitLen())
	}
	w.WriteBits(0x1, 1)
	if got := w.Bytes(); len(got) != 1 || got[0] != 0x80 {
		t.Fatalf("after reset Bytes = %v", got)
	}
}

func TestQuickMixedRoundTrip(t *testing.T) {
	// Property: any interleaving of fixed-width and unary writes reads back
	// identically.
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		type op struct {
			unary bool
			v     uint64
			n     uint
		}
		ops := make([]op, int(n%50)+1)
		w := NewWriter(64)
		for i := range ops {
			if rng.Intn(2) == 0 {
				ops[i] = op{unary: true, v: uint64(rng.Intn(100))}
				w.WriteUnary(ops[i].v)
			} else {
				width := uint(rng.Intn(64) + 1)
				v := rng.Uint64()
				if width < 64 {
					v &= 1<<width - 1
				}
				ops[i] = op{v: v, n: width}
				w.WriteBits(v, width)
			}
		}
		r := NewReader(w.Bytes())
		for _, o := range ops {
			var got uint64
			var err error
			if o.unary {
				got, err = r.ReadUnary()
			} else {
				got, err = r.ReadBits(o.n)
			}
			if err != nil || got != o.v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWriteBits(b *testing.B) {
	w := NewWriter(1 << 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if i%4096 == 0 {
			w.Reset()
		}
		w.WriteBits(uint64(i), 17)
	}
}

func BenchmarkReadBits(b *testing.B) {
	w := NewWriter(1 << 16)
	for i := 0; i < 4096; i++ {
		w.WriteBits(uint64(i), 17)
	}
	data := w.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	r := NewReader(data)
	for i := 0; i < b.N; i++ {
		if r.Remaining() < 17 {
			r = NewReader(data)
		}
		if _, err := r.ReadBits(17); err != nil {
			b.Fatal(err)
		}
	}
}

func TestZeroWidthOperations(t *testing.T) {
	w := NewWriter(4)
	w.WriteBits(0xFFFF, 0) // zero-width write is a no-op
	if w.BitLen() != 0 {
		t.Fatalf("zero-width write produced %d bits", w.BitLen())
	}
	w.WriteBits(0x5, 3)
	r := NewReader(w.Bytes())
	v, err := r.ReadBits(0)
	if err != nil || v != 0 {
		t.Fatalf("zero-width read = %d, %v", v, err)
	}
	got, err := r.ReadBits(3)
	if err != nil || got != 0x5 {
		t.Fatalf("after zero-width read: %d, %v", got, err)
	}
}
